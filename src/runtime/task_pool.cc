#include "src/runtime/task_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace swdnn::runtime {

namespace {

// True on pool worker threads: a nested parallel_for must run inline
// (the workers are already busy executing the outer loop's chunks).
thread_local bool t_in_pool_worker = false;

int env_thread_count() {
  const char* env = std::getenv("SWDNN_HOST_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && parsed >= 1 && parsed <= 1024) {
      return static_cast<int>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

struct TaskPool::Impl {
  // Serializes dispatch: the pool runs one parallel_for at a time; a
  // second external caller that loses the try_lock runs inline instead
  // of blocking (same chunks, same results).
  std::mutex dispatch;

  // Worker rendezvous.
  std::mutex m;
  std::condition_variable start_cv;
  std::condition_variable done_cv;
  std::uint64_t generation = 0;
  int workers_done = 0;
  bool shutting_down = false;

  // The published job, valid for one generation. Lane l (0 = caller,
  // 1..threads-1 = workers) executes chunks l, l + threads, ... —
  // static, strided partitioning. Chunk content is thread-count
  // independent; only the chunk->lane mapping varies.
  const std::function<void(std::int64_t, std::int64_t, std::int64_t)>* fn =
      nullptr;
  std::int64_t begin = 0;
  std::int64_t grain = 1;
  std::int64_t end = 0;
  std::int64_t nchunks = 0;

  // First-faulting-chunk exception capture (deterministic rethrow).
  std::mutex error_m;
  std::exception_ptr error;
  std::int64_t error_chunk = -1;

  std::vector<std::thread> workers;
};

TaskPool& TaskPool::instance() {
  static TaskPool pool;
  return pool;
}

TaskPool::TaskPool() : impl_(new Impl) {
  threads_ = env_thread_count();
  spawn_workers();
}

TaskPool::~TaskPool() {
  join_workers();
  delete impl_;
}

void TaskPool::spawn_workers() {
  // New workers must start at the CURRENT generation: a fresh worker
  // seeded at 0 would treat whatever job was published last as new and
  // execute it a second time (or chase a dangling fn).
  std::uint64_t start_generation;
  {
    std::lock_guard<std::mutex> lock(impl_->m);
    start_generation = impl_->generation;
  }
  for (int w = 1; w < threads_; ++w) {
    impl_->workers.emplace_back(
        [this, w, start_generation] { worker_main(w, start_generation); });
  }
}

void TaskPool::join_workers() {
  {
    std::lock_guard<std::mutex> lock(impl_->m);
    impl_->shutting_down = true;
    ++impl_->generation;
  }
  impl_->start_cv.notify_all();
  for (std::thread& t : impl_->workers) t.join();
  impl_->workers.clear();
  {
    std::lock_guard<std::mutex> lock(impl_->m);
    impl_->shutting_down = false;
  }
}

void TaskPool::set_thread_count(int threads) {
  if (threads < 1) {
    throw std::invalid_argument("TaskPool: thread count must be >= 1");
  }
  std::lock_guard<std::mutex> dispatch_lock(impl_->dispatch);
  join_workers();
  threads_ = threads;
  spawn_workers();
}

bool TaskPool::in_pool_worker() { return t_in_pool_worker; }

std::int64_t TaskPool::chunk_count(std::int64_t begin, std::int64_t end,
                                   std::int64_t grain) {
  if (end <= begin) return 0;
  const std::int64_t g = std::max<std::int64_t>(1, grain);
  return (end - begin + g - 1) / g;
}

void TaskPool::run_lane(int lane) {
  Impl& im = *impl_;
  for (std::int64_t chunk = lane; chunk < im.nchunks; chunk += threads_) {
    const std::int64_t c0 = im.begin + chunk * im.grain;
    const std::int64_t c1 = std::min<std::int64_t>(c0 + im.grain, im.end);
    try {
      (*im.fn)(chunk, c0, c1);
    } catch (...) {
      std::lock_guard<std::mutex> lock(im.error_m);
      if (im.error_chunk < 0 || chunk < im.error_chunk) {
        im.error = std::current_exception();
        im.error_chunk = chunk;
      }
    }
  }
}

void TaskPool::worker_main(int worker_index,
                           std::uint64_t start_generation) {
  t_in_pool_worker = true;
  Impl& im = *impl_;
  std::uint64_t seen = start_generation;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(im.m);
      im.start_cv.wait(lock, [&] {
        return im.generation != seen || im.shutting_down;
      });
      if (im.shutting_down) return;
      seen = im.generation;
    }
    run_lane(worker_index);
    {
      std::lock_guard<std::mutex> lock(im.m);
      ++im.workers_done;
    }
    im.done_cv.notify_one();
  }
}

void TaskPool::parallel_for_shards(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t, std::int64_t)>&
        fn) {
  const std::int64_t nchunks = chunk_count(begin, end, grain);
  if (nchunks == 0) return;
  const std::int64_t g = std::max<std::int64_t>(1, grain);

  Impl& im = *impl_;
  // Inline path: serial configuration, single chunk, nested call, or a
  // concurrent external dispatch already owns the pool. Chunks run in
  // ascending order — bitwise the same as the pooled execution.
  const bool pooled = threads_ > 1 && nchunks > 1 && !t_in_pool_worker &&
                      im.dispatch.try_lock();
  if (!pooled) {
    for (std::int64_t chunk = 0; chunk < nchunks; ++chunk) {
      const std::int64_t c0 = begin + chunk * g;
      fn(chunk, c0, std::min<std::int64_t>(c0 + g, end));
    }
    return;
  }

  std::lock_guard<std::mutex> dispatch_lock(im.dispatch, std::adopt_lock);
  im.fn = &fn;
  im.begin = begin;
  im.end = end;
  im.grain = g;
  im.nchunks = nchunks;
  im.error = nullptr;
  im.error_chunk = -1;
  {
    std::lock_guard<std::mutex> lock(im.m);
    im.workers_done = 0;
    ++im.generation;
  }
  im.start_cv.notify_all();
  run_lane(0);  // the caller is lane 0
  {
    std::unique_lock<std::mutex> lock(im.m);
    im.done_cv.wait(lock, [&] {
      return im.workers_done == static_cast<int>(im.workers.size());
    });
  }
  im.fn = nullptr;
  if (im.error) std::rethrow_exception(im.error);
}

void TaskPool::parallel_for(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  parallel_for_shards(
      begin, end, grain,
      [&fn](std::int64_t, std::int64_t c0, std::int64_t c1) { fn(c0, c1); });
}

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn) {
  TaskPool::instance().parallel_for(begin, end, grain, fn);
}

void parallel_for_shards(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t, std::int64_t)>&
        fn) {
  TaskPool::instance().parallel_for_shards(begin, end, grain, fn);
}

int host_threads() { return TaskPool::instance().thread_count(); }

void set_host_threads(int threads) {
  TaskPool::instance().set_thread_count(threads);
}

}  // namespace swdnn::runtime
