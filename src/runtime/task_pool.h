#pragma once
// Shared host parallel runtime.
//
// The simulated mesh got its worker pool in PR 4; this is the analogous
// substrate for every *host-side* hot loop — packed GEMM panels,
// im2col/col2im, the embarrassingly parallel dnn layer kernels, and
// concurrent data-parallel replica stepping. One lazily-initialized,
// process-wide pool serves them all, so nested parallel regions never
// oversubscribe the machine.
//
// Determinism contract (the property every caller leans on):
//   * parallel_for splits [begin, end) into contiguous chunks of
//     `grain` indices. Chunk boundaries depend ONLY on (begin, end,
//     grain) — never on the thread count — and each chunk is executed
//     exactly once. Callers write disjoint outputs per index, so the
//     result is bitwise-identical at any thread count, including the
//     serial inline path.
//   * Reductions use the shard-indexed form: the caller accumulates a
//     partial per chunk and combines the partials in ascending chunk
//     order after the loop, which again cannot depend on the thread
//     count.
//   * Nested calls (a parallel_for issued from inside a pool worker)
//     and calls that lose the dispatch race run the same chunks inline
//     in ascending order — identical results, no deadlock.
//
// Sizing: SWDNN_HOST_THREADS in the environment, read once at first
// use; unset or invalid falls back to std::thread::hardware_concurrency,
// and `1` forces the serial inline path everywhere.

#include <cstdint>
#include <functional>

namespace swdnn::runtime {

class TaskPool {
 public:
  /// The process-wide pool (workers spawn on first use).
  static TaskPool& instance();

  /// Number of execution lanes (workers + the calling thread). Always
  /// >= 1; 1 means every parallel_for runs inline.
  int thread_count() const { return threads_; }

  /// Reconfigures the pool size, joining and respawning workers. For
  /// benchmarks and the determinism tests; must not race with an
  /// in-flight parallel_for.
  void set_thread_count(int threads);

  /// Runs fn(chunk_begin, chunk_end) for every grain-sized chunk of
  /// [begin, end), each chunk exactly once. See the determinism
  /// contract above. Exceptions thrown by fn are rethrown in the
  /// caller (the one from the lowest-indexed faulting chunk).
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    const std::function<void(std::int64_t, std::int64_t)>& fn);

  /// Reduction form: fn(chunk_index, chunk_begin, chunk_end). Chunk
  /// indices are dense, start at 0, and follow ascending begin — use
  /// them to write per-chunk partials that the caller combines in
  /// ascending chunk order.
  void parallel_for_shards(
      std::int64_t begin, std::int64_t end, std::int64_t grain,
      const std::function<void(std::int64_t, std::int64_t, std::int64_t)>&
          fn);

  /// Number of chunks parallel_for/parallel_for_shards will produce
  /// for this range — thread-count independent by construction.
  static std::int64_t chunk_count(std::int64_t begin, std::int64_t end,
                                  std::int64_t grain);

  /// True on a pool worker thread (inside a chunk callback). The
  /// gradient-exchange overlap path leans on this: a bucket reduction
  /// triggered from inside a replica-stepping parallel_for runs inline
  /// on the worker that completed the bucket last, overlapping with the
  /// remaining backward chunks on the other lanes — the determinism
  /// contract makes that scheduling freedom numerically invisible.
  static bool in_pool_worker();

  ~TaskPool();
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

 private:
  TaskPool();

  void spawn_workers();
  void join_workers();
  void worker_main(int worker_index, std::uint64_t start_generation);
  void run_lane(int lane);

  struct Impl;
  Impl* impl_;
  int threads_ = 1;
};

/// Convenience wrappers over TaskPool::instance().
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn);
void parallel_for_shards(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t, std::int64_t)>& fn);

/// Configured lane count (>= 1).
int host_threads();

/// Test/bench hook: resize the shared pool (1 = force serial).
void set_host_threads(int threads);

}  // namespace swdnn::runtime
