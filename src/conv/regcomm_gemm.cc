#include "src/conv/regcomm_gemm.h"

#include <algorithm>

namespace swdnn::conv {

namespace {
sim::Vec4 pack(std::span<const double> data, std::size_t offset) {
  sim::Vec4 v;
  for (int l = 0; l < 4; ++l) {
    const std::size_t idx = offset + static_cast<std::size_t>(l);
    v.lane[l] = idx < data.size() ? data[idx] : 0.0;
  }
  return v;
}

void unpack(const sim::Vec4& v, std::span<double> out, std::size_t offset) {
  for (int l = 0; l < 4; ++l) {
    const std::size_t idx = offset + static_cast<std::size_t>(l);
    if (idx < out.size()) out[idx] = v.lane[l];
  }
}
}  // namespace

void bus_broadcast_row(sim::CpeContext& ctx, std::span<const double> data,
                       BusPathMode mode) {
  if (mode == BusPathMode::kBulkSpan) {
    ctx.bcast_row_span(data);
    return;
  }
  for (std::size_t off = 0; off < data.size(); off += 4) {
    ctx.bcast_row(pack(data, off));
  }
}

void bus_recv_row(sim::CpeContext& ctx, std::span<double> out,
                  BusPathMode mode) {
  if (mode == BusPathMode::kBulkSpan) {
    ctx.recv_row_span(out);
    return;
  }
  for (std::size_t off = 0; off < out.size(); off += 4) {
    unpack(ctx.get_row(), out, off);
  }
}

void bus_broadcast_col(sim::CpeContext& ctx, std::span<const double> data,
                       BusPathMode mode) {
  if (mode == BusPathMode::kBulkSpan) {
    ctx.bcast_col_span(data);
    return;
  }
  for (std::size_t off = 0; off < data.size(); off += 4) {
    ctx.bcast_col(pack(data, off));
  }
}

void bus_recv_col(sim::CpeContext& ctx, std::span<double> out,
                  BusPathMode mode) {
  if (mode == BusPathMode::kBulkSpan) {
    ctx.recv_col_span(out);
    return;
  }
  for (std::size_t off = 0; off < out.size(); off += 4) {
    unpack(ctx.get_col(), out, off);
  }
}

void local_gemm_accumulate_ref(sim::CpeContext& ctx,
                               std::span<const double> w,
                               std::span<const double> di,
                               std::span<double> out, int m_tile, int k_tile,
                               int n_tile) {
  // w is [k][m] (channel-major, the filter's natural DMA order), di is
  // [k][n], out is [m][n]: a rank-k_tile sequence of outer products —
  // the register-blocked kernel shape of Fig. 5.
  for (int k = 0; k < k_tile; ++k) {
    const double* wk = w.data() + static_cast<std::size_t>(k) * m_tile;
    const double* dik = di.data() + static_cast<std::size_t>(k) * n_tile;
    for (int m = 0; m < m_tile; ++m) {
      double* row = out.data() + static_cast<std::size_t>(m) * n_tile;
      const double wv = wk[m];
      for (int n = 0; n < n_tile; ++n) row[n] += wv * dik[n];
    }
  }
  ctx.charge_flops(2ull * static_cast<std::uint64_t>(m_tile) *
                   static_cast<std::uint64_t>(k_tile) *
                   static_cast<std::uint64_t>(n_tile));
}

void local_gemm_accumulate(sim::CpeContext& ctx, std::span<const double> w,
                           std::span<const double> di, std::span<double> out,
                           int m_tile, int k_tile, int n_tile) {
  // 4x4 register blocking over the output tile: the k loop becomes the
  // innermost loop of each block, so the 16 accumulators live in
  // registers across the whole contraction instead of `out` being
  // streamed through memory k_tile times. Every out[m][n] still sees
  // out + w[0][m]*di[0][n] + w[1][m]*di[1][n] + ... in that exact
  // order, which keeps the result bitwise identical to the reference
  // loop (no reassociation, and the flop charge below is unchanged).
  constexpr int kBlock = 4;
  const int m_full = m_tile - m_tile % kBlock;
  const int n_full = n_tile - n_tile % kBlock;
  for (int m0 = 0; m0 < m_full; m0 += kBlock) {
    for (int n0 = 0; n0 < n_full; n0 += kBlock) {
      double acc[kBlock][kBlock];
      for (int i = 0; i < kBlock; ++i) {
        for (int j = 0; j < kBlock; ++j) {
          acc[i][j] = out[static_cast<std::size_t>(m0 + i) * n_tile + n0 + j];
        }
      }
      for (int k = 0; k < k_tile; ++k) {
        const double* wk = w.data() + static_cast<std::size_t>(k) * m_tile;
        const double* dik = di.data() + static_cast<std::size_t>(k) * n_tile;
        for (int i = 0; i < kBlock; ++i) {
          const double wv = wk[m0 + i];
          for (int j = 0; j < kBlock; ++j) {
            acc[i][j] += wv * dik[n0 + j];
          }
        }
      }
      for (int i = 0; i < kBlock; ++i) {
        for (int j = 0; j < kBlock; ++j) {
          out[static_cast<std::size_t>(m0 + i) * n_tile + n0 + j] = acc[i][j];
        }
      }
    }
  }
  // Tails (m_tile or n_tile not a multiple of 4): per-element k-ordered
  // accumulation, still the reference order.
  if (n_full < n_tile) {
    for (int m = 0; m < m_full; ++m) {
      for (int n = n_full; n < n_tile; ++n) {
        double acc = out[static_cast<std::size_t>(m) * n_tile + n];
        for (int k = 0; k < k_tile; ++k) {
          acc += w[static_cast<std::size_t>(k) * m_tile + m] *
                 di[static_cast<std::size_t>(k) * n_tile + n];
        }
        out[static_cast<std::size_t>(m) * n_tile + n] = acc;
      }
    }
  }
  if (m_full < m_tile) {
    for (int m = m_full; m < m_tile; ++m) {
      for (int n = 0; n < n_tile; ++n) {
        double acc = out[static_cast<std::size_t>(m) * n_tile + n];
        for (int k = 0; k < k_tile; ++k) {
          acc += w[static_cast<std::size_t>(k) * m_tile + m] *
                 di[static_cast<std::size_t>(k) * n_tile + n];
        }
        out[static_cast<std::size_t>(m) * n_tile + n] = acc;
      }
    }
  }
  ctx.charge_flops(2ull * static_cast<std::uint64_t>(m_tile) *
                   static_cast<std::uint64_t>(k_tile) *
                   static_cast<std::uint64_t>(n_tile));
}

void mesh_gemm_accumulate(sim::CpeContext& ctx,
                          std::span<const double> w_local,
                          std::span<const double> di_local,
                          std::span<double> do_local,
                          std::span<double> w_recv, std::span<double> di_recv,
                          int m_tile, int k_tile, int n_tile,
                          BusPathMode mode) {
  const int p = ctx.mesh_rows();
  for (int t = 0; t < p; ++t) {
    // W phase on the row buses: column t fans its tiles out.
    std::span<const double> w_cur;
    if (ctx.col() == t) {
      bus_broadcast_row(ctx, w_local, mode);
      w_cur = w_local;
    } else {
      bus_recv_row(ctx, w_recv, mode);
      w_cur = w_recv;
    }
    // Di phase on the column buses: row t fans its tiles down.
    std::span<const double> di_cur;
    if (ctx.row() == t) {
      bus_broadcast_col(ctx, di_local, mode);
      di_cur = di_local;
    } else {
      bus_recv_col(ctx, di_recv, mode);
      di_cur = di_recv;
    }
    if (mode == BusPathMode::kBulkSpan) {
      local_gemm_accumulate(ctx, w_cur, di_cur, do_local, m_tile, k_tile,
                            n_tile);
    } else {
      local_gemm_accumulate_ref(ctx, w_cur, di_cur, do_local, m_tile, k_tile,
                                n_tile);
    }
    // Keep bus traffic of consecutive steps from interleaving: the
    // transfer buffers are FIFO per bus, and step t+1 has a different
    // sender.
    ctx.sync();
  }
}

}  // namespace swdnn::conv
