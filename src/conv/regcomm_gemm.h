#pragma once
// Mesh-distributed GEMM over register communication (paper Fig. 3).
//
// The LDM-GEMM at the heart of both convolution algorithms contracts
// over the input channels Ni, which the mesh distributes: CPE(i,j) owns
//   W tile  W(i,j) — output-channel block i  x input-channel block j,
//   Di tile Di(i,j) — input-channel block i x pixel/batch block j,
//   Do tile Do(i,j) — output-channel block i x pixel/batch block j,
// with no element duplicated anywhere on the mesh. The contraction then
// needs remote data, fetched purely over the buses: at step t, the CPEs
// of column t broadcast their W tiles along their rows, and the CPEs of
// row t broadcast their Di tiles down their columns; every CPE
// accumulates Do(i,j) += W(i,t) * Di(t,j). After P steps each CPE holds
// its finished Do block — and the input/filter data crossed the memory
// interface exactly once.
//
// Two host-side implementations of the bus traffic exist, selected by
// BusPathMode. Both model the same machine: per-message fault polls,
// trace events, cycle charges, and message counts are identical, and
// tile payloads arrive bitwise equal. kBulkSpan moves each tile under
// one transfer-buffer lock (the fast path); kVec4Reference loops over
// the scalar 256-bit primitives exactly as the original implementation
// did, and is kept as the oracle the equivalence tests compare against.

#include <span>

#include "src/sim/executor.h"

namespace swdnn::conv {

/// Host-side strategy for moving tiles over the simulated buses.
/// Observationally equivalent by construction; see header comment.
enum class BusPathMode {
  kBulkSpan,       ///< whole-tile transfers, one lock per tile (fast)
  kVec4Reference,  ///< per-Vec4 loop over put/get (legacy oracle)
};

/// Broadcasts `data` to every other CPE on the caller's row, as ceil(n/4)
/// 256-bit bus messages.
void bus_broadcast_row(sim::CpeContext& ctx, std::span<const double> data,
                       BusPathMode mode = BusPathMode::kBulkSpan);

/// Receives `out.size()` doubles from the caller's row transfer buffer.
void bus_recv_row(sim::CpeContext& ctx, std::span<double> out,
                  BusPathMode mode = BusPathMode::kBulkSpan);

/// Column-bus variants.
void bus_broadcast_col(sim::CpeContext& ctx, std::span<const double> data,
                       BusPathMode mode = BusPathMode::kBulkSpan);
void bus_recv_col(sim::CpeContext& ctx, std::span<double> out,
                  BusPathMode mode = BusPathMode::kBulkSpan);

/// One full mesh contraction: Do(i,j) += sum_t W(i,t)*Di(t,j).
///
/// Local tile layouts (row-major):
///   w_local  [k_tile][m_tile]  — input-channel-major, as the filter
///                                tensor [..][Ni][No] DMAs in naturally;
///   di_local [k_tile][n_tile];
///   do_local [m_tile][n_tile].
/// w_recv / di_recv are LDM scratch of the same sizes as w_local /
/// di_local. The call contains mesh-wide barriers: every CPE of the
/// mesh must call it the same number of times (SPMD lockstep).
void mesh_gemm_accumulate(sim::CpeContext& ctx,
                          std::span<const double> w_local,
                          std::span<const double> di_local,
                          std::span<double> do_local,
                          std::span<double> w_recv, std::span<double> di_recv,
                          int m_tile, int k_tile, int n_tile,
                          BusPathMode mode = BusPathMode::kBulkSpan);

/// Local tile update used by each mesh step: do[m][n] += sum_k
/// w[k][m]*di[k][n], charging the FMA flops to the context. Register-
/// blocked over 4x4 output sub-tiles (Fig. 5's blocking, expressed on
/// the host): each output element still receives its k-sequence of
/// additions in the original order, so results are bitwise identical to
/// local_gemm_accumulate_ref.
void local_gemm_accumulate(sim::CpeContext& ctx, std::span<const double> w,
                           std::span<const double> di, std::span<double> out,
                           int m_tile, int k_tile, int n_tile);

/// The original naive k->m->n loop, kept as the bitwise oracle for the
/// blocked kernel.
void local_gemm_accumulate_ref(sim::CpeContext& ctx,
                               std::span<const double> w,
                               std::span<const double> di,
                               std::span<double> out, int m_tile, int k_tile,
                               int n_tile);

}  // namespace swdnn::conv
