#include "src/conv/shape.h"

#include <stdexcept>

namespace swdnn::conv {

ConvShape ConvShape::from_output(std::int64_t batch, std::int64_t ni,
                                 std::int64_t no, std::int64_t ro,
                                 std::int64_t co, std::int64_t kr,
                                 std::int64_t kc, std::int64_t stride_r,
                                 std::int64_t stride_c) {
  ConvShape s;
  s.batch = batch;
  s.ni = ni;
  s.no = no;
  s.kr = kr;
  s.kc = kc;
  s.stride_r = stride_r;
  s.stride_c = stride_c;
  s.ri = (ro - 1) * stride_r + kr;
  s.ci = (co - 1) * stride_c + kc;
  s.validate();
  return s;
}

std::int64_t ConvShape::flops() const {
  return 2 * batch * ro() * co() * ni * no * kr * kc;
}

void ConvShape::validate() const {
  if (batch <= 0 || ni <= 0 || no <= 0 || ri <= 0 || ci <= 0 || kr <= 0 ||
      kc <= 0) {
    throw std::invalid_argument("ConvShape: dimensions must be positive");
  }
  if (kr > ri || kc > ci) {
    throw std::invalid_argument("ConvShape: filter larger than input image");
  }
  if (stride_r <= 0 || stride_c <= 0) {
    throw std::invalid_argument("ConvShape: strides must be positive");
  }
}

std::string ConvShape::to_string() const {
  std::string s = "Conv(B=" + std::to_string(batch) +
                  ", Ni=" + std::to_string(ni) + ", No=" + std::to_string(no) +
                  ", in=" + std::to_string(ri) + "x" + std::to_string(ci) +
                  ", k=" + std::to_string(kr) + "x" + std::to_string(kc);
  if (stride_r != 1 || stride_c != 1) {
    s += ", stride=" + std::to_string(stride_r) + "x" +
         std::to_string(stride_c);
  }
  return s + ")";
}

}  // namespace swdnn::conv
