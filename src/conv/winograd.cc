#include "src/conv/winograd.h"

#include <stdexcept>
#include <vector>

namespace swdnn::conv {

namespace {

// F(2x2, 3x3) transform matrices (Lavin 2015):
//   G   = [1 0 0; .5 .5 .5; .5 -.5 .5; 0 0 1]         (4x3)
//   B^T = [1 0 -1 0; 0 1 1 0; 0 -1 1 0; 0 1 0 -1]     (4x4)
//   A^T = [1 1 1 0; 0 1 -1 -1]                         (2x4)

void mat_g_g_gt(const double g[3][3], double out[4][4]) {
  // tmp = G * g  (4x3)
  double tmp[4][3];
  for (int c = 0; c < 3; ++c) {
    tmp[0][c] = g[0][c];
    tmp[1][c] = 0.5 * (g[0][c] + g[1][c] + g[2][c]);
    tmp[2][c] = 0.5 * (g[0][c] - g[1][c] + g[2][c]);
    tmp[3][c] = g[2][c];
  }
  // out = tmp * G^T  (4x4)
  for (int r = 0; r < 4; ++r) {
    out[r][0] = tmp[r][0];
    out[r][1] = 0.5 * (tmp[r][0] + tmp[r][1] + tmp[r][2]);
    out[r][2] = 0.5 * (tmp[r][0] - tmp[r][1] + tmp[r][2]);
    out[r][3] = tmp[r][2];
  }
}

void mat_bt_d_b(const double d[4][4], double out[4][4]) {
  // tmp = B^T * d (4x4)
  double tmp[4][4];
  for (int c = 0; c < 4; ++c) {
    tmp[0][c] = d[0][c] - d[2][c];
    tmp[1][c] = d[1][c] + d[2][c];
    tmp[2][c] = d[2][c] - d[1][c];
    tmp[3][c] = d[1][c] - d[3][c];
  }
  // out = tmp * B (4x4); B = (B^T)^T
  for (int r = 0; r < 4; ++r) {
    out[r][0] = tmp[r][0] - tmp[r][2];
    out[r][1] = tmp[r][1] + tmp[r][2];
    out[r][2] = tmp[r][2] - tmp[r][1];
    out[r][3] = tmp[r][1] - tmp[r][3];
  }
}

void mat_at_m_a(const double m[4][4], double out[2][2]) {
  // tmp = A^T * m (2x4)
  double tmp[2][4];
  for (int c = 0; c < 4; ++c) {
    tmp[0][c] = m[0][c] + m[1][c] + m[2][c];
    tmp[1][c] = m[1][c] - m[2][c] - m[3][c];
  }
  // out = tmp * A (2x2)
  for (int r = 0; r < 2; ++r) {
    out[r][0] = tmp[r][0] + tmp[r][1] + tmp[r][2];
    out[r][1] = tmp[r][1] - tmp[r][2] - tmp[r][3];
  }
}

}  // namespace

void winograd_filter_transform(const double g[3][3], double u[4][4]) {
  mat_g_g_gt(g, u);
}

void winograd_input_transform(const double d[4][4], double v[4][4]) {
  mat_bt_d_b(d, v);
}

void winograd_output_transform(const double m[4][4], double y[2][2]) {
  mat_at_m_a(m, y);
}

void winograd_forward(const tensor::Tensor& input,
                      const tensor::Tensor& filter, tensor::Tensor& output,
                      const ConvShape& s) {
  if (s.kr != 3 || s.kc != 3) {
    throw std::invalid_argument("winograd_forward: F(2x2,3x3) needs a 3x3 "
                                "filter");
  }
  if (s.stride_r != 1 || s.stride_c != 1) {
    throw std::invalid_argument("winograd_forward: stride-1 only");
  }
  if (s.ro() % 2 != 0 || s.co() % 2 != 0) {
    throw std::invalid_argument(
        "winograd_forward: output extents must be even (whole 2x2 tiles)");
  }

  // Transformed filters: U[ni][no] as flat 16-double blocks.
  std::vector<double> u_all(
      static_cast<std::size_t>(s.ni * s.no * 16));
  for (std::int64_t ni = 0; ni < s.ni; ++ni) {
    for (std::int64_t no = 0; no < s.no; ++no) {
      double g[3][3];
      for (int r = 0; r < 3; ++r)
        for (int c = 0; c < 3; ++c) g[r][c] = filter.at(r, c, ni, no);
      double u[4][4];
      mat_g_g_gt(g, u);
      double* dst = &u_all[static_cast<std::size_t>((ni * s.no + no) * 16)];
      for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c) dst[r * 4 + c] = u[r][c];
    }
  }

  output.zero();
  const std::int64_t tiles_r = s.ro() / 2;
  const std::int64_t tiles_c = s.co() / 2;
  std::vector<double> v_all(static_cast<std::size_t>(s.ni * 16));
  for (std::int64_t b = 0; b < s.batch; ++b) {
    for (std::int64_t tr = 0; tr < tiles_r; ++tr) {
      for (std::int64_t tc = 0; tc < tiles_c; ++tc) {
        // Input transforms for every channel of this tile.
        for (std::int64_t ni = 0; ni < s.ni; ++ni) {
          double d[4][4];
          for (int r = 0; r < 4; ++r)
            for (int c = 0; c < 4; ++c)
              d[r][c] = input.at(2 * tr + r, 2 * tc + c, ni, b);
          double v[4][4];
          mat_bt_d_b(d, v);
          double* dst = &v_all[static_cast<std::size_t>(ni * 16)];
          for (int r = 0; r < 4; ++r)
            for (int c = 0; c < 4; ++c) dst[r * 4 + c] = v[r][c];
        }
        // Pointwise accumulate and inverse-transform per output channel.
        for (std::int64_t no = 0; no < s.no; ++no) {
          double m[4][4] = {};
          for (std::int64_t ni = 0; ni < s.ni; ++ni) {
            const double* u =
                &u_all[static_cast<std::size_t>((ni * s.no + no) * 16)];
            const double* v = &v_all[static_cast<std::size_t>(ni * 16)];
            for (int idx = 0; idx < 16; ++idx) {
              m[idx / 4][idx % 4] += u[idx] * v[idx];
            }
          }
          double y[2][2];
          mat_at_m_a(m, y);
          for (int r = 0; r < 2; ++r)
            for (int c = 0; c < 2; ++c)
              output.at(2 * tr + r, 2 * tc + c, no, b) = y[r][c];
        }
      }
    }
  }
}

WinogradAnalysis winograd_analysis(const ConvShape& s) {
  WinogradAnalysis a;
  const double tiles = static_cast<double>(s.batch) *
                       static_cast<double>(s.ro() / 2) *
                       static_cast<double>(s.co() / 2);
  const double ni = static_cast<double>(s.ni);
  const double no = static_cast<double>(s.no);
  // Direct: 9 multiplies per output element per input channel.
  a.direct_multiplies =
      static_cast<double>(s.batch * s.ro() * s.co()) * ni * no * 9.0;
  // Winograd: 16 multiplies per tile (4 outputs) per (ni, no).
  a.winograd_multiplies = tiles * ni * no * 16.0;
  // Transforms: input B^T d B = 32 adds per (tile, ni); output A^T m A
  // = 24 adds per (tile, no); filter G g G^T = 28 ops per (ni, no),
  // amortized over all tiles (negligible but counted).
  a.transform_flops =
      tiles * ni * 32.0 + tiles * no * 24.0 + ni * no * 28.0;
  a.multiply_reduction = a.direct_multiplies / a.winograd_multiplies;
  // On SW26010 every transform add occupies the same P0 pipeline as a
  // saved multiply would; adds cannot fuse into FMAs here. Effective
  // speedup = direct work over (pointwise + transform) work.
  a.effective_speedup =
      a.direct_multiplies /
      (a.winograd_multiplies + a.transform_flops);
  a.filter_bytes_ratio = 16.0 / 9.0;
  return a;
}

}  // namespace swdnn::conv
