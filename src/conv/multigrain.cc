#include "src/conv/multigrain.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "src/conv/ldm_blocked.h"
#include "src/conv/mesh_gemm_driver.h"
#include "src/conv/regcomm_gemm.h"

namespace swdnn::conv {

namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

std::int64_t resolve_ro_end(const ConvShape& shape, std::int64_t ro_end) {
  return ro_end < 0 ? shape.ro() : ro_end;
}

void merge_stats(sim::LaunchStats& into, const sim::LaunchStats& s) {
  into.max_compute_cycles += s.max_compute_cycles;
  into.total_flops += s.total_flops;
  into.regcomm_messages += s.regcomm_messages;
  into.dma.get_bytes += s.dma.get_bytes;
  into.dma.put_bytes += s.dma.put_bytes;
  into.dma.requests += s.dma.requests;
  into.dma.misaligned_requests += s.dma.misaligned_requests;
  into.dma_seconds += s.dma_seconds;
  into.compute_seconds += s.compute_seconds;
  into.fault_events += s.fault_events;
  into.dma_retries += s.dma_retries;
  if (s.failed) {
    into.failed = true;
    into.persistent_fault = s.persistent_fault;
    into.failure = s.failure;
  }
}

}  // namespace

sim::LaunchStats run_filter_grained(sim::MeshExecutor& exec,
                                    const tensor::Tensor& input,
                                    const tensor::Tensor& filter,
                                    tensor::Tensor& output,
                                    const ConvShape& shape,
                                    const perf::ConvPlan& plan,
                                    std::int64_t ro_begin,
                                    std::int64_t ro_end) {
  const auto& spec = exec.spec();
  check_mesh_compatibility(shape, plan, spec.mesh_rows);
  ro_end = resolve_ro_end(shape, ro_end);

  const std::int64_t big_k = shape.kr * shape.kc * shape.ni;
  const std::int64_t big_co = shape.co();
  const std::int64_t big_b = shape.batch;
  const std::int64_t pixels = (ro_end - ro_begin) * big_co * big_b;
  const std::int64_t bpx = perf::filter_grained_block_px(shape, plan, spec);
  const std::int64_t k_chunk = perf::filter_grained_k_chunk(shape, plan, spec);
  if (pixels <= 0) return {};
  if (bpx <= 0 || k_chunk <= 0) {
    throw MeshMappingError("filter-grained tile set overflows LDM for " +
                           shape.to_string());
  }

  // The filter tensor [Kr][Kc][Ni][No] row-major IS the [K x No] matrix
  // in the contraction order the bitwise contract pins down (kr, kc, ni
  // ascending) — no host-side permutation needed.
  std::span<const double> w_matrix = filter.data();
  std::span<const double> in = input.data();
  std::span<double> out = output.data();
  const std::int64_t ci = shape.ci;
  const std::int64_t ni = shape.ni;
  const std::int64_t no = shape.no;

  std::vector<double> col;
  std::vector<double> panel;
  sim::LaunchStats total;

  for (std::int64_t px0 = 0; px0 < pixels; px0 += bpx) {
    const std::int64_t w = std::min(bpx, pixels - px0);
    col.assign(static_cast<std::size_t>(big_k * w), 0.0);
    // Column-matrix panel: row k = (kr*Kc + kc)*Ni + ni_c of the im2col
    // lowering, columns the flattened (ro, co, b) pixels [px0, px0+w).
    // Pixels with a common (ro, co) are batch-contiguous in the input,
    // so the gather copies runs.
    for (std::int64_t k = 0; k < big_k; ++k) {
      const std::int64_t kr = k / (shape.kc * ni);
      const std::int64_t kc = (k / ni) % shape.kc;
      const std::int64_t ni_c = k % ni;
      double* dst_row = col.data() + k * w;
      std::int64_t n = 0;
      while (n < w) {
        const std::int64_t px = px0 + n;
        const std::int64_t ro = ro_begin + px / (big_co * big_b);
        const std::int64_t co = (px / big_b) % big_co;
        const std::int64_t b = px % big_b;
        const std::int64_t run = std::min(big_b - b, w - n);
        const double* src =
            in.data() +
            (((ro + kr) * ci + (co + kc)) * ni + ni_c) * big_b + b;
        std::memcpy(dst_row + n, src,
                    static_cast<std::size_t>(run) * sizeof(double));
        n += run;
      }
    }

    panel.assign(static_cast<std::size_t>(no * w), 0.0);
    const sim::LaunchStats stats =
        mesh_gemm(exec, w_matrix, col, panel, no, big_k, w,
                  {.accumulate = false, .k_chunk = k_chunk});
    merge_stats(total, stats);
    if (total.failed) return total;

    // Scatter the [No x w] panel back into [Ro][Co][No][B] (again in
    // batch-contiguous runs).
    for (std::int64_t no_c = 0; no_c < no; ++no_c) {
      const double* src_row = panel.data() + no_c * w;
      std::int64_t n = 0;
      while (n < w) {
        const std::int64_t px = px0 + n;
        const std::int64_t ro = ro_begin + px / (big_co * big_b);
        const std::int64_t co = (px / big_b) % big_co;
        const std::int64_t b = px % big_b;
        const std::int64_t run = std::min(big_b - b, w - n);
        double* dst =
            out.data() + ((ro * big_co + co) * no + no_c) * big_b + b;
        std::memcpy(dst, src_row + n,
                    static_cast<std::size_t>(run) * sizeof(double));
        n += run;
      }
    }
  }
  return total;
}

sim::LaunchStats run_pixel_grained(sim::MeshExecutor& exec,
                                   const tensor::Tensor& input,
                                   const tensor::Tensor& filter,
                                   tensor::Tensor& output,
                                   const ConvShape& shape,
                                   const perf::ConvPlan& plan,
                                   std::int64_t ro_begin,
                                   std::int64_t ro_end) {
  const auto& spec = exec.spec();
  const std::int64_t p = spec.mesh_rows;
  check_mesh_compatibility(shape, plan, static_cast<int>(p));
  ro_end = resolve_ro_end(shape, ro_end);
  if (ro_end <= ro_begin) return {};

  const std::int64_t ni_t = ceil_div(shape.ni, p);
  const std::int64_t no_t = ceil_div(shape.no, p);
  const std::int64_t b_t = ceil_div(shape.batch, p);
  const std::int64_t taps = shape.kr * shape.kc;
  const std::int64_t big_co = shape.co();
  const std::int64_t ni = shape.ni;
  const std::int64_t no = shape.no;
  const std::int64_t big_b = shape.batch;
  const std::int64_t ci = shape.ci;

  std::span<const double> in = input.data();
  std::span<const double> w_all = filter.data();
  std::span<double> out = output.data();

  auto kernel = [&, ro_begin, ro_end](sim::CpeContext& ctx) {
    const std::int64_t i = ctx.row();
    const std::int64_t j = ctx.col();

    auto w_taps = ctx.ldm().alloc_doubles(
        static_cast<std::size_t>(taps * ni_t * no_t));
    auto w_recv =
        ctx.ldm().alloc_doubles(static_cast<std::size_t>(ni_t * no_t));
    auto di_tile =
        ctx.ldm().alloc_doubles(static_cast<std::size_t>(ni_t * b_t));
    auto di_recv =
        ctx.ldm().alloc_doubles(static_cast<std::size_t>(ni_t * b_t));
    auto do_tile =
        ctx.ldm().alloc_doubles(static_cast<std::size_t>(no_t * b_t));

    const std::int64_t valid_no =
        std::clamp<std::int64_t>(no - i * no_t, 0, no_t);
    const std::int64_t valid_b =
        std::clamp<std::int64_t>(big_b - j * b_t, 0, b_t);

    // Preload every filter tap tile once: W(i,j) = output-channel block
    // i x input-channel block j (the Fig. 3 distribution), [ni_t][no_t]
    // row-major, zero-padded at the ragged edges.
    for (std::int64_t t = 0; t < taps; ++t) {
      std::span<double> tile = std::span<double>(w_taps).subspan(
          static_cast<std::size_t>(t * ni_t * no_t),
          static_cast<std::size_t>(ni_t * no_t));
      for (std::int64_t r = 0; r < ni_t; ++r) {
        std::span<double> row =
            tile.subspan(static_cast<std::size_t>(r * no_t),
                         static_cast<std::size_t>(no_t));
        const std::int64_t ni_idx = j * ni_t + r;
        const std::int64_t valid = ni_idx < ni ? valid_no : 0;
        if (valid > 0) {
          ctx.dma_get({w_all.data() + (t * ni + ni_idx) * no + i * no_t,
                       static_cast<std::size_t>(valid)},
                      row.first(static_cast<std::size_t>(valid)));
        }
        std::fill(row.begin() + valid, row.end(), 0.0);
      }
    }

    for (std::int64_t ro = ro_begin; ro < ro_end; ++ro) {
      for (std::int64_t co = 0; co < big_co; ++co) {
        std::fill(do_tile.begin(), do_tile.end(), 0.0);
        for (std::int64_t t = 0; t < taps; ++t) {
          const std::int64_t kr = t / shape.kc;
          const std::int64_t kc = t % shape.kc;
          // Di tile: input-channel block i x batch block j.
          for (std::int64_t r = 0; r < ni_t; ++r) {
            std::span<double> row =
                di_tile.subspan(static_cast<std::size_t>(r * b_t),
                                static_cast<std::size_t>(b_t));
            const std::int64_t ni_idx = i * ni_t + r;
            const std::int64_t valid = ni_idx < ni ? valid_b : 0;
            if (valid > 0) {
              ctx.dma_get(
                  {in.data() +
                       (((ro + kr) * ci + (co + kc)) * ni + ni_idx) * big_b +
                       j * b_t,
                   static_cast<std::size_t>(valid)},
                  row.first(static_cast<std::size_t>(valid)));
            }
            std::fill(row.begin() + valid, row.end(), 0.0);
          }
          mesh_gemm_accumulate(
              ctx,
              std::span<const double>(w_taps).subspan(
                  static_cast<std::size_t>(t * ni_t * no_t),
                  static_cast<std::size_t>(ni_t * no_t)),
              di_tile, do_tile, w_recv, di_recv, static_cast<int>(no_t),
              static_cast<int>(ni_t), static_cast<int>(b_t));
        }
        for (std::int64_t ml = 0; ml < valid_no; ++ml) {
          if (valid_b == 0) break;
          const std::int64_t no_idx = i * no_t + ml;
          ctx.dma_put(
              std::span<const double>(do_tile).subspan(
                  static_cast<std::size_t>(ml * b_t),
                  static_cast<std::size_t>(valid_b)),
              {out.data() + ((ro * big_co + co) * no + no_idx) * big_b +
                   j * b_t,
               static_cast<std::size_t>(valid_b)});
        }
      }
    }
  };
  return exec.run(kernel);
}

}  // namespace swdnn::conv
