#include "src/conv/fftconv.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace swdnn::conv {

void fft_inplace(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  if (n == 0 || (n & (n - 1)) != 0) {
    throw std::invalid_argument("fft_inplace: size must be a power of two");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        2.0 * std::numbers::pi / static_cast<double>(len) *
        (inverse ? 1.0 : -1.0);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const std::complex<double> u = data[i + j];
        const std::complex<double> v = data[i + j + len / 2] * w;
        data[i + j] = u + v;
        data[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= scale;
  }
}

void fft2d_inplace(std::vector<std::complex<double>>& grid, std::int64_t n,
                   bool inverse) {
  if (static_cast<std::int64_t>(grid.size()) != n * n) {
    throw std::invalid_argument("fft2d_inplace: grid size mismatch");
  }
  std::vector<std::complex<double>> line(static_cast<std::size_t>(n));
  // Rows.
  for (std::int64_t r = 0; r < n; ++r) {
    std::copy_n(grid.begin() + r * n, n, line.begin());
    fft_inplace(line, inverse);
    std::copy_n(line.begin(), n, grid.begin() + r * n);
  }
  // Columns.
  for (std::int64_t c = 0; c < n; ++c) {
    for (std::int64_t r = 0; r < n; ++r) {
      line[static_cast<std::size_t>(r)] =
          grid[static_cast<std::size_t>(r * n + c)];
    }
    fft_inplace(line, inverse);
    for (std::int64_t r = 0; r < n; ++r) {
      grid[static_cast<std::size_t>(r * n + c)] =
          line[static_cast<std::size_t>(r)];
    }
  }
}

std::int64_t next_pow2(std::int64_t value) {
  std::int64_t p = 1;
  while (p < value) p <<= 1;
  return p;
}

void fft_conv_forward(const tensor::Tensor& input,
                      const tensor::Tensor& filter, tensor::Tensor& output,
                      const ConvShape& s) {
  const std::int64_t n = next_pow2(std::max(s.ri, s.ci));
  const auto plane = static_cast<std::size_t>(n * n);
  std::vector<std::complex<double>> in_f(plane);
  std::vector<std::complex<double>> w_f(plane);
  std::vector<std::complex<double>> acc(plane);

  output.zero();
  for (std::int64_t b = 0; b < s.batch; ++b) {
    for (std::int64_t no = 0; no < s.no; ++no) {
      std::fill(acc.begin(), acc.end(), std::complex<double>(0, 0));
      for (std::int64_t ni = 0; ni < s.ni; ++ni) {
        // Input plane.
        std::fill(in_f.begin(), in_f.end(), std::complex<double>(0, 0));
        for (std::int64_t r = 0; r < s.ri; ++r)
          for (std::int64_t c = 0; c < s.ci; ++c)
            in_f[static_cast<std::size_t>(r * n + c)] =
                input.at(r, c, ni, b);
        fft2d_inplace(in_f, n, false);
        // Filter plane.
        std::fill(w_f.begin(), w_f.end(), std::complex<double>(0, 0));
        for (std::int64_t kr = 0; kr < s.kr; ++kr)
          for (std::int64_t kc = 0; kc < s.kc; ++kc)
            w_f[static_cast<std::size_t>(kr * n + kc)] =
                filter.at(kr, kc, ni, no);
        fft2d_inplace(w_f, n, false);
        // Cross-correlation theorem: accumulate F(in) * conj(F(w)).
        for (std::size_t idx = 0; idx < plane; ++idx) {
          acc[idx] += in_f[idx] * std::conj(w_f[idx]);
        }
      }
      fft2d_inplace(acc, n, true);
      // The theorem yields the dense stride-1 correlation; strided
      // outputs just sample it.
      for (std::int64_t ro = 0; ro < s.ro(); ++ro)
        for (std::int64_t co = 0; co < s.co(); ++co)
          output.at(ro, co, no, b) =
              acc[static_cast<std::size_t>(ro * s.stride_r * n +
                                           co * s.stride_c)]
                  .real();
    }
  }
}

double fft_method_flops(const ConvShape& s) {
  const double n = static_cast<double>(next_pow2(std::max(s.ri, s.ci)));
  const double log2n = std::log2(n);
  const double plane_fft = 5.0 * n * n * log2n;  // classic 5 N^2 log N
  const double b = static_cast<double>(s.batch);
  const double ni = static_cast<double>(s.ni);
  const double no = static_cast<double>(s.no);
  // Forward FFTs of inputs (per b, ni) and filters (per ni, no), the
  // pointwise complex products (6 flops each, per b, ni, no), and the
  // inverse FFTs (per b, no).
  return b * ni * plane_fft + ni * no * plane_fft +
         b * ni * no * 6.0 * n * n + b * no * plane_fft;
}

double fft_required_bandwidth_gbs(const ConvShape& s,
                                  const arch::Sw26010Spec& spec) {
  const double n = static_cast<double>(next_pow2(std::max(s.ri, s.ci)));
  const double plane_bytes = n * n * 16.0;  // complex double
  const double b = static_cast<double>(s.batch);
  const double ni = static_cast<double>(s.ni);
  const double no = static_cast<double>(s.no);
  // Best-case staging: each 2-D FFT streams its plane twice (row pass,
  // then the transposed column pass — rows fit LDM, full planes do
  // not), each frequency plane is read once per pointwise product, and
  // the accumulator plane is resident. Transform traffic:
  const double fft_traffic =
      (b * ni + ni * no + b * no) * 2.0 * plane_bytes;
  // Pointwise pass: stream in-spectrum and filter-spectrum per (b, ni,
  // no) term. Filter spectra are reused across b via LDM only if they
  // fit — at these sizes one spectrum is n*n*16 bytes (>= 64 KB for
  // n >= 64), so they do not; charge the stream.
  const double pointwise_traffic = b * ni * no * 2.0 * plane_bytes /
                                   static_cast<double>(spec.cpes_per_group());
  const double total_bytes = fft_traffic + pointwise_traffic;
  // Roofline: bandwidth needed to keep the CG at peak for the method's
  // own flops. (Using the spatial method's smaller flop count would make
  // the number even larger.)
  const double seconds_at_peak =
      fft_method_flops(s) / (spec.peak_gflops_per_cg() * 1e9);
  return total_bytes / seconds_at_peak / 1e9;
}

}  // namespace swdnn::conv
