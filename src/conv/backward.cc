#include "src/conv/backward.h"

#include <stdexcept>

namespace swdnn::conv {

tensor::Tensor zero_pad_output_gradient(const tensor::Tensor& d_output,
                                        const ConvShape& shape) {
  const std::int64_t pr = shape.kr - 1;
  const std::int64_t pc = shape.kc - 1;
  tensor::Tensor padded({shape.ro() + 2 * pr, shape.co() + 2 * pc, shape.no,
                         shape.batch});
  for (std::int64_t r = 0; r < shape.ro(); ++r)
    for (std::int64_t c = 0; c < shape.co(); ++c)
      for (std::int64_t no = 0; no < shape.no; ++no)
        for (std::int64_t b = 0; b < shape.batch; ++b)
          padded.at(r + pr, c + pc, no, b) = d_output.at(r, c, no, b);
  return padded;
}

tensor::Tensor rotate_filter(const tensor::Tensor& filter,
                             const ConvShape& shape) {
  tensor::Tensor rotated({shape.kr, shape.kc, shape.no, shape.ni});
  for (std::int64_t kr = 0; kr < shape.kr; ++kr)
    for (std::int64_t kc = 0; kc < shape.kc; ++kc)
      for (std::int64_t ni = 0; ni < shape.ni; ++ni)
        for (std::int64_t no = 0; no < shape.no; ++no)
          rotated.at(kr, kc, no, ni) =
              filter.at(shape.kr - 1 - kr, shape.kc - 1 - kc, ni, no);
  return rotated;
}

ConvShape backward_data_shape(const ConvShape& shape) {
  // Output image of the backward pass = the forward input image; the
  // padded gradient supplies Ri + Kr - 1 input rows.
  return ConvShape::from_output(shape.batch, shape.no, shape.ni, shape.ri,
                                shape.ci, shape.kr, shape.kc);
}

ForwardResult swconv_backward_data(SwConvolution& sw,
                                   const tensor::Tensor& d_output,
                                   const tensor::Tensor& filter,
                                   tensor::Tensor& d_input,
                                   const ConvShape& shape,
                                   tensor::TensorPool* pool) {
  if (shape.stride_r != 1 || shape.stride_c != 1) {
    throw std::invalid_argument(
        "swconv_backward_data: the mesh path is stride-1 only (use the "
        "im2col gradients for strided layers)");
  }
  // Resolve the plan first: this is the same single counted lookup (and
  // the same MeshMappingError on unmappable shapes) sw.forward() would
  // do, but done before the padded/rotated staging tensors exist, so
  // callers that catch the error and reroute to the host pay nothing.
  const ConvShape bshape = backward_data_shape(shape);
  const perf::PlanChoice choice = sw.plan_for(bshape, true);

  const std::int64_t pr = shape.kr - 1;
  const std::int64_t pc = shape.kc - 1;
  const std::vector<std::int64_t> padded_dims{
      shape.ro() + 2 * pr, shape.co() + 2 * pc, shape.no, shape.batch};
  const std::vector<std::int64_t> rotated_dims{shape.kr, shape.kc, shape.no,
                                               shape.ni};
  // The pad borders must be zero, so the padded buffer comes back
  // zeroed either way; the rotated filter is fully overwritten.
  tensor::PooledTensor padded =
      pool != nullptr
          ? pool->acquire(padded_dims)
          : tensor::PooledTensor(nullptr, tensor::Tensor(padded_dims));
  tensor::PooledTensor rotated =
      pool != nullptr
          ? pool->acquire_dirty(rotated_dims)
          : tensor::PooledTensor(nullptr, tensor::Tensor(rotated_dims));
  for (std::int64_t r = 0; r < shape.ro(); ++r)
    for (std::int64_t c = 0; c < shape.co(); ++c)
      for (std::int64_t no = 0; no < shape.no; ++no)
        for (std::int64_t b = 0; b < shape.batch; ++b)
          padded->at(r + pr, c + pc, no, b) = d_output.at(r, c, no, b);
  for (std::int64_t kr = 0; kr < shape.kr; ++kr)
    for (std::int64_t kc = 0; kc < shape.kc; ++kc)
      for (std::int64_t ni = 0; ni < shape.ni; ++ni)
        for (std::int64_t no = 0; no < shape.no; ++no)
          rotated->at(kr, kc, no, ni) =
              filter.at(shape.kr - 1 - kr, shape.kc - 1 - kc, ni, no);
  return sw.execute_choice(choice, *padded, *rotated, d_input, bshape);
}

sim::LaunchStats mesh_backward_filter(sim::MeshExecutor& exec,
                                      const tensor::Tensor& input,
                                      const tensor::Tensor& d_output,
                                      tensor::Tensor& d_filter,
                                      const ConvShape& shape) {
  const std::int64_t s_len = shape.ro() * shape.co() * shape.batch;
  // dOut as a [S][No] matrix (s = (ro, co, b) row-major). Materialized
  // once; the same matrix serves every filter tap.
  std::vector<double> dout_mat(
      static_cast<std::size_t>(s_len * shape.no));
  for (std::int64_t ro = 0; ro < shape.ro(); ++ro)
    for (std::int64_t co = 0; co < shape.co(); ++co)
      for (std::int64_t b = 0; b < shape.batch; ++b) {
        const std::int64_t s = (ro * shape.co() + co) * shape.batch + b;
        for (std::int64_t no = 0; no < shape.no; ++no) {
          dout_mat[static_cast<std::size_t>(s * shape.no + no)] =
              d_output.at(ro, co, no, b);
        }
      }

  sim::LaunchStats total;
  std::vector<double> in_mat(static_cast<std::size_t>(s_len * shape.ni));
  std::vector<double> dw_slice(
      static_cast<std::size_t>(shape.ni * shape.no));
  for (std::int64_t kr = 0; kr < shape.kr; ++kr) {
    for (std::int64_t kc = 0; kc < shape.kc; ++kc) {
      // In_shift as [S][Ni]: the input pixels this tap touches.
      for (std::int64_t ro = 0; ro < shape.ro(); ++ro)
        for (std::int64_t co = 0; co < shape.co(); ++co)
          for (std::int64_t b = 0; b < shape.batch; ++b) {
            const std::int64_t s =
                (ro * shape.co() + co) * shape.batch + b;
            for (std::int64_t ni = 0; ni < shape.ni; ++ni) {
              in_mat[static_cast<std::size_t>(s * shape.ni + ni)] =
                  input.at(ro * shape.stride_r + kr,
                           co * shape.stride_c + kc, ni, b);
            }
          }
      // dW(kr,kc)[ni][no] = sum_s in_mat[s][ni] * dout_mat[s][no]: the
      // driver's a=[k][m], b=[k][n] convention with k = S.
      const sim::LaunchStats stats =
          mesh_gemm(exec, in_mat, dout_mat, dw_slice, shape.ni, s_len,
                    shape.no);
      for (std::int64_t ni = 0; ni < shape.ni; ++ni)
        for (std::int64_t no = 0; no < shape.no; ++no)
          d_filter.at(kr, kc, ni, no) =
              dw_slice[static_cast<std::size_t>(ni * shape.no + no)];

      total.max_compute_cycles += stats.max_compute_cycles;
      total.total_flops += stats.total_flops;
      total.regcomm_messages += stats.regcomm_messages;
      total.dma.get_bytes += stats.dma.get_bytes;
      total.dma.put_bytes += stats.dma.put_bytes;
      total.dma.requests += stats.dma.requests;
      total.dma_seconds += stats.dma_seconds;
      total.compute_seconds += stats.compute_seconds;
      total.fault_events += stats.fault_events;
      total.dma_retries += stats.dma_retries;
      if (stats.failed && !total.failed) {
        total.failed = true;
        total.persistent_fault = stats.persistent_fault;
        total.failure = stats.failure;
      }
    }
  }
  return total;
}

}  // namespace swdnn::conv
