#include "src/conv/ldm_blocked.h"

#include <stdexcept>
#include <string>

#include "src/conv/regcomm_gemm.h"

namespace swdnn::conv {

namespace {

std::int64_t resolve_ro_end(const ConvShape& shape, std::int64_t ro_end) {
  return ro_end < 0 ? shape.ro() : ro_end;
}

void require(bool ok, const std::string& what) {
  if (!ok) throw MeshMappingError("mesh compatibility: " + what);
}

}  // namespace

void check_mesh_compatibility(const ConvShape& shape,
                              const perf::ConvPlan& plan, int mesh_dim) {
  const std::int64_t p = mesh_dim;
  require(shape.stride_r == 1 && shape.stride_c == 1,
          "mesh kernels implement the paper's stride-1 convolutions");
  require(plan.block_ni == 0 || plan.block_ni == shape.ni,
          "level-1 kernels contract the full Ni (no block_ni)");

  if (perf::plan_kind_is_multigrain(plan.kind)) {
    // The multigrain mappings ceil-divide and zero-pad their tiles, so
    // no divisibility rules apply — only the LDM budget can refuse.
    // The budget is evaluated on the default machine with this mesh
    // dimension (the repo's specs vary only in mesh size).
    arch::Sw26010Spec spec = arch::default_spec();
    spec.mesh_rows = mesh_dim;
    spec.mesh_cols = mesh_dim;
    if (plan.kind == perf::PlanKind::kFilterGrained) {
      require(perf::filter_grained_k_chunk(shape, plan, spec) > 0,
              "filter-grained tile set overflows LDM");
    } else {
      require(perf::ldm_bytes_required(shape, plan, spec) <=
                  static_cast<std::int64_t>(spec.ldm_bytes -
                                            spec.ldm_reserved_bytes),
              "pixel-grained filter taps overflow LDM");
    }
    return;
  }

  require(shape.ni % p == 0, "Ni must divide by the mesh dimension");
  require(shape.no % p == 0, "No must divide by the mesh dimension");
  require(shape.co() % plan.block_co == 0, "Co must divide by block_co");
  switch (plan.kind) {
    case perf::PlanKind::kImageSizeAware:
      require(plan.block_b % p == 0,
              "block_b must divide by the mesh dimension");
      require(shape.batch % plan.block_b == 0,
              "batch must divide by block_b");
      break;
    case perf::PlanKind::kBatchSizeAware:
      require(shape.batch % p == 0,
              "batch must divide by the mesh dimension");
      break;
    case perf::PlanKind::kDirect:
      throw MeshMappingError("direct plan has no mesh kernel");
    case perf::PlanKind::kFilterGrained:
    case perf::PlanKind::kPixelGrained:
      break;  // handled above
  }
}

sim::LaunchStats run_image_size_aware(sim::MeshExecutor& exec,
                                      const tensor::Tensor& input,
                                      const tensor::Tensor& filter,
                                      tensor::Tensor& output,
                                      const ConvShape& shape,
                                      const perf::ConvPlan& plan,
                                      std::int64_t ro_begin,
                                      std::int64_t ro_end) {
  const int p = exec.spec().mesh_rows;
  check_mesh_compatibility(shape, plan, p);
  ro_end = resolve_ro_end(shape, ro_end);

  const std::int64_t ni_p = shape.ni / p;
  const std::int64_t no_p = shape.no / p;
  const std::int64_t bb = plan.block_b;
  const std::int64_t bb_p = bb / p;
  const std::int64_t bco = plan.block_co;
  const std::int64_t s_tile = bco * bb_p;  // pixel-batch extent per CPE
  const std::int64_t big_b = shape.batch;
  const std::int64_t big_no = shape.no;

  auto kernel = [&, ro_begin, ro_end](sim::CpeContext& ctx) {
    const std::int64_t i = ctx.row();  // Di channel block / Do channel block
    const std::int64_t j = ctx.col();  // W channel block / batch block

    auto w_tile = ctx.ldm().alloc_doubles(
        static_cast<std::size_t>(ni_p * no_p));
    auto w_recv = ctx.ldm().alloc_doubles(
        static_cast<std::size_t>(ni_p * no_p));
    auto di_tile = ctx.ldm().alloc_doubles(
        static_cast<std::size_t>(ni_p * s_tile));
    auto di_recv = ctx.ldm().alloc_doubles(
        static_cast<std::size_t>(ni_p * s_tile));
    auto do_tile = ctx.ldm().alloc_doubles(
        static_cast<std::size_t>(no_p * s_tile));

    for (std::int64_t b0 = 0; b0 < shape.batch; b0 += bb) {
      for (std::int64_t ro = ro_begin; ro < ro_end; ++ro) {
        for (std::int64_t c0 = 0; c0 < shape.co(); c0 += bco) {
          std::fill(do_tile.begin(), do_tile.end(), 0.0);
          for (std::int64_t kr = 0; kr < shape.kr; ++kr) {
            for (std::int64_t kc = 0; kc < shape.kc; ++kc) {
              // Filter slice (kr, kc): this CPE's input-channel block j
              // and output-channel block i, laid out [ni_local][no_local].
              ctx.dma_get_strided(
                  &filter.data()[filter.offset(
                      {kr, kc, j * ni_p, i * no_p})],
                  ni_p, no_p, big_no, w_tile);
              // Input pixels (ro+kr, c0+kc+c_rel): channel block i,
              // batch block j, laid out [ni_local][c_rel*bb_p + b].
              for (std::int64_t c_rel = 0; c_rel < bco; ++c_rel) {
                for (std::int64_t nl = 0; nl < ni_p; ++nl) {
                  const double* src = &input.data()[input.offset(
                      {ro + kr, c0 + kc + c_rel, i * ni_p + nl,
                       j * bb_p + b0})];
                  std::span<double> dst = di_tile.subspan(
                      static_cast<std::size_t>(nl * s_tile + c_rel * bb_p),
                      static_cast<std::size_t>(bb_p));
                  ctx.dma_get({src, static_cast<std::size_t>(bb_p)}, dst);
                }
              }
              mesh_gemm_accumulate(ctx, w_tile, di_tile, do_tile, w_recv,
                                   di_recv, static_cast<int>(no_p),
                                   static_cast<int>(ni_p),
                                   static_cast<int>(s_tile));
            }
          }
          // Write back: output-channel block i, batch block j.
          for (std::int64_t c_rel = 0; c_rel < bco; ++c_rel) {
            for (std::int64_t nl = 0; nl < no_p; ++nl) {
              double* dst = &output.data()[output.offset(
                  {ro, c0 + c_rel, i * no_p + nl, j * bb_p + b0})];
              std::span<const double> src = do_tile.subspan(
                  static_cast<std::size_t>(nl * s_tile + c_rel * bb_p),
                  static_cast<std::size_t>(bb_p));
              ctx.dma_put(src, {dst, static_cast<std::size_t>(bb_p)});
            }
          }
        }
      }
    }
  };
  (void)big_b;
  return exec.run(kernel);
}

sim::LaunchStats run_image_size_aware_vectorized(
    sim::MeshExecutor& exec, const tensor::Tensor& input_vec,
    const tensor::Tensor& filter, tensor::Tensor& output_vec,
    const ConvShape& shape, const perf::ConvPlan& plan,
    std::int64_t ro_begin, std::int64_t ro_end) {
  const int p = exec.spec().mesh_rows;
  check_mesh_compatibility(shape, plan, p);
  if (plan.block_b % (4 * p) != 0) {
    throw std::invalid_argument(
        "vectorized layout: block_b must divide into whole batch quads "
        "per CPE (multiple of 4*mesh_dim)");
  }
  ro_end = resolve_ro_end(shape, ro_end);

  const std::int64_t ni_p = shape.ni / p;
  const std::int64_t no_p = shape.no / p;
  const std::int64_t bb = plan.block_b;
  const std::int64_t bb_p = bb / p;
  const std::int64_t quads_p = bb_p / 4;  // batch quads per CPE
  const std::int64_t bco = plan.block_co;
  const std::int64_t s_tile = bco * bb_p;
  const std::int64_t big_no = shape.no;

  auto kernel = [&, ro_begin, ro_end](sim::CpeContext& ctx) {
    const std::int64_t i = ctx.row();
    const std::int64_t j = ctx.col();

    auto w_tile = ctx.ldm().alloc_doubles(
        static_cast<std::size_t>(ni_p * no_p));
    auto w_recv = ctx.ldm().alloc_doubles(
        static_cast<std::size_t>(ni_p * no_p));
    auto di_tile = ctx.ldm().alloc_doubles(
        static_cast<std::size_t>(ni_p * s_tile));
    auto di_recv = ctx.ldm().alloc_doubles(
        static_cast<std::size_t>(ni_p * s_tile));
    auto do_tile = ctx.ldm().alloc_doubles(
        static_cast<std::size_t>(no_p * s_tile));
    // One (4, bCo) run of the vectorized layout at a time.
    auto staging =
        ctx.ldm().alloc_doubles(static_cast<std::size_t>(bco * 4));

    for (std::int64_t b0 = 0; b0 < shape.batch; b0 += bb) {
      const std::int64_t q0 = (b0 + j * bb_p) / 4;  // first owned quad
      for (std::int64_t ro = ro_begin; ro < ro_end; ++ro) {
        for (std::int64_t c0 = 0; c0 < shape.co(); c0 += bco) {
          std::fill(do_tile.begin(), do_tile.end(), 0.0);
          for (std::int64_t kr = 0; kr < shape.kr; ++kr) {
            for (std::int64_t kc = 0; kc < shape.kc; ++kc) {
              ctx.dma_get_strided(
                  &filter.data()[filter.offset(
                      {kr, kc, j * ni_p, i * no_p})],
                  ni_p, no_p, big_no, w_tile);
              // Input: for each (quad, channel) one contiguous bCo*4
              // run along (C, lane) — the Section V-C layout payoff.
              for (std::int64_t q = 0; q < quads_p; ++q) {
                for (std::int64_t nl = 0; nl < ni_p; ++nl) {
                  const double* src = &input_vec.data()[input_vec.offset(
                      {q0 + q, i * ni_p + nl, ro + kr, c0 + kc, 0})];
                  ctx.dma_get({src, static_cast<std::size_t>(bco * 4)},
                              staging);
                  for (std::int64_t c_rel = 0; c_rel < bco; ++c_rel) {
                    for (int lane = 0; lane < 4; ++lane) {
                      di_tile[static_cast<std::size_t>(
                          nl * s_tile + c_rel * bb_p + q * 4 + lane)] =
                          staging[static_cast<std::size_t>(c_rel * 4 +
                                                           lane)];
                    }
                  }
                }
              }
              mesh_gemm_accumulate(ctx, w_tile, di_tile, do_tile, w_recv,
                                   di_recv, static_cast<int>(no_p),
                                   static_cast<int>(ni_p),
                                   static_cast<int>(s_tile));
            }
          }
          // Output write-back, same (4, bCo) run structure.
          for (std::int64_t q = 0; q < quads_p; ++q) {
            for (std::int64_t nl = 0; nl < no_p; ++nl) {
              for (std::int64_t c_rel = 0; c_rel < bco; ++c_rel) {
                for (int lane = 0; lane < 4; ++lane) {
                  staging[static_cast<std::size_t>(c_rel * 4 + lane)] =
                      do_tile[static_cast<std::size_t>(
                          nl * s_tile + c_rel * bb_p + q * 4 + lane)];
                }
              }
              double* dst = &output_vec.data()[output_vec.offset(
                  {q0 + q, i * no_p + nl, ro, c0, 0})];
              ctx.dma_put(staging,
                          {dst, static_cast<std::size_t>(bco * 4)});
            }
          }
        }
      }
    }
  };
  return exec.run(kernel);
}

sim::LaunchStats run_batch_size_aware(sim::MeshExecutor& exec,
                                      const tensor::Tensor& input,
                                      const tensor::Tensor& filter,
                                      tensor::Tensor& output,
                                      const ConvShape& shape,
                                      const perf::ConvPlan& plan,
                                      std::int64_t ro_begin,
                                      std::int64_t ro_end) {
  const int p = exec.spec().mesh_rows;
  check_mesh_compatibility(shape, plan, p);
  ro_end = resolve_ro_end(shape, ro_end);

  const std::int64_t ni_p = shape.ni / p;
  const std::int64_t no_p = shape.no / p;
  const std::int64_t b_p = shape.batch / p;
  const std::int64_t bco = plan.block_co;
  const std::int64_t big_no = shape.no;

  auto kernel = [&, ro_begin, ro_end](sim::CpeContext& ctx) {
    const std::int64_t i = ctx.row();
    const std::int64_t j = ctx.col();

    auto w_tile = ctx.ldm().alloc_doubles(
        static_cast<std::size_t>(ni_p * no_p));
    auto w_recv = ctx.ldm().alloc_doubles(
        static_cast<std::size_t>(ni_p * no_p));
    auto di_tile = ctx.ldm().alloc_doubles(
        static_cast<std::size_t>(ni_p * b_p));
    auto di_recv = ctx.ldm().alloc_doubles(
        static_cast<std::size_t>(ni_p * b_p));
    // Output tile: [c_rel][no_local][b] so each output column's slice is
    // contiguous for the mesh GEMM.
    auto do_tile = ctx.ldm().alloc_doubles(
        static_cast<std::size_t>(bco * no_p * b_p));

    for (std::int64_t c0 = 0; c0 < shape.co(); c0 += bco) {
      for (std::int64_t ro = ro_begin; ro < ro_end; ++ro) {
        std::fill(do_tile.begin(), do_tile.end(), 0.0);
        for (std::int64_t kr = 0; kr < shape.kr; ++kr) {
          const std::int64_t ri = ro + kr;
          for (std::int64_t ci = c0; ci < c0 + bco + shape.kc - 1; ++ci) {
            // One input pixel column: channel block i, batch block j.
            ctx.dma_get_strided(
                &input.data()[input.offset({ri, ci, i * ni_p, j * b_p})],
                ni_p, b_p, shape.batch, di_tile);
            for (std::int64_t kc = 0; kc < shape.kc; ++kc) {
              const std::int64_t co = ci - kc;
              if (co < c0 || co >= c0 + bco) continue;
              ctx.dma_get_strided(
                  &filter.data()[filter.offset(
                      {kr, kc, j * ni_p, i * no_p})],
                  ni_p, no_p, big_no, w_tile);
              std::span<double> do_slice = do_tile.subspan(
                  static_cast<std::size_t>((co - c0) * no_p * b_p),
                  static_cast<std::size_t>(no_p * b_p));
              mesh_gemm_accumulate(ctx, w_tile, di_tile, do_slice, w_recv,
                                   di_recv, static_cast<int>(no_p),
                                   static_cast<int>(ni_p),
                                   static_cast<int>(b_p));
            }
          }
        }
        for (std::int64_t c_rel = 0; c_rel < bco; ++c_rel) {
          for (std::int64_t nl = 0; nl < no_p; ++nl) {
            double* dst = &output.data()[output.offset(
                {ro, c0 + c_rel, i * no_p + nl, j * b_p})];
            std::span<const double> src = do_tile.subspan(
                static_cast<std::size_t>((c_rel * no_p + nl) * b_p),
                static_cast<std::size_t>(b_p));
            ctx.dma_put(src, {dst, static_cast<std::size_t>(b_p)});
          }
        }
      }
    }
  };
  return exec.run(kernel);
}

}  // namespace swdnn::conv
