#pragma once
// Fused convolution epilogue: per-channel bias add and ReLU applied to
// the convolution output while it is still hot, instead of as separate
// layer passes. This is the host-side analogue of the paper's core
// move — keep work inside the LDM-resident loop nest rather than
// round-tripping activations through memory between layers. The graph
// compiler's fusion pass collapses conv+bias+ReLU (and FC+activation)
// chains into one node that dispatches a single backend call carrying
// one of these epilogues.
//
// Bitwise contract: applying the epilogue is element-for-element the
// same arithmetic the unfused layers perform (one bias add per output
// element, then the ReLU select), so fused and unfused execution agree
// bitwise — the differential suite in tests/dnn_fusion_test.cc holds
// this on every route, mesh or host.

#include <cstdint>

#include "src/conv/shape.h"

namespace swdnn::conv {

/// What to run over the convolution output before it is handed back.
/// Both pointers are borrowed and must outlive the call.
struct ConvEpilogue {
  /// Per-output-channel bias, length shape.no; nullptr = no bias.
  const double* bias = nullptr;
  /// When non-null, ReLU is applied after the bias and the activation
  /// mask (1.0 where the pre-ReLU value was > 0, else 0.0) is written
  /// here; length = the output element count. The mask is exactly what
  /// the unfused ReLU layer caches for its backward.
  double* relu_mask = nullptr;

  bool empty() const { return bias == nullptr && relu_mask == nullptr; }
};

/// Applies the epilogue in place over output [Ro][Co][No][B] (row-major
/// canonical layout). Each element receives exactly one bias add and
/// one ReLU select, matching the unfused layers bitwise.
void apply_epilogue(double* y, const ConvShape& shape,
                    const ConvEpilogue& epilogue);

}  // namespace swdnn::conv
