#pragma once
// Functional execution of the paper's LDM-blocked convolution
// algorithms on the mesh simulator.
//
// Algorithm 1 (image-size-aware): tiles the batch (bB) and the output
// columns (bCo); for each output tile it walks the filter window,
// DMA-gets the matching input pixels and one filter slice, and runs the
// mesh GEMM; output leaves LDM once per tile. Best when No alone cannot
// amortize the filter traffic and bCo*bB must help (Eq. 1).
//
// Algorithm 2 (batch-size-aware): streams input pixel columns (all
// channels, all batches at once) and accumulates each pixel into every
// output column it overlaps, reusing the pixel across the Kc filter
// columns; the full batch amortizes traffic (Eq. 2). Best for large B.
//
// Both use the Fig. 3 mesh data distribution: nothing is duplicated
// across CPEs, remote operands travel over the register-communication
// buses only. Tensors are canonical: input [Ri][Ci][Ni][B], filter
// [Kr][Kc][Ni][No], output [Ro][Co][No][B].
//
// These kernels are the library's ground-truth-checked level-1 fidelity
// path (see DESIGN.md §5); paper-scale shapes go through the
// performance model instead.

#include <stdexcept>

#include "src/conv/shape.h"
#include "src/perf/plan.h"
#include "src/sim/executor.h"
#include "src/tensor/tensor.h"

namespace swdnn::conv {

/// A shape/plan pair the mesh kernels cannot run: a divisibility rule
/// broken, a stride the paper's kernels do not implement, or no
/// mesh-executable candidate at all. Derives from std::invalid_argument
/// so existing catch sites keep working, but lets drivers distinguish
/// "this shape has no mesh mapping — take the host route" from a real
/// execution bug that must surface.
class MeshMappingError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Throws MeshMappingError unless the shape/plan divide cleanly over a
/// `mesh_dim` x `mesh_dim` mesh: Ni, No, and the batch tile (block_b
/// for the image plan, B for the batch plan) must be multiples of
/// mesh_dim, batch a multiple of block_b (image plan), and Co a
/// multiple of block_co. The multigrain mappings (multigrain.h) skip
/// the divisibility rules — their tiles are ceil-divided — and are
/// refused only for strides != 1 or when their tile set overflows LDM.
void check_mesh_compatibility(const ConvShape& shape,
                              const perf::ConvPlan& plan, int mesh_dim);

/// Algorithm 1 on the simulator. Computes output rows [ro_begin,
/// ro_end) — the multi-CG path passes each core group its row
/// partition; the defaults cover the whole image.
sim::LaunchStats run_image_size_aware(sim::MeshExecutor& exec,
                                      const tensor::Tensor& input,
                                      const tensor::Tensor& filter,
                                      tensor::Tensor& output,
                                      const ConvShape& shape,
                                      const perf::ConvPlan& plan,
                                      std::int64_t ro_begin = 0,
                                      std::int64_t ro_end = -1);

/// Algorithm 1 operating directly on the Section V-C image-size-aware
/// layout: input and output are (4, C, R, N, B/4) tensors (row-major
/// [B/4][N][R][C][4]), the filter stays canonical. Functionally
/// identical to run_image_size_aware on the transformed tensors; what
/// changes is the DMA pattern — contiguous runs grow from bB/8 doubles
/// to bCo*4 doubles, which is the entire point of the layout (compare
/// LaunchStats.dma.requests between the two). Additionally requires
/// block_b to be a multiple of 4*mesh_dim so every CPE owns whole
/// batch quads.
sim::LaunchStats run_image_size_aware_vectorized(
    sim::MeshExecutor& exec, const tensor::Tensor& input_vec,
    const tensor::Tensor& filter, tensor::Tensor& output_vec,
    const ConvShape& shape, const perf::ConvPlan& plan,
    std::int64_t ro_begin = 0, std::int64_t ro_end = -1);

/// Algorithm 2 on the simulator (same conventions).
sim::LaunchStats run_batch_size_aware(sim::MeshExecutor& exec,
                                      const tensor::Tensor& input,
                                      const tensor::Tensor& filter,
                                      tensor::Tensor& output,
                                      const ConvShape& shape,
                                      const perf::ConvPlan& plan,
                                      std::int64_t ro_begin = 0,
                                      std::int64_t ro_end = -1);

}  // namespace swdnn::conv
