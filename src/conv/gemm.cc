#include "src/conv/gemm.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "src/runtime/task_pool.h"

namespace swdnn::conv {

void gemm_naive(std::int64_t m, std::int64_t n, std::int64_t k,
                std::span<const double> a, std::span<const double> b,
                std::span<double> c) {
  assert(static_cast<std::int64_t>(a.size()) == m * k);
  assert(static_cast<std::int64_t>(b.size()) == k * n);
  assert(static_cast<std::int64_t>(c.size()) == m * n);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = c[i * n + j];
      for (std::int64_t p = 0; p < k; ++p) {
        acc += a[i * k + p] * b[p * n + j];
      }
      c[i * n + j] = acc;
    }
  }
}

void gemm_blocked(std::int64_t m, std::int64_t n, std::int64_t k,
                  std::span<const double> a, std::span<const double> b,
                  std::span<double> c, std::int64_t tile) {
  assert(static_cast<std::int64_t>(a.size()) == m * k);
  assert(static_cast<std::int64_t>(b.size()) == k * n);
  assert(static_cast<std::int64_t>(c.size()) == m * n);
  if (tile <= 0) tile = 64;  // a zero/negative tile stalled the loops
  for (std::int64_t i0 = 0; i0 < m; i0 += tile) {
    const std::int64_t i1 = std::min(i0 + tile, m);
    for (std::int64_t p0 = 0; p0 < k; p0 += tile) {
      const std::int64_t p1 = std::min(p0 + tile, k);
      for (std::int64_t j0 = 0; j0 < n; j0 += tile) {
        const std::int64_t j1 = std::min(j0 + tile, n);
        for (std::int64_t i = i0; i < i1; ++i) {
          for (std::int64_t p = p0; p < p1; ++p) {
            const double av = a[i * k + p];
            const double* brow = &b[p * n];
            double* crow = &c[i * n];
            for (std::int64_t j = j0; j < j1; ++j) {
              crow[j] += av * brow[j];
            }
          }
        }
      }
    }
  }
}

void gemm_packed_parallel(std::int64_t m, std::int64_t n, std::int64_t k,
                          std::span<const double> a,
                          std::span<const double> b, std::span<double> c,
                          std::int64_t tile) {
  assert(static_cast<std::int64_t>(a.size()) == m * k);
  assert(static_cast<std::int64_t>(b.size()) == k * n);
  assert(static_cast<std::int64_t>(c.size()) == m * n);
  if (tile <= 0) tile = 64;
  const std::int64_t kt = (k + tile - 1) / tile;  // k tiles
  const std::int64_t nt = (n + tile - 1) / tile;  // n tiles

  // Pack B once into [k-tile][n-tile] panels, each panel row-major
  // [p][j] and contiguous, so the microkernel's j-walk streams one
  // panel instead of striding full rows of B. A pure relayout: values
  // are untouched, arithmetic is unaffected.
  std::vector<double> bpack(static_cast<std::size_t>(k * n));
  std::vector<std::size_t> panel_off(
      static_cast<std::size_t>(kt * nt) + 1, 0);
  for (std::int64_t pt = 0; pt < kt; ++pt) {
    for (std::int64_t jt = 0; jt < nt; ++jt) {
      const std::int64_t p0 = pt * tile, p1 = std::min(p0 + tile, k);
      const std::int64_t j0 = jt * tile, j1 = std::min(j0 + tile, n);
      panel_off[static_cast<std::size_t>(pt * nt + jt) + 1] =
          static_cast<std::size_t>((p1 - p0) * (j1 - j0));
    }
  }
  for (std::size_t panel = 1; panel < panel_off.size(); ++panel) {
    panel_off[panel] += panel_off[panel - 1];
  }
  runtime::parallel_for(0, kt * nt, 1, [&](std::int64_t pb, std::int64_t pe) {
    for (std::int64_t panel = pb; panel < pe; ++panel) {
      const std::int64_t pt = panel / nt, jt = panel % nt;
      const std::int64_t p0 = pt * tile, p1 = std::min(p0 + tile, k);
      const std::int64_t j0 = jt * tile, j1 = std::min(j0 + tile, n);
      double* dst = bpack.data() + panel_off[static_cast<std::size_t>(panel)];
      for (std::int64_t p = p0; p < p1; ++p) {
        for (std::int64_t j = j0; j < j1; ++j) *dst++ = b[p * n + j];
      }
    }
  });

  // Row panels of C, one block of `tile` rows per chunk: every C row is
  // written by exactly one worker, and each element accumulates its k
  // terms in ascending order — bitwise gemm_blocked.
  runtime::parallel_for(0, m, tile, [&](std::int64_t i0, std::int64_t i1) {
    // Pack this A row panel per k-tile: [p][i] so the i-th row's next
    // k element sits one panel-row below (sequential reuse of av).
    std::vector<double> apack(static_cast<std::size_t>((i1 - i0) * tile));
    for (std::int64_t pt = 0; pt < kt; ++pt) {
      const std::int64_t p0 = pt * tile, p1 = std::min(p0 + tile, k);
      for (std::int64_t i = i0; i < i1; ++i) {
        double* arow = apack.data() +
                       static_cast<std::size_t>((i - i0) * (p1 - p0));
        for (std::int64_t p = p0; p < p1; ++p) arow[p - p0] = a[i * k + p];
      }
      for (std::int64_t jt = 0; jt < nt; ++jt) {
        const std::int64_t j0 = jt * tile, j1 = std::min(j0 + tile, n);
        const double* panel =
            bpack.data() +
            panel_off[static_cast<std::size_t>(pt * nt + jt)];
        const std::int64_t panel_cols = j1 - j0;
        for (std::int64_t i = i0; i < i1; ++i) {
          const double* arow =
              apack.data() + static_cast<std::size_t>((i - i0) * (p1 - p0));
          double* crow = &c[i * n];
          for (std::int64_t p = p0; p < p1; ++p) {
            const double av = arow[p - p0];
            const double* brow = panel + (p - p0) * panel_cols;
            for (std::int64_t j = j0; j < j1; ++j) {
              crow[j] += av * brow[j - j0];
            }
          }
        }
      }
    }
  });
}

}  // namespace swdnn::conv
