#include "src/conv/gemm.h"

#include <algorithm>
#include <cassert>

namespace swdnn::conv {

void gemm_naive(std::int64_t m, std::int64_t n, std::int64_t k,
                std::span<const double> a, std::span<const double> b,
                std::span<double> c) {
  assert(static_cast<std::int64_t>(a.size()) == m * k);
  assert(static_cast<std::int64_t>(b.size()) == k * n);
  assert(static_cast<std::int64_t>(c.size()) == m * n);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = c[i * n + j];
      for (std::int64_t p = 0; p < k; ++p) {
        acc += a[i * k + p] * b[p * n + j];
      }
      c[i * n + j] = acc;
    }
  }
}

void gemm_blocked(std::int64_t m, std::int64_t n, std::int64_t k,
                  std::span<const double> a, std::span<const double> b,
                  std::span<double> c, std::int64_t tile) {
  assert(static_cast<std::int64_t>(a.size()) == m * k);
  assert(static_cast<std::int64_t>(b.size()) == k * n);
  assert(static_cast<std::int64_t>(c.size()) == m * n);
  for (std::int64_t i0 = 0; i0 < m; i0 += tile) {
    const std::int64_t i1 = std::min(i0 + tile, m);
    for (std::int64_t p0 = 0; p0 < k; p0 += tile) {
      const std::int64_t p1 = std::min(p0 + tile, k);
      for (std::int64_t j0 = 0; j0 < n; j0 += tile) {
        const std::int64_t j1 = std::min(j0 + tile, n);
        for (std::int64_t i = i0; i < i1; ++i) {
          for (std::int64_t p = p0; p < p1; ++p) {
            const double av = a[i * k + p];
            const double* brow = &b[p * n];
            double* crow = &c[i * n];
            for (std::int64_t j = j0; j < j1; ++j) {
              crow[j] += av * brow[j];
            }
          }
        }
      }
    }
  }
}

}  // namespace swdnn::conv
