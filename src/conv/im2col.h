#pragma once
// im2col + GEMM convolution lowering — the baseline algorithm (what
// cuDNN's default double-precision path did at the time; paper §III-C's
// "lowering the convolutions into a matrix multiplication").
//
// The lowered product is  Out[No x (Ro*Co*B)] =
//   Wmat[No x (Ni*Kr*Kc)] * Col[(Ni*Kr*Kc) x (Ro*Co*B)].
// Used for cross-checking the mesh kernels, as the functional stand-in
// for the cuDNN comparator, and as a host-measured bench subject.

#include "src/conv/shape.h"
#include "src/tensor/pool.h"
#include "src/tensor/tensor.h"

namespace swdnn::conv {

/// Expands input [Ri][Ci][Ni][B] into the column matrix
/// [(Ni*Kr*Kc)][(Ro*Co*B)], row index = (ni*Kr + kr)*Kc + kc, column
/// index = (ro*Co + co)*B + b.
tensor::Tensor im2col(const tensor::Tensor& input, const ConvShape& shape);

/// Inverse scatter-add of im2col (for the data gradient).
void col2im_add(const tensor::Tensor& columns, tensor::Tensor& input,
                const ConvShape& shape);

/// Reshapes filter [Kr][Kc][Ni][No] into Wmat [No][(Ni*Kr*Kc)].
tensor::Tensor filter_matrix(const tensor::Tensor& filter,
                             const ConvShape& shape);

/// Full forward convolution via im2col + blocked GEMM. Overwrites out.
/// When `pool` is given, the lowered matrices are recycled through it
/// (same results; zero steady-state tensor allocations).
void im2col_forward(const tensor::Tensor& input, const tensor::Tensor& filter,
                    tensor::Tensor& output, const ConvShape& shape,
                    tensor::TensorPool* pool = nullptr);

/// Data gradient via the lowered GEMM: dCol = Wmat^T * dOutMat, then
/// col2im. Overwrites d_input. Much faster than the naive loops — the
/// path the host training backend uses.
void im2col_backward_data(const tensor::Tensor& d_output,
                          const tensor::Tensor& filter,
                          tensor::Tensor& d_input, const ConvShape& shape,
                          tensor::TensorPool* pool = nullptr);

/// Filter gradient via the lowered GEMM: dWmat = dOutMat * Col^T.
/// Overwrites d_filter.
void im2col_backward_filter(const tensor::Tensor& input,
                            const tensor::Tensor& d_output,
                            tensor::Tensor& d_filter,
                            const ConvShape& shape,
                            tensor::TensorPool* pool = nullptr);

}  // namespace swdnn::conv
