#include "src/conv/swconv.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "src/timing/kernels.h"

namespace swdnn::conv {

namespace {

// Level-2 overhead constants. Each is a physical effect the closed-form
// model ignores; together they explain why measured throughput sits
// below the model (Table III: meas/mdl = 0.94-0.97).
constexpr double kDmaSetupCycles = 256.0;   ///< descriptor + engine launch
constexpr double kBarrierCycles = 32.0;     ///< per mesh-GEMM step sync
constexpr double kBusBytesPerCycle = 32.0;  ///< one 256-bit message/cycle
// Fraction of bus traffic the P1 pipeline cannot hide under P0 compute.
constexpr double kBusVisibleFraction = 0.25;

bool executable_on_mesh(const ConvShape& shape, const perf::ConvPlan& plan,
                        int mesh_dim) {
  try {
    check_mesh_compatibility(shape, plan, mesh_dim);
    return true;
  } catch (const std::invalid_argument&) {
    return false;
  }
}

}  // namespace

SwConvolution::SwConvolution(const arch::Sw26010Spec& spec)
    : spec_(spec), chooser_(spec) {}

sim::MeshExecutor& SwConvolution::shared_executor() const {
  if (exec_ == nullptr) {
    exec_ = std::make_unique<sim::MeshExecutor>(spec_);
  }
  exec_->set_fault_injector(injector_);
  exec_->set_retry_policy(retry_);
  exec_->set_tracer(tracer_);
  return *exec_;
}

perf::PlanCache::Builder SwConvolution::cache_builder() const {
  return [this](const ConvShape& s) {
    perf::CachedPlan entry;
    entry.ranked = chooser_.rank(s);
    for (std::size_t i = 0; i < entry.ranked.size(); ++i) {
      if (executable_on_mesh(s, entry.ranked[i].plan, spec_.mesh_rows)) {
        entry.executable.push_back(i);
      }
    }
    return entry;
  };
}

perf::PlanCache::LookupResult SwConvolution::ranked_plans(
    const ConvShape& shape) const {
  return plan_cache_.lookup(shape, cache_builder());
}

std::size_t SwConvolution::warm_plans(const std::vector<ConvShape>& shapes) {
  std::size_t built = 0;
  const auto builder = cache_builder();
  for (const ConvShape& shape : shapes) {
    if (plan_cache_.warm(shape, builder)) ++built;
  }
  return built;
}

perf::PlanChoice SwConvolution::plan_for(const ConvShape& shape,
                                         bool require_executable) const {
  const auto entry = ranked_plans(shape).entry;
  if (!require_executable) {
    if (entry->ranked.empty()) {
      throw std::runtime_error("no feasible plan for " + shape.to_string());
    }
    return entry->ranked.front();
  }
  if (!entry->has_executable()) {
    throw MeshMappingError("no mesh-executable plan for " +
                           shape.to_string());
  }
  return entry->best_executable();
}

std::optional<perf::AutotuneReport> SwConvolution::autotune_plan(
    const ConvShape& shape) {
  {
    std::lock_guard<std::mutex> lock(tune_mutex_);
    if (!tuned_.insert(shape).second) return std::nullopt;  // already tuned
  }
  // Counter-neutral base ranking: reuse a cached entry if present, else
  // warm one in (neither path touches the hit/miss counters, so tuning
  // during compile keeps serve-time hit rates clean).
  perf::PlanCache::Entry entry = plan_cache_.peek(shape);
  if (entry == nullptr) {
    plan_cache_.warm(shape, cache_builder());
    entry = plan_cache_.peek(shape);
  }
  if (entry == nullptr || entry->ranked.empty()) return std::nullopt;

  const perf::ScheduleAutotuner tuner(spec_);
  perf::AutotuneReport report;
  perf::CachedPlan tuned_entry;
  tuned_entry.ranked = tuner.tune_ranked(shape, entry->ranked, &report);
  // Tuning never reorders the ranking and never changes a plan's
  // mesh-mappability (the tuned knobs are invisible to
  // check_mesh_compatibility), so the executable indices carry over.
  tuned_entry.executable = entry->executable;
  plan_cache_.install(shape, std::move(tuned_entry));
  return report;
}

perf::PerfEstimate SwConvolution::estimate(const ConvShape& shape) const {
  return plan_for(shape).estimate;
}

ForwardResult SwConvolution::forward(const tensor::Tensor& input,
                                     const tensor::Tensor& filter,
                                     tensor::Tensor& output,
                                     const ConvShape& shape,
                                     std::optional<perf::ConvPlan> plan) {
  perf::PlanChoice choice;
  if (plan.has_value()) {
    choice.plan = *plan;
    choice.estimate = chooser_.model().estimate(shape, *plan);
  } else {
    choice = plan_for(shape, /*require_executable=*/true);
  }
  return execute_choice(choice, input, filter, output, shape);
}

ForwardResult SwConvolution::execute_choice(const perf::PlanChoice& choice,
                                            const tensor::Tensor& input,
                                            const tensor::Tensor& filter,
                                            tensor::Tensor& output,
                                            const ConvShape& shape) {
  std::lock_guard<std::mutex> launch_lock(exec_mutex_);
  sim::MeshExecutor& exec = shared_executor();
  sim::LaunchStats stats;
  if (choice.plan.kind == perf::PlanKind::kImageSizeAware) {
    stats = run_image_size_aware(exec, input, filter, output, shape,
                                 choice.plan);
  } else {
    stats = run_batch_size_aware(exec, input, filter, output, shape,
                                 choice.plan);
  }
  if (stats.failed) {
    throw sim::LaunchFault(stats.failure, stats.persistent_fault);
  }
  return ForwardResult{choice, stats};
}

sim::MultiCgStats SwConvolution::forward_multi_cg(
    const tensor::Tensor& input, const tensor::Tensor& filter,
    tensor::Tensor& output, const ConvShape& shape, int num_cgs,
    std::optional<perf::ConvPlan> plan) {
  const perf::ConvPlan p =
      plan.has_value() ? *plan : plan_for(shape, true).plan;
  const auto parts = sim::partition_output_rows(shape.ro(), num_cgs);
  sim::MultiCgStats stats;
  stats.launch_overhead_seconds = 2e-6;
  std::lock_guard<std::mutex> launch_lock(exec_mutex_);
  sim::MeshExecutor& exec = shared_executor();
  for (std::size_t cg = 0; cg < parts.size(); ++cg) {
    const auto& part = parts[cg];
    if (injector_ != nullptr &&
        injector_->poll_noc_link(static_cast<int>(cg))) {
      throw sim::LaunchFault(
          "NoC link to core group " + std::to_string(cg) + " is down",
          /*persistent=*/true);
    }
    if (p.kind == perf::PlanKind::kImageSizeAware) {
      stats.per_cg.push_back(run_image_size_aware(
          exec, input, filter, output, shape, p, part.begin, part.end));
    } else {
      stats.per_cg.push_back(run_batch_size_aware(
          exec, input, filter, output, shape, p, part.begin, part.end));
    }
    if (stats.per_cg.back().failed) {
      throw sim::LaunchFault(stats.per_cg.back().failure,
                             stats.per_cg.back().persistent_fault);
    }
  }
  return stats;
}

double SwConvolution::cycle_accounted_gflops_per_cg(
    const ConvShape& shape, const perf::ConvPlan& plan) const {
  const auto& model = chooser_.model();
  if (plan.kind == perf::PlanKind::kDirect) {
    // Direct plan: the closed-form number is the whole story.
    return model.direct_gload_gflops_per_cg();
  }

  // Level 2 = the closed-form estimate derated by the per-CPE cycles the
  // loop-nest walk counts but the model ignores: the visible fraction of
  // register-communication bus traffic, one synchronization per mesh
  // GEMM step, and DMA descriptor setup per request. All three are
  // expressed against the FMA cycles of one outer-loop step so the
  // derate is shape- and plan-dependent (the batch plan issues many
  // small mesh GEMMs per step and pays proportionally more).
  const int p = spec_.mesh_rows;
  const double ds = 8.0;

  const auto b = static_cast<double>(shape.batch);
  const auto ni = static_cast<double>(shape.ni);
  const auto no = static_cast<double>(shape.no);
  const auto krkc = static_cast<double>(shape.kr * shape.kc);
  const double ni_p = ni / p, no_p = no / p;

  double flops_cpe_step = 0;    // FMA flops per CPE per outer step
  double bus_bytes_cpe = 0;     // bus bytes received per CPE per step
  double gemm_steps = 0;        // mesh GEMM bus/sync rounds per step
  double dma_requests = 0;      // DMA descriptors per CPE per step

  if (plan.kind == perf::PlanKind::kImageSizeAware) {
    const double bb = static_cast<double>(plan.block_b);
    const double bco = static_cast<double>(plan.block_co);
    const double s_tile = bco * bb / p;  // pixel-batch extent per CPE
    flops_cpe_step = 2.0 * krkc * ni_p * no_p * s_tile * p;  // over t steps
    bus_bytes_cpe = krkc * (p - 1.0) * (ni_p * no_p + ni_p * s_tile) * ds;
    gemm_steps = krkc * p;
    dma_requests = krkc * (bco + 1.0) + bco;
  } else {
    const double bco = static_cast<double>(plan.block_co);
    const double kc = static_cast<double>(shape.kc);
    const double kr = static_cast<double>(shape.kr);
    const double b_p = b / p;
    const double gemms = kr * bco * kc;  // valid (ci, kc) pairs per step
    flops_cpe_step = 2.0 * gemms * ni_p * no_p * b_p * p;
    bus_bytes_cpe = gemms * (p - 1.0) * (ni_p * no_p + ni_p * b_p) * ds;
    gemm_steps = gemms * p;
    dma_requests = kr * (bco + kc - 1) + gemms + bco;
  }

  const double fma_cycles =
      flops_cpe_step / spec_.flops_per_cycle_per_cpe();
  double overhead_cycles = gemm_steps * kBarrierCycles +
                           dma_requests * kDmaSetupCycles / (p * p);
  if (plan.use_register_comm) {
    overhead_cycles +=
        kBusVisibleFraction * bus_bytes_cpe / kBusBytesPerCycle;
  }
  const double overhead_factor = fma_cycles / (fma_cycles + overhead_cycles);

  const perf::PerfEstimate mdl = model.estimate(shape, plan);
  return mdl.gflops_per_cg * overhead_factor;
}

double SwConvolution::cycle_accounted_gflops_chip(
    const ConvShape& shape, const perf::ConvPlan& plan) const {
  const double per_cg = cycle_accounted_gflops_per_cg(shape, plan);
  // Row partitioning is embarrassingly parallel across CGs; the last
  // partition may be one row longer, bounding scaling efficiency.
  const double rows = static_cast<double>(shape.ro());
  const double per_cg_rows = std::ceil(rows / spec_.num_core_groups);
  const double efficiency = rows / (per_cg_rows * spec_.num_core_groups);
  return per_cg * spec_.num_core_groups * efficiency;
}

}  // namespace swdnn::conv
