#include "src/conv/swconv.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "src/conv/multigrain.h"
#include "src/conv/reference.h"
#include "src/timing/kernels.h"
#include "src/util/rng.h"

namespace swdnn::conv {

namespace {

// Level-2 overhead constants. Each is a physical effect the closed-form
// model ignores; together they explain why measured throughput sits
// below the model (Table III: meas/mdl = 0.94-0.97).
constexpr double kDmaSetupCycles = 256.0;   ///< descriptor + engine launch
constexpr double kBarrierCycles = 32.0;     ///< per mesh-GEMM step sync
constexpr double kBusBytesPerCycle = 32.0;  ///< one 256-bit message/cycle
// Fraction of bus traffic the P1 pipeline cannot hide under P0 compute.
constexpr double kBusVisibleFraction = 0.25;

bool executable_on_mesh(const ConvShape& shape, const perf::ConvPlan& plan,
                        int mesh_dim) {
  try {
    check_mesh_compatibility(shape, plan, mesh_dim);
    return true;
  } catch (const std::invalid_argument&) {
    return false;
  }
}

}  // namespace

SwConvolution::SwConvolution(const arch::Sw26010Spec& spec)
    : spec_(spec), chooser_(spec) {}

sim::MeshExecutor& SwConvolution::shared_executor() const {
  if (exec_ == nullptr) {
    exec_ = std::make_unique<sim::MeshExecutor>(spec_);
  }
  exec_->set_fault_injector(injector_);
  exec_->set_retry_policy(retry_);
  exec_->set_tracer(tracer_);
  return *exec_;
}

perf::PlanCache::Builder SwConvolution::cache_builder() const {
  return [this](const ConvShape& s) {
    perf::CachedPlan entry;
    entry.ranked = chooser_.rank(s);
    for (std::size_t i = 0; i < entry.ranked.size(); ++i) {
      if (executable_on_mesh(s, entry.ranked[i].plan, spec_.mesh_rows)) {
        entry.executable.push_back(i);
      }
    }
    return entry;
  };
}

perf::PlanCache::LookupResult SwConvolution::ranked_plans(
    const ConvShape& shape) const {
  return plan_cache_.lookup(shape, cache_builder());
}

std::size_t SwConvolution::warm_plans(const std::vector<ConvShape>& shapes) {
  std::size_t built = 0;
  const auto builder = cache_builder();
  for (const ConvShape& shape : shapes) {
    if (plan_cache_.warm(shape, builder)) ++built;
  }
  return built;
}

perf::PlanChoice SwConvolution::plan_for(const ConvShape& shape,
                                         bool require_executable) const {
  const auto entry = ranked_plans(shape).entry;
  if (!require_executable) {
    if (entry->ranked.empty()) {
      throw std::runtime_error("no feasible plan for " + shape.to_string());
    }
    return entry->ranked.front();
  }
  if (!entry->has_executable()) {
    throw MeshMappingError("no mesh-executable plan for " +
                           shape.to_string());
  }
  return entry->best_executable();
}

std::optional<perf::AutotuneReport> SwConvolution::autotune_plan(
    const ConvShape& shape) {
  {
    std::lock_guard<std::mutex> lock(tune_mutex_);
    if (!tuned_.insert(shape).second) return std::nullopt;  // already tuned
  }
  // Counter-neutral base ranking: reuse a cached entry if present, else
  // warm one in (neither path touches the hit/miss counters, so tuning
  // during compile keeps serve-time hit rates clean).
  perf::PlanCache::Entry entry = plan_cache_.peek(shape);
  if (entry == nullptr) {
    plan_cache_.warm(shape, cache_builder());
    entry = plan_cache_.peek(shape);
  }
  if (entry == nullptr || entry->ranked.empty()) return std::nullopt;

  const perf::ScheduleAutotuner tuner(spec_);
  perf::AutotuneReport report;
  perf::CachedPlan tuned_entry;
  tuned_entry.ranked = tuner.tune_ranked(shape, entry->ranked, &report);
  // Tuning never reorders the ranking and never changes a plan's
  // mesh-mappability (the tuned knobs are invisible to
  // check_mesh_compatibility), so the executable indices carry over.
  tuned_entry.executable = entry->executable;
  plan_cache_.install(shape, std::move(tuned_entry));
  return report;
}

std::optional<perf::MeasuredAutotuneReport>
SwConvolution::autotune_plan_measured(const ConvShape& shape) {
  {
    std::lock_guard<std::mutex> lock(tune_mutex_);
    if (!tuned_.insert(shape).second) return std::nullopt;  // already tuned
  }
  perf::PlanCache::Entry entry = plan_cache_.peek(shape);
  if (entry == nullptr) {
    plan_cache_.warm(shape, cache_builder());
    entry = plan_cache_.peek(shape);
  }
  if (entry == nullptr || entry->ranked.empty()) return std::nullopt;

  // Phase 1: the modeled schedule search, exactly as autotune_plan.
  const perf::ScheduleAutotuner tuner(spec_);
  perf::CachedPlan tuned_entry;
  tuned_entry.ranked = tuner.tune_ranked(shape, entry->ranked, nullptr);
  tuned_entry.executable = entry->executable;

  // Phase 2: confirm the top modeled candidates with timed launches —
  // a tournament of up to three: the model's top mesh-executable pick
  // plus the best executable rival from EACH of the two other mapping
  // families (cross-family is where the model's ordering is least
  // trustworthy — the families score close on very different cost
  // structures, so one timed launch per family settles it).
  perf::MeasuredAutotuneReport report;
  report.shape = shape;
  if (tuned_entry.executable.size() >= 2) {
    std::vector<std::size_t> contenders{tuned_entry.executable[0]};
    for (const std::size_t idx : tuned_entry.executable) {
      const perf::PlanFamily family =
          perf::plan_kind_family(tuned_entry.ranked[idx].plan.kind);
      bool seen = false;
      for (const std::size_t c : contenders) {
        seen |= perf::plan_kind_family(tuned_entry.ranked[c].plan.kind) ==
                family;
      }
      if (!seen) contenders.push_back(idx);
      if (contenders.size() == 3) break;
    }

    tensor::Tensor input = make_input(shape);
    tensor::Tensor filter = make_filter(shape);
    tensor::Tensor output = make_output(shape);
    util::Rng rng(0x5eedu);
    rng.fill_uniform(input.data(), -1.0, 1.0);
    rng.fill_uniform(filter.data(), -1.0, 1.0);

    auto timed = [&](const perf::PlanChoice& choice) {
      perf::MeasuredCandidate c;
      c.plan = choice.plan;
      c.modeled_gflops_per_cg = choice.estimate.gflops_per_cg;
      try {
        const ForwardResult r =
            execute_choice(choice, input, filter, output, shape);
        c.measured_seconds =
            r.stats.modeled_seconds(choice.plan.double_buffer);
        c.measured_gflops =
            r.stats.modeled_gflops(choice.plan.double_buffer);
      } catch (const sim::LaunchFault&) {
        // A faulted confirmation launch simply loses the tournament.
        c.measured_seconds = 0;
        c.measured_gflops = 0;
      }
      return c;
    };
    for (const std::size_t idx : contenders) {
      report.candidates.push_back(timed(tuned_entry.ranked[idx]));
    }

    // The model's pick keeps the crown unless a rival measured
    // STRICTLY faster (a faulted launch, seconds == 0, never wins);
    // among rivals, better rank breaks ties.
    std::size_t best = 0;
    for (std::size_t j = 1; j < report.candidates.size(); ++j) {
      const double tb = report.candidates[best].measured_seconds;
      const double tj = report.candidates[j].measured_seconds;
      if (tj > 0 && (tb <= 0 || tj < tb)) best = j;
    }
    if (best != 0) {
      // Swap the winner into the top rank. Both positions are
      // executable, so the executable index list stays valid and
      // best_executable() now serves the measured winner — an
      // explicit, reported reorder.
      std::swap(tuned_entry.ranked[contenders[0]],
                tuned_entry.ranked[contenders[best]]);
      report.reordered = true;
      report.winner_index = best;
    }
  } else if (!tuned_entry.executable.empty()) {
    const auto& only = tuned_entry.ranked[tuned_entry.executable[0]];
    perf::MeasuredCandidate c;
    c.plan = only.plan;
    c.modeled_gflops_per_cg = only.estimate.gflops_per_cg;
    report.candidates.push_back(c);
  }

  plan_cache_.install(shape, std::move(tuned_entry));
  return report;
}

perf::PerfEstimate SwConvolution::estimate(const ConvShape& shape) const {
  return plan_for(shape).estimate;
}

ForwardResult SwConvolution::forward(const tensor::Tensor& input,
                                     const tensor::Tensor& filter,
                                     tensor::Tensor& output,
                                     const ConvShape& shape,
                                     std::optional<perf::ConvPlan> plan) {
  perf::PlanChoice choice;
  if (plan.has_value()) {
    choice.plan = *plan;
    choice.estimate = chooser_.model().estimate(shape, *plan);
  } else {
    choice = plan_for(shape, /*require_executable=*/true);
  }
  return execute_choice(choice, input, filter, output, shape);
}

ForwardResult SwConvolution::execute_choice(const perf::PlanChoice& choice,
                                            const tensor::Tensor& input,
                                            const tensor::Tensor& filter,
                                            tensor::Tensor& output,
                                            const ConvShape& shape) {
  std::lock_guard<std::mutex> launch_lock(exec_mutex_);
  sim::MeshExecutor& exec = shared_executor();
  sim::LaunchStats stats;
  switch (choice.plan.kind) {
    case perf::PlanKind::kImageSizeAware:
      stats = run_image_size_aware(exec, input, filter, output, shape,
                                   choice.plan);
      break;
    case perf::PlanKind::kBatchSizeAware:
      stats = run_batch_size_aware(exec, input, filter, output, shape,
                                   choice.plan);
      break;
    case perf::PlanKind::kFilterGrained:
      stats = run_filter_grained(exec, input, filter, output, shape,
                                 choice.plan);
      break;
    case perf::PlanKind::kPixelGrained:
      stats = run_pixel_grained(exec, input, filter, output, shape,
                                choice.plan);
      break;
    case perf::PlanKind::kDirect:
      throw MeshMappingError("direct plan has no mesh kernel");
  }
  if (stats.failed) {
    throw sim::LaunchFault(stats.failure, stats.persistent_fault);
  }
  return ForwardResult{choice, stats};
}

sim::MultiCgStats SwConvolution::forward_multi_cg(
    const tensor::Tensor& input, const tensor::Tensor& filter,
    tensor::Tensor& output, const ConvShape& shape, int num_cgs,
    std::optional<perf::ConvPlan> plan) {
  const perf::ConvPlan p =
      plan.has_value() ? *plan : plan_for(shape, true).plan;
  const auto parts = sim::partition_output_rows(shape.ro(), num_cgs);
  sim::MultiCgStats stats;
  stats.launch_overhead_seconds = 2e-6;
  std::lock_guard<std::mutex> launch_lock(exec_mutex_);
  sim::MeshExecutor& exec = shared_executor();
  for (std::size_t cg = 0; cg < parts.size(); ++cg) {
    const auto& part = parts[cg];
    if (injector_ != nullptr &&
        injector_->poll_noc_link(static_cast<int>(cg))) {
      throw sim::LaunchFault(
          "NoC link to core group " + std::to_string(cg) + " is down",
          /*persistent=*/true);
    }
    switch (p.kind) {
      case perf::PlanKind::kImageSizeAware:
        stats.per_cg.push_back(run_image_size_aware(
            exec, input, filter, output, shape, p, part.begin, part.end));
        break;
      case perf::PlanKind::kBatchSizeAware:
        stats.per_cg.push_back(run_batch_size_aware(
            exec, input, filter, output, shape, p, part.begin, part.end));
        break;
      case perf::PlanKind::kFilterGrained:
        stats.per_cg.push_back(run_filter_grained(
            exec, input, filter, output, shape, p, part.begin, part.end));
        break;
      case perf::PlanKind::kPixelGrained:
        stats.per_cg.push_back(run_pixel_grained(
            exec, input, filter, output, shape, p, part.begin, part.end));
        break;
      case perf::PlanKind::kDirect:
        throw MeshMappingError("direct plan has no mesh kernel");
    }
    if (stats.per_cg.back().failed) {
      throw sim::LaunchFault(stats.per_cg.back().failure,
                             stats.per_cg.back().persistent_fault);
    }
  }
  return stats;
}

double SwConvolution::cycle_accounted_gflops_per_cg(
    const ConvShape& shape, const perf::ConvPlan& plan) const {
  const auto& model = chooser_.model();
  if (plan.kind == perf::PlanKind::kDirect) {
    // Direct plan: the closed-form number is the whole story.
    return model.direct_gload_gflops_per_cg();
  }

  // Level 2 = the closed-form estimate derated by the per-CPE cycles the
  // loop-nest walk counts but the model ignores: the visible fraction of
  // register-communication bus traffic, one synchronization per mesh
  // GEMM step, and DMA descriptor setup per request. All three are
  // expressed against the FMA cycles of one outer-loop step so the
  // derate is shape- and plan-dependent (the batch plan issues many
  // small mesh GEMMs per step and pays proportionally more).
  const int p = spec_.mesh_rows;
  const double ds = 8.0;

  const auto b = static_cast<double>(shape.batch);
  const auto ni = static_cast<double>(shape.ni);
  const auto no = static_cast<double>(shape.no);
  const auto krkc = static_cast<double>(shape.kr * shape.kc);
  const double ni_p = ni / p, no_p = no / p;

  double flops_cpe_step = 0;    // FMA flops per CPE per outer step
  double bus_bytes_cpe = 0;     // bus bytes received per CPE per step
  double gemm_steps = 0;        // mesh GEMM bus/sync rounds per step
  double dma_requests = 0;      // DMA descriptors per CPE per step

  switch (plan.kind) {
    case perf::PlanKind::kImageSizeAware: {
      const double bb = static_cast<double>(plan.block_b);
      const double bco = static_cast<double>(plan.block_co);
      const double s_tile = bco * bb / p;  // pixel-batch extent per CPE
      flops_cpe_step = 2.0 * krkc * ni_p * no_p * s_tile * p;  // over t steps
      bus_bytes_cpe = krkc * (p - 1.0) * (ni_p * no_p + ni_p * s_tile) * ds;
      gemm_steps = krkc * p;
      dma_requests = krkc * (bco + 1.0) + bco;
      break;
    }
    case perf::PlanKind::kBatchSizeAware: {
      const double bco = static_cast<double>(plan.block_co);
      const double kc = static_cast<double>(shape.kc);
      const double kr = static_cast<double>(shape.kr);
      const double b_p = b / p;
      const double gemms = kr * bco * kc;  // valid (ci, kc) pairs per step
      flops_cpe_step = 2.0 * gemms * ni_p * no_p * b_p * p;
      bus_bytes_cpe = gemms * (p - 1.0) * (ni_p * no_p + ni_p * b_p) * ds;
      gemm_steps = gemms * p;
      dma_requests = kr * (bco + kc - 1) + gemms + bco;
    break;
    }
    case perf::PlanKind::kFilterGrained: {
      // Outer step = one pixel-block pass of the mesh GEMM driver:
      // ceil(K / k_chunk) contraction chunks of ceil-divided tiles.
      const std::int64_t bpx =
          perf::filter_grained_block_px(shape, plan, spec_);
      const std::int64_t chunk =
          perf::filter_grained_k_chunk(shape, plan, spec_);
      const double big_k = krkc * ni;
      const double m_t = std::ceil(no / static_cast<double>(p));
      const double n_t =
          std::ceil(static_cast<double>(std::max<std::int64_t>(bpx, 1)) / p);
      const double k_t = std::ceil(
          static_cast<double>(std::max<std::int64_t>(chunk, 1)) / p);
      const double chunks =
          std::ceil(big_k / static_cast<double>(
                                std::max<std::int64_t>(chunk, 1)));
      flops_cpe_step = 2.0 * chunks * p * k_t * m_t * n_t;
      bus_bytes_cpe = chunks * (p - 1.0) * (k_t * m_t + k_t * n_t) * ds;
      gemm_steps = chunks * p;
      dma_requests = chunks * 2.0 * k_t + m_t;
      break;
    }
    case perf::PlanKind::kPixelGrained: {
      // Outer step = one (ro, co) output pixel: Kr*Kc tap GEMMs on
      // ceil-divided [Ni/p x No/p] x [Ni/p x B/p] tiles.
      const double ni_t = std::ceil(ni / static_cast<double>(p));
      const double no_t = std::ceil(no / static_cast<double>(p));
      const double b_t = std::ceil(b / static_cast<double>(p));
      flops_cpe_step = 2.0 * krkc * p * ni_t * no_t * b_t;
      bus_bytes_cpe = krkc * (p - 1.0) * (ni_t * no_t + ni_t * b_t) * ds;
      gemm_steps = krkc * p;
      dma_requests = krkc * ni_t + no_t;
      break;
    }
    case perf::PlanKind::kDirect:
      break;  // handled above
  }

  const double fma_cycles =
      flops_cpe_step / spec_.flops_per_cycle_per_cpe();
  double overhead_cycles = gemm_steps * kBarrierCycles +
                           dma_requests * kDmaSetupCycles / (p * p);
  if (plan.use_register_comm) {
    overhead_cycles +=
        kBusVisibleFraction * bus_bytes_cpe / kBusBytesPerCycle;
  }
  const double overhead_factor = fma_cycles / (fma_cycles + overhead_cycles);

  const perf::PerfEstimate mdl = model.estimate(shape, plan);
  return mdl.gflops_per_cg * overhead_factor;
}

double SwConvolution::cycle_accounted_gflops_chip(
    const ConvShape& shape, const perf::ConvPlan& plan) const {
  const double per_cg = cycle_accounted_gflops_per_cg(shape, plan);
  // Row partitioning is embarrassingly parallel across CGs; the last
  // partition may be one row longer, bounding scaling efficiency.
  const double rows = static_cast<double>(shape.ro());
  const double per_cg_rows = std::ceil(rows / spec_.num_core_groups);
  const double efficiency = rows / (per_cg_rows * spec_.num_core_groups);
  return per_cg * spec_.num_core_groups * efficiency;
}

}  // namespace swdnn::conv
