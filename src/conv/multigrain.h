#pragma once
// The multi-grained convolution mappings (MG3MConv's insight applied to
// this library; DESIGN.md §16).
//
// The paper's two LDM-blocked algorithms (ldm_blocked.h) demand mesh-
// divisible channels and batch tiles; outside that band dispatch used
// to fall all the way back to the host GEMM. These two mappings close
// the gap with different grains of the same mesh GEMM:
//
//   * filter-grained — im2col lowering executed on the mesh: one
//     [Kr*Kc*Ni x No] filter matrix (the filter tensor's natural
//     flattening) against pixel-column panels of the patch matrix,
//     streamed through mesh_gemm in plan.block_px-wide passes. Any
//     stride-1 shape maps; the contraction spans the whole Kr*Kc*Ni
//     extent, so the inner pipeline stays long even when Ni is tiny.
//     Pays the lowering traffic (the patch gather re-reads the input
//     Kr*Kc times and stages the column matrix through memory).
//
//   * pixel-grained — per-output-pixel panel GEMM with every filter tap
//     LDM-resident: for each (ro, co) the mesh contracts out[No x B] +=
//     sum over (kr, kc) of W_tap[Ni x No]^T x in[Ni x B]. The filter
//     crosses the memory interface exactly once per launch; feasible
//     only while all Kr*Kc tap tiles fit LDM — the small-shape regime's
//     mapping.
//
// Bitwise contract: both mappings accumulate each output element's
// contributions in ascending (kr, kc, ni) order — the reference loop's
// order — so outputs are bitwise identical to reference_forward (and to
// the paper's two mappings), not merely close.

#include "src/conv/shape.h"
#include "src/perf/plan.h"
#include "src/sim/executor.h"
#include "src/tensor/tensor.h"

namespace swdnn::conv {

/// Filter-grained forward for output rows [ro_begin, ro_end) (defaults
/// cover the whole image). Issues ceil(pixels / block_px) mesh_gemm
/// launches; stats are summed over them. Stops at the first failed
/// launch and returns its stats (callers translate to LaunchFault).
sim::LaunchStats run_filter_grained(sim::MeshExecutor& exec,
                                    const tensor::Tensor& input,
                                    const tensor::Tensor& filter,
                                    tensor::Tensor& output,
                                    const ConvShape& shape,
                                    const perf::ConvPlan& plan,
                                    std::int64_t ro_begin = 0,
                                    std::int64_t ro_end = -1);

/// Pixel-grained forward for output rows [ro_begin, ro_end): a single
/// launch; every CPE walks the same (ro, co, kr, kc) nest in lockstep.
sim::LaunchStats run_pixel_grained(sim::MeshExecutor& exec,
                                   const tensor::Tensor& input,
                                   const tensor::Tensor& filter,
                                   tensor::Tensor& output,
                                   const ConvShape& shape,
                                   const perf::ConvPlan& plan,
                                   std::int64_t ro_begin = 0,
                                   std::int64_t ro_end = -1);

}  // namespace swdnn::conv
