#include "src/conv/epilogue.h"

#include "src/runtime/task_pool.h"

namespace swdnn::conv {

namespace {
constexpr std::int64_t kElemGrain = 4096;
}  // namespace

void apply_epilogue(double* y, const ConvShape& shape,
                    const ConvEpilogue& epilogue) {
  if (epilogue.empty()) return;
  const std::int64_t no = shape.no;
  const std::int64_t b = shape.batch;
  const std::int64_t total = shape.ro() * shape.co() * no * b;
  const double* bias = epilogue.bias;
  double* mask = epilogue.relu_mask;
  // Flat sharding is bitwise-safe: every element gets exactly one bias
  // add and one ReLU select, independent of every other element.
  runtime::parallel_for(
      0, total, kElemGrain, [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          double v = y[i];
          if (bias != nullptr) v += bias[(i / b) % no];
          if (mask != nullptr) {
            const bool on = v > 0.0;
            mask[i] = on ? 1.0 : 0.0;
            v = on ? v : 0.0;
          }
          y[i] = v;
        }
      });
}

}  // namespace swdnn::conv
