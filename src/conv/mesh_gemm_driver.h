#pragma once
// General distributed GEMM on the simulated CPE mesh.
//
// The Fig. 3 contraction in regcomm_gemm.h works on tiles that a caller
// already placed in LDM; this driver is the host-facing entry point: it
// takes whole matrices in memory, tiles them over the mesh (padding
// ragged edges with zeros), streams over the contraction dimension in
// LDM-sized chunks with the same double-buffer discipline the
// convolution kernels use, and gathers the result. It is what the
// library's fully-connected layer and the backward-filter kernel run
// on — the "LDM-GEMM" the paper says both convolution algorithms reduce
// to.
//
// Operand convention matches the library's channel-major filter layout:
//   out[m][n] (+)= sum_k a[k][m] * b[k][n]
// i.e. A is stored contraction-major ("k x m"), as a filter slice
// arrives from memory, and B likewise ("k x n").

#include <cstdint>
#include <span>

#include "src/conv/regcomm_gemm.h"
#include "src/sim/executor.h"

namespace swdnn::conv {

struct MeshGemmOptions {
  bool accumulate = false;      ///< add into `out` instead of overwriting
  std::int64_t k_chunk = 0;     ///< contraction chunk per LDM pass;
                                ///< 0 = choose from the LDM budget
  BusPathMode bus_mode = BusPathMode::kBulkSpan;  ///< host bus strategy
};

/// Runs the distributed GEMM. Any m, k, n >= 1 work on any square mesh:
/// tiles are ceil-divided and zero-padded. Throws std::invalid_argument
/// if the tile set cannot fit LDM even at k_chunk = 1.
sim::LaunchStats mesh_gemm(sim::MeshExecutor& exec,
                           std::span<const double> a,  // [k][m]
                           std::span<const double> b,  // [k][n]
                           std::span<double> out,      // [m][n]
                           std::int64_t m, std::int64_t k, std::int64_t n,
                           const MeshGemmOptions& options = {});

/// The k-chunk the driver would pick for these dimensions on this
/// machine (exposed for tests and the plan explorer).
std::int64_t mesh_gemm_default_k_chunk(const arch::Sw26010Spec& spec,
                                       std::int64_t m, std::int64_t k,
                                       std::int64_t n);

}  // namespace swdnn::conv
