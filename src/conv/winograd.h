#pragma once
// Winograd minimal-filtering convolution, F(2x2, 3x3) — the other
// "fast convolution" family the paper cites among GPU-side related work
// (Lavin's algorithms). Like the FFT path it is implemented as a
// correctness oracle and as an analysis subject: Winograd cuts the
// multiply count 2.25x for 3x3 filters, but on SW26010 the transform
// arithmetic shares the single FP pipeline with the saved multiplies
// and the transformed filters are 16/9 the bytes — winograd_analysis()
// quantifies how much of the nominal 2.25x survives.
//
// Transforms (Lavin 2015): Y = A^T [ (G g G^T) .* (B^T d B) ] A per
// 4x4 input tile / 2x2 output tile, accumulated over input channels.

#include "src/arch/spec.h"
#include "src/conv/shape.h"
#include "src/tensor/tensor.h"

namespace swdnn::conv {

/// Full forward convolution via Winograd F(2x2, 3x3). Requires
/// kr == kc == 3 and even Ro, Co (whole output tiles); throws
/// std::invalid_argument otherwise. Matches reference_forward to
/// ~1e-10 (the transforms are exact in rationals; f64 rounding only).
void winograd_forward(const tensor::Tensor& input,
                      const tensor::Tensor& filter, tensor::Tensor& output,
                      const ConvShape& shape);

/// Transforms one 3x3 filter tap into the 4x4 Winograd domain:
/// U = G g G^T (exposed for tests).
void winograd_filter_transform(const double g[3][3], double u[4][4]);

/// Transforms one 4x4 input tile: V = B^T d B (exposed for tests).
void winograd_input_transform(const double d[4][4], double v[4][4]);

/// Inverse transform of an accumulated 4x4 tile to the 2x2 output:
/// Y = A^T m A (exposed for tests).
void winograd_output_transform(const double m[4][4], double y[2][2]);

struct WinogradAnalysis {
  double direct_multiplies = 0;     ///< the spatial method's multiplies
  double winograd_multiplies = 0;   ///< pointwise products
  double transform_flops = 0;       ///< input + filter + output transforms
  double multiply_reduction = 0;    ///< direct / winograd (2.25 nominal)
  double effective_speedup = 0;     ///< with transforms on the same pipe
  double filter_bytes_ratio = 0;    ///< transformed / canonical (16/9)
};

/// The SW26010 trade: how much of the 2.25x survives once the
/// transform flops execute on the same P0 pipeline and the transformed
/// filters inflate the Eq. (1) filter traffic.
WinogradAnalysis winograd_analysis(const ConvShape& shape);

}  // namespace swdnn::conv
