#pragma once
// Convolution problem description (paper Table I).
//
// swDNN's convolutions are valid (no padding), stride-1, multi-channel,
// batched — the configuration the paper's kernels and all its
// experiments use. Ri = Ro + Kr - 1 and Ci = Co + Kc - 1.

#include <cstdint>
#include <string>

namespace swdnn::conv {

struct ConvShape {
  std::int64_t batch = 1;  ///< B
  std::int64_t ni = 1;     ///< input feature maps
  std::int64_t no = 1;     ///< output feature maps
  std::int64_t ri = 1;     ///< input image height
  std::int64_t ci = 1;     ///< input image width
  std::int64_t kr = 1;     ///< filter height
  std::int64_t kc = 1;     ///< filter width
  // Strides extend the paper's stride-1 space for the host layer stack;
  // the mesh kernels and the performance model accept stride 1 only
  // (enforced at their entry points).
  std::int64_t stride_r = 1;
  std::int64_t stride_c = 1;

  std::int64_t ro() const { return (ri - kr) / stride_r + 1; }
  std::int64_t co() const { return (ci - kc) / stride_c + 1; }

  /// Builds a shape from output-side dimensions (how the paper states
  /// its configurations: "B=128, output image 64x64, filter 3x3").
  static ConvShape from_output(std::int64_t batch, std::int64_t ni,
                               std::int64_t no, std::int64_t ro,
                               std::int64_t co, std::int64_t kr,
                               std::int64_t kc, std::int64_t stride_r = 1,
                               std::int64_t stride_c = 1);

  /// 2*B*Ro*Co*Ni*No*Kr*Kc multiply-add flops.
  std::int64_t flops() const;

  std::int64_t input_elements() const { return ri * ci * ni * batch; }
  std::int64_t filter_elements() const { return kr * kc * ni * no; }
  std::int64_t output_elements() const { return ro() * co() * no * batch; }

  /// Throws std::invalid_argument when any dimension is non-positive or
  /// the filter exceeds the image.
  void validate() const;

  std::string to_string() const;

  bool operator==(const ConvShape&) const = default;
};

}  // namespace swdnn::conv
