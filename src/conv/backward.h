#pragma once
// Training-side gradients executed through the swDNN machinery.
//
// The paper aims swDNN at training, and both gradients reduce to
// machinery the library already has:
//
//   * backward-data is itself a convolution: zero-pad the output
//     gradient by Kr-1/Kc-1 on each side, rotate the filter 180 degrees
//     and swap its channel axes, and the forward mesh kernels compute
//     dIn — so the LDM blocking, register communication, and pipeline
//     scheduling all apply unchanged;
//
//   * backward-filter is, per (kr, kc) filter tap, exactly the LDM-GEMM
//     of Section V: dW(kr,kc) [Ni x No] = In_shift^T * dOut contracted
//     over the (ro, co, b) axis — it runs on the distributed mesh GEMM
//     driver.

#include "src/conv/mesh_gemm_driver.h"
#include "src/conv/shape.h"
#include "src/conv/swconv.h"
#include "src/tensor/pool.h"
#include "src/tensor/tensor.h"

namespace swdnn::conv {

/// Zero-pads an output-gradient tensor [Ro][Co][No][B] by (Kr-1, Kc-1)
/// on every spatial side: the "full correlation" input.
tensor::Tensor zero_pad_output_gradient(const tensor::Tensor& d_output,
                                        const ConvShape& shape);

/// Rotates the filter 180 degrees spatially and swaps the channel axes:
/// result[kr][kc][no][ni] = w[Kr-1-kr][Kc-1-kc][ni][no].
tensor::Tensor rotate_filter(const tensor::Tensor& filter,
                             const ConvShape& shape);

/// The forward-shape equivalent of the backward-data pass: same batch
/// and filter extents, input/output channel counts swapped, output
/// image = the original input image.
ConvShape backward_data_shape(const ConvShape& shape);

/// dIn = backward-data(dOut, W) on the simulated mesh via the forward
/// path. d_input is overwritten. Constraints are the forward kernels'
/// with Ni/No swapped. Resolves the plan before staging any tensors, so
/// a MeshMappingError (host-fallback territory for the caller) costs no
/// allocations; when `pool` is given the padded-gradient and
/// rotated-filter staging tensors are recycled through it.
ForwardResult swconv_backward_data(SwConvolution& sw,
                                   const tensor::Tensor& d_output,
                                   const tensor::Tensor& filter,
                                   tensor::Tensor& d_input,
                                   const ConvShape& shape,
                                   tensor::TensorPool* pool = nullptr);

/// dW = backward-filter(In, dOut) on the simulated mesh: one
/// distributed GEMM per filter tap. d_filter is overwritten. Works for
/// any shape (the GEMM driver pads ragged tiles).
sim::LaunchStats mesh_backward_filter(sim::MeshExecutor& exec,
                                      const tensor::Tensor& input,
                                      const tensor::Tensor& d_output,
                                      tensor::Tensor& d_filter,
                                      const ConvShape& shape);

}  // namespace swdnn::conv
