#pragma once
// Frequency-domain convolution — the alternative the paper REJECTS in
// Section III-C ("the FFT used in frequency-domain based methods has
// higher requirements for the memory bandwidth and involves global
// communication ... the spatial-domain based methods seem a better fit
// to the SW26010").
//
// We implement it anyway, for two reasons: as an independent
// correctness oracle for the spatial kernels, and to *quantify* the
// paper's rejection — fft_required_bandwidth() evaluates the roofline
// of an LDM-staged 2-D FFT pipeline on the SW26010 and shows it sits
// far above what the DMA interface provides.

#include <complex>
#include <vector>

#include "src/arch/spec.h"
#include "src/conv/shape.h"
#include "src/tensor/tensor.h"

namespace swdnn::conv {

/// In-place iterative radix-2 Cooley-Tukey FFT. Size must be a power of
/// two (checked). `inverse` applies the conjugate transform and the 1/N
/// scale.
void fft_inplace(std::vector<std::complex<double>>& data, bool inverse);

/// 2-D FFT over a row-major [n x n] complex grid (rows then columns).
void fft2d_inplace(std::vector<std::complex<double>>& grid, std::int64_t n,
                   bool inverse);

/// Smallest power of two >= value.
std::int64_t next_pow2(std::int64_t value);

/// Full forward convolution in the frequency domain: per (batch, no)
/// output plane, sum over ni of IFFT2(FFT2(in) * conj(FFT2(w))) — the
/// cross-correlation theorem, zero-padded so the valid region is exact.
/// Bit-compatible (to ~1e-9) with reference_forward.
void fft_conv_forward(const tensor::Tensor& input,
                      const tensor::Tensor& filter, tensor::Tensor& output,
                      const ConvShape& shape);

/// The Section III-C argument, quantified: the MEM<->LDM bandwidth an
/// FFT-based convolution would need to keep one CG at peak. The model
/// assumes the best realistic staging (rows of a plane FFT'd in LDM,
/// one full-plane pass per dimension per direction, frequency-domain
/// accumulation in LDM) and still lands far above the 22 GB/s the DMA
/// engine can deliver in-kernel.
double fft_required_bandwidth_gbs(const ConvShape& shape,
                                  const arch::Sw26010Spec& spec);

/// Flop count of the frequency-domain method for this shape (complex
/// butterflies + pointwise products), for the roofline comparison.
double fft_method_flops(const ConvShape& shape);

}  // namespace swdnn::conv
