#include "src/conv/im2col.h"

#include "src/conv/gemm.h"
#include "src/runtime/task_pool.h"

namespace swdnn::conv {

// Parallelization note: every loop below is split on the host task pool
// over an index whose writes are disjoint (a column-matrix row, an
// output channel, an input channel for the col2im scatter-add), so the
// results are bitwise-identical to the serial loops at any thread
// count — the runtime_parallel_test determinism suite holds this.
//
// Pooling note: the `pool`-taking entry points stage the lowered
// matrices through a TensorPool instead of fresh tensors. Fully
// overwritten buffers (column matrix, filter matrix, transposes) come
// back dirty; GEMM outputs come back zeroed because
// gemm_packed_parallel accumulates (C += A*B) and relies on the
// fresh-tensor zero state. Either way the bytes entering the GEMM are
// identical to the unpooled path, so results are bitwise-unchanged.

namespace {

/// Pool-or-fresh staging buffer. `zeroed` selects the acquire mode for
/// the pooled case; a fresh Tensor is always zero-initialized.
tensor::PooledTensor stage(tensor::TensorPool* pool,
                           const std::vector<std::int64_t>& dims,
                           bool zeroed) {
  if (pool == nullptr) {
    return tensor::PooledTensor(nullptr, tensor::Tensor(dims));
  }
  return zeroed ? pool->acquire(dims) : pool->acquire_dirty(dims);
}

void im2col_into(const tensor::Tensor& input, const ConvShape& s,
                 tensor::Tensor& out) {
  runtime::parallel_for(
      0, s.ni * s.kr * s.kc, 1, [&](std::int64_t rb, std::int64_t re) {
        for (std::int64_t row = rb; row < re; ++row) {
          const std::int64_t ni = row / (s.kr * s.kc);
          const std::int64_t kr = (row / s.kc) % s.kr;
          const std::int64_t kc = row % s.kc;
          for (std::int64_t ro = 0; ro < s.ro(); ++ro)
            for (std::int64_t co = 0; co < s.co(); ++co)
              for (std::int64_t b = 0; b < s.batch; ++b) {
                out.at(row, (ro * s.co() + co) * s.batch + b) = input.at(
                    ro * s.stride_r + kr, co * s.stride_c + kc, ni, b);
              }
        }
      });
}

void filter_matrix_into(const tensor::Tensor& filter, const ConvShape& s,
                        tensor::Tensor& out) {
  for (std::int64_t kr = 0; kr < s.kr; ++kr)
    for (std::int64_t kc = 0; kc < s.kc; ++kc)
      for (std::int64_t ni = 0; ni < s.ni; ++ni)
        for (std::int64_t no = 0; no < s.no; ++no) {
          out.at(no, (ni * s.kr + kr) * s.kc + kc) =
              filter.at(kr, kc, ni, no);
        }
}

// dOut [Ro][Co][No][B] as the lowered [No][(ro*Co+co)*B+b] matrix.
void output_matrix_into(const tensor::Tensor& d_output, const ConvShape& s,
                        tensor::Tensor& mat) {
  runtime::parallel_for(0, s.no, 1, [&](std::int64_t nb, std::int64_t ne) {
    for (std::int64_t no = nb; no < ne; ++no)
      for (std::int64_t ro = 0; ro < s.ro(); ++ro)
        for (std::int64_t co = 0; co < s.co(); ++co)
          for (std::int64_t b = 0; b < s.batch; ++b)
            mat.at(no, (ro * s.co() + co) * s.batch + b) =
                d_output.at(ro, co, no, b);
  });
}

}  // namespace

tensor::Tensor im2col(const tensor::Tensor& input, const ConvShape& s) {
  tensor::Tensor out({s.ni * s.kr * s.kc, s.ro() * s.co() * s.batch});
  im2col_into(input, s, out);
  return out;
}

void col2im_add(const tensor::Tensor& columns, tensor::Tensor& input,
                const ConvShape& s) {
  // Shard on ni: overlapping kernel taps scatter-add into the same
  // input pixel, but only within one input channel, so per-channel
  // shards write disjoint slices and keep the serial (kr, kc, ro, co)
  // accumulation order within each.
  runtime::parallel_for(0, s.ni, 1, [&](std::int64_t nb, std::int64_t ne) {
    for (std::int64_t ni = nb; ni < ne; ++ni)
      for (std::int64_t kr = 0; kr < s.kr; ++kr)
        for (std::int64_t kc = 0; kc < s.kc; ++kc) {
          const std::int64_t row = (ni * s.kr + kr) * s.kc + kc;
          for (std::int64_t ro = 0; ro < s.ro(); ++ro)
            for (std::int64_t co = 0; co < s.co(); ++co)
              for (std::int64_t b = 0; b < s.batch; ++b) {
                input.at(ro * s.stride_r + kr, co * s.stride_c + kc, ni,
                         b) +=
                    columns.at(row, (ro * s.co() + co) * s.batch + b);
              }
        }
  });
}

tensor::Tensor filter_matrix(const tensor::Tensor& filter,
                             const ConvShape& s) {
  tensor::Tensor out({s.no, s.ni * s.kr * s.kc});
  filter_matrix_into(filter, s, out);
  return out;
}

void im2col_forward(const tensor::Tensor& input, const tensor::Tensor& filter,
                    tensor::Tensor& output, const ConvShape& s,
                    tensor::TensorPool* pool) {
  const std::int64_t m = s.no;
  const std::int64_t n = s.ro() * s.co() * s.batch;
  const std::int64_t k = s.ni * s.kr * s.kc;
  tensor::PooledTensor cols = stage(pool, {k, n}, /*zeroed=*/false);
  tensor::PooledTensor wmat = stage(pool, {m, k}, /*zeroed=*/false);
  im2col_into(input, s, *cols);
  filter_matrix_into(filter, s, *wmat);
  tensor::PooledTensor prod = stage(pool, {m, n}, /*zeroed=*/true);
  gemm_packed_parallel(m, n, k, wmat->data(), cols->data(), prod->data());
  // Scatter [No][(ro*Co+co)*B+b] back to [Ro][Co][No][B].
  tensor::Tensor& p = *prod;
  runtime::parallel_for(0, s.no, 1, [&](std::int64_t nb, std::int64_t ne) {
    for (std::int64_t no = nb; no < ne; ++no)
      for (std::int64_t ro = 0; ro < s.ro(); ++ro)
        for (std::int64_t co = 0; co < s.co(); ++co)
          for (std::int64_t b = 0; b < s.batch; ++b) {
            output.at(ro, co, no, b) =
                p.at(no, (ro * s.co() + co) * s.batch + b);
          }
  });
}

void im2col_backward_data(const tensor::Tensor& d_output,
                          const tensor::Tensor& filter,
                          tensor::Tensor& d_input, const ConvShape& s,
                          tensor::TensorPool* pool) {
  const std::int64_t kdim = s.ni * s.kr * s.kc;
  const std::int64_t sdim = s.ro() * s.co() * s.batch;
  tensor::PooledTensor wmat = stage(pool, {s.no, kdim}, /*zeroed=*/false);
  tensor::PooledTensor dout = stage(pool, {s.no, sdim}, /*zeroed=*/false);
  filter_matrix_into(filter, s, *wmat);
  output_matrix_into(d_output, s, *dout);
  // dCol[K][S] = Wmat^T [K][No] * dOut [No][S].
  tensor::PooledTensor wmat_t = stage(pool, {kdim, s.no}, /*zeroed=*/false);
  for (std::int64_t no = 0; no < s.no; ++no)
    for (std::int64_t kk = 0; kk < kdim; ++kk)
      wmat_t->at(kk, no) = wmat->at(no, kk);
  tensor::PooledTensor dcol = stage(pool, {kdim, sdim}, /*zeroed=*/true);
  gemm_packed_parallel(kdim, sdim, s.no, wmat_t->data(), dout->data(),
                       dcol->data());
  d_input.zero();
  col2im_add(*dcol, d_input, s);
}

void im2col_backward_filter(const tensor::Tensor& input,
                            const tensor::Tensor& d_output,
                            tensor::Tensor& d_filter, const ConvShape& s,
                            tensor::TensorPool* pool) {
  const std::int64_t kdim = s.ni * s.kr * s.kc;
  const std::int64_t sdim = s.ro() * s.co() * s.batch;
  tensor::PooledTensor cols = stage(pool, {kdim, sdim}, /*zeroed=*/false);
  tensor::PooledTensor dout = stage(pool, {s.no, sdim}, /*zeroed=*/false);
  im2col_into(input, s, *cols);
  output_matrix_into(d_output, s, *dout);
  // dWmat[No][K] = dOut [No][S] * Col^T [S][K].
  tensor::PooledTensor cols_t = stage(pool, {sdim, kdim}, /*zeroed=*/false);
  tensor::Tensor& ct = *cols_t;
  tensor::Tensor& c = *cols;
  runtime::parallel_for(0, kdim, 1, [&](std::int64_t kb, std::int64_t ke) {
    for (std::int64_t kk = kb; kk < ke; ++kk)
      for (std::int64_t ss = 0; ss < sdim; ++ss)
        ct.at(ss, kk) = c.at(kk, ss);
  });
  tensor::PooledTensor dwmat = stage(pool, {s.no, kdim}, /*zeroed=*/true);
  gemm_packed_parallel(s.no, kdim, sdim, dout->data(), cols_t->data(),
                       dwmat->data());
  // Scatter [No][(ni*Kr+kr)*Kc+kc] back to [Kr][Kc][Ni][No].
  for (std::int64_t kr = 0; kr < s.kr; ++kr)
    for (std::int64_t kc = 0; kc < s.kc; ++kc)
      for (std::int64_t ni = 0; ni < s.ni; ++ni)
        for (std::int64_t no = 0; no < s.no; ++no)
          d_filter.at(kr, kc, ni, no) =
              dwmat->at(no, (ni * s.kr + kr) * s.kc + kc);
}

}  // namespace swdnn::conv
