#include "src/conv/im2col.h"

#include "src/conv/gemm.h"
#include "src/runtime/task_pool.h"

namespace swdnn::conv {

// Parallelization note: every loop below is split on the host task pool
// over an index whose writes are disjoint (a column-matrix row, an
// output channel, an input channel for the col2im scatter-add), so the
// results are bitwise-identical to the serial loops at any thread
// count — the runtime_parallel_test determinism suite holds this.

tensor::Tensor im2col(const tensor::Tensor& input, const ConvShape& s) {
  const std::int64_t rows = s.ni * s.kr * s.kc;
  const std::int64_t cols = s.ro() * s.co() * s.batch;
  tensor::Tensor out({rows, cols});
  runtime::parallel_for(0, rows, 1, [&](std::int64_t rb, std::int64_t re) {
    for (std::int64_t row = rb; row < re; ++row) {
      const std::int64_t ni = row / (s.kr * s.kc);
      const std::int64_t kr = (row / s.kc) % s.kr;
      const std::int64_t kc = row % s.kc;
      for (std::int64_t ro = 0; ro < s.ro(); ++ro)
        for (std::int64_t co = 0; co < s.co(); ++co)
          for (std::int64_t b = 0; b < s.batch; ++b) {
            out.at(row, (ro * s.co() + co) * s.batch + b) =
                input.at(ro * s.stride_r + kr, co * s.stride_c + kc, ni, b);
          }
    }
  });
  return out;
}

void col2im_add(const tensor::Tensor& columns, tensor::Tensor& input,
                const ConvShape& s) {
  // Shard on ni: overlapping kernel taps scatter-add into the same
  // input pixel, but only within one input channel, so per-channel
  // shards write disjoint slices and keep the serial (kr, kc, ro, co)
  // accumulation order within each.
  runtime::parallel_for(0, s.ni, 1, [&](std::int64_t nb, std::int64_t ne) {
    for (std::int64_t ni = nb; ni < ne; ++ni)
      for (std::int64_t kr = 0; kr < s.kr; ++kr)
        for (std::int64_t kc = 0; kc < s.kc; ++kc) {
          const std::int64_t row = (ni * s.kr + kr) * s.kc + kc;
          for (std::int64_t ro = 0; ro < s.ro(); ++ro)
            for (std::int64_t co = 0; co < s.co(); ++co)
              for (std::int64_t b = 0; b < s.batch; ++b) {
                input.at(ro * s.stride_r + kr, co * s.stride_c + kc, ni,
                         b) +=
                    columns.at(row, (ro * s.co() + co) * s.batch + b);
              }
        }
  });
}

tensor::Tensor filter_matrix(const tensor::Tensor& filter,
                             const ConvShape& s) {
  tensor::Tensor out({s.no, s.ni * s.kr * s.kc});
  for (std::int64_t kr = 0; kr < s.kr; ++kr)
    for (std::int64_t kc = 0; kc < s.kc; ++kc)
      for (std::int64_t ni = 0; ni < s.ni; ++ni)
        for (std::int64_t no = 0; no < s.no; ++no) {
          out.at(no, (ni * s.kr + kr) * s.kc + kc) =
              filter.at(kr, kc, ni, no);
        }
  return out;
}

void im2col_forward(const tensor::Tensor& input, const tensor::Tensor& filter,
                    tensor::Tensor& output, const ConvShape& s) {
  const tensor::Tensor cols = im2col(input, s);
  const tensor::Tensor wmat = filter_matrix(filter, s);
  const std::int64_t m = s.no;
  const std::int64_t n = s.ro() * s.co() * s.batch;
  const std::int64_t k = s.ni * s.kr * s.kc;
  tensor::Tensor prod({m, n});
  gemm_packed_parallel(m, n, k, wmat.data(), cols.data(), prod.data());
  // Scatter [No][(ro*Co+co)*B+b] back to [Ro][Co][No][B].
  runtime::parallel_for(0, s.no, 1, [&](std::int64_t nb, std::int64_t ne) {
    for (std::int64_t no = nb; no < ne; ++no)
      for (std::int64_t ro = 0; ro < s.ro(); ++ro)
        for (std::int64_t co = 0; co < s.co(); ++co)
          for (std::int64_t b = 0; b < s.batch; ++b) {
            output.at(ro, co, no, b) =
                prod.at(no, (ro * s.co() + co) * s.batch + b);
          }
  });
}

namespace {

// dOut [Ro][Co][No][B] as the lowered [No][(ro*Co+co)*B+b] matrix.
tensor::Tensor output_matrix(const tensor::Tensor& d_output,
                             const ConvShape& s) {
  tensor::Tensor mat({s.no, s.ro() * s.co() * s.batch});
  runtime::parallel_for(0, s.no, 1, [&](std::int64_t nb, std::int64_t ne) {
    for (std::int64_t no = nb; no < ne; ++no)
      for (std::int64_t ro = 0; ro < s.ro(); ++ro)
        for (std::int64_t co = 0; co < s.co(); ++co)
          for (std::int64_t b = 0; b < s.batch; ++b)
            mat.at(no, (ro * s.co() + co) * s.batch + b) =
                d_output.at(ro, co, no, b);
  });
  return mat;
}

}  // namespace

void im2col_backward_data(const tensor::Tensor& d_output,
                          const tensor::Tensor& filter,
                          tensor::Tensor& d_input, const ConvShape& s) {
  const tensor::Tensor wmat = filter_matrix(filter, s);       // [No][K]
  const tensor::Tensor dout = output_matrix(d_output, s);     // [No][S]
  const std::int64_t kdim = s.ni * s.kr * s.kc;
  const std::int64_t sdim = s.ro() * s.co() * s.batch;
  // dCol[K][S] = Wmat^T [K][No] * dOut [No][S].
  tensor::Tensor wmat_t({kdim, s.no});
  for (std::int64_t no = 0; no < s.no; ++no)
    for (std::int64_t kk = 0; kk < kdim; ++kk)
      wmat_t.at(kk, no) = wmat.at(no, kk);
  tensor::Tensor dcol({kdim, sdim});
  gemm_packed_parallel(kdim, sdim, s.no, wmat_t.data(), dout.data(),
                       dcol.data());
  d_input.zero();
  col2im_add(dcol, d_input, s);
}

void im2col_backward_filter(const tensor::Tensor& input,
                            const tensor::Tensor& d_output,
                            tensor::Tensor& d_filter, const ConvShape& s) {
  const tensor::Tensor cols = im2col(input, s);             // [K][S]
  const tensor::Tensor dout = output_matrix(d_output, s);   // [No][S]
  const std::int64_t kdim = s.ni * s.kr * s.kc;
  const std::int64_t sdim = s.ro() * s.co() * s.batch;
  // dWmat[No][K] = dOut [No][S] * Col^T [S][K].
  tensor::Tensor cols_t({sdim, kdim});
  runtime::parallel_for(0, kdim, 1, [&](std::int64_t kb, std::int64_t ke) {
    for (std::int64_t kk = kb; kk < ke; ++kk)
      for (std::int64_t ss = 0; ss < sdim; ++ss)
        cols_t.at(ss, kk) = cols.at(kk, ss);
  });
  tensor::Tensor dwmat({s.no, kdim});
  gemm_packed_parallel(s.no, kdim, sdim, dout.data(), cols_t.data(),
                       dwmat.data());
  // Scatter [No][(ni*Kr+kr)*Kc+kc] back to [Kr][Kc][Ni][No].
  for (std::int64_t kr = 0; kr < s.kr; ++kr)
    for (std::int64_t kc = 0; kc < s.kc; ++kc)
      for (std::int64_t ni = 0; ni < s.ni; ++ni)
        for (std::int64_t no = 0; no < s.no; ++no)
          d_filter.at(kr, kc, ni, no) =
              dwmat.at(no, (ni * s.kr + kr) * s.kc + kc);
}

}  // namespace swdnn::conv
