#pragma once
// Naive reference convolution — the ground truth every optimized path
// is checked against (the 7-loop pseudo code of paper Listing 1), plus
// the training-side gradients.
//
// Layout conventions match src/tensor/layout.h:
//   input [Ri][Ci][Ni][B], filter [Kr][Kc][Ni][No], output [Ro][Co][No][B].

#include "src/conv/shape.h"
#include "src/tensor/tensor.h"

namespace swdnn::conv {

/// Allocates tensors of the right shapes for `shape`.
tensor::Tensor make_input(const ConvShape& shape);
tensor::Tensor make_filter(const ConvShape& shape);
tensor::Tensor make_output(const ConvShape& shape);

/// out[ro][co][no][b] = sum_{ni,kr,kc} in[ro+kr][co+kc][ni][b] *
/// w[kr][kc][ni][no]. Overwrites `out`.
void reference_forward(const tensor::Tensor& input,
                       const tensor::Tensor& filter, tensor::Tensor& output,
                       const ConvShape& shape);

/// Input gradient: din = dout (*) rot180(w), full correlation.
void reference_backward_data(const tensor::Tensor& d_output,
                             const tensor::Tensor& filter,
                             tensor::Tensor& d_input, const ConvShape& shape);

/// Filter gradient: dw[kr][kc][ni][no] = sum_{b,ro,co}
/// in[ro+kr][co+kc][ni][b] * dout[ro][co][no][b].
void reference_backward_filter(const tensor::Tensor& input,
                               const tensor::Tensor& d_output,
                               tensor::Tensor& d_filter,
                               const ConvShape& shape);

}  // namespace swdnn::conv
