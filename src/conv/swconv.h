#pragma once
// swDNN's public convolution entry point.
//
// Three fidelity levels (DESIGN.md §5):
//   * forward()            — functional execution on the simulated mesh,
//                            plan picked by the performance model;
//                            bit-checked against the naive reference.
//   * cycle_accounted_*()  — level-2 timing: walks the chosen plan's
//                            loop nest charging Table II DMA costs,
//                            pipeline-simulated compute, bus traffic and
//                            barrier overheads. This is the library's
//                            stand-in for "measured" silicon numbers
//                            (Table III's `meas` column).
//   * estimate()           — level-3 closed-form model (Table III `mdl`).

#include <memory>
#include <mutex>
#include <optional>
#include <unordered_set>

#include "src/conv/ldm_blocked.h"
#include "src/conv/shape.h"
#include "src/perf/autotune.h"
#include "src/perf/chooser.h"
#include "src/perf/plan_cache.h"
#include "src/sim/noc.h"

namespace swdnn::conv {

struct ForwardResult {
  perf::PlanChoice choice;
  sim::LaunchStats stats;
};

class SwConvolution {
 public:
  explicit SwConvolution(
      const arch::Sw26010Spec& spec = arch::default_spec());

  /// Functional forward on one simulated core group. Overwrites
  /// `output`. Uses `plan` if given, else the cached model choice
  /// (adjusted to mesh-divisibility if needed).
  ForwardResult forward(const tensor::Tensor& input,
                        const tensor::Tensor& filter, tensor::Tensor& output,
                        const ConvShape& shape,
                        std::optional<perf::ConvPlan> plan = std::nullopt);

  /// Executes an already-resolved plan choice (a cached winner or one
  /// of its ranked fallbacks) without re-consulting chooser or model.
  ForwardResult execute_choice(const perf::PlanChoice& choice,
                               const tensor::Tensor& input,
                               const tensor::Tensor& filter,
                               tensor::Tensor& output,
                               const ConvShape& shape);

  /// Functional forward with output rows partitioned across `num_cgs`
  /// core groups (the paper's §III-D scaling scheme).
  sim::MultiCgStats forward_multi_cg(
      const tensor::Tensor& input, const tensor::Tensor& filter,
      tensor::Tensor& output, const ConvShape& shape, int num_cgs,
      std::optional<perf::ConvPlan> plan = std::nullopt);

  /// Best plan per the performance model, constrained to plans the mesh
  /// kernels can execute for this shape. Served from the plan cache:
  /// the chooser ranks a shape once, repeats are O(1) lookups. Throws
  /// MeshMappingError when require_executable finds no mesh route.
  perf::PlanChoice plan_for(const ConvShape& shape,
                            bool require_executable = false) const;

  /// Cached ranked plans for the shape (never null): ranks via the
  /// chooser on first sight, hits the shape-keyed cache afterwards.
  /// Thread-safe; LookupResult.hit feeds the observability counters.
  perf::PlanCache::LookupResult ranked_plans(const ConvShape& shape) const;

  /// Compile-time plan warm-up: ranks each shape into the plan cache
  /// without touching the hit/miss counters, so a network's first
  /// training batch dispatches on cache hits and serve-time hit rates
  /// measure serve traffic only. Returns how many entries were built
  /// (already-cached shapes are skipped).
  std::size_t warm_plans(const std::vector<ConvShape>& shapes);

  /// Runs the schedule autotuner over the shape's ranked plans and
  /// installs the tuned ranking in the plan cache, so every subsequent
  /// dispatch of the shape serves the tuned schedule. Counter-neutral
  /// (peek/warm/install only) and idempotent: a shape is tuned at most
  /// once per SwConvolution; repeats return nullopt without work.
  /// Tuning upgrades each ranked entry in place-order, so the cached
  /// executable-index list stays valid and outputs stay bitwise
  /// identical (the tuned knobs are schedule-only; see autotune.h).
  std::optional<perf::AutotuneReport> autotune_plan(const ConvShape& shape);

  /// Measured autotune (DESIGN.md §16): schedule-tunes the ranking like
  /// autotune_plan, then *confirms* the top modeled candidates with
  /// timed simulator launches — the top two mesh-executable entries,
  /// preferring a pair from different mapping families — on
  /// deterministic synthetic data. If the runner-up measures strictly
  /// faster (LaunchStats::modeled_seconds under the plan's buffering
  /// mode), the two entries swap places before the ranking is installed
  /// — an explicit, reported reorder, never a silent one. Counter-
  /// neutral and idempotent like autotune_plan (shares its tuned-shapes
  /// set). A candidate whose timed launch faults simply loses the
  /// comparison; this method never throws on faults.
  std::optional<perf::MeasuredAutotuneReport> autotune_plan_measured(
      const ConvShape& shape);

  /// Hit/miss/eviction counters of this object's plan cache.
  perf::PlanCacheStats plan_cache_stats() const {
    return plan_cache_.stats();
  }

  /// Drops every cached plan and zeroes the cache counters.
  void clear_plan_cache() { plan_cache_.clear(); }

  /// Level-3 closed-form estimate for the best plan.
  perf::PerfEstimate estimate(const ConvShape& shape) const;

  /// Level-2 cycle-accounted throughput for one core group (Gflop/s).
  double cycle_accounted_gflops_per_cg(const ConvShape& shape,
                                       const perf::ConvPlan& plan) const;

  /// Level-2 chip throughput: 4 core groups on row partitions plus the
  /// launch overhead.
  double cycle_accounted_gflops_chip(const ConvShape& shape,
                                     const perf::ConvPlan& plan) const;

  const perf::PlanChooser& chooser() const { return chooser_; }
  const arch::Sw26010Spec& spec() const { return spec_; }

  /// Attaches a fault campaign to every simulated launch this object
  /// issues (nullptr detaches). When a launch reports an injected fault
  /// it could not absorb under the retry policy, forward() throws
  /// sim::LaunchFault after the launch drains; callers retry or fall
  /// back to the host path.
  void set_fault_injector(sim::FaultInjector* injector) {
    injector_ = injector;
  }
  sim::FaultInjector* fault_injector() const { return injector_; }

  /// Tile-level DMA retry-with-backoff applied inside launches.
  void set_retry_policy(const sim::RetryPolicy& policy) { retry_ = policy; }
  const sim::RetryPolicy& retry_policy() const { return retry_; }

  /// Attaches an event tracer to every simulated launch this object
  /// issues (nullptr detaches); the tracer must outlive the launches.
  void set_tracer(sim::EventTracer* tracer) { tracer_ = tracer; }
  sim::EventTracer* tracer() const { return tracer_; }

  // Threading: forward/execute_choice/plan_for/ranked_plans may run
  // concurrently from many threads on one SwConvolution (launches share
  // one persistent MeshExecutor — its 64-thread worker pool is created
  // once and reused — and serialize on an internal mutex; the plan
  // cache locks internally; the attached tracer/injector are themselves
  // thread-safe). The setters (set_fault_injector, set_retry_policy,
  // set_tracer) are configuration-phase calls and must not race with
  // in-flight work.

 private:
  /// The plan-cache builder closure shared by ranked_plans and
  /// warm_plans: chooser rank + mesh-executability filter.
  perf::PlanCache::Builder cache_builder() const;

  /// The shared executor, created on first launch. Callers must hold
  /// exec_mutex_ for the whole launch; the method (re)applies the
  /// currently attached injector/retry/tracer configuration.
  sim::MeshExecutor& shared_executor() const;

  arch::Sw26010Spec spec_;  // by value: callers may pass temporaries
  perf::PlanChooser chooser_;
  sim::FaultInjector* injector_ = nullptr;
  sim::RetryPolicy retry_;
  sim::EventTracer* tracer_ = nullptr;
  mutable perf::PlanCache plan_cache_;
  std::mutex tune_mutex_;  ///< guards tuned_
  std::unordered_set<ConvShape, perf::PlanCache::ShapeHash> tuned_;
  mutable std::mutex exec_mutex_;  ///< serializes launches on exec_
  mutable std::unique_ptr<sim::MeshExecutor> exec_;
};

}  // namespace swdnn::conv
