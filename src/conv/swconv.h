#pragma once
// swDNN's public convolution entry point.
//
// Three fidelity levels (DESIGN.md §5):
//   * forward()            — functional execution on the simulated mesh,
//                            plan picked by the performance model;
//                            bit-checked against the naive reference.
//   * cycle_accounted_*()  — level-2 timing: walks the chosen plan's
//                            loop nest charging Table II DMA costs,
//                            pipeline-simulated compute, bus traffic and
//                            barrier overheads. This is the library's
//                            stand-in for "measured" silicon numbers
//                            (Table III's `meas` column).
//   * estimate()           — level-3 closed-form model (Table III `mdl`).

#include <optional>

#include "src/conv/ldm_blocked.h"
#include "src/conv/shape.h"
#include "src/perf/chooser.h"
#include "src/sim/noc.h"

namespace swdnn::conv {

struct ForwardResult {
  perf::PlanChoice choice;
  sim::LaunchStats stats;
};

class SwConvolution {
 public:
  explicit SwConvolution(
      const arch::Sw26010Spec& spec = arch::default_spec());

  /// Functional forward on one simulated core group. Overwrites
  /// `output`. Uses `plan` if given, else the model's choice (adjusted
  /// to mesh-divisibility if needed).
  ForwardResult forward(const tensor::Tensor& input,
                        const tensor::Tensor& filter, tensor::Tensor& output,
                        const ConvShape& shape,
                        std::optional<perf::ConvPlan> plan = std::nullopt);

  /// Functional forward with output rows partitioned across `num_cgs`
  /// core groups (the paper's §III-D scaling scheme).
  sim::MultiCgStats forward_multi_cg(
      const tensor::Tensor& input, const tensor::Tensor& filter,
      tensor::Tensor& output, const ConvShape& shape, int num_cgs,
      std::optional<perf::ConvPlan> plan = std::nullopt);

  /// Best plan per the performance model, constrained to plans the mesh
  /// kernels can execute for this shape.
  perf::PlanChoice plan_for(const ConvShape& shape,
                            bool require_executable = false) const;

  /// Level-3 closed-form estimate for the best plan.
  perf::PerfEstimate estimate(const ConvShape& shape) const;

  /// Level-2 cycle-accounted throughput for one core group (Gflop/s).
  double cycle_accounted_gflops_per_cg(const ConvShape& shape,
                                       const perf::ConvPlan& plan) const;

  /// Level-2 chip throughput: 4 core groups on row partitions plus the
  /// launch overhead.
  double cycle_accounted_gflops_chip(const ConvShape& shape,
                                     const perf::ConvPlan& plan) const;

  const perf::PlanChooser& chooser() const { return chooser_; }
  const arch::Sw26010Spec& spec() const { return spec_; }

  /// Attaches a fault campaign to every simulated launch this object
  /// issues (nullptr detaches). When a launch reports an injected fault
  /// it could not absorb under the retry policy, forward() throws
  /// sim::LaunchFault after the launch drains; callers retry or fall
  /// back to the host path.
  void set_fault_injector(sim::FaultInjector* injector) {
    injector_ = injector;
  }
  sim::FaultInjector* fault_injector() const { return injector_; }

  /// Tile-level DMA retry-with-backoff applied inside launches.
  void set_retry_policy(const sim::RetryPolicy& policy) { retry_ = policy; }
  const sim::RetryPolicy& retry_policy() const { return retry_; }

 private:
  arch::Sw26010Spec spec_;  // by value: callers may pass temporaries
  perf::PlanChooser chooser_;
  sim::FaultInjector* injector_ = nullptr;
  sim::RetryPolicy retry_;
};

}  // namespace swdnn::conv
