#include "src/conv/reference.h"

namespace swdnn::conv {

tensor::Tensor make_input(const ConvShape& s) {
  return tensor::Tensor({s.ri, s.ci, s.ni, s.batch});
}

tensor::Tensor make_filter(const ConvShape& s) {
  return tensor::Tensor({s.kr, s.kc, s.ni, s.no});
}

tensor::Tensor make_output(const ConvShape& s) {
  return tensor::Tensor({s.ro(), s.co(), s.no, s.batch});
}

void reference_forward(const tensor::Tensor& input,
                       const tensor::Tensor& filter, tensor::Tensor& output,
                       const ConvShape& s) {
  output.zero();
  for (std::int64_t ro = 0; ro < s.ro(); ++ro)
    for (std::int64_t co = 0; co < s.co(); ++co)
      for (std::int64_t kr = 0; kr < s.kr; ++kr)
        for (std::int64_t kc = 0; kc < s.kc; ++kc)
          for (std::int64_t ni = 0; ni < s.ni; ++ni)
            for (std::int64_t no = 0; no < s.no; ++no) {
              const double w = filter.at(kr, kc, ni, no);
              for (std::int64_t b = 0; b < s.batch; ++b) {
                output.at(ro, co, no, b) +=
                    input.at(ro * s.stride_r + kr, co * s.stride_c + kc, ni, b) * w;
              }
            }
}

void reference_backward_data(const tensor::Tensor& d_output,
                             const tensor::Tensor& filter,
                             tensor::Tensor& d_input, const ConvShape& s) {
  d_input.zero();
  for (std::int64_t ro = 0; ro < s.ro(); ++ro)
    for (std::int64_t co = 0; co < s.co(); ++co)
      for (std::int64_t kr = 0; kr < s.kr; ++kr)
        for (std::int64_t kc = 0; kc < s.kc; ++kc)
          for (std::int64_t ni = 0; ni < s.ni; ++ni)
            for (std::int64_t no = 0; no < s.no; ++no) {
              const double w = filter.at(kr, kc, ni, no);
              for (std::int64_t b = 0; b < s.batch; ++b) {
                d_input.at(ro * s.stride_r + kr, co * s.stride_c + kc, ni, b) +=
                    d_output.at(ro, co, no, b) * w;
              }
            }
}

void reference_backward_filter(const tensor::Tensor& input,
                               const tensor::Tensor& d_output,
                               tensor::Tensor& d_filter, const ConvShape& s) {
  d_filter.zero();
  for (std::int64_t ro = 0; ro < s.ro(); ++ro)
    for (std::int64_t co = 0; co < s.co(); ++co)
      for (std::int64_t kr = 0; kr < s.kr; ++kr)
        for (std::int64_t kc = 0; kc < s.kc; ++kc)
          for (std::int64_t ni = 0; ni < s.ni; ++ni)
            for (std::int64_t no = 0; no < s.no; ++no) {
              double acc = 0;
              for (std::int64_t b = 0; b < s.batch; ++b) {
                acc += input.at(ro * s.stride_r + kr, co * s.stride_c + kc, ni, b) *
                       d_output.at(ro, co, no, b);
              }
              d_filter.at(kr, kc, ni, no) += acc;
            }
}

}  // namespace swdnn::conv
