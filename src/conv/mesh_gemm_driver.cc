#include "src/conv/mesh_gemm_driver.h"

#include <algorithm>
#include <stdexcept>

#include "src/conv/regcomm_gemm.h"

namespace swdnn::conv {

namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

}  // namespace

std::int64_t mesh_gemm_default_k_chunk(const arch::Sw26010Spec& spec,
                                       std::int64_t m, std::int64_t k,
                                       std::int64_t n) {
  const std::int64_t p = spec.mesh_rows;
  const std::int64_t m_t = ceil_div(m, p);
  const std::int64_t n_t = ceil_div(n, p);
  const std::int64_t budget_doubles =
      static_cast<std::int64_t>(spec.ldm_bytes - spec.ldm_reserved_bytes) / 8;
  // Footprint in doubles: A tile + recv (2*k_t*m_t), B tile + recv
  // (2*k_t*n_t), output tile (m_t*n_t), writeback staging (n_t).
  const std::int64_t fixed = m_t * n_t + n_t;
  if (fixed >= budget_doubles) {
    throw std::invalid_argument(
        "mesh_gemm: output tile alone overflows LDM; reduce m or n");
  }
  const std::int64_t k_t =
      std::max<std::int64_t>(1, (budget_doubles - fixed) /
                                    (2 * (m_t + n_t)));
  return std::min(k, k_t * p);
}

sim::LaunchStats mesh_gemm(sim::MeshExecutor& exec,
                           std::span<const double> a,
                           std::span<const double> b, std::span<double> out,
                           std::int64_t m, std::int64_t k, std::int64_t n,
                           const MeshGemmOptions& options) {
  if (m <= 0 || k <= 0 || n <= 0) {
    throw std::invalid_argument("mesh_gemm: dimensions must be positive");
  }
  if (static_cast<std::int64_t>(a.size()) != k * m ||
      static_cast<std::int64_t>(b.size()) != k * n ||
      static_cast<std::int64_t>(out.size()) != m * n) {
    throw std::invalid_argument("mesh_gemm: operand size mismatch");
  }
  const auto& spec = exec.spec();
  const std::int64_t p = spec.mesh_rows;
  const std::int64_t m_t = ceil_div(m, p);
  const std::int64_t n_t = ceil_div(n, p);
  const std::int64_t k_chunk =
      options.k_chunk > 0 ? std::min(options.k_chunk, k)
                          : mesh_gemm_default_k_chunk(spec, m, k, n);
  const std::int64_t k_t = ceil_div(k_chunk, p);
  const bool accumulate = options.accumulate;
  const BusPathMode bus_mode = options.bus_mode;

  auto kernel = [&a, &b, &out, m, k, n, m_t, n_t, k_t, k_chunk, accumulate,
                 bus_mode](sim::CpeContext& ctx) {
    const std::int64_t i = ctx.row();
    const std::int64_t j = ctx.col();
    auto a_tile = ctx.ldm().alloc_doubles(static_cast<std::size_t>(k_t * m_t));
    auto a_recv = ctx.ldm().alloc_doubles(static_cast<std::size_t>(k_t * m_t));
    auto b_tile = ctx.ldm().alloc_doubles(static_cast<std::size_t>(k_t * n_t));
    auto b_recv = ctx.ldm().alloc_doubles(static_cast<std::size_t>(k_t * n_t));
    auto out_tile =
        ctx.ldm().alloc_doubles(static_cast<std::size_t>(m_t * n_t));
    auto staging = ctx.ldm().alloc_doubles(static_cast<std::size_t>(n_t));
    std::fill(out_tile.begin(), out_tile.end(), 0.0);

    // Loads rows [row0, row0+rows) x columns [col0, col0+width) of a
    // [k x cols] matrix into a dense tile, zero-padding out-of-bounds.
    auto load_tile = [&ctx, k](std::span<const double> src,
                               std::span<double> dst, std::int64_t cols,
                               std::int64_t row0, std::int64_t rows,
                               std::int64_t col0, std::int64_t width) {
      for (std::int64_t r = 0; r < rows; ++r) {
        std::span<double> dst_row =
            dst.subspan(static_cast<std::size_t>(r * width),
                        static_cast<std::size_t>(width));
        const std::int64_t row = row0 + r;
        // Both the row (contraction) and the column window can fall
        // entirely out of bounds on a mesh larger than the matrix.
        const std::int64_t valid =
            row < k ? std::max<std::int64_t>(
                          0, std::min(width, cols - col0))
                    : 0;
        if (valid > 0) {
          ctx.dma_get({src.data() + row * cols + col0,
                       static_cast<std::size_t>(valid)},
                      dst_row.first(static_cast<std::size_t>(valid)));
        }
        std::fill(dst_row.begin() + valid, dst_row.end(), 0.0);
      }
    };

    for (std::int64_t k0 = 0; k0 < k; k0 += k_chunk) {
      // A: contraction block j (this CPE's mesh column), m block i;
      // B: contraction block i (mesh row), n block j — the Fig. 3
      // distribution, nothing duplicated across the mesh.
      load_tile(a, a_tile, m, k0 + j * k_t, k_t, i * m_t, m_t);
      load_tile(b, b_tile, n, k0 + i * k_t, k_t, j * n_t, n_t);
      mesh_gemm_accumulate(ctx, a_tile, b_tile, out_tile, a_recv, b_recv,
                           static_cast<int>(m_t), static_cast<int>(k_t),
                           static_cast<int>(n_t), bus_mode);
    }

    // Write back the in-bounds part of the tile; on meshes larger than
    // the matrix some CPEs own nothing.
    const std::int64_t valid_m =
        std::max<std::int64_t>(0, std::min(m_t, m - i * m_t));
    const std::int64_t valid_n =
        std::max<std::int64_t>(0, std::min(n_t, n - j * n_t));
    if (valid_n == 0) return;
    for (std::int64_t ml = 0; ml < valid_m; ++ml) {
      std::span<double> dst{out.data() + (i * m_t + ml) * n + j * n_t,
                            static_cast<std::size_t>(valid_n)};
      std::span<double> src =
          out_tile.subspan(static_cast<std::size_t>(ml * n_t),
                           static_cast<std::size_t>(valid_n));
      if (accumulate) {
        std::span<double> stage =
            staging.first(static_cast<std::size_t>(valid_n));
        ctx.dma_get(dst, stage);
        for (std::int64_t c = 0; c < valid_n; ++c) stage[c] += src[c];
        ctx.dma_put(stage, dst);
      } else {
        ctx.dma_put(src, dst);
      }
    }
  };
  return exec.run(kernel);
}

}  // namespace swdnn::conv
