#pragma once
// Host GEMM kernels (the substrate under the im2col baseline and the
// fully-connected layer). Plain row-major C += A*B, in a naive and a
// cache-blocked variant; the blocked one is the host analogue of the
// paper's LDM blocking and is measured by bench_host_kernels.

#include <cstdint>
#include <span>

namespace swdnn::conv {

/// C[m x n] += A[m x k] * B[k x n], all row-major, naive loop order.
void gemm_naive(std::int64_t m, std::int64_t n, std::int64_t k,
                std::span<const double> a, std::span<const double> b,
                std::span<double> c);

/// Same contract, tiled for cache with an i-k-j loop order.
void gemm_blocked(std::int64_t m, std::int64_t n, std::int64_t k,
                  std::span<const double> a, std::span<const double> b,
                  std::span<double> c, std::int64_t tile = 64);

}  // namespace swdnn::conv
