#pragma once
// Host GEMM kernels (the substrate under the im2col baseline and the
// fully-connected layer). Plain row-major C += A*B, in a naive and a
// cache-blocked variant; the blocked one is the host analogue of the
// paper's LDM blocking and is measured by bench_host_kernels.

#include <cstdint>
#include <span>

namespace swdnn::conv {

/// C[m x n] += A[m x k] * B[k x n], all row-major, naive loop order.
void gemm_naive(std::int64_t m, std::int64_t n, std::int64_t k,
                std::span<const double> a, std::span<const double> b,
                std::span<double> c);

/// Same contract, tiled for cache with an i-k-j loop order. Non-positive
/// `tile` values are clamped to the default (they used to hang the tile
/// loops).
void gemm_blocked(std::int64_t m, std::int64_t n, std::int64_t k,
                  std::span<const double> a, std::span<const double> b,
                  std::span<double> c, std::int64_t tile = 64);

/// Packed, cache-blocked, row-panel-parallel GEMM on the host task
/// pool: B is packed into [k-tile][n-tile] panels once, each worker
/// packs its A row panel, and C is split by row blocks so every row is
/// produced by exactly one worker. Each C element accumulates its k
/// products one at a time in ascending-k order — the same order as
/// gemm_naive and gemm_blocked — so the result is bitwise-identical to
/// the serial kernels at any thread count. This is the host fallback
/// kernel under the im2col lowering and the API's degradation ladder.
void gemm_packed_parallel(std::int64_t m, std::int64_t n, std::int64_t k,
                          std::span<const double> a,
                          std::span<const double> b, std::span<double> c,
                          std::int64_t tile = 64);

}  // namespace swdnn::conv
