#include "src/serve/server.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "src/sim/trace.h"

namespace swdnn::serve {

namespace {

std::int64_t product(const std::vector<std::int64_t>& dims) {
  std::int64_t n = 1;
  for (const std::int64_t d : dims) n *= d;
  return n;
}

double ms_since(Clock::time_point begin) {
  return std::chrono::duration<double, std::milli>(Clock::now() - begin)
      .count();
}

/// Exponential retry backoff, saturating at a hard cap so repeated
/// doubling can never overflow the duration representation (the
/// wall-clock analogue of sim::retry_backoff_cycles' saturation).
Clock::duration retry_backoff_after(Clock::duration base, int attempts) {
  static constexpr auto kCap = std::chrono::seconds(10);
  Clock::duration backoff = base;
  for (int k = 1; k < attempts && backoff < kCap; ++k) backoff *= 2;
  return std::min<Clock::duration>(backoff, kCap);
}

}  // namespace

void pack_sample(tensor::Tensor& batch, int slot,
                 std::span<const double> sample) {
  if (batch.rank() < 1) {
    throw std::invalid_argument("pack_sample: batch tensor has no batch axis");
  }
  const std::int64_t b = batch.dims().back();
  if (slot < 0 || slot >= b ||
      static_cast<std::int64_t>(sample.size()) * b != batch.size()) {
    throw std::invalid_argument("pack_sample: slot/sample size mismatch");
  }
  std::span<double> out = batch.data();
  for (std::size_t i = 0; i < sample.size(); ++i) {
    out[i * static_cast<std::size_t>(b) + static_cast<std::size_t>(slot)] =
        sample[i];
  }
}

tensor::Tensor extract_sample(const tensor::Tensor& batch, int slot) {
  if (batch.rank() < 1) {
    throw std::invalid_argument(
        "extract_sample: batch tensor has no batch axis");
  }
  const std::int64_t b = batch.dims().back();
  if (slot < 0 || slot >= b) {
    throw std::invalid_argument("extract_sample: slot out of range");
  }
  std::vector<std::int64_t> dims = batch.dims();
  dims.back() = 1;
  tensor::Tensor out(dims);
  std::span<double> dst = out.data();
  std::span<const double> src = batch.data();
  for (std::int64_t i = 0; i < out.size(); ++i) {
    dst[static_cast<std::size_t>(i)] =
        src[static_cast<std::size_t>(i * b + slot)];
  }
  return out;
}

InferenceServer::InferenceServer(ModelFactory factory,
                                 std::vector<std::int64_t> sample_dims,
                                 ServerConfig config)
    : config_(config), sample_dims_(std::move(sample_dims)) {
  config_.max_batch = std::max(config_.max_batch, 1);
  config_.num_replicas = std::max(config_.num_replicas, 1);
  config_.max_attempts = std::max(config_.max_attempts, 1);
  config_.max_queue = std::max<std::size_t>(config_.max_queue, 1);
  config_.max_queue_per_tenant =
      std::max<std::size_t>(config_.max_queue_per_tenant, 1);
  sample_elements_ = product(sample_dims_);

  // One shared backend context: every replica's heavy ops funnel
  // through one plan cache and one fault/retry/host-fallback ladder.
  // Configuration happens here, before any serving thread exists (the
  // handle's configure-then-dispatch contract).
  context_ = std::make_unique<dnn::BackendContext>(config_.spec);
  if (config_.tracer != nullptr) context_->set_event_tracer(config_.tracer);
  if (config_.device_faults != nullptr) {
    context_->set_fault_plan(config_.device_faults);
  }
  context_->set_retry_policy(std::max(config_.device_retry_attempts, 1),
                             config_.device_retry_backoff);
  if (config_.request_faults != nullptr) {
    chaos_ = std::make_unique<ServeFaultInjector>(*config_.request_faults);
  }

  std::vector<std::int64_t> batched_dims = sample_dims_;
  batched_dims.push_back(config_.max_batch);
  lanes_.reserve(static_cast<std::size_t>(config_.num_replicas));
  for (int r = 0; r < config_.num_replicas; ++r) {
    Lane lane;
    lane.net = factory(config_.max_batch);
    dnn::CompileOptions options;
    options.context = context_.get();
    options.tracer = config_.tracer;
    lane.net->compile(batched_dims, options);
    lane.net->set_training(false);  // serving = inference mode
    lane.batch_input = tensor::Tensor(batched_dims);
    lanes_.push_back(std::move(lane));
  }
  output_sample_dims_ = lanes_.front().net->compiled_stats()
                            .activation_dims.back();
  output_sample_dims_.back() = 1;
  output_sample_elements_ = product(output_sample_dims_);

  executors_.reserve(lanes_.size());
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    executors_.emplace_back(&InferenceServer::executor_main, this,
                            static_cast<int>(i));
  }
  watchdog_ = std::thread(&InferenceServer::watchdog_main, this);
}

InferenceServer::~InferenceServer() { stop(); }

bool InferenceServer::valid_input(const tensor::Tensor& input) const {
  if (input.size() != sample_elements_) return false;
  const std::vector<std::int64_t>& dims = input.dims();
  if (dims == sample_dims_) return true;
  std::vector<std::int64_t> with_batch = sample_dims_;
  with_batch.push_back(1);
  return dims == with_batch;
}

std::future<ServeResult> InferenceServer::submit(int tenant,
                                                 tensor::Tensor input) {
  return submit(tenant, std::move(input),
                Clock::now() + config_.default_deadline);
}

std::future<ServeResult> InferenceServer::submit(int tenant,
                                                 tensor::Tensor input,
                                                 Clock::time_point deadline) {
  Pending request;
  request.tenant = tenant;
  request.input = std::move(input);
  request.submitted = Clock::now();
  request.deadline = deadline;
  std::future<ServeResult> future = request.promise.get_future();

  std::unique_lock<std::mutex> lock(mutex_);
  ++counters_.submitted;
  const Clock::time_point now = request.submitted;

  const auto reject = [&](RejectReason reason, std::uint64_t& counter,
                          const char* trace_name) {
    ++counter;
    trace_instant(trace_name);
    ServeResult result;
    result.status = ServeStatus::kRejected;
    result.reject_reason = reason;
    resolve_locked(std::move(request), std::move(result));
  };

  if (stopping_) {
    reject(RejectReason::kShuttingDown, counters_.rejected_shutdown,
           "reject shutting-down");
    return future;
  }
  if (!valid_input(request.input)) {
    reject(RejectReason::kInvalidInput, counters_.rejected_invalid,
           "reject invalid-input");
    return future;
  }

  CircuitBreaker& breaker = breaker_locked(tenant);
  const CircuitBreaker::Admission admission = breaker.admit(now);
  if (admission == CircuitBreaker::Admission::kReject) {
    reject(RejectReason::kBreakerOpen, counters_.rejected_breaker,
           "reject breaker-open");
    return future;
  }
  request.is_probe = admission == CircuitBreaker::Admission::kProbe;

  const auto release_probe = [&]() {
    if (request.is_probe) breaker.on_probe_abandoned();
  };

  if (tenant_queued_[tenant] >= config_.max_queue_per_tenant) {
    release_probe();
    reject(RejectReason::kTenantQuota, counters_.rejected_tenant_quota,
           "reject tenant-quota");
    return future;
  }

  if (queue_.size() >= config_.max_queue) {
    // Load shed: drop the NEWEST queued request of the HEAVIEST tenant
    // to admit the newcomer — unless the submitter itself is (at least
    // tied for) heaviest, in which case the submission is refused and
    // nobody else pays for this tenant's burst.
    int heaviest = tenant;
    std::size_t heaviest_count = 0;
    for (const auto& [t, count] : tenant_queued_) {
      if (count > heaviest_count ||
          (count == heaviest_count && count > 0 && t > heaviest)) {
        heaviest = t;
        heaviest_count = count;
      }
    }
    if (heaviest_count <= tenant_queued_[tenant]) {
      release_probe();
      reject(RejectReason::kQueueFull, counters_.rejected_queue_full,
             "reject queue-full");
      return future;
    }
    for (auto it = queue_.rbegin(); it != queue_.rend(); ++it) {
      if (it->tenant != heaviest) continue;
      Pending shed = std::move(*it);
      queue_.erase(std::next(it).base());
      --tenant_queued_[heaviest];
      if (shed.is_probe) breaker_locked(heaviest).on_probe_abandoned();
      ++counters_.shed;
      trace_instant("shed");
      ServeResult result;
      result.status = ServeStatus::kShed;
      resolve_locked(std::move(shed), std::move(result));
      break;
    }
  }

  ++counters_.admitted;
  request.flush_at = now + config_.batch_budget;
  request.not_before = now;
  ++tenant_queued_[tenant];
  queue_.push_back(std::move(request));
  work_cv_.notify_one();
  return future;
}

void InferenceServer::executor_main(int lane_index) {
  Lane& lane = lanes_[static_cast<std::size_t>(lane_index)];
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    const Clock::time_point now = Clock::now();
    sweep_expired_locked(now);

    // Eligible = past its retry-backoff gate. FIFO over the deque.
    std::size_t eligible = 0;
    Clock::time_point min_flush_at = Clock::time_point::max();
    for (const Pending& p : queue_) {
      if (p.not_before > now) continue;
      ++eligible;
      min_flush_at = std::min(min_flush_at, p.flush_at);
    }

    const bool full = eligible >= static_cast<std::size_t>(config_.max_batch);
    const bool expired = eligible > 0 && min_flush_at <= now;
    if (!full && !expired) {
      const Clock::time_point wake = next_event_time_locked(now);
      if (wake == Clock::time_point::max()) {
        work_cv_.wait(lock);
      } else {
        work_cv_.wait_until(lock, wake);
      }
      continue;
    }

    std::vector<Pending> batch;
    batch.reserve(static_cast<std::size_t>(config_.max_batch));
    for (auto it = queue_.begin();
         it != queue_.end() &&
         batch.size() < static_cast<std::size_t>(config_.max_batch);) {
      if (it->not_before > now) {
        ++it;
        continue;
      }
      --tenant_queued_[it->tenant];
      batch.push_back(std::move(*it));
      it = queue_.erase(it);
    }
    ++counters_.batches;
    counters_.batched_requests += batch.size();
    if (full) {
      ++counters_.full_flushes;
    } else {
      ++counters_.deadline_flushes;
    }
    if (config_.tracer != nullptr) {
      char name[64];
      std::snprintf(name, sizeof(name), "flush %s n=%zu",
                    full ? "full" : "deadline", batch.size());
      config_.tracer->record_instant(0, "serve", name);
    }
    ++in_flight_batches_;
    lock.unlock();
    std::vector<Outcome> outcomes = execute_batch(lane, std::move(batch));
    lock.lock();
    --in_flight_batches_;
    resolve_outcomes_locked(std::move(outcomes), Clock::now());
    idle_cv_.notify_all();
  }
}

std::vector<InferenceServer::Outcome> InferenceServer::execute_batch(
    Lane& lane, std::vector<Pending> batch) const {
  std::vector<Outcome> outcomes;
  outcomes.reserve(batch.size());
  // Requests the serve-level fault plan fails never reach the backend:
  // the injected fault is theirs alone, so one tenant's chaos cannot
  // corrupt batchmates (per-tenant fault isolation starts here).
  std::vector<std::pair<Pending, int>> executed;  // request, slot
  executed.reserve(batch.size());
  try {
    lane.batch_input.zero();  // empty slots stay deterministic zeros
    int slot = 0;
    for (Pending& request : batch) {
      const api::Status injected =
          chaos_ != nullptr ? chaos_->poll(request.tenant)
                            : api::Status::kSuccess;
      if (injected != api::Status::kSuccess) {
        Outcome outcome;
        outcome.request = std::move(request);
        outcome.status = injected;
        outcome.error = "injected serve-level fault";
        outcomes.push_back(std::move(outcome));
        continue;
      }
      pack_sample(lane.batch_input, slot, request.input.data());
      executed.emplace_back(std::move(request), slot);
      ++slot;
    }
    if (!executed.empty()) {
      const tensor::Tensor batch_output = lane.net->forward(lane.batch_input);
      for (auto& [request, out_slot] : executed) {
        Outcome outcome;
        outcome.request = std::move(request);
        outcome.status = api::Status::kSuccess;
        outcome.output = extract_sample(batch_output, out_slot);
        outcomes.push_back(std::move(outcome));
      }
      executed.clear();
    }
  } catch (const dnn::BackendError& e) {
    for (auto& [request, out_slot] : executed) {
      Outcome outcome;
      outcome.request = std::move(request);
      outcome.status = e.status();
      outcome.error = e.what();
      outcomes.push_back(std::move(outcome));
    }
  } catch (const std::exception& e) {
    for (auto& [request, out_slot] : executed) {
      Outcome outcome;
      outcome.request = std::move(request);
      outcome.status = api::Status::kExecutionFailed;
      outcome.error = e.what();
      outcomes.push_back(std::move(outcome));
    }
  }
  return outcomes;
}

void InferenceServer::resolve_outcomes_locked(std::vector<Outcome>&& outcomes,
                                              Clock::time_point now) {
  bool requeued = false;
  for (Outcome& outcome : outcomes) {
    Pending request = std::move(outcome.request);
    ++request.attempts;
    CircuitBreaker& breaker = breaker_locked(request.tenant);
    const std::uint64_t trips_before = breaker.trips();

    if (outcome.status == api::Status::kSuccess) {
      breaker.on_success(request.is_probe);
      ServeResult result;
      result.attempts = request.attempts;
      result.backend_status = api::Status::kSuccess;
      if (now > request.deadline) {
        // Executed, but past the SLA the client is holding us to: the
        // honest answer is the deadline status, not a late tensor.
        ++counters_.deadline_missed;
        trace_instant("deadline-missed post-exec");
        result.status = ServeStatus::kDeadlineExceeded;
      } else {
        ++counters_.completed;
        result.status = ServeStatus::kOk;
        result.output = std::move(outcome.output);
      }
      resolve_locked(std::move(request), std::move(result));
      continue;
    }

    // Execution fault (serve-level injection or backend status).
    breaker.on_failure(now, request.is_probe);
    if (breaker.trips() > trips_before) {
      ++counters_.breaker_trips;
      trace_instant("breaker-trip");
      // A trip degrades health IMMEDIATELY — the watchdog's periodic
      // recompute would leave a freshly-tripped server reporting
      // kServing for up to one period.
      update_health_locked();
    }
    request.is_probe = false;  // the probe's outcome has been consumed
    const bool transient = outcome.status == api::Status::kTransientFault;
    const Clock::duration backoff =
        retry_backoff_after(config_.retry_backoff, request.attempts);
    if (transient && request.attempts < config_.max_attempts && !stopping_ &&
        now + backoff < request.deadline) {
      ++counters_.retries;
      trace_instant("retry");
      request.not_before = now + backoff;
      request.flush_at = request.not_before + config_.batch_budget;
      ++tenant_queued_[request.tenant];
      queue_.push_back(std::move(request));
      requeued = true;
      continue;
    }
    ++counters_.failed;
    ServeResult result;
    result.status = ServeStatus::kFailed;
    result.backend_status = outcome.status;
    result.attempts = request.attempts;
    result.error = std::move(outcome.error);
    resolve_locked(std::move(request), std::move(result));
  }
  if (requeued) work_cv_.notify_all();
}

void InferenceServer::resolve_locked(Pending&& request, ServeResult&& result) {
  result.latency_ms = ms_since(request.submitted);
  if (result.attempts == 0) result.attempts = request.attempts;
  request.promise.set_value(std::move(result));
}

void InferenceServer::sweep_expired_locked(Clock::time_point now) {
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->deadline > now) {
      ++it;
      continue;
    }
    Pending expired = std::move(*it);
    it = queue_.erase(it);
    --tenant_queued_[expired.tenant];
    if (expired.is_probe) {
      breaker_locked(expired.tenant).on_probe_abandoned();
    }
    ++counters_.deadline_missed;
    trace_instant("deadline-missed queued");
    ServeResult result;
    result.status = ServeStatus::kDeadlineExceeded;
    resolve_locked(std::move(expired), std::move(result));
  }
}

Clock::time_point InferenceServer::next_event_time_locked(
    Clock::time_point now) const {
  Clock::time_point wake = Clock::time_point::max();
  for (const Pending& p : queue_) {
    wake = std::min(wake, p.deadline);
    wake = std::min(wake, p.not_before > now ? p.not_before : p.flush_at);
  }
  return wake;
}

void InferenceServer::update_health_locked() {
  if (stopping_) return;  // stop() owns the draining/stopped states
  bool breaker_open = false;
  for (const auto& [tenant, breaker] : breakers_) {
    if (breaker.state() != BreakerState::kClosed) breaker_open = true;
  }
  const std::uint64_t distress =
      (counters_.shed - health_snapshot_.shed) +
      (counters_.deadline_missed - health_snapshot_.deadline_missed) +
      (counters_.failed - health_snapshot_.failed) +
      (counters_.rejected() - health_snapshot_.rejected());
  // Hysteresis: recovery needs a run of QUIET watchdog periods, not
  // one. Without it kDegraded lasts a single period (~1ms in tests) —
  // invisible to any poller — and a health endpoint would flap on
  // every isolated failure.
  constexpr int kRecoveryQuietSweeps = 50;
  HealthState next;
  if (breaker_open || distress > 0) {
    quiet_sweeps_ = 0;
    next = HealthState::kDegraded;
  } else if (health_ == HealthState::kDegraded &&
             ++quiet_sweeps_ < kRecoveryQuietSweeps) {
    next = HealthState::kDegraded;
  } else {
    next = HealthState::kServing;
  }
  if (next != health_) {
    health_ = next;
    trace_instant(next == HealthState::kDegraded ? "health degraded"
                                                 : "health serving");
  }
  health_snapshot_ = counters_;
}

void InferenceServer::watchdog_main() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    watchdog_cv_.wait_for(lock, config_.watchdog_period);
    if (stopping_) break;
    sweep_expired_locked(Clock::now());
    update_health_locked();
    // Kick the executors: a flush budget may have expired while every
    // lane was waiting on a stale wake time.
    work_cv_.notify_all();
  }
}

void InferenceServer::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [&] {
    return (queue_.empty() && in_flight_batches_ == 0) || stopping_;
  });
}

void InferenceServer::stop() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (health_ == HealthState::kStopped) return;
    stopping_ = true;
    health_ = HealthState::kDraining;
    while (!queue_.empty()) {
      Pending pending = std::move(queue_.front());
      queue_.pop_front();
      --tenant_queued_[pending.tenant];
      ServeResult result;
      result.status = ServeStatus::kShutdown;
      resolve_locked(std::move(pending), std::move(result));
    }
    work_cv_.notify_all();
    watchdog_cv_.notify_all();
    idle_cv_.notify_all();
  }
  for (std::thread& t : executors_) {
    if (t.joinable()) t.join();
  }
  if (watchdog_.joinable()) watchdog_.join();
  std::unique_lock<std::mutex> lock(mutex_);
  health_ = HealthState::kStopped;
}

ServingCounters InferenceServer::counters() const {
  ServingCounters out;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    out = counters_;
  }
  if (chaos_ != nullptr) out.chaos_injected = chaos_->total_injected();
  const api::FaultCounters backend = context_->fault_counters();
  out.host_fallbacks = backend.host_fallbacks;
  out.plan_fallbacks = backend.plan_fallbacks;
  out.dma_retries = backend.dma_retries;
  return out;
}

HealthState InferenceServer::health() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return health_;
}

BreakerState InferenceServer::tenant_breaker(int tenant) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = breakers_.find(tenant);
  return it == breakers_.end() ? BreakerState::kClosed : it->second.state();
}

std::uint64_t InferenceServer::tenant_breaker_trips(int tenant) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = breakers_.find(tenant);
  return it == breakers_.end() ? 0 : it->second.trips();
}

const dnn::CompiledStats& InferenceServer::compiled_stats() const {
  return lanes_.front().net->compiled_stats();
}

CircuitBreaker& InferenceServer::breaker_locked(int tenant) {
  const auto it = breakers_.find(tenant);
  if (it != breakers_.end()) return it->second;
  return breakers_.emplace(tenant, CircuitBreaker(config_.breaker))
      .first->second;
}

void InferenceServer::trace_instant(const char* name) const {
  if (config_.tracer != nullptr) {
    config_.tracer->record_instant(0, "serve", name);
  }
}

}  // namespace swdnn::serve
