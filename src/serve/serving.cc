#include "src/serve/serving.h"

namespace swdnn::serve {

const char* serve_status_name(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk:
      return "ok";
    case ServeStatus::kRejected:
      return "rejected";
    case ServeStatus::kShed:
      return "shed";
    case ServeStatus::kDeadlineExceeded:
      return "deadline-exceeded";
    case ServeStatus::kFailed:
      return "failed";
    case ServeStatus::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

const char* reject_reason_name(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone:
      return "none";
    case RejectReason::kQueueFull:
      return "queue-full";
    case RejectReason::kTenantQuota:
      return "tenant-quota";
    case RejectReason::kBreakerOpen:
      return "breaker-open";
    case RejectReason::kInvalidInput:
      return "invalid-input";
    case RejectReason::kShuttingDown:
      return "shutting-down";
  }
  return "unknown";
}

const char* health_state_name(HealthState state) {
  switch (state) {
    case HealthState::kServing:
      return "serving";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kDraining:
      return "draining";
    case HealthState::kStopped:
      return "stopped";
  }
  return "unknown";
}

}  // namespace swdnn::serve
