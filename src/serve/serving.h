#pragma once
// Shared vocabulary of the inference serving runtime.
//
// The serving stack (src/serve/server.h) composes the library's
// existing resilience machinery — the thread-safe api::Handle, the
// shape-keyed plan cache, compiled Network graphs, and the
// fault-injection/retry ladder — into a front end that keeps answering
// under overload, injected faults, and misbehaving tenants. This header
// holds the request/response vocabulary those pieces agree on: terminal
// request statuses, rejection reasons, the serving counters, and the
// health states the watchdog reports.
//
// The contract the whole stack is built around: EVERY submitted request
// resolves to exactly one terminal ServeStatus. There is no "lost"
// outcome — overload answers kRejected or kShed, a missed SLA answers
// kDeadlineExceeded, shutdown answers kShutdown — so a client's future
// always becomes ready and latency is bounded by policy, not by queue
// depth.

#include <cstdint>

namespace swdnn::serve {

/// Terminal outcome of a submitted request. Exactly one is delivered
/// per request.
enum class ServeStatus {
  kOk = 0,            ///< executed; the result tensor is valid
  kRejected,          ///< refused at admission (see RejectReason)
  kShed,              ///< admitted, then dropped by the load-shed policy
  kDeadlineExceeded,  ///< the per-request deadline expired
  kFailed,            ///< execution failed after all permitted attempts
  kShutdown,          ///< the server stopped before the request ran
};

const char* serve_status_name(ServeStatus status);

/// Why admission refused a request (kRejected only).
enum class RejectReason {
  kNone = 0,
  kQueueFull,     ///< global queue at capacity and shedding not possible
  kTenantQuota,   ///< the tenant's queued-request quota is exhausted
  kBreakerOpen,   ///< the tenant's circuit breaker is open
  kInvalidInput,  ///< the sample's dims do not match the served model
  kShuttingDown,  ///< submitted after stop() began
};

const char* reject_reason_name(RejectReason reason);

/// Serving-level counters, exposed via InferenceServer::counters() and
/// emitted as "serve" trace instants when a tracer is attached. The
/// backend-ladder fields at the bottom are snapshots of the shared
/// BackendContext's fault counters, so one query shows both layers of
/// the degradation story.
struct ServingCounters {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_tenant_quota = 0;
  std::uint64_t rejected_breaker = 0;
  std::uint64_t rejected_invalid = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t shed = 0;             ///< load-shed after admission
  std::uint64_t deadline_missed = 0;  ///< resolved kDeadlineExceeded
  std::uint64_t completed = 0;        ///< resolved kOk
  std::uint64_t failed = 0;           ///< resolved kFailed
  std::uint64_t retries = 0;          ///< re-enqueues after a transient fault
  std::uint64_t breaker_trips = 0;    ///< closed -> open transitions
  std::uint64_t chaos_injected = 0;   ///< serve-level injected faults seen
  std::uint64_t batches = 0;          ///< executed batches
  std::uint64_t batched_requests = 0; ///< requests carried by those batches
  std::uint64_t full_flushes = 0;     ///< batches flushed on batch-full
  std::uint64_t deadline_flushes = 0; ///< batches flushed on budget expiry
  // Backend fault-ladder snapshot (from the shared context's handle).
  std::uint64_t host_fallbacks = 0;
  std::uint64_t plan_fallbacks = 0;
  std::uint64_t dma_retries = 0;

  std::uint64_t rejected() const {
    return rejected_queue_full + rejected_tenant_quota + rejected_breaker +
           rejected_invalid + rejected_shutdown;
  }
};

/// Coarse server health, recomputed by the watchdog each period.
enum class HealthState {
  kServing = 0,  ///< steady state: no breaker open, no recent distress
  kDegraded,     ///< at least one breaker open, or the last watchdog
                 ///< window saw sheds / deadline misses / failures /
                 ///< host-route degradations
  kDraining,     ///< stop() in progress; pending work being resolved
  kStopped,      ///< all threads joined; no further submissions
};

const char* health_state_name(HealthState state);

}  // namespace swdnn::serve
