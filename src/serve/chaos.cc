#include "src/serve/chaos.h"

#include "src/util/rng.h"

namespace swdnn::serve {

namespace {

/// splitmix64 finalizer (same construction as sim::FaultInjector):
/// decorrelates the (seed, tenant, sequence) tuple before it seeds the
/// decision draw.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

ServeFaultInjector::ServeFaultInjector(ServeFaultPlan plan)
    : plan_(std::move(plan)) {}

api::Status ServeFaultInjector::poll(int tenant) {
  const auto it = plan_.tenants.find(tenant);
  if (it == plan_.tenants.end()) return api::Status::kSuccess;
  const TenantFaultProfile& profile = it->second;

  std::uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    seq = sequence_[tenant]++;
  }

  bool fires = seq < profile.fail_first;
  if (!fires && profile.fail_rate > 0.0) {
    if (profile.fail_rate >= 1.0) {
      fires = true;
    } else {
      util::Rng rng(mix(plan_.seed ^
                        mix(static_cast<std::uint64_t>(tenant) ^ mix(seq))));
      fires = rng.uniform(0.0, 1.0) < profile.fail_rate;
    }
  }
  if (!fires) return api::Status::kSuccess;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++injected_[tenant];
  }
  return profile.persistent ? api::Status::kDeviceFault
                            : api::Status::kTransientFault;
}

std::uint64_t ServeFaultInjector::injected(int tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = injected_.find(tenant);
  return it == injected_.end() ? 0 : it->second;
}

std::uint64_t ServeFaultInjector::total_injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [tenant, count] : injected_) total += count;
  return total;
}

}  // namespace swdnn::serve
