#include "src/serve/breaker.h"

namespace swdnn::serve {

const char* breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(const BreakerConfig& config)
    : config_(config) {
  if (config_.failure_threshold < 1) config_.failure_threshold = 1;
}

CircuitBreaker::Admission CircuitBreaker::admit(TimePoint now) {
  switch (state_) {
    case BreakerState::kClosed:
      return Admission::kAdmit;
    case BreakerState::kOpen:
      if (now - opened_at_ < config_.open_duration) return Admission::kReject;
      state_ = BreakerState::kHalfOpen;
      probe_in_flight_ = false;
      [[fallthrough]];
    case BreakerState::kHalfOpen:
      if (probe_in_flight_) return Admission::kReject;
      probe_in_flight_ = true;
      return Admission::kProbe;
  }
  return Admission::kReject;
}

void CircuitBreaker::on_success(bool was_probe) {
  switch (state_) {
    case BreakerState::kClosed:
      consecutive_failures_ = 0;
      break;
    case BreakerState::kHalfOpen:
      if (!was_probe) break;  // stale pre-trip work; the probe decides
      state_ = BreakerState::kClosed;
      consecutive_failures_ = 0;
      probe_in_flight_ = false;
      break;
    case BreakerState::kOpen:
      break;  // stale outcome; the cool-down stands
  }
}

void CircuitBreaker::on_failure(TimePoint now, bool was_probe) {
  switch (state_) {
    case BreakerState::kClosed:
      if (++consecutive_failures_ >= config_.failure_threshold) trip(now);
      break;
    case BreakerState::kHalfOpen:
      if (!was_probe) break;
      probe_in_flight_ = false;
      trip(now);
      break;
    case BreakerState::kOpen:
      break;
  }
}

void CircuitBreaker::on_probe_abandoned() {
  if (state_ == BreakerState::kHalfOpen) probe_in_flight_ = false;
}

void CircuitBreaker::trip(TimePoint now) {
  state_ = BreakerState::kOpen;
  opened_at_ = now;
  consecutive_failures_ = 0;
  ++trips_;
}

}  // namespace swdnn::serve
