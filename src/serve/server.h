#pragma once
// Resilient inference server over compiled graphs.
//
// Concurrent client streams submit SINGLE samples; the server coalesces
// them into mesh-friendly batches under a latency budget and executes
// them on compiled Network replicas that share one BackendContext (one
// api::Handle: one plan cache, one fault/retry/host-fallback ladder,
// one tracer — the swCaffe-style "one library handle per process"
// shape). The datacenter-inference tradeoff this models is the TPU
// paper's: batch bigger for throughput, flush earlier for the latency
// SLA; `ServerConfig::max_batch` and `batch_budget` are exactly those
// two knobs.
//
// Resilience layers, outermost first:
//   * Admission control: a bounded global queue, a per-tenant queued
//     quota, and a per-tenant circuit breaker consulted at submit().
//     Refusals resolve IMMEDIATELY as kRejected — overload is answered
//     with a status, never with unbounded queueing latency.
//   * Load shedding: when the global queue is full, the newest queued
//     request of the HEAVIEST tenant is shed (kShed) to make room —
//     unless the submitter itself is heaviest, in which case the
//     submission is the one refused (kQueueFull).
//   * Deadlines: every request carries an absolute deadline (explicit,
//     or submit-time + default_deadline). Expired requests are swept to
//     kDeadlineExceeded by the executors and the watchdog whether or
//     not a batch ever formed; a request whose execution finishes past
//     its deadline also resolves kDeadlineExceeded (the client has
//     already given up — delivering the tensor would be a lie about
//     the SLA).
//   * Serve-level retry: an execution attempt that reports a transient
//     fault is re-enqueued with exponential backoff (retry_backoff <<
//     attempt, saturating) while attempts and the deadline allow;
//     persistent faults fail fast. Below this sits the handle's own
//     ladder (tile retries -> ranked-plan fallback -> host-GEMM route),
//     configured through the same ServerConfig.
//   * Per-tenant circuit breakers (serve/breaker.h) so a tenant whose
//     requests keep faulting is refused at admission instead of
//     occupying batch slots, while other tenants keep their SLAs.
//   * A watchdog thread sweeps deadlines even when every executor is
//     busy and recomputes HealthState each period.
//
// Batching and bitwise identity: a batch tensor is ALWAYS the compiled
// full batch (empty slots zero-filled), so the backend sees one shape,
// plans stay cached, and a sample's result never depends on how full
// its batch happened to be. Each replica's weights come from the same
// factory, so any lane computes bitwise-identical outputs; the chaos
// soak test pins the whole stack to "bitwise-equal to unfaulted eager
// execution" for every accepted request.
//
// Threading: submit() may be called from any number of client threads.
// One executor thread per replica forms and runs batches; the watchdog
// is one more thread. All queue/breaker/counter state is guarded by one
// mutex; execution itself runs unlocked (the Handle is internally
// concurrency-safe). stop() (also run by the destructor) resolves every
// still-pending request as kShutdown and joins the threads.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/dnn/backend_context.h"
#include "src/dnn/network.h"
#include "src/serve/breaker.h"
#include "src/serve/chaos.h"
#include "src/serve/serving.h"
#include "src/tensor/tensor.h"

namespace swdnn::serve {

using Clock = std::chrono::steady_clock;

struct ServerConfig {
  /// Compiled batch size = the flush-on-full threshold. Mesh-friendly
  /// values (divisible batch dims) keep the fast route; the server
  /// works with any value >= 1.
  int max_batch = 4;
  /// Latency budget of the batcher: a pending request is flushed no
  /// later than this after admission, full batch or not.
  Clock::duration batch_budget = std::chrono::microseconds(500);
  /// Deadline assigned when submit() is called without one.
  Clock::duration default_deadline = std::chrono::milliseconds(200);
  /// Compiled Network replicas = concurrent executor lanes. All share
  /// one BackendContext.
  int num_replicas = 1;
  /// Global pending-queue bound (admission control).
  std::size_t max_queue = 64;
  /// Per-tenant bound on queued requests (quota).
  std::size_t max_queue_per_tenant = 32;
  /// Serve-level execution attempts per request (>= 1); attempts after
  /// a transient fault re-enqueue with backoff.
  int max_attempts = 1;
  /// Base backoff before retry attempt k+1: retry_backoff << (k-1),
  /// saturating (mirrors sim::retry_backoff_cycles, in wall time).
  Clock::duration retry_backoff = std::chrono::microseconds(200);
  BreakerConfig breaker;
  /// Watchdog sweep/health period.
  Clock::duration watchdog_period = std::chrono::milliseconds(1);

  // --- backend fault ladder (configured on the shared context before
  // any serving thread starts) --------------------------------------
  /// Device-level fault campaign (copied by the handle); nullptr = none.
  const sim::FaultPlan* device_faults = nullptr;
  /// Tile-level DMA retry policy for the handle's ladder.
  int device_retry_attempts = 3;
  std::uint64_t device_retry_backoff = 16;
  /// Serve-level per-tenant fault campaign (copied); nullptr = none.
  const ServeFaultPlan* request_faults = nullptr;
  /// Machine spec for the shared context (nullptr = real SW26010).
  const arch::Sw26010Spec* spec = nullptr;
  /// Tracer: receives backend events plus "serve" instants
  /// (batch flushes, sheds, breaker transitions, deadline sweeps).
  sim::EventTracer* tracer = nullptr;
};

/// Terminal answer delivered through the request's future.
struct ServeResult {
  ServeStatus status = ServeStatus::kFailed;
  RejectReason reject_reason = RejectReason::kNone;
  /// Fault classification for kFailed (and the injected status for
  /// chaos-failed attempts): kTransientFault / kDeviceFault /
  /// kExecutionFailed.
  api::Status backend_status = api::Status::kSuccess;
  /// Valid when status == kOk; dims are the model's per-sample output
  /// (batch axis = 1).
  tensor::Tensor output;
  /// Execution attempts consumed (0 when never executed).
  int attempts = 0;
  /// submit() -> resolution.
  double latency_ms = 0.0;
  std::string error;
};

class InferenceServer {
 public:
  /// Builds one model replica for the given batch size. Called once
  /// per replica with config.max_batch; every replica must produce
  /// identical weights (seed the factory's Rng per call).
  using ModelFactory =
      std::function<std::unique_ptr<dnn::Network>(std::int64_t batch)>;

  /// Compiles `num_replicas` networks over `sample_dims` + batch axis
  /// and starts the serving threads. `sample_dims` are the per-sample
  /// input dims WITHOUT the batch axis (e.g. {28, 28, 3}).
  /// Throws whatever Network::compile throws on a bad model/shape.
  InferenceServer(ModelFactory factory, std::vector<std::int64_t> sample_dims,
                  ServerConfig config = {});
  ~InferenceServer();
  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Submits one sample for tenant `tenant` with the default deadline.
  /// The input must carry dims == sample_dims or sample_dims + {1}.
  /// The returned future ALWAYS becomes ready with a terminal status.
  std::future<ServeResult> submit(int tenant, tensor::Tensor input);
  std::future<ServeResult> submit(int tenant, tensor::Tensor input,
                                  Clock::time_point deadline);

  /// Blocks until the queue is empty and no batch is in flight (all
  /// accepted work resolved). Tests and benches use it as a phase
  /// barrier; clients never need it.
  void drain();

  /// Resolves every pending request as kShutdown and joins the
  /// serving threads. Idempotent; the destructor calls it.
  void stop();

  ServingCounters counters() const;
  HealthState health() const;
  BreakerState tenant_breaker(int tenant) const;
  std::uint64_t tenant_breaker_trips(int tenant) const;

  const dnn::CompiledStats& compiled_stats() const;
  dnn::BackendContext& context() { return *context_; }
  const ServerConfig& config() const { return config_; }

 private:
  struct Pending {
    int tenant = 0;
    tensor::Tensor input;
    std::promise<ServeResult> promise;
    Clock::time_point submitted{};
    Clock::time_point deadline{};
    Clock::time_point flush_at{};    ///< admission (or requeue) + budget
    Clock::time_point not_before{};  ///< retry backoff gate
    int attempts = 0;
    bool is_probe = false;  ///< the tenant breaker's half-open probe
  };

  /// One executor lane: a compiled replica plus its reusable batch
  /// input tensor. Owned exclusively by its executor thread after
  /// construction.
  struct Lane {
    std::unique_ptr<dnn::Network> net;
    tensor::Tensor batch_input;
  };

  /// Outcome of one request's execution attempt, resolved back into
  /// queue/breaker state under the mutex.
  struct Outcome {
    Pending request;
    api::Status status = api::Status::kSuccess;
    tensor::Tensor output;  ///< valid on kSuccess
    std::string error;
  };

  void executor_main(int lane_index);
  void watchdog_main();

  /// Runs one batch on `lane` (no lock held): polls the chaos plan per
  /// request, packs the survivors, steps the replica, extracts per-slot
  /// outputs. Batch-wide backend errors become per-request outcomes.
  std::vector<Outcome> execute_batch(Lane& lane,
                                     std::vector<Pending> batch) const;

  // Locked helpers (mutex_ held).
  void resolve_locked(Pending&& request, ServeResult&& result);
  void resolve_outcomes_locked(std::vector<Outcome>&& outcomes,
                               Clock::time_point now);
  void sweep_expired_locked(Clock::time_point now);
  void update_health_locked();
  Clock::time_point next_event_time_locked(Clock::time_point now) const;
  CircuitBreaker& breaker_locked(int tenant);
  void trace_instant(const char* name) const;

  bool valid_input(const tensor::Tensor& input) const;

  ServerConfig config_;
  std::vector<std::int64_t> sample_dims_;
  std::int64_t sample_elements_ = 0;
  std::vector<std::int64_t> output_sample_dims_;
  std::int64_t output_sample_elements_ = 0;

  std::unique_ptr<dnn::BackendContext> context_;
  std::unique_ptr<ServeFaultInjector> chaos_;
  std::vector<Lane> lanes_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;      ///< executors wait here
  std::condition_variable idle_cv_;      ///< drain() waits here
  std::condition_variable watchdog_cv_;  ///< watchdog period sleep
  std::deque<Pending> queue_;
  std::map<int, std::size_t> tenant_queued_;
  std::map<int, CircuitBreaker> breakers_;
  ServingCounters counters_;
  ServingCounters health_snapshot_;  ///< counters at last watchdog tick
  HealthState health_ = HealthState::kServing;
  int quiet_sweeps_ = 0;  ///< consecutive distress-free watchdog ticks
  int in_flight_batches_ = 0;
  bool stopping_ = false;

  std::vector<std::thread> executors_;
  std::thread watchdog_;
};

/// Copies one sample (size = batch.size() / B) into slot `slot` of a
/// batch tensor whose LAST axis is the batch: element i of the sample
/// lands at batch[i * B + slot]. Exposed for tests and benches.
void pack_sample(tensor::Tensor& batch, int slot,
                 std::span<const double> sample);

/// Extracts slot `slot` of a batch tensor into a fresh tensor with the
/// batch axis collapsed to 1.
tensor::Tensor extract_sample(const tensor::Tensor& batch, int slot);

}  // namespace swdnn::serve
