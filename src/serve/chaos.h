#pragma once
// Deterministic serve-level fault injection (per-tenant chaos drills).
//
// sim::FaultPlan injects faults at the DEVICE layer: DMA, LDM, bus and
// NoC sites inside a launch. Those faults are shared by whatever batch
// is on the mesh and are absorbed by the handle's retry/host-fallback
// ladder, so a forward-only serving path rarely surfaces them as
// statuses — and they can never be attributed to one tenant of a mixed
// batch. Chaos-testing the SERVING policies (per-tenant breakers,
// serve-level retry, load isolation) therefore needs a second injection
// point: a request-level fault plan that fails specific tenants'
// executions with the same fault vocabulary (kTransientFault /
// kDeviceFault) the backend uses. It stands in for the
// tenant-attributable failures a real deployment sees — a tenant's
// corrupt inputs, a poisoned model partition, a bad replica route.
//
// Determinism mirrors sim::FaultInjector: every decision is a pure
// function of (plan seed, tenant, per-tenant sequence number), so a
// soak run schedules the same injections regardless of thread
// interleaving of OTHER tenants. (A tenant's own submission order is
// its sequence order.)

#include <cstdint>
#include <map>
#include <mutex>

#include "src/api/swdnn_api.h"

namespace swdnn::serve {

/// Per-tenant failure profile. `fail_first` faults the tenant's first N
/// execution attempts deterministically (the breaker/retry tests' knob,
/// like FaultPlan::fail_first_dma); `fail_rate` then faults subsequent
/// attempts with seeded probability.
struct TenantFaultProfile {
  std::uint64_t fail_first = 0;
  double fail_rate = 0.0;
  /// Report kDeviceFault (persistent; never retried at the serve
  /// layer) instead of kTransientFault.
  bool persistent = false;
};

struct ServeFaultPlan {
  std::uint64_t seed = 0;
  std::map<int, TenantFaultProfile> tenants;
};

/// Stateful injector for one campaign. poll() advances the tenant's
/// sequence counter and returns the status its next execution attempt
/// is forced to report: kSuccess (no injection), kTransientFault, or
/// kDeviceFault. Thread-safe.
class ServeFaultInjector {
 public:
  explicit ServeFaultInjector(ServeFaultPlan plan);

  const ServeFaultPlan& plan() const { return plan_; }

  api::Status poll(int tenant);

  /// Faults injected for `tenant` / in total so far.
  std::uint64_t injected(int tenant) const;
  std::uint64_t total_injected() const;

 private:
  ServeFaultPlan plan_;
  mutable std::mutex mutex_;
  std::map<int, std::uint64_t> sequence_;
  std::map<int, std::uint64_t> injected_;
};

}  // namespace swdnn::serve
