#pragma once
// Per-tenant circuit breaker.
//
// One tenant whose requests keep tripping faults must not be allowed to
// occupy batch slots, burn serve-level retries, and inflate every other
// tenant's latency. The classic answer is a circuit breaker per tenant:
//
//   kClosed    normal admission; `failure_threshold` CONSECUTIVE
//              failures trip the breaker (one success resets the run).
//   kOpen      every admission is refused for `open_duration`; the
//              tenant's faults cost the server nothing but the refusal.
//   kHalfOpen  after the cool-down, exactly ONE probe request is
//              admitted. Its success closes the breaker; its failure
//              re-opens it for another full cool-down.
//
// Failures that count are execution faults (serve-level injected faults
// and backend kTransientFault/kDeviceFault/kExecutionFailed outcomes) —
// admission rejections, sheds, and deadline sweeps are server policy,
// not tenant misbehaviour, and leave the failure run untouched. A probe
// that is resolved without executing (shed, deadline, shutdown) must
// release the probe slot via on_probe_abandoned() so the breaker cannot
// wedge half-open forever.
//
// Threading: the breaker is a plain state machine with NO internal
// locking; InferenceServer mutates it under its queue mutex. Time is
// always passed in, never read from a clock, so unit tests drive the
// full state space deterministically with hand-made time points.

#include <chrono>
#include <cstdint>

namespace swdnn::serve {

struct BreakerConfig {
  /// Consecutive execution failures that trip kClosed -> kOpen.
  int failure_threshold = 3;
  /// Cool-down before a kOpen breaker admits its half-open probe.
  std::chrono::steady_clock::duration open_duration =
      std::chrono::milliseconds(10);
};

enum class BreakerState { kClosed = 0, kOpen, kHalfOpen };

const char* breaker_state_name(BreakerState state);

class CircuitBreaker {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  explicit CircuitBreaker(const BreakerConfig& config = {});

  /// Admission decision for a new request at `now`. kProbe means the
  /// request was admitted as the half-open probe: the server must
  /// report its outcome (on_success / on_failure with was_probe=true)
  /// or release the slot (on_probe_abandoned).
  enum class Admission { kAdmit = 0, kProbe, kReject };
  Admission admit(TimePoint now);

  /// Outcome of an executed request. `was_probe` marks the half-open
  /// probe; outcomes of requests admitted before a trip (stale
  /// in-flight work) are ignored while the breaker is open/half-open so
  /// they cannot corrupt the probe protocol.
  void on_success(bool was_probe);
  void on_failure(TimePoint now, bool was_probe);

  /// The half-open probe was resolved without executing (shed,
  /// deadline sweep, shutdown): release the slot so the next admission
  /// becomes the probe.
  void on_probe_abandoned();

  BreakerState state() const { return state_; }
  /// Closed -> open transitions since construction.
  std::uint64_t trips() const { return trips_; }
  int consecutive_failures() const { return consecutive_failures_; }

 private:
  void trip(TimePoint now);

  BreakerConfig config_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  bool probe_in_flight_ = false;
  TimePoint opened_at_{};
  std::uint64_t trips_ = 0;
};

}  // namespace swdnn::serve
