#pragma once
// Deterministic random number generation for tests and workloads.
//
// All randomized tests and synthetic workloads seed explicitly so runs
// reproduce bit-for-bit; we use a fixed, named engine rather than
// std::default_random_engine (which is implementation-defined).

#include <cstdint>
#include <random>
#include <span>

namespace swdnn::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal sample.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Fills a span with uniform values in [lo, hi).
  void fill_uniform(std::span<double> out, double lo, double hi);

  /// Fills a span with N(mean, stddev) samples.
  void fill_normal(std::span<double> out, double mean, double stddev);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace swdnn::util
