#include "src/util/stopwatch.h"

// Header-only in practice; this TU exists so the build exercises the
// header under the library's warning flags.
namespace swdnn::util {}
