#pragma once
// Tiny "--key=value" command-line parser for examples and bench binaries.
//
// We deliberately avoid a heavyweight flags library; the binaries take a
// handful of integer/string options each ("--batch=128", "--plan=batch").

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace swdnn::util {

class CliArgs {
 public:
  /// Parses argv; unrecognized positional arguments are collected
  /// separately. Accepts "--key=value" and bare "--flag" (value "1").
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;

  const std::map<std::string, std::string>& options() const {
    return options_;
  }

 private:
  std::map<std::string, std::string> options_;
};

}  // namespace swdnn::util
