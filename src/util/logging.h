#pragma once
// Minimal leveled logging for swdnn.
//
// Logging is intentionally tiny: the library is a numerical kernel library
// plus a simulator, and the only consumers of log output are the example
// binaries and the benchmark harnesses. We avoid iostream-heavy designs in
// hot paths; logging is never called from simulated CPE kernels.

#include <sstream>
#include <string>

namespace swdnn::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one formatted line to stderr ("[level] message").
void log_line(LogLevel level, const std::string& message);

namespace detail {

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { log_line(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace swdnn::util

#define SWDNN_LOG(level) \
  ::swdnn::util::detail::LogMessage(::swdnn::util::LogLevel::level)
