#include "src/util/rng.h"

namespace swdnn::util {

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

void Rng::fill_uniform(std::span<double> out, double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  for (double& v : out) v = dist(engine_);
}

void Rng::fill_normal(std::span<double> out, double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  for (double& v : out) v = dist(engine_);
}

}  // namespace swdnn::util
