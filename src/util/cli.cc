#include "src/util/cli.h"

#include <cstdlib>
#include <string_view>

namespace swdnn::util {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!arg.starts_with("--")) continue;
    arg.remove_prefix(2);
    auto eq = arg.find('=');
    if (eq == std::string_view::npos) {
      options_[std::string(arg)] = "1";
    } else {
      options_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    }
  }
}

bool CliArgs::has(const std::string& key) const {
  return options_.count(key) > 0;
}

std::string CliArgs::get(const std::string& key,
                         const std::string& fallback) const {
  auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& key,
                              std::int64_t fallback) const {
  auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

}  // namespace swdnn::util
