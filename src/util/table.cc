#include "src/util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace swdnn::util {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  if (!header_.empty() && row.size() != header_.size()) {
    throw std::invalid_argument("TextTable row width mismatch: got " +
                                std::to_string(row.size()) + ", expected " +
                                std::to_string(header_.size()));
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream out;
  auto emit = [&out, &widths](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out << row[i];
      if (i + 1 < row.size()) {
        out << std::string(widths[i] - row[i].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
    }
    out << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string fmt_double(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string fmt_speedup(double ratio, int decimals) {
  return fmt_double(ratio, decimals) + "x";
}

}  // namespace swdnn::util
