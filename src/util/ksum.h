#pragma once
// Compensated (Kahan) summation.
//
// The training metrics accumulate one double per sample or per batch;
// a raw running sum makes the result depend on magnitude ordering and
// drifts for long evaluations. Kahan summation carries the rounding
// error forward explicitly, so any two passes that feed the same
// values in the same order produce the same double exactly — the
// property the host-parallel determinism suite asserts between serial
// and batch-parallel evaluation.

namespace swdnn::util {

class KahanSum {
 public:
  void add(double value) {
    const double y = value - compensation_;
    const double t = sum_ + y;
    compensation_ = (t - sum_) - y;
    sum_ = t;
  }

  double value() const { return sum_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

}  // namespace swdnn::util
