#pragma once
// Plain-text table formatting for benchmark harnesses.
//
// Every bench binary prints paper-style tables (Table II, Table III, the
// Figure 7/9 series). TextTable collects rows of strings and renders them
// with aligned columns so the output diffs cleanly against
// EXPERIMENTS.md.

#include <string>
#include <vector>

namespace swdnn::util {

class TextTable {
 public:
  /// Sets the header row. Column count is inferred from it.
  void set_header(std::vector<std::string> header);

  /// Appends a data row; must match the header's column count (checked).
  void add_row(std::vector<std::string> row);

  /// Renders with single-space-padded, left-aligned columns and a
  /// separator line under the header.
  std::string render() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with a fixed number of decimals (printf "%.*f").
std::string fmt_double(double value, int decimals = 2);

/// Formats "1.93x"-style speedups.
std::string fmt_speedup(double ratio, int decimals = 2);

}  // namespace swdnn::util
