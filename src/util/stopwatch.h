#pragma once
// Wall-clock stopwatch used by host-measured benchmarks and the trainer.

#include <chrono>

namespace swdnn::util {

class Stopwatch {
 public:
  Stopwatch() { reset(); }

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace swdnn::util
