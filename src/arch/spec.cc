#include "src/arch/spec.h"

namespace swdnn::arch {

double Sw26010Spec::direct_required_bandwidth_gbs() const {
  // The paper reports RBW_directMEM = 139.20 GB/s for the gload mapping
  // (Fig. 2, middle column). 139.2 GB/s equals Eq. (1) evaluated with
  // bCo*bB = 32 and No = 64 — i.e. the only reuse is what one 256-bit
  // vector and a minimal 64-channel output tile provide:
  //   (1/32 + 1/64) * 8 bytes * (peak/2) = (3/64) * 8 * 371.2 = 139.2.
  const double reuse = 1.0 / 32.0 + 1.0 / 64.0;
  return reuse * 8.0 * (peak_gflops_per_cg() / 2.0);
}

const Sw26010Spec& default_spec() {
  static const Sw26010Spec spec;
  return spec;
}

}  // namespace swdnn::arch
