#include "src/arch/isa.h"

#include <array>

namespace swdnn::arch {

namespace {
// Latencies follow the paper's Section VI: loads have a 4-cycle
// load-to-use latency, vfmad a 7-cycle result latency but is fully
// pipelined (one issue per cycle). Scalar/control ops resolve next cycle.
constexpr std::array<OpInfo, 16> kOpTable = {{
    {"vload", PipelineClass::kP1Only, 4},   // kVload
    {"vstore", PipelineClass::kP1Only, 1},  // kVstore
    {"load", PipelineClass::kP1Only, 4},    // kLoad
    {"store", PipelineClass::kP1Only, 1},   // kStore
    {"vldde", PipelineClass::kP1Only, 4},   // kVldde
    {"vfmad", PipelineClass::kP0Only, 7},   // kVfmad
    {"vadd", PipelineClass::kP0Only, 7},    // kVadd
    {"vmul", PipelineClass::kP0Only, 7},    // kVmul
    {"addi", PipelineClass::kEither, 1},    // kAddi
    {"cmp", PipelineClass::kEither, 1},     // kCmp
    {"bnw", PipelineClass::kP1Only, 1},     // kBranch
    {"putr", PipelineClass::kP1Only, 1},    // kPutr
    {"putc", PipelineClass::kP1Only, 1},    // kPutc
    {"getr", PipelineClass::kP1Only, 4},    // kGetr
    {"getc", PipelineClass::kP1Only, 4},    // kGetc
    {"nop", PipelineClass::kEither, 1},     // kNop
}};
}  // namespace

const OpInfo& op_info(Opcode op) {
  return kOpTable[static_cast<std::size_t>(op)];
}

std::string Instruction::to_string() const {
  std::string s = op_info(op).mnemonic;
  auto reg = [](int r) { return r < 0 ? std::string("-") : "r" + std::to_string(r); };
  s += " " + reg(dst) + ", " + reg(src0) + ", " + reg(src1);
  return s;
}

Instruction make_vload(int dst, int addr_reg) {
  return Instruction{Opcode::kVload, dst, addr_reg, -1, -1};
}
Instruction make_vldde(int dst, int addr_reg) {
  return Instruction{Opcode::kVldde, dst, addr_reg, -1, -1};
}
Instruction make_vstore(int src, int addr_reg) {
  return Instruction{Opcode::kVstore, -1, src, addr_reg, -1};
}
Instruction make_vfmad(int acc, int a, int b) {
  return Instruction{Opcode::kVfmad, acc, a, b, acc};
}
Instruction make_addi(int dst) {
  return Instruction{Opcode::kAddi, dst, dst, -1, -1};
}
Instruction make_cmp(int dst, int src) {
  return Instruction{Opcode::kCmp, dst, src, -1, -1};
}
Instruction make_branch(int src) {
  return Instruction{Opcode::kBranch, -1, src, -1, -1};
}
Instruction make_putr(int src) {
  return Instruction{Opcode::kPutr, -1, src, -1, -1};
}
Instruction make_putc(int src) {
  return Instruction{Opcode::kPutc, -1, src, -1, -1};
}
Instruction make_getr(int dst) {
  return Instruction{Opcode::kGetr, dst, -1, -1, -1};
}
Instruction make_getc(int dst) {
  return Instruction{Opcode::kGetc, dst, -1, -1, -1};
}

}  // namespace swdnn::arch
