#pragma once
// The subset of the SW26010 CPE instruction set that the swDNN inner
// kernels use, with the issue/latency properties the paper's Section VI
// relies on:
//
//   * P0 executes floating-point and vector arithmetic (and scalar int).
//   * P1 executes loads/stores, control transfer, and register
//     communication (and scalar int).
//   * The decoder dual-issues the two front-of-queue instructions when
//     they target different pipelines and have no RAW/WAW hazards with
//     each other or with still-executing instructions' result registers.
//
// The timing simulator (src/timing) replays instruction streams under
// these rules to reproduce the paper's 26 -> 17 cycles/iteration result.

#include <cstdint>
#include <string>
#include <vector>

namespace swdnn::arch {

enum class Opcode : std::uint8_t {
  kVload,   ///< 256-bit vector load from LDM (P1, latency 4)
  kVstore,  ///< 256-bit vector store to LDM (P1)
  kLoad,    ///< scalar load from LDM (P1, latency 4)
  kStore,   ///< scalar store to LDM (P1)
  kVldde,   ///< load scalar and replicate to 4 lanes (P1, latency 4)
  kVfmad,   ///< vector fused multiply-add (P0, latency 7)
  kVadd,    ///< vector add (P0)
  kVmul,    ///< vector multiply (P0)
  kAddi,    ///< scalar integer add (address update; either pipeline)
  kCmp,     ///< scalar compare (either pipeline)
  kBranch,  ///< conditional branch, e.g. bnw (P1)
  kPutr,    ///< register-comm put on row bus (P1)
  kPutc,    ///< register-comm put on column bus (P1)
  kGetr,    ///< register-comm get from row transfer buffer (P1)
  kGetc,    ///< register-comm get from column transfer buffer (P1)
  kNop,     ///< filler
};

enum class PipelineClass : std::uint8_t {
  kP0Only,   ///< FP / vector arithmetic
  kP1Only,   ///< memory, control, register communication
  kEither,   ///< scalar integer ops
};

struct OpInfo {
  const char* mnemonic;
  PipelineClass pipeline;
  int latency_cycles;  ///< result-ready latency (1 = next cycle)
};

/// Static properties of an opcode (pipeline class, latency, mnemonic).
const OpInfo& op_info(Opcode op);

/// One instruction in a kernel's inner-loop stream. Registers are small
/// integer ids; -1 means "no register". `dst` is written, `src*` read.
struct Instruction {
  Opcode op = Opcode::kNop;
  int dst = -1;
  int src0 = -1;
  int src1 = -1;
  int src2 = -1;  ///< vfmad accumulates: dst = src0*src1 + src2 (src2==dst)

  std::string to_string() const;
};

/// Convenience constructors used by the kernel-stream builders.
Instruction make_vload(int dst, int addr_reg);
Instruction make_vldde(int dst, int addr_reg);
Instruction make_vstore(int src, int addr_reg);
Instruction make_vfmad(int acc, int a, int b);
Instruction make_addi(int dst);
Instruction make_cmp(int dst, int src);
Instruction make_branch(int src);
Instruction make_putr(int src);
Instruction make_putc(int src);
Instruction make_getr(int dst);
Instruction make_getc(int dst);

using InstructionStream = std::vector<Instruction>;

}  // namespace swdnn::arch
