#pragma once
// SW26010 machine description.
//
// Every number here comes from the swDNN paper (IPDPS'17) or the
// TaihuLight system paper it cites: clock rate, SIMD width, per-level
// bandwidths, LDM capacity, and the mesh geometry. The simulator, the
// performance model, and the kernels all read the machine through this
// one struct so a what-if study (e.g. "what if LDM were 128 KB?") is a
// one-line change in a test or bench.

#include <cstddef>
#include <cstdint>

namespace swdnn::arch {

struct Sw26010Spec {
  // --- Geometry -----------------------------------------------------
  int num_core_groups = 4;       ///< CGs per chip, each with its own MC.
  int mesh_rows = 8;             ///< CPE mesh height.
  int mesh_cols = 8;             ///< CPE mesh width.

  // --- Clocks and compute -------------------------------------------
  double cpe_clock_ghz = 1.45;   ///< CPE core clock.
  int simd_lanes_f64 = 4;        ///< 256-bit vectors = 4 doubles.
  int fma_flops_per_lane = 2;    ///< fused multiply-add = 2 flops.

  // --- Memory hierarchy ----------------------------------------------
  std::size_t ldm_bytes = 64 * 1024;       ///< LDM (SPM) per CPE.
  /// LDM the athread runtime, kernel code spill area, stack, and
  /// alignment padding occupy; tiles only get what remains. Calibrated
  /// so the chooser reproduces the paper's Table III blocking choices
  /// (bCo=16 for Ni=No=128 but bCo=8 for No=256; the batch plan taking
  /// over at 256+ channels).
  std::size_t ldm_reserved_bytes = 24 * 1024;
  std::size_t icache_bytes = 16 * 1024;    ///< CPE L1 instruction cache.
  double ldm_reg_bandwidth_gbs = 46.4;     ///< LDM -> register, per CPE*.
  double gload_bandwidth_gbs = 8.0;        ///< direct MEM access (gload).
  double dma_peak_bandwidth_gbs = 36.0;    ///< best DMA put bandwidth/CG.
  double ddr_peak_bandwidth_gbs = 36.0;    ///< DDR3 interface per CG.
  std::size_t dma_alignment_bytes = 128;   ///< alignment for peak DMA.
  std::size_t dma_good_block_bytes = 256;  ///< >= this -> near-peak DMA.

  // --- Register communication ----------------------------------------
  int regcomm_payload_bytes = 32;   ///< one 256-bit register per put/get.
  int regcomm_latency_cycles = 10;  ///< put->get visible latency (bus hop).
  int transfer_buffer_slots = 4;    ///< receive-side buffer depth.

  // --- Pipeline latencies (Section VI of the paper) -------------------
  int vload_latency_cycles = 4;     ///< LDM vector load.
  int vfmad_latency_cycles = 7;     ///< vector fused multiply-add.

  // --- Derived quantities ---------------------------------------------
  int cpes_per_group() const { return mesh_rows * mesh_cols; }
  int cpes_per_chip() const { return num_core_groups * cpes_per_group(); }

  /// Flops per cycle per CPE with full SIMD FMA issue (8 for f64).
  int flops_per_cycle_per_cpe() const {
    return simd_lanes_f64 * fma_flops_per_lane;
  }

  /// Peak per-CPE double-precision throughput in Gflop/s (11.6).
  double peak_gflops_per_cpe() const {
    return cpe_clock_ghz * flops_per_cycle_per_cpe();
  }

  /// Peak per-CG throughput in Gflop/s (742.4).
  double peak_gflops_per_cg() const {
    return peak_gflops_per_cpe() * cpes_per_group();
  }

  /// Peak CPE-mesh throughput per chip in Gflop/s (2969.6).
  double peak_gflops_per_chip() const {
    return peak_gflops_per_cg() * num_core_groups;
  }

  /// Required bandwidth for the direct-gload mapping (139.2 GB/s):
  /// every FMA operand pair fetched from memory with zero reuse.
  double direct_required_bandwidth_gbs() const;
};

/// The default machine: numbers exactly as published.
const Sw26010Spec& default_spec();

}  // namespace swdnn::arch
