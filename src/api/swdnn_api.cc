#include "src/api/swdnn_api.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/conv/backward.h"
#include "src/conv/epilogue.h"
#include "src/conv/im2col.h"
#include "src/conv/swconv.h"
#include "src/tensor/pool.h"

namespace swdnn::api {

struct Handle {
  arch::Sw26010Spec spec = arch::default_spec();
  conv::SwConvolution sw;

  // Guards the per-call mutable state below. Held only for short
  // bookkeeping sections, never across a simulated launch or a host
  // GEMM, so concurrent calls through one handle overlap fully.
  mutable std::mutex mutex;
  ExecutionRoute last_route = ExecutionRoute::kNone;
  PlanAlgo last_plan = PlanAlgo::kNone;
  // Fixed-size buffer, never shared between handles: last_error_message()
  // stays valid and race-free under concurrent use of distinct handles.
  char last_error[256] = {0};
  sim::EventTracer* tracer = nullptr;  // configuration-phase pointer
  std::unique_ptr<sim::FaultInjector> injector;
  sim::RetryPolicy retry;
  std::uint64_t host_fallbacks = 0;
  std::uint64_t dma_retries = 0;
  std::uint64_t plan_fallbacks = 0;
  bool autotune = false;           // configuration-phase flag
  bool autotune_measured = false;  // confirm winners with timed launches
  std::uint64_t autotuned = 0;     // shapes tuned; guarded by mutex

  // Staging-tensor recycler: wrapped inputs, outputs, and the im2col
  // lowering's matrices all cycle through here, so a warmed-up handle
  // mints zero tensors per call regardless of route.
  tensor::TensorPool pool;

  // Persistent executor for launches the handle issues directly (the
  // backward-filter path); its worker pool survives across calls.
  // Launches serialize on bwd_exec_mutex; convolution_forward launches
  // go through `sw`, which owns its own executor.
  std::mutex bwd_exec_mutex;
  std::unique_ptr<sim::MeshExecutor> bwd_exec;

  explicit Handle(const arch::Sw26010Spec& s) : spec(s), sw(s) {}
};

namespace {

void set_error_locked(Handle* handle, const char* message) {
  std::snprintf(handle->last_error, sizeof(handle->last_error), "%s",
                message);
}

void set_error(Handle* handle, const char* message) {
  std::lock_guard<std::mutex> lock(handle->mutex);
  set_error_locked(handle, message);
}

PlanAlgo to_plan_algo(perf::PlanKind kind) {
  switch (kind) {
    case perf::PlanKind::kDirect:
      return PlanAlgo::kDirect;
    case perf::PlanKind::kImageSizeAware:
      return PlanAlgo::kImageSizeAware;
    case perf::PlanKind::kBatchSizeAware:
      return PlanAlgo::kBatchSizeAware;
    case perf::PlanKind::kFilterGrained:
      return PlanAlgo::kFilterGrained;
    case perf::PlanKind::kPixelGrained:
      return PlanAlgo::kPixelGrained;
  }
  return PlanAlgo::kNone;
}

void trace_dispatch(Handle* handle, const char* what) {
  if (handle->tracer != nullptr) {
    handle->tracer->record_instant(0, "plan_cache", what);
  }
}

}  // namespace

const char* status_string(Status status) {
  switch (status) {
    case Status::kSuccess:
      return "SWDNN_STATUS_SUCCESS";
    case Status::kBadParam:
      return "SWDNN_STATUS_BAD_PARAM";
    case Status::kShapeMismatch:
      return "SWDNN_STATUS_SHAPE_MISMATCH";
    case Status::kExecutionFailed:
      return "SWDNN_STATUS_EXECUTION_FAILED";
    case Status::kTransientFault:
      return "SWDNN_STATUS_TRANSIENT_FAULT";
    case Status::kDeviceFault:
      return "SWDNN_STATUS_DEVICE_FAULT";
  }
  return "SWDNN_STATUS_UNKNOWN";
}

const char* plan_algo_name(PlanAlgo algo) {
  switch (algo) {
    case PlanAlgo::kNone:
      return "none";
    case PlanAlgo::kDirect:
      return "direct";
    case PlanAlgo::kImageSizeAware:
      return "image-size-aware";
    case PlanAlgo::kBatchSizeAware:
      return "batch-size-aware";
    case PlanAlgo::kFilterGrained:
      return "filter-grained";
    case PlanAlgo::kPixelGrained:
      return "pixel-grained";
  }
  return "none";
}

Status create(Handle** handle, const arch::Sw26010Spec* spec) {
  if (handle == nullptr) return Status::kBadParam;
  *handle = new Handle(spec ? *spec : arch::default_spec());
  return Status::kSuccess;
}

Status destroy(Handle* handle) {
  if (handle == nullptr) return Status::kBadParam;
  delete handle;
  return Status::kSuccess;
}

Status set_tensor4d_descriptor(TensorDescriptor& desc, std::int64_t rows,
                               std::int64_t cols, std::int64_t channels,
                               std::int64_t batch) {
  if (rows <= 0 || cols <= 0 || channels <= 0 || batch <= 0) {
    return Status::kBadParam;
  }
  desc = TensorDescriptor{rows, cols, channels, batch};
  return Status::kSuccess;
}

Status set_filter_descriptor(FilterDescriptor& desc, std::int64_t kr,
                             std::int64_t kc, std::int64_t ni,
                             std::int64_t no) {
  if (kr <= 0 || kc <= 0 || ni <= 0 || no <= 0) return Status::kBadParam;
  desc = FilterDescriptor{kr, kc, ni, no};
  return Status::kSuccess;
}

Status get_convolution_output_descriptor(const TensorDescriptor& input,
                                         const FilterDescriptor& filter,
                                         TensorDescriptor& output) {
  if (input.channels != filter.ni) return Status::kShapeMismatch;
  if (filter.kr > input.rows || filter.kc > input.cols) {
    return Status::kShapeMismatch;
  }
  output = TensorDescriptor{input.rows - filter.kr + 1,
                            input.cols - filter.kc + 1, filter.no,
                            input.batch};
  return Status::kSuccess;
}

namespace {

/// Builds the ConvShape from the descriptor triple; kShapeMismatch if
/// they are inconsistent.
Status resolve_shape(const TensorDescriptor& x, const FilterDescriptor& w,
                     const TensorDescriptor& y, conv::ConvShape& shape) {
  TensorDescriptor expect_y;
  const Status s = get_convolution_output_descriptor(x, w, expect_y);
  if (s != Status::kSuccess) return s;
  if (expect_y.rows != y.rows || expect_y.cols != y.cols ||
      expect_y.channels != y.channels || expect_y.batch != y.batch) {
    return Status::kShapeMismatch;
  }
  shape.batch = x.batch;
  shape.ni = w.ni;
  shape.no = w.no;
  shape.ri = x.rows;
  shape.ci = x.cols;
  shape.kr = w.kr;
  shape.kc = w.kc;
  return Status::kSuccess;
}

/// Pool-backed copy-in of a caller buffer (fully overwritten → dirty).
tensor::PooledTensor wrap(Handle* handle, const double* data,
                          const std::vector<std::int64_t>& dims) {
  tensor::PooledTensor t = handle->pool.acquire_dirty(dims);
  std::copy(data, data + t->size(), t->data().begin());
  return t;
}

/// Pool-backed output buffer, zeroed like a fresh tensor (the mesh
/// kernels and the fallback ladder rely on the zero initial state).
tensor::PooledTensor out_buffer(Handle* handle,
                                const std::vector<std::int64_t>& dims) {
  return handle->pool.acquire(dims);
}

}  // namespace

Status convolution_forward(Handle* handle, const TensorDescriptor& x_desc,
                           const double* x, const FilterDescriptor& w_desc,
                           const double* w, const TensorDescriptor& y_desc,
                           double* y) {
  return convolution_forward_ex(handle, x_desc, x, w_desc, w, y_desc, y,
                                nullptr);
}

Status convolution_forward_ex(Handle* handle, const TensorDescriptor& x_desc,
                              const double* x, const FilterDescriptor& w_desc,
                              const double* w, const TensorDescriptor& y_desc,
                              double* y,
                              const ConvolutionEpilogue* epilogue) {
  if (handle == nullptr || x == nullptr || w == nullptr || y == nullptr) {
    return Status::kBadParam;
  }
  conv::ConvShape shape;
  const Status s = resolve_shape(x_desc, w_desc, y_desc, shape);
  if (s != Status::kSuccess) return s;

  try {
    tensor::PooledTensor input =
        wrap(handle, x, {shape.ri, shape.ci, shape.ni, shape.batch});
    tensor::PooledTensor filter =
        wrap(handle, w, {shape.kr, shape.kc, shape.ni, shape.no});
    tensor::PooledTensor output =
        out_buffer(handle, {shape.ro(), shape.co(), shape.no, shape.batch});

    // One rank() per shape per handle: the winning plan and its ranked
    // fallbacks come from the shape-keyed cache.
    const perf::PlanCache::LookupResult lookup =
        handle->sw.ranked_plans(shape);
    trace_dispatch(handle, lookup.hit ? "hit" : "miss");
    const perf::CachedPlan& plans = *lookup.entry;

    // At most two mesh attempts: the cached winner, then the best
    // ranked fallback *from the winner's own mapping family* — a plan
    // with different LDM blocking can survive a fault that killed the
    // winner, but the retry never silently crosses PlanKind families
    // (the mapping is part of the plan's identity; a caller that
    // observed last_plan == "fgrain" must not be rescued by a batch
    // plan behind its back). If the winner's family has no second
    // executable entry, the ladder goes straight to the host route.
    std::string degrade_reason;
    bool mesh_done = false;
    std::vector<std::size_t> attempt_idx;
    if (!plans.executable.empty()) {
      attempt_idx.push_back(plans.executable[0]);
      const perf::PlanKind family =
          plans.ranked[plans.executable[0]].plan.kind;
      for (std::size_t e = 1; e < plans.executable.size(); ++e) {
        if (plans.ranked[plans.executable[e]].plan.kind == family) {
          attempt_idx.push_back(plans.executable[e]);
          break;
        }
      }
    }
    for (std::size_t a = 0; a < attempt_idx.size() && !mesh_done; ++a) {
      const perf::PlanChoice& choice = plans.ranked[attempt_idx[a]];
      if (a > 0) {
        output->zero();  // discard the faulted attempt's partial tiles
        trace_dispatch(handle, "plan_fallback");
      }
      try {
        const conv::ForwardResult result = handle->sw.execute_choice(
            choice, *input, *filter, *output, shape);
        std::lock_guard<std::mutex> lock(handle->mutex);
        handle->dma_retries += result.stats.dma_retries;
        if (a > 0) {
          ++handle->plan_fallbacks;
          set_error_locked(handle, degrade_reason.c_str());
        } else {
          // A clean success invalidates whatever diagnostic a previous
          // call left behind; a stale message must not be attributed to
          // this call by an error-reporting layer above.
          set_error_locked(handle, "");
        }
        handle->last_route = ExecutionRoute::kSimulatedMesh;
        handle->last_plan = to_plan_algo(choice.plan.kind);
        mesh_done = true;
      } catch (const sim::LaunchFault& e) {
        degrade_reason = e.what();
      }
    }

    if (!mesh_done) {
      // Degradation is recorded, never silent: either every mesh
      // attempt faulted (degrade_reason holds the diagnostic) or the
      // shape has no mesh mapping at all. Anything else — bad_alloc,
      // indexing bugs — propagates to the outer catch as
      // kExecutionFailed instead of being masked by the host route.
      if (degrade_reason.empty()) {
        degrade_reason = "no mesh-executable plan for " + shape.to_string() +
                         "; routed to host GEMM";
      }
      trace_dispatch(handle, "host_fallback");
      output->zero();
      conv::im2col_forward(*input, *filter, *output, shape, &handle->pool);
      std::lock_guard<std::mutex> lock(handle->mutex);
      set_error_locked(handle, degrade_reason.c_str());
      ++handle->host_fallbacks;
      handle->last_route = ExecutionRoute::kHostGemm;
      handle->last_plan = PlanAlgo::kNone;
    }
    // The fused epilogue runs after route resolution, so the fault
    // ladder above is route-for-route identical to the unfused call.
    if (epilogue != nullptr) {
      const conv::ConvEpilogue ep{epilogue->bias, epilogue->relu_mask};
      conv::apply_epilogue(output->data().data(), shape, ep);
    }
    std::copy(output->data().begin(), output->data().end(), y);
  } catch (const std::exception& e) {
    set_error(handle, e.what());
    return Status::kExecutionFailed;
  }
  return Status::kSuccess;
}

Status convolution_forward_batch(Handle* handle, ForwardWorkItem* items,
                                 int count, int num_threads) {
  if (handle == nullptr || count < 0 || num_threads < 1 ||
      (items == nullptr && count > 0)) {
    return Status::kBadParam;
  }
  if (count == 0) return Status::kSuccess;

  std::atomic<int> next{0};
  const auto worker = [&]() {
    for (int i = next.fetch_add(1); i < count; i = next.fetch_add(1)) {
      ForwardWorkItem& item = items[i];
      item.status = convolution_forward(handle, item.x_desc, item.x,
                                        item.w_desc, item.w, item.y_desc,
                                        item.y);
    }
  };

  const int workers = std::min(num_threads, count);
  if (workers == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int t = 0; t < workers; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  for (int i = 0; i < count; ++i) {
    if (items[i].status != Status::kSuccess) return items[i].status;
  }
  return Status::kSuccess;
}

Status convolution_backward_data(Handle* handle,
                                 const FilterDescriptor& w_desc,
                                 const double* w,
                                 const TensorDescriptor& dy_desc,
                                 const double* dy,
                                 const TensorDescriptor& dx_desc,
                                 double* dx) {
  if (handle == nullptr || w == nullptr || dy == nullptr || dx == nullptr) {
    return Status::kBadParam;
  }
  conv::ConvShape shape;
  const Status s = resolve_shape(dx_desc, w_desc, dy_desc, shape);
  if (s != Status::kSuccess) return s;
  try {
    tensor::PooledTensor filter =
        wrap(handle, w, {shape.kr, shape.kc, shape.ni, shape.no});
    tensor::PooledTensor dout =
        wrap(handle, dy, {shape.ro(), shape.co(), shape.no, shape.batch});
    tensor::PooledTensor din =
        out_buffer(handle, {shape.ri, shape.ci, shape.ni, shape.batch});
    const auto host_fallback = [&](const char* reason) {
      trace_dispatch(handle, "host_fallback");
      din->zero();
      conv::im2col_backward_data(*dout, *filter, *din, shape,
                                 &handle->pool);
      std::lock_guard<std::mutex> lock(handle->mutex);
      set_error_locked(handle, reason);
      ++handle->host_fallbacks;
      handle->last_route = ExecutionRoute::kHostGemm;
      handle->last_plan = PlanAlgo::kNone;
    };
    try {
      const conv::ForwardResult result = conv::swconv_backward_data(
          handle->sw, *dout, *filter, *din, shape, &handle->pool);
      std::lock_guard<std::mutex> lock(handle->mutex);
      handle->dma_retries += result.stats.dma_retries;
      set_error_locked(handle, "");  // clean success clears stale errors
      handle->last_route = ExecutionRoute::kSimulatedMesh;
      handle->last_plan = to_plan_algo(result.choice.plan.kind);
    } catch (const sim::LaunchFault& e) {
      // A fault the tile-retry policy could not absorb: the mesh route
      // is degraded, so recompute the whole call on the host. The
      // partially written mesh output is discarded.
      host_fallback(e.what());
    } catch (const conv::MeshMappingError& e) {
      // The backward shape does not map onto the mesh (divisibility):
      // the host path is the designed route, but the reroute is
      // recorded, not silent. Real bugs propagate to the outer catch.
      host_fallback(e.what());
    }
    std::copy(din->data().begin(), din->data().end(), dx);
  } catch (const std::exception& e) {
    set_error(handle, e.what());
    return Status::kExecutionFailed;
  }
  return Status::kSuccess;
}

Status convolution_backward_filter(Handle* handle,
                                   const TensorDescriptor& x_desc,
                                   const double* x,
                                   const TensorDescriptor& dy_desc,
                                   const double* dy,
                                   const FilterDescriptor& dw_desc,
                                   double* dw) {
  if (handle == nullptr || x == nullptr || dy == nullptr || dw == nullptr) {
    return Status::kBadParam;
  }
  conv::ConvShape shape;
  const Status s = resolve_shape(x_desc, dw_desc, dy_desc, shape);
  if (s != Status::kSuccess) return s;
  try {
    tensor::PooledTensor input =
        wrap(handle, x, {shape.ri, shape.ci, shape.ni, shape.batch});
    tensor::PooledTensor dout =
        wrap(handle, dy, {shape.ro(), shape.co(), shape.no, shape.batch});
    tensor::PooledTensor dfilter =
        out_buffer(handle, {shape.kr, shape.kc, shape.ni, shape.no});

    // Shapes with no mesh-executable plan are the host-GEMM territory
    // the forward and backward-data paths already route around; send
    // the filter gradient to the host too — recorded, never silent —
    // so a compiled network gets a complete training step for any
    // shape. Mesh-executable shapes keep the mesh-only contract below
    // (a fault surfaces as kTransientFault/kDeviceFault).
    const perf::PlanCache::LookupResult lookup =
        handle->sw.ranked_plans(shape);
    trace_dispatch(handle, lookup.hit ? "hit" : "miss");
    if (!lookup.entry->has_executable()) {
      trace_dispatch(handle, "host_fallback");
      conv::im2col_backward_filter(*input, *dout, *dfilter, shape,
                                   &handle->pool);
      const std::string reason = "no mesh-executable plan for " +
                                 shape.to_string() + "; routed to host GEMM";
      {
        std::lock_guard<std::mutex> lock(handle->mutex);
        set_error_locked(handle, reason.c_str());
        ++handle->host_fallbacks;
        handle->last_route = ExecutionRoute::kHostGemm;
        handle->last_plan = PlanAlgo::kNone;
      }
      std::copy(dfilter->data().begin(), dfilter->data().end(), dw);
      return Status::kSuccess;
    }

    std::lock_guard<std::mutex> launch_lock(handle->bwd_exec_mutex);
    if (handle->bwd_exec == nullptr) {
      handle->bwd_exec = std::make_unique<sim::MeshExecutor>(handle->spec);
    }
    sim::MeshExecutor& exec = *handle->bwd_exec;
    exec.set_fault_injector(handle->injector.get());
    exec.set_retry_policy(handle->retry);
    exec.set_tracer(handle->tracer);
    const sim::LaunchStats stats =
        conv::mesh_backward_filter(exec, *input, *dout, *dfilter, shape);
    if (stats.failed) {
      // backward-filter has no host route in this build: surface the
      // fault class so the framework can retry or re-plan.
      set_error(handle, stats.failure.c_str());
      return stats.persistent_fault ? Status::kDeviceFault
                                    : Status::kTransientFault;
    }
    {
      std::lock_guard<std::mutex> lock(handle->mutex);
      handle->dma_retries += stats.dma_retries;
      set_error_locked(handle, "");  // clean success clears stale errors
      handle->last_route = ExecutionRoute::kSimulatedMesh;
    }
    std::copy(dfilter->data().begin(), dfilter->data().end(), dw);
  } catch (const std::exception& e) {
    set_error(handle, e.what());
    return Status::kExecutionFailed;
  }
  return Status::kSuccess;
}

Status convolution_plan_warmup(Handle* handle,
                               const TensorDescriptor& x_desc,
                               const FilterDescriptor& w_desc) {
  if (handle == nullptr) return Status::kBadParam;
  TensorDescriptor y_desc;
  const Status s = get_convolution_output_descriptor(x_desc, w_desc, y_desc);
  if (s != Status::kSuccess) return s;
  conv::ConvShape shape;
  const Status rs = resolve_shape(x_desc, w_desc, y_desc, shape);
  if (rs != Status::kSuccess) return rs;
  try {
    // backward-data dispatches the transposed problem through the same
    // cache, so a full warm-up covers both keys a training step uses.
    const bool built =
        handle->sw.warm_plans({shape, conv::backward_data_shape(shape)}) > 0;
    trace_dispatch(handle, built ? "warm" : "warm_cached");
    if (handle->autotune) {
      for (const conv::ConvShape& key :
           {shape, conv::backward_data_shape(shape)}) {
        if (handle->autotune_measured) {
          // Measured mode: the schedule search runs first, then the
          // top modeled candidates are confirmed with timed simulator
          // launches; a reorder means measurement overruled the model.
          const std::optional<perf::MeasuredAutotuneReport> report =
              handle->sw.autotune_plan_measured(key);
          if (handle->tracer != nullptr) {
            std::string what = "tune_cached";
            if (report.has_value()) {
              what = "tune_measured " + key.to_string() + " candidates=" +
                     std::to_string(report->candidates.size());
              if (report->reordered) what += " measured_reorder";
            }
            handle->tracer->record_instant(0, "autotune", what.c_str());
          }
          if (report.has_value()) {
            std::lock_guard<std::mutex> lock(handle->mutex);
            ++handle->autotuned;
          }
          continue;
        }
        const std::optional<perf::AutotuneReport> report =
            handle->sw.autotune_plan(key);
        if (handle->tracer != nullptr) {
          std::string what = "tune_cached";
          if (report.has_value()) {
            what = "tune " + key.to_string() +
                   " rb_b=" + std::to_string(report->tuned_plan.rb_b) +
                   " rb_no=" + std::to_string(report->tuned_plan.rb_no) +
                   " scored=" + std::to_string(report->candidates_scored);
          }
          handle->tracer->record_instant(0, "autotune", what.c_str());
        }
        if (report.has_value()) {
          std::lock_guard<std::mutex> lock(handle->mutex);
          ++handle->autotuned;
        }
      }
    }
  } catch (const std::exception& e) {
    set_error(handle, e.what());
    return Status::kExecutionFailed;
  }
  return Status::kSuccess;
}

Status set_autotune(Handle* handle, bool enable) {
  if (handle == nullptr) return Status::kBadParam;
  handle->autotune = enable;
  return Status::kSuccess;
}

Status set_autotune_measured(Handle* handle, bool enable) {
  if (handle == nullptr) return Status::kBadParam;
  handle->autotune_measured = enable;
  return Status::kSuccess;
}

std::uint64_t autotuned_shapes(const Handle* handle) {
  if (handle == nullptr) return 0;
  std::lock_guard<std::mutex> lock(handle->mutex);
  return handle->autotuned;
}

Status get_convolution_estimate(Handle* handle,
                                const TensorDescriptor& x_desc,
                                const FilterDescriptor& w_desc,
                                double* gflops_chip) {
  if (handle == nullptr || gflops_chip == nullptr) return Status::kBadParam;
  TensorDescriptor y_desc;
  const Status s = get_convolution_output_descriptor(x_desc, w_desc, y_desc);
  if (s != Status::kSuccess) return s;
  try {
    conv::ConvShape shape;
    const Status rs = resolve_shape(x_desc, w_desc, y_desc, shape);
    if (rs != Status::kSuccess) return rs;
    *gflops_chip = handle->sw.estimate(shape).gflops_chip;
  } catch (const std::exception& e) {
    set_error(handle, e.what());
    return Status::kExecutionFailed;
  }
  return Status::kSuccess;
}

ExecutionRoute last_execution_route(const Handle* handle) {
  if (handle == nullptr) return ExecutionRoute::kNone;
  std::lock_guard<std::mutex> lock(handle->mutex);
  return handle->last_route;
}

PlanAlgo last_plan_algo(const Handle* handle) {
  if (handle == nullptr) return PlanAlgo::kNone;
  std::lock_guard<std::mutex> lock(handle->mutex);
  return handle->last_plan;
}

const char* last_error_message(const Handle* handle) {
  return handle == nullptr ? "" : handle->last_error;
}

Status plan_cache_counters(const Handle* handle,
                           PlanCacheCounters* counters) {
  if (handle == nullptr || counters == nullptr) return Status::kBadParam;
  const perf::PlanCacheStats stats = handle->sw.plan_cache_stats();
  counters->hits = stats.hits;
  counters->misses = stats.misses;
  counters->evictions = stats.evictions;
  counters->entries = stats.entries;
  return Status::kSuccess;
}

Status set_event_tracer(Handle* handle, sim::EventTracer* tracer) {
  if (handle == nullptr) return Status::kBadParam;
  handle->tracer = tracer;
  handle->sw.set_tracer(tracer);
  return Status::kSuccess;
}

Status set_fault_plan(Handle* handle, const sim::FaultPlan* plan) {
  if (handle == nullptr) return Status::kBadParam;
  if (plan == nullptr) {
    handle->injector.reset();
    handle->sw.set_fault_injector(nullptr);
  } else {
    handle->injector = std::make_unique<sim::FaultInjector>(*plan);
    handle->sw.set_fault_injector(handle->injector.get());
  }
  std::lock_guard<std::mutex> lock(handle->mutex);
  handle->host_fallbacks = 0;
  handle->dma_retries = 0;
  handle->plan_fallbacks = 0;
  return Status::kSuccess;
}

Status set_retry_policy(Handle* handle, int max_attempts,
                        std::uint64_t backoff_cycles) {
  if (handle == nullptr || max_attempts < 1) return Status::kBadParam;
  handle->retry = sim::RetryPolicy{max_attempts, backoff_cycles};
  handle->sw.set_retry_policy(handle->retry);
  return Status::kSuccess;
}

Status fault_counters(const Handle* handle, FaultCounters* counters) {
  if (handle == nullptr || counters == nullptr) return Status::kBadParam;
  *counters = FaultCounters{};
  {
    std::lock_guard<std::mutex> lock(handle->mutex);
    counters->host_fallbacks = handle->host_fallbacks;
    counters->dma_retries = handle->dma_retries;
    counters->plan_fallbacks = handle->plan_fallbacks;
  }
  if (handle->injector != nullptr) {
    const sim::FaultInjector& fi = *handle->injector;
    counters->dma_transfer_faults = fi.count(sim::FaultSite::kDmaTransfer);
    counters->dma_misalign_faults = fi.count(sim::FaultSite::kDmaMisalign);
    counters->ldm_capacity_faults = fi.count(sim::FaultSite::kLdmCapacity);
    counters->ldm_bitflip_faults = fi.count(sim::FaultSite::kLdmBitFlip);
    counters->regcomm_stalls = fi.count(sim::FaultSite::kRegcommStall);
    counters->noc_link_faults = fi.count(sim::FaultSite::kNocLink);
  }
  return Status::kSuccess;
}

}  // namespace swdnn::api
