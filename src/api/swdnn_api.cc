#include "src/api/swdnn_api.h"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <memory>
#include <string>

#include "src/conv/backward.h"
#include "src/conv/im2col.h"
#include "src/conv/swconv.h"

namespace swdnn::api {

struct Handle {
  arch::Sw26010Spec spec = arch::default_spec();
  conv::SwConvolution sw;
  ExecutionRoute last_route = ExecutionRoute::kNone;
  // Fixed-size buffer, never shared between handles: last_error_message()
  // stays valid and race-free under concurrent use of distinct handles.
  char last_error[256] = {0};
  std::unique_ptr<sim::FaultInjector> injector;
  sim::RetryPolicy retry;
  std::uint64_t host_fallbacks = 0;
  std::uint64_t dma_retries = 0;

  explicit Handle(const arch::Sw26010Spec& s) : spec(s), sw(s) {}
};

namespace {

void set_error(Handle* handle, const char* message) {
  std::snprintf(handle->last_error, sizeof(handle->last_error), "%s",
                message);
}

}  // namespace

const char* status_string(Status status) {
  switch (status) {
    case Status::kSuccess:
      return "SWDNN_STATUS_SUCCESS";
    case Status::kBadParam:
      return "SWDNN_STATUS_BAD_PARAM";
    case Status::kShapeMismatch:
      return "SWDNN_STATUS_SHAPE_MISMATCH";
    case Status::kExecutionFailed:
      return "SWDNN_STATUS_EXECUTION_FAILED";
    case Status::kTransientFault:
      return "SWDNN_STATUS_TRANSIENT_FAULT";
    case Status::kDeviceFault:
      return "SWDNN_STATUS_DEVICE_FAULT";
  }
  return "SWDNN_STATUS_UNKNOWN";
}

Status create(Handle** handle, const arch::Sw26010Spec* spec) {
  if (handle == nullptr) return Status::kBadParam;
  *handle = new Handle(spec ? *spec : arch::default_spec());
  return Status::kSuccess;
}

Status destroy(Handle* handle) {
  if (handle == nullptr) return Status::kBadParam;
  delete handle;
  return Status::kSuccess;
}

Status set_tensor4d_descriptor(TensorDescriptor& desc, std::int64_t rows,
                               std::int64_t cols, std::int64_t channels,
                               std::int64_t batch) {
  if (rows <= 0 || cols <= 0 || channels <= 0 || batch <= 0) {
    return Status::kBadParam;
  }
  desc = TensorDescriptor{rows, cols, channels, batch};
  return Status::kSuccess;
}

Status set_filter_descriptor(FilterDescriptor& desc, std::int64_t kr,
                             std::int64_t kc, std::int64_t ni,
                             std::int64_t no) {
  if (kr <= 0 || kc <= 0 || ni <= 0 || no <= 0) return Status::kBadParam;
  desc = FilterDescriptor{kr, kc, ni, no};
  return Status::kSuccess;
}

Status get_convolution_output_descriptor(const TensorDescriptor& input,
                                         const FilterDescriptor& filter,
                                         TensorDescriptor& output) {
  if (input.channels != filter.ni) return Status::kShapeMismatch;
  if (filter.kr > input.rows || filter.kc > input.cols) {
    return Status::kShapeMismatch;
  }
  output = TensorDescriptor{input.rows - filter.kr + 1,
                            input.cols - filter.kc + 1, filter.no,
                            input.batch};
  return Status::kSuccess;
}

namespace {

/// Builds the ConvShape from the descriptor triple; kShapeMismatch if
/// they are inconsistent.
Status resolve_shape(const TensorDescriptor& x, const FilterDescriptor& w,
                     const TensorDescriptor& y, conv::ConvShape& shape) {
  TensorDescriptor expect_y;
  const Status s = get_convolution_output_descriptor(x, w, expect_y);
  if (s != Status::kSuccess) return s;
  if (expect_y.rows != y.rows || expect_y.cols != y.cols ||
      expect_y.channels != y.channels || expect_y.batch != y.batch) {
    return Status::kShapeMismatch;
  }
  shape.batch = x.batch;
  shape.ni = w.ni;
  shape.no = w.no;
  shape.ri = x.rows;
  shape.ci = x.cols;
  shape.kr = w.kr;
  shape.kc = w.kc;
  return Status::kSuccess;
}

tensor::Tensor wrap(const double* data, std::initializer_list<std::int64_t>
                                            dims) {
  tensor::Tensor t(dims);
  std::copy(data, data + t.size(), t.data().begin());
  return t;
}

}  // namespace

Status convolution_forward(Handle* handle, const TensorDescriptor& x_desc,
                           const double* x, const FilterDescriptor& w_desc,
                           const double* w, const TensorDescriptor& y_desc,
                           double* y) {
  if (handle == nullptr || x == nullptr || w == nullptr || y == nullptr) {
    return Status::kBadParam;
  }
  conv::ConvShape shape;
  const Status s = resolve_shape(x_desc, w_desc, y_desc, shape);
  if (s != Status::kSuccess) return s;

  try {
    tensor::Tensor input =
        wrap(x, {shape.ri, shape.ci, shape.ni, shape.batch});
    tensor::Tensor filter = wrap(w, {shape.kr, shape.kc, shape.ni, shape.no});
    tensor::Tensor output({shape.ro(), shape.co(), shape.no, shape.batch});
    try {
      const conv::ForwardResult result =
          handle->sw.forward(input, filter, output, shape);
      handle->dma_retries += result.stats.dma_retries;
      handle->last_route = ExecutionRoute::kSimulatedMesh;
    } catch (const sim::LaunchFault& e) {
      // A fault the tile-retry policy could not absorb: the mesh route
      // is degraded, so recompute the whole call on the host. The
      // partially written mesh output is discarded.
      set_error(handle, e.what());
      ++handle->host_fallbacks;
      conv::im2col_forward(input, filter, output, shape);
      handle->last_route = ExecutionRoute::kHostGemm;
    } catch (const std::exception&) {
      // Shape does not map onto the mesh (divisibility): host fallback.
      conv::im2col_forward(input, filter, output, shape);
      handle->last_route = ExecutionRoute::kHostGemm;
    }
    std::copy(output.data().begin(), output.data().end(), y);
  } catch (const std::exception& e) {
    set_error(handle, e.what());
    return Status::kExecutionFailed;
  }
  return Status::kSuccess;
}

Status convolution_backward_data(Handle* handle,
                                 const FilterDescriptor& w_desc,
                                 const double* w,
                                 const TensorDescriptor& dy_desc,
                                 const double* dy,
                                 const TensorDescriptor& dx_desc,
                                 double* dx) {
  if (handle == nullptr || w == nullptr || dy == nullptr || dx == nullptr) {
    return Status::kBadParam;
  }
  conv::ConvShape shape;
  const Status s = resolve_shape(dx_desc, w_desc, dy_desc, shape);
  if (s != Status::kSuccess) return s;
  try {
    tensor::Tensor filter = wrap(w, {shape.kr, shape.kc, shape.ni, shape.no});
    tensor::Tensor dout =
        wrap(dy, {shape.ro(), shape.co(), shape.no, shape.batch});
    tensor::Tensor din({shape.ri, shape.ci, shape.ni, shape.batch});
    try {
      const conv::ForwardResult result =
          conv::swconv_backward_data(handle->sw, dout, filter, din, shape);
      handle->dma_retries += result.stats.dma_retries;
      handle->last_route = ExecutionRoute::kSimulatedMesh;
    } catch (const sim::LaunchFault& e) {
      set_error(handle, e.what());
      ++handle->host_fallbacks;
      conv::im2col_backward_data(dout, filter, din, shape);
      handle->last_route = ExecutionRoute::kHostGemm;
    } catch (const std::exception&) {
      conv::im2col_backward_data(dout, filter, din, shape);
      handle->last_route = ExecutionRoute::kHostGemm;
    }
    std::copy(din.data().begin(), din.data().end(), dx);
  } catch (const std::exception& e) {
    set_error(handle, e.what());
    return Status::kExecutionFailed;
  }
  return Status::kSuccess;
}

Status convolution_backward_filter(Handle* handle,
                                   const TensorDescriptor& x_desc,
                                   const double* x,
                                   const TensorDescriptor& dy_desc,
                                   const double* dy,
                                   const FilterDescriptor& dw_desc,
                                   double* dw) {
  if (handle == nullptr || x == nullptr || dy == nullptr || dw == nullptr) {
    return Status::kBadParam;
  }
  conv::ConvShape shape;
  const Status s = resolve_shape(x_desc, dw_desc, dy_desc, shape);
  if (s != Status::kSuccess) return s;
  try {
    tensor::Tensor input =
        wrap(x, {shape.ri, shape.ci, shape.ni, shape.batch});
    tensor::Tensor dout =
        wrap(dy, {shape.ro(), shape.co(), shape.no, shape.batch});
    tensor::Tensor dfilter({shape.kr, shape.kc, shape.ni, shape.no});
    sim::MeshExecutor exec(handle->spec);
    exec.set_fault_injector(handle->injector.get());
    exec.set_retry_policy(handle->retry);
    const sim::LaunchStats stats =
        conv::mesh_backward_filter(exec, input, dout, dfilter, shape);
    if (stats.failed) {
      // backward-filter has no host route in this build: surface the
      // fault class so the framework can retry or re-plan.
      set_error(handle, stats.failure.c_str());
      return stats.persistent_fault ? Status::kDeviceFault
                                    : Status::kTransientFault;
    }
    handle->dma_retries += stats.dma_retries;
    handle->last_route = ExecutionRoute::kSimulatedMesh;
    std::copy(dfilter.data().begin(), dfilter.data().end(), dw);
  } catch (const std::exception& e) {
    set_error(handle, e.what());
    return Status::kExecutionFailed;
  }
  return Status::kSuccess;
}

Status get_convolution_estimate(Handle* handle,
                                const TensorDescriptor& x_desc,
                                const FilterDescriptor& w_desc,
                                double* gflops_chip) {
  if (handle == nullptr || gflops_chip == nullptr) return Status::kBadParam;
  TensorDescriptor y_desc;
  const Status s = get_convolution_output_descriptor(x_desc, w_desc, y_desc);
  if (s != Status::kSuccess) return s;
  try {
    conv::ConvShape shape;
    const Status rs = resolve_shape(x_desc, w_desc, y_desc, shape);
    if (rs != Status::kSuccess) return rs;
    *gflops_chip = handle->sw.estimate(shape).gflops_chip;
  } catch (const std::exception& e) {
    set_error(handle, e.what());
    return Status::kExecutionFailed;
  }
  return Status::kSuccess;
}

ExecutionRoute last_execution_route(const Handle* handle) {
  return handle == nullptr ? ExecutionRoute::kNone : handle->last_route;
}

const char* last_error_message(const Handle* handle) {
  return handle == nullptr ? "" : handle->last_error;
}

Status set_fault_plan(Handle* handle, const sim::FaultPlan* plan) {
  if (handle == nullptr) return Status::kBadParam;
  if (plan == nullptr) {
    handle->injector.reset();
    handle->sw.set_fault_injector(nullptr);
    handle->host_fallbacks = 0;
    handle->dma_retries = 0;
    return Status::kSuccess;
  }
  handle->injector = std::make_unique<sim::FaultInjector>(*plan);
  handle->sw.set_fault_injector(handle->injector.get());
  handle->host_fallbacks = 0;
  handle->dma_retries = 0;
  return Status::kSuccess;
}

Status set_retry_policy(Handle* handle, int max_attempts,
                        std::uint64_t backoff_cycles) {
  if (handle == nullptr || max_attempts < 1) return Status::kBadParam;
  handle->retry = sim::RetryPolicy{max_attempts, backoff_cycles};
  handle->sw.set_retry_policy(handle->retry);
  return Status::kSuccess;
}

Status fault_counters(const Handle* handle, FaultCounters* counters) {
  if (handle == nullptr || counters == nullptr) return Status::kBadParam;
  *counters = FaultCounters{};
  counters->host_fallbacks = handle->host_fallbacks;
  counters->dma_retries = handle->dma_retries;
  if (handle->injector != nullptr) {
    const sim::FaultInjector& fi = *handle->injector;
    counters->dma_transfer_faults = fi.count(sim::FaultSite::kDmaTransfer);
    counters->dma_misalign_faults = fi.count(sim::FaultSite::kDmaMisalign);
    counters->ldm_capacity_faults = fi.count(sim::FaultSite::kLdmCapacity);
    counters->ldm_bitflip_faults = fi.count(sim::FaultSite::kLdmBitFlip);
    counters->regcomm_stalls = fi.count(sim::FaultSite::kRegcommStall);
    counters->noc_link_faults = fi.count(sim::FaultSite::kNocLink);
  }
  return Status::kSuccess;
}

}  // namespace swdnn::api
