#include "src/api/swdnn_api.h"

#include <algorithm>
#include <exception>
#include <string>

#include "src/conv/backward.h"
#include "src/conv/im2col.h"
#include "src/conv/swconv.h"

namespace swdnn::api {

struct Handle {
  arch::Sw26010Spec spec = arch::default_spec();
  conv::SwConvolution sw;
  ExecutionRoute last_route = ExecutionRoute::kNone;
  std::string last_error;

  explicit Handle(const arch::Sw26010Spec& s) : spec(s), sw(s) {}
};

const char* status_string(Status status) {
  switch (status) {
    case Status::kSuccess:
      return "SWDNN_STATUS_SUCCESS";
    case Status::kBadParam:
      return "SWDNN_STATUS_BAD_PARAM";
    case Status::kShapeMismatch:
      return "SWDNN_STATUS_SHAPE_MISMATCH";
    case Status::kExecutionFailed:
      return "SWDNN_STATUS_EXECUTION_FAILED";
  }
  return "SWDNN_STATUS_UNKNOWN";
}

Status create(Handle** handle, const arch::Sw26010Spec* spec) {
  if (handle == nullptr) return Status::kBadParam;
  *handle = new Handle(spec ? *spec : arch::default_spec());
  return Status::kSuccess;
}

Status destroy(Handle* handle) {
  if (handle == nullptr) return Status::kBadParam;
  delete handle;
  return Status::kSuccess;
}

Status set_tensor4d_descriptor(TensorDescriptor& desc, std::int64_t rows,
                               std::int64_t cols, std::int64_t channels,
                               std::int64_t batch) {
  if (rows <= 0 || cols <= 0 || channels <= 0 || batch <= 0) {
    return Status::kBadParam;
  }
  desc = TensorDescriptor{rows, cols, channels, batch};
  return Status::kSuccess;
}

Status set_filter_descriptor(FilterDescriptor& desc, std::int64_t kr,
                             std::int64_t kc, std::int64_t ni,
                             std::int64_t no) {
  if (kr <= 0 || kc <= 0 || ni <= 0 || no <= 0) return Status::kBadParam;
  desc = FilterDescriptor{kr, kc, ni, no};
  return Status::kSuccess;
}

Status get_convolution_output_descriptor(const TensorDescriptor& input,
                                         const FilterDescriptor& filter,
                                         TensorDescriptor& output) {
  if (input.channels != filter.ni) return Status::kShapeMismatch;
  if (filter.kr > input.rows || filter.kc > input.cols) {
    return Status::kShapeMismatch;
  }
  output = TensorDescriptor{input.rows - filter.kr + 1,
                            input.cols - filter.kc + 1, filter.no,
                            input.batch};
  return Status::kSuccess;
}

namespace {

/// Builds the ConvShape from the descriptor triple; kShapeMismatch if
/// they are inconsistent.
Status resolve_shape(const TensorDescriptor& x, const FilterDescriptor& w,
                     const TensorDescriptor& y, conv::ConvShape& shape) {
  TensorDescriptor expect_y;
  const Status s = get_convolution_output_descriptor(x, w, expect_y);
  if (s != Status::kSuccess) return s;
  if (expect_y.rows != y.rows || expect_y.cols != y.cols ||
      expect_y.channels != y.channels || expect_y.batch != y.batch) {
    return Status::kShapeMismatch;
  }
  shape.batch = x.batch;
  shape.ni = w.ni;
  shape.no = w.no;
  shape.ri = x.rows;
  shape.ci = x.cols;
  shape.kr = w.kr;
  shape.kc = w.kc;
  return Status::kSuccess;
}

tensor::Tensor wrap(const double* data, std::initializer_list<std::int64_t>
                                            dims) {
  tensor::Tensor t(dims);
  std::copy(data, data + t.size(), t.data().begin());
  return t;
}

}  // namespace

Status convolution_forward(Handle* handle, const TensorDescriptor& x_desc,
                           const double* x, const FilterDescriptor& w_desc,
                           const double* w, const TensorDescriptor& y_desc,
                           double* y) {
  if (handle == nullptr || x == nullptr || w == nullptr || y == nullptr) {
    return Status::kBadParam;
  }
  conv::ConvShape shape;
  const Status s = resolve_shape(x_desc, w_desc, y_desc, shape);
  if (s != Status::kSuccess) return s;

  try {
    tensor::Tensor input =
        wrap(x, {shape.ri, shape.ci, shape.ni, shape.batch});
    tensor::Tensor filter = wrap(w, {shape.kr, shape.kc, shape.ni, shape.no});
    tensor::Tensor output({shape.ro(), shape.co(), shape.no, shape.batch});
    try {
      handle->sw.forward(input, filter, output, shape);
      handle->last_route = ExecutionRoute::kSimulatedMesh;
    } catch (const std::exception&) {
      // Shape does not map onto the mesh (divisibility): host fallback.
      conv::im2col_forward(input, filter, output, shape);
      handle->last_route = ExecutionRoute::kHostGemm;
    }
    std::copy(output.data().begin(), output.data().end(), y);
  } catch (const std::exception& e) {
    handle->last_error = e.what();
    return Status::kExecutionFailed;
  }
  return Status::kSuccess;
}

Status convolution_backward_data(Handle* handle,
                                 const FilterDescriptor& w_desc,
                                 const double* w,
                                 const TensorDescriptor& dy_desc,
                                 const double* dy,
                                 const TensorDescriptor& dx_desc,
                                 double* dx) {
  if (handle == nullptr || w == nullptr || dy == nullptr || dx == nullptr) {
    return Status::kBadParam;
  }
  conv::ConvShape shape;
  const Status s = resolve_shape(dx_desc, w_desc, dy_desc, shape);
  if (s != Status::kSuccess) return s;
  try {
    tensor::Tensor filter = wrap(w, {shape.kr, shape.kc, shape.ni, shape.no});
    tensor::Tensor dout =
        wrap(dy, {shape.ro(), shape.co(), shape.no, shape.batch});
    tensor::Tensor din({shape.ri, shape.ci, shape.ni, shape.batch});
    try {
      conv::swconv_backward_data(handle->sw, dout, filter, din, shape);
      handle->last_route = ExecutionRoute::kSimulatedMesh;
    } catch (const std::exception&) {
      conv::im2col_backward_data(dout, filter, din, shape);
      handle->last_route = ExecutionRoute::kHostGemm;
    }
    std::copy(din.data().begin(), din.data().end(), dx);
  } catch (const std::exception& e) {
    handle->last_error = e.what();
    return Status::kExecutionFailed;
  }
  return Status::kSuccess;
}

Status convolution_backward_filter(Handle* handle,
                                   const TensorDescriptor& x_desc,
                                   const double* x,
                                   const TensorDescriptor& dy_desc,
                                   const double* dy,
                                   const FilterDescriptor& dw_desc,
                                   double* dw) {
  if (handle == nullptr || x == nullptr || dy == nullptr || dw == nullptr) {
    return Status::kBadParam;
  }
  conv::ConvShape shape;
  const Status s = resolve_shape(x_desc, dw_desc, dy_desc, shape);
  if (s != Status::kSuccess) return s;
  try {
    tensor::Tensor input =
        wrap(x, {shape.ri, shape.ci, shape.ni, shape.batch});
    tensor::Tensor dout =
        wrap(dy, {shape.ro(), shape.co(), shape.no, shape.batch});
    tensor::Tensor dfilter({shape.kr, shape.kc, shape.ni, shape.no});
    sim::MeshExecutor exec(handle->spec);
    conv::mesh_backward_filter(exec, input, dout, dfilter, shape);
    handle->last_route = ExecutionRoute::kSimulatedMesh;
    std::copy(dfilter.data().begin(), dfilter.data().end(), dw);
  } catch (const std::exception& e) {
    handle->last_error = e.what();
    return Status::kExecutionFailed;
  }
  return Status::kSuccess;
}

Status get_convolution_estimate(Handle* handle,
                                const TensorDescriptor& x_desc,
                                const FilterDescriptor& w_desc,
                                double* gflops_chip) {
  if (handle == nullptr || gflops_chip == nullptr) return Status::kBadParam;
  TensorDescriptor y_desc;
  const Status s = get_convolution_output_descriptor(x_desc, w_desc, y_desc);
  if (s != Status::kSuccess) return s;
  try {
    conv::ConvShape shape;
    const Status rs = resolve_shape(x_desc, w_desc, y_desc, shape);
    if (rs != Status::kSuccess) return rs;
    *gflops_chip = handle->sw.estimate(shape).gflops_chip;
  } catch (const std::exception& e) {
    handle->last_error = e.what();
    return Status::kExecutionFailed;
  }
  return Status::kSuccess;
}

ExecutionRoute last_execution_route(const Handle* handle) {
  return handle == nullptr ? ExecutionRoute::kNone : handle->last_route;
}

const char* last_error_message(const Handle* handle) {
  return handle == nullptr ? "" : handle->last_error.c_str();
}

}  // namespace swdnn::api
