#pragma once
// The library's handle/descriptor API — the calling convention of
// cuDNN, which the real swDNN mirrored so frameworks (Caffe et al.)
// could swap backends. Everything is plain structs, raw pointers, and
// status codes at this boundary; the C++ machinery lives underneath.
//
//   swdnn::api::Handle* handle = nullptr;
//   swdnn::api::create(&handle);
//   TensorDescriptor x_desc, y_desc;
//   FilterDescriptor w_desc;
//   set_tensor4d_descriptor(x_desc, Ri, Ci, Ni, B);
//   set_filter_descriptor(w_desc, Kr, Kc, Ni, No);
//   get_convolution_output_descriptor(x_desc, w_desc, y_desc);
//   convolution_forward(handle, x_desc, x, w_desc, w, y_desc, y);
//   destroy(handle);
//
// Data layout at this boundary is the library's canonical row-major
// [R][C][N][B] (filters [Kr][Kc][Ni][No]). Convolutions are valid,
// stride 1 — the paper's configuration space. Shapes that cannot map
// onto the simulated mesh run on the host GEMM path; the result is the
// same, only the execution substrate differs (query the chosen route
// with last_execution_route()).

#include <cstdint>

#include "src/arch/spec.h"

namespace swdnn::api {

enum class Status {
  kSuccess = 0,
  kBadParam,        ///< null pointer or invalid descriptor
  kShapeMismatch,   ///< descriptors disagree with each other
  kExecutionFailed, ///< internal failure (carried exception message)
};

const char* status_string(Status status);

enum class ExecutionRoute {
  kNone = 0,
  kSimulatedMesh,  ///< Algorithms 1/2 on the SW26010 simulator
  kHostGemm,       ///< im2col + GEMM on the host
};

struct TensorDescriptor {
  std::int64_t rows = 0, cols = 0, channels = 0, batch = 0;
};

struct FilterDescriptor {
  std::int64_t kr = 0, kc = 0, ni = 0, no = 0;
};

struct Handle;  // opaque

/// Creates a handle. `spec` overrides the machine (nullptr = the real
/// SW26010 numbers; tests pass reduced meshes).
Status create(Handle** handle, const arch::Sw26010Spec* spec = nullptr);
Status destroy(Handle* handle);

Status set_tensor4d_descriptor(TensorDescriptor& desc, std::int64_t rows,
                               std::int64_t cols, std::int64_t channels,
                               std::int64_t batch);
Status set_filter_descriptor(FilterDescriptor& desc, std::int64_t kr,
                             std::int64_t kc, std::int64_t ni,
                             std::int64_t no);

/// Fills `output` with the valid-convolution output dims of (input,
/// filter); kShapeMismatch if channels disagree or the filter exceeds
/// the image.
Status get_convolution_output_descriptor(const TensorDescriptor& input,
                                         const FilterDescriptor& filter,
                                         TensorDescriptor& output);

/// y = conv(x, w). Buffers must hold exactly the descriptor's element
/// counts.
Status convolution_forward(Handle* handle, const TensorDescriptor& x_desc,
                           const double* x, const FilterDescriptor& w_desc,
                           const double* w, const TensorDescriptor& y_desc,
                           double* y);

/// dx = conv_backward_data(dy, w).
Status convolution_backward_data(Handle* handle,
                                 const FilterDescriptor& w_desc,
                                 const double* w,
                                 const TensorDescriptor& dy_desc,
                                 const double* dy,
                                 const TensorDescriptor& dx_desc, double* dx);

/// dw = conv_backward_filter(x, dy).
Status convolution_backward_filter(Handle* handle,
                                   const TensorDescriptor& x_desc,
                                   const double* x,
                                   const TensorDescriptor& dy_desc,
                                   const double* dy,
                                   const FilterDescriptor& dw_desc,
                                   double* dw);

/// Modeled throughput (Gflop/s, whole chip) for this configuration —
/// the planning query a framework integration uses for layer timing.
Status get_convolution_estimate(Handle* handle,
                                const TensorDescriptor& x_desc,
                                const FilterDescriptor& w_desc,
                                double* gflops_chip);

/// Which substrate executed the last convolution call on this handle.
ExecutionRoute last_execution_route(const Handle* handle);

/// Human-readable message of the last kExecutionFailed on this handle.
const char* last_error_message(const Handle* handle);

}  // namespace swdnn::api
