#pragma once
// The library's handle/descriptor API — the calling convention of
// cuDNN, which the real swDNN mirrored so frameworks (Caffe et al.)
// could swap backends. Everything is plain structs, raw pointers, and
// status codes at this boundary; the C++ machinery lives underneath.
//
//   swdnn::api::Handle* handle = nullptr;
//   swdnn::api::create(&handle);
//   TensorDescriptor x_desc, y_desc;
//   FilterDescriptor w_desc;
//   set_tensor4d_descriptor(x_desc, Ri, Ci, Ni, B);
//   set_filter_descriptor(w_desc, Kr, Kc, Ni, No);
//   get_convolution_output_descriptor(x_desc, w_desc, y_desc);
//   convolution_forward(handle, x_desc, x, w_desc, w, y_desc, y);
//   destroy(handle);
//
// Data layout at this boundary is the library's canonical row-major
// [R][C][N][B] (filters [Kr][Kc][Ni][No]). Convolutions are valid,
// stride 1 — the paper's configuration space. Shapes that cannot map
// onto the simulated mesh run on the host GEMM path; the result is the
// same, only the execution substrate differs (query the chosen route
// with last_execution_route()).
//
// Threading contract: a Handle is concurrency-safe for the execution
// and query entry points — N worker threads may issue
// convolution_forward / convolution_backward_* / get_convolution_estimate
// calls through one shared handle simultaneously, the serving-front-end
// shape (convolution_forward_batch packages exactly that dispatch).
// Per-handle mutable state (last_execution_route, the error buffer,
// fault counters, the plan cache) is internally guarded; the last_*
// queries report the most recently *completed* call, which under
// concurrency is whichever finished last. The configuration calls
// (set_fault_plan, set_retry_policy, set_event_tracer) reconfigure the
// execution engine and must not race with in-flight calls on the same
// handle — configure first, then dispatch. Distinct handles remain
// fully independent, and the free functions that take no handle
// (status_string, descriptor setters, get_convolution_output_descriptor)
// are pure and thread-safe.
//
// Plan dispatch: the first call on a handle with a given shape ranks
// the candidate plans once (perf::PlanChooser) and caches the ranked
// result keyed by shape; every subsequent call with that shape
// dispatches straight from the cache. Cache behaviour is observable via
// plan_cache_counters() and last_plan_algo(), and — when an
// EventTracer is attached — as "plan_cache" trace events.

#include <cstdint>

#include "src/arch/spec.h"
#include "src/sim/fault.h"
#include "src/sim/trace.h"

namespace swdnn::api {

enum class Status {
  kSuccess = 0,
  kBadParam,        ///< null pointer or invalid descriptor
  kShapeMismatch,   ///< descriptors disagree with each other
  kExecutionFailed, ///< internal failure (carried exception message)
  kTransientFault,  ///< an injected/device fault; retrying may succeed
  kDeviceFault,     ///< persistent device fault; the route is dead
};

const char* status_string(Status status);

enum class ExecutionRoute {
  kNone = 0,
  kSimulatedMesh,  ///< Algorithms 1/2 on the SW26010 simulator
  kHostGemm,       ///< im2col + GEMM on the host
};

struct TensorDescriptor {
  std::int64_t rows = 0, cols = 0, channels = 0, batch = 0;
};

struct FilterDescriptor {
  std::int64_t kr = 0, kc = 0, ni = 0, no = 0;
};

struct Handle;  // opaque

/// Creates a handle. `spec` overrides the machine (nullptr = the real
/// SW26010 numbers; tests pass reduced meshes).
Status create(Handle** handle, const arch::Sw26010Spec* spec = nullptr);
Status destroy(Handle* handle);

Status set_tensor4d_descriptor(TensorDescriptor& desc, std::int64_t rows,
                               std::int64_t cols, std::int64_t channels,
                               std::int64_t batch);
Status set_filter_descriptor(FilterDescriptor& desc, std::int64_t kr,
                             std::int64_t kc, std::int64_t ni,
                             std::int64_t no);

/// Fills `output` with the valid-convolution output dims of (input,
/// filter); kShapeMismatch if channels disagree or the filter exceeds
/// the image.
Status get_convolution_output_descriptor(const TensorDescriptor& input,
                                         const FilterDescriptor& filter,
                                         TensorDescriptor& output);

/// y = conv(x, w). Buffers must hold exactly the descriptor's element
/// counts. Thread-safe on a shared handle.
Status convolution_forward(Handle* handle, const TensorDescriptor& x_desc,
                           const double* x, const FilterDescriptor& w_desc,
                           const double* w, const TensorDescriptor& y_desc,
                           double* y);

/// Optional fused epilogue for convolution_forward_ex: bias add and
/// ReLU applied to y inside the call, while the output is still hot —
/// what the graph compiler's fusion pass dispatches for a collapsed
/// conv+bias+ReLU node. Element-for-element the same arithmetic as the
/// separate layer passes, so fused output is bitwise-identical.
struct ConvolutionEpilogue {
  /// Per-output-channel bias, length w_desc.no; nullptr = no bias.
  const double* bias = nullptr;
  /// When non-null, ReLU runs after the bias and the activation mask
  /// (1.0 where pre-ReLU > 0, else 0.0) is written here; length = the
  /// y element count. nullptr = no activation.
  double* relu_mask = nullptr;
};

/// convolution_forward plus an optional fused epilogue. The epilogue is
/// applied after route resolution (mesh winner, ranked fallback, or
/// host GEMM), so the fault-degradation ladder is identical to the
/// unfused call; `epilogue` may be nullptr or empty for plain forward.
Status convolution_forward_ex(Handle* handle, const TensorDescriptor& x_desc,
                              const double* x, const FilterDescriptor& w_desc,
                              const double* w, const TensorDescriptor& y_desc,
                              double* y, const ConvolutionEpilogue* epilogue);

/// One request of a batched dispatch: descriptors, buffers, and the
/// per-request outcome slot.
struct ForwardWorkItem {
  TensorDescriptor x_desc;
  const double* x = nullptr;
  FilterDescriptor w_desc;
  const double* w = nullptr;
  TensorDescriptor y_desc;
  double* y = nullptr;
  Status status = Status::kSuccess;  ///< filled per item
};

/// Concurrent dispatch of `count` independent forward convolutions
/// through one handle: `num_threads` workers (clamped to count) pull
/// items off a shared queue and run convolution_forward on each — the
/// serving front-end's fan-out, sharing the handle's plan cache and
/// counters. Every item's own `status` is filled; the call returns the
/// first non-success item status, else kSuccess.
Status convolution_forward_batch(Handle* handle, ForwardWorkItem* items,
                                 int count, int num_threads);

/// dx = conv_backward_data(dy, w).
Status convolution_backward_data(Handle* handle,
                                 const FilterDescriptor& w_desc,
                                 const double* w,
                                 const TensorDescriptor& dy_desc,
                                 const double* dy,
                                 const TensorDescriptor& dx_desc, double* dx);

/// dw = conv_backward_filter(x, dy).
Status convolution_backward_filter(Handle* handle,
                                   const TensorDescriptor& x_desc,
                                   const double* x,
                                   const TensorDescriptor& dy_desc,
                                   const double* dy,
                                   const FilterDescriptor& dw_desc,
                                   double* dw);

/// Compile-time plan warm-up: ranks the plans for this convolution
/// configuration into the handle's shape-keyed cache without counting
/// as a hit or a miss, so a compiled network's first batch dispatches
/// warm and serve-time hit rates measure serve traffic only. Emits a
/// "plan_cache" trace instant ("warm" when an entry was built,
/// "warm_cached" when the shape was already resident). When autotuning
/// is enabled (set_autotune), the warm-up additionally runs the
/// schedule autotuner over the warmed shapes and installs the tuned
/// rankings, emitting an "autotune" trace instant per shape ("tune ..."
/// with the chosen register blocking, or "tune_cached" on repeats).
Status convolution_plan_warmup(Handle* handle,
                               const TensorDescriptor& x_desc,
                               const FilterDescriptor& w_desc);

/// Enables compile-time schedule autotuning on this handle: subsequent
/// convolution_plan_warmup calls search the schedule-only plan knobs
/// (register blocking, DMA promotion) with the performance model as
/// cost oracle and install the tuned plans in the cache, so warm
/// dispatches serve tuned schedules. Outputs are unaffected — the
/// tuned knobs never change what the functional kernels compute.
/// Configuration-phase call: do not race with in-flight convolutions.
Status set_autotune(Handle* handle, bool enable);

/// Upgrades autotuning (set_autotune) to the measured protocol: the
/// warm-up still runs the modeled schedule search, then confirms the
/// top two mesh-executable candidates (preferring a cross-family pair)
/// with timed simulator launches on synthetic data and swaps them in
/// the installed ranking when the runner-up measures strictly faster —
/// an explicit, reported reorder (the trace instant carries
/// "measured_reorder"). No effect while set_autotune is off.
/// Configuration-phase call: do not race with in-flight convolutions.
Status set_autotune_measured(Handle* handle, bool enable);

/// Number of distinct shapes the autotuner has tuned on this handle.
std::uint64_t autotuned_shapes(const Handle* handle);

/// Modeled throughput (Gflop/s, whole chip) for this configuration —
/// the planning query a framework integration uses for layer timing.
Status get_convolution_estimate(Handle* handle,
                                const TensorDescriptor& x_desc,
                                const FilterDescriptor& w_desc,
                                double* gflops_chip);

/// Which substrate executed the last convolution call on this handle.
ExecutionRoute last_execution_route(const Handle* handle);

// --- Plan cache observability ---------------------------------------------

/// The plan families, as seen at the API boundary: the paper's
/// Table III mappings plus the multigrain family (DESIGN.md §16).
enum class PlanAlgo {
  kNone = 0,        ///< no plan ran (host route, or no call yet)
  kDirect,          ///< direct-gload strawman
  kImageSizeAware,  ///< Algorithm 1
  kBatchSizeAware,  ///< Algorithm 2
  kFilterGrained,   ///< filters x im2col-pixels mesh GEMM
  kPixelGrained,    ///< per-pixel panel GEMM, LDM-resident filter
};

const char* plan_algo_name(PlanAlgo algo);

/// The PlanKind of the cached plan that executed the last mesh-routed
/// convolution on this handle (kNone when the last call took the host
/// route or nothing ran yet).
PlanAlgo last_plan_algo(const Handle* handle);

struct PlanCacheCounters {
  std::uint64_t hits = 0;       ///< dispatches served from the cache
  std::uint64_t misses = 0;     ///< PlanChooser::rank invocations
  std::uint64_t evictions = 0;  ///< LRU entries dropped at capacity
  std::uint64_t entries = 0;    ///< shapes currently cached
};

/// Fills `counters` with the handle's shape-keyed plan-cache counters.
Status plan_cache_counters(const Handle* handle,
                           PlanCacheCounters* counters);

/// Attaches an event tracer to the handle (nullptr detaches): every
/// simulated-mesh launch streams its DMA/bus/sync events into it, and
/// the dispatch layer adds "plan_cache" instants (hit / miss /
/// plan_fallback / host_fallback). The tracer must outlive the calls it
/// observes and may be shared across threads (EventTracer locks
/// internally). Configuration-phase call: do not race with in-flight
/// convolutions on this handle.
Status set_event_tracer(Handle* handle, sim::EventTracer* tracer);

/// Human-readable message of the last failure (kExecutionFailed,
/// kTransientFault, kDeviceFault, or an absorbed fault that forced a
/// host or plan fallback) on this handle. A clean, non-degraded
/// success CLEARS the buffer to "" — the message always describes the
/// most recent call that failed or degraded, never a stale one. The
/// storage is a fixed-size buffer inside the handle: the pointer stays
/// valid until the next call on this handle or destroy(), and is
/// unaffected by calls on other handles.
const char* last_error_message(const Handle* handle);

// --- Fault injection and resilience ---------------------------------------
//
// A handle can carry a fault-injection campaign (tests, chaos drills):
// every simulated-mesh launch issued through it polls the plan at the
// DMA/LDM/bus/NoC fault sites. Transient DMA faults are retried at tile
// granularity under the handle's retry policy; faults the policy cannot
// absorb degrade the call to the host GEMM path where one exists
// (observable via last_execution_route()) or surface as
// kTransientFault / kDeviceFault where none does.

/// Installs (copies) a fault plan on the handle; nullptr removes it.
/// Resets the handle's fault counters.
Status set_fault_plan(Handle* handle, const sim::FaultPlan* plan);

/// Bounded tile-level retry-with-backoff for faulting DMA transfers:
/// up to `max_attempts` tries per transfer (>= 1), attempt k charging
/// `backoff_cycles << (k-1)` cycles before re-issuing.
Status set_retry_policy(Handle* handle, int max_attempts,
                        std::uint64_t backoff_cycles);

struct FaultCounters {
  std::uint64_t dma_transfer_faults = 0;
  std::uint64_t dma_misalign_faults = 0;
  std::uint64_t ldm_capacity_faults = 0;
  std::uint64_t ldm_bitflip_faults = 0;
  std::uint64_t regcomm_stalls = 0;
  std::uint64_t noc_link_faults = 0;
  std::uint64_t dma_retries = 0;     ///< tile transfers re-issued
  std::uint64_t host_fallbacks = 0;  ///< calls degraded to the host path
  std::uint64_t plan_fallbacks = 0;  ///< calls rescued by a ranked
                                     ///< fallback plan after a fault
};

/// Fills `counters` with the faults injected and recoveries performed
/// on this handle since its fault plan was installed.
Status fault_counters(const Handle* handle, FaultCounters* counters);

}  // namespace swdnn::api
