#pragma once
// The library's handle/descriptor API — the calling convention of
// cuDNN, which the real swDNN mirrored so frameworks (Caffe et al.)
// could swap backends. Everything is plain structs, raw pointers, and
// status codes at this boundary; the C++ machinery lives underneath.
//
//   swdnn::api::Handle* handle = nullptr;
//   swdnn::api::create(&handle);
//   TensorDescriptor x_desc, y_desc;
//   FilterDescriptor w_desc;
//   set_tensor4d_descriptor(x_desc, Ri, Ci, Ni, B);
//   set_filter_descriptor(w_desc, Kr, Kc, Ni, No);
//   get_convolution_output_descriptor(x_desc, w_desc, y_desc);
//   convolution_forward(handle, x_desc, x, w_desc, w, y_desc, y);
//   destroy(handle);
//
// Data layout at this boundary is the library's canonical row-major
// [R][C][N][B] (filters [Kr][Kc][Ni][No]). Convolutions are valid,
// stride 1 — the paper's configuration space. Shapes that cannot map
// onto the simulated mesh run on the host GEMM path; the result is the
// same, only the execution substrate differs (query the chosen route
// with last_execution_route()).
//
// Threading contract: a Handle is not synchronized — at most one thread
// may use a given handle at a time. Distinct handles are fully
// independent: every piece of per-call state (last_execution_route,
// last_error_message, fault counters, retry policy) lives inside the
// handle itself, never in shared or static storage, so concurrent use
// of different handles from different threads is safe. The free
// functions that take no handle (status_string, descriptor setters,
// get_convolution_output_descriptor) are pure and thread-safe.

#include <cstdint>

#include "src/arch/spec.h"
#include "src/sim/fault.h"

namespace swdnn::api {

enum class Status {
  kSuccess = 0,
  kBadParam,        ///< null pointer or invalid descriptor
  kShapeMismatch,   ///< descriptors disagree with each other
  kExecutionFailed, ///< internal failure (carried exception message)
  kTransientFault,  ///< an injected/device fault; retrying may succeed
  kDeviceFault,     ///< persistent device fault; the route is dead
};

const char* status_string(Status status);

enum class ExecutionRoute {
  kNone = 0,
  kSimulatedMesh,  ///< Algorithms 1/2 on the SW26010 simulator
  kHostGemm,       ///< im2col + GEMM on the host
};

struct TensorDescriptor {
  std::int64_t rows = 0, cols = 0, channels = 0, batch = 0;
};

struct FilterDescriptor {
  std::int64_t kr = 0, kc = 0, ni = 0, no = 0;
};

struct Handle;  // opaque

/// Creates a handle. `spec` overrides the machine (nullptr = the real
/// SW26010 numbers; tests pass reduced meshes).
Status create(Handle** handle, const arch::Sw26010Spec* spec = nullptr);
Status destroy(Handle* handle);

Status set_tensor4d_descriptor(TensorDescriptor& desc, std::int64_t rows,
                               std::int64_t cols, std::int64_t channels,
                               std::int64_t batch);
Status set_filter_descriptor(FilterDescriptor& desc, std::int64_t kr,
                             std::int64_t kc, std::int64_t ni,
                             std::int64_t no);

/// Fills `output` with the valid-convolution output dims of (input,
/// filter); kShapeMismatch if channels disagree or the filter exceeds
/// the image.
Status get_convolution_output_descriptor(const TensorDescriptor& input,
                                         const FilterDescriptor& filter,
                                         TensorDescriptor& output);

/// y = conv(x, w). Buffers must hold exactly the descriptor's element
/// counts.
Status convolution_forward(Handle* handle, const TensorDescriptor& x_desc,
                           const double* x, const FilterDescriptor& w_desc,
                           const double* w, const TensorDescriptor& y_desc,
                           double* y);

/// dx = conv_backward_data(dy, w).
Status convolution_backward_data(Handle* handle,
                                 const FilterDescriptor& w_desc,
                                 const double* w,
                                 const TensorDescriptor& dy_desc,
                                 const double* dy,
                                 const TensorDescriptor& dx_desc, double* dx);

/// dw = conv_backward_filter(x, dy).
Status convolution_backward_filter(Handle* handle,
                                   const TensorDescriptor& x_desc,
                                   const double* x,
                                   const TensorDescriptor& dy_desc,
                                   const double* dy,
                                   const FilterDescriptor& dw_desc,
                                   double* dw);

/// Modeled throughput (Gflop/s, whole chip) for this configuration —
/// the planning query a framework integration uses for layer timing.
Status get_convolution_estimate(Handle* handle,
                                const TensorDescriptor& x_desc,
                                const FilterDescriptor& w_desc,
                                double* gflops_chip);

/// Which substrate executed the last convolution call on this handle.
ExecutionRoute last_execution_route(const Handle* handle);

/// Human-readable message of the last failure (kExecutionFailed,
/// kTransientFault, kDeviceFault, or an absorbed fault that forced a
/// host fallback) on this handle. The storage is a fixed-size buffer
/// inside the handle: the pointer stays valid until the next failing
/// call on this handle or destroy(), and is unaffected by calls on
/// other handles.
const char* last_error_message(const Handle* handle);

// --- Fault injection and resilience ---------------------------------------
//
// A handle can carry a fault-injection campaign (tests, chaos drills):
// every simulated-mesh launch issued through it polls the plan at the
// DMA/LDM/bus/NoC fault sites. Transient DMA faults are retried at tile
// granularity under the handle's retry policy; faults the policy cannot
// absorb degrade the call to the host GEMM path where one exists
// (observable via last_execution_route()) or surface as
// kTransientFault / kDeviceFault where none does.

/// Installs (copies) a fault plan on the handle; nullptr removes it.
/// Resets the handle's fault counters.
Status set_fault_plan(Handle* handle, const sim::FaultPlan* plan);

/// Bounded tile-level retry-with-backoff for faulting DMA transfers:
/// up to `max_attempts` tries per transfer (>= 1), attempt k charging
/// `backoff_cycles << (k-1)` cycles before re-issuing.
Status set_retry_policy(Handle* handle, int max_attempts,
                        std::uint64_t backoff_cycles);

struct FaultCounters {
  std::uint64_t dma_transfer_faults = 0;
  std::uint64_t dma_misalign_faults = 0;
  std::uint64_t ldm_capacity_faults = 0;
  std::uint64_t ldm_bitflip_faults = 0;
  std::uint64_t regcomm_stalls = 0;
  std::uint64_t noc_link_faults = 0;
  std::uint64_t dma_retries = 0;     ///< tile transfers re-issued
  std::uint64_t host_fallbacks = 0;  ///< calls degraded to the host path
};

/// Fills `counters` with the faults injected and recoveries performed
/// on this handle since its fault plan was installed.
Status fault_counters(const Handle* handle, FaultCounters* counters);

}  // namespace swdnn::api
