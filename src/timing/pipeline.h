#pragma once
// Dual-issue pipeline timing simulator for CPE inner loops.
//
// Models the CPE front end described in Section VI of the paper: the two
// execution pipelines share an instruction decoder that inspects the two
// instructions at the front of the queue each cycle and issues them
// together when
//   1. neither conflicts with a still-unfinished older instruction
//      (modeled as a register scoreboard: an operand read stalls until
//      the producing instruction's latency has elapsed),
//   2. they have no RAW or WAW hazard with each other, and
//   3. they can be handled by the two pipelines separately.
//
// Two further decoder properties are needed for the published cycle
// counts (26 cycles/iteration for the compiler's schedule, 17 for the
// hand-reordered one) to come out exactly:
//   * slot order — in a dual-issued pair the older instruction goes to
//     P0 and the younger to P1 (an "either"-class scalar op may fill
//     whichever slot its position dictates), and
//   * control transfers always issue alone.
// Both are conventional in-order dual-issue restrictions; with them the
// simulator reproduces the paper's per-iteration counts instruction for
// instruction (see tests/timing_pipeline_test.cc).

#include <cstdint>

#include "src/arch/isa.h"
#include "src/arch/spec.h"

namespace swdnn::timing {

struct SimResult {
  std::uint64_t cycles = 0;             ///< issue cycle of the last instruction
  std::uint64_t issued_p0 = 0;          ///< instructions issued to P0
  std::uint64_t issued_p1 = 0;          ///< instructions issued to P1
  std::uint64_t dual_issue_cycles = 0;  ///< cycles issuing two instructions
  std::uint64_t stall_cycles = 0;       ///< cycles issuing nothing
  std::uint64_t vfmad_count = 0;        ///< floating-point FMA instructions

  /// Fraction of cycles P0 spends on vector FMAs — the paper's
  /// "execution efficiency" (EE).
  double execution_efficiency() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(vfmad_count) /
                             static_cast<double>(cycles);
  }
};

/// One issue record: which instruction went to which pipeline when.
struct IssueEvent {
  std::uint64_t cycle = 0;
  std::size_t index = 0;  ///< position in the simulated stream
  char slot = '0';        ///< '0' = P0, '1' = P1
};
using IssueTrace = std::vector<IssueEvent>;

class DualPipelineSimulator {
 public:
  explicit DualPipelineSimulator(
      const arch::Sw26010Spec& spec = arch::default_spec());

  /// Replays the stream in order under the issue rules above and
  /// returns the cycle accounting. When `trace` is non-null every issue
  /// is recorded — the Fig. 6 schedule views are rendered from it.
  SimResult simulate(const arch::InstructionStream& stream,
                     IssueTrace* trace = nullptr) const;

 private:
  arch::Sw26010Spec spec_;  // by value: callers may pass temporaries
};

}  // namespace swdnn::timing
