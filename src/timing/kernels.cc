#include "src/timing/kernels.h"

#include <algorithm>

namespace swdnn::timing {

namespace {

// Register map. Accumulators hold the 4x4 output tile; A/B register sets
// are double-buffered by iteration parity so next-iteration loads carry
// no WAW hazard against in-flight consumers.
constexpr int kAcc = 0;              // C[j][k] = kAcc + 4*j + k  (0..15)
constexpr int kA[2] = {16, 20};      // A[0..3] per parity
constexpr int kB[2] = {24, 28};      // B[0..3] per parity
constexpr int kFlag = 40;            // cmp result
constexpr int kCounter = 41;         // loop counter (set outside the loop)
constexpr int kAddr = 100;           // address register (always ready)

int acc_reg(int j, int k) { return kAcc + 4 * j + k; }

}  // namespace

arch::InstructionStream original_stream(int iterations) {
  arch::InstructionStream s;
  for (int i = 0; i < iterations; ++i) {
    // Single register set: the compiler's schedule reloads in place.
    for (int j = 0; j < 4; ++j) s.push_back(arch::make_vload(kA[0] + j, kAddr));
    for (int k = 0; k < 4; ++k) s.push_back(arch::make_vldde(kB[0] + k, kAddr));
    s.push_back(arch::make_cmp(kFlag, kCounter));
    s.push_back(arch::make_branch(kFlag));
    for (int j = 0; j < 4; ++j) {
      for (int k = 0; k < 4; ++k) {
        s.push_back(arch::make_vfmad(acc_reg(j, k), kA[0] + j, kB[0] + k));
      }
    }
  }
  return s;
}

arch::InstructionStream reordered_stream(int iterations) {
  arch::InstructionStream s;
  // Prologue: B[0] first, then A[0..3] — the first vfmad can then issue
  // at cycle 6 (4 cycles after A[0]'s load).
  s.push_back(arch::make_vldde(kB[0] + 0, kAddr));
  for (int j = 0; j < 4; ++j) s.push_back(arch::make_vload(kA[0] + j, kAddr));

  for (int i = 0; i < iterations; ++i) {
    const int p = i % 2;      // current register parity
    const int q = 1 - p;      // next iteration's parity
    const bool last = (i + 1 == iterations);

    // FMAs walk k-major so each B[k] has its 4-cycle load-to-use
    // distance; P1 partners ride in the FMAs' shadow.
    auto fma = [&s, p](int j, int k) {
      s.push_back(arch::make_vfmad(acc_reg(j, k), kA[p] + j, kB[p] + k));
    };

    fma(0, 0);
    s.push_back(arch::make_vldde(kB[p] + 1, kAddr));
    fma(1, 0);
    s.push_back(arch::make_vldde(kB[p] + 2, kAddr));
    fma(2, 0);
    s.push_back(arch::make_vldde(kB[p] + 3, kAddr));
    fma(3, 0);
    if (!last) s.push_back(arch::make_vload(kA[q] + 0, kAddr));
    fma(0, 1);
    if (!last) s.push_back(arch::make_vload(kA[q] + 1, kAddr));
    fma(1, 1);
    if (!last) s.push_back(arch::make_vload(kA[q] + 2, kAddr));
    fma(2, 1);
    if (!last) s.push_back(arch::make_vload(kA[q] + 3, kAddr));
    fma(3, 1);
    if (!last) s.push_back(arch::make_vldde(kB[q] + 0, kAddr));
    fma(0, 2);
    if (!last) s.push_back(arch::make_cmp(kFlag, kCounter));
    fma(1, 2);
    fma(2, 2);
    fma(3, 2);
    fma(0, 3);
    fma(1, 3);
    fma(2, 3);
    fma(3, 3);
    if (!last) s.push_back(arch::make_branch(kFlag));
  }
  return s;
}

double ee_original_closed_form() { return 16.0 / 26.0; }

std::uint64_t cycles_reordered_closed_form(int iterations) {
  if (iterations <= 0) return 0;
  return 5 + static_cast<std::uint64_t>(iterations - 1) * 17 + 16;
}

double ee_reordered_closed_form(std::int64_t ni) {
  const int n = inner_iterations_for_channels(ni);
  if (n <= 0) return 0.0;
  return static_cast<double>(n) * 16.0 /
         static_cast<double>(cycles_reordered_closed_form(n));
}

int inner_iterations_for_channels(std::int64_t ni) {
  return static_cast<int>(std::max<std::int64_t>(ni / 8, 1));
}

double simulated_ee(std::int64_t ni, bool reordered) {
  const int n = inner_iterations_for_channels(ni);
  DualPipelineSimulator sim;
  const auto stream = reordered ? reordered_stream(n) : original_stream(n);
  return sim.simulate(stream).execution_efficiency();
}

}  // namespace swdnn::timing
