#pragma once
// Instruction streams for the register-blocked GEMM inner loop.
//
// The inner kernel computes a 4x4 outer-product update: 16 vfmad on 4
// image vectors A[0..3] and 4 replicated filter vectors B[0..3] (the
// rbB=16, rbNo=4 register blocking of Eq. 5 — 16 batch elements are four
// 4-lane vectors). One loop iteration therefore needs 8 loads, a compare,
// a branch, and 16 vfmads.
//
// Two schedules are provided:
//   * original_stream  — the compiler's order (Fig. 6 left): all loads,
//     then the loop test, then the FMAs. 26 cycles per iteration.
//   * reordered_stream — the paper's Section VI schedule (Fig. 6 right):
//     B[1..3] of the current iteration and A'[0..3], B'[0] of the next
//     iteration are dual-issued in the shadow of the FMAs, giving a
//     5-cycle prologue, 17-cycle steady-state iterations, and a 16-cycle
//     exit: cycles(n) = 5 + (n-1)*17 + 16.

#include <cstdint>

#include "src/arch/isa.h"
#include "src/timing/pipeline.h"

namespace swdnn::timing {

/// The compiler-ordered inner loop, unrolled for `iterations`.
arch::InstructionStream original_stream(int iterations);

/// The hand-reordered inner loop, unrolled for `iterations`.
arch::InstructionStream reordered_stream(int iterations);

/// Paper closed form: EE of the original schedule (16/26 ~ 61.5%).
double ee_original_closed_form();

/// Paper closed form: cycles of the reordered schedule for n iterations.
std::uint64_t cycles_reordered_closed_form(int iterations);

/// Paper closed form: EE(Ni) = (Ni/8*16) / (5 + (Ni/8-1)*17 + 16).
/// Ni is the input-channel count; each CPE's inner loop runs Ni/8
/// iterations (its column of the mesh holds Ni/8 channels).
double ee_reordered_closed_form(std::int64_t ni);

/// Iteration count of the inner loop for a given input-channel count.
int inner_iterations_for_channels(std::int64_t ni);

/// Simulated EE for a schedule at a given channel count — what the
/// performance model uses. `reordered` selects the schedule.
double simulated_ee(std::int64_t ni, bool reordered);

}  // namespace swdnn::timing
