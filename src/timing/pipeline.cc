#include "src/timing/pipeline.h"

#include <algorithm>
#include <array>

namespace swdnn::timing {

namespace {

constexpr int kMaxRegisters = 256;

bool is_branch(const arch::Instruction& inst) {
  return inst.op == arch::Opcode::kBranch;
}

bool can_fill_p0(const arch::Instruction& inst) {
  const auto cls = arch::op_info(inst.op).pipeline;
  return cls == arch::PipelineClass::kP0Only ||
         cls == arch::PipelineClass::kEither;
}

bool can_fill_p1(const arch::Instruction& inst) {
  const auto cls = arch::op_info(inst.op).pipeline;
  return cls == arch::PipelineClass::kP1Only ||
         cls == arch::PipelineClass::kEither;
}

/// True when `younger` has a RAW or WAW hazard on `older`.
bool pair_hazard(const arch::Instruction& older,
                 const arch::Instruction& younger) {
  if (older.dst >= 0) {
    if (younger.src0 == older.dst || younger.src1 == older.dst ||
        younger.src2 == older.dst) {
      return true;  // RAW
    }
    if (younger.dst == older.dst) return true;  // WAW
  }
  return false;
}

struct Scoreboard {
  std::array<std::uint64_t, kMaxRegisters> ready_at{};  // zero = ready

  bool operands_ready(const arch::Instruction& inst,
                      std::uint64_t cycle) const {
    for (int r : {inst.src0, inst.src1, inst.src2}) {
      if (r >= 0 && ready_at[static_cast<std::size_t>(r)] > cycle) {
        return false;
      }
    }
    return true;
  }

  void retire(const arch::Instruction& inst, std::uint64_t issue_cycle) {
    if (inst.dst >= 0) {
      ready_at[static_cast<std::size_t>(inst.dst)] =
          issue_cycle +
          static_cast<std::uint64_t>(arch::op_info(inst.op).latency_cycles);
    }
  }
};

}  // namespace

DualPipelineSimulator::DualPipelineSimulator(const arch::Sw26010Spec& spec)
    : spec_(spec) {}

SimResult DualPipelineSimulator::simulate(
    const arch::InstructionStream& stream, IssueTrace* trace) const {
  SimResult result;
  Scoreboard board;
  std::size_t next = 0;
  std::uint64_t cycle = 0;

  while (next < stream.size()) {
    ++cycle;
    const arch::Instruction& older = stream[next];
    if (!board.operands_ready(older, cycle)) {
      ++result.stall_cycles;
      continue;
    }

    board.retire(older, cycle);
    if (older.op == arch::Opcode::kVfmad) ++result.vfmad_count;
    result.cycles = cycle;
    const std::size_t older_index = next;
    ++next;

    // Try to dual-issue the next instruction into the P1 slot (older
    // fills P0). Control transfers always issue alone.
    bool paired = false;
    if (!is_branch(older) && can_fill_p0(older) && next < stream.size()) {
      const arch::Instruction& younger = stream[next];
      if (!is_branch(younger) && can_fill_p1(younger) &&
          !pair_hazard(older, younger) &&
          board.operands_ready(younger, cycle)) {
        board.retire(younger, cycle);
        if (younger.op == arch::Opcode::kVfmad) ++result.vfmad_count;
        ++result.issued_p0;  // older took the P0 slot
        ++result.issued_p1;  // younger took the P1 slot
        ++result.dual_issue_cycles;
        if (trace) {
          trace->push_back({cycle, older_index, '0'});
          trace->push_back({cycle, next, '1'});
        }
        ++next;
        paired = true;
      }
    }
    if (!paired) {
      // Issued alone: a P0-only op occupies P0; anything else (memory,
      // control, scalar) occupies P1 so P0 stays free for FP work.
      const bool on_p0 =
          arch::op_info(older.op).pipeline == arch::PipelineClass::kP0Only;
      if (on_p0) {
        ++result.issued_p0;
      } else {
        ++result.issued_p1;
      }
      if (trace) trace->push_back({cycle, older_index, on_p0 ? '0' : '1'});
    }
  }
  return result;
}

}  // namespace swdnn::timing
