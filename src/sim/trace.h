#pragma once
// Event tracing for simulated kernel launches.
//
// When a tracer is attached to a MeshExecutor, every DMA transfer,
// register-communication operation, and barrier is recorded with its
// CPE id and logical begin/end cycles. The trace exports to the Chrome
// tracing JSON format (chrome://tracing, Perfetto), giving the same
// view a performance engineer would use on real silicon: per-CPE
// timelines showing where cycles go — exactly the methodology story the
// paper tells in prose.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace swdnn::sim {

struct TraceEvent {
  int cpe = 0;
  std::string category;  ///< "dma", "bus", "sync", "compute",
                         ///< "plan_cache", "layer"
  std::string name;
  std::uint64_t begin_cycle = 0;
  std::uint64_t end_cycle = 0;
};

class EventTracer {
 public:
  /// Thread-safe append (CPE threads record concurrently).
  void record(int cpe, std::string category, std::string name,
              std::uint64_t begin_cycle, std::uint64_t end_cycle);

  /// Zero-duration marker — dispatch-level happenings with no cycle
  /// extent, e.g. the API's "plan_cache" hit/miss/fallback events.
  void record_instant(int cpe, std::string category, std::string name,
                      std::uint64_t cycle = 0);

  std::vector<TraceEvent> events() const;
  std::size_t size() const;
  void clear();

  /// Chrome tracing "traceEvents" JSON. Cycles are converted to
  /// microseconds at `clock_ghz`; each CPE renders as a thread.
  std::string to_chrome_json(double clock_ghz) const;

  /// Writes the JSON to a file; throws std::runtime_error on failure.
  void write_chrome_json(const std::string& path, double clock_ghz) const;

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

}  // namespace swdnn::sim
