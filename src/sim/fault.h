#pragma once
// Deterministic fault injection for the simulated SW26010.
//
// A production deployment cannot assume a perfect machine: DMA engines
// drop or misalign transfers, LDM cells lose capacity or flip bits,
// buses stall, and NoC links die. This module lets tests and resilience
// campaigns inject exactly those failures into the simulator in a
// reproducible way, so the retry/fallback machinery above the simulator
// can be exercised and verified.
//
// Determinism is the load-bearing property. The mesh runs 64 CPE
// threads concurrently, so a shared RNG stream would make fault
// placement depend on thread interleaving. Instead, every decision is a
// pure function of (plan seed, fault site, unit id, per-unit sequence
// number): each site keeps an atomic per-unit counter, and the decision
// draws from a util::Rng seeded by a hash of those four values. The
// same plan over the same workload therefore yields the same FaultEvent
// trace on every run, regardless of scheduling.
//
// Fault sites never throw inside CPE kernels (MeshExecutor aborts on a
// throwing kernel, by design): a fault either degrades timing, retries
// in place under the executor's RetryPolicy, or marks the launch failed
// so the host-side driver can fall back after the launch drains.

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace swdnn::sim {

enum class FaultSite {
  kDmaTransfer = 0,  ///< a DMA request's payload fails to land
  kDmaMisalign,      ///< a request is serviced at the misaligned rate
  kLdmCapacity,      ///< part of a CPE's LDM arena is marked dead
  kLdmBitFlip,       ///< a freshly allocated LDM word is corrupted
  kRegcommStall,     ///< a bus put/get stalls for extra cycles
  kNocLink,          ///< the link to one core group is down
};

const char* fault_site_name(FaultSite site);

/// One injected fault, in the order decided (not observed): `unit` is
/// the CPE id for on-mesh sites and the core-group id for kNocLink;
/// `sequence` is the per-(site, unit) injection index.
struct FaultEvent {
  FaultSite site = FaultSite::kDmaTransfer;
  int unit = 0;
  std::uint64_t sequence = 0;
  std::string detail;
};

/// Configuration of an injection campaign. Rates are per-operation
/// probabilities in [0, 1]; the deterministic `fail_first_dma` knob
/// faults the first N DMA transfer attempts on every CPE and is what
/// the retry tests use (N faults, then guaranteed success).
struct FaultPlan {
  std::uint64_t seed = 0;

  double dma_fault_rate = 0.0;
  std::uint64_t fail_first_dma = 0;
  double dma_misalign_rate = 0.0;

  std::size_t ldm_capacity_loss_bytes = 0;
  double ldm_bitflip_rate = 0.0;

  double regcomm_stall_rate = 0.0;
  std::uint64_t regcomm_stall_cycles = 64;

  std::vector<int> dead_noc_links;  ///< core groups with a severed link
};

/// Bounded retry-with-backoff applied at the fault site (one DMA tile
/// transfer), not the whole launch: attempt k of a faulting transfer
/// charges `backoff_cycles << (k-1)` before re-issuing. A transfer that
/// faults on all `max_attempts` tries marks the launch failed.
struct RetryPolicy {
  int max_attempts = 1;             ///< 1 = no retry
  std::uint64_t backoff_cycles = 16;
};

/// Backoff charged before re-issuing attempt `attempt` (1-based) of a
/// faulting transfer: policy.backoff_cycles << (attempt - 1), with the
/// exponent capped at 63 and the result saturating at UINT64_MAX. The
/// naive shift is undefined behaviour once attempt exceeds 64 (any
/// RetryPolicy with a large max_attempts), and silently wraps before
/// that; a saturated backoff just pins the CPE's cycle counter, which
/// charge_cycles also saturates.
std::uint64_t retry_backoff_cycles(const RetryPolicy& policy, int attempt);

/// Thrown by host-side drivers when a launch (or a NoC route) reports
/// an injected fault it could not absorb. `persistent()` distinguishes
/// exhausted-retries / dead-link faults from single transient hits.
class LaunchFault : public std::runtime_error {
 public:
  LaunchFault(const std::string& what, bool persistent)
      : std::runtime_error(what), persistent_(persistent) {}
  bool persistent() const { return persistent_; }

 private:
  bool persistent_;
};

/// The stateful injection engine for one campaign. Attach to a
/// MeshExecutor (and/or NocSystem); poll_* methods advance the per-unit
/// sequence counter for their site, decide deterministically, and log a
/// FaultEvent when they fire. Thread-safe: CPE threads poll
/// concurrently.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  /// Does this DMA transfer attempt on `cpe` fail?
  bool poll_dma_fault(int cpe);

  /// Is this DMA request forced to the misaligned bandwidth curve?
  bool poll_dma_misalign(int cpe);

  /// Bytes of `cpe`'s LDM arena that are dead this campaign.
  std::size_t ldm_capacity_loss() const {
    return plan_.ldm_capacity_loss_bytes;
  }

  /// Records a capacity-fault event for `cpe` (called by the allocator
  /// when an allocation lands in the dead region).
  void report_ldm_capacity_fault(int cpe, std::size_t requested_bytes);

  /// Does this LDM allocation on `cpe` suffer a bit flip?
  bool poll_ldm_bitflip(int cpe);

  /// Cycles this bus operation on `cpe` stalls (0 = no stall).
  std::uint64_t poll_regcomm_stall(int cpe);

  /// Is the NoC link to core group `cg` severed? Records an event per
  /// query that hits a dead link.
  bool poll_noc_link(int cg);

  /// All injected events, sorted by (site, unit, sequence) so two runs
  /// of the same campaign compare equal independent of thread timing.
  std::vector<FaultEvent> events() const;

  /// Number of injected events at `site`.
  std::uint64_t count(FaultSite site) const;

  std::uint64_t total_events() const;

  /// Forgets events and resets every sequence counter: the next poll
  /// replays the campaign from the start.
  void reset();

 private:
  static constexpr int kNumSites = 6;
  static constexpr int kMaxUnits = 64;

  /// Pure function of (seed, site, unit, seq): true with probability
  /// `rate`.
  bool decide(FaultSite site, int unit, std::uint64_t seq, double rate) const;

  std::uint64_t next_sequence(FaultSite site, int unit);
  void record(FaultSite site, int unit, std::uint64_t seq,
              std::string detail);

  FaultPlan plan_;
  std::array<std::array<std::atomic<std::uint64_t>, kMaxUnits>, kNumSites>
      sequence_{};
  std::array<std::atomic<std::uint64_t>, kNumSites> counts_{};
  mutable std::mutex mutex_;
  std::vector<FaultEvent> events_;
};

}  // namespace swdnn::sim
