#include "src/sim/regcomm.h"

namespace swdnn::sim {

void TransferBuffer::put(const Vec4& value) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_full_.wait(lock, [this] { return queue_.size() < capacity_; });
  queue_.push_back(value);
  lock.unlock();
  not_empty_.notify_one();
}

Vec4 TransferBuffer::get() {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait(lock, [this] { return !queue_.empty(); });
  Vec4 value = queue_.front();
  queue_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return value;
}

void TransferBuffer::put_packed(std::span<const double> data) {
  if (data.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t off = 0; off < data.size(); off += 4) {
      Vec4 v;
      for (int l = 0; l < 4; ++l) {
        const std::size_t idx = off + static_cast<std::size_t>(l);
        v.lane[l] = idx < data.size() ? data[idx] : 0.0;
      }
      queue_.push_back(v);
    }
  }
  not_empty_.notify_one();
}

void TransferBuffer::get_unpacked(std::span<double> out) {
  std::size_t off = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (off < out.size()) {
    not_empty_.wait(lock, [this] { return !queue_.empty(); });
    while (!queue_.empty() && off < out.size()) {
      const Vec4 v = queue_.front();
      queue_.pop_front();
      for (int l = 0; l < 4; ++l) {
        const std::size_t idx = off + static_cast<std::size_t>(l);
        if (idx < out.size()) out[idx] = v.lane[l];
      }
      off += 4;
    }
    // Wake reference-path senders parked on the slot capacity before we
    // wait for the rest of the span, or a mixed put/get_unpacked pair
    // would deadlock at the buffer depth.
    not_full_.notify_all();
  }
}

void TransferBuffer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  queue_.clear();
}

std::size_t TransferBuffer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace swdnn::sim
