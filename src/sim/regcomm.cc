#include "src/sim/regcomm.h"

namespace swdnn::sim {

void TransferBuffer::put(const Vec4& value) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_full_.wait(lock, [this] { return queue_.size() < capacity_; });
  queue_.push_back(value);
  lock.unlock();
  not_empty_.notify_one();
}

Vec4 TransferBuffer::get() {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait(lock, [this] { return !queue_.empty(); });
  Vec4 value = queue_.front();
  queue_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return value;
}

std::size_t TransferBuffer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace swdnn::sim
