#pragma once
// Register communication: 256-bit messages over row/column buses.
//
// SW26010's CPE mesh has 8 row buses and 8 column buses. A sender Puts a
// 256-bit register into the Transfer Buffer of a receiver on its own
// row/column; the receiver Gets it into its register file. Put blocks
// when the receiver's buffer is full, Get blocks when it is empty —
// exactly the producer-consumer discipline the paper describes. The
// hardware also offers row/column broadcast, which the vldr/vldc-based
// kernels use (Section V-C).
//
// The simulator implements a TransferBuffer as a bounded MPSC queue. A
// CPE owns two receive buffers: one fed by its row bus, one by its
// column bus. Message order on one bus is FIFO per sender and, because a
// bus serializes, FIFO globally per buffer.
//
// Two access disciplines share the queue:
//   * the Vec4 reference path (put/get) — one lock acquisition and one
//     condition-variable round-trip per 256-bit message, back-pressured
//     at the hardware buffer depth; and
//   * the bulk span path (put_packed/get_unpacked) — a whole tile's
//     worth of messages moves under a single lock acquisition. Bulk
//     puts deliberately ignore the slot capacity: blocking on a full
//     buffer is host-scheduling behaviour only (no cycles are ever
//     charged for it), so batching past the depth changes no modeled
//     observable while eliminating the dominant host cost of the bus.
//     Cycle and message accounting stay per-Vec4 in the caller.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <span>

namespace swdnn::sim {

/// One 256-bit vector register: 4 doubles.
struct Vec4 {
  double lane[4] = {0, 0, 0, 0};

  static Vec4 splat(double v) { return Vec4{{v, v, v, v}}; }

  Vec4& fma(const Vec4& a, const Vec4& b) {
    for (int i = 0; i < 4; ++i) lane[i] += a.lane[i] * b.lane[i];
    return *this;
  }
  Vec4 operator+(const Vec4& o) const {
    Vec4 r;
    for (int i = 0; i < 4; ++i) r.lane[i] = lane[i] + o.lane[i];
    return r;
  }
  Vec4 operator*(const Vec4& o) const {
    Vec4 r;
    for (int i = 0; i < 4; ++i) r.lane[i] = lane[i] * o.lane[i];
    return r;
  }
};

class TransferBuffer {
 public:
  explicit TransferBuffer(std::size_t capacity) : capacity_(capacity) {}

  /// Blocking bounded push (sender side of a bus Put).
  void put(const Vec4& value);

  /// Blocking pop (receiver's Get into its register file).
  Vec4 get();

  /// Bulk sender: packs `data` into ceil(n/4) Vec4 messages (trailing
  /// lanes zero, matching the reference path's packing) and enqueues
  /// them all under one lock acquisition. Never blocks on capacity —
  /// see the header comment for why that is observationally safe.
  void put_packed(std::span<const double> data);

  /// Bulk receiver: pops ceil(n/4) messages under one lock acquisition
  /// (waiting while the queue is empty) and unpacks them into `out`,
  /// discarding the zero-padding lanes of the final message.
  void get_unpacked(std::span<double> out);

  /// Drops any buffered messages (launch-boundary reset).
  void clear();

  /// Number of messages currently buffered (for tests).
  std::size_t size() const;

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Vec4> queue_;
};

}  // namespace swdnn::sim
