#include "src/sim/executor.h"

#include "src/arch/isa.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>

namespace swdnn::sim {

CpeContext::CpeContext(MeshExecutor& exec, CpeMesh& mesh, DmaEngine& dma,
                       int row, int col)
    : exec_(exec), mesh_(mesh), dma_(dma), row_(row), col_(col) {}

namespace {
// Trace helper: logical timeline = the CPE's compute-cycle counter.
void trace_event(MeshExecutor& exec, CpeCell& cell, int cpe,
                 const char* category, std::string name,
                 std::uint64_t duration_cycles) {
  if (EventTracer* tracer = exec.tracer()) {
    const std::uint64_t now = cell.compute_cycles;
    tracer->record(cpe, category, std::move(name), now,
                   now + duration_cycles);
  }
}
}  // namespace

void CpeContext::fail_launch(const std::string& message, bool persistent) {
  if (persistent) exec_.persistent_.store(true, std::memory_order_relaxed);
  bool expected = false;
  if (exec_.failed_.compare_exchange_strong(expected, true)) {
    std::lock_guard<std::mutex> lock(exec_.failure_mutex_);
    exec_.failure_ = message;
  }
  trace_event(exec_, cell(), id(), "fault", message, 1);
}

// Computes the Table II cost of one request and accounts it into this
// CPE's private shard; the executor folds the shards into the shared
// engine once per launch (contention relief: no shared atomics on the
// per-transfer path).
std::uint64_t CpeContext::record_dma(std::uint64_t bytes,
                                     std::int64_t block_bytes,
                                     perf::DmaDirection dir, bool aligned) {
  const std::uint64_t cost = dma_.cost(bytes, block_bytes, dir, aligned);
  cell().dma.add(bytes, dir, aligned, cost);
  return cost;
}

// Polls the attached fault campaign for one DMA tile transfer and
// applies the executor's RetryPolicy in place: a faulting attempt is
// re-issued (re-charged against the DMA engine, with exponential
// backoff cycles) until it lands or attempts run out. Returns true when
// the payload may be copied — on exhaustion the launch is marked failed
// and the copy is skipped, exactly like a real engine reporting a
// completion error. Never throws: peers may be blocked on barriers.
bool CpeContext::dma_attempt(std::uint64_t bytes, std::int64_t block_bytes,
                             perf::DmaDirection dir, bool aligned) {
  FaultInjector* fi = exec_.fault_injector();
  if (fi == nullptr) return true;
  const RetryPolicy& rp = exec_.retry_policy();
  const int max_attempts = rp.max_attempts < 1 ? 1 : rp.max_attempts;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (!fi->poll_dma_fault(id())) return true;
    trace_event(exec_, cell(), id(), "fault",
                "dma fault (attempt " + std::to_string(attempt) + ")", 1);
    if (attempt == max_attempts) break;
    // Retry the tile: back off, then re-occupy the engine for the
    // repeated transfer.
    charge_cycles(retry_backoff_cycles(rp, attempt));
    record_dma(bytes, block_bytes, dir, aligned);
    exec_.dma_retries_.fetch_add(1, std::memory_order_relaxed);
  }
  fail_launch("persistent DMA fault on CPE " + std::to_string(id()) +
                  " after " + std::to_string(max_attempts) + " attempts",
              /*persistent=*/max_attempts > 1);
  return false;
}

// Whether this request is forced onto the misaligned bandwidth curve by
// an injected alignment fault.
bool CpeContext::dma_aligned(std::int64_t bytes) {
  bool aligned = block_aligned(bytes);
  FaultInjector* fi = exec_.fault_injector();
  if (aligned && fi != nullptr && fi->poll_dma_misalign(id())) {
    aligned = false;
  }
  return aligned;
}

void CpeContext::dma_get(std::span<const double> src, std::span<double> dst) {
  const std::int64_t bytes = static_cast<std::int64_t>(src.size_bytes());
  const bool aligned = dma_aligned(bytes);
  const std::uint64_t cost =
      record_dma(src.size_bytes(), bytes, perf::DmaDirection::kGet, aligned);
  trace_event(exec_, cell(), id(), "dma",
              "get " + std::to_string(bytes) + "B", cost);
  if (!dma_attempt(src.size_bytes(), bytes, perf::DmaDirection::kGet,
                   aligned)) {
    return;
  }
  std::copy(src.begin(), src.end(), dst.begin());
}

void CpeContext::dma_put(std::span<const double> src, std::span<double> dst) {
  const std::int64_t bytes = static_cast<std::int64_t>(src.size_bytes());
  const bool aligned = dma_aligned(bytes);
  const std::uint64_t cost =
      record_dma(src.size_bytes(), bytes, perf::DmaDirection::kPut, aligned);
  trace_event(exec_, cell(), id(), "dma",
              "put " + std::to_string(bytes) + "B", cost);
  if (!dma_attempt(src.size_bytes(), bytes, perf::DmaDirection::kPut,
                   aligned)) {
    return;
  }
  std::copy(src.begin(), src.end(), dst.begin());
}

void CpeContext::dma_get_strided(const double* src_base, std::int64_t nblocks,
                                 std::int64_t block_elems,
                                 std::int64_t stride_elems,
                                 std::span<double> dst) {
  const std::int64_t block_bytes = block_elems * 8;
  const bool aligned = dma_aligned(block_bytes);
  const std::uint64_t cost = record_dma(
      static_cast<std::uint64_t>(nblocks * block_bytes), block_bytes,
      perf::DmaDirection::kGet, aligned);
  trace_event(exec_, cell(), id(), "dma",
              "get-strided " + std::to_string(nblocks) + "x" +
                  std::to_string(block_bytes) + "B",
              cost);
  if (!dma_attempt(static_cast<std::uint64_t>(nblocks * block_bytes),
                   block_bytes, perf::DmaDirection::kGet, aligned)) {
    return;
  }
  for (std::int64_t b = 0; b < nblocks; ++b) {
    const double* src = src_base + b * stride_elems;
    std::copy(src, src + block_elems, dst.begin() + b * block_elems);
  }
}

void CpeContext::dma_put_strided(std::span<const double> src, double* dst_base,
                                 std::int64_t nblocks,
                                 std::int64_t block_elems,
                                 std::int64_t stride_elems) {
  const std::int64_t block_bytes = block_elems * 8;
  const bool aligned = dma_aligned(block_bytes);
  const std::uint64_t cost = record_dma(
      static_cast<std::uint64_t>(nblocks * block_bytes), block_bytes,
      perf::DmaDirection::kPut, aligned);
  trace_event(exec_, cell(), id(), "dma",
              "put-strided " + std::to_string(nblocks) + "x" +
                  std::to_string(block_bytes) + "B",
              cost);
  if (!dma_attempt(static_cast<std::uint64_t>(nblocks * block_bytes),
                   block_bytes, perf::DmaDirection::kPut, aligned)) {
    return;
  }
  for (std::int64_t b = 0; b < nblocks; ++b) {
    std::copy(src.begin() + b * block_elems,
              src.begin() + (b + 1) * block_elems, dst_base + b * stride_elems);
  }
}

// Injected bus stall: the operation still completes, later.
void CpeContext::maybe_stall_bus() {
  if (FaultInjector* fi = exec_.fault_injector()) {
    if (const std::uint64_t stall = fi->poll_regcomm_stall(id())) {
      trace_event(exec_, cell(), id(), "fault",
                  "bus stall " + std::to_string(stall) + " cycles", stall);
      charge_cycles(stall);
    }
  }
}

void CpeContext::put_row(int dst_col, const Vec4& value) {
  maybe_stall_bus();
  mesh_.cell(row_, dst_col).row_buffer.put(value);
  cell().regcomm_messages += 1;
  charge_cycles(1);  // a put issues in one cycle on P1
}

void CpeContext::put_col(int dst_row, const Vec4& value) {
  maybe_stall_bus();
  mesh_.cell(dst_row, col_).col_buffer.put(value);
  cell().regcomm_messages += 1;
  charge_cycles(1);
}

void CpeContext::bcast_row(const Vec4& value) {
  maybe_stall_bus();
  trace_event(exec_, cell(), id(), "bus", "bcast-row", 1);
  for (int c = 0; c < mesh_.cols(); ++c) {
    if (c == col_) continue;
    mesh_.cell(row_, c).row_buffer.put(value);
  }
  // Hardware multicast: one bus transaction regardless of fan-out.
  cell().regcomm_messages += static_cast<std::uint64_t>(mesh_.cols() - 1);
  charge_cycles(1);
}

void CpeContext::bcast_col(const Vec4& value) {
  maybe_stall_bus();
  trace_event(exec_, cell(), id(), "bus", "bcast-col", 1);
  for (int r = 0; r < mesh_.rows(); ++r) {
    if (r == row_) continue;
    mesh_.cell(r, col_).col_buffer.put(value);
  }
  cell().regcomm_messages += static_cast<std::uint64_t>(mesh_.rows() - 1);
  charge_cycles(1);
}

Vec4 CpeContext::get_row() {
  charge_cycles(static_cast<std::uint64_t>(
      arch::op_info(arch::Opcode::kGetr).latency_cycles));
  return cell().row_buffer.get();
}

Vec4 CpeContext::get_col() {
  charge_cycles(static_cast<std::uint64_t>(
      arch::op_info(arch::Opcode::kGetc).latency_cycles));
  return cell().col_buffer.get();
}

// The bulk primitives charge per-message accounting in exactly the
// order the Vec4 loop does — one stall poll, one trace event, one
// message count, one issue cycle per 256-bit message — so fault
// placement, traces, and LaunchStats are bitwise what the reference
// path produces. Only the transfer-buffer traffic is batched.

void CpeContext::bcast_row_span(std::span<const double> data) {
  const std::size_t messages = (data.size() + 3) / 4;
  const auto fanout = static_cast<std::uint64_t>(mesh_.cols() - 1);
  for (std::size_t m = 0; m < messages; ++m) {
    maybe_stall_bus();
    trace_event(exec_, cell(), id(), "bus", "bcast-row", 1);
    cell().regcomm_messages += fanout;
    charge_cycles(1);
  }
  for (int c = 0; c < mesh_.cols(); ++c) {
    if (c == col_) continue;
    mesh_.cell(row_, c).row_buffer.put_packed(data);
  }
}

void CpeContext::bcast_col_span(std::span<const double> data) {
  const std::size_t messages = (data.size() + 3) / 4;
  const auto fanout = static_cast<std::uint64_t>(mesh_.rows() - 1);
  for (std::size_t m = 0; m < messages; ++m) {
    maybe_stall_bus();
    trace_event(exec_, cell(), id(), "bus", "bcast-col", 1);
    cell().regcomm_messages += fanout;
    charge_cycles(1);
  }
  for (int r = 0; r < mesh_.rows(); ++r) {
    if (r == row_) continue;
    mesh_.cell(r, col_).col_buffer.put_packed(data);
  }
}

void CpeContext::recv_row_span(std::span<double> out) {
  if (out.empty()) return;
  const std::uint64_t messages = (out.size() + 3) / 4;
  charge_cycles(messages *
                static_cast<std::uint64_t>(
                    arch::op_info(arch::Opcode::kGetr).latency_cycles));
  cell().row_buffer.get_unpacked(out);
}

void CpeContext::recv_col_span(std::span<double> out) {
  if (out.empty()) return;
  const std::uint64_t messages = (out.size() + 3) / 4;
  charge_cycles(messages *
                static_cast<std::uint64_t>(
                    arch::op_info(arch::Opcode::kGetc).latency_cycles));
  cell().col_buffer.get_unpacked(out);
}

void CpeContext::sync() {
  trace_event(exec_, cell(), id(), "sync", "barrier", 1);
  exec_.barrier_.arrive_and_wait();
}

void CpeContext::charge_flops(std::uint64_t flops) {
  cell().flops += flops;
  const auto per_cycle =
      static_cast<std::uint64_t>(spec().flops_per_cycle_per_cpe());
  charge_cycles((flops + per_cycle - 1) / per_cycle);
}

void CpeContext::charge_cycles(std::uint64_t cycles) {
  std::uint64_t& cc = cell().compute_cycles;
  cc = cycles > UINT64_MAX - cc ? UINT64_MAX : cc + cycles;
}

MeshExecutor::MeshExecutor(const arch::Sw26010Spec& spec)
    : spec_(spec), mesh_(spec_), dma_(spec_), barrier_(mesh_.num_cpes()) {}

MeshExecutor::~MeshExecutor() { shutdown_pool(); }

void MeshExecutor::prepare_launch() {
  mesh_.reset_for_launch();
  dma_.reset();
  failed_.store(false);
  persistent_.store(false);
  dma_retries_.store(0);
  failure_.clear();
  // (Re-)attach or detach the fault campaign on every launch: the mesh
  // persists across launches and across injector changes.
  for (int r = 0; r < mesh_.rows(); ++r) {
    for (int c = 0; c < mesh_.cols(); ++c) {
      const int cpe = r * mesh_.cols() + c;
      if (injector_ == nullptr) {
        mesh_.cell(r, c).ldm.attach_faults(nullptr, cpe, nullptr);
        continue;
      }
      mesh_.cell(r, c).ldm.attach_faults(
          injector_, cpe, [this](const std::string& msg) {
            // LDM faults are always persistent for the launch: the
            // arena stays degraded for its whole lifetime.
            persistent_.store(true, std::memory_order_relaxed);
            bool expected = false;
            if (failed_.compare_exchange_strong(expected, true)) {
              std::lock_guard<std::mutex> lock(failure_mutex_);
              failure_ = msg;
            }
          });
    }
  }
}

void MeshExecutor::execute_cell(const Kernel& kernel, int row, int col) {
  CpeContext ctx(*this, mesh_, dma_, row, col);
  try {
    kernel(ctx);
  } catch (const std::exception& e) {
    // A throwing CPE kernel cannot be unwound safely: peers may be
    // blocked on the barrier or on transfer buffers this CPE feeds.
    std::fprintf(stderr, "fatal: CPE(%d,%d) kernel threw: %s\n", row, col,
                 e.what());
    std::abort();
  }
}

void MeshExecutor::worker_loop(int row, int col) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const Kernel* kernel = nullptr;
    {
      std::unique_lock<std::mutex> lock(pool_mutex_);
      start_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      kernel = pending_;
    }
    execute_cell(*kernel, row, col);
    {
      std::lock_guard<std::mutex> lock(pool_mutex_);
      if (++done_count_ == mesh_.num_cpes()) done_cv_.notify_all();
    }
  }
}

void MeshExecutor::run_on_pool(const Kernel& kernel) {
  if (workers_.empty()) {
    workers_.reserve(static_cast<std::size_t>(mesh_.num_cpes()));
    for (int r = 0; r < mesh_.rows(); ++r) {
      for (int c = 0; c < mesh_.cols(); ++c) {
        workers_.emplace_back([this, r, c] { worker_loop(r, c); });
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    pending_ = &kernel;
    done_count_ = 0;
    ++generation_;
  }
  start_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(pool_mutex_);
    done_cv_.wait(lock, [&] { return done_count_ == mesh_.num_cpes(); });
    pending_ = nullptr;
  }
}

void MeshExecutor::run_spawned(const Kernel& kernel) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(mesh_.num_cpes()));
  for (int r = 0; r < mesh_.rows(); ++r) {
    for (int c = 0; c < mesh_.cols(); ++c) {
      threads.emplace_back(
          [this, &kernel, r, c] { execute_cell(kernel, r, c); });
    }
  }
  for (auto& t : threads) t.join();
}

void MeshExecutor::shutdown_pool() {
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : workers_) t.join();
  workers_.clear();
  shutdown_ = false;
}

LaunchStats MeshExecutor::run(const Kernel& kernel) {
  prepare_launch();
  const std::uint64_t faults_before =
      injector_ != nullptr ? injector_->total_events() : 0;

  if (use_pool_) {
    run_on_pool(kernel);
  } else {
    run_spawned(kernel);
  }

  // Fold the per-CPE DMA shards into the shared engine: one pass per
  // launch instead of one atomic round-trip per transfer.
  for (int id = 0; id < mesh_.num_cpes(); ++id) {
    dma_.add_shard(mesh_.cell_by_id(id).dma);
  }

  LaunchStats stats;
  stats.max_compute_cycles = mesh_.max_compute_cycles();
  stats.total_flops = mesh_.total_flops();
  stats.regcomm_messages = mesh_.total_regcomm_messages();
  stats.dma = dma_.totals();
  stats.dma_seconds = dma_.modeled_seconds();
  stats.compute_seconds = static_cast<double>(stats.max_compute_cycles) /
                          (spec_.cpe_clock_ghz * 1e9);
  stats.failed = failed_.load();
  stats.persistent_fault = persistent_.load();
  stats.dma_retries = dma_retries_.load();
  if (stats.failed) {
    std::lock_guard<std::mutex> lock(failure_mutex_);
    stats.failure = failure_;
  }
  if (injector_ != nullptr) {
    stats.fault_events = injector_->total_events() - faults_before;
  }
  return stats;
}

}  // namespace swdnn::sim
