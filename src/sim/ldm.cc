#include "src/sim/ldm.h"

#include <string>

namespace swdnn::sim {

LdmOverflow::LdmOverflow(std::size_t requested, std::size_t used,
                         std::size_t capacity)
    : std::runtime_error("LDM overflow: request of " +
                         std::to_string(requested) + " bytes with " +
                         std::to_string(used) + "/" +
                         std::to_string(capacity) + " bytes in use") {}

LdmAllocator::LdmAllocator(std::size_t capacity_bytes)
    : capacity_bytes_(capacity_bytes),
      arena_(new double[capacity_bytes / sizeof(double) + 1]) {}

std::span<double> LdmAllocator::alloc_doubles(std::size_t count) {
  const std::size_t bytes = count * sizeof(double);
  if (used_bytes_ + bytes > capacity_bytes_) {
    throw LdmOverflow(bytes, used_bytes_, capacity_bytes_);
  }
  double* base = arena_.get() + used_bytes_ / sizeof(double);
  used_bytes_ += bytes;
  return {base, count};
}

void LdmAllocator::reset() { used_bytes_ = 0; }

}  // namespace swdnn::sim
