#include "src/sim/ldm.h"

#include <limits>
#include <string>

#include "src/sim/fault.h"

namespace swdnn::sim {

LdmOverflow::LdmOverflow(std::size_t requested, std::size_t used,
                         std::size_t capacity)
    : std::runtime_error("LDM overflow: request of " +
                         std::to_string(requested) + " bytes with " +
                         std::to_string(used) + "/" +
                         std::to_string(capacity) + " bytes in use") {}

LdmAllocator::LdmAllocator(std::size_t capacity_bytes)
    : capacity_bytes_(capacity_bytes),
      arena_(new double[capacity_bytes / sizeof(double) + 1]) {}

std::span<double> LdmAllocator::alloc_doubles(std::size_t count) {
  const std::size_t bytes = count * sizeof(double);
  if (used_bytes_ + bytes > capacity_bytes_) {
    throw LdmOverflow(bytes, used_bytes_, capacity_bytes_);
  }
  if (injector_ != nullptr) {
    const std::size_t loss = injector_->ldm_capacity_loss();
    const std::size_t usable =
        loss < capacity_bytes_ ? capacity_bytes_ - loss : 0;
    if (used_bytes_ + bytes > usable) {
      injector_->report_ldm_capacity_fault(cpe_, bytes);
      if (on_fault_) {
        on_fault_("LDM capacity fault on CPE " + std::to_string(cpe_));
      }
    }
  }
  double* base = arena_.get() + used_bytes_ / sizeof(double);
  used_bytes_ += bytes;
  std::span<double> out{base, count};
  if (injector_ != nullptr && count > 0 && injector_->poll_ldm_bitflip(cpe_)) {
    // Simulated single-event upset caught by the (modeled) LDM parity
    // check: poison one word so silent reuse is impossible, and mark
    // the launch suspect so the driver re-executes or falls back.
    out[count / 2] = std::numeric_limits<double>::quiet_NaN();
    if (on_fault_) {
      on_fault_("LDM bit flip on CPE " + std::to_string(cpe_));
    }
  }
  return out;
}

void LdmAllocator::reset() { used_bytes_ = 0; }

void LdmAllocator::attach_faults(
    FaultInjector* injector, int cpe,
    std::function<void(const std::string&)> on_fault) {
  injector_ = injector;
  cpe_ = cpe;
  on_fault_ = std::move(on_fault);
}

}  // namespace swdnn::sim
