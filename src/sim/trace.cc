#include "src/sim/trace.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace swdnn::sim {

void EventTracer::record(int cpe, std::string category, std::string name,
                         std::uint64_t begin_cycle,
                         std::uint64_t end_cycle) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(TraceEvent{cpe, std::move(category), std::move(name),
                               begin_cycle, end_cycle});
}

std::vector<TraceEvent> EventTracer::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::size_t EventTracer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void EventTracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

std::string EventTracer::to_chrome_json(double clock_ghz) const {
  const double cycles_to_us = 1.0 / (clock_ghz * 1e3);
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const TraceEvent& e : events_) {
    if (!first) out << ",";
    first = false;
    const double ts = static_cast<double>(e.begin_cycle) * cycles_to_us;
    const double dur =
        static_cast<double>(e.end_cycle - e.begin_cycle) * cycles_to_us;
    out << "{\"name\":\"" << e.name << "\",\"cat\":\"" << e.category
        << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << e.cpe << ",\"ts\":" << ts
        << ",\"dur\":" << dur << "}";
  }
  out << "]}";
  return out.str();
}

void EventTracer::write_chrome_json(const std::string& path,
                                    double clock_ghz) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("EventTracer: cannot open " + path);
  }
  out << to_chrome_json(clock_ghz);
  if (!out) throw std::runtime_error("EventTracer: write failed");
}

}  // namespace swdnn::sim
