#include "src/sim/trace.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace swdnn::sim {

namespace {

/// JSON string escaping per RFC 8259: quote, backslash, and control
/// characters. Event names routinely carry free text ("get 256B",
/// fault diagnostics with quoted details) — emitting them raw produces
/// traces chrome://tracing refuses to load.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void EventTracer::record(int cpe, std::string category, std::string name,
                         std::uint64_t begin_cycle,
                         std::uint64_t end_cycle) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(TraceEvent{cpe, std::move(category), std::move(name),
                               begin_cycle, end_cycle});
}

void EventTracer::record_instant(int cpe, std::string category,
                                 std::string name, std::uint64_t cycle) {
  record(cpe, std::move(category), std::move(name), cycle, cycle);
}

std::vector<TraceEvent> EventTracer::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::size_t EventTracer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void EventTracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

std::string EventTracer::to_chrome_json(double clock_ghz) const {
  const double cycles_to_us = 1.0 / (clock_ghz * 1e3);
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const TraceEvent& e : events_) {
    if (!first) out << ",";
    first = false;
    const double ts = static_cast<double>(e.begin_cycle) * cycles_to_us;
    // An inverted interval (end < begin) would wrap the unsigned
    // subtraction into a ~10^19-cycle duration; clamp it to zero.
    const std::uint64_t cycles =
        e.end_cycle >= e.begin_cycle ? e.end_cycle - e.begin_cycle : 0;
    const double dur = static_cast<double>(cycles) * cycles_to_us;
    out << "{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
        << json_escape(e.category) << "\",\"ph\":\"X\",\"pid\":0,\"tid\":"
        << e.cpe << ",\"ts\":" << ts << ",\"dur\":" << dur << "}";
  }
  out << "]}";
  return out.str();
}

void EventTracer::write_chrome_json(const std::string& path,
                                    double clock_ghz) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("EventTracer: cannot open " + path);
  }
  out << to_chrome_json(clock_ghz);
  if (!out) throw std::runtime_error("EventTracer: write failed");
}

}  // namespace swdnn::sim
