#pragma once
// Per-CPE Local Directive Memory (LDM / scratch-pad) model.
//
// Each CPE owns 64 KB of software-managed fast memory. Kernels must
// explicitly place every buffer they use into LDM; this allocator
// enforces the capacity so that a blocking plan that would not fit on
// real silicon also fails in simulation (the LDM footprint check is a
// load-bearing part of the paper's Section IV blocking analysis).
//
// The allocator is a bump allocator: kernels allocate at launch and
// reset between invocations, mirroring how the real library lays out
// its double-buffered tiles once per layer call.

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>

namespace swdnn::sim {

class FaultInjector;

class LdmOverflow : public std::runtime_error {
 public:
  LdmOverflow(std::size_t requested, std::size_t used, std::size_t capacity);
};

class LdmAllocator {
 public:
  explicit LdmAllocator(std::size_t capacity_bytes);

  /// Allocates `count` doubles (8-byte aligned by construction). Throws
  /// LdmOverflow when the arena would exceed its capacity.
  std::span<double> alloc_doubles(std::size_t count);

  /// Releases everything allocated so far.
  void reset();

  std::size_t bytes_used() const { return used_bytes_; }
  std::size_t bytes_capacity() const { return capacity_bytes_; }
  std::size_t bytes_free() const { return capacity_bytes_ - used_bytes_; }

  /// Attaches a fault campaign: a capacity-loss fault shrinks the
  /// usable arena (allocations crossing into the dead region report a
  /// kLdmCapacity fault through `on_fault` but are still served from
  /// the physical arena — CPE kernels must never throw mid-launch), and
  /// bit-flip faults poison one word of a fresh allocation and report
  /// it. `on_fault(message)` marks the enclosing launch failed.
  void attach_faults(FaultInjector* injector, int cpe,
                     std::function<void(const std::string&)> on_fault);

 private:
  std::size_t capacity_bytes_;
  std::size_t used_bytes_ = 0;
  std::unique_ptr<double[]> arena_;
  FaultInjector* injector_ = nullptr;
  int cpe_ = 0;
  std::function<void(const std::string&)> on_fault_;
};

}  // namespace swdnn::sim
