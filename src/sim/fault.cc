#include "src/sim/fault.h"

#include <algorithm>

#include "src/util/rng.h"

namespace swdnn::sim {

namespace {

/// splitmix64 finalizer: decorrelates the (seed, site, unit, seq)
/// tuple into an Rng seed so neighbouring sequence numbers do not
/// produce correlated draws.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

int site_index(FaultSite site) { return static_cast<int>(site); }

int clamp_unit(int unit) {
  return std::clamp(unit, 0, 63);
}

}  // namespace

std::uint64_t retry_backoff_cycles(const RetryPolicy& policy, int attempt) {
  const std::uint64_t base = policy.backoff_cycles;
  if (base == 0 || attempt <= 1) return base;
  const int shift = std::min(attempt - 1, 63);
  if (base > (UINT64_MAX >> shift)) return UINT64_MAX;
  return base << shift;
}

const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kDmaTransfer:
      return "dma-transfer";
    case FaultSite::kDmaMisalign:
      return "dma-misalign";
    case FaultSite::kLdmCapacity:
      return "ldm-capacity";
    case FaultSite::kLdmBitFlip:
      return "ldm-bitflip";
    case FaultSite::kRegcommStall:
      return "regcomm-stall";
    case FaultSite::kNocLink:
      return "noc-link";
  }
  return "unknown";
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

bool FaultInjector::decide(FaultSite site, int unit, std::uint64_t seq,
                           double rate) const {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  util::Rng rng(mix(plan_.seed ^ mix(static_cast<std::uint64_t>(
                                         site_index(site) * 64 + unit) ^
                                     mix(seq))));
  return rng.uniform(0.0, 1.0) < rate;
}

std::uint64_t FaultInjector::next_sequence(FaultSite site, int unit) {
  return sequence_[static_cast<std::size_t>(site_index(site))]
                  [static_cast<std::size_t>(clamp_unit(unit))]
                      .fetch_add(1, std::memory_order_relaxed);
}

void FaultInjector::record(FaultSite site, int unit, std::uint64_t seq,
                           std::string detail) {
  counts_[static_cast<std::size_t>(site_index(site))].fetch_add(
      1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(FaultEvent{site, unit, seq, std::move(detail)});
}

bool FaultInjector::poll_dma_fault(int cpe) {
  const std::uint64_t seq = next_sequence(FaultSite::kDmaTransfer, cpe);
  const bool hit = seq < plan_.fail_first_dma ||
                   decide(FaultSite::kDmaTransfer, cpe, seq,
                          plan_.dma_fault_rate);
  if (hit) {
    record(FaultSite::kDmaTransfer, cpe, seq, "transfer error");
  }
  return hit;
}

bool FaultInjector::poll_dma_misalign(int cpe) {
  const std::uint64_t seq = next_sequence(FaultSite::kDmaMisalign, cpe);
  const bool hit =
      decide(FaultSite::kDmaMisalign, cpe, seq, plan_.dma_misalign_rate);
  if (hit) {
    record(FaultSite::kDmaMisalign, cpe, seq, "forced misaligned service");
  }
  return hit;
}

void FaultInjector::report_ldm_capacity_fault(int cpe,
                                              std::size_t requested_bytes) {
  const std::uint64_t seq = next_sequence(FaultSite::kLdmCapacity, cpe);
  record(FaultSite::kLdmCapacity, cpe, seq,
         "allocation of " + std::to_string(requested_bytes) +
             " B hit dead LDM region");
}

bool FaultInjector::poll_ldm_bitflip(int cpe) {
  const std::uint64_t seq = next_sequence(FaultSite::kLdmBitFlip, cpe);
  const bool hit =
      decide(FaultSite::kLdmBitFlip, cpe, seq, plan_.ldm_bitflip_rate);
  if (hit) {
    record(FaultSite::kLdmBitFlip, cpe, seq, "bit flip in fresh allocation");
  }
  return hit;
}

std::uint64_t FaultInjector::poll_regcomm_stall(int cpe) {
  const std::uint64_t seq = next_sequence(FaultSite::kRegcommStall, cpe);
  const bool hit =
      decide(FaultSite::kRegcommStall, cpe, seq, plan_.regcomm_stall_rate);
  if (!hit) return 0;
  record(FaultSite::kRegcommStall, cpe, seq,
         "bus stall " + std::to_string(plan_.regcomm_stall_cycles) +
             " cycles");
  return plan_.regcomm_stall_cycles;
}

bool FaultInjector::poll_noc_link(int cg) {
  const bool down = std::find(plan_.dead_noc_links.begin(),
                              plan_.dead_noc_links.end(),
                              cg) != plan_.dead_noc_links.end();
  if (down) {
    const std::uint64_t seq = next_sequence(FaultSite::kNocLink, cg);
    record(FaultSite::kNocLink, cg, seq, "link to core group down");
  }
  return down;
}

std::vector<FaultEvent> FaultInjector::events() const {
  std::vector<FaultEvent> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = events_;
  }
  std::sort(out.begin(), out.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.site != b.site) return a.site < b.site;
              if (a.unit != b.unit) return a.unit < b.unit;
              return a.sequence < b.sequence;
            });
  return out;
}

std::uint64_t FaultInjector::count(FaultSite site) const {
  return counts_[static_cast<std::size_t>(site_index(site))].load();
}

std::uint64_t FaultInjector::total_events() const {
  std::uint64_t total = 0;
  for (const auto& c : counts_) total += c.load();
  return total;
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  for (auto& site : sequence_) {
    for (auto& unit : site) unit.store(0);
  }
  for (auto& c : counts_) c.store(0);
}

}  // namespace swdnn::sim
