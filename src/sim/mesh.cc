#include "src/sim/mesh.h"

namespace swdnn::sim {

void CpeCell::reset_for_launch() {
  compute_cycles = 0;
  flops = 0;
  regcomm_messages = 0;
  dma.reset();
  ldm.reset();
  row_buffer.clear();
  col_buffer.clear();
}

CpeMesh::CpeMesh(const arch::Sw26010Spec& spec)
    : spec_(spec), rows_(spec.mesh_rows), cols_(spec.mesh_cols) {
  cells_.reserve(static_cast<std::size_t>(rows_) * cols_);
  for (int i = 0; i < rows_ * cols_; ++i) {
    cells_.push_back(std::make_unique<CpeCell>(spec));
  }
}

void CpeMesh::reset_for_launch() {
  for (auto& c : cells_) c->reset_for_launch();
}

std::uint64_t CpeMesh::max_compute_cycles() const {
  std::uint64_t best = 0;
  for (const auto& c : cells_) {
    best = std::max(best, c->compute_cycles);
  }
  return best;
}

std::uint64_t CpeMesh::total_flops() const {
  std::uint64_t total = 0;
  for (const auto& c : cells_) total += c->flops;
  return total;
}

std::uint64_t CpeMesh::total_regcomm_messages() const {
  std::uint64_t total = 0;
  for (const auto& c : cells_) total += c->regcomm_messages;
  return total;
}

}  // namespace swdnn::sim
