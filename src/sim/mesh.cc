#include "src/sim/mesh.h"

namespace swdnn::sim {

CpeMesh::CpeMesh(const arch::Sw26010Spec& spec)
    : spec_(spec), rows_(spec.mesh_rows), cols_(spec.mesh_cols) {
  cells_.reserve(static_cast<std::size_t>(rows_) * cols_);
  for (int i = 0; i < rows_ * cols_; ++i) {
    cells_.push_back(std::make_unique<CpeCell>(spec));
  }
}

std::uint64_t CpeMesh::max_compute_cycles() const {
  std::uint64_t best = 0;
  for (const auto& c : cells_) {
    best = std::max(best, c->compute_cycles.load());
  }
  return best;
}

std::uint64_t CpeMesh::total_flops() const {
  std::uint64_t total = 0;
  for (const auto& c : cells_) total += c->flops.load();
  return total;
}

std::uint64_t CpeMesh::total_regcomm_messages() const {
  std::uint64_t total = 0;
  for (const auto& c : cells_) total += c->regcomm_messages.load();
  return total;
}

}  // namespace swdnn::sim
