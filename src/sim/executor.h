#pragma once
// SPMD kernel launcher for the simulated CPE mesh.
//
// A "kernel" is a callable executed once per CPE, each on its own host
// thread — the same single-program-multiple-data shape as real athread
// kernels on SW26010. The CpeContext a kernel receives exposes exactly
// the machine resources the paper's kernels use:
//
//   * its mesh coordinates,
//   * its private LDM (capacity-enforced),
//   * DMA get/put between "global memory" (host spans) and LDM,
//   * register communication over the row/column buses,
//   * a mesh-wide barrier (the athread sync),
//   * cycle-accounting hooks for compute work.
//
// Functional correctness never depends on the accounting; timing
// counters only feed the statistics block returned by run().
//
// Host execution strategy: the executor owns a persistent CpeWorkerPool
// — one host thread per CPE, created on the first launch and kept for
// the executor's lifetime. Launches are dispatched to the pool through
// a generation-counted start/finish protocol, and the mesh, DMA engine,
// and LDM arenas are reset in place between launches instead of being
// reconstructed. Modeled observables (cycles, flops, message counts,
// DMA totals, traces, fault decisions) are charged exactly as before:
// cycle accounting is decoupled from how the host happens to schedule
// the simulation. set_use_worker_pool(false) selects the legacy
// spawn-64-threads-per-launch strategy, kept as the reference the
// equivalence tests and the throughput bench compare against.

#include <atomic>
#include <barrier>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "src/arch/spec.h"
#include "src/sim/dma.h"
#include "src/sim/fault.h"
#include "src/sim/mesh.h"
#include "src/sim/trace.h"

namespace swdnn::sim {

class MeshExecutor;

class CpeContext {
 public:
  CpeContext(MeshExecutor& exec, CpeMesh& mesh, DmaEngine& dma, int row,
             int col);

  // --- Identity ------------------------------------------------------
  int row() const { return row_; }
  int col() const { return col_; }
  int id() const { return row_ * mesh_.cols() + col_; }
  int mesh_rows() const { return mesh_.rows(); }
  int mesh_cols() const { return mesh_.cols(); }
  const arch::Sw26010Spec& spec() const { return mesh_.spec(); }

  // --- LDM -------------------------------------------------------------
  LdmAllocator& ldm() { return cell().ldm; }

  // --- DMA (functional copy + Table II cost accounting) ----------------
  /// Contiguous MEM -> LDM transfer. dst.size() must equal src.size().
  void dma_get(std::span<const double> src, std::span<double> dst);

  /// Contiguous LDM -> MEM transfer.
  void dma_put(std::span<const double> src, std::span<double> dst);

  /// Strided gather: copies `nblocks` runs of `block_elems` doubles,
  /// source runs separated by `stride_elems`, packed densely into dst.
  /// The DMA cost uses `block_elems` as the per-block size — exactly why
  /// the paper's layouts fight for large leading dimensions.
  void dma_get_strided(const double* src_base, std::int64_t nblocks,
                       std::int64_t block_elems, std::int64_t stride_elems,
                       std::span<double> dst);

  /// Strided scatter (inverse of dma_get_strided).
  void dma_put_strided(std::span<const double> src, double* dst_base,
                       std::int64_t nblocks, std::int64_t block_elems,
                       std::int64_t stride_elems);

  // --- Register communication ------------------------------------------
  /// Sends one 256-bit register to CPE(row(), dst_col) over the row bus.
  void put_row(int dst_col, const Vec4& value);

  /// Sends one 256-bit register to CPE(dst_row, col()) over the column
  /// bus.
  void put_col(int dst_row, const Vec4& value);

  /// Broadcasts to every other CPE on this row / column (the hardware
  /// multicast the vldr/vldc-based kernels rely on).
  void bcast_row(const Vec4& value);
  void bcast_col(const Vec4& value);

  /// Receives the next message from this CPE's row/column transfer
  /// buffer (blocking).
  Vec4 get_row();
  Vec4 get_col();

  // --- Bulk register communication -------------------------------------
  /// Span-level bus primitives: broadcast/receive a whole tile of
  /// doubles as ceil(n/4) 256-bit messages. Per-message accounting
  /// (stall-fault polls, trace events, one issue cycle per broadcast,
  /// get latency per receive, regcomm message counts) is charged
  /// identically to a loop over the Vec4 primitives; only the host-side
  /// transfer-buffer traffic is batched under one lock acquisition.
  void bcast_row_span(std::span<const double> data);
  void bcast_col_span(std::span<const double> data);
  void recv_row_span(std::span<double> out);
  void recv_col_span(std::span<double> out);

  // --- Synchronization ---------------------------------------------------
  /// Mesh-wide barrier.
  void sync();

  // --- Timing hooks -------------------------------------------------------
  /// Charges `flops` of fully-vectorized FMA work (8 flop/cycle).
  void charge_flops(std::uint64_t flops);

  /// Charges raw cycles (for non-vector or bookkeeping work).
  /// Saturates at UINT64_MAX instead of wrapping.
  void charge_cycles(std::uint64_t cycles);

  std::uint64_t compute_cycles() const { return cell().compute_cycles; }

  // --- Fault handling -----------------------------------------------------
  /// Marks the whole launch failed (kernels keep running to drain
  /// barriers; the driver inspects LaunchStats afterwards). The first
  /// caller's message wins.
  void fail_launch(const std::string& message, bool persistent);

 private:
  CpeCell& cell() { return mesh_.cell(row_, col_); }
  const CpeCell& cell() const { return mesh_.cell(row_, col_); }
  bool block_aligned(std::int64_t bytes) const {
    return bytes % static_cast<std::int64_t>(spec().dma_alignment_bytes) == 0;
  }
  bool dma_attempt(std::uint64_t bytes, std::int64_t block_bytes,
                   perf::DmaDirection dir, bool aligned);
  bool dma_aligned(std::int64_t bytes);
  void maybe_stall_bus();
  std::uint64_t record_dma(std::uint64_t bytes, std::int64_t block_bytes,
                           perf::DmaDirection dir, bool aligned);

  MeshExecutor& exec_;
  CpeMesh& mesh_;
  DmaEngine& dma_;
  int row_;
  int col_;
};

/// Aggregate results of one kernel launch.
struct LaunchStats {
  std::uint64_t max_compute_cycles = 0;  ///< slowest CPE's compute cycles
  std::uint64_t total_flops = 0;
  std::uint64_t regcomm_messages = 0;    ///< 256-bit bus messages
  DmaTotals dma;
  double dma_seconds = 0;      ///< Table II-costed DMA engine occupancy
  double compute_seconds = 0;  ///< max_compute_cycles / clock

  // Fault outcome of the launch (only set when an injector is attached).
  bool failed = false;           ///< a fault site exhausted its recovery
  bool persistent_fault = false; ///< retries exhausted / dead resource
  std::string failure;           ///< first failure's diagnostic
  std::uint64_t fault_events = 0;  ///< injector events during this launch
  std::uint64_t dma_retries = 0;   ///< tile transfers re-issued after faults

  /// End-to-end model. With double buffering DMA overlaps compute, so
  /// the launch takes max(compute, dma); without, they serialize.
  double modeled_seconds(bool overlap = true) const {
    return overlap ? std::max(compute_seconds, dma_seconds)
                   : compute_seconds + dma_seconds;
  }

  /// Modeled throughput in Gflop/s for this launch.
  double modeled_gflops(bool overlap = true) const {
    const double s = modeled_seconds(overlap);
    return s > 0 ? static_cast<double>(total_flops) / s / 1e9 : 0.0;
  }

  /// Bytes that travelled over register-communication buses instead of
  /// memory (the §V-A "order of magnitude" saving shows up here).
  std::uint64_t regcomm_bytes() const { return regcomm_messages * 32; }
};

class MeshExecutor {
 public:
  using Kernel = std::function<void(CpeContext&)>;

  explicit MeshExecutor(const arch::Sw26010Spec& spec = arch::default_spec());
  ~MeshExecutor();

  MeshExecutor(const MeshExecutor&) = delete;
  MeshExecutor& operator=(const MeshExecutor&) = delete;

  /// Launches `kernel` once per CPE, waits for all to finish, and
  /// returns the aggregated statistics. Any exception escaping a kernel
  /// aborts the process with a diagnostic: a throwing kernel is a
  /// programming error, and unwinding one thread of a mesh that others
  /// are blocked on cannot be done safely. Not reentrant: one launch at
  /// a time per executor (callers that share an executor across threads
  /// serialize externally).
  LaunchStats run(const Kernel& kernel);

  const arch::Sw26010Spec& spec() const { return spec_; }

  /// Selects the host execution strategy: the persistent worker pool
  /// (default) or the legacy spawn-threads-per-launch path kept as the
  /// reference. Both produce identical LaunchStats, outputs, traces,
  /// and fault behavior.
  void set_use_worker_pool(bool on) { use_pool_ = on; }
  bool use_worker_pool() const { return use_pool_; }

  /// Attaches an event tracer; every subsequent launch records its DMA,
  /// bus, and barrier events into it. Pass nullptr to detach. The
  /// tracer must outlive the launches it observes.
  void set_tracer(EventTracer* tracer) { tracer_ = tracer; }
  EventTracer* tracer() const { return tracer_; }

  /// Attaches a fault campaign; every subsequent launch polls it at the
  /// DMA, LDM, and register-communication sites. Pass nullptr to
  /// detach. The injector must outlive the launches it disturbs.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  /// Bounded retry-with-backoff applied to faulting DMA tile
  /// transfers during launches on this executor.
  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_; }

 private:
  friend class CpeContext;

  /// Resets mesh/DMA/failure state in place and re-attaches the fault
  /// campaign for the next launch.
  void prepare_launch();

  /// Runs one CPE's kernel with the abort-on-throw contract.
  void execute_cell(const Kernel& kernel, int row, int col);

  /// Dispatches the launch to the persistent pool (creating the workers
  /// on first use) and blocks until every CPE finished.
  void run_on_pool(const Kernel& kernel);

  /// Legacy reference strategy: spawn + join one thread per CPE.
  void run_spawned(const Kernel& kernel);

  void worker_loop(int row, int col);
  void shutdown_pool();

  arch::Sw26010Spec spec_;  // by value: callers may pass temporaries
  CpeMesh mesh_;            // persistent, reset in place per launch
  DmaEngine dma_;           // persistent, reset per launch
  std::barrier<> barrier_;  // reusable across launches
  EventTracer* tracer_ = nullptr;
  FaultInjector* injector_ = nullptr;
  RetryPolicy retry_;
  bool use_pool_ = true;

  // Persistent worker pool (generation-counted start/finish protocol).
  std::vector<std::thread> workers_;
  std::mutex pool_mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const Kernel* pending_ = nullptr;  // valid while a launch is in flight
  std::uint64_t generation_ = 0;     // bumped once per pool launch
  int done_count_ = 0;
  bool shutdown_ = false;

  // Per-launch failure latch (reset by run()).
  std::atomic<bool> failed_{false};
  std::atomic<bool> persistent_{false};
  std::atomic<std::uint64_t> dma_retries_{0};
  std::mutex failure_mutex_;
  std::string failure_;
};

}  // namespace swdnn::sim
