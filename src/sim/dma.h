#pragma once
// DMA engine model shared by one simulated core group.
//
// Functionally a DMA request is a (possibly strided) copy between a
// host-side "global memory" span and a CPE's LDM buffer. For timing, each
// request is charged cycles from the Table II effective-bandwidth curve
// based on its contiguous block size, alignment, and direction — this is
// the quantity the paper's performance model calls MBW(MEM->LDM).
//
// The engine itself only accounts; the data movement is performed by the
// caller (CpeContext) so the functional path stays a plain memcpy. All
// counters are atomics: 64 CPE threads record concurrently.

#include <atomic>
#include <cstdint>

#include "src/arch/spec.h"
#include "src/perf/dma_table.h"

namespace swdnn::sim {

struct DmaTotals {
  std::uint64_t get_bytes = 0;
  std::uint64_t put_bytes = 0;
  std::uint64_t requests = 0;
  std::uint64_t misaligned_requests = 0;
};

/// Per-CPE accounting shard. Each CPE thread owns one exclusively
/// during a launch (plain fields, no atomics); the executor folds the
/// shards into the shared engine once per launch, so 64 threads never
/// contend on the engine's counters per transfer.
struct DmaShard {
  std::uint64_t get_bytes = 0;
  std::uint64_t put_bytes = 0;
  std::uint64_t requests = 0;
  std::uint64_t misaligned_requests = 0;
  std::uint64_t cycles = 0;

  void add(std::uint64_t bytes, perf::DmaDirection dir, bool aligned,
           std::uint64_t cost_cycles) {
    if (dir == perf::DmaDirection::kGet) {
      get_bytes += bytes;
    } else {
      put_bytes += bytes;
    }
    ++requests;
    if (!aligned) ++misaligned_requests;
    cycles += cost_cycles;
  }

  void reset() { *this = DmaShard{}; }
};

class DmaEngine {
 public:
  explicit DmaEngine(const arch::Sw26010Spec& spec) : spec_(spec) {}

  /// Records one request and returns its cost in CPE cycles. The block
  /// size determines effective bandwidth; the whole `bytes` payload is
  /// charged at that bandwidth. `aligned` reflects the 128 B rule.
  std::uint64_t record(std::uint64_t bytes, std::int64_t block_bytes,
                       perf::DmaDirection dir, bool aligned);

  /// Pure cost of one request in CPE cycles — same arithmetic as
  /// record(), no accumulation. The hot path charges costs into a
  /// per-CPE DmaShard and folds once per launch via add_shard().
  std::uint64_t cost(std::uint64_t bytes, std::int64_t block_bytes,
                     perf::DmaDirection dir, bool aligned) const;

  /// Folds one CPE's launch shard into the shared totals.
  void add_shard(const DmaShard& shard);

  /// Zeroes every counter (launch-boundary reset of a persistent
  /// engine).
  void reset();

  /// Cycle cost of moving `bytes` at `bw_gbs` on a `clock_ghz` CPE,
  /// saturating instead of overflowing: a zero, negative, or NaN
  /// bandwidth (a corrupted table entry, a fault plan zeroing a link)
  /// yields kSaturatedCycles, and a finite cost too large for uint64_t
  /// clamps — never the UB of casting inf to an integer. Exposed for
  /// the unit tests.
  static std::uint64_t cost_cycles(std::uint64_t bytes, double bw_gbs,
                                   double clock_ghz);

  /// The defined "this transfer never completes" cost.
  static constexpr std::uint64_t kSaturatedCycles = UINT64_MAX;

  DmaTotals totals() const;

  /// Seconds the recorded traffic needs on one core group, assuming the
  /// per-CG DMA engine serializes across CPEs at the effective
  /// bandwidth (the Table II numbers are already per-CG aggregates).
  double modeled_seconds() const;

 private:
  arch::Sw26010Spec spec_;  // by value: callers may pass temporaries
  std::atomic<std::uint64_t> get_bytes_{0};
  std::atomic<std::uint64_t> put_bytes_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> misaligned_{0};
  std::atomic<std::uint64_t> total_cycles_{0};
};

}  // namespace swdnn::sim
