#pragma once
// Multi-core-group (NoC) scaling support.
//
// An SW26010 chip has four core groups joined by a network-on-chip. The
// paper's scaling scheme (Section III-D) partitions the output images
// into four parts along the row dimension, one per CG; each CG owns its
// memory controller so partitions stream independently, and filters live
// in the shared memory space. We reproduce that: the partition math, a
// functional runner that executes one mesh launch per partition, and the
// scaling model (per-CG time + a fixed launch overhead).

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/sim/executor.h"

namespace swdnn::sim {

struct RowPartition {
  std::int64_t begin = 0;  ///< first output row owned by this CG
  std::int64_t end = 0;    ///< one past the last output row
  std::int64_t rows() const { return end - begin; }
};

/// Splits `total_rows` into `num_parts` near-equal contiguous ranges
/// (earlier parts take the remainder, matching the paper's row split).
std::vector<RowPartition> partition_output_rows(std::int64_t total_rows,
                                                int num_parts);

/// Cost model for CG-to-CG traffic over the on-chip NoC. The paper
/// gives no NoC bandwidth number, so these are inferred defaults
/// (DESIGN.md §8): the NoC is on-die and joins the four CGs' memory
/// controllers, so a link is modeled well above the 8 GB/s node
/// injection bandwidth and well below aggregate DDR (4 x 36 GB/s),
/// with sub-microsecond hop latency (no network software stack).
/// Hierarchical gradient exchange charges its intra-node phase here.
struct NocInterconnectSpec {
  double link_bandwidth_gbs = 64.0;  ///< CG-to-CG on-chip link
  double hop_latency_us = 0.2;       ///< per NoC hop (on-die, no NIC)
};

/// Seconds one ring all-reduce of `bytes` across `cgs` core groups
/// takes over the NoC: the standard 2*(k-1) steps moving bytes/k each
/// (reduce-scatter + all-gather), charged at NoC link speed. The
/// hierarchical exchange uses this for its intra-node reduce+broadcast
/// phases (each phase is half the ring: (k-1) steps).
double noc_allreduce_seconds(std::int64_t bytes, int cgs,
                             const NocInterconnectSpec& spec = {});

struct MultiCgStats {
  std::vector<LaunchStats> per_cg;
  double launch_overhead_seconds = 0;

  /// CGs run concurrently: chip time = slowest CG + launch overhead.
  double modeled_seconds(bool overlap = true) const;

  /// Aggregate flops across CGs.
  std::uint64_t total_flops() const;

  double modeled_gflops(bool overlap = true) const {
    const double s = modeled_seconds(overlap);
    return s > 0 ? static_cast<double>(total_flops()) / s / 1e9 : 0.0;
  }

  /// Speedup over running everything on one CG serially.
  double scaling_speedup(bool overlap = true) const;
};

class NocSystem {
 public:
  explicit NocSystem(const arch::Sw26010Spec& spec = arch::default_spec(),
                     double launch_overhead_seconds = 2e-6);

  /// Runs `make_kernel(cg, partition)` on each core group's mesh. The
  /// simulation executes CGs sequentially (the host is one machine) but
  /// the stats model them as concurrent. Throws LaunchFault (persistent)
  /// before launching anything if an attached fault campaign has
  /// severed the NoC link to one of the requested core groups — the
  /// caller redistributes or falls back.
  MultiCgStats run_partitioned(
      std::int64_t total_output_rows, int num_cgs,
      const std::function<MeshExecutor::Kernel(int, RowPartition)>&
          make_kernel);

  /// Attaches a fault campaign; link state is consulted per
  /// run_partitioned call and fault sites inside each CG launch are
  /// injected through the shared executor.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  const arch::Sw26010Spec& spec() const { return spec_; }

 private:
  arch::Sw26010Spec spec_;  // by value: callers may pass temporaries
  double launch_overhead_seconds_;
  FaultInjector* injector_ = nullptr;
  /// Persistent executor shared by all CG launches (created on first
  /// run_partitioned; its worker pool is reused across calls).
  std::unique_ptr<MeshExecutor> exec_;
};

}  // namespace swdnn::sim
