#pragma once
// The 8x8 CPE mesh state for one simulated core group.
//
// Each cell owns its LDM arena, its two receive-side transfer buffers
// (row bus and column bus), and its timing counters. The mesh is owned
// by a MeshExecutor and reused across launches: reset_for_launch()
// zeroes the counters, empties the buffers, and rewinds the LDM arenas
// in place, so a launch never re-allocates the 64 x 64 KB of arena
// memory. Geometry comes from the machine spec so tests can run reduced
// meshes (e.g. 2x2 or 4x4, as the paper itself does when illustrating
// Fig. 3).
//
// The timing counters are plain integers, not atomics: each cell is
// written only by the CPE thread that owns it during a launch, and the
// executor reads them only after the launch's completion handshake
// (which synchronizes). This removes 64 threads' worth of contended
// fetch_adds from the per-FMA-charge hot path.

#include <cstdint>
#include <memory>
#include <vector>

#include "src/arch/spec.h"
#include "src/sim/dma.h"
#include "src/sim/ldm.h"
#include "src/sim/regcomm.h"

namespace swdnn::sim {

struct CpeCell {
  explicit CpeCell(const arch::Sw26010Spec& spec)
      : ldm(spec.ldm_bytes),
        row_buffer(spec.transfer_buffer_slots),
        col_buffer(spec.transfer_buffer_slots) {}

  LdmAllocator ldm;
  TransferBuffer row_buffer;  ///< messages arriving over the row bus
  TransferBuffer col_buffer;  ///< messages arriving over the column bus

  std::uint64_t compute_cycles = 0;
  std::uint64_t flops = 0;
  std::uint64_t regcomm_messages = 0;
  DmaShard dma;  ///< this CPE's DMA traffic, folded once per launch

  /// Launch-boundary reset: counters to zero, buffers emptied, LDM
  /// arena rewound (the arena memory itself is retained).
  void reset_for_launch();
};

class CpeMesh {
 public:
  explicit CpeMesh(const arch::Sw26010Spec& spec);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int num_cpes() const { return rows_ * cols_; }

  CpeCell& cell(int row, int col) { return *cells_[index(row, col)]; }
  const CpeCell& cell(int row, int col) const {
    return *cells_[index(row, col)];
  }
  CpeCell& cell_by_id(int id) { return *cells_[id]; }

  const arch::Sw26010Spec& spec() const { return spec_; }

  /// Resets every cell in place for the next launch.
  void reset_for_launch();

  /// Largest per-CPE compute cycle count (the mesh finishes when its
  /// slowest CPE does).
  std::uint64_t max_compute_cycles() const;

  /// Sum of flops executed by all CPEs.
  std::uint64_t total_flops() const;

  /// Total register-communication messages (256-bit each).
  std::uint64_t total_regcomm_messages() const;

 private:
  int index(int row, int col) const { return row * cols_ + col; }

  arch::Sw26010Spec spec_;  // by value: callers may pass temporaries
  int rows_;
  int cols_;
  std::vector<std::unique_ptr<CpeCell>> cells_;
};

}  // namespace swdnn::sim
