#include "src/sim/noc.h"

#include <algorithm>
#include <stdexcept>

namespace swdnn::sim {

std::vector<RowPartition> partition_output_rows(std::int64_t total_rows,
                                                int num_parts) {
  if (num_parts <= 0 || total_rows <= 0) {
    throw std::invalid_argument("partition_output_rows: bad arguments");
  }
  std::vector<RowPartition> parts;
  parts.reserve(static_cast<std::size_t>(num_parts));
  const std::int64_t base = total_rows / num_parts;
  const std::int64_t rem = total_rows % num_parts;
  std::int64_t cursor = 0;
  for (int p = 0; p < num_parts; ++p) {
    const std::int64_t len = base + (p < rem ? 1 : 0);
    parts.push_back(RowPartition{cursor, cursor + len});
    cursor += len;
  }
  return parts;
}

double noc_allreduce_seconds(std::int64_t bytes, int cgs,
                             const NocInterconnectSpec& spec) {
  if (cgs <= 1) return 0.0;
  const double k = static_cast<double>(cgs);
  const double chunk_bytes = static_cast<double>(bytes) / k;
  const double steps = 2.0 * (k - 1.0);
  return steps * (chunk_bytes / (spec.link_bandwidth_gbs * 1e9) +
                  spec.hop_latency_us * 1e-6);
}

double MultiCgStats::modeled_seconds(bool overlap) const {
  double slowest = 0;
  for (const auto& s : per_cg) {
    slowest = std::max(slowest, s.modeled_seconds(overlap));
  }
  return slowest + launch_overhead_seconds;
}

std::uint64_t MultiCgStats::total_flops() const {
  std::uint64_t total = 0;
  for (const auto& s : per_cg) total += s.total_flops;
  return total;
}

double MultiCgStats::scaling_speedup(bool overlap) const {
  double serial = 0;
  for (const auto& s : per_cg) serial += s.modeled_seconds(overlap);
  const double parallel = modeled_seconds(overlap);
  return parallel > 0 ? serial / parallel : 0.0;
}

NocSystem::NocSystem(const arch::Sw26010Spec& spec,
                     double launch_overhead_seconds)
    : spec_(spec), launch_overhead_seconds_(launch_overhead_seconds) {}

MultiCgStats NocSystem::run_partitioned(
    std::int64_t total_output_rows, int num_cgs,
    const std::function<MeshExecutor::Kernel(int, RowPartition)>&
        make_kernel) {
  if (num_cgs < 1 || num_cgs > spec_.num_core_groups) {
    throw std::invalid_argument("run_partitioned: bad core-group count");
  }
  const auto parts = partition_output_rows(total_output_rows, num_cgs);
  if (injector_ != nullptr) {
    for (int cg = 0; cg < num_cgs; ++cg) {
      if (injector_->poll_noc_link(cg)) {
        throw LaunchFault("NoC link to core group " + std::to_string(cg) +
                              " is down",
                          /*persistent=*/true);
      }
    }
  }
  MultiCgStats stats;
  stats.launch_overhead_seconds = launch_overhead_seconds_;
  if (exec_ == nullptr) exec_ = std::make_unique<MeshExecutor>(spec_);
  exec_->set_fault_injector(injector_);
  for (int cg = 0; cg < num_cgs; ++cg) {
    stats.per_cg.push_back(exec_->run(make_kernel(cg, parts[cg])));
  }
  return stats;
}

}  // namespace swdnn::sim
