#include "src/sim/dma.h"

#include <cmath>

namespace swdnn::sim {

std::uint64_t DmaEngine::cost_cycles(std::uint64_t bytes, double bw_gbs,
                                     double clock_ghz) {
  // bytes / (GB/s) = ns; cycles = ns * GHz. The Table II bandwidth is a
  // per-core-group aggregate, so the cycles computed here represent the
  // engine-occupancy share of this request.
  if (!(bw_gbs > 0.0)) return kSaturatedCycles;  // also catches NaN
  const double cycles = std::ceil(static_cast<double>(bytes) / bw_gbs *
                                  clock_ghz);
  // Doubles at or above 2^64 (including +inf from clock/bytes extremes)
  // cannot be cast to uint64_t without UB.
  if (!(cycles < 18446744073709551616.0)) return kSaturatedCycles;
  return cycles < 0.0 ? 0 : static_cast<std::uint64_t>(cycles);
}

std::uint64_t DmaEngine::cost(std::uint64_t bytes, std::int64_t block_bytes,
                              perf::DmaDirection dir, bool aligned) const {
  const double bw_gbs = perf::dma_table().bandwidth_gbs(block_bytes, dir,
                                                        aligned);
  return cost_cycles(bytes, bw_gbs, spec_.cpe_clock_ghz);
}

void DmaEngine::add_shard(const DmaShard& shard) {
  get_bytes_.fetch_add(shard.get_bytes, std::memory_order_relaxed);
  put_bytes_.fetch_add(shard.put_bytes, std::memory_order_relaxed);
  requests_.fetch_add(shard.requests, std::memory_order_relaxed);
  misaligned_.fetch_add(shard.misaligned_requests, std::memory_order_relaxed);
  total_cycles_.fetch_add(shard.cycles, std::memory_order_relaxed);
}

void DmaEngine::reset() {
  get_bytes_.store(0, std::memory_order_relaxed);
  put_bytes_.store(0, std::memory_order_relaxed);
  requests_.store(0, std::memory_order_relaxed);
  misaligned_.store(0, std::memory_order_relaxed);
  total_cycles_.store(0, std::memory_order_relaxed);
}

std::uint64_t DmaEngine::record(std::uint64_t bytes, std::int64_t block_bytes,
                                perf::DmaDirection dir, bool aligned) {
  const std::uint64_t cycles = cost(bytes, block_bytes, dir, aligned);

  if (dir == perf::DmaDirection::kGet) {
    get_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  } else {
    put_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (!aligned) misaligned_.fetch_add(1, std::memory_order_relaxed);
  total_cycles_.fetch_add(cycles, std::memory_order_relaxed);
  return cycles;
}

DmaTotals DmaEngine::totals() const {
  DmaTotals t;
  t.get_bytes = get_bytes_.load();
  t.put_bytes = put_bytes_.load();
  t.requests = requests_.load();
  t.misaligned_requests = misaligned_.load();
  return t;
}

double DmaEngine::modeled_seconds() const {
  return static_cast<double>(total_cycles_.load()) /
         (spec_.cpe_clock_ghz * 1e9);
}

}  // namespace swdnn::sim
