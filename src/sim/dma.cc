#include "src/sim/dma.h"

#include <cmath>

namespace swdnn::sim {

std::uint64_t DmaEngine::cost_cycles(std::uint64_t bytes, double bw_gbs,
                                     double clock_ghz) {
  // bytes / (GB/s) = ns; cycles = ns * GHz. The Table II bandwidth is a
  // per-core-group aggregate, so the cycles computed here represent the
  // engine-occupancy share of this request.
  if (!(bw_gbs > 0.0)) return kSaturatedCycles;  // also catches NaN
  const double cycles = std::ceil(static_cast<double>(bytes) / bw_gbs *
                                  clock_ghz);
  // Doubles at or above 2^64 (including +inf from clock/bytes extremes)
  // cannot be cast to uint64_t without UB.
  if (!(cycles < 18446744073709551616.0)) return kSaturatedCycles;
  return cycles < 0.0 ? 0 : static_cast<std::uint64_t>(cycles);
}

std::uint64_t DmaEngine::record(std::uint64_t bytes, std::int64_t block_bytes,
                                perf::DmaDirection dir, bool aligned) {
  const double bw_gbs = perf::dma_table().bandwidth_gbs(block_bytes, dir,
                                                        aligned);
  const std::uint64_t cycles =
      cost_cycles(bytes, bw_gbs, spec_.cpe_clock_ghz);

  if (dir == perf::DmaDirection::kGet) {
    get_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  } else {
    put_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (!aligned) misaligned_.fetch_add(1, std::memory_order_relaxed);
  total_cycles_.fetch_add(cycles, std::memory_order_relaxed);
  return cycles;
}

DmaTotals DmaEngine::totals() const {
  DmaTotals t;
  t.get_bytes = get_bytes_.load();
  t.put_bytes = put_bytes_.load();
  t.requests = requests_.load();
  t.misaligned_requests = misaligned_.load();
  return t;
}

double DmaEngine::modeled_seconds() const {
  return static_cast<double>(total_cycles_.load()) /
         (spec_.cpe_clock_ghz * 1e9);
}

}  // namespace swdnn::sim
