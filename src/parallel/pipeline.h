#pragma once
// Pipeline parallelism across core groups (first cut).
//
// Instead of replicating the whole network per rank (data parallelism),
// the layer stack of ONE model is partitioned into contiguous stages,
// one per CG; a batch is split into micro-batches that flow through the
// stages in a 1F1B (one-forward-one-backward) schedule, so at steady
// state every stage is busy and only the classic pipeline bubble
// (S - 1 ticks at each end) idles. Boundary activations and gradients
// are staged in an arena (tensor::Arena) with liveness intervals
// derived from the schedule, exactly as the compiled network stages its
// own activations.
//
// Memory discipline follows the recomputation school: a stage keeps
// only its INPUT per in-flight micro-batch; before backward it re-runs
// its forward from that staged input unless its activations already
// hold that micro-batch (the last stage's 1F1B pattern — F(m) directly
// followed by B(m) — always skips the recompute). Recomputation is
// bitwise-exact because forward is deterministic; models with dropout
// are excluded (an extra forward would advance the mask RNG).
//
// Determinism contract: micro-batch boundaries come from the fixed
// near-equal split, the schedule is a pure function of (stages,
// micro_batches), and each stage accumulates its parameter gradients in
// ascending micro-batch order — which is the order 1F1B executes
// backwards anyway. The result is bitwise-identical to reference_step:
// sequential micro-batch accumulation on the unpartitioned network.

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/dnn/backend_context.h"
#include "src/dnn/network.h"
#include "src/dnn/sgd.h"
#include "src/dnn/trainer.h"
#include "src/tensor/arena.h"

namespace swdnn::arch {
struct Sw26010Spec;
}  // namespace swdnn::arch

namespace swdnn::parallel {

/// Splits a batch along its trailing (batch) dimension into `parts`
/// near-equal micro-batches, earlier parts taking the remainder (the
/// same convention as the row partitioner). Labels split alongside.
std::vector<dnn::Batch> split_micro_batches(const dnn::Batch& batch,
                                            int parts);

/// What one pipeline tick does on one stage.
enum class PipeAction { kForward, kBackward };

struct PipeStep {
  int stage = 0;
  PipeAction action = PipeAction::kForward;
  int micro_batch = 0;
};

/// Deterministic greedy 1F1B schedule for `stages` x `micro_batches`:
/// tick t lists the steps that run concurrently at t (ascending stage).
/// A stage prefers a backward once its warm-up forwards (min(S - s, M))
/// are in flight, keeping at most that many micro-batches resident.
std::vector<std::vector<PipeStep>> build_1f1b_schedule(int stages,
                                                       int micro_batches);

class PipelineParallelTrainer {
 public:
  /// Builds ONE network via `make_network`, takes its layer stack and
  /// partitions it into `stages` contiguous near-equal sub-networks
  /// (parameters keep their seed-initialized values — no re-seeding).
  /// Every train_step splits its batch into `micro_batches` equal
  /// micro-batches (batch size must be divisible).
  PipelineParallelTrainer(
      int stages, int micro_batches,
      const std::function<std::unique_ptr<dnn::Network>()>& make_network,
      double learning_rate, double momentum = 0.0);
  ~PipelineParallelTrainer();

  int stages() const { return static_cast<int>(stage_nets_.size()); }
  int micro_batches() const { return micro_batches_; }
  dnn::Network& stage(int s) {
    return *stage_nets_.at(static_cast<std::size_t>(s));
  }
  /// [first_layer, last_layer] of the original stack owned by stage s.
  std::pair<std::size_t, std::size_t> stage_layers(int s) const {
    return stage_ranges_.at(static_cast<std::size_t>(s));
  }

  /// Compiles every stage for the MICRO-batch input shape against one
  /// shared BackendContext, and plans the staging arena from the
  /// schedule's liveness intervals. Optional: uncompiled stages run
  /// eagerly and the staging arena is planned at the first step.
  void compile(const std::vector<std::int64_t>& micro_batch_input_dims,
               const arch::Sw26010Spec* spec = nullptr);

  dnn::BackendContext* shared_context() { return shared_context_.get(); }

  /// The 1F1B schedule driving every step.
  const std::vector<std::vector<PipeStep>>& schedule() const {
    return schedule_;
  }

  /// Packed footprint of the boundary staging buffers (0 before the
  /// arena is planned), next to the keep-everything baseline.
  std::int64_t staging_peak_bytes() const { return staging_.peak_bytes(); }
  std::int64_t staging_naive_bytes() const { return staging_.naive_bytes(); }

  struct StepResult {
    double loss = 0;          ///< sample-weighted mean over micro-batches
    std::int64_t correct = 0;
    int ticks = 0;                  ///< schedule length executed
    int recomputed_forwards = 0;    ///< stage forwards re-run for backward
  };

  /// One optimization step: micro-batch split, 1F1B execution across
  /// the stages, per-stage gradient accumulation in ascending
  /// micro-batch order, one optimizer step. Bitwise-identical to
  /// reference_step on an identically-seeded unpartitioned network.
  StepResult train_step(const dnn::Batch& batch);

  /// The semantics train_step must match, on a single replica: split
  /// the batch the same way, run micro-batches sequentially (forward,
  /// loss scaled by mb/total samples, backward), accumulate parameter
  /// gradients in ascending micro-batch order, then apply one
  /// optimizer step. Shared by the differential tests.
  static StepResult reference_step(dnn::Network& net, dnn::Sgd& opt,
                                   const dnn::Batch& batch,
                                   int micro_batches);

  /// Largest parameter divergence from `net` (same architecture), for
  /// differential tests. 0 = bitwise-identical parameters.
  double max_param_divergence(dnn::Network& net);

 private:
  /// Shape-infers the stage boundaries for this micro-batch input
  /// shape, requests arena slots with schedule-derived liveness, plans,
  /// and presizes the per-stage scratch tensors.
  void setup_staging(const std::vector<std::int64_t>& micro_batch_input_dims);

  int micro_batches_;
  std::vector<std::unique_ptr<dnn::Network>> stage_nets_;
  std::vector<std::pair<std::size_t, std::size_t>> stage_ranges_;
  std::vector<dnn::Sgd> optimizers_;  ///< one per stage, same hyperparams
  std::unique_ptr<dnn::BackendContext> shared_context_;
  std::vector<std::vector<PipeStep>> schedule_;
  /// tick_f_[s][m] / tick_b_[s][m]: the tick running F/B of (s, m).
  std::vector<std::vector<int>> tick_f_;
  std::vector<std::vector<int>> tick_b_;

  // Staging state (fixed after setup_staging).
  bool staging_ready_ = false;
  tensor::Arena staging_;
  /// Boundary b sits between stage b and b+1 (b in 0..S-2):
  /// fwd_views_[b][m] stages stage b's output for micro-batch m,
  /// bwd_views_[b][m] stages stage b+1's input gradient.
  std::vector<std::vector<tensor::TensorView>> fwd_views_;
  std::vector<std::vector<tensor::TensorView>> bwd_views_;
  /// Per-stage presized scratch: forward input / backward d_output.
  std::vector<tensor::Tensor> input_scratch_;
  std::vector<tensor::Tensor> dout_scratch_;
  /// Per-stage gradient accumulators, ascending (layer, param) order.
  std::vector<std::vector<tensor::Tensor>> grad_acc_;
  /// Micro-batch input dims the staging was planned for (validation).
  std::vector<std::int64_t> staged_mb_dims_;
  /// Which micro-batch each stage's activations currently hold (-1 =
  /// none); drives the recompute-before-backward decision.
  std::vector<int> last_fwd_mb_;
  /// The last stage's logits for the micro-batch it just forwarded
  /// (1F1B runs its backward before any other last-stage forward).
  tensor::Tensor last_logits_;
};

}  // namespace swdnn::parallel
