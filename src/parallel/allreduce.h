#pragma once
// Ring all-reduce across simulated nodes.
//
// The paper's introduction frames swDNN inside large-scale parallel
// DNN training ("the increasing adoption of large-scale GPU clusters
// ... there are still algorithmic difficulties for scaling the training
// process"); a TaihuLight deployment shards the batch across nodes and
// averages gradients every step. This module provides that substrate:
// a functional ring all-reduce over in-memory buffers plus the standard
// cost model (2(N-1)/N * bytes at link bandwidth + per-step latency) so
// the examples can report communication budgets alongside compute.

#include <cstdint>
#include <span>
#include <vector>

namespace swdnn::parallel {

enum class ReduceOp { kSum, kAverage };

/// Reduces `buffers` (all the same length) element-wise in place: after
/// the call every buffer holds the reduction. Implemented as the
/// standard two-phase ring (reduce-scatter, then all-gather) over
/// N = buffers.size() ranks so the data movement matches what the cost
/// model charges; the result is identical to a tree reduction up to
/// f64 rounding (the ring fixes the summation order, so the call is
/// deterministic).
void ring_allreduce(std::vector<std::span<double>> buffers,
                    ReduceOp op = ReduceOp::kSum);

/// Fault-aware variant for degraded clusters: `alive[r]` marks which
/// ranks still respond. The ring is rebuilt over the survivors (dead
/// ranks are skipped entirely — their buffers are neither read nor
/// written), and for kAverage the divisor is the survivor count, so
/// the result is exactly what ring_allreduce would produce on the
/// surviving subset. Throws std::invalid_argument when `alive` and
/// `buffers` disagree in length or no rank is alive.
void ring_allreduce_resilient(std::vector<std::span<double>> buffers,
                              const std::vector<bool>& alive,
                              ReduceOp op = ReduceOp::kSum);

struct InterconnectSpec {
  double link_bandwidth_gbs = 8.0;  ///< per-direction node link (TaihuLight
                                    ///< network: ~8 GB/s injection per node)
  double hop_latency_us = 1.0;      ///< per ring step software+switch latency
};

/// Seconds one ring all-reduce of `bytes` takes across `nodes`:
/// 2*(N-1) steps moving bytes/N each.
double ring_allreduce_seconds(std::int64_t bytes, int nodes,
                              const InterconnectSpec& spec = {});

/// Parallel efficiency of data-parallel training: compute time per step
/// vs compute + all-reduce of the gradient bytes.
double data_parallel_efficiency(double compute_seconds,
                                std::int64_t gradient_bytes, int nodes,
                                const InterconnectSpec& spec = {});

}  // namespace swdnn::parallel
