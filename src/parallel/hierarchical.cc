#include "src/parallel/hierarchical.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/dnn/loss.h"
#include "src/runtime/task_pool.h"

namespace swdnn::parallel {

// ---------------------------------------------------------------------
// Topology

HierTopology HierTopology::grid(int nodes, int cgs_per_node) {
  if (nodes <= 0 || cgs_per_node <= 0) {
    throw std::invalid_argument("HierTopology::grid: bad arguments");
  }
  HierTopology t;
  t.nodes = nodes;
  t.cgs_per_node = cgs_per_node;
  t.total_ranks = nodes * cgs_per_node;
  return t;
}

HierTopology HierTopology::ragged(int total_ranks, int cgs_per_node) {
  if (total_ranks <= 0 || cgs_per_node <= 0) {
    throw std::invalid_argument("HierTopology::ragged: bad arguments");
  }
  HierTopology t;
  t.cgs_per_node = cgs_per_node;
  t.total_ranks = total_ranks;
  t.nodes = (total_ranks + cgs_per_node - 1) / cgs_per_node;
  return t;
}

int HierTopology::ranks_in_node(int node) const {
  const int first = first_rank(node);
  if (first >= total_ranks) return 0;
  return std::min(cgs_per_node, total_ranks - first);
}

// ---------------------------------------------------------------------
// Cost models

double flat_exchange_seconds(std::int64_t bytes, int live_ranks,
                             const HierCostModel& cost) {
  if (live_ranks <= 1 || bytes <= 0) return 0.0;
  return ring_allreduce_seconds(bytes, live_ranks, cost.inter);
}

HierExchangeBreakdown hier_exchange_seconds(
    std::int64_t bytes, const std::vector<int>& live_per_node,
    const HierCostModel& cost) {
  HierExchangeBreakdown out;
  if (bytes <= 0) return out;
  int live_nodes = 0;
  int busiest = 0;
  int total_live = 0;
  for (const int k : live_per_node) {
    if (k > 0) ++live_nodes;
    busiest = std::max(busiest, k);
    total_live += k;
  }
  if (total_live <= 1) return out;
  // All nodes run their intra phase concurrently, so the phase costs
  // what the node with the most live CGs pays. Each phase (reduce to
  // the leader, broadcast back) is half a NoC ring: (k-1) of the
  // 2*(k-1) steps.
  const double intra_half =
      sim::noc_allreduce_seconds(bytes, busiest, cost.intra) / 2.0;
  out.intra_reduce_seconds = intra_half;
  out.intra_broadcast_seconds = intra_half;
  // Node leaders (one per node with a live CG) ring over the network.
  out.inter_ring_seconds =
      live_nodes > 1 ? ring_allreduce_seconds(bytes, live_nodes, cost.inter)
                     : 0.0;
  return out;
}

// ---------------------------------------------------------------------
// Trainer

namespace {

/// One backward emission unit: a compiled graph node (or one eager
/// layer), in the order backward fires the hook.
struct BackwardUnit {
  std::size_t first_layer = 0;
  /// Layers in [first, last] that own parameters, ascending.
  std::vector<std::size_t> param_layers;
  std::int64_t param_elements = 0;
  std::int64_t max_param_elements = 0;
  double base_seconds = 0;  ///< modeled forward cost of the unit
};

}  // namespace

HierarchicalTrainer::HierarchicalTrainer(
    const HierTopology& topology,
    const std::function<std::unique_ptr<dnn::Network>()>& make_replica,
    double learning_rate, double momentum, HierCostModel cost,
    ComputeCostModel compute)
    : topology_(topology), cost_(cost), compute_(compute) {
  if (topology_.total_ranks <= 0 || topology_.cgs_per_node <= 0 ||
      topology_.nodes != (topology_.total_ranks + topology_.cgs_per_node - 1) /
                             topology_.cgs_per_node) {
    throw std::invalid_argument("HierarchicalTrainer: inconsistent topology");
  }
  for (int r = 0; r < topology_.total_ranks; ++r) {
    replicas_.push_back(make_replica());
    optimizers_.emplace_back(learning_rate, momentum);
    alive_.push_back(true);
  }
}

HierarchicalTrainer::~HierarchicalTrainer() = default;

void HierarchicalTrainer::compile(
    const std::vector<std::int64_t>& shard_input_dims,
    const arch::Sw26010Spec* spec) {
  if (buckets_ready_) {
    throw std::logic_error(
        "HierarchicalTrainer::compile: buckets already fixed");
  }
  shared_context_ = std::make_unique<dnn::BackendContext>(spec);
  dnn::CompileOptions options;
  options.context = shared_context_.get();
  for (auto& replica : replicas_) {
    replica->compile(shard_input_dims, options);
  }
  setup_buckets(shard_input_dims);
}

void HierarchicalTrainer::set_min_bucket_bytes(std::int64_t bytes) {
  if (buckets_ready_) {
    throw std::logic_error(
        "HierarchicalTrainer::set_min_bucket_bytes: buckets already fixed");
  }
  min_bucket_bytes_ = std::max<std::int64_t>(bytes, 0);
}

void HierarchicalTrainer::setup_buckets(
    const std::vector<std::int64_t>& input_dims) {
  dnn::Network& model = *replicas_.front();

  // Activation dims per value (input first): the compiled stats already
  // carry them; eager networks re-run shape inference here.
  std::vector<std::vector<std::int64_t>> dims;
  if (model.compiled()) {
    dims = model.compiled_stats().activation_dims;
  } else {
    dims.push_back(input_dims);
    for (std::size_t i = 0; i < model.num_layers(); ++i) {
      dims.push_back(model.layer(i).infer_shape(dims.back()));
    }
  }
  const auto value_bytes = [&dims](std::size_t v) {
    std::int64_t n = 1;
    for (const std::int64_t d : dims.at(v)) n *= d;
    return n * 8;
  };

  // Backward emission units, in hook-firing order: compiled = graph
  // nodes last-to-first, eager = layers last-to-first.
  std::vector<BackwardUnit> units;
  const auto add_unit = [&](std::size_t first_layer, std::size_t last_layer) {
    BackwardUnit u;
    u.first_layer = first_layer;
    for (std::size_t li = first_layer; li <= last_layer; ++li) {
      const auto params = model.layer(li).params();
      if (params.empty()) continue;
      u.param_layers.push_back(li);
      for (const auto& pg : params) {
        const std::int64_t n = pg.param->size();
        u.param_elements += n;
        u.max_param_elements = std::max(u.max_param_elements, n);
      }
    }
    u.base_seconds =
        static_cast<double>(value_bytes(last_layer + 1)) /
            (compute_.activation_gbs * 1e9) +
        static_cast<double>(u.param_elements * 8) / (compute_.param_gbs * 1e9) +
        compute_.unit_overhead_us * 1e-6;
    units.push_back(std::move(u));
  };
  if (model.compiled()) {
    const auto& nodes = model.graph().nodes();
    for (std::size_t i = nodes.size(); i-- > 0;) {
      add_unit(nodes[i].first_layer, nodes[i].last_layer);
    }
  } else {
    for (std::size_t i = model.num_layers(); i-- > 0;) {
      add_unit(i, i);
    }
  }

  // Partition the unit sequence into buckets: accumulate until the
  // bucket holds min_bucket_bytes of gradient (at least one element),
  // then cut. A trailing run of parameter-less units folds into the
  // last bucket. Boundaries depend only on the graph and the
  // threshold — that is the determinism contract's first half.
  std::vector<std::vector<std::size_t>> bucket_units;  // unit indices
  std::vector<std::size_t> open;
  std::int64_t open_bytes = 0;
  const std::int64_t cut_bytes = std::max<std::int64_t>(min_bucket_bytes_, 1);
  for (std::size_t u = 0; u < units.size(); ++u) {
    open.push_back(u);
    open_bytes += units[u].param_elements * 8;
    if (open_bytes >= cut_bytes) {
      bucket_units.push_back(std::move(open));
      open.clear();
      open_bytes = 0;
    }
  }
  if (!open.empty()) {
    if (open_bytes > 0 || bucket_units.empty()) {
      bucket_units.push_back(std::move(open));
    } else {
      auto& last = bucket_units.back();
      last.insert(last.end(), open.begin(), open.end());
    }
  }

  buckets_.clear();
  layer_to_bucket_.assign(model.num_layers(), 0);
  scratch_.clear();
  unit_backward_seconds_.clear();
  unit_bucket_.clear();
  forward_seconds_total_ = 0;
  unit_backward_seconds_.resize(units.size(), 0.0);
  unit_bucket_.resize(units.size(), 0);
  for (std::size_t b = 0; b < bucket_units.size(); ++b) {
    GradBucket bucket;
    std::int64_t max_elems = 0;
    for (const std::size_t u : bucket_units[b]) {
      const BackwardUnit& unit = units[u];
      bucket.backward_units += 1;
      bucket.elements += unit.param_elements;
      for (const std::size_t li : unit.param_layers) {
        bucket.layer_indices.push_back(li);
      }
      max_elems = std::max(max_elems, unit.max_param_elements);
      layer_to_bucket_[unit.first_layer] = b;
      unit_bucket_[u] = b;
    }
    std::sort(bucket.layer_indices.begin(), bucket.layer_indices.end());
    buckets_.push_back(std::move(bucket));
    scratch_.emplace_back();
    scratch_.back()[0].resize(static_cast<std::size_t>(max_elems));
    scratch_.back()[1].resize(static_cast<std::size_t>(max_elems));
  }
  for (std::size_t u = 0; u < units.size(); ++u) {
    forward_seconds_total_ += units[u].base_seconds;
    unit_backward_seconds_[u] = compute_.backward_factor * units[u].base_seconds;
  }
  bucket_events_ =
      std::make_unique<std::atomic<int>[]>(buckets_.size());
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    bucket_events_[b].store(0, std::memory_order_relaxed);
  }

  // Install the hooks once; step_active_ gates them so replicas can be
  // driven directly (reference runs, divergence probes) without
  // corrupting event counts.
  for (int r = 0; r < topology_.total_ranks; ++r) {
    replicas_[static_cast<std::size_t>(r)]->set_backward_node_hook(
        [this, r](std::size_t first_layer, std::size_t /*last_layer*/) {
          on_backward_unit(r, first_layer);
        });
  }
  buckets_ready_ = true;
}

void HierarchicalTrainer::on_backward_unit(int rank, std::size_t first_layer) {
  if (!step_active_) return;
  (void)rank;
  const std::size_t b = layer_to_bucket_.at(first_layer);
  // The release half publishes this replica's gradient writes for the
  // bucket; the acquire half lets the last arriver observe every other
  // replica's writes before reducing.
  const int done =
      bucket_events_[b].fetch_add(1, std::memory_order_acq_rel) + 1;
  const int needed =
      step_live_ranks_ * static_cast<int>(buckets_[b].backward_units);
  if (overlap_active_ && done == needed) {
    // Last arriver reduces inline, on whatever pool worker (or the
    // caller, serially) got here — overlapping with the backward
    // chunks still running for earlier layers on the other lanes.
    reduce_bucket(b);
  }
}

void HierarchicalTrainer::reduce_bucket(std::size_t bucket_index) {
  const GradBucket& bucket = buckets_[bucket_index];
  auto& node_partial = scratch_[bucket_index][0];
  auto& total = scratch_[bucket_index][1];
  const double inv_live = 1.0 / static_cast<double>(step_live_ranks_);
  for (const std::size_t li : bucket.layer_indices) {
    const std::size_t num_params =
        replicas_.front()->layer(li).params().size();
    for (std::size_t p = 0; p < num_params; ++p) {
      // Canonical fixed order: sum live CGs ascending within each node,
      // then nodes ascending — identical for every transport, schedule,
      // and arrival order. This IS the hierarchy's data flow (CGs
      // reduce to their node leader, leaders ring), so the flat-ring
      // transport is modeled as paying flat cost for hierarchical
      // numbers, keeping the two modes bitwise-comparable.
      std::size_t n = 0;
      bool first_node = true;
      for (int node = 0; node < topology_.nodes; ++node) {
        const int first = topology_.first_rank(node);
        const int count = topology_.ranks_in_node(node);
        bool first_rank_in_node = true;
        for (int r = first; r < first + count; ++r) {
          if (!alive_[static_cast<std::size_t>(r)]) continue;
          const auto grad = replicas_[static_cast<std::size_t>(r)]
                                ->layer(li)
                                .params()[p]
                                .grad->data();
          n = grad.size();
          if (first_rank_in_node) {
            std::copy(grad.begin(), grad.end(), node_partial.begin());
            first_rank_in_node = false;
          } else {
            for (std::size_t e = 0; e < n; ++e) node_partial[e] += grad[e];
          }
        }
        if (first_rank_in_node) continue;  // node fully dead
        if (first_node) {
          std::copy(node_partial.begin(), node_partial.begin() + n,
                    total.begin());
          first_node = false;
        } else {
          for (std::size_t e = 0; e < n; ++e) total[e] += node_partial[e];
        }
      }
      for (std::size_t e = 0; e < n; ++e) total[e] *= inv_live;
      for (std::size_t r = 0; r < replicas_.size(); ++r) {
        if (!alive_[r]) continue;
        auto grad = replicas_[r]->layer(li).params()[p].grad->data();
        std::copy(total.begin(), total.begin() + n, grad.begin());
      }
    }
  }
}

HierStepReport HierarchicalTrainer::train_step(
    const std::vector<dnn::Batch>& shards, const HierStepOptions& options) {
  if (shards.size() != replicas_.size()) {
    throw std::invalid_argument(
        "HierarchicalTrainer: one shard per rank required");
  }
  HierStepReport report;
  report.live_ranks = live_ranks();
  report.live_nodes = live_nodes();
  if (report.live_ranks == 0) {
    throw std::runtime_error("HierarchicalTrainer: all ranks dead");
  }
  if (!buckets_ready_) {
    int first_live = 0;
    while (!alive_[static_cast<std::size_t>(first_live)]) ++first_live;
    setup_buckets(shards[static_cast<std::size_t>(first_live)].images.dims());
  }

  step_live_ranks_ = report.live_ranks;
  overlap_active_ = options.overlap;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    bucket_events_[b].store(0, std::memory_order_relaxed);
  }
  step_active_ = true;

  // Concurrent per-rank forward/backward, one pool chunk per rank.
  // Per-rank stats land in per-rank slots and reduce below in ascending
  // rank order — bitwise-identical at any thread count. When
  // overlapping, the backward hooks fire on these workers and the last
  // arriver of each bucket reduces it inline (see on_backward_unit).
  const std::size_t n_ranks = replicas_.size();
  std::vector<double> rank_loss(n_ranks, 0.0);
  std::vector<std::int64_t> rank_correct(n_ranks, 0);
  std::vector<std::int64_t> rank_samples(n_ranks, 0);
  runtime::parallel_for(
      0, static_cast<std::int64_t>(n_ranks), 1,
      [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r) {
          const auto rank = static_cast<std::size_t>(r);
          if (!alive_[rank]) continue;
          const dnn::Batch& shard = shards[rank];
          const tensor::Tensor logits = replicas_[rank]->forward(shard.images);
          const dnn::LossResult loss =
              dnn::softmax_cross_entropy(logits, shard.labels);
          replicas_[rank]->backward(loss.d_logits);
          const auto samples = static_cast<std::int64_t>(shard.labels.size());
          rank_loss[rank] = loss.loss * static_cast<double>(samples);
          rank_correct[rank] = loss.correct;
          rank_samples[rank] = samples;
        }
      });
  step_active_ = false;

  std::int64_t total_samples = 0;
  for (std::size_t rank = 0; rank < n_ranks; ++rank) {
    if (!alive_[rank]) continue;
    report.loss += rank_loss[rank];
    report.correct += rank_correct[rank];
    total_samples += rank_samples[rank];
  }
  report.loss /= static_cast<double>(total_samples);

  // Serialized schedule: every bucket reduces here, after all backwards
  // returned, in emission order. (Overlapped: they already reduced, the
  // moment their last event landed.) Same kernel, same order per
  // bucket, disjoint buckets — bitwise-identical either way.
  if (!options.overlap) {
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      reduce_bucket(b);
    }
  }

  // Identical update on every live replica, concurrently.
  runtime::parallel_for(
      0, static_cast<std::int64_t>(n_ranks), 1,
      [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r) {
          const auto rank = static_cast<std::size_t>(r);
          if (!alive_[rank]) continue;
          optimizers_[rank].step(replicas_[rank]->params());
        }
      });

  // --- Modeled time, both transports and both schedules -------------
  std::int64_t bytes = 0;
  for (const auto& b : buckets_) bytes += b.bytes();
  report.exchange_bytes = bytes;
  report.forward_seconds = forward_seconds_total_;
  for (const double s : unit_backward_seconds_) report.backward_seconds += s;
  const std::vector<int> per_node = live_per_node();
  report.exchange_flat_seconds =
      flat_exchange_seconds(bytes, report.live_ranks, cost_);
  report.exchange_hier = hier_exchange_seconds(bytes, per_node, cost_);

  const double exchange_one_shot =
      options.exchange == ExchangeMode::kFlatRing
          ? report.exchange_flat_seconds
          : report.exchange_hier.total();
  report.step_serialized_seconds = report.forward_seconds +
                                   report.backward_seconds + exchange_one_shot;

  // Overlapped timeline: backward emits units in order; bucket b's
  // exchange may start once its last unit finished AND the previous
  // bucket's exchange drained (one in-flight collective at a time —
  // the network is serial even when compute is not).
  double t = report.forward_seconds;
  std::vector<double> bucket_ready(buckets_.size(), 0.0);
  for (std::size_t u = 0; u < unit_backward_seconds_.size(); ++u) {
    t += unit_backward_seconds_[u];
    bucket_ready[unit_bucket_[u]] = t;
  }
  double comm_end = report.forward_seconds;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    const double cost =
        options.exchange == ExchangeMode::kFlatRing
            ? flat_exchange_seconds(buckets_[b].bytes(), report.live_ranks,
                                    cost_)
            : hier_exchange_seconds(buckets_[b].bytes(), per_node, cost_)
                  .total();
    comm_end = std::max(comm_end, bucket_ready[b]) + cost;
  }
  report.step_overlapped_seconds = std::max(comm_end, t);
  return report;
}

void HierarchicalTrainer::kill_rank(int rank) {
  alive_.at(static_cast<std::size_t>(rank)) = false;
}

void HierarchicalTrainer::revive_rank(int rank) {
  const auto idx = static_cast<std::size_t>(rank);
  if (alive_.at(idx)) return;
  int donor = -1;
  for (std::size_t r = 0; r < alive_.size(); ++r) {
    if (alive_[r]) {
      donor = static_cast<int>(r);
      break;
    }
  }
  if (donor < 0) {
    throw std::runtime_error("revive_rank: no live replica to copy from");
  }
  const auto src = replicas_[static_cast<std::size_t>(donor)]->params();
  const auto dst = replicas_[idx]->params();
  for (std::size_t p = 0; p < src.size(); ++p) {
    const auto from = src[p].param->data();
    auto to = dst[p].param->data();
    std::copy(from.begin(), from.end(), to.begin());
  }
  optimizers_[idx].copy_state_from(
      optimizers_[static_cast<std::size_t>(donor)], dst, src);
  alive_[idx] = true;
}

int HierarchicalTrainer::live_ranks() const {
  int live = 0;
  for (const bool a : alive_) live += a ? 1 : 0;
  return live;
}

int HierarchicalTrainer::live_nodes() const {
  int live = 0;
  for (int node = 0; node < topology_.nodes; ++node) {
    const int first = topology_.first_rank(node);
    const int count = topology_.ranks_in_node(node);
    for (int r = first; r < first + count; ++r) {
      if (alive_[static_cast<std::size_t>(r)]) {
        ++live;
        break;
      }
    }
  }
  return live;
}

std::vector<int> HierarchicalTrainer::live_per_node() const {
  std::vector<int> per_node(static_cast<std::size_t>(topology_.nodes), 0);
  for (int node = 0; node < topology_.nodes; ++node) {
    const int first = topology_.first_rank(node);
    const int count = topology_.ranks_in_node(node);
    for (int r = first; r < first + count; ++r) {
      if (alive_[static_cast<std::size_t>(r)]) {
        ++per_node[static_cast<std::size_t>(node)];
      }
    }
  }
  return per_node;
}

double HierarchicalTrainer::max_replica_divergence() {
  double worst = 0;
  int reference_rank = -1;
  for (std::size_t r = 0; r < alive_.size(); ++r) {
    if (alive_[r]) {
      reference_rank = static_cast<int>(r);
      break;
    }
  }
  if (reference_rank < 0) return 0;
  const auto reference =
      replicas_[static_cast<std::size_t>(reference_rank)]->params();
  for (std::size_t rank = static_cast<std::size_t>(reference_rank) + 1;
       rank < replicas_.size(); ++rank) {
    if (!alive_[rank]) continue;
    const auto params = replicas_[rank]->params();
    for (std::size_t p = 0; p < params.size(); ++p) {
      worst = std::max(worst,
                       reference[p].param->max_abs_diff(*params[p].param));
    }
  }
  return worst;
}

std::int64_t HierarchicalTrainer::gradient_bytes() {
  std::int64_t bytes = 0;
  for (const auto& pg : replicas_.front()->params()) {
    bytes += pg.grad->size() * 8;
  }
  return bytes;
}

}  // namespace swdnn::parallel
