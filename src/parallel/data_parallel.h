#pragma once
// Data-parallel training across simulated nodes.
//
// Each node holds a full replica of the network and computes gradients
// on its shard of the batch; a ring all-reduce averages the gradients;
// every replica applies the same update and stays bit-identical — the
// standard synchronous-SGD scheme a TaihuLight-scale deployment of
// swDNN would run, with the communication budget reported through the
// interconnect cost model.
//
// Replicas must be constructed identically (same architecture, same
// seed); synchronize() can assert and repair drift.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/dnn/backend_context.h"
#include "src/dnn/loss.h"
#include "src/dnn/network.h"
#include "src/dnn/sgd.h"
#include "src/dnn/trainer.h"
#include "src/parallel/allreduce.h"

namespace swdnn::arch {
struct Sw26010Spec;
}  // namespace swdnn::arch

namespace swdnn::parallel {

class DataParallelTrainer {
 public:
  /// `make_replica` is called once per node and must produce identical
  /// networks (construct with the same seed).
  DataParallelTrainer(int nodes,
                      const std::function<std::unique_ptr<dnn::Network>()>&
                          make_replica,
                      double learning_rate, double momentum = 0.0,
                      InterconnectSpec interconnect = {});

  int nodes() const { return static_cast<int>(replicas_.size()); }
  dnn::Network& replica(int node) { return *replicas_.at(
      static_cast<std::size_t>(node)); }

  /// Compiles every replica for its per-node shard shape against ONE
  /// shared BackendContext (one Handle, one plan cache): replicas run
  /// identical shapes, so the first replica's plan warm-up serves all
  /// of them, and fault/fallback accounting aggregates in one place.
  /// `spec` = nullptr uses the real SW26010 numbers.
  void compile(const std::vector<std::int64_t>& shard_input_dims,
               const arch::Sw26010Spec* spec = nullptr);

  /// The context all replicas dispatch through (null before compile()).
  dnn::BackendContext* shared_context() { return shared_context_.get(); }

  /// One synchronous step: per-node forward/backward on its shard (live
  /// replicas step concurrently on the host task pool; the all-reduce
  /// stays the synchronization point), gradient all-reduce (average),
  /// identical optimizer step on every replica. `shards` must have one
  /// batch per node (dead nodes' shards are ignored). Returns the
  /// sample-weighted mean loss over live nodes plus this step's modeled
  /// communication time. Results are bitwise-identical to sequential
  /// stepping at any thread count — per-node stats land in per-node
  /// slots and reduce in fixed node order.
  struct StepResult {
    double loss = 0;
    std::int64_t correct = 0;
    double comm_seconds = 0;
    int live_nodes = 0;
  };
  StepResult train_step(const std::vector<dnn::Batch>& shards);

  // --- Self-healing --------------------------------------------------
  /// Simulates a node failure: the rank stops computing, its gradients
  /// are excluded, and the all-reduce ring is rebuilt over survivors
  /// (the average rescales to the live count). Training continues.
  void kill_rank(int node);

  /// Brings a failed rank back: its parameters are restored from a
  /// live survivor so it rejoins in lockstep.
  void revive_rank(int node);

  bool rank_alive(int node) const {
    return alive_.at(static_cast<std::size_t>(node));
  }
  int live_ranks() const;

  /// Largest parameter divergence across live replicas (0 when in
  /// sync; dead replicas are excluded — their parameters are stale).
  double max_replica_divergence();

  /// Bytes all-reduced per step (all parameters).
  std::int64_t gradient_bytes();

 private:
  std::vector<std::unique_ptr<dnn::Network>> replicas_;
  std::vector<dnn::Sgd> optimizers_;
  std::vector<bool> alive_;
  InterconnectSpec interconnect_;
  std::unique_ptr<dnn::BackendContext> shared_context_;
};

}  // namespace swdnn::parallel
