#pragma once
// Data-parallel training across simulated nodes.
//
// Each node holds a full replica of the network and computes gradients
// on its shard of the batch; a ring all-reduce averages the gradients;
// every replica applies the same update and stays bit-identical — the
// standard synchronous-SGD scheme a TaihuLight-scale deployment of
// swDNN would run, with the communication budget reported through the
// interconnect cost model.
//
// Replicas must be constructed identically (same architecture, same
// seed); synchronize() can assert and repair drift.

#include <functional>
#include <memory>
#include <vector>

#include "src/dnn/loss.h"
#include "src/dnn/network.h"
#include "src/dnn/sgd.h"
#include "src/dnn/trainer.h"
#include "src/parallel/allreduce.h"

namespace swdnn::parallel {

class DataParallelTrainer {
 public:
  /// `make_replica` is called once per node and must produce identical
  /// networks (construct with the same seed).
  DataParallelTrainer(int nodes,
                      const std::function<std::unique_ptr<dnn::Network>()>&
                          make_replica,
                      double learning_rate, double momentum = 0.0,
                      InterconnectSpec interconnect = {});

  int nodes() const { return static_cast<int>(replicas_.size()); }
  dnn::Network& replica(int node) { return *replicas_.at(
      static_cast<std::size_t>(node)); }

  /// One synchronous step: per-node forward/backward on its shard,
  /// gradient all-reduce (average), identical optimizer step on every
  /// replica. `shards` must have one batch per node. Returns the
  /// sample-weighted mean loss plus this step's modeled communication
  /// time.
  struct StepResult {
    double loss = 0;
    std::int64_t correct = 0;
    double comm_seconds = 0;
  };
  StepResult train_step(const std::vector<dnn::Batch>& shards);

  /// Largest parameter divergence across replicas (0 when in sync).
  double max_replica_divergence();

  /// Bytes all-reduced per step (all parameters).
  std::int64_t gradient_bytes();

 private:
  std::vector<std::unique_ptr<dnn::Network>> replicas_;
  std::vector<dnn::Sgd> optimizers_;
  InterconnectSpec interconnect_;
};

}  // namespace swdnn::parallel
