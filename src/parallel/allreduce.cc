#include "src/parallel/allreduce.h"

#include <stdexcept>

namespace swdnn::parallel {

void ring_allreduce(std::vector<std::span<double>> buffers, ReduceOp op) {
  const int n = static_cast<int>(buffers.size());
  if (n == 0) throw std::invalid_argument("ring_allreduce: no ranks");
  const std::size_t len = buffers[0].size();
  for (const auto& b : buffers) {
    if (b.size() != len) {
      throw std::invalid_argument("ring_allreduce: length mismatch");
    }
  }
  if (n == 1 || len == 0) {
    if (op == ReduceOp::kAverage) return;  // average of one = itself
    return;
  }

  // Chunk boundaries: chunk c covers [starts[c], starts[c+1]).
  std::vector<std::size_t> starts(static_cast<std::size_t>(n) + 1);
  for (int c = 0; c <= n; ++c) {
    starts[static_cast<std::size_t>(c)] =
        len * static_cast<std::size_t>(c) / static_cast<std::size_t>(n);
  }

  // Phase 1: reduce-scatter. At step s, rank r adds its chunk
  // (r - s + n) % n into rank (r+1)'s copy of that chunk. After n-1
  // steps rank r holds the full sum of chunk (r+1) % n.
  for (int step = 0; step < n - 1; ++step) {
    for (int r = 0; r < n; ++r) {
      const int src = r;
      const int dst = (r + 1) % n;
      const int chunk = (r - step + n) % n;
      for (std::size_t i = starts[static_cast<std::size_t>(chunk)];
           i < starts[static_cast<std::size_t>(chunk) + 1]; ++i) {
        buffers[static_cast<std::size_t>(dst)][i] +=
            buffers[static_cast<std::size_t>(src)][i];
      }
    }
    // The adds above must all read pre-step values of the *chunks being
    // sent*; since each step sends a different chunk per rank and the
    // ring is a permutation, in-place sequential application is safe:
    // rank r's outgoing chunk (r-step) is never the chunk being written
    // at r this step ((r-1-step+n)%n != (r-step+n)%n for n > 1).
  }

  // Phase 2: all-gather. Rank (c+n-1)%n owns finished chunk c; pass
  // finished chunks around the ring.
  for (int step = 0; step < n - 1; ++step) {
    for (int r = 0; r < n; ++r) {
      const int src = r;
      const int dst = (r + 1) % n;
      // src holds finished chunk (r + n - step) % n ... derive: after
      // reduce-scatter rank r owns chunk (r+1)%n; at gather step s it
      // forwards chunk (r + 1 - s + n) % n.
      const int chunk = (r + 1 - step % n + n) % n;
      for (std::size_t i = starts[static_cast<std::size_t>(chunk)];
           i < starts[static_cast<std::size_t>(chunk) + 1]; ++i) {
        buffers[static_cast<std::size_t>(dst)][i] =
            buffers[static_cast<std::size_t>(src)][i];
      }
    }
  }

  if (op == ReduceOp::kAverage) {
    const double inv = 1.0 / static_cast<double>(n);
    for (auto& b : buffers) {
      for (double& v : b) v *= inv;
    }
  }
}

void ring_allreduce_resilient(std::vector<std::span<double>> buffers,
                              const std::vector<bool>& alive, ReduceOp op) {
  if (alive.size() != buffers.size()) {
    throw std::invalid_argument(
        "ring_allreduce_resilient: alive/buffers length mismatch");
  }
  std::vector<std::span<double>> survivors;
  survivors.reserve(buffers.size());
  for (std::size_t r = 0; r < buffers.size(); ++r) {
    if (alive[r]) survivors.push_back(buffers[r]);
  }
  if (survivors.empty()) {
    throw std::invalid_argument("ring_allreduce_resilient: no rank alive");
  }
  // The survivor list IS the rebuilt ring: the plain ring over it skips
  // dead ranks and, for kAverage, rescales by the live count.
  ring_allreduce(std::move(survivors), op);
}

double ring_allreduce_seconds(std::int64_t bytes, int nodes,
                              const InterconnectSpec& spec) {
  if (nodes <= 1) return 0.0;
  const double n = static_cast<double>(nodes);
  const double chunk_bytes = static_cast<double>(bytes) / n;
  const double steps = 2.0 * (n - 1.0);
  return steps * (chunk_bytes / (spec.link_bandwidth_gbs * 1e9) +
                  spec.hop_latency_us * 1e-6);
}

double data_parallel_efficiency(double compute_seconds,
                                std::int64_t gradient_bytes, int nodes,
                                const InterconnectSpec& spec) {
  const double comm = ring_allreduce_seconds(gradient_bytes, nodes, spec);
  return compute_seconds / (compute_seconds + comm);
}

}  // namespace swdnn::parallel
