#include "src/parallel/pipeline.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace swdnn::parallel {

std::vector<dnn::Batch> split_micro_batches(const dnn::Batch& batch,
                                            int parts) {
  const auto total = static_cast<std::int64_t>(batch.labels.size());
  if (parts <= 0 || total < parts) {
    throw std::invalid_argument("split_micro_batches: bad part count");
  }
  const auto& dims = batch.images.dims();
  if (dims.empty() || dims.back() != total) {
    throw std::invalid_argument(
        "split_micro_batches: trailing image dim must be the batch size");
  }
  // The batch dimension is innermost (row-major, trailing), so each
  // micro-batch is a strided gather: every leading-index "row" of the
  // image tensor contributes a contiguous [begin, end) span.
  const std::int64_t rows = batch.images.size() / total;
  const std::int64_t base = total / parts;
  const std::int64_t rem = total % parts;
  const auto src = batch.images.data();
  std::vector<dnn::Batch> out;
  out.reserve(static_cast<std::size_t>(parts));
  std::int64_t cursor = 0;
  for (int p = 0; p < parts; ++p) {
    const std::int64_t len = base + (p < rem ? 1 : 0);
    std::vector<std::int64_t> mb_dims = dims;
    mb_dims.back() = len;
    dnn::Batch mb;
    mb.images = tensor::Tensor(mb_dims);
    auto dst = mb.images.data();
    for (std::int64_t row = 0; row < rows; ++row) {
      const double* from = src.data() + row * total + cursor;
      std::copy(from, from + len, dst.data() + row * len);
    }
    mb.labels.assign(batch.labels.begin() + cursor,
                     batch.labels.begin() + cursor + len);
    out.push_back(std::move(mb));
    cursor += len;
  }
  return out;
}

std::vector<std::vector<PipeStep>> build_1f1b_schedule(int stages,
                                                       int micro_batches) {
  if (stages <= 0 || micro_batches <= 0) {
    throw std::invalid_argument("build_1f1b_schedule: bad arguments");
  }
  const int S = stages;
  const int M = micro_batches;
  std::vector<int> f_done(static_cast<std::size_t>(S), 0);
  std::vector<int> b_done(static_cast<std::size_t>(S), 0);
  std::vector<std::vector<PipeStep>> ticks;
  const int cap = 4 * (S + M) + 16;
  while (true) {
    bool all_done = true;
    for (const int b : b_done) all_done &= b == M;
    if (all_done) break;
    if (static_cast<int>(ticks.size()) > cap) {
      throw std::logic_error("build_1f1b_schedule: schedule did not drain");
    }
    // Decisions read only state from BEFORE this tick, so the steps of
    // one tick are truly concurrent.
    const std::vector<int> f_prev = f_done;
    const std::vector<int> b_prev = b_done;
    std::vector<PipeStep> tick;
    for (int s = 0; s < S; ++s) {
      const auto us = static_cast<std::size_t>(s);
      const int nf = f_prev[us];
      const int nb = b_prev[us];
      const bool can_f =
          nf < M && (s == 0 || f_prev[static_cast<std::size_t>(s - 1)] > nf);
      const bool can_b =
          nb < M && f_prev[us] > nb &&
          (s == S - 1 || b_prev[static_cast<std::size_t>(s + 1)] > nb);
      // 1F1B: once the warm-up forwards (min(S - s, M)) are in flight,
      // only a backward may issue — the stage idles rather than exceed
      // the warm-up residency (that bound is what sizes the staging
      // arena).
      const bool at_capacity = nf >= std::min(M, nb + (S - s));
      if (can_b && (at_capacity || !can_f)) {
        tick.push_back(PipeStep{s, PipeAction::kBackward, nb});
        b_done[us] = nb + 1;
      } else if (can_f && !at_capacity) {
        tick.push_back(PipeStep{s, PipeAction::kForward, nf});
        f_done[us] = nf + 1;
      }
    }
    ticks.push_back(std::move(tick));
  }
  return ticks;
}

PipelineParallelTrainer::PipelineParallelTrainer(
    int stages, int micro_batches,
    const std::function<std::unique_ptr<dnn::Network>()>& make_network,
    double learning_rate, double momentum)
    : micro_batches_(micro_batches) {
  auto net = make_network();
  auto layers = net->release_layers();
  const auto L = layers.size();
  if (stages <= 0 || static_cast<std::size_t>(stages) > L) {
    throw std::invalid_argument(
        "PipelineParallelTrainer: stages must be in [1, num_layers]");
  }
  if (micro_batches <= 0) {
    throw std::invalid_argument(
        "PipelineParallelTrainer: micro_batches must be >= 1");
  }
  const std::size_t base = L / static_cast<std::size_t>(stages);
  const std::size_t rem = L % static_cast<std::size_t>(stages);
  std::size_t cursor = 0;
  for (int s = 0; s < stages; ++s) {
    const std::size_t len = base + (static_cast<std::size_t>(s) < rem ? 1 : 0);
    auto stage_net = std::make_unique<dnn::Network>();
    for (std::size_t i = 0; i < len; ++i) {
      stage_net->add(std::move(layers[cursor + i]));
    }
    stage_ranges_.emplace_back(cursor, cursor + len - 1);
    stage_nets_.push_back(std::move(stage_net));
    optimizers_.emplace_back(learning_rate, momentum);
    cursor += len;
  }

  schedule_ = build_1f1b_schedule(stages, micro_batches);
  tick_f_.assign(static_cast<std::size_t>(stages),
                 std::vector<int>(static_cast<std::size_t>(micro_batches), -1));
  tick_b_ = tick_f_;
  for (std::size_t t = 0; t < schedule_.size(); ++t) {
    for (const PipeStep& step : schedule_[t]) {
      auto& table = step.action == PipeAction::kForward ? tick_f_ : tick_b_;
      table[static_cast<std::size_t>(step.stage)]
           [static_cast<std::size_t>(step.micro_batch)] =
               static_cast<int>(t);
    }
  }
  last_fwd_mb_.assign(static_cast<std::size_t>(stages), -1);
}

PipelineParallelTrainer::~PipelineParallelTrainer() = default;

void PipelineParallelTrainer::compile(
    const std::vector<std::int64_t>& micro_batch_input_dims,
    const arch::Sw26010Spec* spec) {
  shared_context_ = std::make_unique<dnn::BackendContext>(spec);
  dnn::CompileOptions options;
  options.context = shared_context_.get();
  std::vector<std::int64_t> dims = micro_batch_input_dims;
  for (auto& stage_net : stage_nets_) {
    const auto& stats = stage_net->compile(dims, options);
    dims = stats.activation_dims.back();
  }
  setup_staging(micro_batch_input_dims);
}

void PipelineParallelTrainer::setup_staging(
    const std::vector<std::int64_t>& micro_batch_input_dims) {
  const int S = stages();
  const int M = micro_batches_;
  // Per-stage input/output dims for this micro-batch shape.
  std::vector<std::vector<std::int64_t>> stage_in;
  std::vector<std::vector<std::int64_t>> stage_out;
  std::vector<std::int64_t> dims = micro_batch_input_dims;
  for (int s = 0; s < S; ++s) {
    stage_in.push_back(dims);
    dnn::Network& net = *stage_nets_[static_cast<std::size_t>(s)];
    for (std::size_t i = 0; i < net.num_layers(); ++i) {
      dims = net.layer(i).infer_shape(dims);
    }
    stage_out.push_back(dims);
  }

  // Boundary slots, liveness straight from the schedule: a staged
  // activation lives from its producing forward to the consumer
  // stage's backward (the recompute re-reads it there); a staged
  // gradient from the producing backward to the upstream backward.
  staging_.reset();
  std::vector<std::vector<std::size_t>> fwd_slot(
      static_cast<std::size_t>(S > 0 ? S - 1 : 0));
  auto bwd_slot = fwd_slot;
  for (int b = 0; b + 1 < S; ++b) {
    const auto ub = static_cast<std::size_t>(b);
    for (int m = 0; m < M; ++m) {
      const auto um = static_cast<std::size_t>(m);
      fwd_slot[ub].push_back(staging_.request(
          stage_out[ub], tick_f_[ub][um], tick_b_[ub + 1][um]));
      bwd_slot[ub].push_back(staging_.request(
          stage_out[ub], tick_b_[ub + 1][um], tick_b_[ub][um]));
    }
  }
  staging_.plan();
  fwd_views_.assign(fwd_slot.size(), {});
  bwd_views_.assign(bwd_slot.size(), {});
  for (std::size_t b = 0; b < fwd_slot.size(); ++b) {
    for (std::size_t m = 0; m < static_cast<std::size_t>(M); ++m) {
      fwd_views_[b].push_back(staging_.view(fwd_slot[b][m]));
      bwd_views_[b].push_back(staging_.view(bwd_slot[b][m]));
    }
  }

  input_scratch_.clear();
  dout_scratch_.clear();
  grad_acc_.clear();
  for (int s = 0; s < S; ++s) {
    const auto us = static_cast<std::size_t>(s);
    input_scratch_.emplace_back(
        s > 0 ? stage_in[us] : std::vector<std::int64_t>{1});
    dout_scratch_.emplace_back(
        s < S - 1 ? stage_out[us] : std::vector<std::int64_t>{1});
    std::vector<tensor::Tensor> accs;
    for (const auto& pg : stage_nets_[us]->params()) {
      accs.emplace_back(pg.param->dims());
    }
    grad_acc_.push_back(std::move(accs));
  }
  staged_mb_dims_ = micro_batch_input_dims;
  staging_ready_ = true;
}

PipelineParallelTrainer::StepResult PipelineParallelTrainer::train_step(
    const dnn::Batch& batch) {
  const auto total = static_cast<std::int64_t>(batch.labels.size());
  if (total % micro_batches_ != 0) {
    throw std::invalid_argument(
        "PipelineParallelTrainer: batch size " + std::to_string(total) +
        " not divisible by micro_batches " + std::to_string(micro_batches_));
  }
  const auto mbs = split_micro_batches(batch, micro_batches_);
  if (!staging_ready_) {
    setup_staging(mbs.front().images.dims());
  } else if (mbs.front().images.dims() != staged_mb_dims_) {
    throw std::invalid_argument(
        "PipelineParallelTrainer: micro-batch shape does not match the "
        "staged shape");
  }

  const int S = stages();
  StepResult result;
  result.ticks = static_cast<int>(schedule_.size());
  std::fill(last_fwd_mb_.begin(), last_fwd_mb_.end(), -1);
  double loss_sum = 0;

  // Fetches the staged (or raw, for stage 0) input of (s, m) into the
  // stage's scratch and forwards it, refreshing last_logits_ on the
  // last stage. `stage_output` must be false on the recompute path:
  // by then the output slot's liveness has ended and its bytes may
  // back a different in-flight boundary.
  const auto run_forward = [&](int s, int m, bool stage_output) -> void {
    const auto us = static_cast<std::size_t>(s);
    const auto um = static_cast<std::size_t>(m);
    const tensor::Tensor* in;
    if (s == 0) {
      in = &mbs[um].images;
    } else {
      fwd_views_[us - 1][um].copy_to(input_scratch_[us]);
      in = &input_scratch_[us];
    }
    const tensor::Tensor& out = stage_nets_[us]->forward(*in);
    if (s == S - 1) {
      last_logits_ = out;
    } else if (stage_output) {
      fwd_views_[us][um].copy_from(out);
    }
    last_fwd_mb_[us] = m;
  };

  for (const auto& tick : schedule_) {
    for (const PipeStep& step : tick) {
      const int s = step.stage;
      const int m = step.micro_batch;
      const auto us = static_cast<std::size_t>(s);
      const auto um = static_cast<std::size_t>(m);
      if (step.action == PipeAction::kForward) {
        run_forward(s, m, /*stage_output=*/true);
        continue;
      }
      // Backward: restore this micro-batch's activations first. The
      // recompute is bitwise-exact (deterministic forward from the
      // staged input), and skipped when the stage's last forward was
      // already (s, m) — always true on the last stage under 1F1B.
      if (last_fwd_mb_[us] != m) {
        run_forward(s, m, /*stage_output=*/false);
        ++result.recomputed_forwards;
      }
      const tensor::Tensor* d_out;
      dnn::LossResult loss;
      if (s == S - 1) {
        loss = dnn::softmax_cross_entropy(last_logits_, mbs[um].labels);
        const auto samples = static_cast<double>(mbs[um].labels.size());
        const double scale = samples / static_cast<double>(total);
        for (double& g : loss.d_logits.data()) g *= scale;
        loss_sum += loss.loss * samples;
        result.correct += loss.correct;
        d_out = &loss.d_logits;
      } else {
        bwd_views_[us][um].copy_to(dout_scratch_[us]);
        d_out = &dout_scratch_[us];
      }
      const tensor::Tensor& d_in = stage_nets_[us]->backward(*d_out);
      if (s > 0) {
        bwd_views_[us - 1][um].copy_from(d_in);
      }
      // Ascending micro-batch accumulation: 1F1B executes each stage's
      // backwards in micro-batch order, so accumulate as they land.
      const auto params = stage_nets_[us]->params();
      for (std::size_t p = 0; p < params.size(); ++p) {
        const auto grad = params[p].grad->data();
        auto acc = grad_acc_[us][p].data();
        if (m == 0) {
          std::copy(grad.begin(), grad.end(), acc.begin());
        } else {
          for (std::size_t e = 0; e < grad.size(); ++e) acc[e] += grad[e];
        }
      }
    }
  }

  for (int s = 0; s < S; ++s) {
    const auto us = static_cast<std::size_t>(s);
    const auto params = stage_nets_[us]->params();
    for (std::size_t p = 0; p < params.size(); ++p) {
      const auto acc = grad_acc_[us][p].data();
      auto grad = params[p].grad->data();
      std::copy(acc.begin(), acc.end(), grad.begin());
    }
    optimizers_[us].step(params);
  }
  result.loss = loss_sum / static_cast<double>(total);
  return result;
}

PipelineParallelTrainer::StepResult PipelineParallelTrainer::reference_step(
    dnn::Network& net, dnn::Sgd& opt, const dnn::Batch& batch,
    int micro_batches) {
  const auto total = static_cast<std::int64_t>(batch.labels.size());
  if (total % micro_batches != 0) {
    throw std::invalid_argument(
        "reference_step: batch size not divisible by micro_batches");
  }
  const auto mbs = split_micro_batches(batch, micro_batches);
  StepResult result;
  double loss_sum = 0;
  std::vector<tensor::Tensor> accs;
  for (const auto& pg : net.params()) accs.emplace_back(pg.param->dims());
  for (int m = 0; m < micro_batches; ++m) {
    const auto um = static_cast<std::size_t>(m);
    const tensor::Tensor& logits = net.forward(mbs[um].images);
    dnn::LossResult loss = dnn::softmax_cross_entropy(logits, mbs[um].labels);
    const auto samples = static_cast<double>(mbs[um].labels.size());
    const double scale = samples / static_cast<double>(total);
    for (double& g : loss.d_logits.data()) g *= scale;
    loss_sum += loss.loss * samples;
    result.correct += loss.correct;
    net.backward(loss.d_logits);
    const auto params = net.params();
    for (std::size_t p = 0; p < params.size(); ++p) {
      const auto grad = params[p].grad->data();
      auto acc = accs[p].data();
      if (m == 0) {
        std::copy(grad.begin(), grad.end(), acc.begin());
      } else {
        for (std::size_t e = 0; e < grad.size(); ++e) acc[e] += grad[e];
      }
    }
  }
  const auto params = net.params();
  for (std::size_t p = 0; p < params.size(); ++p) {
    const auto acc = accs[p].data();
    auto grad = params[p].grad->data();
    std::copy(acc.begin(), acc.end(), grad.begin());
  }
  opt.step(params);
  result.loss = loss_sum / static_cast<double>(total);
  return result;
}

double PipelineParallelTrainer::max_param_divergence(dnn::Network& net) {
  const auto reference = net.params();
  std::size_t cursor = 0;
  double worst = 0;
  for (auto& stage_net : stage_nets_) {
    for (const auto& pg : stage_net->params()) {
      worst = std::max(worst,
                       reference.at(cursor).param->max_abs_diff(*pg.param));
      ++cursor;
    }
  }
  if (cursor != reference.size()) {
    throw std::invalid_argument(
        "max_param_divergence: parameter count mismatch");
  }
  return worst;
}

}  // namespace swdnn::parallel
