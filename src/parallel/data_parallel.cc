#include "src/parallel/data_parallel.h"

#include <cmath>
#include <stdexcept>

namespace swdnn::parallel {

DataParallelTrainer::DataParallelTrainer(
    int nodes,
    const std::function<std::unique_ptr<dnn::Network>()>& make_replica,
    double learning_rate, double momentum, InterconnectSpec interconnect)
    : interconnect_(interconnect) {
  if (nodes <= 0) {
    throw std::invalid_argument("DataParallelTrainer: nodes must be >= 1");
  }
  for (int node = 0; node < nodes; ++node) {
    replicas_.push_back(make_replica());
    optimizers_.emplace_back(learning_rate, momentum);
  }
}

DataParallelTrainer::StepResult DataParallelTrainer::train_step(
    const std::vector<dnn::Batch>& shards) {
  if (shards.size() != replicas_.size()) {
    throw std::invalid_argument(
        "DataParallelTrainer: one shard per node required");
  }
  StepResult result;
  std::int64_t total_samples = 0;

  // Local forward/backward per node.
  for (std::size_t node = 0; node < replicas_.size(); ++node) {
    const dnn::Batch& shard = shards[node];
    const tensor::Tensor logits = replicas_[node]->forward(shard.images);
    const dnn::LossResult loss =
        dnn::softmax_cross_entropy(logits, shard.labels);
    replicas_[node]->backward(loss.d_logits);
    const auto samples = static_cast<std::int64_t>(shard.labels.size());
    result.loss += loss.loss * static_cast<double>(samples);
    result.correct += loss.correct;
    total_samples += samples;
  }
  result.loss /= static_cast<double>(total_samples);

  // Gradient all-reduce (average), parameter by parameter.
  std::int64_t bytes = 0;
  const std::size_t num_params = replicas_[0]->params().size();
  for (std::size_t p = 0; p < num_params; ++p) {
    std::vector<std::span<double>> grads;
    grads.reserve(replicas_.size());
    for (auto& replica : replicas_) {
      grads.push_back(replica->params()[p].grad->data());
    }
    bytes += static_cast<std::int64_t>(grads[0].size_bytes());
    ring_allreduce(grads, ReduceOp::kAverage);
  }
  result.comm_seconds = ring_allreduce_seconds(
      bytes, static_cast<int>(replicas_.size()), interconnect_);

  // Identical update everywhere.
  for (std::size_t node = 0; node < replicas_.size(); ++node) {
    optimizers_[node].step(replicas_[node]->params());
  }
  return result;
}

double DataParallelTrainer::max_replica_divergence() {
  double worst = 0;
  const auto reference = replicas_[0]->params();
  for (std::size_t node = 1; node < replicas_.size(); ++node) {
    const auto params = replicas_[node]->params();
    for (std::size_t p = 0; p < params.size(); ++p) {
      worst = std::max(worst,
                       reference[p].param->max_abs_diff(*params[p].param));
    }
  }
  return worst;
}

std::int64_t DataParallelTrainer::gradient_bytes() {
  std::int64_t bytes = 0;
  for (const auto& pg : replicas_[0]->params()) {
    bytes += pg.grad->size() * 8;
  }
  return bytes;
}

}  // namespace swdnn::parallel
