#include "src/parallel/data_parallel.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/runtime/task_pool.h"

namespace swdnn::parallel {

DataParallelTrainer::DataParallelTrainer(
    int nodes,
    const std::function<std::unique_ptr<dnn::Network>()>& make_replica,
    double learning_rate, double momentum, InterconnectSpec interconnect)
    : interconnect_(interconnect) {
  if (nodes <= 0) {
    throw std::invalid_argument("DataParallelTrainer: nodes must be >= 1");
  }
  for (int node = 0; node < nodes; ++node) {
    replicas_.push_back(make_replica());
    optimizers_.emplace_back(learning_rate, momentum);
    alive_.push_back(true);
  }
}

void DataParallelTrainer::compile(
    const std::vector<std::int64_t>& shard_input_dims,
    const arch::Sw26010Spec* spec) {
  shared_context_ = std::make_unique<dnn::BackendContext>(spec);
  dnn::CompileOptions options;
  options.context = shared_context_.get();
  for (auto& replica : replicas_) {
    replica->compile(shard_input_dims, options);
  }
}

DataParallelTrainer::StepResult DataParallelTrainer::train_step(
    const std::vector<dnn::Batch>& shards) {
  if (shards.size() != replicas_.size()) {
    throw std::invalid_argument(
        "DataParallelTrainer: one shard per node required");
  }
  StepResult result;
  result.live_nodes = live_ranks();
  if (result.live_nodes == 0) {
    throw std::runtime_error("DataParallelTrainer: all ranks dead");
  }
  std::int64_t total_samples = 0;

  // Local forward/backward per live node, one pool chunk per node, so
  // replicas step concurrently; dead ranks compute nothing. Any layer
  // parallelism nested inside a replica runs inline on that worker —
  // the inter-replica split is the one that pays off. Each node writes
  // its own stat slots; the scalar reduction below walks them in
  // ascending node order, matching the old serial loop bitwise. The
  // pool rethrows the lowest-index node's exception, again matching the
  // serial loop's first-failure behavior.
  const std::size_t n_nodes = replicas_.size();
  std::vector<double> node_loss(n_nodes, 0.0);
  std::vector<std::int64_t> node_correct(n_nodes, 0);
  std::vector<std::int64_t> node_samples(n_nodes, 0);
  runtime::parallel_for(
      0, static_cast<std::int64_t>(n_nodes), 1,
      [&](std::int64_t n0, std::int64_t n1) {
        for (std::int64_t n = n0; n < n1; ++n) {
          const auto node = static_cast<std::size_t>(n);
          if (!alive_[node]) continue;
          const dnn::Batch& shard = shards[node];
          const tensor::Tensor logits =
              replicas_[node]->forward(shard.images);
          const dnn::LossResult loss =
              dnn::softmax_cross_entropy(logits, shard.labels);
          replicas_[node]->backward(loss.d_logits);
          const auto samples =
              static_cast<std::int64_t>(shard.labels.size());
          node_loss[node] = loss.loss * static_cast<double>(samples);
          node_correct[node] = loss.correct;
          node_samples[node] = samples;
        }
      });
  for (std::size_t node = 0; node < n_nodes; ++node) {
    if (!alive_[node]) continue;
    result.loss += node_loss[node];
    result.correct += node_correct[node];
    total_samples += node_samples[node];
  }
  result.loss /= static_cast<double>(total_samples);

  // Gradient all-reduce (average) over the surviving ring, parameter by
  // parameter: the mean rescales to the live count, so losing a rank
  // shrinks the effective batch instead of corrupting the update.
  std::int64_t bytes = 0;
  const std::size_t num_params = replicas_[0]->params().size();
  for (std::size_t p = 0; p < num_params; ++p) {
    std::vector<std::span<double>> grads;
    grads.reserve(replicas_.size());
    for (auto& replica : replicas_) {
      grads.push_back(replica->params()[p].grad->data());
    }
    bytes += static_cast<std::int64_t>(grads[0].size_bytes());
    ring_allreduce_resilient(grads, alive_, ReduceOp::kAverage);
  }
  result.comm_seconds =
      ring_allreduce_seconds(bytes, result.live_nodes, interconnect_);

  // Identical update on every live replica; each node touches only its
  // own parameters and optimizer state, so the steps run concurrently.
  runtime::parallel_for(
      0, static_cast<std::int64_t>(n_nodes), 1,
      [&](std::int64_t n0, std::int64_t n1) {
        for (std::int64_t n = n0; n < n1; ++n) {
          const auto node = static_cast<std::size_t>(n);
          if (!alive_[node]) continue;
          optimizers_[node].step(replicas_[node]->params());
        }
      });
  return result;
}

void DataParallelTrainer::kill_rank(int node) {
  alive_.at(static_cast<std::size_t>(node)) = false;
}

void DataParallelTrainer::revive_rank(int node) {
  const auto idx = static_cast<std::size_t>(node);
  if (alive_.at(idx)) return;
  int donor = -1;
  for (std::size_t r = 0; r < alive_.size(); ++r) {
    if (alive_[r]) {
      donor = static_cast<int>(r);
      break;
    }
  }
  if (donor < 0) {
    throw std::runtime_error("revive_rank: no live replica to copy from");
  }
  const auto src = replicas_[static_cast<std::size_t>(donor)]->params();
  const auto dst = replicas_[idx]->params();
  for (std::size_t p = 0; p < src.size(); ++p) {
    const auto from = src[p].param->data();
    auto to = dst[p].param->data();
    std::copy(from.begin(), from.end(), to.begin());
  }
  optimizers_[idx].copy_state_from(
      optimizers_[static_cast<std::size_t>(donor)], dst, src);
  alive_[idx] = true;
}

int DataParallelTrainer::live_ranks() const {
  int live = 0;
  for (const bool a : alive_) live += a ? 1 : 0;
  return live;
}

double DataParallelTrainer::max_replica_divergence() {
  double worst = 0;
  int reference_node = -1;
  for (std::size_t r = 0; r < alive_.size(); ++r) {
    if (alive_[r]) {
      reference_node = static_cast<int>(r);
      break;
    }
  }
  if (reference_node < 0) return 0;
  const auto reference =
      replicas_[static_cast<std::size_t>(reference_node)]->params();
  for (std::size_t node = static_cast<std::size_t>(reference_node) + 1;
       node < replicas_.size(); ++node) {
    if (!alive_[node]) continue;
    const auto params = replicas_[node]->params();
    for (std::size_t p = 0; p < params.size(); ++p) {
      worst = std::max(worst,
                       reference[p].param->max_abs_diff(*params[p].param));
    }
  }
  return worst;
}

std::int64_t DataParallelTrainer::gradient_bytes() {
  std::int64_t bytes = 0;
  for (const auto& pg : replicas_[0]->params()) {
    bytes += pg.grad->size() * 8;
  }
  return bytes;
}

}  // namespace swdnn::parallel
