#pragma once
// Hierarchical multi-CG / multi-node data-parallel training.
//
// swCaffe (the paper's own sequel) scales swDNN past one core group by
// composing two collectives: gradients reduce *intra-node* across the
// four CGs over the on-chip NoC, then *inter-node* over the TaihuLight
// network as a ring across node leaders, then broadcast back down. This
// module reproduces that hierarchy on the simulator and adds the two
// schedule optimizations that make it pay:
//
//   * bucketed comm/compute overlap — backward emits per-layer gradient
//     buckets (the compiled graph's reverse node order fixes the
//     emission order); a bucket starts reducing the moment every live
//     replica has finished writing it, while earlier layers are still
//     back-propagating. Execution rides the PR-5 host TaskPool: the
//     worker whose replica completes a bucket last reduces it inline,
//     overlapping with the remaining backward chunks on other lanes.
//   * a first cut of pipeline parallelism (pipeline.h) partitions a
//     compiled network's layer stack across CGs instead of replicating
//     it.
//
// Determinism contract (the whole design leans on it): the numeric
// reduction is ONE canonical kernel — for every element, partial sums
// accumulate over live CGs in ascending rank order within each node,
// then over live nodes in ascending node order — regardless of which
// transport is modeled (flat ring or hierarchy), whether buckets reduce
// overlapped or after backward, and in which order they complete.
// Transports and schedules only change the *modeled time* and the
// wall-clock interleaving, never a bit of the result; that is what
// makes "hierarchical overlapped == flat serialized, bitwise" testable
// and lets the fault ladder kill ranks mid-epoch without perturbing the
// survivors' arithmetic.

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/dnn/backend_context.h"
#include "src/dnn/network.h"
#include "src/dnn/sgd.h"
#include "src/dnn/trainer.h"
#include "src/parallel/allreduce.h"
#include "src/sim/noc.h"

namespace swdnn::arch {
struct Sw26010Spec;
}  // namespace swdnn::arch

namespace swdnn::parallel {

/// Replica placement: rank r lives on node r / cgs_per_node, core group
/// r % cgs_per_node. The last node may be ragged (fewer CGs) when
/// total_ranks is not a multiple of cgs_per_node.
struct HierTopology {
  int nodes = 1;
  int cgs_per_node = 1;
  int total_ranks = 1;

  /// Fully populated grid: nodes x cgs_per_node ranks.
  static HierTopology grid(int nodes, int cgs_per_node);
  /// Ragged fill: total_ranks packed cgs_per_node at a time; the last
  /// node takes the remainder.
  static HierTopology ragged(int total_ranks, int cgs_per_node);

  int node_of(int rank) const { return rank / cgs_per_node; }
  int cg_of(int rank) const { return rank % cgs_per_node; }
  int first_rank(int node) const { return node * cgs_per_node; }
  int ranks_in_node(int node) const;
};

/// The two-level cost model: node-to-node links are the existing
/// TaihuLight interconnect numbers; CG-to-CG links the on-chip NoC.
struct HierCostModel {
  InterconnectSpec inter;       ///< node network (ring between leaders)
  sim::NocInterconnectSpec intra;  ///< NoC (within-node reduce/broadcast)
};

/// Modeled seconds for a FLAT ring all-reduce of `bytes` over every
/// live rank, each ring step charged at node-link speed (the pessimal
/// but standard placement-oblivious baseline: a step's slowest link is
/// a node link whenever any neighbor pair crosses nodes).
double flat_exchange_seconds(std::int64_t bytes, int live_ranks,
                             const HierCostModel& cost = {});

/// Per-phase breakdown of one hierarchical exchange.
struct HierExchangeBreakdown {
  double intra_reduce_seconds = 0;  ///< CGs -> node leader, over the NoC
  double inter_ring_seconds = 0;    ///< ring across live node leaders
  double intra_broadcast_seconds = 0;  ///< leader -> CGs, over the NoC
  double total() const {
    return intra_reduce_seconds + inter_ring_seconds +
           intra_broadcast_seconds;
  }
};

/// Modeled seconds for one hierarchical exchange of `bytes`:
/// live_per_node[j] = live CGs on node j (0 = node skipped entirely).
/// Nodes run their intra phases concurrently, so the intra terms charge
/// the busiest node; the inter ring runs over nodes with >= 1 live CG.
HierExchangeBreakdown hier_exchange_seconds(
    std::int64_t bytes, const std::vector<int>& live_per_node,
    const HierCostModel& cost = {});

/// One gradient bucket: a contiguous run of backward-emission-order
/// graph nodes and the parameters they own. Boundaries are fixed at
/// setup from the graph alone — never from arrival order.
struct GradBucket {
  std::vector<std::size_t> layer_indices;  ///< ascending layer index
  std::size_t backward_units = 0;  ///< hook events per replica per step
  std::int64_t elements = 0;       ///< parameter elements in the bucket
  std::int64_t bytes() const { return elements * 8; }
};

/// Proxy for modeled per-layer compute time (level-3, like the
/// interconnect model): a backward unit is charged for streaming its
/// output activation and its parameters, plus a fixed launch overhead;
/// backward costs a multiple of forward (two GEMMs vs one). The
/// absolute scale is a stand-in — what the overlap schedule consumes is
/// the *shape* of the per-bucket emission timeline, and both the
/// serialized and overlapped step times are computed from the same
/// numbers, so their ratio is meaningful.
struct ComputeCostModel {
  double activation_gbs = 24.0;   ///< effective activation stream rate
  double param_gbs = 12.0;        ///< effective parameter stream rate
  double unit_overhead_us = 2.0;  ///< per backward unit (launch + sync)
  double backward_factor = 2.0;   ///< backward/forward cost ratio
};

/// How a step executes and is charged.
enum class ExchangeMode {
  kFlatRing,      ///< modeled as one flat ring over all live ranks
  kHierarchical,  ///< modeled as NoC-intra + ring-inter + broadcast
};

struct HierStepOptions {
  ExchangeMode exchange = ExchangeMode::kHierarchical;
  /// true: buckets reduce from the backward hook as they complete
  /// (wall-clock overlap on the task pool). false: all buckets reduce
  /// after every replica's backward returns. Bitwise-identical results
  /// either way.
  bool overlap = true;
};

/// Everything one step decided and what it would cost. All times are
/// modeled (deterministic); both transports and both schedules are
/// reported every step so benches can compare without re-running.
struct HierStepReport {
  double loss = 0;
  std::int64_t correct = 0;
  int live_ranks = 0;
  int live_nodes = 0;
  std::int64_t exchange_bytes = 0;  ///< gradient bytes reduced

  // Modeled compute phase (per replica; replicas run concurrently).
  double forward_seconds = 0;
  double backward_seconds = 0;

  // Modeled exchange of the full gradient in one shot.
  double exchange_flat_seconds = 0;
  HierExchangeBreakdown exchange_hier;

  // Modeled step times under the step's ExchangeMode:
  // serialized = fwd + bwd + one-shot exchange;
  // overlapped = fwd + bucket-pipelined max(bwd, comm) timeline.
  double step_serialized_seconds = 0;
  double step_overlapped_seconds = 0;

  double hier_exchange_speedup() const {
    const double h = exchange_hier.total();
    return h > 0 ? exchange_flat_seconds / h : 0.0;
  }
  double overlap_speedup() const {
    return step_overlapped_seconds > 0
               ? step_serialized_seconds / step_overlapped_seconds
               : 0.0;
  }
};

/// Data-parallel training over a node x CG hierarchy. One full replica
/// per rank; all replicas share one BackendContext after compile() (one
/// Handle, one plan cache). Replicas step concurrently on the host task
/// pool; gradient exchange follows the canonical reduction above.
class HierarchicalTrainer {
 public:
  HierarchicalTrainer(const HierTopology& topology,
                      const std::function<std::unique_ptr<dnn::Network>()>&
                          make_replica,
                      double learning_rate, double momentum = 0.0,
                      HierCostModel cost = {},
                      ComputeCostModel compute = {});
  ~HierarchicalTrainer();

  const HierTopology& topology() const { return topology_; }
  int ranks() const { return topology_.total_ranks; }
  dnn::Network& replica(int rank) {
    return *replicas_.at(static_cast<std::size_t>(rank));
  }

  /// Compiles every replica for the per-rank shard shape against one
  /// shared BackendContext (see DataParallelTrainer::compile). Also
  /// builds the gradient buckets from the compiled graph's backward
  /// node order. `spec` = nullptr uses the real SW26010 numbers.
  void compile(const std::vector<std::int64_t>& shard_input_dims,
               const arch::Sw26010Spec* spec = nullptr);

  dnn::BackendContext* shared_context() { return shared_context_.get(); }

  /// Coalesces adjacent backward-emission buckets until each holds at
  /// least this many gradient bytes (0 = one bucket per parameter-
  /// owning graph node). Must be set before the first train_step /
  /// compile; fixed thereafter (bucket boundaries are part of the
  /// determinism contract).
  void set_min_bucket_bytes(std::int64_t bytes);

  /// The fixed bucket layout (empty before compile / first step).
  const std::vector<GradBucket>& buckets() const { return buckets_; }

  /// One synchronous step: concurrent per-rank forward/backward on the
  /// shards, canonical gradient reduction (average over live ranks,
  /// scheduled per `options`), identical optimizer step everywhere.
  /// `shards` must have one batch per rank; dead ranks' shards are
  /// ignored. Results are bitwise-identical across exchange modes,
  /// overlap settings, and host thread counts.
  HierStepReport train_step(const std::vector<dnn::Batch>& shards,
                            const HierStepOptions& options = {});

  // --- Self-healing ---------------------------------------------------
  /// The rank stops computing; its gradients leave the reduction (the
  /// average rescales to the live count). A node whose CGs all die
  /// drops out of the inter-node ring entirely.
  void kill_rank(int rank);

  /// Restores the rank from a live survivor (parameters + optimizer
  /// state) so it rejoins in exact lockstep.
  void revive_rank(int rank);

  bool rank_alive(int rank) const {
    return alive_.at(static_cast<std::size_t>(rank));
  }
  int live_ranks() const;
  /// Nodes with at least one live CG.
  int live_nodes() const;
  /// Live CGs per node (the inter-ring membership view).
  std::vector<int> live_per_node() const;

  /// Largest parameter divergence across live replicas (0 in lockstep).
  double max_replica_divergence();

  /// Bytes reduced per step (all parameters).
  std::int64_t gradient_bytes();

 private:
  /// Lazy bucket/cost setup from replica 0 (graph nodes when compiled,
  /// layers otherwise) and the shard input dims.
  void setup_buckets(const std::vector<std::int64_t>& input_dims);

  /// Canonical fixed-order reduction of one bucket across live ranks
  /// (see the file comment); averages and writes back to every live
  /// replica. Thread-safe per bucket: concurrent calls for DIFFERENT
  /// buckets touch disjoint gradients and scratch.
  void reduce_bucket(std::size_t bucket_index);

  /// Backward hook body for `rank`: counts the unit against its bucket
  /// and reduces inline when this replica is the last arrival.
  void on_backward_unit(int rank, std::size_t first_layer);

  HierTopology topology_;
  HierCostModel cost_;
  ComputeCostModel compute_;
  std::vector<std::unique_ptr<dnn::Network>> replicas_;
  std::vector<dnn::Sgd> optimizers_;
  std::vector<bool> alive_;
  std::unique_ptr<dnn::BackendContext> shared_context_;

  // Bucket state (fixed after setup).
  std::int64_t min_bucket_bytes_ = 0;
  bool buckets_ready_ = false;
  std::vector<GradBucket> buckets_;
  std::vector<std::size_t> layer_to_bucket_;  ///< first_layer -> bucket
  /// Per-bucket scratch for the canonical reduction (sized to the
  /// bucket's largest parameter): [0] = node partial, [1] = total.
  std::vector<std::array<std::vector<double>, 2>> scratch_;
  /// Per-bucket completed backward-unit events this step; a bucket is
  /// ready at live_ranks * backward_units events.
  std::unique_ptr<std::atomic<int>[]> bucket_events_;
  int step_live_ranks_ = 0;   ///< snapshot for the hook path
  bool overlap_active_ = false;
  /// Hooks are installed once at setup but must only count events while
  /// a train_step's backward is running (tests drive replicas' backward
  /// directly when building references).
  bool step_active_ = false;

  // Modeled per-backward-unit costs in backward emission order, and
  // the bucket each unit belongs to (both fixed at setup).
  std::vector<double> unit_backward_seconds_;
  std::vector<std::size_t> unit_bucket_;
  double forward_seconds_total_ = 0;
};

}  // namespace swdnn::parallel
