#pragma once
// Workspace arena for compiled network execution.
//
// A compiled Network knows every activation and gradient tensor it will
// ever materialize, with the exact timeline step each one is produced
// and last consumed. The arena turns that knowledge into one contiguous
// buffer: each logical tensor becomes a slot with a liveness interval,
// the packer assigns offsets so slots that are live at the same time
// never share addresses, and slots with disjoint lifetimes reuse the
// same bytes. Peak footprint is the packed buffer size, reported next
// to the one-buffer-per-tensor baseline so the saving is measurable
// (swCaffe's layer-wise memory planning made the same move on the real
// machine, where 8 GB per node makes packing non-optional).
//
// TensorView is the execution-side handle: a non-owning dims+strides
// window over arena storage with the same accessor surface as Tensor,
// so compiled layer kernels read and write arena bytes directly instead
// of allocating fresh tensors per step.

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "src/tensor/tensor.h"

namespace swdnn::tensor {

/// Non-owning row-major view over externally-owned storage. The storage
/// (an Arena buffer) must outlive the view.
class TensorView {
 public:
  TensorView() = default;
  TensorView(double* data, std::vector<std::int64_t> dims);

  bool valid() const { return data_ != nullptr; }
  const std::vector<std::int64_t>& dims() const { return dims_; }
  std::int64_t rank() const { return static_cast<std::int64_t>(dims_.size()); }
  std::int64_t dim(std::int64_t i) const { return dims_.at(i); }
  std::int64_t size() const { return size_; }

  std::span<double> data() { return {data_, static_cast<std::size_t>(size_)}; }
  std::span<const double> data() const {
    return {data_, static_cast<std::size_t>(size_)};
  }

  double& at(std::int64_t i0) { return data_[offset({i0})]; }
  double& at(std::int64_t i0, std::int64_t i1) {
    return data_[offset({i0, i1})];
  }
  double& at(std::int64_t i0, std::int64_t i1, std::int64_t i2) {
    return data_[offset({i0, i1, i2})];
  }
  double& at(std::int64_t i0, std::int64_t i1, std::int64_t i2,
             std::int64_t i3) {
    return data_[offset({i0, i1, i2, i3})];
  }
  double at(std::int64_t i0) const { return data_[offset({i0})]; }
  double at(std::int64_t i0, std::int64_t i1) const {
    return data_[offset({i0, i1})];
  }
  double at(std::int64_t i0, std::int64_t i1, std::int64_t i2) const {
    return data_[offset({i0, i1, i2})];
  }
  double at(std::int64_t i0, std::int64_t i1, std::int64_t i2,
            std::int64_t i3) const {
    return data_[offset({i0, i1, i2, i3})];
  }

  void zero();

  /// Element-count-checked copies between views and owning tensors.
  void copy_from(const Tensor& src);
  void copy_from(const TensorView& src);
  void copy_to(Tensor& dst) const;

  /// Owning snapshot with this view's dims.
  Tensor to_tensor() const;

 private:
  std::int64_t offset(std::initializer_list<std::int64_t> idx) const;

  double* data_ = nullptr;
  std::int64_t size_ = 0;
  std::vector<std::int64_t> dims_;
  std::vector<std::int64_t> strides_;
};

/// One planned tensor: its shape, liveness interval (inclusive timeline
/// steps), and the offset the packer assigned.
struct ArenaSlot {
  std::vector<std::int64_t> dims;
  std::int64_t elements = 0;
  int live_begin = 0;
  int live_end = 0;
  std::int64_t offset = -1;  ///< elements into the buffer; -1 = unplaced
};

/// The alias checker: first pair of slots that are live simultaneously
/// yet overlap in the packed address space, or nullopt when the packing
/// is sound. Pure function so tests can feed it hand-built layouts.
std::optional<std::pair<std::size_t, std::size_t>> find_alias(
    const std::vector<ArenaSlot>& slots);

class Arena {
 public:
  /// Registers a tensor live over [live_begin, live_end] (inclusive).
  /// Returns the slot id used to fetch its view after plan().
  std::size_t request(std::vector<std::int64_t> dims, int live_begin,
                      int live_end);

  /// Packs every requested slot (greedy first-fit: slots that overlap
  /// in time get disjoint address ranges, disjoint lifetimes share) and
  /// allocates the buffer. Runs the alias checker on the result.
  void plan();

  bool planned() const { return planned_; }
  std::size_t num_slots() const { return slots_.size(); }
  const ArenaSlot& slot(std::size_t id) const { return slots_.at(id); }

  /// View over a planned slot's address range.
  TensorView view(std::size_t id);

  /// Packed buffer footprint.
  std::int64_t peak_bytes() const { return peak_elements_ * 8; }
  /// The one-buffer-per-tensor baseline: sum of every slot's size.
  std::int64_t naive_bytes() const;
  /// Buffer (re)allocations performed — constant after plan() proves a
  /// steady-state step allocates nothing from the arena.
  std::uint64_t allocations() const { return allocations_; }

  /// Re-runs the alias checker; throws std::logic_error naming the
  /// offending slot pair if the packing is unsound.
  void validate() const;

  /// Drops all slots (for re-compilation). The buffer is retained so a
  /// re-plan at the same footprint reallocates nothing.
  void reset();

 private:
  std::vector<ArenaSlot> slots_;
  std::vector<double> buffer_;
  std::int64_t peak_elements_ = 0;
  std::uint64_t allocations_ = 0;
  bool planned_ = false;
};

}  // namespace swdnn::tensor
