#pragma once
// Dense row-major double tensors.
//
// swDNN evaluates everything in double precision (the SW26010 FP units do
// not gain from narrower types — Section VII), so the tensor type is a
// concrete f64 container rather than a template. Dimensions are dynamic
// (rank 1..5) because the library moves between 4-D canonical layouts and
// the 5-D vectorization-oriented layouts of Section V-C.

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace swdnn::tensor {

class Tensor {
 public:
  Tensor() = default;

  /// Allocates a zero-initialized tensor with the given dimensions.
  explicit Tensor(std::vector<std::int64_t> dims);
  Tensor(std::initializer_list<std::int64_t> dims);

  // Copies count as fresh allocations (see allocation_count); moves are
  // free and therefore do not.
  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&&) = default;
  Tensor& operator=(Tensor&&) = default;

  const std::vector<std::int64_t>& dims() const { return dims_; }
  std::int64_t rank() const { return static_cast<std::int64_t>(dims_.size()); }
  std::int64_t dim(std::int64_t i) const { return dims_.at(i); }
  std::int64_t size() const { return static_cast<std::int64_t>(data_.size()); }

  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }

  /// Row-major strides (elements, not bytes).
  const std::vector<std::int64_t>& strides() const { return strides_; }

  // Bounds-checked in debug builds only; the variadic forms are the hot
  // accessors used by the reference kernels.
  double& at(std::int64_t i0) { return data_[offset({i0})]; }
  double& at(std::int64_t i0, std::int64_t i1) { return data_[offset({i0, i1})]; }
  double& at(std::int64_t i0, std::int64_t i1, std::int64_t i2) {
    return data_[offset({i0, i1, i2})];
  }
  double& at(std::int64_t i0, std::int64_t i1, std::int64_t i2,
             std::int64_t i3) {
    return data_[offset({i0, i1, i2, i3})];
  }
  double& at(std::int64_t i0, std::int64_t i1, std::int64_t i2,
             std::int64_t i3, std::int64_t i4) {
    return data_[offset({i0, i1, i2, i3, i4})];
  }
  double at(std::int64_t i0) const { return data_[offset({i0})]; }
  double at(std::int64_t i0, std::int64_t i1) const {
    return data_[offset({i0, i1})];
  }
  double at(std::int64_t i0, std::int64_t i1, std::int64_t i2) const {
    return data_[offset({i0, i1, i2})];
  }
  double at(std::int64_t i0, std::int64_t i1, std::int64_t i2,
            std::int64_t i3) const {
    return data_[offset({i0, i1, i2, i3})];
  }
  double at(std::int64_t i0, std::int64_t i1, std::int64_t i2,
            std::int64_t i3, std::int64_t i4) const {
    return data_[offset({i0, i1, i2, i3, i4})];
  }

  /// Flat offset of a multi-index (row-major).
  std::int64_t offset(std::initializer_list<std::int64_t> idx) const;

  void fill(double value);
  void zero() { fill(0.0); }

  /// True if dims match and every element differs by <= atol + rtol*|b|.
  bool allclose(const Tensor& other, double rtol = 1e-10,
                double atol = 1e-12) const;

  /// Largest absolute elementwise difference (dims must match).
  double max_abs_diff(const Tensor& other) const;

  /// "Tensor[4x8x8x2]"-style debug string.
  std::string shape_string() const;

 private:
  std::vector<std::int64_t> dims_;
  std::vector<std::int64_t> strides_;
  std::vector<double> data_;

  void init_strides();
};

/// Process-wide count of tensor buffer allocations (constructions and
/// copies; moves excluded). The graph benchmarks diff this across a
/// training step to show the compiled path's steady state allocates
/// nothing, where the eager path mints fresh tensors per layer.
std::uint64_t allocation_count();

}  // namespace swdnn::tensor
