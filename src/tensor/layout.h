#pragma once
// Convolution tensor layouts.
//
// Canonical layouts (what the reference kernels index):
//   input  : [Ri][Ci][Ni][B]   (row, column, channel, batch)
//   filter : [Kr][Kc][Ni][No]
//   output : [Ro][Co][No][B]
// Batch is innermost so that 4 consecutive batch elements form one
// 256-bit vector — the vectorization axis chosen in Section V-C.
//
// Vectorization-oriented layouts (paper Section V-C, leading dimension
// written first as in the paper, i.e. fastest-varying first):
//   image-size-aware : (4, C, R, N, B/4)  -> row-major [B/4][N][R][C][4]
//   batch-size-aware : (4, B/4, C, R, N)  -> row-major [N][R][C][B/4][4]
// The "4" is a batch sub-vector: element (r,c,n,b) lives in lane b%4 of
// vector b/4. These transforms are what the DMA descriptors of
// Algorithms 1 and 2 assume: they make the blocks each CPE fetches
// contiguous and >= 256 B so the DMA engine runs near peak (Table II).

#include "src/tensor/tensor.h"

namespace swdnn::tensor {

enum class ConvLayout {
  kCanonicalRCNB,    ///< [R][C][N][B]
  kImageSizeAware,   ///< (4, C, R, N, B/4)
  kBatchSizeAware,   ///< (4, B/4, C, R, N)
};

/// Converts a canonical [R][C][N][B] tensor to the image-size-aware
/// layout. B must be divisible by 4.
Tensor to_image_size_aware(const Tensor& canonical);

/// Converts a canonical [R][C][N][B] tensor to the batch-size-aware
/// layout. B must be divisible by 4.
Tensor to_batch_size_aware(const Tensor& canonical);

/// Inverse transforms (exact round-trips).
Tensor from_image_size_aware(const Tensor& vectorized);
Tensor from_batch_size_aware(const Tensor& vectorized);

/// The contiguous-block size in bytes that a single CPE's DMA request
/// covers under each layout, given the blocking parameters. Used by the
/// performance model to look up effective bandwidth in the Table II
/// curve.
std::int64_t leading_block_bytes(ConvLayout layout, std::int64_t batch,
                                 std::int64_t block_co,
                                 std::int64_t elem_bytes = 8);

}  // namespace swdnn::tensor
