#pragma once
// Shape-keyed tensor recycling for the steady-state execution path.
//
// The API boundary (src/api) and the im2col lowering allocate the same
// handful of staging tensors — wrapped inputs, lowered column matrices,
// GEMM products — on every call. In eager mode that is the seed
// behaviour; in compiled mode it is the difference between "the graph
// saves memory" and "the graph is faster": a compiled training step
// must mint zero tensors after warm-up. The pool keeps released
// buffers in per-shape free lists and hands them back by move, which
// tensor::allocation_count() does not charge.
//
// Two acquisition modes, chosen per buffer by its overwrite contract:
//   * acquire()       — returns a ZEROED tensor, byte-identical to a
//                       freshly constructed one. Required for buffers
//                       whose consumer accumulates (gemm_packed_parallel
//                       computes C += A*B) or overwrites only a subset.
//   * acquire_dirty() — contents unspecified; only for buffers every
//                       element of which is written before being read
//                       (wrapped copies, lowered matrices, transposes).
//
// Thread-safety: all methods lock internally — one handle's pool is hit
// by N serving workers concurrently. PooledTensor is the RAII handle:
// destruction returns the buffer to the pool (a detached handle from a
// null pool just drops it).

#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "src/tensor/tensor.h"

namespace swdnn::tensor {

class TensorPool;

/// Owning handle over a pooled tensor: releases back to the pool on
/// destruction. Movable, not copyable.
class PooledTensor {
 public:
  PooledTensor() = default;
  PooledTensor(TensorPool* pool, Tensor tensor)
      : pool_(pool), tensor_(std::move(tensor)) {}
  ~PooledTensor();
  PooledTensor(const PooledTensor&) = delete;
  PooledTensor& operator=(const PooledTensor&) = delete;
  PooledTensor(PooledTensor&& other) noexcept
      : pool_(other.pool_), tensor_(std::move(other.tensor_)) {
    other.pool_ = nullptr;
  }
  PooledTensor& operator=(PooledTensor&& other) noexcept;

  Tensor& get() { return tensor_; }
  const Tensor& get() const { return tensor_; }
  Tensor& operator*() { return tensor_; }
  const Tensor& operator*() const { return tensor_; }
  Tensor* operator->() { return &tensor_; }
  const Tensor* operator->() const { return &tensor_; }

 private:
  TensorPool* pool_ = nullptr;
  Tensor tensor_;
};

class TensorPool {
 public:
  TensorPool() = default;
  TensorPool(const TensorPool&) = delete;
  TensorPool& operator=(const TensorPool&) = delete;

  /// A tensor with the given dims, zero-filled — indistinguishable from
  /// a freshly constructed Tensor(dims), but recycled when possible.
  PooledTensor acquire(const std::vector<std::int64_t>& dims);

  /// A tensor with the given dims and UNSPECIFIED contents. Only for
  /// buffers that are fully overwritten before any read.
  PooledTensor acquire_dirty(const std::vector<std::int64_t>& dims);

  /// Returns a buffer to the free list (moved, never counted).
  void release(Tensor tensor);

  /// Buffers currently parked in free lists (diagnostic).
  std::size_t idle_count() const;

 private:
  Tensor take_or_make(const std::vector<std::int64_t>& dims, bool zeroed);

  mutable std::mutex mutex_;
  std::map<std::vector<std::int64_t>, std::vector<Tensor>> free_;
};

}  // namespace swdnn::tensor
