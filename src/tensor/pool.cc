#include "src/tensor/pool.h"

namespace swdnn::tensor {

PooledTensor::~PooledTensor() {
  if (pool_ != nullptr && tensor_.size() > 0) {
    pool_->release(std::move(tensor_));
  }
}

PooledTensor& PooledTensor::operator=(PooledTensor&& other) noexcept {
  if (this != &other) {
    if (pool_ != nullptr && tensor_.size() > 0) {
      pool_->release(std::move(tensor_));
    }
    pool_ = other.pool_;
    tensor_ = std::move(other.tensor_);
    other.pool_ = nullptr;
  }
  return *this;
}

Tensor TensorPool::take_or_make(const std::vector<std::int64_t>& dims,
                                bool zeroed) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = free_.find(dims);
    if (it != free_.end() && !it->second.empty()) {
      Tensor t = std::move(it->second.back());
      it->second.pop_back();
      if (zeroed) t.zero();
      return t;
    }
  }
  // First sight of this shape (or the free list is drained by
  // concurrent holders): a real construction, counted like any other.
  // Tensor's constructor zero-initializes, so the dirty mode costs the
  // same here and saves only on recycled buffers.
  return Tensor(dims);
}

PooledTensor TensorPool::acquire(const std::vector<std::int64_t>& dims) {
  return PooledTensor(this, take_or_make(dims, /*zeroed=*/true));
}

PooledTensor TensorPool::acquire_dirty(
    const std::vector<std::int64_t>& dims) {
  return PooledTensor(this, take_or_make(dims, /*zeroed=*/false));
}

void TensorPool::release(Tensor tensor) {
  std::lock_guard<std::mutex> lock(mutex_);
  free_[tensor.dims()].push_back(std::move(tensor));
}

std::size_t TensorPool::idle_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [dims, list] : free_) n += list.size();
  return n;
}

}  // namespace swdnn::tensor
