#include "src/tensor/layout.h"

#include <stdexcept>

namespace swdnn::tensor {

namespace {
void require_rank4_b_mod4(const Tensor& t) {
  if (t.rank() != 4) {
    throw std::invalid_argument("layout transform expects rank-4 tensor");
  }
  if (t.dim(3) % 4 != 0) {
    throw std::invalid_argument("batch dimension must be divisible by 4");
  }
}
}  // namespace

Tensor to_image_size_aware(const Tensor& canonical) {
  require_rank4_b_mod4(canonical);
  const std::int64_t R = canonical.dim(0), C = canonical.dim(1),
                     N = canonical.dim(2), B = canonical.dim(3);
  Tensor out({B / 4, N, R, C, 4});
  for (std::int64_t r = 0; r < R; ++r)
    for (std::int64_t c = 0; c < C; ++c)
      for (std::int64_t n = 0; n < N; ++n)
        for (std::int64_t b = 0; b < B; ++b)
          out.at(b / 4, n, r, c, b % 4) = canonical.at(r, c, n, b);
  return out;
}

Tensor to_batch_size_aware(const Tensor& canonical) {
  require_rank4_b_mod4(canonical);
  const std::int64_t R = canonical.dim(0), C = canonical.dim(1),
                     N = canonical.dim(2), B = canonical.dim(3);
  Tensor out({N, R, C, B / 4, 4});
  for (std::int64_t r = 0; r < R; ++r)
    for (std::int64_t c = 0; c < C; ++c)
      for (std::int64_t n = 0; n < N; ++n)
        for (std::int64_t b = 0; b < B; ++b)
          out.at(n, r, c, b / 4, b % 4) = canonical.at(r, c, n, b);
  return out;
}

Tensor from_image_size_aware(const Tensor& v) {
  if (v.rank() != 5 || v.dim(4) != 4) {
    throw std::invalid_argument("expected [B/4][N][R][C][4] tensor");
  }
  const std::int64_t Bq = v.dim(0), N = v.dim(1), R = v.dim(2), C = v.dim(3);
  Tensor out({R, C, N, Bq * 4});
  for (std::int64_t bq = 0; bq < Bq; ++bq)
    for (std::int64_t n = 0; n < N; ++n)
      for (std::int64_t r = 0; r < R; ++r)
        for (std::int64_t c = 0; c < C; ++c)
          for (std::int64_t l = 0; l < 4; ++l)
            out.at(r, c, n, bq * 4 + l) = v.at(bq, n, r, c, l);
  return out;
}

Tensor from_batch_size_aware(const Tensor& v) {
  if (v.rank() != 5 || v.dim(4) != 4) {
    throw std::invalid_argument("expected [N][R][C][B/4][4] tensor");
  }
  const std::int64_t N = v.dim(0), R = v.dim(1), C = v.dim(2), Bq = v.dim(3);
  Tensor out({R, C, N, Bq * 4});
  for (std::int64_t n = 0; n < N; ++n)
    for (std::int64_t r = 0; r < R; ++r)
      for (std::int64_t c = 0; c < C; ++c)
        for (std::int64_t bq = 0; bq < Bq; ++bq)
          for (std::int64_t l = 0; l < 4; ++l)
            out.at(r, c, n, bq * 4 + l) = v.at(n, r, c, bq, l);
  return out;
}

std::int64_t leading_block_bytes(ConvLayout layout, std::int64_t batch,
                                 std::int64_t block_co,
                                 std::int64_t elem_bytes) {
  switch (layout) {
    case ConvLayout::kCanonicalRCNB:
      // One (channel, pixel) slice: B contiguous elements.
      return batch * elem_bytes;
    case ConvLayout::kImageSizeAware:
      // Each CPE fetches bCo columns x one vector row: bCo*4 elements,
      // and consecutive batch-quads extend the run to bCo*batch.
      return block_co * batch * elem_bytes;
    case ConvLayout::kBatchSizeAware:
      // One pixel of all batches: B contiguous elements.
      return batch * elem_bytes;
  }
  return batch * elem_bytes;
}

}  // namespace swdnn::tensor
