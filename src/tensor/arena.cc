#include "src/tensor/arena.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <string>

namespace swdnn::tensor {

namespace {

std::int64_t product(const std::vector<std::int64_t>& dims) {
  std::int64_t n = 1;
  for (std::int64_t d : dims) n *= d;
  return n;
}

bool time_overlap(const ArenaSlot& a, const ArenaSlot& b) {
  return a.live_begin <= b.live_end && b.live_begin <= a.live_end;
}

bool address_overlap(const ArenaSlot& a, const ArenaSlot& b) {
  if (a.offset < 0 || b.offset < 0) return false;
  return a.offset < b.offset + b.elements && b.offset < a.offset + a.elements;
}

}  // namespace

TensorView::TensorView(double* data, std::vector<std::int64_t> dims)
    : data_(data), dims_(std::move(dims)) {
  if (data_ == nullptr) throw std::invalid_argument("TensorView: null data");
  if (dims_.empty() || dims_.size() > 5) {
    throw std::invalid_argument("TensorView: rank must be 1..5");
  }
  for (std::int64_t d : dims_) {
    if (d <= 0) throw std::invalid_argument("TensorView: dims must be > 0");
  }
  strides_.assign(dims_.size(), 1);
  for (int i = static_cast<int>(dims_.size()) - 2; i >= 0; --i) {
    strides_[i] = strides_[i + 1] * dims_[i + 1];
  }
  size_ = product(dims_);
}

std::int64_t TensorView::offset(std::initializer_list<std::int64_t> idx) const {
  if (static_cast<std::int64_t>(idx.size()) != rank()) {
    throw std::invalid_argument("TensorView: index rank mismatch");
  }
  std::int64_t off = 0;
  std::size_t i = 0;
  for (std::int64_t v : idx) {
    off += v * strides_[i];
    ++i;
  }
  return off;
}

void TensorView::zero() {
  std::fill(data_, data_ + size_, 0.0);
}

void TensorView::copy_from(const Tensor& src) {
  if (src.size() != size_) {
    throw std::invalid_argument("TensorView::copy_from: size mismatch");
  }
  std::memcpy(data_, src.data().data(), static_cast<std::size_t>(size_) * 8);
}

void TensorView::copy_from(const TensorView& src) {
  if (src.size_ != size_) {
    throw std::invalid_argument("TensorView::copy_from: size mismatch");
  }
  std::memcpy(data_, src.data_, static_cast<std::size_t>(size_) * 8);
}

void TensorView::copy_to(Tensor& dst) const {
  if (dst.size() != size_) {
    throw std::invalid_argument("TensorView::copy_to: size mismatch");
  }
  std::memcpy(dst.data().data(), data_, static_cast<std::size_t>(size_) * 8);
}

Tensor TensorView::to_tensor() const {
  Tensor t(dims_);
  copy_to(t);
  return t;
}

std::optional<std::pair<std::size_t, std::size_t>> find_alias(
    const std::vector<ArenaSlot>& slots) {
  for (std::size_t i = 0; i < slots.size(); ++i) {
    for (std::size_t j = i + 1; j < slots.size(); ++j) {
      if (time_overlap(slots[i], slots[j]) &&
          address_overlap(slots[i], slots[j])) {
        return std::make_pair(i, j);
      }
    }
  }
  return std::nullopt;
}

std::size_t Arena::request(std::vector<std::int64_t> dims, int live_begin,
                           int live_end) {
  if (planned_) {
    throw std::logic_error("Arena::request: arena already planned");
  }
  if (live_end < live_begin) {
    throw std::invalid_argument("Arena::request: live_end < live_begin");
  }
  ArenaSlot slot;
  slot.elements = product(dims);
  if (slot.elements <= 0 || dims.empty()) {
    throw std::invalid_argument("Arena::request: empty shape");
  }
  slot.dims = std::move(dims);
  slot.live_begin = live_begin;
  slot.live_end = live_end;
  slots_.push_back(std::move(slot));
  return slots_.size() - 1;
}

void Arena::plan() {
  if (planned_) throw std::logic_error("Arena::plan: already planned");

  // Place big, early slots first: first-fit on a size-descending order
  // is the classic heuristic for interval packing and keeps small late
  // tensors filling gaps left between the large early ones.
  std::vector<std::size_t> order(slots_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    if (slots_[a].elements != slots_[b].elements) {
      return slots_[a].elements > slots_[b].elements;
    }
    if (slots_[a].live_begin != slots_[b].live_begin) {
      return slots_[a].live_begin < slots_[b].live_begin;
    }
    return a < b;
  });

  peak_elements_ = 0;
  for (std::size_t id : order) {
    ArenaSlot& slot = slots_[id];
    // Gather already-placed slots whose lifetimes overlap this one;
    // only those constrain where it may land.
    std::vector<const ArenaSlot*> busy;
    for (const ArenaSlot& other : slots_) {
      if (&other == &slot || other.offset < 0) continue;
      if (time_overlap(slot, other)) busy.push_back(&other);
    }
    std::sort(busy.begin(), busy.end(),
              [](const ArenaSlot* a, const ArenaSlot* b) {
                return a->offset < b->offset;
              });
    std::int64_t candidate = 0;
    for (const ArenaSlot* other : busy) {
      if (candidate + slot.elements <= other->offset) break;
      candidate = std::max(candidate, other->offset + other->elements);
    }
    slot.offset = candidate;
    peak_elements_ = std::max(peak_elements_, candidate + slot.elements);
  }

  if (buffer_.size() != static_cast<std::size_t>(peak_elements_)) {
    buffer_.assign(static_cast<std::size_t>(peak_elements_), 0.0);
    ++allocations_;
  }
  planned_ = true;
  validate();
}

TensorView Arena::view(std::size_t id) {
  if (!planned_) throw std::logic_error("Arena::view: call plan() first");
  const ArenaSlot& slot = slots_.at(id);
  return TensorView(buffer_.data() + slot.offset, slot.dims);
}

std::int64_t Arena::naive_bytes() const {
  std::int64_t total = 0;
  for (const ArenaSlot& slot : slots_) total += slot.elements * 8;
  return total;
}

void Arena::validate() const {
  if (const auto alias = find_alias(slots_)) {
    throw std::logic_error("Arena::validate: slots " +
                           std::to_string(alias->first) + " and " +
                           std::to_string(alias->second) +
                           " are live simultaneously but overlap in the "
                           "packed buffer");
  }
}

void Arena::reset() {
  slots_.clear();
  planned_ = false;
  // buffer_ and peak_elements_ are retained: a re-plan that lands on
  // the same footprint (shape-stable re-compiles) reallocates nothing.
}

}  // namespace swdnn::tensor
