#include "src/tensor/tensor.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace swdnn::tensor {

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

Tensor::Tensor(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
  if (dims_.empty() || dims_.size() > 5) {
    throw std::invalid_argument("Tensor rank must be 1..5");
  }
  for (std::int64_t d : dims_) {
    if (d <= 0) throw std::invalid_argument("Tensor dims must be positive");
  }
  init_strides();
  const std::int64_t total = std::accumulate(
      dims_.begin(), dims_.end(), std::int64_t{1}, std::multiplies<>());
  data_.assign(static_cast<std::size_t>(total), 0.0);
  g_allocations.fetch_add(1, std::memory_order_relaxed);
}

Tensor::Tensor(std::initializer_list<std::int64_t> dims)
    : Tensor(std::vector<std::int64_t>(dims)) {}

Tensor::Tensor(const Tensor& other)
    : dims_(other.dims_), strides_(other.strides_), data_(other.data_) {
  if (!data_.empty()) g_allocations.fetch_add(1, std::memory_order_relaxed);
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this != &other) {
    dims_ = other.dims_;
    strides_ = other.strides_;
    data_ = other.data_;
    if (!data_.empty()) g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  return *this;
}

void Tensor::init_strides() {
  strides_.assign(dims_.size(), 1);
  for (std::int64_t i = static_cast<std::int64_t>(dims_.size()) - 2; i >= 0;
       --i) {
    strides_[i] = strides_[i + 1] * dims_[i + 1];
  }
}

std::int64_t Tensor::offset(std::initializer_list<std::int64_t> idx) const {
  assert(idx.size() == dims_.size());
  std::int64_t off = 0;
  std::int64_t axis = 0;
  for (std::int64_t i : idx) {
    assert(i >= 0 && i < dims_[axis]);
    off += i * strides_[axis];
    ++axis;
  }
  return off;
}

void Tensor::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

bool Tensor::allclose(const Tensor& other, double rtol, double atol) const {
  if (dims_ != other.dims_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const double diff = std::abs(data_[i] - other.data_[i]);
    if (diff > atol + rtol * std::abs(other.data_[i])) return false;
  }
  return true;
}

double Tensor::max_abs_diff(const Tensor& other) const {
  if (dims_ != other.dims_) {
    throw std::invalid_argument("max_abs_diff: dims mismatch");
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  }
  return worst;
}

std::string Tensor::shape_string() const {
  std::string s = "Tensor[";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) s += "x";
    s += std::to_string(dims_[i]);
  }
  return s + "]";
}

}  // namespace swdnn::tensor
