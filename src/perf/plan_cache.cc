#include "src/perf/plan_cache.h"

namespace swdnn::perf {

namespace {

inline void hash_combine(std::size_t& seed, std::int64_t v) {
  // boost::hash_combine's mixing constant; good enough for a cache key.
  seed ^= std::hash<std::int64_t>{}(v) + 0x9e3779b97f4a7c15ull +
          (seed << 6) + (seed >> 2);
}

}  // namespace

std::size_t PlanCache::ShapeHash::operator()(
    const conv::ConvShape& s) const {
  std::size_t seed = 0;
  hash_combine(seed, s.batch);
  hash_combine(seed, s.ni);
  hash_combine(seed, s.no);
  hash_combine(seed, s.ri);
  hash_combine(seed, s.ci);
  hash_combine(seed, s.kr);
  hash_combine(seed, s.kc);
  hash_combine(seed, s.stride_r);
  hash_combine(seed, s.stride_c);
  return seed;
}

PlanCache::PlanCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void PlanCache::touch(Slot& slot) const {
  lru_.splice(lru_.begin(), lru_, slot.lru_pos);
}

PlanCache::LookupResult PlanCache::lookup(const conv::ConvShape& shape,
                                          const Builder& build) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = table_.find(shape);
  if (it != table_.end()) {
    ++hits_;
    touch(it->second);
    return LookupResult{it->second.entry, /*hit=*/true};
  }

  // Build under the mutex: concurrent first sights of the same shape
  // must rank once, and ranking (hundreds of closed-form model
  // evaluations) is cheap next to a simulated launch.
  ++misses_;
  auto entry = std::make_shared<const CachedPlan>(build(shape));

  if (table_.size() >= capacity_) {
    const conv::ConvShape& victim = lru_.back();
    table_.erase(victim);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(shape);
  table_.emplace(shape, Slot{entry, lru_.begin()});
  return LookupResult{std::move(entry), /*hit=*/false};
}

bool PlanCache::warm(const conv::ConvShape& shape, const Builder& build) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = table_.find(shape);
  if (it != table_.end()) {
    touch(it->second);
    return false;
  }
  auto entry = std::make_shared<const CachedPlan>(build(shape));
  if (table_.size() >= capacity_) {
    const conv::ConvShape& victim = lru_.back();
    table_.erase(victim);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(shape);
  table_.emplace(shape, Slot{std::move(entry), lru_.begin()});
  return true;
}

void PlanCache::install(const conv::ConvShape& shape, CachedPlan entry) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto shared = std::make_shared<const CachedPlan>(std::move(entry));
  auto it = table_.find(shape);
  if (it != table_.end()) {
    it->second.entry = std::move(shared);
    touch(it->second);
    return;
  }
  if (table_.size() >= capacity_) {
    const conv::ConvShape& victim = lru_.back();
    table_.erase(victim);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(shape);
  table_.emplace(shape, Slot{std::move(shared), lru_.begin()});
}

PlanCache::Entry PlanCache::peek(const conv::ConvShape& shape) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = table_.find(shape);
  return it == table_.end() ? nullptr : it->second.entry;
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  PlanCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = table_.size();
  s.capacity = capacity_;
  return s;
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  table_.clear();
  lru_.clear();
  hits_ = misses_ = evictions_ = 0;
}

}  // namespace swdnn::perf
