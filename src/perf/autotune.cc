#include "src/perf/autotune.h"

namespace swdnn::perf {

ScheduleAutotuner::ScheduleAutotuner(const arch::Sw26010Spec& spec)
    : spec_(spec), model_(spec) {}

PlanChoice ScheduleAutotuner::tune_choice(const conv::ConvShape& shape,
                                          const PlanChoice& base,
                                          std::size_t* scored) const {
  static constexpr std::int64_t kRbB[] = {8, 16, 32, 64};
  static constexpr std::int64_t kRbNo[] = {2, 4, 8};

  PlanChoice best = base;
  for (const std::int64_t rb_b : kRbB) {
    for (const std::int64_t rb_no : kRbNo) {
      for (const bool promote : {false, true}) {
        ConvPlan candidate = base.plan;
        candidate.rb_b = rb_b;
        candidate.rb_no = rb_no;
        // Promotion is per-plan-family: the image plan hoists the input
        // get over Kc, the batch plan the filter get over cCi; the
        // direct strawman has neither.
        candidate.promote_input_dma = false;
        candidate.promote_filter_dma = false;
        if (promote) {
          bool promotable = false;
          switch (candidate.kind) {
            case PlanKind::kImageSizeAware:
              candidate.promote_input_dma = true;
              promotable = true;
              break;
            case PlanKind::kBatchSizeAware:
              candidate.promote_filter_dma = true;
              promotable = true;
              break;
            case PlanKind::kDirect:
            case PlanKind::kFilterGrained:
            case PlanKind::kPixelGrained:
              // Nothing to promote: the direct strawman has no DMA
              // loop to hoist and the multigrain mappings derive their
              // DMA schedule from the shape. Their rb_b/rb_no register
              // schedule is still searched by the enclosing loops.
              break;
          }
          if (!promotable) continue;  // identical to promote=false
        }
        if (!plan_feasible(shape, candidate, spec_)) continue;
        const PerfEstimate est = model_.estimate(shape, candidate);
        if (scored != nullptr) ++*scored;
        // Strictly-greater keeps the default schedule on ties, so the
        // tuned winner never scores below the baseline.
        if (est.gflops_per_cg > best.estimate.gflops_per_cg) {
          best.plan = candidate;
          best.estimate = est;
        }
      }
    }
  }
  return best;
}

std::vector<PlanChoice> ScheduleAutotuner::tune_ranked(
    const conv::ConvShape& shape, const std::vector<PlanChoice>& ranked,
    AutotuneReport* report) const {
  std::size_t scored = 0;
  std::vector<PlanChoice> tuned;
  tuned.reserve(ranked.size());
  for (const PlanChoice& base : ranked) {
    tuned.push_back(tune_choice(shape, base, &scored));
  }
  if (report != nullptr) {
    report->shape = shape;
    report->candidates_scored = scored;
    if (!ranked.empty()) {
      report->baseline_plan = ranked.front().plan;
      report->baseline_gflops_per_cg = ranked.front().estimate.gflops_per_cg;
      report->tuned_plan = tuned.front().plan;
      report->tuned_gflops_per_cg = tuned.front().estimate.gflops_per_cg;
    }
  }
  return tuned;
}

}  // namespace swdnn::perf
