#pragma once
// Measured DMA bandwidths between main memory and LDM (paper Table II).
//
// The paper measured these with a micro-benchmark on one core group;
// they are the empirical backbone of the whole performance model: every
// MEM<->LDM transfer's cost is the transfer size divided by the
// effective bandwidth for its per-CPE contiguous block size. The table
// is non-monotonic in places (576 B dips below 512 B) — we keep the
// published sample points exactly and interpolate linearly between them.

#include <cstdint>
#include <vector>

namespace swdnn::perf {

enum class DmaDirection { kGet, kPut };  // Get: MEM->LDM, Put: LDM->MEM

struct DmaSample {
  std::int64_t block_bytes;
  double get_gbs;
  double put_gbs;
};

class DmaBandwidthTable {
 public:
  /// Constructs the published Table II curve.
  DmaBandwidthTable();

  /// Effective bandwidth (GB/s, per core group) for transfers whose
  /// per-CPE contiguous block is `block_bytes`. Blocks below the first
  /// sample clamp to it; blocks above the last clamp to the last.
  /// Misaligned blocks (not a multiple of 128 B) are derated: the DDR3
  /// interface needs 128 B-aligned bursts for near-optimal bandwidth
  /// (Section III-D), so a misaligned block pays roughly one extra
  /// burst per block.
  double bandwidth_gbs(std::int64_t block_bytes, DmaDirection dir,
                       bool aligned_128 = true) const;

  /// The raw published samples (for the Table II bench and tests).
  const std::vector<DmaSample>& samples() const { return samples_; }

  /// Peak bandwidth over the whole curve for a direction.
  double peak_gbs(DmaDirection dir) const;

 private:
  std::vector<DmaSample> samples_;
};

/// Shared immutable instance of the published table.
const DmaBandwidthTable& dma_table();

}  // namespace swdnn::perf
