#include "src/perf/model.h"

#include <algorithm>
#include <cmath>

#include "src/timing/kernels.h"

namespace swdnn::perf {

namespace {
// The paper's unrolled assembly still spends a small fraction of P0
// issue slots on mesh-id selection and register packing that the inner
// loop model does not see ("we ... unroll the two if-else statements for
// thread column and row ids in the outer loop to reduce overhead").
// This constant derates EE for that residue; it is the one fitted knob
// in the model and is exercised by the Table III bench.
constexpr double kOuterLoopOverhead = 0.94;

// Table II was measured with one-direction solid streaming; a real
// convolution interleaves input gets, filter gets and output puts on the
// same DMA engine and pays request setup between them. The paper's
// measured in-kernel MBW (Table III: 18.2-21.9 GB/s) sits ~12% below the
// Table II interpolation for the same block sizes; this constant carries
// that derate. Second fitted knob of the model (see kOuterLoopOverhead).
constexpr double kDmaInterleaveDerate = 0.88;

// In-kernel effective MBW never exceeded ~22 GB/s in any of the paper's
// measured configurations (Table III: 18.2-21.9), even where the block
// sizes alone would predict more — the convolution's get/put mix cannot
// reach the solid-streaming ceiling. Cap the model accordingly.
constexpr double kInKernelMbwCapGbs = 22.0;

constexpr double kDs = 8.0;  // double precision bytes
}  // namespace

double PerfEstimate::seconds_for(std::int64_t flops, int num_cgs) const {
  const double gf =
      num_cgs >= 4 ? gflops_chip : gflops_per_cg * static_cast<double>(num_cgs);
  return gf > 0 ? static_cast<double>(flops) / (gf * 1e9) : 0.0;
}

PerformanceModel::PerformanceModel(const arch::Sw26010Spec& spec)
    : spec_(spec) {}

double PerformanceModel::rbw_image_plan(const conv::ConvShape& shape,
                                        const ConvPlan& plan) const {
  // Eq. (1): RBW = (1/(bCo*bB) + 1/No) * DS / (2/T). The first term is
  // the filter slice re-read per output tile, the second the input
  // pixels. When the input DMA is promoted above the Kc loop (the §IV
  // "promote the DMA operation to outer loop" extension) the input term
  // amortizes over the Kc reuses, paying only the (bCo+Kc-1)/bCo halo.
  const double t = spec_.peak_gflops_per_cg();
  const double filter_term =
      1.0 / static_cast<double>(plan.block_co * plan.block_b);
  double input_term = 1.0 / static_cast<double>(shape.no);
  if (plan.promote_input_dma) {
    input_term *= static_cast<double>(plan.block_co + shape.kc - 1) /
                  static_cast<double>(plan.block_co * shape.kc);
  }
  return (filter_term + input_term) * kDs * t / 2.0;
}

double PerformanceModel::rbw_batch_plan(const conv::ConvShape& shape,
                                        const ConvPlan& plan) const {
  // Eq. (2): RBW = (1/(Kc*No) + 1/B) * DS / (2/T). The first term is
  // the filter re-read per input pixel; promoting the filter DMA above
  // the pixel loop (§IV) amortizes it over the bCo+Kc-1 pixels of the
  // output-column tile.
  const double t = spec_.peak_gflops_per_cg();
  double filter_term = 1.0 / static_cast<double>(shape.kc * shape.no);
  if (plan.promote_filter_dma) {
    filter_term *= static_cast<double>(shape.kc) /
                   static_cast<double>(plan.block_co + shape.kc - 1);
  }
  const double input_term = 1.0 / static_cast<double>(shape.batch);
  return (filter_term + input_term) * kDs * t / 2.0;
}

double PerformanceModel::rbw_filter_grained(const conv::ConvShape& shape,
                                            const ConvPlan& plan) const {
  const double t = spec_.peak_gflops_per_cg();
  const double k = static_cast<double>(shape.kr * shape.kc * shape.ni);
  const double bpx =
      static_cast<double>(filter_grained_block_px(shape, plan, spec_));
  const double filter_term = bpx > 0 ? 1.0 / bpx : 1.0;
  const double lowering_term = 3.0 / static_cast<double>(shape.no);
  const double output_term = 1.0 / k;
  return (filter_term + lowering_term + output_term) * kDs * t / 2.0;
}

double PerformanceModel::rbw_pixel_grained(const conv::ConvShape& shape,
                                           const ConvPlan& plan) const {
  (void)plan;
  const double t = spec_.peak_gflops_per_cg();
  const double k = static_cast<double>(shape.kr * shape.kc * shape.ni);
  const double p = static_cast<double>(conv_pixels(shape));
  const double input_term = 1.0 / static_cast<double>(shape.no);
  const double output_term = 1.0 / k;
  const double filter_term = 1.0 / p;
  return (input_term + output_term + filter_term) * kDs * t / 2.0;
}

double PerformanceModel::rbw_register_simd(const ConvPlan& plan) const {
  // Eq. (5): (rbB + 4*rbNo) * DS / (2*rbB*rbNo / T_cpe); the 4x on the
  // filter term pays for replicating a scalar across the vector lanes.
  const double t = spec_.peak_gflops_per_cpe();
  const double num =
      static_cast<double>(plan.rb_b + 4 * plan.rb_no) * kDs;
  const double den = 2.0 * static_cast<double>(plan.rb_b * plan.rb_no) / t;
  return num / den;
}

double PerformanceModel::rbw_register_spatial(std::int64_t rb_ri,
                                              std::int64_t rb_ci,
                                              std::int64_t rb_kr,
                                              std::int64_t rb_kc) const {
  // Eq. (3): ((rbRi*rbCi + rbCo*rbRo) * DS) / (2*rbKr*rbKc*rbCo*rbRo / T).
  const double t = spec_.peak_gflops_per_cpe();
  const std::int64_t rb_ro = rb_ri - rb_kr + 1;
  const std::int64_t rb_co = rb_ci - rb_kc + 1;
  const double num = static_cast<double>(rb_ri * rb_ci + rb_co * rb_ro) * kDs;
  const double den =
      2.0 * static_cast<double>(rb_kr * rb_kc * rb_co * rb_ro) / t;
  return num / den;
}

TrafficBreakdown PerformanceModel::traffic(const conv::ConvShape& shape,
                                           const ConvPlan& plan) const {
  TrafficBreakdown t;
  const auto b = static_cast<double>(shape.batch);
  const auto ni = static_cast<double>(shape.ni);
  const auto no = static_cast<double>(shape.no);
  const auto ro = static_cast<double>(shape.ro());
  const auto co = static_cast<double>(shape.co());
  const auto kr = static_cast<double>(shape.kr);
  const auto kc = static_cast<double>(shape.kc);

  switch (plan.kind) {
  case PlanKind::kImageSizeAware: {
    // Algorithm 1. Steps: (B/bB) * Ro * (Co/bCo) * Kr * Kc. In the
    // image-size-aware layout (4, C, R, N, B/4) the contiguous axis is
    // C (times the 4 batch lanes), so the DMA block a request streams
    // is bCo * 4 lanes * 8 B — which is why bCo, not bB, controls the
    // achieved bandwidth (Section IV's "leading dimension" insight).
    const double bb = static_cast<double>(plan.block_b);
    const double bco = static_cast<double>(plan.block_co);
    double steps = (b / bb) * ro * (co / bco) * kr * kc;
    double in_steps = plan.promote_input_dma ? steps / kc : steps;
    const double in_per_step =
        plan.promote_input_dma ? (bco + kc - 1) * ni * bb : bco * ni * bb;
    t.input.bytes = in_steps * in_per_step * kDs;
    t.input.block_bytes = static_cast<std::int64_t>(bco) * 4 * 8;
    t.filter.bytes = steps * ni * no * kDs;
    // One strided descriptor fetches a CPE's whole (Ni/8 x No/8) filter
    // tile; the engine streams it at the burst rate of the tile size.
    t.filter.block_bytes = static_cast<std::int64_t>(
        (ni / spec_.mesh_rows) * (no / spec_.mesh_cols) * 8);
    t.output.bytes = b * ro * co * no * kDs;
    t.output.block_bytes = static_cast<std::int64_t>(bco) * 4 * 8;
    t.output.direction = DmaDirection::kPut;
    break;
  }
  case PlanKind::kBatchSizeAware: {
    // Algorithm 2. Input: one pixel column of all channels and batches
    // per get, re-read once per Kr and once per output-column tile halo.
    const double bco = static_cast<double>(plan.block_co);
    const double pixel_gets = (co / bco) * ro * kr * (bco + kc - 1);
    t.input.bytes = pixel_gets * ni * b * kDs;
    t.input.block_bytes = static_cast<std::int64_t>(b) * 8;
    const double w_gets = plan.promote_filter_dma
                              ? (co / bco) * ro * kr
                              : (co / bco) * ro * kr * (bco + kc - 1) * kc;
    const double w_per_get =
        plan.promote_filter_dma ? kc * ni * no : ni * no;
    t.filter.bytes = w_gets * w_per_get * kDs;
    t.filter.block_bytes = static_cast<std::int64_t>(
        (ni / spec_.mesh_rows) * (no / spec_.mesh_cols) * 8);
    t.output.bytes = b * ro * co * no * kDs;
    t.output.block_bytes = static_cast<std::int64_t>(b) * 8;
    t.output.direction = DmaDirection::kPut;
    break;
  }
  case PlanKind::kFilterGrained: {
    // One [K x No] filter matrix re-streamed per pixel-column pass plus
    // the full im2col lowering: the patch gather reads the input K/Ni
    // times over, stages the column matrix through memory, and the GEMM
    // reads it back — three K*P-sized streams charged to the input.
    const double k_rows = kr * kc * ni;
    const double pixels = ro * co * b;
    const std::int64_t bpx = filter_grained_block_px(shape, plan, spec_);
    const double passes =
        bpx > 0 ? std::ceil(pixels / static_cast<double>(bpx)) : 1.0;
    const std::int64_t n_t =
        bpx > 0 ? (bpx + spec_.mesh_rows - 1) / spec_.mesh_rows : 1;
    const std::int64_t m_t =
        (shape.no + spec_.mesh_cols - 1) / spec_.mesh_cols;
    t.input.bytes = 3.0 * k_rows * pixels * kDs;
    t.input.block_bytes = n_t * 8;
    t.filter.bytes = passes * k_rows * no * kDs;
    t.filter.block_bytes = m_t * 8;
    t.output.bytes = no * pixels * kDs;
    t.output.block_bytes = n_t * 8;
    t.output.direction = DmaDirection::kPut;
    break;
  }
  case PlanKind::kPixelGrained: {
    // The filter is fetched exactly once and stays LDM-resident; every
    // output pixel then streams one [Ni x B] input tile per tap and
    // puts its [No x B] panel.
    const double k_rows = kr * kc * ni;
    const double pixels = ro * co * b;
    const std::int64_t b_t =
        (shape.batch + spec_.mesh_rows - 1) / spec_.mesh_rows;
    const std::int64_t no_t =
        (shape.no + spec_.mesh_cols - 1) / spec_.mesh_cols;
    t.input.bytes = k_rows * pixels * kDs;
    t.input.block_bytes = b_t * 8;
    t.filter.bytes = k_rows * no * kDs;
    t.filter.block_bytes = no_t * 8;
    t.output.bytes = no * pixels * kDs;
    t.output.block_bytes = b_t * 8;
    t.output.direction = DmaDirection::kPut;
    break;
  }
  case PlanKind::kDirect: {
    // Direct gload: every operand from memory, zero reuse below
    // registers.
    t.input.bytes = 2.0 * b * ro * co * ni * no * kr * kc * kDs / 2.0;
    t.input.block_bytes = 32;
    t.filter.bytes = t.input.bytes;
    t.filter.block_bytes = 32;
    t.output.bytes = b * ro * co * no * kDs;
    t.output.block_bytes = 32;
    t.output.direction = DmaDirection::kPut;
    break;
  }
  }

  auto align = [this](StreamTraffic& s) {
    s.aligned = s.block_bytes %
                    static_cast<std::int64_t>(spec_.dma_alignment_bytes) ==
                0;
  };
  align(t.input);
  align(t.filter);
  align(t.output);
  return t;
}

double PerformanceModel::effective_mbw(const TrafficBreakdown& t) const {
  const auto& table = dma_table();
  double time = 0;
  for (const StreamTraffic* s : {&t.input, &t.filter, &t.output}) {
    if (s->bytes <= 0) continue;
    time += s->bytes / table.bandwidth_gbs(s->block_bytes, s->direction,
                                           s->aligned);
  }
  if (time <= 0) return 0.0;
  return std::min(kInKernelMbwCapGbs,
                  kDmaInterleaveDerate * t.total_bytes() / time);
}

double PerformanceModel::direct_gload_gflops_per_cg() const {
  const double ratio =
      spec_.gload_bandwidth_gbs / spec_.direct_required_bandwidth_gbs();
  return spec_.peak_gflops_per_cg() * ratio * ratio;
}

PerfEstimate PerformanceModel::estimate(const conv::ConvShape& shape,
                                        const ConvPlan& plan) const {
  PerfEstimate e;
  if (plan.kind == PlanKind::kDirect) {
    e.rbw_mem_gbs = spec_.direct_required_bandwidth_gbs();
    e.mbw_mem_gbs = spec_.gload_bandwidth_gbs;
    e.ee = 1.0;
    const double r = std::min(1.0, e.mbw_mem_gbs / e.rbw_mem_gbs);
    e.mem_factor = r * r;
    e.ldm_factor = 1.0;
    e.gflops_per_cg = spec_.peak_gflops_per_cg() * e.mem_factor;
    e.gflops_chip = e.gflops_per_cg * spec_.num_core_groups;
    return e;
  }

  switch (plan.kind) {
    case PlanKind::kDirect:
      break;  // handled above
    case PlanKind::kImageSizeAware:
      e.rbw_mem_gbs = rbw_image_plan(shape, plan);
      break;
    case PlanKind::kBatchSizeAware:
      e.rbw_mem_gbs = rbw_batch_plan(shape, plan);
      break;
    case PlanKind::kFilterGrained:
      e.rbw_mem_gbs = rbw_filter_grained(shape, plan);
      break;
    case PlanKind::kPixelGrained:
      e.rbw_mem_gbs = rbw_pixel_grained(shape, plan);
      break;
  }
  if (!plan.use_register_comm) {
    // Without mesh data sharing, each CPE fetches all Ni input channels
    // and all No filter channels itself instead of 1/8 of each: the
    // required memory bandwidth grows by the mesh dimension.
    e.rbw_mem_gbs *= static_cast<double>(spec_.mesh_rows);
  }
  e.traffic = traffic(shape, plan);
  e.mbw_mem_gbs = effective_mbw(e.traffic);

  e.rbw_ldm_gbs = rbw_register_simd(plan);
  e.mbw_ldm_gbs = spec_.ldm_reg_bandwidth_gbs;

  // EE depends on the inner-loop trip count: the (possibly blocked)
  // input-channel extent for the paper's mappings, the LDM contraction
  // chunk for the filter-grained GEMM (its pipeline drains once per
  // chunk, not per channel block), and the per-tap Ni contraction for
  // the pixel-grained panels (they drain at every tap).
  std::int64_t inner_trip =
      plan.block_ni > 0 ? std::min(plan.block_ni, shape.ni) : shape.ni;
  if (plan.kind == PlanKind::kFilterGrained) {
    inner_trip = std::max<std::int64_t>(
        1, filter_grained_k_chunk(shape, plan, spec_));
  }
  e.ee = timing::simulated_ee(inner_trip, plan.reordered_pipeline) *
         kOuterLoopOverhead;

  const double rm = std::min(1.0, e.mbw_mem_gbs / e.rbw_mem_gbs);
  const double rl = std::min(1.0, e.mbw_ldm_gbs / e.rbw_ldm_gbs);
  e.mem_factor = rm * rm;
  e.ldm_factor = rl * rl;

  const double peak = spec_.peak_gflops_per_cg();
  if (plan.double_buffer) {
    // DMA overlaps compute: the binding constraint wins.
    e.gflops_per_cg = peak * e.ee * e.mem_factor * e.ldm_factor;
  } else {
    // Phases serialize: inverse throughputs add.
    const double compute = peak * e.ee * e.ldm_factor;
    const double memory = peak * e.mem_factor;
    e.gflops_per_cg = 1.0 / (1.0 / compute + 1.0 / memory);
  }
  e.gflops_chip = e.gflops_per_cg * spec_.num_core_groups;
  return e;
}

}  // namespace swdnn::perf
