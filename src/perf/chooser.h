#pragma once
// Plan selection: "we adopt different loop scheduling and blocking
// strategies according to the performance model for different parameter
// configurations" (Section VII).
//
// The chooser enumerates feasible plans (both loop transformations, a
// grid of LDM blocking sizes, DMA promotion on/off), scores each with
// the performance model, and returns the best. Insight from Section IV
// drives the candidate grid: bB should keep DMA blocks >= 256 B and
// 128 B-aligned; bCo only matters for the image plan; large No lowers
// RBW for free.

#include <vector>

#include "src/perf/model.h"
#include "src/perf/plan.h"

namespace swdnn::perf {

struct PlanChoice {
  ConvPlan plan;
  PerfEstimate estimate;
};

class PlanChooser {
 public:
  explicit PlanChooser(const arch::Sw26010Spec& spec = arch::default_spec());

  /// Best feasible plan for the shape. Throws std::runtime_error if no
  /// candidate is feasible (cannot happen for valid shapes with batch
  /// divisible by 4 — the batch plan with bCo=1 always fits).
  PlanChoice choose(const conv::ConvShape& shape) const;

  /// All feasible candidates with their scores, best first (for the
  /// blocking-ablation bench and the plan-explorer example).
  std::vector<PlanChoice> rank(const conv::ConvShape& shape) const;

  const PerformanceModel& model() const { return model_; }

 private:
  arch::Sw26010Spec spec_;  // by value: callers may pass temporaries
  PerformanceModel model_;
};

}  // namespace swdnn::perf
