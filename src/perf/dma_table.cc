#include "src/perf/dma_table.h"

#include <algorithm>
#include <cmath>

namespace swdnn::perf {

DmaBandwidthTable::DmaBandwidthTable() {
  // Paper Table II: Measured DMA Bandwidths (GB/s) on one core group.
  samples_ = {
      {32, 4.31, 2.56},     {64, 9.00, 9.20},     {128, 17.25, 18.83},
      {192, 17.94, 19.82},  {256, 22.44, 25.80},  {384, 22.88, 24.67},
      {512, 27.42, 30.34},  {576, 25.96, 28.91},  {640, 29.05, 32.00},
      {1024, 29.79, 33.44}, {2048, 31.32, 35.19}, {4096, 32.05, 36.01},
  };
}

double DmaBandwidthTable::bandwidth_gbs(std::int64_t block_bytes,
                                        DmaDirection dir,
                                        bool aligned_128) const {
  auto value = [dir](const DmaSample& s) {
    return dir == DmaDirection::kGet ? s.get_gbs : s.put_gbs;
  };

  double bw;
  if (block_bytes <= samples_.front().block_bytes) {
    // Sub-32 B blocks scale down proportionally: the DMA engine still
    // moves one minimum burst per block.
    const double frac =
        static_cast<double>(std::max<std::int64_t>(block_bytes, 1)) /
        static_cast<double>(samples_.front().block_bytes);
    bw = value(samples_.front()) * std::min(1.0, frac);
  } else if (block_bytes >= samples_.back().block_bytes) {
    bw = value(samples_.back());
  } else {
    auto hi = std::lower_bound(
        samples_.begin(), samples_.end(), block_bytes,
        [](const DmaSample& s, std::int64_t b) { return s.block_bytes < b; });
    auto lo = hi - 1;
    const double t = static_cast<double>(block_bytes - lo->block_bytes) /
                     static_cast<double>(hi->block_bytes - lo->block_bytes);
    bw = value(*lo) + t * (value(*hi) - value(*lo));
  }

  if (!aligned_128 && block_bytes > 0) {
    // A misaligned block touches ceil(block/128)+1 bursts instead of
    // ceil(block/128): derate by the useful fraction.
    const double bursts = std::ceil(static_cast<double>(block_bytes) / 128.0);
    bw *= bursts / (bursts + 1.0);
  }
  return bw;
}

double DmaBandwidthTable::peak_gbs(DmaDirection dir) const {
  double best = 0.0;
  for (const auto& s : samples_) {
    best = std::max(best, dir == DmaDirection::kGet ? s.get_gbs : s.put_gbs);
  }
  return best;
}

const DmaBandwidthTable& dma_table() {
  static const DmaBandwidthTable table;
  return table;
}

}  // namespace swdnn::perf
