#pragma once
// Baseline envelope model: cuDNNv5 double-precision convolution on a
// Tesla K40m.
//
// The paper's Figures 7 and 9 plot measured cuDNNv5.1 throughput on a
// K40m against swDNN. We have no K40m; the paper reports only the
// envelope of the baseline, so this model is calibrated to exactly the
// published envelope facts:
//   * best efficiency ~40% of peak, reached "only for a small set of
//     parameter configurations" (Section VII / VIII);
//   * throughput is unstable across configurations (unlike swDNN);
//   * large filters degrade sharply (Fig. 9's widening gap: speedups
//     grow toward 9.75x at 21x21);
//   * channel counts off cuDNN's tile sizes degrade (the jagged Fig. 7
//     series; overall speedup range 1.91x - 9.75x).
//
// K40m: GK110B, 1.43 Tflops DP at base clock, 1.66 with GPU Boost,
// 240 GB/s (the paper quotes the K40's bandwidth when comparing).
// Every constant is documented at its definition; the Fig. 7/9 benches
// print this model as the "cuDNNv5 (K40m, modeled)" series.

#include "src/conv/shape.h"

namespace swdnn::perf {

struct K40mSpec {
  double dp_peak_gflops = 1430.0;   ///< base clock
  double dp_boost_gflops = 1660.0;  ///< GPU Boost ceiling
  double mem_bandwidth_gbs = 240.0;
};

class K40mCudnnModel {
 public:
  explicit K40mCudnnModel(const K40mSpec& spec = K40mSpec{});

  /// Modeled fraction of boost peak cuDNNv5 reaches for this shape.
  double efficiency(const conv::ConvShape& shape) const;

  /// Modeled throughput in Gflop/s.
  double conv_gflops(const conv::ConvShape& shape) const;

  const K40mSpec& spec() const { return spec_; }

 private:
  K40mSpec spec_;
};

}  // namespace swdnn::perf
