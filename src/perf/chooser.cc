#include "src/perf/chooser.h"

#include <algorithm>
#include <stdexcept>

namespace swdnn::perf {

PlanChooser::PlanChooser(const arch::Sw26010Spec& spec)
    : spec_(spec), model_(spec) {}

std::vector<PlanChoice> PlanChooser::rank(const conv::ConvShape& shape) const {
  std::vector<PlanChoice> choices;

  // The batch tile must give every CPE whole 256-bit batch vectors
  // (4 lanes x 8 mesh columns = 32), so bB starts at 32. DMA promotion
  // is not enumerated here: it trades LDM for bandwidth in ways the
  // paper's evaluated plans (Table III) do not use — the ablation bench
  // explores it explicitly.
  const std::int64_t bb_grid[] = {32, 64, 128};
  const std::int64_t bco_grid[] = {1, 2, 4, 8, 16, 32, 64};

  // Input-channel blocking candidates: the full depth first (what the
  // level-1 mesh kernels can execute), then the §IV fallback blockings
  // for problems whose filter tiles overflow LDM.
  std::vector<std::int64_t> bni_grid = {0};
  for (std::int64_t bni :
       {shape.ni / 2, shape.ni / 4, std::int64_t{256}, std::int64_t{128},
        std::int64_t{64}, std::int64_t{32}, std::int64_t{16},
        std::int64_t{8}}) {
    if (bni >= 8 && bni < shape.ni && shape.ni % bni == 0 && bni % 8 == 0 &&
        std::find(bni_grid.begin(), bni_grid.end(), bni) == bni_grid.end()) {
      bni_grid.push_back(bni);
    }
  }

  for (std::int64_t bni : bni_grid) {
    // Ni blocking is strictly a fallback: it shrinks the filter tile so
    // a reasonable plan fits when the unblocked depth overflows LDM,
    // but it is not allowed to compete with healthy unblocked plans
    // (the inner loop shortens, EE falls, and the model cannot see all
    // of the cost). "Healthy" = the best unblocked candidate reaches at
    // least a quarter of peak; below that, LDM pressure has crippled
    // the blocking and the fallback is worth its EE cost.
    if (bni != 0) {
      double best = 0;
      for (const auto& c : choices) {
        best = std::max(best, c.estimate.gflops_per_cg);
      }
      if (best >= 0.25 * spec_.peak_gflops_per_cg()) break;
    }

    // Image-size-aware candidates.
    for (std::int64_t bb : bb_grid) {
      if (bb > shape.batch || shape.batch % bb != 0) continue;
      for (std::int64_t bco : bco_grid) {
        if (bco > shape.co()) continue;
        ConvPlan plan;
        plan.kind = PlanKind::kImageSizeAware;
        plan.block_b = bb;
        plan.block_co = bco;
        plan.block_ni = bni;
        if (!plan_feasible(shape, plan, spec_)) continue;
        choices.push_back({plan, model_.estimate(shape, plan)});
      }
    }

    // Batch-size-aware candidates.
    for (std::int64_t bco : bco_grid) {
      if (bco > shape.co()) continue;
      ConvPlan plan;
      plan.kind = PlanKind::kBatchSizeAware;
      plan.block_co = bco;
      plan.block_ni = bni;
      if (!plan_feasible(shape, plan, spec_)) continue;
      choices.push_back({plan, model_.estimate(shape, plan)});
    }
  }

  // Multigrain candidates (MG3MConv's per-regime mappings). Enumerated
  // after the paper's plans so stable_sort keeps the incumbents ahead on
  // exact score ties; the new mappings must *win* a regime to lead the
  // ranking. The filter-grained lowering is scored at its derived
  // pixel block plus a few explicit blocks (smaller blocks lengthen the
  // LDM contraction chunk, larger ones amortize the filter re-read —
  // the crossover is shape-dependent). The pixel-grained mapping has no
  // blocking knob at all.
  {
    const std::int64_t px_cap =
        ((conv_pixels(shape) + spec_.mesh_rows - 1) / spec_.mesh_rows) *
        spec_.mesh_rows;
    std::vector<std::int64_t> bpx_grid = {0};
    for (std::int64_t bpx : {std::int64_t{256}, std::int64_t{512},
                             std::int64_t{1024}}) {
      if (bpx < px_cap) bpx_grid.push_back(bpx);
    }
    // A half-panel variant rides along even on shapes too small for the
    // explicit grid: two same-family candidates with distinct blockings
    // give the fault ladder an in-family rescue plan (the ladder never
    // crosses mapping families, so a lone candidate would fall straight
    // through to the host after one fault).
    if (px_cap / 2 >= spec_.mesh_rows) bpx_grid.push_back(px_cap / 2);
    std::vector<std::int64_t> seen_blocks;
    for (std::int64_t bpx : bpx_grid) {
      ConvPlan plan;
      plan.kind = PlanKind::kFilterGrained;
      plan.block_px = bpx;
      if (!plan_feasible(shape, plan, spec_)) continue;
      // Distinct grid entries can clamp to the same effective block;
      // keep one candidate per resolved block.
      const std::int64_t resolved = filter_grained_block_px(shape, plan, spec_);
      if (std::find(seen_blocks.begin(), seen_blocks.end(), resolved) !=
          seen_blocks.end()) {
        continue;
      }
      seen_blocks.push_back(resolved);
      choices.push_back({plan, model_.estimate(shape, plan)});
    }

    ConvPlan pg;
    pg.kind = PlanKind::kPixelGrained;
    if (plan_feasible(shape, pg, spec_)) {
      choices.push_back({pg, model_.estimate(shape, pg)});
    }
  }

  std::stable_sort(choices.begin(), choices.end(),
                   [](const PlanChoice& a, const PlanChoice& b) {
                     return a.estimate.gflops_per_cg > b.estimate.gflops_per_cg;
                   });
  return choices;
}

PlanChoice PlanChooser::choose(const conv::ConvShape& shape) const {
  auto ranked = rank(shape);
  if (ranked.empty()) {
    throw std::runtime_error("PlanChooser: no feasible plan for " +
                             shape.to_string());
  }
  return ranked.front();
}

}  // namespace swdnn::perf
