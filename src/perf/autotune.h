#pragma once
// Compile-time schedule autotuning over the performance model.
//
// The chooser's grid fixes the register blocking at the paper's default
// (rb_b=16, rb_no=4) and leaves DMA promotion off; both knobs move the
// modeled throughput (Eq. 5 register-level bandwidth, Table II block
// sizes for the promoted streams) without changing what the functional
// kernels compute — the level-1 mesh kernels and the host GEMM never
// read them. The autotuner exploits exactly that: for each ranked plan
// of a shape it searches the schedule-only knobs
//     rb_b  in {8, 16, 32, 64}   (registers held per batch tile)
//     rb_no in {2, 4, 8}         (output channels per register tile)
//     promote_input_dma          (image plan: hoist the input get)
//     promote_filter_dma         (batch plan: hoist the filter get)
// keeping the plan's kind and LDM blocking fixed, scores every feasible
// variant with the closed-form model (the Interstellar move: schedule
// search over a loop-nest cost model), and keeps the best. Because the
// functional numerics only depend on kind + LDM blocking, a tuned plan
// is bitwise-identical in output to its base plan on every route — the
// eager-vs-compiled differential contract survives tuning untouched.
//
// The tuned ranking preserves the base ranking's order and therefore
// its mesh-executability index list: tuning upgrades each entry in
// place, it never reshuffles dispatch.

#include <cstddef>
#include <vector>

#include "src/perf/chooser.h"

namespace swdnn::perf {

/// What one shape's tuning run decided, for observability and benches.
struct AutotuneReport {
  conv::ConvShape shape;
  ConvPlan baseline_plan;      ///< base ranking's winner
  ConvPlan tuned_plan;         ///< winner after schedule search
  double baseline_gflops_per_cg = 0;
  double tuned_gflops_per_cg = 0;
  std::size_t candidates_scored = 0;

  /// Modeled tuned/baseline ratio; >= 1.0 by construction (the default
  /// schedule is in the search space and ties keep it).
  double speedup() const {
    return baseline_gflops_per_cg > 0
               ? tuned_gflops_per_cg / baseline_gflops_per_cg
               : 1.0;
  }
};

/// One candidate of a measured-autotune confirmation run.
struct MeasuredCandidate {
  ConvPlan plan;
  double modeled_gflops_per_cg = 0;  ///< closed-form score after tuning
  double measured_seconds = 0;       ///< timed simulator launch
  double measured_gflops = 0;        ///< LaunchStats::modeled_gflops
};

/// What a measured-autotune run decided (SwConvolution::
/// autotune_plan_measured): the tournament field — the model's top
/// executable pick plus the best executable rival from each other
/// mapping family (up to three candidates) — their timed launches, and
/// whether measurement overturned the model's order.
struct MeasuredAutotuneReport {
  conv::ConvShape shape;
  /// [0] = the model's pick; rivals follow in modeled rank order.
  std::vector<MeasuredCandidate> candidates;
  std::size_t winner_index = 0;  ///< into candidates, after measurement
  bool reordered = false;  ///< measurement promoted a rival
};

class ScheduleAutotuner {
 public:
  explicit ScheduleAutotuner(
      const arch::Sw26010Spec& spec = arch::default_spec());

  /// Best schedule-only variant of `base` for `shape` (base itself if
  /// nothing scores strictly better). `scored`, when non-null, is
  /// incremented per candidate evaluated.
  PlanChoice tune_choice(const conv::ConvShape& shape,
                         const PlanChoice& base,
                         std::size_t* scored = nullptr) const;

  /// Tunes every entry of a ranked list in place-order (entry i of the
  /// result is the tuned variant of entry i of the input; order is NOT
  /// re-sorted, so executability index lists stay valid). Fills
  /// `report` from the first entry when non-null.
  std::vector<PlanChoice> tune_ranked(const conv::ConvShape& shape,
                                      const std::vector<PlanChoice>& ranked,
                                      AutotuneReport* report = nullptr) const;

 private:
  arch::Sw26010Spec spec_;  // by value: callers may pass temporaries
  PerformanceModel model_;
};

}  // namespace swdnn::perf
