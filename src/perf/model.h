#pragma once
// The three-level (REG - LDM - MEM) performance model of paper Fig. 2.
//
// For a convolution shape and an execution plan the model computes:
//   * RBW(MEM->LDM): the bandwidth required to keep the CPEs at peak,
//     from Eq. (1) (image-size-aware) or Eq. (2) (batch-size-aware);
//   * MBW(MEM->LDM): the bandwidth the DMA engine actually delivers,
//     a traffic-weighted harmonic mean over the plan's input / filter /
//     output streams with per-stream block sizes looked up in Table II;
//   * RBW(LDM->REG): Eq. (5) with the plan's register blocking, against
//     the 46.4 GB/s LDM port;
//   * EE: execution efficiency of the inner instruction schedule, from
//     the dual-pipeline simulator (Section VI), derated by a small
//     constant for the loop-control and mesh-id bookkeeping the paper's
//     assembly unrolls;
//   * the resulting estimate, peak * EE * min(1, MBW/RBW)^2 per level —
//     the square is the paper's empirical rule ("the amount of
//     computation increases with the square of the input data").
//
// Toggles map to ablations: without register communication each CPE
// must fetch all Ni input channels and all No filter channels itself,
// multiplying required memory bandwidth by the mesh dimension (8) —
// the Section V-A "order of magnitude" claim. Without double buffering
// the memory and compute phases serialize instead of overlapping.

#include "src/arch/spec.h"
#include "src/conv/shape.h"
#include "src/perf/dma_table.h"
#include "src/perf/plan.h"

namespace swdnn::perf {

/// Traffic of one DMA stream over a whole layer.
struct StreamTraffic {
  double bytes = 0;              ///< total bytes moved
  std::int64_t block_bytes = 0;  ///< contiguous block per request
  DmaDirection direction = DmaDirection::kGet;
  bool aligned = true;
};

struct TrafficBreakdown {
  StreamTraffic input;
  StreamTraffic filter;
  StreamTraffic output;

  double total_bytes() const {
    return input.bytes + filter.bytes + output.bytes;
  }
};

struct PerfEstimate {
  double rbw_mem_gbs = 0;    ///< Eq. (1)/(2) requirement
  double mbw_mem_gbs = 0;    ///< Table II effective delivery
  double rbw_ldm_gbs = 0;    ///< Eq. (5) per-CPE requirement
  double mbw_ldm_gbs = 0;    ///< 46.4 GB/s port
  double ee = 0;             ///< pipeline execution efficiency
  double mem_factor = 0;     ///< min(1, MBW/RBW)^2 at MEM level
  double ldm_factor = 0;     ///< min(1, MBW/RBW)^2 at LDM level
  double gflops_per_cg = 0;
  double gflops_chip = 0;    ///< 4 CGs, paper's near-linear row split
  TrafficBreakdown traffic;

  double seconds_for(std::int64_t flops, int num_cgs = 4) const;
};

class PerformanceModel {
 public:
  explicit PerformanceModel(
      const arch::Sw26010Spec& spec = arch::default_spec());

  /// Full model evaluation for one shape + plan.
  PerfEstimate estimate(const conv::ConvShape& shape,
                        const ConvPlan& plan) const;

  /// Required MEM->LDM bandwidth, Eq. (1) (GB/s per CG).
  double rbw_image_plan(const conv::ConvShape& shape,
                        const ConvPlan& plan) const;

  /// Required MEM->LDM bandwidth, Eq. (2) (GB/s per CG).
  double rbw_batch_plan(const conv::ConvShape& shape,
                        const ConvPlan& plan = ConvPlan{}) const;

  /// Required MEM->LDM bandwidth of the filter-grained lowering:
  /// (1/bPx + 3/No + 1/K) * DS * T/2 with K = Kr*Kc*Ni. The 1/bPx term
  /// is the filter matrix re-streamed per pixel block, the 3/No term
  /// charges the full im2col lowering (patch gather-read, column-matrix
  /// write, column-matrix read), the 1/K term the output put.
  double rbw_filter_grained(const conv::ConvShape& shape,
                            const ConvPlan& plan) const;

  /// Required MEM->LDM bandwidth of the pixel-grained mapping:
  /// (1/No + 1/K + 1/P) * DS * T/2 with P = Ro*Co*B. The filter is read
  /// exactly once (1/P), the input once per tap (1/No), plus the output
  /// put (1/K) — no lowering traffic at all.
  double rbw_pixel_grained(const conv::ConvShape& shape,
                           const ConvPlan& plan) const;

  /// Required LDM->REG bandwidth with SIMD filter replication, Eq. (5)
  /// (GB/s per CPE). rb_no filter elements cost 4x: a scalar is loaded
  /// and splatted into a vector.
  double rbw_register_simd(const ConvPlan& plan) const;

  /// Required LDM->REG bandwidth of the spatial-convolution register
  /// blocking, Eq. (3) (per CPE) — shown for why it was rejected.
  double rbw_register_spatial(std::int64_t rb_ri, std::int64_t rb_ci,
                              std::int64_t rb_kr, std::int64_t rb_kc) const;

  /// DMA traffic breakdown of the plan over the whole layer.
  TrafficBreakdown traffic(const conv::ConvShape& shape,
                           const ConvPlan& plan) const;

  /// Effective MEM<->LDM bandwidth: harmonic mean of the streams.
  double effective_mbw(const TrafficBreakdown& t) const;

  /// Fig. 2 middle column: the gload strawman, peak * (8/139.2)^2.
  double direct_gload_gflops_per_cg() const;

  const arch::Sw26010Spec& spec() const { return spec_; }

 private:
  arch::Sw26010Spec spec_;  // by value: callers may pass temporaries
};

}  // namespace swdnn::perf
