#pragma once
// Shape-keyed plan cache: the piece that turns the chooser into a
// serving-grade dispatcher.
//
// PlanChooser::rank walks an O(grid) candidate space and scores every
// candidate with the performance model — exactly right to do once per
// convolution shape, and far too expensive to do once per request. The
// cache memoizes the full ranked result per ConvShape: the winner drives
// dispatch, the ranked fallbacks feed fault degradation (a plan with
// smaller LDM tiles may survive a capacity fault that killed the
// winner), and the executable-index list records which candidates the
// level-1 mesh kernels can actually run.
//
// Thread-safety: every method may be called concurrently (a serving
// front-end dispatches N worker threads through one handle, hence one
// cache). Entries are immutable once built and handed out as
// shared_ptr<const CachedPlan>, so a reader's entry stays valid even if
// LRU eviction drops it from the table mid-use. Building happens under
// the cache mutex: concurrent first sights of the same shape still rank
// exactly once.

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/perf/chooser.h"

namespace swdnn::perf {

/// The memoized result of one PlanChooser::rank call.
struct CachedPlan {
  /// All feasible plans for the shape, best first (rank order).
  std::vector<PlanChoice> ranked;

  /// Indices into `ranked` of the plans the level-1 mesh kernels can
  /// execute for this shape, still best first. Empty means the shape
  /// has no mesh route (host fallback territory).
  std::vector<std::size_t> executable;

  bool has_executable() const { return !executable.empty(); }

  /// Best mesh-executable choice; callers must check has_executable().
  const PlanChoice& best_executable() const { return ranked[executable[0]]; }
};

struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;  ///< == builder (PlanChooser::rank) invocations
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t capacity = 0;
};

class PlanCache {
 public:
  using Entry = std::shared_ptr<const CachedPlan>;
  using Builder = std::function<CachedPlan(const conv::ConvShape&)>;

  struct LookupResult {
    Entry entry;  ///< never null
    bool hit = false;
  };

  /// `capacity` bounds the number of cached shapes; the least recently
  /// used entry is evicted when a new shape would exceed it.
  explicit PlanCache(std::size_t capacity = kDefaultCapacity);

  /// Returns the entry for `shape`, invoking `build` exactly once per
  /// shape lifetime in the cache (first sight or after eviction). If
  /// `build` throws, nothing is cached and the exception propagates.
  LookupResult lookup(const conv::ConvShape& shape, const Builder& build);

  /// Entry if present, else null. Purely diagnostic: does not touch
  /// the hit/miss counters or the LRU order.
  Entry peek(const conv::ConvShape& shape) const;

  /// Counter-neutral pre-population for compile-time warm-up: builds
  /// and inserts the entry if absent, touching neither hits_ nor
  /// misses_, so the hit-rate observed at serve time reflects serve
  /// traffic only. Returns true if an entry was built, false if the
  /// shape was already cached.
  bool warm(const conv::ConvShape& shape, const Builder& build);

  /// Counter-neutral overwrite: replaces (or inserts) the entry for
  /// `shape` with an externally built one — the schedule autotuner's
  /// installation point, so subsequent lookups serve tuned plans as
  /// ordinary hits. Touches neither hits_ nor misses_.
  void install(const conv::ConvShape& shape, CachedPlan entry);

  PlanCacheStats stats() const;
  void clear();

  static constexpr std::size_t kDefaultCapacity = 1024;

  /// Hash usable by any shape-keyed table (the autotuner's tuned-shape
  /// set reuses it).
  struct ShapeHash {
    std::size_t operator()(const conv::ConvShape& s) const;
  };

 private:
  struct Slot {
    Entry entry;
    std::list<conv::ConvShape>::iterator lru_pos;
  };

  void touch(Slot& slot) const;  // move to LRU front; mutex must be held

  mutable std::mutex mutex_;
  std::size_t capacity_;
  mutable std::list<conv::ConvShape> lru_;  // front = most recent
  std::unordered_map<conv::ConvShape, Slot, ShapeHash> table_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace swdnn::perf
