#pragma once
// Convolution execution plans (the knobs Sections IV-VI expose).
//
// A plan fixes: the mapping (how the convolution is laid onto the mesh
// GEMM), the LDM blocking sizes, the register blocking, and the
// optimization toggles (register communication, double buffering,
// reordered pipeline, DMA promotion). The performance model scores
// plans; the chooser picks the best feasible one; the functional
// kernels execute them.
//
// The mapping family (MG3MConv's insight, applied to this library):
//   * kImageSizeAware / kBatchSizeAware — the paper's Algorithm 1/2
//     loop transformations of the direct convolution. Strongest on the
//     well-provisioned evaluation band (B=128, channels >= 64, mesh-
//     divisible everything).
//   * kFilterGrained — im2col lowering run on the mesh: one GEMM of
//     the [Kr*Kc*Ni x No] filter matrix against pixel-column blocks of
//     the patch matrix. Any ragged dimension works (tiles are
//     ceil-divided and zero-padded) and the contraction runs over the
//     whole Kr*Kc*Ni extent, so the inner pipeline stays long even
//     when Ni alone is tiny. Pays for the lowering: the patch gather
//     reads the input Kr*Kc times and stages it through memory.
//   * kPixelGrained — per-output-pixel panel GEMM with the whole
//     filter resident in LDM: out(ro,co)[No x B] accumulates one
//     Ni-contraction per tap. No lowering traffic and no divisibility
//     constraint at all (any stride-1 Ni/No/B/H/W), but the filter
//     must fit LDM — the small-shape regime's mapping.

#include <cstdint>
#include <string>

#include "src/arch/spec.h"
#include "src/conv/shape.h"

namespace swdnn::perf {

enum class PlanKind {
  kDirect,          ///< gload straight from memory (Fig. 2 middle column)
  kImageSizeAware,  ///< Algorithm 1: block on Co and B
  kBatchSizeAware,  ///< Algorithm 2: stream pixels, amortize over B
  kFilterGrained,   ///< filters x im2col-pixels mesh GEMM (any shape)
  kPixelGrained,    ///< per-output-pixel panel GEMM, LDM-resident filter
};

const char* plan_kind_name(PlanKind kind);

/// True for the mappings added by the multi-grained family (useful for
/// benches and tests that compare "new mapping vs incumbent").
bool plan_kind_is_multigrain(PlanKind kind);

/// The three mapping families with fundamentally different cost
/// structures — direct/blocked loads, im2col-lowered GEMM, and
/// pixel-panel GEMM. The measured-autotune tournament confirms the
/// model's top pick against the best executable rival of each OTHER
/// family, because cross-family is where the model's ordering is least
/// trustworthy.
enum class PlanFamily {
  kIncumbent,      ///< kDirect / kImageSizeAware / kBatchSizeAware
  kFilterGrained,  ///< kFilterGrained
  kPixelGrained,   ///< kPixelGrained
};

PlanFamily plan_kind_family(PlanKind kind);
const char* plan_family_name(PlanFamily family);

struct ConvPlan {
  PlanKind kind = PlanKind::kImageSizeAware;

  // LDM blocking (Section IV). block_b is bB (image plan only; the
  // batch plan streams the full batch). block_co is bCo for both plans
  // (the batch plan also tiles its output columns to fit LDM).
  std::int64_t block_b = 32;
  std::int64_t block_co = 16;

  // Input-channel blocking bNi (0 = the full Ni). "If LDM space is not
  // enough for large Ni or No, we still need to apply loop blocking on
  // these dimensions" (§IV) — without it no plan fits Ni=No=384. The
  // level-1 mesh kernels execute only unblocked-Ni plans; the model
  // handles both.
  std::int64_t block_ni = 0;

  // Pixel-column block of the filter-grained mapping: how many
  // flattened (ro, co, b) output pixels one mesh-GEMM pass covers
  // (0 = derive the largest LDM-feasible block). Larger blocks
  // amortize the filter re-read (1/bPx in the cost model) but shrink
  // the LDM contraction chunk and with it the inner-loop length.
  // An LDM-blocking knob like block_co — part of the plan's numeric
  // identity (it changes summation grouping), never touched by the
  // schedule-only autotuner. Ignored by the other kinds.
  std::int64_t block_px = 0;

  // Register blocking (Section V-B / Eq. 5). rb_b batch elements
  // (rb_b/4 vectors) by rb_no output channels are held in registers.
  std::int64_t rb_b = 16;
  std::int64_t rb_no = 4;

  // Optimization toggles (each is an ablation axis).
  bool use_register_comm = true;   ///< Section V-A mesh data sharing
  bool double_buffer = true;       ///< overlap DMA with compute
  bool reordered_pipeline = true;  ///< Section VI instruction schedule
  bool promote_input_dma = false;  ///< Alg 1: hoist input get over Kc
  bool promote_filter_dma = false; ///< Alg 2: hoist filter get over cCi

  std::string to_string() const;
};

/// Flattened output-pixel extent Ro*Co*B — the n axis of the
/// filter-grained GEMM and the pixel count the pixel-grained mapping
/// loops over.
std::int64_t conv_pixels(const conv::ConvShape& shape);

/// The pixel-column block the filter-grained mapping will actually use:
/// plan.block_px clamped to the (mesh-rounded) pixel extent, or the
/// largest LDM-feasible block when plan.block_px == 0.
std::int64_t filter_grained_block_px(const conv::ConvShape& shape,
                                     const ConvPlan& plan,
                                     const arch::Sw26010Spec& spec);

/// The contraction chunk (rows of the Kr*Kc*Ni axis) one LDM pass of
/// the filter-grained GEMM streams, given the plan's pixel block. This
/// is the inner-loop extent the EE model sees for the mapping.
std::int64_t filter_grained_k_chunk(const conv::ConvShape& shape,
                                    const ConvPlan& plan,
                                    const arch::Sw26010Spec& spec);

/// Per-CPE LDM footprint in bytes for running `plan` on `shape` with the
/// paper's mesh data distribution (each CPE holds 1/64 of every tile:
/// Ni/8 input channels on its column, No/8 output channels, B/8 or bB/8
/// of the batch on its row). Double buffering doubles the streamed
/// tiles. Promotion enlarges the hoisted tile. The multigrain mappings
/// use ceil-divided tiles and (filter-grained) the minimum one-row
/// contraction chunk.
std::int64_t ldm_bytes_required(const conv::ConvShape& shape,
                                const ConvPlan& plan,
                                const arch::Sw26010Spec& spec);

/// True when the plan's tiles fit in the 64 KB LDM and its blocking
/// divides cleanly enough to execute (see implementation for the exact
/// divisibility rules).
bool plan_feasible(const conv::ConvShape& shape, const ConvPlan& plan,
                   const arch::Sw26010Spec& spec);

}  // namespace swdnn::perf
