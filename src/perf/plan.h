#pragma once
// Convolution execution plans (the knobs Sections IV-VI expose).
//
// A plan fixes: the loop transformation (image-size-aware Algorithm 1 or
// batch-size-aware Algorithm 2, or the direct-gload strawman), the LDM
// blocking sizes, the register blocking, and the optimization toggles
// (register communication, double buffering, reordered pipeline, DMA
// promotion). The performance model scores plans; the chooser picks the
// best feasible one; the functional kernels execute them.

#include <cstdint>
#include <string>

#include "src/arch/spec.h"
#include "src/conv/shape.h"

namespace swdnn::perf {

enum class PlanKind {
  kDirect,          ///< gload straight from memory (Fig. 2 middle column)
  kImageSizeAware,  ///< Algorithm 1: block on Co and B
  kBatchSizeAware,  ///< Algorithm 2: stream pixels, amortize over B
};

const char* plan_kind_name(PlanKind kind);

struct ConvPlan {
  PlanKind kind = PlanKind::kImageSizeAware;

  // LDM blocking (Section IV). block_b is bB (image plan only; the
  // batch plan streams the full batch). block_co is bCo for both plans
  // (the batch plan also tiles its output columns to fit LDM).
  std::int64_t block_b = 32;
  std::int64_t block_co = 16;

  // Input-channel blocking bNi (0 = the full Ni). "If LDM space is not
  // enough for large Ni or No, we still need to apply loop blocking on
  // these dimensions" (§IV) — without it no plan fits Ni=No=384. The
  // level-1 mesh kernels execute only unblocked-Ni plans; the model
  // handles both.
  std::int64_t block_ni = 0;

  // Register blocking (Section V-B / Eq. 5). rb_b batch elements
  // (rb_b/4 vectors) by rb_no output channels are held in registers.
  std::int64_t rb_b = 16;
  std::int64_t rb_no = 4;

  // Optimization toggles (each is an ablation axis).
  bool use_register_comm = true;   ///< Section V-A mesh data sharing
  bool double_buffer = true;       ///< overlap DMA with compute
  bool reordered_pipeline = true;  ///< Section VI instruction schedule
  bool promote_input_dma = false;  ///< Alg 1: hoist input get over Kc
  bool promote_filter_dma = false; ///< Alg 2: hoist filter get over cCi

  std::string to_string() const;
};

/// Per-CPE LDM footprint in bytes for running `plan` on `shape` with the
/// paper's mesh data distribution (each CPE holds 1/64 of every tile:
/// Ni/8 input channels on its column, No/8 output channels, B/8 or bB/8
/// of the batch on its row). Double buffering doubles the streamed
/// tiles. Promotion enlarges the hoisted tile.
std::int64_t ldm_bytes_required(const conv::ConvShape& shape,
                                const ConvPlan& plan,
                                const arch::Sw26010Spec& spec);

/// True when the plan's tiles fit in the 64 KB LDM and its blocking
/// divides cleanly enough to execute (see implementation for the exact
/// divisibility rules).
bool plan_feasible(const conv::ConvShape& shape, const ConvPlan& plan,
                   const arch::Sw26010Spec& spec);

}  // namespace swdnn::perf
