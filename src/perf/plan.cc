#include "src/perf/plan.h"

#include <algorithm>

namespace swdnn::perf {

const char* plan_kind_name(PlanKind kind) {
  switch (kind) {
    case PlanKind::kDirect:
      return "direct";
    case PlanKind::kImageSizeAware:
      return "img";
    case PlanKind::kBatchSizeAware:
      return "batch";
  }
  return "?";
}

std::string ConvPlan::to_string() const {
  std::string s = plan_kind_name(kind);
  if (kind == PlanKind::kImageSizeAware) {
    s += "(bB=" + std::to_string(block_b) + ",bCo=" + std::to_string(block_co) +
         ")";
  } else if (kind == PlanKind::kBatchSizeAware) {
    s += "(bCo=" + std::to_string(block_co) + ")";
  }
  if (block_ni > 0) s += "-bNi" + std::to_string(block_ni);
  if (!use_register_comm) s += "-noregcomm";
  if (!double_buffer) s += "-nodb";
  if (!reordered_pipeline) s += "-noreorder";
  return s;
}

std::int64_t ldm_bytes_required(const conv::ConvShape& shape,
                                const ConvPlan& plan,
                                const arch::Sw26010Spec& spec) {
  const std::int64_t ds = 8;
  const std::int64_t rows = spec.mesh_rows;
  const std::int64_t cols = spec.mesh_cols;
  const std::int64_t cpes = rows * cols;

  auto ceil_div = [](std::int64_t a, std::int64_t b) {
    return (a + b - 1) / b;
  };

  if (plan.kind == PlanKind::kDirect) {
    // gload keeps nothing resident beyond registers.
    return 0;
  }

  // Per-CPE channel shares: bNi/8 input channels per mesh column, No/8
  // output channels per column of the filter distribution.
  const std::int64_t bni =
      plan.block_ni > 0 ? std::min(plan.block_ni, shape.ni) : shape.ni;
  const std::int64_t ni_share = ceil_div(bni, rows);
  const std::int64_t no_share = ceil_div(shape.no, cols);

  std::int64_t in_tile = 0, w_tile = 0, out_tile = 0;
  if (plan.kind == PlanKind::kImageSizeAware) {
    const std::int64_t b_share = ceil_div(plan.block_b, rows);
    // The input tile always carries the Kc-1 column halo: the sliding
    // window of line 6 of Algorithm 1 touches bCo+Kc-1 columns.
    const std::int64_t co_tile = plan.block_co + shape.kc - 1;
    in_tile = co_tile * ni_share * b_share;
    w_tile = ni_share * no_share;  // one (kc, kr) slice
    out_tile = plan.block_co * no_share * b_share;
  } else {  // batch-size-aware
    const std::int64_t b_share = ceil_div(shape.batch, rows);
    // One input pixel column of all channels/batches at a time.
    in_tile = ni_share * b_share;
    const std::int64_t w_slices = plan.promote_filter_dma ? shape.kc : 1;
    w_tile = ni_share * no_share * w_slices;
    out_tile = plan.block_co * no_share * b_share;
  }

  // Double buffering applies to the streamed operand tiles (input and
  // filter); the output tile is an accumulator, written back once per
  // step, so it has no second buffer.
  const std::int64_t buffers = plan.double_buffer ? 2 : 1;
  (void)cpes;
  return ds * (buffers * (in_tile + w_tile) + out_tile);
}

bool plan_feasible(const conv::ConvShape& shape, const ConvPlan& plan,
                   const arch::Sw26010Spec& spec) {
  if (plan.kind == PlanKind::kDirect) return true;
  if (plan.block_co <= 0 || plan.block_co > shape.co()) return false;
  if (plan.kind == PlanKind::kImageSizeAware) {
    if (plan.block_b <= 0 || plan.block_b > shape.batch) return false;
    if (shape.batch % plan.block_b != 0) return false;
  }
  if (plan.block_ni != 0) {
    if (plan.block_ni <= 0 || plan.block_ni > shape.ni ||
        shape.ni % plan.block_ni != 0) {
      return false;
    }
  }
  if (plan.rb_b <= 0 || plan.rb_no <= 0) return false;
  if (plan.rb_b % 4 != 0) return false;  // rb_b/4 vectors of 4 lanes
  // Register budget: rb_b/4 image vectors + rb_no filter vectors +
  // (rb_b/4)*rb_no accumulators must fit the 32-entry vector file.
  const std::int64_t vregs =
      plan.rb_b / 4 + plan.rb_no + (plan.rb_b / 4) * plan.rb_no;
  if (vregs > 32) return false;
  return ldm_bytes_required(shape, plan, spec) <=
         static_cast<std::int64_t>(spec.ldm_bytes - spec.ldm_reserved_bytes);
}

}  // namespace swdnn::perf
