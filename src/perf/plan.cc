#include "src/perf/plan.h"

#include <algorithm>

namespace swdnn::perf {

namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

std::int64_t ldm_budget_doubles(const arch::Sw26010Spec& spec) {
  return static_cast<std::int64_t>(spec.ldm_bytes - spec.ldm_reserved_bytes) /
         8;
}

// The contraction chunk the filter-grained GEMM should keep per LDM
// pass to leave the pipeline simulator a long inner loop. Below this
// the derived pixel block falls back to whatever fits at k_t = 1.
constexpr std::int64_t kFilterGrainedMinKt = 8;

}  // namespace

const char* plan_kind_name(PlanKind kind) {
  // Exhaustive on purpose: adding a PlanKind must be a compile error
  // (-Wswitch/-Wreturn-type) here and in every switch that describes or
  // dispatches plans.
  switch (kind) {
    case PlanKind::kDirect:
      return "direct";
    case PlanKind::kImageSizeAware:
      return "img";
    case PlanKind::kBatchSizeAware:
      return "batch";
    case PlanKind::kFilterGrained:
      return "fgrain";
    case PlanKind::kPixelGrained:
      return "pgrain";
  }
  return "?";
}

bool plan_kind_is_multigrain(PlanKind kind) {
  switch (kind) {
    case PlanKind::kDirect:
    case PlanKind::kImageSizeAware:
    case PlanKind::kBatchSizeAware:
      return false;
    case PlanKind::kFilterGrained:
    case PlanKind::kPixelGrained:
      return true;
  }
  return false;
}

PlanFamily plan_kind_family(PlanKind kind) {
  switch (kind) {
    case PlanKind::kDirect:
    case PlanKind::kImageSizeAware:
    case PlanKind::kBatchSizeAware:
      return PlanFamily::kIncumbent;
    case PlanKind::kFilterGrained:
      return PlanFamily::kFilterGrained;
    case PlanKind::kPixelGrained:
      return PlanFamily::kPixelGrained;
  }
  return PlanFamily::kIncumbent;
}

const char* plan_family_name(PlanFamily family) {
  switch (family) {
    case PlanFamily::kIncumbent:
      return "incumbent";
    case PlanFamily::kFilterGrained:
      return "fgrain";
    case PlanFamily::kPixelGrained:
      return "pgrain";
  }
  return "?";
}

std::string ConvPlan::to_string() const {
  std::string s = plan_kind_name(kind);
  switch (kind) {
    case PlanKind::kDirect:
      break;
    case PlanKind::kImageSizeAware:
      s += "(bB=" + std::to_string(block_b) +
           ",bCo=" + std::to_string(block_co) + ")";
      break;
    case PlanKind::kBatchSizeAware:
      s += "(bCo=" + std::to_string(block_co) + ")";
      break;
    case PlanKind::kFilterGrained:
      s += "(bPx=" + std::to_string(block_px) + ")";
      break;
    case PlanKind::kPixelGrained:
      break;
  }
  if (block_ni > 0) s += "-bNi" + std::to_string(block_ni);
  if (!use_register_comm) s += "-noregcomm";
  if (!double_buffer) s += "-nodb";
  if (!reordered_pipeline) s += "-noreorder";
  return s;
}

std::int64_t conv_pixels(const conv::ConvShape& shape) {
  return shape.ro() * shape.co() * shape.batch;
}

std::int64_t filter_grained_block_px(const conv::ConvShape& shape,
                                     const ConvPlan& plan,
                                     const arch::Sw26010Spec& spec) {
  const std::int64_t p = spec.mesh_rows;
  const std::int64_t m_t = ceil_div(shape.no, p);
  const std::int64_t budget = ldm_budget_doubles(spec);
  // The whole pixel extent rounded to the mesh: blocks past it only pad.
  const std::int64_t px_cap = ceil_div(conv_pixels(shape), p) * p;

  std::int64_t n_t = 0;
  if (plan.block_px > 0) {
    n_t = ceil_div(std::min(plan.block_px, px_cap), p);
  } else {
    // Derive the widest pixel block that still leaves the contraction a
    // k_t >= kFilterGrainedMinKt chunk (footprint per the mesh_gemm
    // driver: 2*k_t*(m_t+n_t) + m_t*n_t + n_t doubles); if even a
    // one-row chunk cannot carry a full-width block, take the widest
    // that fits at k_t = 1.
    const std::int64_t at_min_kt =
        (budget - 2 * kFilterGrainedMinKt * m_t) /
        (m_t + 1 + 2 * kFilterGrainedMinKt);
    const std::int64_t at_one = (budget - 2 * m_t) / (m_t + 3);
    n_t = at_min_kt >= 1 ? at_min_kt : at_one;
    n_t = std::min(n_t, ceil_div(px_cap, p));
  }
  if (n_t < 1) return 0;
  // The output tile plus writeback staging must fit even before any
  // contraction rows do (the driver refuses otherwise).
  if (m_t * n_t + n_t >= budget) return 0;
  return std::max<std::int64_t>(n_t * p, p);
}

std::int64_t filter_grained_k_chunk(const conv::ConvShape& shape,
                                    const ConvPlan& plan,
                                    const arch::Sw26010Spec& spec) {
  const std::int64_t bpx = filter_grained_block_px(shape, plan, spec);
  if (bpx <= 0) return 0;
  const std::int64_t p = spec.mesh_rows;
  const std::int64_t k = shape.kr * shape.kc * shape.ni;
  const std::int64_t m_t = ceil_div(shape.no, p);
  const std::int64_t n_t = ceil_div(bpx, p);
  const std::int64_t budget = ldm_budget_doubles(spec);
  const std::int64_t fixed = m_t * n_t + n_t;
  if (fixed >= budget) return 0;
  // Same derivation as mesh_gemm_default_k_chunk, kept in the perf
  // layer so the model scores exactly the chunk the kernel will run.
  const std::int64_t k_t =
      std::max<std::int64_t>(1, (budget - fixed) / (2 * (m_t + n_t)));
  return std::min(k, k_t * p);
}

std::int64_t ldm_bytes_required(const conv::ConvShape& shape,
                                const ConvPlan& plan,
                                const arch::Sw26010Spec& spec) {
  const std::int64_t ds = 8;
  const std::int64_t rows = spec.mesh_rows;
  const std::int64_t cols = spec.mesh_cols;
  const std::int64_t cpes = rows * cols;

  if (plan.kind == PlanKind::kDirect) {
    // gload keeps nothing resident beyond registers.
    return 0;
  }

  if (plan.kind == PlanKind::kFilterGrained) {
    // The mesh_gemm driver's tile set at the plan's pixel block and the
    // chunk the driver will pick for it.
    const std::int64_t bpx = filter_grained_block_px(shape, plan, spec);
    const std::int64_t chunk = filter_grained_k_chunk(shape, plan, spec);
    if (bpx <= 0 || chunk <= 0) {
      // Infeasible: report a footprint plan_feasible must reject.
      return static_cast<std::int64_t>(spec.ldm_bytes) + 1;
    }
    const std::int64_t m_t = ceil_div(shape.no, rows);
    const std::int64_t n_t = ceil_div(bpx, rows);
    const std::int64_t k_t = ceil_div(chunk, rows);
    return ds * (2 * k_t * (m_t + n_t) + m_t * n_t + n_t);
  }

  if (plan.kind == PlanKind::kPixelGrained) {
    // All Kr*Kc filter tap tiles stay resident; one input tile (plus
    // its regcomm receive buffer and the filter receive buffer) and one
    // output accumulator tile cycle per pixel.
    const std::int64_t ni_t = ceil_div(shape.ni, rows);
    const std::int64_t no_t = ceil_div(shape.no, cols);
    const std::int64_t b_t = ceil_div(shape.batch, rows);
    const std::int64_t taps = shape.kr * shape.kc;
    return ds * (taps * ni_t * no_t + ni_t * no_t + 2 * ni_t * b_t +
                 no_t * b_t);
  }

  auto ceil_div_l = [](std::int64_t a, std::int64_t b) {
    return (a + b - 1) / b;
  };

  // Per-CPE channel shares: bNi/8 input channels per mesh column, No/8
  // output channels per column of the filter distribution.
  const std::int64_t bni =
      plan.block_ni > 0 ? std::min(plan.block_ni, shape.ni) : shape.ni;
  const std::int64_t ni_share = ceil_div_l(bni, rows);
  const std::int64_t no_share = ceil_div_l(shape.no, cols);

  std::int64_t in_tile = 0, w_tile = 0, out_tile = 0;
  if (plan.kind == PlanKind::kImageSizeAware) {
    const std::int64_t b_share = ceil_div_l(plan.block_b, rows);
    // The input tile always carries the Kc-1 column halo: the sliding
    // window of line 6 of Algorithm 1 touches bCo+Kc-1 columns.
    const std::int64_t co_tile = plan.block_co + shape.kc - 1;
    in_tile = co_tile * ni_share * b_share;
    w_tile = ni_share * no_share;  // one (kc, kr) slice
    out_tile = plan.block_co * no_share * b_share;
  } else {  // batch-size-aware
    const std::int64_t b_share = ceil_div_l(shape.batch, rows);
    // One input pixel column of all channels/batches at a time.
    in_tile = ni_share * b_share;
    const std::int64_t w_slices = plan.promote_filter_dma ? shape.kc : 1;
    w_tile = ni_share * no_share * w_slices;
    out_tile = plan.block_co * no_share * b_share;
  }

  // Double buffering applies to the streamed operand tiles (input and
  // filter); the output tile is an accumulator, written back once per
  // step, so it has no second buffer.
  const std::int64_t buffers = plan.double_buffer ? 2 : 1;
  (void)cpes;
  return ds * (buffers * (in_tile + w_tile) + out_tile);
}

bool plan_feasible(const conv::ConvShape& shape, const ConvPlan& plan,
                   const arch::Sw26010Spec& spec) {
  if (plan.kind == PlanKind::kDirect) return true;
  if (plan_kind_is_multigrain(plan.kind)) {
    // The multigrain mappings derive their own tiling from the shape:
    // no bCo/bB knobs, and they contract the full channel depth (bNi
    // blocking would change the summation grouping the mappings pin
    // down for bitwise identity).
    if (plan.block_ni != 0) return false;
    if (plan.kind == PlanKind::kFilterGrained) {
      if (plan.block_px < 0) return false;
      if (filter_grained_k_chunk(shape, plan, spec) <= 0) return false;
    }
  } else {
    if (plan.block_co <= 0 || plan.block_co > shape.co()) return false;
    if (plan.kind == PlanKind::kImageSizeAware) {
      if (plan.block_b <= 0 || plan.block_b > shape.batch) return false;
      if (shape.batch % plan.block_b != 0) return false;
    }
    if (plan.block_ni != 0) {
      if (plan.block_ni <= 0 || plan.block_ni > shape.ni ||
          shape.ni % plan.block_ni != 0) {
        return false;
      }
    }
  }
  if (plan.rb_b <= 0 || plan.rb_no <= 0) return false;
  if (plan.rb_b % 4 != 0) return false;  // rb_b/4 vectors of 4 lanes
  // Register budget: rb_b/4 image vectors + rb_no filter vectors +
  // (rb_b/4)*rb_no accumulators must fit the 32-entry vector file.
  const std::int64_t vregs =
      plan.rb_b / 4 + plan.rb_no + (plan.rb_b / 4) * plan.rb_no;
  if (vregs > 32) return false;
  return ldm_bytes_required(shape, plan, spec) <=
         static_cast<std::int64_t>(spec.ldm_bytes - spec.ldm_reserved_bytes);
}

}  // namespace swdnn::perf
