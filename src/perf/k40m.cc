#include "src/perf/k40m.h"

#include <algorithm>
#include <cstdint>

namespace swdnn::perf {

namespace {

// Base efficiency at cuDNN's DP sweet spot (3x3 filters, channel counts
// matching its GEMM tiles): the paper's "best efficiency on K40m is
// around 40%".
constexpr double kBaseEfficiency = 0.40;

// Penalty for channel counts off cuDNN's DP GEMM tile multiples. The
// lowered matrix dimensions are products of Ni/No with the filter area;
// counts that are not multiples of the 128/64/32 tile edges leave tail
// tiles underfilled.
double channel_alignment(std::int64_t channels) {
  if (channels % 128 == 0) return 1.00;
  if (channels % 64 == 0) return 0.80;
  if (channels % 32 == 0) return 0.80;
  if (channels % 16 == 0) return 0.65;
  return 0.50;
}

// Large filters blow up the im2col working set (Kr*Kc columns per
// pixel) and push cuDNN's DP path off its tuned kernels; in double
// precision there is no Winograd/FFT escape hatch. Linear-denominator
// decay fitted so speedup reaches ~9.75x at 21x21 (Fig. 9).
double filter_size_factor(std::int64_t kr, std::int64_t kc) {
  const double k = static_cast<double>(kr + kc) / 2.0;
  if (k <= 3.0) return 1.0;
  return 1.0 / (1.0 + 0.105 * (k - 3.0));
}

// cuDNN's heuristic kernel selection makes throughput jumpy between
// adjacent configurations ("not like cuDNN, our program is stable under
// different parameter configurations"). Deterministic per-shape jitter
// in [0.85, 1.0].
double selection_jitter(const conv::ConvShape& s) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  for (std::int64_t v : {s.batch, s.ni, s.no, s.ri, s.ci, s.kr, s.kc}) {
    h ^= static_cast<std::uint64_t>(v) + 0x9e3779b97f4a7c15ull + (h << 6) +
         (h >> 2);
  }
  const double unit =
      static_cast<double>(h % 10000) / 10000.0;  // [0, 1)
  return 0.85 + 0.15 * unit;
}

}  // namespace

K40mCudnnModel::K40mCudnnModel(const K40mSpec& spec) : spec_(spec) {}

double K40mCudnnModel::efficiency(const conv::ConvShape& shape) const {
  double eff = kBaseEfficiency;
  eff *= channel_alignment(shape.ni);
  eff *= channel_alignment(shape.no);
  eff *= filter_size_factor(shape.kr, shape.kc);
  eff *= selection_jitter(shape);
  return std::clamp(eff, 0.04, 0.42);
}

double K40mCudnnModel::conv_gflops(const conv::ConvShape& shape) const {
  return efficiency(shape) * spec_.dp_boost_gflops;
}

}  // namespace swdnn::perf
