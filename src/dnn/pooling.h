#pragma once
// Max pooling over [R][C][N][B] activations (the paper's "subsampling
// layer"). Window = stride (non-overlapping); R and C must divide by
// the window.

#include "src/dnn/layer.h"

namespace swdnn::dnn {

class MaxPooling : public Layer {
 public:
  explicit MaxPooling(std::int64_t window = 2);

  std::string name() const override { return "maxpool"; }
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& d_output) override;

  // Compiled path: argmax caches are presized at plan() time; backward
  // reads only the argmax offsets, so the input dies after forward.
  std::vector<std::int64_t> infer_shape(
      const std::vector<std::int64_t>& input_dims) override;
  void plan(const std::vector<std::int64_t>& input_dims) override;
  void forward_view(const tensor::TensorView& input,
                    tensor::TensorView& output) override;
  void backward_view(const tensor::TensorView& d_output,
                     tensor::TensorView& d_input) override;

 private:
  std::int64_t window_;
  tensor::Tensor argmax_r_;  ///< winning row offset per output element
  tensor::Tensor argmax_c_;
  std::vector<std::int64_t> input_dims_;
};

/// Average pooling (the classic LeNet "subsampling"): same window =
/// stride convention as MaxPooling, gradient spread uniformly.
class AvgPooling : public Layer {
 public:
  explicit AvgPooling(std::int64_t window = 2);

  std::string name() const override { return "avgpool"; }
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& d_output) override;

  std::vector<std::int64_t> infer_shape(
      const std::vector<std::int64_t>& input_dims) override;
  void plan(const std::vector<std::int64_t>& input_dims) override;
  void forward_view(const tensor::TensorView& input,
                    tensor::TensorView& output) override;
  void backward_view(const tensor::TensorView& d_output,
                     tensor::TensorView& d_input) override;

 private:
  std::int64_t window_;
  std::vector<std::int64_t> input_dims_;
};

}  // namespace swdnn::dnn
