#pragma once
// Max pooling over [R][C][N][B] activations (the paper's "subsampling
// layer"). Window = stride (non-overlapping); R and C must divide by
// the window.

#include "src/dnn/layer.h"

namespace swdnn::dnn {

class MaxPooling : public Layer {
 public:
  explicit MaxPooling(std::int64_t window = 2);

  std::string name() const override { return "maxpool"; }
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& d_output) override;

 private:
  std::int64_t window_;
  tensor::Tensor argmax_r_;  ///< winning row offset per output element
  tensor::Tensor argmax_c_;
  std::vector<std::int64_t> input_dims_;
};

/// Average pooling (the classic LeNet "subsampling"): same window =
/// stride convention as MaxPooling, gradient spread uniformly.
class AvgPooling : public Layer {
 public:
  explicit AvgPooling(std::int64_t window = 2);

  std::string name() const override { return "avgpool"; }
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& d_output) override;

 private:
  std::int64_t window_;
  std::vector<std::int64_t> input_dims_;
};

}  // namespace swdnn::dnn
