#pragma once
// Inverted dropout with an explicit, owned RNG so training runs are
// reproducible. In train mode each element is zeroed with probability p
// and survivors are scaled by 1/(1-p); in eval mode it is the identity.

#include "src/dnn/layer.h"
#include "src/util/rng.h"

namespace swdnn::dnn {

class Dropout : public Layer {
 public:
  Dropout(double drop_probability, std::uint64_t seed);

  std::string name() const override { return "dropout"; }
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& d_output) override;

  void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }
  void set_mode(bool training) override { training_ = training; }

  // Compiled path: the mask is presized at plan() time and the RNG is
  // consumed exactly as in the eager path (one draw per element in
  // train mode), so compiled and eager runs from equal seeds see the
  // same random stream.
  void plan(const std::vector<std::int64_t>& input_dims) override;
  void forward_view(const tensor::TensorView& input,
                    tensor::TensorView& output) override;
  void backward_view(const tensor::TensorView& d_output,
                     tensor::TensorView& d_input) override;

 private:
  double drop_probability_;
  bool training_ = true;
  util::Rng rng_;
  tensor::Tensor mask_;  ///< 0 or 1/(1-p) per element of the last forward
};

}  // namespace swdnn::dnn
