#include "src/dnn/pooling.h"

#include <stdexcept>

#include "src/runtime/task_pool.h"

namespace swdnn::dnn {

// All pooling loops shard the output-row dimension on the host task
// pool: window rows [r*window, (r+1)*window) are disjoint across output
// rows, so forward writes and backward scatters never collide and the
// results are bitwise-identical to the serial loops at any thread
// count.

MaxPooling::MaxPooling(std::int64_t window) : window_(window) {
  if (window <= 0) throw std::invalid_argument("MaxPooling: window <= 0");
}

tensor::Tensor MaxPooling::forward(const tensor::Tensor& input) {
  if (input.rank() != 4 || input.dim(0) % window_ != 0 ||
      input.dim(1) % window_ != 0) {
    throw std::invalid_argument(
        "MaxPooling: expects [R][C][N][B] with R,C divisible by window");
  }
  input_dims_ = input.dims();
  const std::int64_t r_out = input.dim(0) / window_;
  const std::int64_t c_out = input.dim(1) / window_;
  const std::int64_t n = input.dim(2);
  const std::int64_t b = input.dim(3);
  tensor::Tensor out({r_out, c_out, n, b});
  argmax_r_ = tensor::Tensor({r_out, c_out, n, b});
  argmax_c_ = tensor::Tensor({r_out, c_out, n, b});
  runtime::parallel_for(0, r_out, 1, [&](std::int64_t rb, std::int64_t re) {
  for (std::int64_t r = rb; r < re; ++r)
    for (std::int64_t c = 0; c < c_out; ++c)
      for (std::int64_t ch = 0; ch < n; ++ch)
        for (std::int64_t bb = 0; bb < b; ++bb) {
          double best = input.at(r * window_, c * window_, ch, bb);
          std::int64_t br = 0, bc = 0;
          for (std::int64_t dr = 0; dr < window_; ++dr)
            for (std::int64_t dc = 0; dc < window_; ++dc) {
              const double v =
                  input.at(r * window_ + dr, c * window_ + dc, ch, bb);
              if (v > best) {
                best = v;
                br = dr;
                bc = dc;
              }
            }
          out.at(r, c, ch, bb) = best;
          argmax_r_.at(r, c, ch, bb) = static_cast<double>(br);
          argmax_c_.at(r, c, ch, bb) = static_cast<double>(bc);
        }
  });
  return out;
}

tensor::Tensor MaxPooling::backward(const tensor::Tensor& d_output) {
  if (input_dims_.empty()) {
    throw std::invalid_argument("MaxPooling::backward before forward");
  }
  tensor::Tensor d_input(input_dims_);
  const std::int64_t r_out = d_output.dim(0);
  const std::int64_t c_out = d_output.dim(1);
  const std::int64_t n = d_output.dim(2);
  const std::int64_t b = d_output.dim(3);
  runtime::parallel_for(0, r_out, 1, [&](std::int64_t rb, std::int64_t re) {
  for (std::int64_t r = rb; r < re; ++r)
    for (std::int64_t c = 0; c < c_out; ++c)
      for (std::int64_t ch = 0; ch < n; ++ch)
        for (std::int64_t bb = 0; bb < b; ++bb) {
          const auto dr =
              static_cast<std::int64_t>(argmax_r_.at(r, c, ch, bb));
          const auto dc =
              static_cast<std::int64_t>(argmax_c_.at(r, c, ch, bb));
          d_input.at(r * window_ + dr, c * window_ + dc, ch, bb) +=
              d_output.at(r, c, ch, bb);
        }
  });
  return d_input;
}

std::vector<std::int64_t> MaxPooling::infer_shape(
    const std::vector<std::int64_t>& input_dims) {
  if (input_dims.size() != 4 || input_dims[0] % window_ != 0 ||
      input_dims[1] % window_ != 0) {
    throw std::invalid_argument(
        "MaxPooling: expects [R][C][N][B] with R,C divisible by window");
  }
  return {input_dims[0] / window_, input_dims[1] / window_, input_dims[2],
          input_dims[3]};
}

void MaxPooling::plan(const std::vector<std::int64_t>& input_dims) {
  const std::vector<std::int64_t> out_dims = infer_shape(input_dims);
  input_dims_ = input_dims;
  argmax_r_ = tensor::Tensor(out_dims);
  argmax_c_ = tensor::Tensor(out_dims);
}

void MaxPooling::forward_view(const tensor::TensorView& input,
                              tensor::TensorView& output) {
  const std::int64_t r_out = output.dim(0);
  const std::int64_t c_out = output.dim(1);
  const std::int64_t n = output.dim(2);
  const std::int64_t b = output.dim(3);
  runtime::parallel_for(0, r_out, 1, [&](std::int64_t rb, std::int64_t re) {
  for (std::int64_t r = rb; r < re; ++r)
    for (std::int64_t c = 0; c < c_out; ++c)
      for (std::int64_t ch = 0; ch < n; ++ch)
        for (std::int64_t bb = 0; bb < b; ++bb) {
          double best = input.at(r * window_, c * window_, ch, bb);
          std::int64_t br = 0, bc = 0;
          for (std::int64_t dr = 0; dr < window_; ++dr)
            for (std::int64_t dc = 0; dc < window_; ++dc) {
              const double v =
                  input.at(r * window_ + dr, c * window_ + dc, ch, bb);
              if (v > best) {
                best = v;
                br = dr;
                bc = dc;
              }
            }
          output.at(r, c, ch, bb) = best;
          argmax_r_.at(r, c, ch, bb) = static_cast<double>(br);
          argmax_c_.at(r, c, ch, bb) = static_cast<double>(bc);
        }
  });
}

void MaxPooling::backward_view(const tensor::TensorView& d_output,
                               tensor::TensorView& d_input) {
  d_input.zero();  // the scatter below touches one element per window
  const std::int64_t r_out = d_output.dim(0);
  const std::int64_t c_out = d_output.dim(1);
  const std::int64_t n = d_output.dim(2);
  const std::int64_t b = d_output.dim(3);
  runtime::parallel_for(0, r_out, 1, [&](std::int64_t rb, std::int64_t re) {
  for (std::int64_t r = rb; r < re; ++r)
    for (std::int64_t c = 0; c < c_out; ++c)
      for (std::int64_t ch = 0; ch < n; ++ch)
        for (std::int64_t bb = 0; bb < b; ++bb) {
          const auto dr =
              static_cast<std::int64_t>(argmax_r_.at(r, c, ch, bb));
          const auto dc =
              static_cast<std::int64_t>(argmax_c_.at(r, c, ch, bb));
          d_input.at(r * window_ + dr, c * window_ + dc, ch, bb) +=
              d_output.at(r, c, ch, bb);
        }
  });
}

AvgPooling::AvgPooling(std::int64_t window) : window_(window) {
  if (window <= 0) throw std::invalid_argument("AvgPooling: window <= 0");
}

tensor::Tensor AvgPooling::forward(const tensor::Tensor& input) {
  if (input.rank() != 4 || input.dim(0) % window_ != 0 ||
      input.dim(1) % window_ != 0) {
    throw std::invalid_argument(
        "AvgPooling: expects [R][C][N][B] with R,C divisible by window");
  }
  input_dims_ = input.dims();
  const std::int64_t r_out = input.dim(0) / window_;
  const std::int64_t c_out = input.dim(1) / window_;
  const std::int64_t n = input.dim(2);
  const std::int64_t b = input.dim(3);
  const double inv_area =
      1.0 / static_cast<double>(window_ * window_);
  tensor::Tensor out({r_out, c_out, n, b});
  runtime::parallel_for(0, r_out, 1, [&](std::int64_t rb, std::int64_t re) {
  for (std::int64_t r = rb; r < re; ++r)
    for (std::int64_t c = 0; c < c_out; ++c)
      for (std::int64_t ch = 0; ch < n; ++ch)
        for (std::int64_t bb = 0; bb < b; ++bb) {
          double sum = 0;
          for (std::int64_t dr = 0; dr < window_; ++dr)
            for (std::int64_t dc = 0; dc < window_; ++dc)
              sum += input.at(r * window_ + dr, c * window_ + dc, ch, bb);
          out.at(r, c, ch, bb) = sum * inv_area;
        }
  });
  return out;
}

std::vector<std::int64_t> AvgPooling::infer_shape(
    const std::vector<std::int64_t>& input_dims) {
  if (input_dims.size() != 4 || input_dims[0] % window_ != 0 ||
      input_dims[1] % window_ != 0) {
    throw std::invalid_argument(
        "AvgPooling: expects [R][C][N][B] with R,C divisible by window");
  }
  return {input_dims[0] / window_, input_dims[1] / window_, input_dims[2],
          input_dims[3]};
}

void AvgPooling::plan(const std::vector<std::int64_t>& input_dims) {
  (void)infer_shape(input_dims);  // revalidate
  input_dims_ = input_dims;
}

void AvgPooling::forward_view(const tensor::TensorView& input,
                              tensor::TensorView& output) {
  const double inv_area = 1.0 / static_cast<double>(window_ * window_);
  runtime::parallel_for(
      0, output.dim(0), 1, [&](std::int64_t rb, std::int64_t re) {
  for (std::int64_t r = rb; r < re; ++r)
    for (std::int64_t c = 0; c < output.dim(1); ++c)
      for (std::int64_t ch = 0; ch < output.dim(2); ++ch)
        for (std::int64_t bb = 0; bb < output.dim(3); ++bb) {
          double sum = 0;
          for (std::int64_t dr = 0; dr < window_; ++dr)
            for (std::int64_t dc = 0; dc < window_; ++dc)
              sum += input.at(r * window_ + dr, c * window_ + dc, ch, bb);
          output.at(r, c, ch, bb) = sum * inv_area;
        }
  });
}

void AvgPooling::backward_view(const tensor::TensorView& d_output,
                               tensor::TensorView& d_input) {
  const double inv_area = 1.0 / static_cast<double>(window_ * window_);
  runtime::parallel_for(
      0, d_output.dim(0), 1, [&](std::int64_t rb, std::int64_t re) {
  for (std::int64_t r = rb; r < re; ++r)
    for (std::int64_t c = 0; c < d_output.dim(1); ++c)
      for (std::int64_t ch = 0; ch < d_output.dim(2); ++ch)
        for (std::int64_t bb = 0; bb < d_output.dim(3); ++bb) {
          const double g = d_output.at(r, c, ch, bb) * inv_area;
          for (std::int64_t dr = 0; dr < window_; ++dr)
            for (std::int64_t dc = 0; dc < window_; ++dc)
              d_input.at(r * window_ + dr, c * window_ + dc, ch, bb) = g;
        }
  });
}

tensor::Tensor AvgPooling::backward(const tensor::Tensor& d_output) {
  if (input_dims_.empty()) {
    throw std::invalid_argument("AvgPooling::backward before forward");
  }
  tensor::Tensor d_input(input_dims_);
  const double inv_area = 1.0 / static_cast<double>(window_ * window_);
  runtime::parallel_for(
      0, d_output.dim(0), 1, [&](std::int64_t rb, std::int64_t re) {
  for (std::int64_t r = rb; r < re; ++r)
    for (std::int64_t c = 0; c < d_output.dim(1); ++c)
      for (std::int64_t ch = 0; ch < d_output.dim(2); ++ch)
        for (std::int64_t bb = 0; bb < d_output.dim(3); ++bb) {
          const double g = d_output.at(r, c, ch, bb) * inv_area;
          for (std::int64_t dr = 0; dr < window_; ++dr)
            for (std::int64_t dc = 0; dc < window_; ++dc)
              d_input.at(r * window_ + dr, c * window_ + dc, ch, bb) = g;
        }
  });
  return d_input;
}

}  // namespace swdnn::dnn
