#include "src/dnn/sgd.h"

namespace swdnn::dnn {

Sgd::Sgd(double learning_rate, double momentum)
    : learning_rate_(learning_rate), momentum_(momentum) {}

tensor::Tensor& Sgd::velocity_for(tensor::Tensor* param) {
  for (auto& [key, vel] : velocity_) {
    if (key == param) return vel;
  }
  velocity_.emplace_back(param, tensor::Tensor(param->dims()));
  return velocity_.back().second;
}

void Sgd::step(const std::vector<ParamGrad>& params) {
  for (const auto& pg : params) {
    auto p = pg.param->data();
    auto g = pg.grad->data();
    if (momentum_ == 0.0) {
      for (std::size_t i = 0; i < p.size(); ++i) {
        p[i] -= learning_rate_ * g[i];
      }
    } else {
      auto v = velocity_for(pg.param).data();
      for (std::size_t i = 0; i < p.size(); ++i) {
        v[i] = momentum_ * v[i] - learning_rate_ * g[i];
        p[i] += v[i];
      }
    }
  }
}

void Sgd::copy_state_from(const Sgd& other,
                          const std::vector<ParamGrad>& params,
                          const std::vector<ParamGrad>& other_params) {
  velocity_.clear();
  for (std::size_t i = 0; i < params.size() && i < other_params.size();
       ++i) {
    for (const auto& [key, vel] : other.velocity_) {
      if (key == other_params[i].param) {
        velocity_.emplace_back(params[i].param, vel);
        break;
      }
    }
  }
}

}  // namespace swdnn::dnn
