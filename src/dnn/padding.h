#pragma once
// Zero padding for [R][C][N][B] activations. swDNN's convolutions are
// valid-only (the paper's configuration space); real networks keep
// spatial size with 'same' padding — composed here as an explicit layer
// in front of the convolution, so the kernels stay exactly the paper's.

#include "src/dnn/layer.h"

namespace swdnn::dnn {

class ZeroPad2d : public Layer {
 public:
  /// Pads `top/bottom` rows and `left/right` columns of zeros.
  ZeroPad2d(std::int64_t top, std::int64_t bottom, std::int64_t left,
            std::int64_t right);

  /// Symmetric padding on both axes ("same" for odd filters: k/2).
  explicit ZeroPad2d(std::int64_t all)
      : ZeroPad2d(all, all, all, all) {}

  std::string name() const override { return "zeropad"; }
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& d_output) override;
  std::vector<std::int64_t> infer_shape(
      const std::vector<std::int64_t>& input_dims) override;

 private:
  std::int64_t top_, bottom_, left_, right_;
  std::vector<std::int64_t> input_dims_;
};

}  // namespace swdnn::dnn
