#pragma once
// Zero padding for [R][C][N][B] activations. swDNN's convolutions are
// valid-only (the paper's configuration space); real networks keep
// spatial size with 'same' padding — composed here as an explicit layer
// in front of the convolution, so the kernels stay exactly the paper's.

#include "src/dnn/layer.h"

namespace swdnn::dnn {

class ZeroPad2d : public Layer {
 public:
  /// Pads `top/bottom` rows and `left/right` columns of zeros.
  ZeroPad2d(std::int64_t top, std::int64_t bottom, std::int64_t left,
            std::int64_t right);

  /// Symmetric padding on both axes ("same" for odd filters: k/2).
  explicit ZeroPad2d(std::int64_t all)
      : ZeroPad2d(all, all, all, all) {}

  std::string name() const override { return "zeropad"; }
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& d_output) override;
  std::vector<std::int64_t> infer_shape(
      const std::vector<std::int64_t>& input_dims) override;

  // Compiled path: allocation-free views (zero-fill + interior scatter
  // forward, interior gather backward).
  void forward_view(const tensor::TensorView& input,
                    tensor::TensorView& output) override;
  void backward_view(const tensor::TensorView& d_output,
                     tensor::TensorView& d_input) override;

  // Elision: the graph compiler pins this layer's output slot for the
  // whole step and zeroes it once at compile, so the per-step pass
  // writes only the interior — the border zero-fill is paid exactly
  // once per compile instead of once per batch.
  bool is_elidable_pad() const override { return true; }
  void forward_view_elided(const tensor::TensorView& input,
                           tensor::TensorView& output) override;

 private:
  /// Interior scatter input -> output[top_+r][left_+c][n][b].
  static void copy_interior(const tensor::TensorView& input,
                            tensor::TensorView& output, std::int64_t top,
                            std::int64_t left);

  std::int64_t top_, bottom_, left_, right_;
  std::vector<std::int64_t> input_dims_;
};

}  // namespace swdnn::dnn
