#include "src/dnn/loss.h"

#include <cmath>
#include <stdexcept>

#include "src/dnn/softmax.h"

namespace swdnn::dnn {

LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                 const std::vector<int>& labels) {
  if (logits.rank() != 2 ||
      logits.dim(1) != static_cast<std::int64_t>(labels.size())) {
    throw std::invalid_argument(
        "softmax_cross_entropy: logits [classes][B] with B labels");
  }
  const std::int64_t classes = logits.dim(0);
  const std::int64_t batch = logits.dim(1);
  tensor::Tensor probs = softmax_columns(logits);

  LossResult result;
  result.d_logits = tensor::Tensor({classes, batch});
  for (std::int64_t b = 0; b < batch; ++b) {
    const int label = labels[static_cast<std::size_t>(b)];
    if (label < 0 || label >= classes) {
      throw std::invalid_argument("softmax_cross_entropy: label out of range");
    }
    result.loss += -std::log(std::max(probs.at(label, b), 1e-300));
    std::int64_t argmax = 0;
    for (std::int64_t c = 1; c < classes; ++c) {
      if (probs.at(c, b) > probs.at(argmax, b)) argmax = c;
    }
    if (argmax == label) ++result.correct;
    for (std::int64_t c = 0; c < classes; ++c) {
      const double onehot = (c == label) ? 1.0 : 0.0;
      result.d_logits.at(c, b) =
          (probs.at(c, b) - onehot) / static_cast<double>(batch);
    }
  }
  result.loss /= static_cast<double>(batch);
  return result;
}

LossResult mean_squared_error(const tensor::Tensor& prediction,
                              const tensor::Tensor& target) {
  if (prediction.dims() != target.dims()) {
    throw std::invalid_argument("mean_squared_error: shape mismatch");
  }
  LossResult result;
  result.d_logits = tensor::Tensor(prediction.dims());
  const auto p = prediction.data();
  const auto t = target.data();
  auto g = result.d_logits.data();
  const double n = static_cast<double>(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double diff = p[i] - t[i];
    result.loss += diff * diff / n;
    g[i] = 2.0 * diff / n;
  }
  return result;
}

}  // namespace swdnn::dnn
