#include "src/dnn/loss.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "src/dnn/softmax.h"
#include "src/runtime/task_pool.h"

namespace swdnn::dnn {

LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                 const std::vector<int>& labels) {
  if (logits.rank() != 2 ||
      logits.dim(1) != static_cast<std::int64_t>(labels.size())) {
    throw std::invalid_argument(
        "softmax_cross_entropy: logits [classes][B] with B labels");
  }
  const std::int64_t classes = logits.dim(0);
  const std::int64_t batch = logits.dim(1);
  tensor::Tensor probs = softmax_columns(logits);

  LossResult result;
  result.d_logits = tensor::Tensor({classes, batch});
  // Per-column work (argmax, gradient, the column's loss term) shards
  // freely — each column writes its own slot. The scalar loss is then
  // reduced serially in ascending-b order, the exact order the old
  // single loop used, so the sum is bitwise-stable across thread counts.
  std::vector<double> loss_terms(static_cast<std::size_t>(batch), 0.0);
  std::vector<unsigned char> hit(static_cast<std::size_t>(batch), 0);
  runtime::parallel_for(0, batch, 16, [&](std::int64_t b0, std::int64_t b1) {
    for (std::int64_t b = b0; b < b1; ++b) {
      const int label = labels[static_cast<std::size_t>(b)];
      if (label < 0 || label >= classes) {
        throw std::invalid_argument(
            "softmax_cross_entropy: label out of range");
      }
      loss_terms[static_cast<std::size_t>(b)] =
          -std::log(std::max(probs.at(label, b), 1e-300));
      std::int64_t argmax = 0;
      for (std::int64_t c = 1; c < classes; ++c) {
        if (probs.at(c, b) > probs.at(argmax, b)) argmax = c;
      }
      hit[static_cast<std::size_t>(b)] = (argmax == label) ? 1 : 0;
      for (std::int64_t c = 0; c < classes; ++c) {
        const double onehot = (c == label) ? 1.0 : 0.0;
        result.d_logits.at(c, b) =
            (probs.at(c, b) - onehot) / static_cast<double>(batch);
      }
    }
  });
  for (std::int64_t b = 0; b < batch; ++b) {
    result.loss += loss_terms[static_cast<std::size_t>(b)];
    if (hit[static_cast<std::size_t>(b)]) ++result.correct;
  }
  result.loss /= static_cast<double>(batch);
  return result;
}

LossResult mean_squared_error(const tensor::Tensor& prediction,
                              const tensor::Tensor& target) {
  if (prediction.dims() != target.dims()) {
    throw std::invalid_argument("mean_squared_error: shape mismatch");
  }
  LossResult result;
  result.d_logits = tensor::Tensor(prediction.dims());
  const auto p = prediction.data();
  const auto t = target.data();
  auto g = result.d_logits.data();
  const double n = static_cast<double>(p.size());
  runtime::parallel_for(
      0, static_cast<std::int64_t>(p.size()), 4096,
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          const auto s = static_cast<std::size_t>(i);
          g[s] = 2.0 * (p[s] - t[s]) / n;
        }
      });
  // The loss sum keeps the original ascending-i accumulation order.
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double diff = p[i] - t[i];
    result.loss += diff * diff / n;
  }
  return result;
}

}  // namespace swdnn::dnn
