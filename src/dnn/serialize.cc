#include "src/dnn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace swdnn::dnn {

namespace {
constexpr char kMagic[4] = {'S', 'W', 'D', 'N'};
constexpr std::uint32_t kVersion = 1;

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

void write_i64(std::ostream& out, std::int64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::int64_t read_i64(std::istream& in) {
  std::int64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}
}  // namespace

void save_parameters(Network& network, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("save_parameters: cannot open " + path);

  const auto params = network.params();
  out.write(kMagic, sizeof(kMagic));
  write_u32(out, kVersion);
  write_u32(out, static_cast<std::uint32_t>(params.size()));
  for (const auto& pg : params) {
    write_u32(out, static_cast<std::uint32_t>(pg.param->rank()));
    for (std::int64_t d : pg.param->dims()) write_i64(out, d);
    const auto data = pg.param->data();
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size_bytes()));
  }
  if (!out) throw std::runtime_error("save_parameters: write failed");
}

void load_parameters(Network& network, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_parameters: cannot open " + path);

  char magic[4] = {};
  in.read(magic, sizeof(magic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("load_parameters: bad magic in " + path);
  }
  const std::uint32_t version = read_u32(in);
  if (version != kVersion) {
    throw std::runtime_error("load_parameters: unsupported version " +
                             std::to_string(version));
  }
  auto params = network.params();
  const std::uint32_t count = read_u32(in);
  if (count != params.size()) {
    throw std::runtime_error(
        "load_parameters: parameter count mismatch (file " +
        std::to_string(count) + ", network " +
        std::to_string(params.size()) + ")");
  }
  for (auto& pg : params) {
    const std::uint32_t rank = read_u32(in);
    if (rank != static_cast<std::uint32_t>(pg.param->rank())) {
      throw std::runtime_error("load_parameters: rank mismatch");
    }
    for (std::int64_t expected : pg.param->dims()) {
      if (read_i64(in) != expected) {
        throw std::runtime_error("load_parameters: shape mismatch");
      }
    }
    auto data = pg.param->data();
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size_bytes()));
  }
  if (!in) throw std::runtime_error("load_parameters: truncated file");
}

}  // namespace swdnn::dnn
