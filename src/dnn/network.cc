#include "src/dnn/network.h"

#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "src/dnn/backend_context.h"
#include "src/sim/trace.h"

namespace swdnn::dnn {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Network::Network() = default;
Network::~Network() = default;
// Moves are safe even when compiled: the arena's buffer and the owned
// context keep their addresses, so views and the raw context_ pointer
// stay valid.
Network::Network(Network&&) noexcept = default;
Network& Network::operator=(Network&&) noexcept = default;

Layer& Network::add(LayerPtr layer) {
  uncompile();  // the graph no longer matches the layer list
  layers_.push_back(std::move(layer));
  return *layers_.back();
}

std::vector<LayerPtr> Network::release_layers() {
  uncompile();
  return std::move(layers_);
}

const CompiledStats& Network::compile(
    const std::vector<std::int64_t>& input_dims,
    const CompileOptions& options) {
  if (layers_.empty()) {
    throw std::logic_error("Network::compile: no layers");
  }
  uncompile();

  // 1. Shape inference: every activation's dims, input first. A bad
  // stack (mismatched features, non-divisible pooling) fails here,
  // before any math runs.
  std::vector<std::vector<std::int64_t>> dims;
  dims.reserve(layers_.size() + 1);
  dims.push_back(input_dims);
  for (auto& layer : layers_) {
    dims.push_back(layer->infer_shape(dims.back()));
  }

  // 2. One backend context for every heavy layer: shared if the caller
  // provides one (data-parallel replicas), else owned. Autotuning is
  // configured before any plan() so the warm-ups tune as they warm.
  if (options.context != nullptr) {
    context_ = options.context;
  } else {
    owned_context_ = std::make_unique<BackendContext>(options.spec);
    context_ = owned_context_.get();
  }
  tracer_ = options.tracer;
  if (tracer_ != nullptr) context_->set_event_tracer(tracer_);
  context_->set_autotune(options.autotune);
  for (auto& layer : layers_) layer->bind(context_);
  for (std::size_t i = 0; i < layers_.size(); ++i) layers_[i]->plan(dims[i]);

  // 3. Graph lowering and passes. Fusion collapses conv/FC +
  // activation pairs into single nodes (their interior activation value
  // vanishes from the graph); elision marks zero-pads whose output slot
  // stays pinned so only the interior is written per step.
  graph_.build(layers_);
  graph_.run_passes(layers_, tracer_, options.fuse);
  const auto& nodes = graph_.nodes();
  const int N = static_cast<int>(nodes.size());

  // 4. Node-based liveness. The timeline is t = 0..2N-1: forward of
  // node i at t = i, backward of node i at t = 2N-1-i. The value node i
  // consumes is produced at t = i-1 (the network input at t = 0) and
  // read by node i's forward; it must survive to node i's *backward*
  // only when the node's producer layer re-reads its input there
  // (conv/FC). Nodes that cache internally (relu mask, pool argmax,
  // softmax output) let their input die right after forward — that
  // early death is where the arena's reuse comes from. An elided pad's
  // output is pinned over the whole step ([0, 2N-1]) so its borders,
  // zeroed once below, are never scribbled on by slot reuse. The
  // gradient of node i's input is written at t = 2N-1-i and read at
  // t = 2N-i (the next backward step, or the caller's copy-out).
  constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
  const std::size_t num_values = layers_.size() + 1;
  std::vector<std::size_t> act_slot(num_values, kNoSlot);
  std::vector<std::size_t> grad_slot(num_values, kNoSlot);
  for (int i = 0; i < N; ++i) {
    const GraphNode& node = nodes[static_cast<std::size_t>(i)];
    const std::size_t v = node.input_value;
    int begin = i == 0 ? 0 : i - 1;
    int end = layers_[node.first_layer]->backward_needs_input() ? 2 * N - 1 - i
                                                                : i;
    if (i > 0 &&
        nodes[static_cast<std::size_t>(i - 1)].kind == NodeKind::kElidedPad) {
      begin = 0;
      end = 2 * N - 1;
    }
    act_slot[v] = arena_.request(dims[v], begin, end);
    grad_slot[v] = arena_.request(dims[v], 2 * N - 1 - i, 2 * N - i);
  }
  {
    const GraphNode& last = nodes.back();
    const std::size_t v = last.output_value;
    int begin = N - 1;
    int end = N - 1;
    if (last.kind == NodeKind::kElidedPad) {
      begin = 0;
      end = 2 * N - 1;
    }
    act_slot[v] = arena_.request(dims[v], begin, end);
    grad_slot[v] = arena_.request(dims[v], N - 1, N);
  }
  arena_.plan();  // packs, allocates, and alias-checks

  act_views_.assign(num_values, tensor::TensorView{});
  grad_views_.assign(num_values, tensor::TensorView{});
  for (std::size_t v = 0; v < num_values; ++v) {
    if (act_slot[v] != kNoSlot) act_views_[v] = arena_.view(act_slot[v]);
    if (grad_slot[v] != kNoSlot) grad_views_[v] = arena_.view(grad_slot[v]);
  }
  // One-time border zero for elided pads: their pinned slots start all
  // zero and each step rewrites only the interior.
  for (const GraphNode& node : nodes) {
    if (node.kind == NodeKind::kElidedPad) {
      act_views_[node.output_value].zero();
    }
  }

  forward_result_ = tensor::Tensor(dims.back());
  backward_result_ = tensor::Tensor(dims.front());

  stats_ = CompiledStats{};
  stats_.arena_peak_bytes = arena_.peak_bytes();
  stats_.arena_naive_bytes = arena_.naive_bytes();
  stats_.arena_slots = arena_.num_slots();
  stats_.arena_allocations = arena_.allocations();
  stats_.activation_dims = std::move(dims);
  stats_.graph_nodes = nodes.size();
  stats_.fused_conv_act = graph_.stats().fused_conv_act;
  stats_.fused_fc_act = graph_.stats().fused_fc_act;
  stats_.elided_pads = graph_.stats().elided_pads;
  stats_.autotuned_shapes = context_->autotuned_shapes();
  compiled_ = true;
  return stats_;
}

void Network::uncompile() {
  compiled_ = false;
  graph_.clear();
  arena_.reset();
  act_views_.clear();
  grad_views_.clear();
  stats_ = CompiledStats{};
  context_ = nullptr;
  owned_context_.reset();
  tracer_ = nullptr;
}

const tensor::Tensor& Network::forward(const tensor::Tensor& input) {
  if (compiled_ && !run_eager_) return forward_compiled(input);
  tensor::Tensor activation = input;
  for (auto& layer : layers_) {
    activation = layer->forward(activation);
  }
  forward_result_ = std::move(activation);
  return forward_result_;
}

const tensor::Tensor& Network::backward(const tensor::Tensor& d_output) {
  if (compiled_ && !run_eager_) return backward_compiled(d_output);
  tensor::Tensor grad = d_output;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    grad = layers_[i]->backward(grad);
    if (backward_hook_) backward_hook_(i, i);
  }
  backward_result_ = std::move(grad);
  return backward_result_;
}

const tensor::Tensor& Network::forward_compiled(const tensor::Tensor& input) {
  if (input.dims() != stats_.activation_dims.front()) {
    throw std::invalid_argument(
        "Network::forward: input dims do not match the compiled shape " +
        input.shape_string());
  }
  const auto& nodes = graph_.nodes();
  act_views_.front().copy_from(input);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const GraphNode& node = nodes[i];
    tensor::TensorView& in = act_views_[node.input_value];
    tensor::TensorView& out = act_views_[node.output_value];
    const std::uint64_t begin = now_ns();
    switch (node.kind) {
      case NodeKind::kSingle:
        layers_[node.first_layer]->forward_view(in, out);
        break;
      case NodeKind::kFusedConvAct:
      case NodeKind::kFusedFcAct:
        layers_[node.first_layer]->forward_view_fused(
            in, out, *layers_[node.last_layer]);
        break;
      case NodeKind::kElidedPad:
        layers_[node.first_layer]->forward_view_elided(in, out);
        break;
    }
    trace_node(i, "fwd", in.size() * 8, out.size() * 8, begin, now_ns());
  }
  act_views_[nodes.back().output_value].copy_to(forward_result_);
  return forward_result_;
}

const tensor::Tensor& Network::backward_compiled(
    const tensor::Tensor& d_output) {
  if (d_output.dims() != stats_.activation_dims.back()) {
    throw std::invalid_argument(
        "Network::backward: gradient dims do not match the compiled shape " +
        d_output.shape_string());
  }
  const auto& nodes = graph_.nodes();
  grad_views_[nodes.back().output_value].copy_from(d_output);
  for (std::size_t i = nodes.size(); i-- > 0;) {
    const GraphNode& node = nodes[i];
    tensor::TensorView& d_out = grad_views_[node.output_value];
    tensor::TensorView& d_in = grad_views_[node.input_value];
    const std::uint64_t begin = now_ns();
    switch (node.kind) {
      case NodeKind::kFusedConvAct:
      case NodeKind::kFusedFcAct:
        // d_out is clobbered in place by the epilogue's backward; that
        // gradient value is dead once this node returns.
        layers_[node.first_layer]->backward_view_fused(
            d_out, d_in, *layers_[node.last_layer]);
        break;
      case NodeKind::kSingle:
      case NodeKind::kElidedPad:
        layers_[node.first_layer]->backward_view(d_out, d_in);
        break;
    }
    trace_node(i, "bwd", d_out.size() * 8, d_in.size() * 8, begin, now_ns());
    if (backward_hook_) backward_hook_(node.first_layer, node.last_layer);
  }
  grad_views_.front().copy_to(backward_result_);
  return backward_result_;
}

void Network::trace_node(std::size_t node_index, const char* phase,
                         std::int64_t bytes_in, std::int64_t bytes_out,
                         std::uint64_t begin_ns, std::uint64_t end_ns) {
  if (tracer_ == nullptr) return;
  char name[160];
  std::snprintf(name, sizeof(name), "%s %s in=%lldB out=%lldB",
                graph_.nodes()[node_index].name.c_str(), phase,
                static_cast<long long>(bytes_in),
                static_cast<long long>(bytes_out));
  tracer_->record(/*cpe=*/0, "layer", name, begin_ns, end_ns);
}

void Network::set_training(bool training) {
  training_ = training;
  for (auto& layer : layers_) layer->set_mode(training);
}

std::vector<ParamGrad> Network::params() {
  std::vector<ParamGrad> all;
  for (auto& layer : layers_) {
    for (auto& p : layer->params()) all.push_back(p);
  }
  return all;
}

}  // namespace swdnn::dnn
