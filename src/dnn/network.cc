#include "src/dnn/network.h"

namespace swdnn::dnn {

Layer& Network::add(LayerPtr layer) {
  layers_.push_back(std::move(layer));
  return *layers_.back();
}

tensor::Tensor Network::forward(const tensor::Tensor& input) {
  tensor::Tensor activation = input;
  for (auto& layer : layers_) {
    activation = layer->forward(activation);
  }
  return activation;
}

tensor::Tensor Network::backward(const tensor::Tensor& d_output) {
  tensor::Tensor grad = d_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad = (*it)->backward(grad);
  }
  return grad;
}

void Network::set_training(bool training) {
  for (auto& layer : layers_) layer->set_mode(training);
}

std::vector<ParamGrad> Network::params() {
  std::vector<ParamGrad> all;
  for (auto& layer : layers_) {
    for (auto& p : layer->params()) all.push_back(p);
  }
  return all;
}

}  // namespace swdnn::dnn
