#include "src/dnn/network.h"

#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "src/dnn/backend_context.h"
#include "src/sim/trace.h"

namespace swdnn::dnn {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Network::Network() = default;
Network::~Network() = default;
// Moves are safe even when compiled: the arena's buffer and the owned
// context keep their addresses, so views and the raw context_ pointer
// stay valid.
Network::Network(Network&&) noexcept = default;
Network& Network::operator=(Network&&) noexcept = default;

Layer& Network::add(LayerPtr layer) {
  uncompile();  // the graph no longer matches the layer list
  layers_.push_back(std::move(layer));
  return *layers_.back();
}

const CompiledStats& Network::compile(
    const std::vector<std::int64_t>& input_dims,
    const CompileOptions& options) {
  if (layers_.empty()) {
    throw std::logic_error("Network::compile: no layers");
  }
  uncompile();

  // 1. Shape inference: every activation's dims, input first. A bad
  // stack (mismatched features, non-divisible pooling) fails here,
  // before any math runs.
  std::vector<std::vector<std::int64_t>> dims;
  dims.reserve(layers_.size() + 1);
  dims.push_back(input_dims);
  for (auto& layer : layers_) {
    dims.push_back(layer->infer_shape(dims.back()));
  }

  // 2. One backend context for every heavy layer: shared if the caller
  // provides one (data-parallel replicas), else owned.
  if (options.context != nullptr) {
    context_ = options.context;
  } else {
    owned_context_ = std::make_unique<BackendContext>(options.spec);
    context_ = owned_context_.get();
  }
  tracer_ = options.tracer;
  if (tracer_ != nullptr) context_->set_event_tracer(tracer_);
  for (auto& layer : layers_) layer->bind(context_);
  for (std::size_t i = 0; i < layers_.size(); ++i) layers_[i]->plan(dims[i]);

  // 3. Liveness. The timeline is t = 0..2L-1: forward of layer i at
  // t = i, backward of layer i at t = 2L-1-i. Activation i (input of
  // layer i, output of layer i-1) is produced at t = i-1 (the network
  // input at t = 0) and read by layer i's forward; it must survive to
  // layer i's *backward* only when that layer re-reads its input there
  // (conv/FC). Layers that cache internally (relu mask, pool argmax,
  // softmax output) let their input die right after forward — that
  // early death is where the arena's reuse comes from. Gradient j is
  // written by layer j's backward at t = 2L-1-j and read at t = 2L-j
  // (the next backward step, or the caller's copy-out for j = 0).
  const int L = static_cast<int>(layers_.size());
  act_slots_.clear();
  grad_slots_.clear();
  for (int i = 0; i <= L; ++i) {
    const int begin = i == 0 ? 0 : i - 1;
    const int end =
        i == L ? L - 1
               : (layers_[static_cast<std::size_t>(i)]->backward_needs_input()
                      ? 2 * L - 1 - i
                      : i);
    act_slots_.push_back(
        arena_.request(dims[static_cast<std::size_t>(i)], begin, end));
  }
  for (int j = 0; j <= L; ++j) {
    grad_slots_.push_back(arena_.request(dims[static_cast<std::size_t>(j)],
                                         2 * L - 1 - j, 2 * L - j));
  }
  arena_.plan();  // packs, allocates, and alias-checks

  act_views_.clear();
  grad_views_.clear();
  for (std::size_t i = 0; i <= static_cast<std::size_t>(L); ++i) {
    act_views_.push_back(arena_.view(act_slots_[i]));
    grad_views_.push_back(arena_.view(grad_slots_[i]));
  }

  stats_ = CompiledStats{};
  stats_.arena_peak_bytes = arena_.peak_bytes();
  stats_.arena_naive_bytes = arena_.naive_bytes();
  stats_.arena_slots = arena_.num_slots();
  stats_.arena_allocations = arena_.allocations();
  stats_.activation_dims = std::move(dims);
  compiled_ = true;
  return stats_;
}

void Network::uncompile() {
  compiled_ = false;
  arena_.reset();
  act_slots_.clear();
  grad_slots_.clear();
  act_views_.clear();
  grad_views_.clear();
  stats_ = CompiledStats{};
  context_ = nullptr;
  owned_context_.reset();
  tracer_ = nullptr;
}

tensor::Tensor Network::forward(const tensor::Tensor& input) {
  if (compiled_ && !run_eager_) return forward_compiled(input);
  tensor::Tensor activation = input;
  for (auto& layer : layers_) {
    activation = layer->forward(activation);
  }
  return activation;
}

tensor::Tensor Network::backward(const tensor::Tensor& d_output) {
  if (compiled_ && !run_eager_) return backward_compiled(d_output);
  tensor::Tensor grad = d_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad = (*it)->backward(grad);
  }
  return grad;
}

tensor::Tensor Network::forward_compiled(const tensor::Tensor& input) {
  if (input.dims() != stats_.activation_dims.front()) {
    throw std::invalid_argument(
        "Network::forward: input dims do not match the compiled shape " +
        input.shape_string());
  }
  act_views_.front().copy_from(input);
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const std::uint64_t begin = now_ns();
    layers_[i]->forward_view(act_views_[i], act_views_[i + 1]);
    trace_layer(i, "fwd", act_views_[i].size() * 8,
                act_views_[i + 1].size() * 8, begin, now_ns());
  }
  return act_views_.back().to_tensor();
}

tensor::Tensor Network::backward_compiled(const tensor::Tensor& d_output) {
  if (d_output.dims() != stats_.activation_dims.back()) {
    throw std::invalid_argument(
        "Network::backward: gradient dims do not match the compiled shape " +
        d_output.shape_string());
  }
  grad_views_.back().copy_from(d_output);
  for (std::size_t i = layers_.size(); i-- > 0;) {
    const std::uint64_t begin = now_ns();
    layers_[i]->backward_view(grad_views_[i + 1], grad_views_[i]);
    trace_layer(i, "bwd", grad_views_[i + 1].size() * 8,
                grad_views_[i].size() * 8, begin, now_ns());
  }
  return grad_views_.front().to_tensor();
}

void Network::trace_layer(std::size_t layer_index, const char* phase,
                          std::int64_t bytes_in, std::int64_t bytes_out,
                          std::uint64_t begin_ns, std::uint64_t end_ns) {
  if (tracer_ == nullptr) return;
  char name[128];
  std::snprintf(name, sizeof(name), "%s#%zu %s in=%lldB out=%lldB",
                layers_[layer_index]->name().c_str(), layer_index, phase,
                static_cast<long long>(bytes_in),
                static_cast<long long>(bytes_out));
  tracer_->record(/*cpe=*/0, "layer", name, begin_ns, end_ns);
}

void Network::set_training(bool training) {
  training_ = training;
  for (auto& layer : layers_) layer->set_mode(training);
}

std::vector<ParamGrad> Network::params() {
  std::vector<ParamGrad> all;
  for (auto& layer : layers_) {
    for (auto& p : layer->params()) all.push_back(p);
  }
  return all;
}

}  // namespace swdnn::dnn
