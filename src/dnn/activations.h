#pragma once
// Elementwise activations beyond ReLU: tanh and the logistic sigmoid —
// the classic CNN-era nonlinearities (LeNet used tanh; sigmoid heads
// predate softmax classifiers).

#include "src/dnn/layer.h"

namespace swdnn::dnn {

class Tanh : public Layer {
 public:
  std::string name() const override { return "tanh"; }
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& d_output) override;

 private:
  tensor::Tensor cached_output_;
};

class Sigmoid : public Layer {
 public:
  std::string name() const override { return "sigmoid"; }
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& d_output) override;

 private:
  tensor::Tensor cached_output_;
};

}  // namespace swdnn::dnn
