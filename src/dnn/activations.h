#pragma once
// Elementwise activations beyond ReLU: tanh and the logistic sigmoid —
// the classic CNN-era nonlinearities (LeNet used tanh; sigmoid heads
// predate softmax classifiers).
//
// Both cache the activation output (their backward needs only y), are
// allocation-free on the compiled path once plan() has presized that
// cache, and can ride a conv/FC node as a fused epilogue: the producer
// computes the linear output in place and calls
// epilogue_forward_inplace, which applies the nonlinearity with exactly
// the arithmetic the unfused layer performs — fused output is
// bitwise-identical.

#include "src/dnn/layer.h"

namespace swdnn::dnn {

class Tanh : public Layer {
 public:
  std::string name() const override { return "tanh"; }
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& d_output) override;

  void plan(const std::vector<std::int64_t>& input_dims) override;
  void forward_view(const tensor::TensorView& input,
                    tensor::TensorView& output) override;
  void backward_view(const tensor::TensorView& d_output,
                     tensor::TensorView& d_input) override;

  bool is_fusible_epilogue() const override { return true; }
  void epilogue_forward_inplace(tensor::TensorView& y) override;
  void epilogue_backward_inplace(tensor::TensorView& d) override;

 private:
  tensor::Tensor cached_output_;
};

class Sigmoid : public Layer {
 public:
  std::string name() const override { return "sigmoid"; }
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& d_output) override;

  void plan(const std::vector<std::int64_t>& input_dims) override;
  void forward_view(const tensor::TensorView& input,
                    tensor::TensorView& output) override;
  void backward_view(const tensor::TensorView& d_output,
                     tensor::TensorView& d_input) override;

  bool is_fusible_epilogue() const override { return true; }
  void epilogue_forward_inplace(tensor::TensorView& y) override;
  void epilogue_backward_inplace(tensor::TensorView& d) override;

 private:
  tensor::Tensor cached_output_;
};

}  // namespace swdnn::dnn
