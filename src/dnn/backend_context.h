#pragma once
// Shared backend context for compiled networks.
//
// One BackendContext wraps one swdnn::api Handle and is shared by every
// conv/FC layer of a compiled Network (and across replicas of a
// DataParallelTrainer): all heavy ops funnel through a single plan
// cache, fault-retry/host-GEMM ladder, and event tracer, exactly the
// way a framework integration would hold one library handle per
// process. Fully-connected layers ride the same funnel by expressing
// themselves as 1x1 convolutions (fc_shape), so the API boundary is the
// only dispatch point in the compiled path.
//
// Threading: the conv_* execution wrappers inherit the Handle contract —
// N threads may call them concurrently on one context (the per-call
// mutable state inside the handle is internally guarded). The
// configuration calls (set_event_tracer, set_fault_plan,
// set_retry_policy) must not race with in-flight execution: configure
// first, then dispatch. DataParallelTrainer steps its replicas
// concurrently on the host task pool, which the execution wrappers'
// concurrent-call guarantee covers; its configuration still happens
// between steps, outside any dispatch.
//
// Error policy: a non-success API status becomes a thrown BackendError
// carrying the status and the handle's diagnostic. Recorded
// degradations (host-GEMM fallback, ranked-plan fallback) are
// kSuccess at the API boundary and therefore do NOT throw — they are
// visible via fault_counters()/last_execution_route(). The throw
// composes with Trainer::train_step_resilient, whose checkpoint
// rollback is the layer above this ladder's last rung.

#include <cstdint>
#include <stdexcept>
#include <string>

#include "src/api/swdnn_api.h"
#include "src/conv/shape.h"

namespace swdnn::dnn {

class BackendError : public std::runtime_error {
 public:
  BackendError(api::Status status, const std::string& message)
      : std::runtime_error(message), status_(status) {}
  api::Status status() const { return status_; }

 private:
  api::Status status_;
};

class BackendContext {
 public:
  /// nullptr = the real SW26010 spec; tests pass reduced meshes.
  explicit BackendContext(const arch::Sw26010Spec* spec = nullptr);
  ~BackendContext();
  BackendContext(const BackendContext&) = delete;
  BackendContext& operator=(const BackendContext&) = delete;

  api::Handle* handle() { return handle_; }

  /// A fully-connected layer as the API sees it: a 1x1 valid
  /// convolution over [1][1][in_features][batch] activations with a
  /// [1][1][in_features][out_features] filter. The row-major flatten
  /// of [R][C][N][B] to [R*C*N][B] is a reinterpretation, not a copy.
  static conv::ConvShape fc_shape(std::int64_t in_features,
                                  std::int64_t out_features,
                                  std::int64_t batch);

  /// Compile-time plan warm-up (counter-neutral at the plan cache).
  void warm_conv_plan(const conv::ConvShape& shape);

  // Execution wrappers. Buffers are canonical row-major and must hold
  // exactly the shape's element counts; stride must be 1 (the API's
  // configuration space). Throws BackendError on a non-success status.
  void conv_forward(const conv::ConvShape& shape, const double* x,
                    const double* w, double* y);
  /// Forward plus a fused epilogue applied inside the API call while the
  /// output is hot: `bias` (per-output-channel, length shape.no, may be
  /// nullptr) and, when `relu_mask` is non-null, ReLU with the 0/1 mask
  /// written there (length = output element count). The arithmetic is
  /// element-for-element the unfused layers', so results are
  /// bitwise-identical; the fault ladder is the plain call's.
  void conv_forward_fused(const conv::ConvShape& shape, const double* x,
                          const double* w, double* y, const double* bias,
                          double* relu_mask);
  void conv_backward_data(const conv::ConvShape& shape, const double* w,
                          const double* dy, double* dx);
  void conv_backward_filter(const conv::ConvShape& shape, const double* x,
                            const double* dy, double* dw);

  // Configuration passthroughs (configuration-phase: no in-flight work).
  void set_event_tracer(sim::EventTracer* tracer);
  void set_fault_plan(const sim::FaultPlan* plan);
  void set_retry_policy(int max_attempts, std::uint64_t backoff_cycles);
  /// Compile-time schedule autotuning: when enabled, warm_conv_plan also
  /// searches the schedule-only plan knobs and installs tuned rankings.
  void set_autotune(bool enable);

  // Observability passthroughs.
  api::PlanCacheCounters plan_cache_counters() const;
  api::FaultCounters fault_counters() const;
  api::ExecutionRoute last_execution_route() const;
  std::string last_error_message() const;
  /// Distinct shapes the schedule autotuner has tuned on this handle.
  std::uint64_t autotuned_shapes() const;

 private:
  api::Handle* handle_ = nullptr;
};

}  // namespace swdnn::dnn
