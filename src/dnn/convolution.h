#pragma once
// Convolution layer (valid, stride 1) over [R][C][N][B] activations.
//
// Forward runs the im2col+GEMM host path by default — the functional
// route that is practical at training sizes on the host — and can be
// switched to the simulated-mesh path (SwConvolution) to exercise the
// full SW26010 pipeline on mesh-compatible shapes. Both are checked
// against the naive reference in tests. Backward uses the reference
// gradient kernels.

#include <optional>

#include "src/conv/shape.h"
#include "src/conv/swconv.h"
#include "src/dnn/layer.h"
#include "src/tensor/pool.h"
#include "src/util/rng.h"

namespace swdnn::dnn {

enum class ConvBackend {
  kHostIm2col,    ///< im2col + blocked GEMM on the host
  kSimulatedMesh, ///< Algorithms 1/2 on the SW26010 simulator
};

class Convolution : public Layer {
 public:
  /// Initializes the filter with He-scaled normal weights. With
  /// `with_bias` a zero-initialized per-output-channel bias is added
  /// after the convolution (and its gradient accumulated in backward).
  Convolution(const conv::ConvShape& shape, util::Rng& rng,
              ConvBackend backend = ConvBackend::kHostIm2col,
              bool with_bias = false);

  std::string name() const override { return "conv"; }
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& d_output) override;
  std::vector<ParamGrad> params() override;

  // Compiled path: all three heavy ops dispatch through the shared
  // BackendContext handle (plan cache + fault ladder + tracer) instead
  // of calling conv:: backends directly; the arena keeps this layer's
  // input alive until its backward step, so no copy-cache is taken.
  // Strided shapes sit outside the API's configuration space and keep
  // the eager kernels via the default view adapters.
  std::vector<std::int64_t> infer_shape(
      const std::vector<std::int64_t>& input_dims) override;
  bool backward_needs_input() const override { return true; }
  void bind(BackendContext* context) override { context_ = context; }
  void plan(const std::vector<std::int64_t>& input_dims) override;
  void forward_view(const tensor::TensorView& input,
                    tensor::TensorView& output) override;
  void backward_view(const tensor::TensorView& d_output,
                     tensor::TensorView& d_input) override;

  // Graph fusion: on the API route a following elementwise epilogue
  // (ReLU via the backend's fused mask epilogue; tanh/sigmoid applied
  // in place right after the dispatch) collapses into this layer's
  // node — one backend call, bitwise-identical output.
  bool supports_fused_epilogue() const override { return use_api(); }
  void forward_view_fused(const tensor::TensorView& input,
                          tensor::TensorView& output,
                          Layer& epilogue) override;
  void backward_view_fused(tensor::TensorView& d_output,
                           tensor::TensorView& d_input,
                           Layer& epilogue) override;

  const tensor::Tensor& filter() const { return filter_; }
  tensor::Tensor& mutable_filter() { return filter_; }
  const conv::ConvShape& shape() const { return shape_; }

  const tensor::Tensor& bias() const { return bias_; }
  bool has_bias() const { return with_bias_; }

 private:
  conv::ConvShape shape_;
  ConvBackend backend_;
  bool with_bias_;
  tensor::Tensor filter_;
  tensor::Tensor d_filter_;
  tensor::Tensor bias_;    ///< [No]; unused when !with_bias_
  tensor::Tensor d_bias_;
  tensor::Tensor cached_input_;
  conv::SwConvolution sw_;
  /// Persistent executor for the backward-filter launches on the mesh
  /// backend (created on first use; its worker pool is reused across
  /// training steps). Layers are not called concurrently, so no lock.
  std::unique_ptr<sim::MeshExecutor> mesh_exec_;

  /// True when the compiled path can route this layer through the API
  /// boundary (bound context + stride-1 shape).
  bool use_api() const;

  BackendContext* context_ = nullptr;     // set by bind()
  tensor::TensorView input_view_;         // the arena keeps it live

  // Host-route compiled scratch: a kHostIm2col layer's fused node runs
  // the eager im2col kernels directly (route fidelity — the multigrain
  // mesh mappings accept shapes the host route must keep), staged
  // through presized members and a private pool so steady-state
  // compiled steps mint zero tensors. Sized on first fused call.
  void ensure_host_scratch();
  tensor::Tensor host_in_, host_out_, host_dout_, host_din_;
  tensor::TensorPool host_pool_;
};

}  // namespace swdnn::dnn
