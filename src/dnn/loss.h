#pragma once
// Losses for the training stack.

#include <vector>

#include "src/tensor/tensor.h"

namespace swdnn::dnn {

struct LossResult {
  double loss = 0;              ///< mean over the batch
  tensor::Tensor d_logits;      ///< gradient w.r.t. the logits
  std::int64_t correct = 0;     ///< argmax == label count (for accuracy)
};

/// Fused softmax + cross-entropy over [classes][B] logits. The fused
/// gradient (p - onehot)/B avoids the softmax Jacobian.
LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                 const std::vector<int>& labels);

/// Mean squared error against a target tensor of the same shape.
LossResult mean_squared_error(const tensor::Tensor& prediction,
                              const tensor::Tensor& target);

}  // namespace swdnn::dnn
