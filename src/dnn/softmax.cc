#include "src/dnn/softmax.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/runtime/task_pool.h"

namespace swdnn::dnn {

namespace {
// Column shards: each batch column is normalized independently.
constexpr std::int64_t kColGrain = 16;
}  // namespace

tensor::Tensor softmax_columns(const tensor::Tensor& logits) {
  if (logits.rank() != 2) {
    throw std::invalid_argument("softmax expects [classes][B]");
  }
  const std::int64_t classes = logits.dim(0);
  const std::int64_t batch = logits.dim(1);
  tensor::Tensor out({classes, batch});
  runtime::parallel_for(
      0, batch, kColGrain, [&](std::int64_t b0, std::int64_t b1) {
        for (std::int64_t b = b0; b < b1; ++b) {
          double max_v = logits.at(0, b);
          for (std::int64_t c = 1; c < classes; ++c) {
            max_v = std::max(max_v, logits.at(c, b));
          }
          double denom = 0;
          for (std::int64_t c = 0; c < classes; ++c) {
            denom += std::exp(logits.at(c, b) - max_v);
          }
          for (std::int64_t c = 0; c < classes; ++c) {
            out.at(c, b) = std::exp(logits.at(c, b) - max_v) / denom;
          }
        }
      });
  return out;
}

tensor::Tensor Softmax::forward(const tensor::Tensor& logits) {
  cached_output_ = softmax_columns(logits);
  return cached_output_;
}

std::vector<std::int64_t> Softmax::infer_shape(
    const std::vector<std::int64_t>& input_dims) {
  if (input_dims.size() != 2) {
    throw std::invalid_argument("softmax expects [classes][B]");
  }
  return input_dims;
}

void Softmax::plan(const std::vector<std::int64_t>& input_dims) {
  cached_output_ = tensor::Tensor(infer_shape(input_dims));
}

void Softmax::forward_view(const tensor::TensorView& input,
                           tensor::TensorView& output) {
  if (cached_output_.dims() != input.dims()) {
    cached_output_ = tensor::Tensor(input.dims());
  }
  const std::int64_t classes = input.dim(0);
  const std::int64_t batch = input.dim(1);
  runtime::parallel_for(
      0, batch, kColGrain, [&](std::int64_t b0, std::int64_t b1) {
        for (std::int64_t b = b0; b < b1; ++b) {
          double max_v = input.at(0, b);
          for (std::int64_t c = 1; c < classes; ++c) {
            max_v = std::max(max_v, input.at(c, b));
          }
          double denom = 0;
          for (std::int64_t c = 0; c < classes; ++c) {
            denom += std::exp(input.at(c, b) - max_v);
          }
          for (std::int64_t c = 0; c < classes; ++c) {
            const double p = std::exp(input.at(c, b) - max_v) / denom;
            output.at(c, b) = p;
            cached_output_.at(c, b) = p;
          }
        }
      });
}

void Softmax::backward_view(const tensor::TensorView& d_output,
                            tensor::TensorView& d_input) {
  const std::int64_t classes = cached_output_.dim(0);
  const std::int64_t batch = cached_output_.dim(1);
  runtime::parallel_for(
      0, batch, kColGrain, [&](std::int64_t b0, std::int64_t b1) {
        for (std::int64_t b = b0; b < b1; ++b) {
          double dot = 0;
          for (std::int64_t c = 0; c < classes; ++c) {
            dot += d_output.at(c, b) * cached_output_.at(c, b);
          }
          for (std::int64_t c = 0; c < classes; ++c) {
            d_input.at(c, b) =
                cached_output_.at(c, b) * (d_output.at(c, b) - dot);
          }
        }
      });
}

tensor::Tensor Softmax::backward(const tensor::Tensor& d_output) {
  // dL/dz_c = y_c * (dL/dy_c - sum_k dL/dy_k * y_k), per column.
  const std::int64_t classes = cached_output_.dim(0);
  const std::int64_t batch = cached_output_.dim(1);
  tensor::Tensor d_input({classes, batch});
  runtime::parallel_for(
      0, batch, kColGrain, [&](std::int64_t b0, std::int64_t b1) {
        for (std::int64_t b = b0; b < b1; ++b) {
          double dot = 0;
          for (std::int64_t c = 0; c < classes; ++c) {
            dot += d_output.at(c, b) * cached_output_.at(c, b);
          }
          for (std::int64_t c = 0; c < classes; ++c) {
            d_input.at(c, b) =
                cached_output_.at(c, b) * (d_output.at(c, b) - dot);
          }
        }
      });
  return d_input;
}

}  // namespace swdnn::dnn
