#include "src/dnn/trainer.h"

#include <cmath>
#include <utility>

#include "src/dnn/serialize.h"
#include "src/util/ksum.h"
#include "src/util/stopwatch.h"

namespace swdnn::dnn {

namespace {

/// RAII train/eval switch: flips the network into `mode` and restores
/// the prior mode on scope exit (exceptions included), so an eval pass
/// can never leave a training loop running with dropout disabled — or
/// vice versa.
class TrainingModeGuard {
 public:
  TrainingModeGuard(Network& net, bool mode)
      : net_(net), prior_(net.training()) {
    net_.set_training(mode);
  }
  ~TrainingModeGuard() { net_.set_training(prior_); }
  TrainingModeGuard(const TrainingModeGuard&) = delete;
  TrainingModeGuard& operator=(const TrainingModeGuard&) = delete;

 private:
  Network& net_;
  bool prior_;
};

}  // namespace

SyntheticBars::SyntheticBars(std::int64_t image_size, int num_classes,
                             double noise, std::uint64_t seed)
    : image_size_(image_size),
      num_classes_(num_classes),
      noise_(noise),
      rng_(seed) {}

Batch SyntheticBars::sample(std::int64_t batch) {
  Batch out;
  out.images = tensor::Tensor({image_size_, image_size_, 1, batch});
  out.labels.resize(static_cast<std::size_t>(batch));
  const double mid = static_cast<double>(image_size_ - 1) / 2.0;
  for (std::int64_t b = 0; b < batch; ++b) {
    const int label =
        static_cast<int>(rng_.uniform_int(0, num_classes_ - 1));
    out.labels[static_cast<std::size_t>(b)] = label;
    const double angle =
        M_PI * static_cast<double>(label) / static_cast<double>(num_classes_);
    const double nx = -std::sin(angle), ny = std::cos(angle);
    for (std::int64_t r = 0; r < image_size_; ++r) {
      for (std::int64_t c = 0; c < image_size_; ++c) {
        // Distance of the pixel from the bar's center line.
        const double d = std::abs((static_cast<double>(r) - mid) * nx +
                                  (static_cast<double>(c) - mid) * ny);
        const double value = std::exp(-d * d) + rng_.normal(0.0, noise_);
        out.images.at(r, c, 0, b) = value;
      }
    }
  }
  return out;
}

LossResult Trainer::train_step(const Batch& batch) {
  tensor::Tensor logits = net_.forward(batch.images);
  LossResult loss = softmax_cross_entropy(logits, batch.labels);
  net_.backward(loss.d_logits);
  opt_.step(net_.params());
  return loss;
}

EpochStats Trainer::train_epoch(SyntheticBars& data, std::int64_t batch_size,
                                int steps) {
  util::Stopwatch watch;
  EpochStats stats;
  std::int64_t correct = 0;
  util::KahanSum loss_sum;
  for (int s = 0; s < steps; ++s) {
    const Batch batch = data.sample(batch_size);
    const LossResult loss = train_step(batch);
    loss_sum.add(loss.loss);
    correct += loss.correct;
  }
  stats.mean_loss = loss_sum.value() / static_cast<double>(steps);
  stats.accuracy = static_cast<double>(correct) /
                   static_cast<double>(steps * batch_size);
  stats.seconds = watch.elapsed_seconds();
  return stats;
}

void Trainer::enable_checkpointing(std::string path, int interval) {
  checkpoint_path_ = std::move(path);
  checkpoint_interval_ = interval < 1 ? 1 : interval;
  checkpoints_written_ = 0;
  resilient_steps_ = 0;
}

bool Trainer::rollback() {
  if (checkpoint_interval_ == 0 || checkpoints_written_ == 0) return false;
  load_parameters(net_, checkpoint_path_);
  return true;
}

bool Trainer::gradients_finite() const {
  for (const auto& pg : net_.params()) {
    for (const double g : pg.grad->data()) {
      if (!std::isfinite(g)) return false;
    }
  }
  return true;
}

Trainer::ResilientStep Trainer::train_step_resilient(const Batch& batch) {
  ResilientStep out;
  if (checkpoint_interval_ > 0 &&
      resilient_steps_ % checkpoint_interval_ == 0) {
    save_parameters(net_, checkpoint_path_);
    ++checkpoints_written_;
  }
  ++resilient_steps_;
  try {
    tensor::Tensor logits = net_.forward(batch.images);
    out.loss = softmax_cross_entropy(logits, batch.labels);
    net_.backward(out.loss.d_logits);
    if (!gradients_finite()) {
      // Corrupted gradients (e.g. an LDM bit flip surfaced as NaN):
      // training on them would poison the parameters permanently.
      out.rolled_back = rollback();
      return out;
    }
    opt_.step(net_.params());
  } catch (const std::exception&) {
    // Unrecoverable fault mid-step: restore the last good parameters.
    out.rolled_back = rollback();
  }
  return out;
}

double Trainer::evaluate(SyntheticBars& data, std::int64_t batch_size,
                         int batches) {
  return evaluate_stats(data, batch_size, batches).accuracy;
}

EvalStats Trainer::evaluate_stats(SyntheticBars& data,
                                  std::int64_t batch_size, int batches) {
  // Accuracy must be measured with deterministic layers: dropout left
  // stochastic here both corrupts the measurement and (before the
  // guard) leaked eval mode into subsequent training steps.
  const TrainingModeGuard eval_guard(net_, /*mode=*/false);
  std::int64_t correct = 0;
  util::KahanSum loss_sum;
  for (int s = 0; s < batches; ++s) {
    const Batch batch = data.sample(batch_size);
    tensor::Tensor logits = net_.forward(batch.images);
    const LossResult loss = softmax_cross_entropy(logits, batch.labels);
    correct += loss.correct;
    loss_sum.add(loss.loss);
  }
  EvalStats stats;
  stats.accuracy = static_cast<double>(correct) /
                   static_cast<double>(batches * batch_size);
  stats.mean_loss = loss_sum.value() / static_cast<double>(batches);
  return stats;
}

}  // namespace swdnn::dnn
