#include "src/dnn/convolution.h"

#include <cmath>
#include <stdexcept>

#include "src/conv/backward.h"
#include "src/conv/im2col.h"
#include "src/conv/reference.h"
#include "src/dnn/backend_context.h"

namespace swdnn::dnn {

Convolution::Convolution(const conv::ConvShape& shape, util::Rng& rng,
                         ConvBackend backend, bool with_bias)
    : shape_(shape),
      backend_(backend),
      with_bias_(with_bias),
      filter_(conv::make_filter(shape)),
      d_filter_(conv::make_filter(shape)),
      bias_({shape.no}),
      d_bias_({shape.no}),
      sw_() {
  shape_.validate();
  const double fan_in =
      static_cast<double>(shape.ni * shape.kr * shape.kc);
  rng.fill_normal(filter_.data(), 0.0, std::sqrt(2.0 / fan_in));
}

tensor::Tensor Convolution::forward(const tensor::Tensor& input) {
  if (input.dims() !=
      std::vector<std::int64_t>{shape_.ri, shape_.ci, shape_.ni,
                                shape_.batch}) {
    throw std::invalid_argument("Convolution::forward: input shape mismatch");
  }
  cached_input_ = input;
  tensor::Tensor output = conv::make_output(shape_);
  if (backend_ == ConvBackend::kHostIm2col) {
    conv::im2col_forward(input, filter_, output, shape_);
  } else {
    sw_.forward(input, filter_, output, shape_);
  }
  if (with_bias_) {
    for (std::int64_t ro = 0; ro < shape_.ro(); ++ro)
      for (std::int64_t co = 0; co < shape_.co(); ++co)
        for (std::int64_t no = 0; no < shape_.no; ++no)
          for (std::int64_t b = 0; b < shape_.batch; ++b)
            output.at(ro, co, no, b) += bias_.at(no);
  }
  return output;
}

tensor::Tensor Convolution::backward(const tensor::Tensor& d_output) {
  if (with_bias_) {
    d_bias_.zero();
    for (std::int64_t ro = 0; ro < shape_.ro(); ++ro)
      for (std::int64_t co = 0; co < shape_.co(); ++co)
        for (std::int64_t no = 0; no < shape_.no; ++no)
          for (std::int64_t b = 0; b < shape_.batch; ++b)
            d_bias_.at(no) += d_output.at(ro, co, no, b);
  }
  tensor::Tensor d_input = conv::make_input(shape_);
  if (backend_ == ConvBackend::kSimulatedMesh) {
    // Training on the simulated machine end to end: backward-data runs
    // as a forward convolution on transformed tensors, backward-filter
    // as per-tap distributed GEMMs.
    conv::swconv_backward_data(sw_, d_output, filter_, d_input, shape_);
    if (mesh_exec_ == nullptr) {
      mesh_exec_ = std::make_unique<sim::MeshExecutor>(sw_.spec());
    }
    conv::mesh_backward_filter(*mesh_exec_, cached_input_, d_output,
                               d_filter_, shape_);
  } else {
    // GEMM-lowered gradients: same results as the reference loops (see
    // conv_im2col_test), much faster on the host.
    conv::im2col_backward_filter(cached_input_, d_output, d_filter_, shape_);
    conv::im2col_backward_data(d_output, filter_, d_input, shape_);
  }
  return d_input;
}

std::vector<ParamGrad> Convolution::params() {
  std::vector<ParamGrad> out = {ParamGrad{&filter_, &d_filter_}};
  if (with_bias_) out.push_back(ParamGrad{&bias_, &d_bias_});
  return out;
}

bool Convolution::use_api() const {
  return context_ != nullptr && shape_.stride_r == 1 && shape_.stride_c == 1;
}

std::vector<std::int64_t> Convolution::infer_shape(
    const std::vector<std::int64_t>& input_dims) {
  if (input_dims !=
      std::vector<std::int64_t>{shape_.ri, shape_.ci, shape_.ni,
                                shape_.batch}) {
    throw std::invalid_argument("Convolution::infer_shape: expected [" +
                                std::to_string(shape_.ri) + "][" +
                                std::to_string(shape_.ci) + "][" +
                                std::to_string(shape_.ni) + "][" +
                                std::to_string(shape_.batch) + "] input");
  }
  return {shape_.ro(), shape_.co(), shape_.no, shape_.batch};
}

void Convolution::plan(const std::vector<std::int64_t>& input_dims) {
  (void)infer_shape(input_dims);  // revalidate
  if (use_api()) context_->warm_conv_plan(shape_);
}

void Convolution::forward_view(const tensor::TensorView& input,
                               tensor::TensorView& output) {
  if (!use_api()) {
    Layer::forward_view(input, output);
    return;
  }
  input_view_ = input;  // liveness: the planner pins it to our backward
  context_->conv_forward(shape_, input.data().data(), filter_.data().data(),
                         output.data().data());
  if (with_bias_) {
    for (std::int64_t ro = 0; ro < shape_.ro(); ++ro)
      for (std::int64_t co = 0; co < shape_.co(); ++co)
        for (std::int64_t no = 0; no < shape_.no; ++no)
          for (std::int64_t b = 0; b < shape_.batch; ++b)
            output.at(ro, co, no, b) += bias_.at(no);
  }
}

void Convolution::forward_view_fused(const tensor::TensorView& input,
                                     tensor::TensorView& output,
                                     Layer& epilogue) {
  input_view_ = input;  // liveness: the planner pins it to our backward
  // Mask epilogues (ReLU) fold into the backend dispatch — bias add and
  // activation run while the output is hot and the mask is written in
  // the same pass. Cached-output epilogues (tanh, sigmoid) get the
  // bias folded in and the nonlinearity applied in place right after.
  double* mask = epilogue.epilogue_mask_data();
  context_->conv_forward_fused(shape_, input.data().data(),
                               filter_.data().data(), output.data().data(),
                               with_bias_ ? bias_.data().data() : nullptr,
                               mask);
  if (mask == nullptr) epilogue.epilogue_forward_inplace(output);
}

void Convolution::backward_view_fused(tensor::TensorView& d_output,
                                      tensor::TensorView& d_input,
                                      Layer& epilogue) {
  // dLoss/dEpilogueOut -> dLoss/dConvOut in place; that gradient value
  // is dead after this node's backward, so the clobber is safe.
  epilogue.epilogue_backward_inplace(d_output);
  if (with_bias_) {
    d_bias_.zero();
    for (std::int64_t ro = 0; ro < shape_.ro(); ++ro)
      for (std::int64_t co = 0; co < shape_.co(); ++co)
        for (std::int64_t no = 0; no < shape_.no; ++no)
          for (std::int64_t b = 0; b < shape_.batch; ++b)
            d_bias_.at(no) += d_output.at(ro, co, no, b);
  }
  context_->conv_backward_filter(shape_, input_view_.data().data(),
                                 d_output.data().data(),
                                 d_filter_.data().data());
  context_->conv_backward_data(shape_, filter_.data().data(),
                               d_output.data().data(),
                               d_input.data().data());
}

void Convolution::backward_view(const tensor::TensorView& d_output,
                                tensor::TensorView& d_input) {
  if (!use_api()) {
    Layer::backward_view(d_output, d_input);
    return;
  }
  if (with_bias_) {
    d_bias_.zero();
    for (std::int64_t ro = 0; ro < shape_.ro(); ++ro)
      for (std::int64_t co = 0; co < shape_.co(); ++co)
        for (std::int64_t no = 0; no < shape_.no; ++no)
          for (std::int64_t b = 0; b < shape_.batch; ++b)
            d_bias_.at(no) += d_output.at(ro, co, no, b);
  }
  context_->conv_backward_filter(shape_, input_view_.data().data(),
                                 d_output.data().data(),
                                 d_filter_.data().data());
  context_->conv_backward_data(shape_, filter_.data().data(),
                               d_output.data().data(),
                               d_input.data().data());
}

}  // namespace swdnn::dnn
