#include "src/dnn/convolution.h"

#include <cmath>
#include <stdexcept>

#include "src/conv/backward.h"
#include "src/conv/epilogue.h"
#include "src/conv/im2col.h"
#include "src/conv/reference.h"
#include "src/dnn/backend_context.h"

namespace swdnn::dnn {

Convolution::Convolution(const conv::ConvShape& shape, util::Rng& rng,
                         ConvBackend backend, bool with_bias)
    : shape_(shape),
      backend_(backend),
      with_bias_(with_bias),
      filter_(conv::make_filter(shape)),
      d_filter_(conv::make_filter(shape)),
      bias_({shape.no}),
      d_bias_({shape.no}),
      sw_() {
  shape_.validate();
  const double fan_in =
      static_cast<double>(shape.ni * shape.kr * shape.kc);
  rng.fill_normal(filter_.data(), 0.0, std::sqrt(2.0 / fan_in));
}

tensor::Tensor Convolution::forward(const tensor::Tensor& input) {
  if (input.dims() !=
      std::vector<std::int64_t>{shape_.ri, shape_.ci, shape_.ni,
                                shape_.batch}) {
    throw std::invalid_argument("Convolution::forward: input shape mismatch");
  }
  cached_input_ = input;
  tensor::Tensor output = conv::make_output(shape_);
  if (backend_ == ConvBackend::kHostIm2col) {
    conv::im2col_forward(input, filter_, output, shape_);
  } else {
    sw_.forward(input, filter_, output, shape_);
  }
  if (with_bias_) {
    for (std::int64_t ro = 0; ro < shape_.ro(); ++ro)
      for (std::int64_t co = 0; co < shape_.co(); ++co)
        for (std::int64_t no = 0; no < shape_.no; ++no)
          for (std::int64_t b = 0; b < shape_.batch; ++b)
            output.at(ro, co, no, b) += bias_.at(no);
  }
  return output;
}

tensor::Tensor Convolution::backward(const tensor::Tensor& d_output) {
  if (with_bias_) {
    d_bias_.zero();
    for (std::int64_t ro = 0; ro < shape_.ro(); ++ro)
      for (std::int64_t co = 0; co < shape_.co(); ++co)
        for (std::int64_t no = 0; no < shape_.no; ++no)
          for (std::int64_t b = 0; b < shape_.batch; ++b)
            d_bias_.at(no) += d_output.at(ro, co, no, b);
  }
  tensor::Tensor d_input = conv::make_input(shape_);
  if (backend_ == ConvBackend::kSimulatedMesh) {
    // Training on the simulated machine end to end: backward-data runs
    // as a forward convolution on transformed tensors, backward-filter
    // as per-tap distributed GEMMs.
    conv::swconv_backward_data(sw_, d_output, filter_, d_input, shape_);
    if (mesh_exec_ == nullptr) {
      mesh_exec_ = std::make_unique<sim::MeshExecutor>(sw_.spec());
    }
    conv::mesh_backward_filter(*mesh_exec_, cached_input_, d_output,
                               d_filter_, shape_);
  } else {
    // GEMM-lowered gradients: same results as the reference loops (see
    // conv_im2col_test), much faster on the host.
    conv::im2col_backward_filter(cached_input_, d_output, d_filter_, shape_);
    conv::im2col_backward_data(d_output, filter_, d_input, shape_);
  }
  return d_input;
}

std::vector<ParamGrad> Convolution::params() {
  std::vector<ParamGrad> out = {ParamGrad{&filter_, &d_filter_}};
  if (with_bias_) out.push_back(ParamGrad{&bias_, &d_bias_});
  return out;
}

bool Convolution::use_api() const {
  return context_ != nullptr && shape_.stride_r == 1 && shape_.stride_c == 1;
}

void Convolution::ensure_host_scratch() {
  if (host_in_.size() != 0) return;
  host_in_ = conv::make_input(shape_);
  host_out_ = conv::make_output(shape_);
  host_dout_ = conv::make_output(shape_);
  host_din_ = conv::make_input(shape_);
}

std::vector<std::int64_t> Convolution::infer_shape(
    const std::vector<std::int64_t>& input_dims) {
  if (input_dims !=
      std::vector<std::int64_t>{shape_.ri, shape_.ci, shape_.ni,
                                shape_.batch}) {
    throw std::invalid_argument("Convolution::infer_shape: expected [" +
                                std::to_string(shape_.ri) + "][" +
                                std::to_string(shape_.ci) + "][" +
                                std::to_string(shape_.ni) + "][" +
                                std::to_string(shape_.batch) + "] input");
  }
  return {shape_.ro(), shape_.co(), shape_.no, shape_.batch};
}

void Convolution::plan(const std::vector<std::int64_t>& input_dims) {
  (void)infer_shape(input_dims);  // revalidate
  if (use_api()) context_->warm_conv_plan(shape_);
}

// Route fidelity: a kHostIm2col layer's compiled path must run the
// same im2col kernel its eager twin runs. It used to be safe to send
// every compiled conv through the API — ragged shapes had no mesh
// mapping, so the API landed on the host im2col fallback anyway — but
// the multigrain mappings (pixel-grained in particular) make almost
// any stride-1 shape mesh-executable, and the mesh kernels accumulate
// in reference (kr,kc,ni) order while im2col lowers K as (ni,kr,kc):
// correct to 1e-15 but not bitwise. The compiled/eager bitwise
// differential therefore requires the layer's declared backend to pick
// the route, not the plan chooser.
void Convolution::forward_view(const tensor::TensorView& input,
                               tensor::TensorView& output) {
  if (!use_api() || backend_ == ConvBackend::kHostIm2col) {
    Layer::forward_view(input, output);  // eager kernels, bitwise twin
    return;
  }
  input_view_ = input;  // liveness: the planner pins it to our backward
  context_->conv_forward(shape_, input.data().data(), filter_.data().data(),
                         output.data().data());
  if (with_bias_) {
    for (std::int64_t ro = 0; ro < shape_.ro(); ++ro)
      for (std::int64_t co = 0; co < shape_.co(); ++co)
        for (std::int64_t no = 0; no < shape_.no; ++no)
          for (std::int64_t b = 0; b < shape_.batch; ++b)
            output.at(ro, co, no, b) += bias_.at(no);
  }
}

void Convolution::forward_view_fused(const tensor::TensorView& input,
                                     tensor::TensorView& output,
                                     Layer& epilogue) {
  // Mask epilogues (ReLU) fold into the backend dispatch — bias add and
  // activation run while the output is hot and the mask is written in
  // the same pass. Cached-output epilogues (tanh, sigmoid) get the
  // bias folded in and the nonlinearity applied in place right after.
  double* mask = epilogue.epilogue_mask_data();
  if (backend_ == ConvBackend::kHostIm2col) {
    // Same route-fidelity rule as forward_view: fuse on the host so
    // the node stays bitwise-equal to its eager twin (apply_epilogue
    // is element-for-element the unfused bias+ReLU arithmetic).
    ensure_host_scratch();
    std::copy(input.data().begin(), input.data().end(),
              host_in_.data().begin());
    host_out_.zero();
    conv::im2col_forward(host_in_, filter_, host_out_, shape_, &host_pool_);
    const conv::ConvEpilogue ep{
        with_bias_ ? bias_.data().data() : nullptr, mask};
    conv::apply_epilogue(host_out_.data().data(), shape_, ep);
    output.copy_from(host_out_);
    if (mask == nullptr) epilogue.epilogue_forward_inplace(output);
    return;
  }
  input_view_ = input;  // liveness: the planner pins it to our backward
  context_->conv_forward_fused(shape_, input.data().data(),
                               filter_.data().data(), output.data().data(),
                               with_bias_ ? bias_.data().data() : nullptr,
                               mask);
  if (mask == nullptr) epilogue.epilogue_forward_inplace(output);
}

void Convolution::backward_view_fused(tensor::TensorView& d_output,
                                      tensor::TensorView& d_input,
                                      Layer& epilogue) {
  // dLoss/dEpilogueOut -> dLoss/dConvOut in place; that gradient value
  // is dead after this node's backward, so the clobber is safe.
  epilogue.epilogue_backward_inplace(d_output);
  if (with_bias_) {
    d_bias_.zero();
    for (std::int64_t ro = 0; ro < shape_.ro(); ++ro)
      for (std::int64_t co = 0; co < shape_.co(); ++co)
        for (std::int64_t no = 0; no < shape_.no; ++no)
          for (std::int64_t b = 0; b < shape_.batch; ++b)
            d_bias_.at(no) += d_output.at(ro, co, no, b);
  }
  if (backend_ == ConvBackend::kHostIm2col) {
    // Host-backend gradients stay on the eager im2col kernels (route
    // fidelity; see forward_view). host_in_ still holds this step's
    // input from the fused forward.
    ensure_host_scratch();
    std::copy(d_output.data().begin(), d_output.data().end(),
              host_dout_.data().begin());
    conv::im2col_backward_filter(host_in_, host_dout_, d_filter_, shape_,
                                 &host_pool_);
    host_din_.zero();
    conv::im2col_backward_data(host_dout_, filter_, host_din_, shape_,
                               &host_pool_);
    d_input.copy_from(host_din_);
    return;
  }
  context_->conv_backward_filter(shape_, input_view_.data().data(),
                                 d_output.data().data(),
                                 d_filter_.data().data());
  context_->conv_backward_data(shape_, filter_.data().data(),
                               d_output.data().data(),
                               d_input.data().data());
}

void Convolution::backward_view(const tensor::TensorView& d_output,
                                tensor::TensorView& d_input) {
  if (!use_api() || backend_ == ConvBackend::kHostIm2col) {
    Layer::backward_view(d_output, d_input);  // eager kernels
    return;
  }
  if (with_bias_) {
    d_bias_.zero();
    for (std::int64_t ro = 0; ro < shape_.ro(); ++ro)
      for (std::int64_t co = 0; co < shape_.co(); ++co)
        for (std::int64_t no = 0; no < shape_.no; ++no)
          for (std::int64_t b = 0; b < shape_.batch; ++b)
            d_bias_.at(no) += d_output.at(ro, co, no, b);
  }
  context_->conv_backward_filter(shape_, input_view_.data().data(),
                                 d_output.data().data(),
                                 d_filter_.data().data());
  context_->conv_backward_data(shape_, filter_.data().data(),
                               d_output.data().data(),
                               d_input.data().data());
}

}  // namespace swdnn::dnn
