#pragma once
// ReLU activation (elementwise, any tensor rank).

#include "src/dnn/layer.h"

namespace swdnn::dnn {

class Relu : public Layer {
 public:
  std::string name() const override { return "relu"; }
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& d_output) override;

  // Compiled path: the mask is presized at plan() time, so the
  // steady-state step is allocation-free and the input dies right
  // after this layer's forward (backward reads only the mask).
  void plan(const std::vector<std::int64_t>& input_dims) override;
  void forward_view(const tensor::TensorView& input,
                    tensor::TensorView& output) override;
  void backward_view(const tensor::TensorView& d_output,
                     tensor::TensorView& d_input) override;

  // Fusion: ReLU rides a conv/FC node as a mask-based epilogue — the
  // producer's single backend dispatch applies the select and fills
  // mask_ (the exact buffer the unfused backward reads), so fused and
  // unfused execution share one backward implementation bitwise.
  bool is_fusible_epilogue() const override { return true; }
  double* epilogue_mask_data() override {
    return mask_.size() > 0 ? mask_.data().data() : nullptr;
  }
  void epilogue_forward_inplace(tensor::TensorView& y) override;
  void epilogue_backward_inplace(tensor::TensorView& d) override;

 private:
  tensor::Tensor mask_;  ///< 1 where input > 0
};

}  // namespace swdnn::dnn
