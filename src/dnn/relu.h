#pragma once
// ReLU activation (elementwise, any tensor rank).

#include "src/dnn/layer.h"

namespace swdnn::dnn {

class Relu : public Layer {
 public:
  std::string name() const override { return "relu"; }
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& d_output) override;

 private:
  tensor::Tensor mask_;  ///< 1 where input > 0
};

}  // namespace swdnn::dnn
