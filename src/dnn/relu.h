#pragma once
// ReLU activation (elementwise, any tensor rank).

#include "src/dnn/layer.h"

namespace swdnn::dnn {

class Relu : public Layer {
 public:
  std::string name() const override { return "relu"; }
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& d_output) override;

  // Compiled path: the mask is presized at plan() time, so the
  // steady-state step is allocation-free and the input dies right
  // after this layer's forward (backward reads only the mask).
  void plan(const std::vector<std::int64_t>& input_dims) override;
  void forward_view(const tensor::TensorView& input,
                    tensor::TensorView& output) override;
  void backward_view(const tensor::TensorView& d_output,
                     tensor::TensorView& d_input) override;

 private:
  tensor::Tensor mask_;  ///< 1 where input > 0
};

}  // namespace swdnn::dnn
