#include "src/dnn/layer.h"

#include <stdexcept>

namespace swdnn::dnn {

std::vector<std::int64_t> Layer::infer_shape(
    const std::vector<std::int64_t>& input_dims) {
  if (input_dims.empty()) {
    throw std::invalid_argument(name() + ": empty input shape");
  }
  return input_dims;
}

void Layer::forward_view(const tensor::TensorView& input,
                         tensor::TensorView& output) {
  tensor::Tensor out = forward(input.to_tensor());
  output.copy_from(out);
}

void Layer::backward_view(const tensor::TensorView& d_output,
                          tensor::TensorView& d_input) {
  tensor::Tensor din = backward(d_output.to_tensor());
  d_input.copy_from(din);
}

void Layer::epilogue_forward_inplace(tensor::TensorView& y) {
  (void)y;
  throw std::logic_error(name() + ": not a fusible epilogue layer");
}

void Layer::epilogue_backward_inplace(tensor::TensorView& d) {
  (void)d;
  throw std::logic_error(name() + ": not a fusible epilogue layer");
}

void Layer::forward_view_fused(const tensor::TensorView& input,
                               tensor::TensorView& output, Layer& epilogue) {
  (void)input;
  (void)output;
  (void)epilogue;
  throw std::logic_error(name() + ": does not support a fused epilogue");
}

void Layer::backward_view_fused(tensor::TensorView& d_output,
                                tensor::TensorView& d_input,
                                Layer& epilogue) {
  (void)d_output;
  (void)d_input;
  (void)epilogue;
  throw std::logic_error(name() + ": does not support a fused epilogue");
}

}  // namespace swdnn::dnn
