#pragma once
// Sequential layer container with a compile-then-execute mode.
//
// Eager mode is the seed behaviour: forward/backward walk the layer
// vector, every layer minting fresh tensors. compile(input_dims) turns
// the same network into an execution graph in the swCaffe/swTVM sense:
//   1. shape inference propagates the input dims through every layer's
//      infer_shape, catching shape bugs before any math runs;
//   2. a liveness pass places every activation and gradient into the
//      workspace arena (tensor::Arena) — tensors with disjoint
//      lifetimes share bytes, so the packed peak sits far below the
//      one-buffer-per-tensor footprint;
//   3. every layer binds to one shared BackendContext and plans
//      (presizing caches, warming the API plan cache), so a compiled
//      step dispatches its heavy ops on plan-cache hits from batch one
//      and allocates nothing.
// forward/backward transparently run the compiled path once compiled;
// set_run_eager(true) is the escape hatch that forces the eager loop
// on a compiled network (differential testing, debugging).

#include <cstdint>
#include <memory>
#include <vector>

#include "src/dnn/layer.h"
#include "src/tensor/arena.h"

namespace swdnn::arch {
struct Sw26010Spec;
}  // namespace swdnn::arch

namespace swdnn::sim {
class EventTracer;
}  // namespace swdnn::sim

namespace swdnn::dnn {

class BackendContext;

struct CompileOptions {
  /// Shared backend context (e.g. across data-parallel replicas);
  /// nullptr = the network owns a private one.
  BackendContext* context = nullptr;
  /// Machine spec for an owned context; ignored when `context` is set.
  /// nullptr = the real SW26010 numbers.
  const arch::Sw26010Spec* spec = nullptr;
  /// Tracer for per-layer "layer" spans and backend events; also
  /// attached to the context. nullptr = no tracing.
  sim::EventTracer* tracer = nullptr;
};

/// What compile() decided, for observability and tests.
struct CompiledStats {
  std::int64_t arena_peak_bytes = 0;   ///< packed workspace footprint
  std::int64_t arena_naive_bytes = 0;  ///< one-buffer-per-tensor baseline
  std::size_t arena_slots = 0;
  std::uint64_t arena_allocations = 0;
  /// Inferred dims of every activation: [0] = input, [i+1] = output of
  /// layer i.
  std::vector<std::vector<std::int64_t>> activation_dims;
};

class Network {
 public:
  Network();
  ~Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;
  Network(Network&&) noexcept;
  Network& operator=(Network&&) noexcept;

  /// Appends a layer; returns a reference for inline configuration.
  /// Invalidates any previous compile().
  Layer& add(LayerPtr layer);

  /// Convenience: constructs the layer in place.
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    add(std::move(layer));
    return ref;
  }

  /// Builds the execution graph for this input shape: shape inference,
  /// arena liveness packing, backend binding and plan warm-up. Throws
  /// std::invalid_argument on a shape error. Re-compiling with a new
  /// shape is allowed (the arena is re-planned).
  const CompiledStats& compile(const std::vector<std::int64_t>& input_dims,
                               const CompileOptions& options = {});

  bool compiled() const { return compiled_; }
  const CompiledStats& compiled_stats() const { return stats_; }

  /// Drops the compiled graph (arena, bindings); eager behaviour only.
  void uncompile();

  /// Escape hatch: when true, forward/backward use the eager loop even
  /// on a compiled network. Differential tests flip this to compare
  /// both paths on one set of weights.
  void set_run_eager(bool run_eager) { run_eager_ = run_eager; }
  bool run_eager() const { return run_eager_; }

  /// The backend context heavy layers dispatch through (null before
  /// compile()); shared or owned per CompileOptions.
  BackendContext* context() { return context_; }

  tensor::Tensor forward(const tensor::Tensor& input);

  /// Backpropagates dLoss/dOutput through every layer; parameter
  /// gradients are left in the layers for the optimizer.
  tensor::Tensor backward(const tensor::Tensor& d_output);

  /// All trainable parameters across layers.
  std::vector<ParamGrad> params();

  /// Switches every layer between train and eval behaviour (dropout
  /// masks on/off etc.).
  void set_training(bool training);
  bool training() const { return training_; }

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }

 private:
  tensor::Tensor forward_compiled(const tensor::Tensor& input);
  tensor::Tensor backward_compiled(const tensor::Tensor& d_output);

  /// Emits one "layer" duration span (phase, bytes in/out encoded in
  /// the name) when a tracer is attached.
  void trace_layer(std::size_t layer_index, const char* phase,
                   std::int64_t bytes_in, std::int64_t bytes_out,
                   std::uint64_t begin_ns, std::uint64_t end_ns);

  std::vector<LayerPtr> layers_;
  bool training_ = true;

  // Compiled-graph state.
  bool compiled_ = false;
  bool run_eager_ = false;
  tensor::Arena arena_;
  std::vector<std::size_t> act_slots_;   // activation i -> arena slot
  std::vector<std::size_t> grad_slots_;  // gradient of activation i
  std::vector<tensor::TensorView> act_views_;
  std::vector<tensor::TensorView> grad_views_;
  CompiledStats stats_;
  BackendContext* context_ = nullptr;
  std::unique_ptr<BackendContext> owned_context_;
  sim::EventTracer* tracer_ = nullptr;
};

}  // namespace swdnn::dnn
