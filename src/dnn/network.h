#pragma once
// Sequential layer container.

#include <memory>
#include <vector>

#include "src/dnn/layer.h"

namespace swdnn::dnn {

class Network {
 public:
  /// Appends a layer; returns a reference for inline configuration.
  Layer& add(LayerPtr layer);

  /// Convenience: constructs the layer in place.
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  tensor::Tensor forward(const tensor::Tensor& input);

  /// Backpropagates dLoss/dOutput through every layer; parameter
  /// gradients are left in the layers for the optimizer.
  tensor::Tensor backward(const tensor::Tensor& d_output);

  /// All trainable parameters across layers.
  std::vector<ParamGrad> params();

  /// Switches every layer between train and eval behaviour (dropout
  /// masks on/off etc.).
  void set_training(bool training);

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace swdnn::dnn
