#pragma once
// Sequential layer container with a compile-then-execute mode.
//
// Eager mode is the seed behaviour: forward/backward walk the layer
// vector, every layer minting fresh tensors. compile(input_dims) lowers
// the same network into a graph IR (graph_ir.h) and optimizes it the
// way swTVM/swCaffe treat a model — as a program, not a list:
//   1. shape inference propagates the input dims through every layer's
//      infer_shape, catching shape bugs before any math runs;
//   2. every layer binds to one shared BackendContext and plans
//      (presizing caches, warming — and, by default, autotuning — the
//      API plan cache), so a compiled step dispatches its heavy ops on
//      tuned plan-cache hits from batch one;
//   3. a pass pipeline rewrites the graph: conv/FC + activation pairs
//      fuse into single nodes dispatching one backend call with an
//      epilogue, zero-pad nodes elide their per-step border zeroing;
//   4. a node-based liveness pass places every surviving activation and
//      gradient into the workspace arena (tensor::Arena) — tensors with
//      disjoint lifetimes share bytes, and fused-away intermediates are
//      never materialized at all.
// forward/backward transparently run the compiled path once compiled,
// returning views of presized result buffers so steady-state steps
// allocate nothing; set_run_eager(true) is the escape hatch that forces
// the eager loop on a compiled network (differential testing asserts
// the two paths agree bitwise).

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/dnn/graph_ir.h"
#include "src/dnn/layer.h"
#include "src/tensor/arena.h"

namespace swdnn::arch {
struct Sw26010Spec;
}  // namespace swdnn::arch

namespace swdnn::sim {
class EventTracer;
}  // namespace swdnn::sim

namespace swdnn::dnn {

class BackendContext;

struct CompileOptions {
  /// Shared backend context (e.g. across data-parallel replicas);
  /// nullptr = the network owns a private one.
  BackendContext* context = nullptr;
  /// Machine spec for an owned context; ignored when `context` is set.
  /// nullptr = the real SW26010 numbers.
  const arch::Sw26010Spec* spec = nullptr;
  /// Tracer for per-node "layer" spans, "fusion"/"autotune" pass
  /// instants, and backend events; also attached to the context.
  /// nullptr = no tracing.
  sim::EventTracer* tracer = nullptr;
  /// Run the graph passes (epilogue fusion, pad elision). false = the
  /// one-node-per-layer baseline, bitwise-identical results.
  bool fuse = true;
  /// Autotune plan schedules (register blocking, DMA promotion) during
  /// plan warm-up, with the perf model as cost oracle. Schedule-only:
  /// outputs are unaffected.
  bool autotune = true;
};

/// What compile() decided, for observability and tests.
struct CompiledStats {
  std::int64_t arena_peak_bytes = 0;   ///< packed workspace footprint
  std::int64_t arena_naive_bytes = 0;  ///< one-buffer-per-tensor baseline
  std::size_t arena_slots = 0;
  std::uint64_t arena_allocations = 0;
  /// Inferred dims of every activation: [0] = input, [i+1] = output of
  /// layer i. Fused-away intermediates keep their entry here (the dims
  /// are still inferred) but get no arena slot.
  std::vector<std::vector<std::int64_t>> activation_dims;
  // Graph-pass outcomes.
  std::size_t graph_nodes = 0;      ///< executable nodes after passes
  std::size_t fused_conv_act = 0;   ///< conv+activation pairs collapsed
  std::size_t fused_fc_act = 0;     ///< FC+activation pairs collapsed
  std::size_t elided_pads = 0;      ///< zero-pads with pinned slots
  std::uint64_t autotuned_shapes = 0;  ///< shapes the autotuner tuned
};

class Network {
 public:
  Network();
  ~Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;
  Network(Network&&) noexcept;
  Network& operator=(Network&&) noexcept;

  /// Appends a layer; returns a reference for inline configuration.
  /// Invalidates any previous compile().
  Layer& add(LayerPtr layer);

  /// Convenience: constructs the layer in place.
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    add(std::move(layer));
    return ref;
  }

  /// Surrenders the layer stack (uncompiling first). Pipeline
  /// parallelism uses this to partition one factory-built network into
  /// per-stage sub-networks without re-seeding the parameters.
  std::vector<LayerPtr> release_layers();

  /// Observation hook for gradient-exchange overlap: invoked after each
  /// backward unit completes — per graph node on the compiled path
  /// (first_layer/last_layer spanning fused runs, emitted in the
  /// graph's reverse node order), per layer on the eager path
  /// (first == last). By the time the hook fires, the parameter
  /// gradients of every layer in [first_layer, last_layer] are fully
  /// written for this step, so a collective may start reducing them
  /// while earlier layers are still back-propagating. The hook runs on
  /// the calling thread and must not re-enter this Network. Empty
  /// function detaches.
  using BackwardNodeHook =
      std::function<void(std::size_t first_layer, std::size_t last_layer)>;
  void set_backward_node_hook(BackwardNodeHook hook) {
    backward_hook_ = std::move(hook);
  }

  /// Builds the execution graph for this input shape: shape inference,
  /// graph passes, arena liveness packing, backend binding and plan
  /// warm-up. Throws std::invalid_argument on a shape error.
  /// Re-compiling with a new shape is allowed (the arena is re-planned).
  const CompiledStats& compile(const std::vector<std::int64_t>& input_dims,
                               const CompileOptions& options = {});

  bool compiled() const { return compiled_; }
  const CompiledStats& compiled_stats() const { return stats_; }

  /// The executable graph (empty before compile()).
  const GraphIR& graph() const { return graph_; }

  /// Drops the compiled graph (arena, bindings); eager behaviour only.
  void uncompile();

  /// Escape hatch: when true, forward/backward use the eager loop even
  /// on a compiled network. Differential tests flip this to compare
  /// both paths on one set of weights.
  void set_run_eager(bool run_eager) { run_eager_ = run_eager; }
  bool run_eager() const { return run_eager_; }

  /// The backend context heavy layers dispatch through (null before
  /// compile()); shared or owned per CompileOptions.
  BackendContext* context() { return context_; }

  /// Runs the network. The returned reference is a presized internal
  /// buffer valid until the next forward() (or the Network's death) —
  /// steady-state compiled steps allocate nothing; copy-construct from
  /// it to keep a snapshot.
  const tensor::Tensor& forward(const tensor::Tensor& input);

  /// Backpropagates dLoss/dOutput through every layer; parameter
  /// gradients are left in the layers for the optimizer. Same buffer
  /// contract as forward().
  const tensor::Tensor& backward(const tensor::Tensor& d_output);

  /// All trainable parameters across layers.
  std::vector<ParamGrad> params();

  /// Switches every layer between train and eval behaviour (dropout
  /// masks on/off etc.).
  void set_training(bool training);
  bool training() const { return training_; }

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }

 private:
  const tensor::Tensor& forward_compiled(const tensor::Tensor& input);
  const tensor::Tensor& backward_compiled(const tensor::Tensor& d_output);

  /// Emits one "layer" duration span for a graph node (phase and bytes
  /// in/out encoded in the name) when a tracer is attached.
  void trace_node(std::size_t node_index, const char* phase,
                  std::int64_t bytes_in, std::int64_t bytes_out,
                  std::uint64_t begin_ns, std::uint64_t end_ns);

  std::vector<LayerPtr> layers_;
  bool training_ = true;
  BackwardNodeHook backward_hook_;

  // Compiled-graph state.
  bool compiled_ = false;
  bool run_eager_ = false;
  GraphIR graph_;
  tensor::Arena arena_;
  // Indexed by activation value; only values the optimized graph uses
  // ({0} plus every node's output) carry valid views.
  std::vector<tensor::TensorView> act_views_;
  std::vector<tensor::TensorView> grad_views_;
  CompiledStats stats_;
  BackendContext* context_ = nullptr;
  std::unique_ptr<BackendContext> owned_context_;
  sim::EventTracer* tracer_ = nullptr;
  // Presized result buffers backing the forward()/backward() returns.
  tensor::Tensor forward_result_;
  tensor::Tensor backward_result_;
};

}  // namespace swdnn::dnn
