#include "src/dnn/dropout.h"

#include <stdexcept>

#include "src/runtime/task_pool.h"

namespace swdnn::dnn {

namespace {
constexpr std::int64_t kElemGrain = 4096;

// The mask must be drawn serially — the layer's RNG sequence is part of
// the reproducibility contract — but applying it is elementwise and
// shards freely.
void apply_mask(std::span<const double> in, std::span<const double> m,
                std::span<double> out) {
  runtime::parallel_for(0, static_cast<std::int64_t>(in.size()), kElemGrain,
                        [&](std::int64_t i0, std::int64_t i1) {
                          for (std::int64_t i = i0; i < i1; ++i) {
                            const auto s = static_cast<std::size_t>(i);
                            out[s] = in[s] * m[s];
                          }
                        });
}
}  // namespace

Dropout::Dropout(double drop_probability, std::uint64_t seed)
    : drop_probability_(drop_probability), rng_(seed) {
  if (drop_probability < 0.0 || drop_probability >= 1.0) {
    throw std::invalid_argument("Dropout: probability must be in [0, 1)");
  }
}

tensor::Tensor Dropout::forward(const tensor::Tensor& input) {
  tensor::Tensor out(input.dims());
  mask_ = tensor::Tensor(input.dims());
  auto in = input.data();
  auto m = mask_.data();
  auto o = out.data();
  if (!training_ || drop_probability_ == 0.0) {
    mask_.fill(1.0);
    std::copy(in.begin(), in.end(), o.begin());
    return out;
  }
  const double keep_scale = 1.0 / (1.0 - drop_probability_);
  for (std::size_t i = 0; i < in.size(); ++i) {
    const bool keep = rng_.uniform(0.0, 1.0) >= drop_probability_;
    m[i] = keep ? keep_scale : 0.0;
  }
  apply_mask(in, m, o);
  return out;
}

void Dropout::plan(const std::vector<std::int64_t>& input_dims) {
  mask_ = tensor::Tensor(input_dims);
}

void Dropout::forward_view(const tensor::TensorView& input,
                           tensor::TensorView& output) {
  if (mask_.dims() != input.dims()) mask_ = tensor::Tensor(input.dims());
  auto in = input.data();
  auto m = mask_.data();
  auto o = output.data();
  if (!training_ || drop_probability_ == 0.0) {
    mask_.fill(1.0);
    std::copy(in.begin(), in.end(), o.begin());
    return;
  }
  const double keep_scale = 1.0 / (1.0 - drop_probability_);
  for (std::size_t i = 0; i < in.size(); ++i) {
    const bool keep = rng_.uniform(0.0, 1.0) >= drop_probability_;
    m[i] = keep ? keep_scale : 0.0;
  }
  apply_mask(in, m, o);
}

void Dropout::backward_view(const tensor::TensorView& d_output,
                            tensor::TensorView& d_input) {
  if (d_output.size() != mask_.size()) {
    throw std::invalid_argument("Dropout::backward_view before forward_view");
  }
  apply_mask(d_output.data(), mask_.data(), d_input.data());
}

tensor::Tensor Dropout::backward(const tensor::Tensor& d_output) {
  if (d_output.dims() != mask_.dims()) {
    throw std::invalid_argument("Dropout::backward before forward");
  }
  tensor::Tensor d_input(d_output.dims());
  apply_mask(d_output.data(), mask_.data(), d_input.data());
  return d_input;
}

}  // namespace swdnn::dnn
