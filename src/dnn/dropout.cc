#include "src/dnn/dropout.h"

#include <stdexcept>

namespace swdnn::dnn {

Dropout::Dropout(double drop_probability, std::uint64_t seed)
    : drop_probability_(drop_probability), rng_(seed) {
  if (drop_probability < 0.0 || drop_probability >= 1.0) {
    throw std::invalid_argument("Dropout: probability must be in [0, 1)");
  }
}

tensor::Tensor Dropout::forward(const tensor::Tensor& input) {
  tensor::Tensor out(input.dims());
  mask_ = tensor::Tensor(input.dims());
  auto in = input.data();
  auto m = mask_.data();
  auto o = out.data();
  if (!training_ || drop_probability_ == 0.0) {
    mask_.fill(1.0);
    std::copy(in.begin(), in.end(), o.begin());
    return out;
  }
  const double keep_scale = 1.0 / (1.0 - drop_probability_);
  for (std::size_t i = 0; i < in.size(); ++i) {
    const bool keep = rng_.uniform(0.0, 1.0) >= drop_probability_;
    m[i] = keep ? keep_scale : 0.0;
    o[i] = in[i] * m[i];
  }
  return out;
}

void Dropout::plan(const std::vector<std::int64_t>& input_dims) {
  mask_ = tensor::Tensor(input_dims);
}

void Dropout::forward_view(const tensor::TensorView& input,
                           tensor::TensorView& output) {
  if (mask_.dims() != input.dims()) mask_ = tensor::Tensor(input.dims());
  auto in = input.data();
  auto m = mask_.data();
  auto o = output.data();
  if (!training_ || drop_probability_ == 0.0) {
    mask_.fill(1.0);
    std::copy(in.begin(), in.end(), o.begin());
    return;
  }
  const double keep_scale = 1.0 / (1.0 - drop_probability_);
  for (std::size_t i = 0; i < in.size(); ++i) {
    const bool keep = rng_.uniform(0.0, 1.0) >= drop_probability_;
    m[i] = keep ? keep_scale : 0.0;
    o[i] = in[i] * m[i];
  }
}

void Dropout::backward_view(const tensor::TensorView& d_output,
                            tensor::TensorView& d_input) {
  if (d_output.size() != mask_.size()) {
    throw std::invalid_argument("Dropout::backward_view before forward_view");
  }
  auto g = d_output.data();
  auto m = mask_.data();
  auto o = d_input.data();
  for (std::size_t i = 0; i < g.size(); ++i) o[i] = g[i] * m[i];
}

tensor::Tensor Dropout::backward(const tensor::Tensor& d_output) {
  if (d_output.dims() != mask_.dims()) {
    throw std::invalid_argument("Dropout::backward before forward");
  }
  tensor::Tensor d_input(d_output.dims());
  auto g = d_output.data();
  auto m = mask_.data();
  auto o = d_input.data();
  for (std::size_t i = 0; i < g.size(); ++i) o[i] = g[i] * m[i];
  return d_input;
}

}  // namespace swdnn::dnn
