#include "src/dnn/relu.h"

#include <stdexcept>

#include "src/runtime/task_pool.h"

namespace swdnn::dnn {

namespace {
// Elementwise kernels shard the flat index space; a coarse grain keeps
// the per-chunk closure overhead negligible against the stream.
constexpr std::int64_t kElemGrain = 4096;
}  // namespace

tensor::Tensor Relu::forward(const tensor::Tensor& input) {
  mask_ = tensor::Tensor(input.dims());
  tensor::Tensor out(input.dims());
  auto in = input.data();
  auto m = mask_.data();
  auto o = out.data();
  runtime::parallel_for(
      0, static_cast<std::int64_t>(in.size()), kElemGrain,
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          const bool on = in[static_cast<std::size_t>(i)] > 0.0;
          m[static_cast<std::size_t>(i)] = on ? 1.0 : 0.0;
          o[static_cast<std::size_t>(i)] =
              on ? in[static_cast<std::size_t>(i)] : 0.0;
        }
      });
  return out;
}

void Relu::plan(const std::vector<std::int64_t>& input_dims) {
  mask_ = tensor::Tensor(input_dims);
}

void Relu::forward_view(const tensor::TensorView& input,
                        tensor::TensorView& output) {
  if (mask_.dims() != input.dims()) mask_ = tensor::Tensor(input.dims());
  auto in = input.data();
  auto m = mask_.data();
  auto o = output.data();
  runtime::parallel_for(
      0, static_cast<std::int64_t>(in.size()), kElemGrain,
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          const bool on = in[static_cast<std::size_t>(i)] > 0.0;
          m[static_cast<std::size_t>(i)] = on ? 1.0 : 0.0;
          o[static_cast<std::size_t>(i)] =
              on ? in[static_cast<std::size_t>(i)] : 0.0;
        }
      });
}

void Relu::backward_view(const tensor::TensorView& d_output,
                         tensor::TensorView& d_input) {
  if (d_output.size() != mask_.size()) {
    throw std::invalid_argument("Relu::backward_view before forward_view");
  }
  auto d = d_output.data();
  auto m = mask_.data();
  auto o = d_input.data();
  runtime::parallel_for(
      0, static_cast<std::int64_t>(d.size()), kElemGrain,
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          o[static_cast<std::size_t>(i)] = d[static_cast<std::size_t>(i)] *
                                           m[static_cast<std::size_t>(i)];
        }
      });
}

void Relu::epilogue_forward_inplace(tensor::TensorView& y) {
  if (mask_.size() != y.size()) mask_ = tensor::Tensor(y.dims());
  auto v = y.data();
  auto m = mask_.data();
  runtime::parallel_for(
      0, static_cast<std::int64_t>(v.size()), kElemGrain,
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          const auto s = static_cast<std::size_t>(i);
          const bool on = v[s] > 0.0;
          m[s] = on ? 1.0 : 0.0;
          v[s] = on ? v[s] : 0.0;
        }
      });
}

void Relu::epilogue_backward_inplace(tensor::TensorView& d) {
  if (d.size() != mask_.size()) {
    throw std::invalid_argument("Relu::epilogue_backward before forward");
  }
  auto g = d.data();
  auto m = mask_.data();
  runtime::parallel_for(
      0, static_cast<std::int64_t>(g.size()), kElemGrain,
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          g[static_cast<std::size_t>(i)] *= m[static_cast<std::size_t>(i)];
        }
      });
}

tensor::Tensor Relu::backward(const tensor::Tensor& d_output) {
  if (d_output.dims() != mask_.dims()) {
    throw std::invalid_argument("Relu::backward before forward");
  }
  tensor::Tensor d_input(d_output.dims());
  auto d = d_output.data();
  auto m = mask_.data();
  auto o = d_input.data();
  runtime::parallel_for(
      0, static_cast<std::int64_t>(d.size()), kElemGrain,
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          o[static_cast<std::size_t>(i)] = d[static_cast<std::size_t>(i)] *
                                           m[static_cast<std::size_t>(i)];
        }
      });
  return d_input;
}

}  // namespace swdnn::dnn
