#include "src/dnn/relu.h"

#include <stdexcept>

namespace swdnn::dnn {

tensor::Tensor Relu::forward(const tensor::Tensor& input) {
  mask_ = tensor::Tensor(input.dims());
  tensor::Tensor out(input.dims());
  auto in = input.data();
  auto m = mask_.data();
  auto o = out.data();
  for (std::size_t i = 0; i < in.size(); ++i) {
    const bool on = in[i] > 0.0;
    m[i] = on ? 1.0 : 0.0;
    o[i] = on ? in[i] : 0.0;
  }
  return out;
}

void Relu::plan(const std::vector<std::int64_t>& input_dims) {
  mask_ = tensor::Tensor(input_dims);
}

void Relu::forward_view(const tensor::TensorView& input,
                        tensor::TensorView& output) {
  if (mask_.dims() != input.dims()) mask_ = tensor::Tensor(input.dims());
  auto in = input.data();
  auto m = mask_.data();
  auto o = output.data();
  for (std::size_t i = 0; i < in.size(); ++i) {
    const bool on = in[i] > 0.0;
    m[i] = on ? 1.0 : 0.0;
    o[i] = on ? in[i] : 0.0;
  }
}

void Relu::backward_view(const tensor::TensorView& d_output,
                         tensor::TensorView& d_input) {
  if (d_output.size() != mask_.size()) {
    throw std::invalid_argument("Relu::backward_view before forward_view");
  }
  auto d = d_output.data();
  auto m = mask_.data();
  auto o = d_input.data();
  for (std::size_t i = 0; i < d.size(); ++i) o[i] = d[i] * m[i];
}

tensor::Tensor Relu::backward(const tensor::Tensor& d_output) {
  if (d_output.dims() != mask_.dims()) {
    throw std::invalid_argument("Relu::backward before forward");
  }
  tensor::Tensor d_input(d_output.dims());
  auto d = d_output.data();
  auto m = mask_.data();
  auto o = d_input.data();
  for (std::size_t i = 0; i < d.size(); ++i) o[i] = d[i] * m[i];
  return d_input;
}

}  // namespace swdnn::dnn
