#pragma once
// Layer interface for the swDNN training stack.
//
// The paper positions swDNN as a library "to accelerate deep learning
// applications (especially focused on the training part)", so layers
// implement forward AND backward. Data layout between image layers is
// the canonical [R][C][N][B]; classifier layers view activations as
// [features][B] (the row-major flatten of the first three dims).
//
// Layers participate in two execution regimes:
//   * Eager: forward(Tensor) / backward(Tensor), one fresh output tensor
//     per call — the seed behaviour, kept as the differential baseline.
//   * Compiled: Network::compile() drives infer_shape -> plan -> bind
//     once, then steady-state steps call forward_view/backward_view on
//     arena-backed TensorViews. The default view hooks adapt the eager
//     implementations, so simple layers get the compiled path for free;
//     heavy layers (conv, FC) override them to dispatch through the
//     shared BackendContext and to run allocation-free.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/tensor/arena.h"
#include "src/tensor/tensor.h"

namespace swdnn::dnn {

class BackendContext;

/// A trainable parameter with its gradient, as exposed to optimizers.
struct ParamGrad {
  tensor::Tensor* param = nullptr;
  tensor::Tensor* grad = nullptr;
};

class Layer {
 public:
  virtual ~Layer() = default;

  virtual std::string name() const = 0;

  /// Computes the layer output; caches whatever backward() needs.
  virtual tensor::Tensor forward(const tensor::Tensor& input) = 0;

  /// Given dLoss/dOutput, accumulates parameter gradients (zeroed at
  /// the start of each call) and returns dLoss/dInput.
  virtual tensor::Tensor backward(const tensor::Tensor& d_output) = 0;

  /// Trainable parameters (empty for activation/pooling layers).
  virtual std::vector<ParamGrad> params() { return {}; }

  /// Train/eval mode switch. Most layers ignore it; stochastic layers
  /// (Dropout) change behaviour. Network::set_training fans it out.
  virtual void set_mode(bool training) { (void)training; }

  // --- compile-time hooks -------------------------------------------

  /// Output dims for the given input dims; throws std::invalid_argument
  /// when the input shape is unacceptable. Default: shape-preserving
  /// (correct for activations, dropout, LRN, softmax).
  virtual std::vector<std::int64_t> infer_shape(
      const std::vector<std::int64_t>& input_dims);

  /// Whether backward() re-reads the *input* activation (conv, FC). The
  /// liveness planner extends the input tensor's lifetime to this
  /// layer's backward step only when true; layers that cache what they
  /// need internally (relu mask, pool argmax, softmax output) leave it
  /// false so their inputs die early and the arena can reuse the bytes.
  virtual bool backward_needs_input() const { return false; }

  /// Binds the layer to the shared backend context. Called once per
  /// compile, before plan(). Default: no-op (host-only layers).
  virtual void bind(BackendContext* context) { (void)context; }

  /// One-time shape-specific preparation: presize internal caches, warm
  /// the backend plan cache. Called once per compile with the layer's
  /// input dims. Default: no-op.
  virtual void plan(const std::vector<std::int64_t>& input_dims) {
    (void)input_dims;
  }

  // --- compiled execution -------------------------------------------

  /// Compiled forward: read `input`, write `output` (both arena views).
  /// Default adapts the eager forward (copies in/out) so every layer is
  /// compilable; overrides run in place without allocating.
  virtual void forward_view(const tensor::TensorView& input,
                            tensor::TensorView& output);

  /// Compiled backward: read `d_output`, write `d_input`, accumulate
  /// parameter gradients. Default adapts the eager backward.
  virtual void backward_view(const tensor::TensorView& d_output,
                             tensor::TensorView& d_input);

  // --- graph-fusion hooks -------------------------------------------
  //
  // The graph compiler (graph_ir.h) collapses producer+epilogue layer
  // pairs into one node and elides zero-pad copies. Layers opt in via
  // the predicates; the fused execution entry points are only called on
  // layers whose predicate returned true, after bind()/plan().

  /// True when the compiled path can fold a following epilogue layer
  /// into this layer's backend dispatch (conv/FC on the API route).
  virtual bool supports_fused_epilogue() const { return false; }

  /// True when this layer can ride as the epilogue of a preceding
  /// supports_fused_epilogue() producer: elementwise over the
  /// producer's output, backward state cached internally.
  virtual bool is_fusible_epilogue() const { return false; }

  /// Mask-based epilogues (ReLU) expose their presized mask buffer so
  /// the producer's single backend dispatch can fill it in the same
  /// pass. nullptr = the fused node runs epilogue_forward_inplace after
  /// the linear call instead (tanh, sigmoid). Valid only after plan().
  virtual double* epilogue_mask_data() { return nullptr; }

  /// Applies this epilogue in place over the producer's output view,
  /// caching whatever backward needs. Only meaningful on
  /// is_fusible_epilogue() layers; default throws.
  virtual void epilogue_forward_inplace(tensor::TensorView& y);

  /// In-place epilogue backward: transforms dLoss/dEpilogueOut into
  /// dLoss/dLinearOut using the cached state. Default throws.
  virtual void epilogue_backward_inplace(tensor::TensorView& d);

  /// True for zero-padding layers whose compiled output slot the graph
  /// compiler pins and fills by interior copy (borders zeroed once at
  /// compile), eliding the per-step full-tensor zero pass.
  virtual bool is_elidable_pad() const { return false; }

  /// Elided-pad compiled forward: write only the interior; the graph
  /// executor guarantees the output slot's borders are already zero and
  /// never reused within a step. Default falls back to forward_view.
  virtual void forward_view_elided(const tensor::TensorView& input,
                                   tensor::TensorView& output) {
    forward_view(input, output);
  }

  /// Fused compiled forward: this layer's op plus `epilogue` in one
  /// dispatch. Only called when supports_fused_epilogue(); default
  /// throws.
  virtual void forward_view_fused(const tensor::TensorView& input,
                                  tensor::TensorView& output,
                                  Layer& epilogue);

  /// Fused compiled backward. `d_output` is clobbered in place (the
  /// epilogue's backward runs through it first); safe because the graph
  /// executor visits nodes in reverse order, so that gradient value is
  /// dead once this call returns.
  virtual void backward_view_fused(tensor::TensorView& d_output,
                                   tensor::TensorView& d_input,
                                   Layer& epilogue);
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace swdnn::dnn
