#pragma once
// Layer interface for the swDNN training stack.
//
// The paper positions swDNN as a library "to accelerate deep learning
// applications (especially focused on the training part)", so layers
// implement forward AND backward. Data layout between image layers is
// the canonical [R][C][N][B]; classifier layers view activations as
// [features][B] (the row-major flatten of the first three dims).

#include <memory>
#include <string>
#include <vector>

#include "src/tensor/tensor.h"

namespace swdnn::dnn {

/// A trainable parameter with its gradient, as exposed to optimizers.
struct ParamGrad {
  tensor::Tensor* param = nullptr;
  tensor::Tensor* grad = nullptr;
};

class Layer {
 public:
  virtual ~Layer() = default;

  virtual std::string name() const = 0;

  /// Computes the layer output; caches whatever backward() needs.
  virtual tensor::Tensor forward(const tensor::Tensor& input) = 0;

  /// Given dLoss/dOutput, accumulates parameter gradients (zeroed at
  /// the start of each call) and returns dLoss/dInput.
  virtual tensor::Tensor backward(const tensor::Tensor& d_output) = 0;

  /// Trainable parameters (empty for activation/pooling layers).
  virtual std::vector<ParamGrad> params() { return {}; }

  /// Train/eval mode switch. Most layers ignore it; stochastic layers
  /// (Dropout) change behaviour. Network::set_training fans it out.
  virtual void set_mode(bool training) { (void)training; }
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace swdnn::dnn
