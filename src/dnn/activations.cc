#include "src/dnn/activations.h"

#include <cmath>
#include <stdexcept>

#include "src/runtime/task_pool.h"

namespace swdnn::dnn {

namespace {
constexpr std::int64_t kElemGrain = 4096;

template <typename Fn>
void elementwise(std::span<const double> in, std::span<double> out, Fn fn) {
  runtime::parallel_for(0, static_cast<std::int64_t>(in.size()), kElemGrain,
                        [&](std::int64_t i0, std::int64_t i1) {
                          for (std::int64_t i = i0; i < i1; ++i) {
                            const auto s = static_cast<std::size_t>(i);
                            out[s] = fn(in[s]);
                          }
                        });
}

template <typename Fn>
void elementwise2(std::span<const double> g, std::span<const double> y,
                  std::span<double> out, Fn fn) {
  runtime::parallel_for(0, static_cast<std::int64_t>(g.size()), kElemGrain,
                        [&](std::int64_t i0, std::int64_t i1) {
                          for (std::int64_t i = i0; i < i1; ++i) {
                            const auto s = static_cast<std::size_t>(i);
                            out[s] = fn(g[s], y[s]);
                          }
                        });
}
}  // namespace

tensor::Tensor Tanh::forward(const tensor::Tensor& input) {
  cached_output_ = tensor::Tensor(input.dims());
  elementwise(input.data(), cached_output_.data(),
              [](double x) { return std::tanh(x); });
  return cached_output_;
}

tensor::Tensor Tanh::backward(const tensor::Tensor& d_output) {
  if (d_output.dims() != cached_output_.dims()) {
    throw std::invalid_argument("Tanh::backward before forward");
  }
  tensor::Tensor d_input(d_output.dims());
  elementwise2(d_output.data(), cached_output_.data(), d_input.data(),
               [](double g, double y) { return g * (1.0 - y * y); });
  return d_input;
}

tensor::Tensor Sigmoid::forward(const tensor::Tensor& input) {
  cached_output_ = tensor::Tensor(input.dims());
  elementwise(input.data(), cached_output_.data(),
              [](double x) { return 1.0 / (1.0 + std::exp(-x)); });
  return cached_output_;
}

tensor::Tensor Sigmoid::backward(const tensor::Tensor& d_output) {
  if (d_output.dims() != cached_output_.dims()) {
    throw std::invalid_argument("Sigmoid::backward before forward");
  }
  tensor::Tensor d_input(d_output.dims());
  elementwise2(d_output.data(), cached_output_.data(), d_input.data(),
               [](double g, double y) { return g * y * (1.0 - y); });
  return d_input;
}

}  // namespace swdnn::dnn
