#include "src/dnn/activations.h"

#include <cmath>
#include <stdexcept>

namespace swdnn::dnn {

tensor::Tensor Tanh::forward(const tensor::Tensor& input) {
  cached_output_ = tensor::Tensor(input.dims());
  auto in = input.data();
  auto out = cached_output_.data();
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = std::tanh(in[i]);
  return cached_output_;
}

tensor::Tensor Tanh::backward(const tensor::Tensor& d_output) {
  if (d_output.dims() != cached_output_.dims()) {
    throw std::invalid_argument("Tanh::backward before forward");
  }
  tensor::Tensor d_input(d_output.dims());
  auto g = d_output.data();
  auto y = cached_output_.data();
  auto out = d_input.data();
  for (std::size_t i = 0; i < g.size(); ++i) {
    out[i] = g[i] * (1.0 - y[i] * y[i]);
  }
  return d_input;
}

tensor::Tensor Sigmoid::forward(const tensor::Tensor& input) {
  cached_output_ = tensor::Tensor(input.dims());
  auto in = input.data();
  auto out = cached_output_.data();
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = 1.0 / (1.0 + std::exp(-in[i]));
  }
  return cached_output_;
}

tensor::Tensor Sigmoid::backward(const tensor::Tensor& d_output) {
  if (d_output.dims() != cached_output_.dims()) {
    throw std::invalid_argument("Sigmoid::backward before forward");
  }
  tensor::Tensor d_input(d_output.dims());
  auto g = d_output.data();
  auto y = cached_output_.data();
  auto out = d_input.data();
  for (std::size_t i = 0; i < g.size(); ++i) {
    out[i] = g[i] * y[i] * (1.0 - y[i]);
  }
  return d_input;
}

}  // namespace swdnn::dnn
