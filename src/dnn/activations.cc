#include "src/dnn/activations.h"

#include <cmath>
#include <stdexcept>

#include "src/runtime/task_pool.h"

namespace swdnn::dnn {

namespace {
constexpr std::int64_t kElemGrain = 4096;

template <typename Fn>
void elementwise(std::span<const double> in, std::span<double> out, Fn fn) {
  runtime::parallel_for(0, static_cast<std::int64_t>(in.size()), kElemGrain,
                        [&](std::int64_t i0, std::int64_t i1) {
                          for (std::int64_t i = i0; i < i1; ++i) {
                            const auto s = static_cast<std::size_t>(i);
                            out[s] = fn(in[s]);
                          }
                        });
}

template <typename Fn>
void elementwise2(std::span<const double> g, std::span<const double> y,
                  std::span<double> out, Fn fn) {
  runtime::parallel_for(0, static_cast<std::int64_t>(g.size()), kElemGrain,
                        [&](std::int64_t i0, std::int64_t i1) {
                          for (std::int64_t i = i0; i < i1; ++i) {
                            const auto s = static_cast<std::size_t>(i);
                            out[s] = fn(g[s], y[s]);
                          }
                        });
}
/// In-place activation over a view, caching y into `cache` (presized by
/// plan(); resized defensively otherwise).
template <typename Fn>
void activate_inplace(tensor::TensorView& y, tensor::Tensor& cache, Fn fn) {
  if (cache.size() != y.size()) cache = tensor::Tensor(y.dims());
  auto v = y.data();
  auto c = cache.data();
  runtime::parallel_for(0, static_cast<std::int64_t>(v.size()), kElemGrain,
                        [&](std::int64_t i0, std::int64_t i1) {
                          for (std::int64_t i = i0; i < i1; ++i) {
                            const auto s = static_cast<std::size_t>(i);
                            const double out = fn(v[s]);
                            c[s] = out;
                            v[s] = out;
                          }
                        });
}

/// In-place gradient transform d = fn(d, y) over a view.
template <typename Fn>
void grad_inplace(tensor::TensorView& d, const tensor::Tensor& cache,
                  Fn fn) {
  auto g = d.data();
  auto y = cache.data();
  runtime::parallel_for(0, static_cast<std::int64_t>(g.size()), kElemGrain,
                        [&](std::int64_t i0, std::int64_t i1) {
                          for (std::int64_t i = i0; i < i1; ++i) {
                            const auto s = static_cast<std::size_t>(i);
                            g[s] = fn(g[s], y[s]);
                          }
                        });
}

}  // namespace

tensor::Tensor Tanh::forward(const tensor::Tensor& input) {
  cached_output_ = tensor::Tensor(input.dims());
  elementwise(input.data(), cached_output_.data(),
              [](double x) { return std::tanh(x); });
  return cached_output_;
}

tensor::Tensor Tanh::backward(const tensor::Tensor& d_output) {
  if (d_output.dims() != cached_output_.dims()) {
    throw std::invalid_argument("Tanh::backward before forward");
  }
  tensor::Tensor d_input(d_output.dims());
  elementwise2(d_output.data(), cached_output_.data(), d_input.data(),
               [](double g, double y) { return g * (1.0 - y * y); });
  return d_input;
}

void Tanh::plan(const std::vector<std::int64_t>& input_dims) {
  cached_output_ = tensor::Tensor(input_dims);
}

void Tanh::forward_view(const tensor::TensorView& input,
                        tensor::TensorView& output) {
  if (cached_output_.size() != input.size()) {
    cached_output_ = tensor::Tensor(input.dims());
  }
  elementwise(input.data(), cached_output_.data(),
              [](double x) { return std::tanh(x); });
  std::copy(cached_output_.data().begin(), cached_output_.data().end(),
            output.data().begin());
}

void Tanh::backward_view(const tensor::TensorView& d_output,
                         tensor::TensorView& d_input) {
  if (d_output.size() != cached_output_.size()) {
    throw std::invalid_argument("Tanh::backward_view before forward_view");
  }
  elementwise2(d_output.data(), cached_output_.data(), d_input.data(),
               [](double g, double y) { return g * (1.0 - y * y); });
}

void Tanh::epilogue_forward_inplace(tensor::TensorView& y) {
  activate_inplace(y, cached_output_,
                   [](double x) { return std::tanh(x); });
}

void Tanh::epilogue_backward_inplace(tensor::TensorView& d) {
  if (d.size() != cached_output_.size()) {
    throw std::invalid_argument("Tanh::epilogue_backward before forward");
  }
  grad_inplace(d, cached_output_,
               [](double g, double y) { return g * (1.0 - y * y); });
}

tensor::Tensor Sigmoid::forward(const tensor::Tensor& input) {
  cached_output_ = tensor::Tensor(input.dims());
  elementwise(input.data(), cached_output_.data(),
              [](double x) { return 1.0 / (1.0 + std::exp(-x)); });
  return cached_output_;
}

tensor::Tensor Sigmoid::backward(const tensor::Tensor& d_output) {
  if (d_output.dims() != cached_output_.dims()) {
    throw std::invalid_argument("Sigmoid::backward before forward");
  }
  tensor::Tensor d_input(d_output.dims());
  elementwise2(d_output.data(), cached_output_.data(), d_input.data(),
               [](double g, double y) { return g * y * (1.0 - y); });
  return d_input;
}

void Sigmoid::plan(const std::vector<std::int64_t>& input_dims) {
  cached_output_ = tensor::Tensor(input_dims);
}

void Sigmoid::forward_view(const tensor::TensorView& input,
                           tensor::TensorView& output) {
  if (cached_output_.size() != input.size()) {
    cached_output_ = tensor::Tensor(input.dims());
  }
  elementwise(input.data(), cached_output_.data(),
              [](double x) { return 1.0 / (1.0 + std::exp(-x)); });
  std::copy(cached_output_.data().begin(), cached_output_.data().end(),
            output.data().begin());
}

void Sigmoid::backward_view(const tensor::TensorView& d_output,
                            tensor::TensorView& d_input) {
  if (d_output.size() != cached_output_.size()) {
    throw std::invalid_argument("Sigmoid::backward_view before forward_view");
  }
  elementwise2(d_output.data(), cached_output_.data(), d_input.data(),
               [](double g, double y) { return g * y * (1.0 - y); });
}

void Sigmoid::epilogue_forward_inplace(tensor::TensorView& y) {
  activate_inplace(y, cached_output_,
                   [](double x) { return 1.0 / (1.0 + std::exp(-x)); });
}

void Sigmoid::epilogue_backward_inplace(tensor::TensorView& d) {
  if (d.size() != cached_output_.size()) {
    throw std::invalid_argument("Sigmoid::epilogue_backward before forward");
  }
  grad_inplace(d, cached_output_,
               [](double g, double y) { return g * y * (1.0 - y); });
}

}  // namespace swdnn::dnn
