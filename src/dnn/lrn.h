#pragma once
// Local Response Normalization across channels (AlexNet-era):
//   y[n] = x[n] / (k + alpha/size * sum_{m in window(n)} x[m]^2)^beta
// over [R][C][N][B] activations, window centered on the channel axis.

#include "src/dnn/layer.h"

namespace swdnn::dnn {

class Lrn : public Layer {
 public:
  explicit Lrn(std::int64_t size = 5, double alpha = 1e-4,
               double beta = 0.75, double k = 2.0);

  std::string name() const override { return "lrn"; }
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& d_output) override;

 private:
  std::int64_t size_;
  double alpha_, beta_, k_;
  tensor::Tensor cached_input_;
  tensor::Tensor cached_scale_;  ///< k + alpha/size * window sum of squares
};

}  // namespace swdnn::dnn
