#include "src/dnn/padding.h"

#include <stdexcept>

#include "src/runtime/task_pool.h"

namespace swdnn::dnn {

ZeroPad2d::ZeroPad2d(std::int64_t top, std::int64_t bottom, std::int64_t left,
                     std::int64_t right)
    : top_(top), bottom_(bottom), left_(left), right_(right) {
  if (top < 0 || bottom < 0 || left < 0 || right < 0) {
    throw std::invalid_argument("ZeroPad2d: negative padding");
  }
}

tensor::Tensor ZeroPad2d::forward(const tensor::Tensor& input) {
  if (input.rank() != 4) {
    throw std::invalid_argument("ZeroPad2d: expects [R][C][N][B]");
  }
  input_dims_ = input.dims();
  tensor::Tensor out({input.dim(0) + top_ + bottom_,
                      input.dim(1) + left_ + right_, input.dim(2),
                      input.dim(3)});
  runtime::parallel_for(
      0, input.dim(0), 1, [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r)
          for (std::int64_t c = 0; c < input.dim(1); ++c)
            for (std::int64_t n = 0; n < input.dim(2); ++n)
              for (std::int64_t b = 0; b < input.dim(3); ++b)
                out.at(r + top_, c + left_, n, b) = input.at(r, c, n, b);
      });
  return out;
}

std::vector<std::int64_t> ZeroPad2d::infer_shape(
    const std::vector<std::int64_t>& input_dims) {
  if (input_dims.size() != 4) {
    throw std::invalid_argument("ZeroPad2d: expects [R][C][N][B]");
  }
  return {input_dims[0] + top_ + bottom_, input_dims[1] + left_ + right_,
          input_dims[2], input_dims[3]};
}

void ZeroPad2d::copy_interior(const tensor::TensorView& input,
                              tensor::TensorView& output, std::int64_t top,
                              std::int64_t left) {
  runtime::parallel_for(
      0, input.dim(0), 1, [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r)
          for (std::int64_t c = 0; c < input.dim(1); ++c)
            for (std::int64_t n = 0; n < input.dim(2); ++n)
              for (std::int64_t b = 0; b < input.dim(3); ++b)
                output.at(r + top, c + left, n, b) = input.at(r, c, n, b);
      });
}

void ZeroPad2d::forward_view(const tensor::TensorView& input,
                             tensor::TensorView& output) {
  input_dims_ = input.dims();
  output.zero();
  copy_interior(input, output, top_, left_);
}

void ZeroPad2d::forward_view_elided(const tensor::TensorView& input,
                                    tensor::TensorView& output) {
  // Borders were zeroed once at compile and the slot is pinned, so
  // only the interior needs refreshing per step.
  input_dims_ = input.dims();
  copy_interior(input, output, top_, left_);
}

void ZeroPad2d::backward_view(const tensor::TensorView& d_output,
                              tensor::TensorView& d_input) {
  runtime::parallel_for(
      0, d_input.dim(0), 1, [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r)
          for (std::int64_t c = 0; c < d_input.dim(1); ++c)
            for (std::int64_t n = 0; n < d_input.dim(2); ++n)
              for (std::int64_t b = 0; b < d_input.dim(3); ++b)
                d_input.at(r, c, n, b) =
                    d_output.at(r + top_, c + left_, n, b);
      });
}

tensor::Tensor ZeroPad2d::backward(const tensor::Tensor& d_output) {
  if (input_dims_.empty()) {
    throw std::invalid_argument("ZeroPad2d::backward before forward");
  }
  tensor::Tensor d_input(input_dims_);
  runtime::parallel_for(
      0, d_input.dim(0), 1, [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r)
          for (std::int64_t c = 0; c < d_input.dim(1); ++c)
            for (std::int64_t n = 0; n < d_input.dim(2); ++n)
              for (std::int64_t b = 0; b < d_input.dim(3); ++b)
                d_input.at(r, c, n, b) =
                    d_output.at(r + top_, c + left_, n, b);
      });
  return d_input;
}

}  // namespace swdnn::dnn
