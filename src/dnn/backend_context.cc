#include "src/dnn/backend_context.h"

namespace swdnn::dnn {

namespace {

/// Descriptor triple for a stride-1 ConvShape; throws on stride != 1,
/// the one corner of the layer configuration space the API boundary
/// does not cover (strided conv layers keep the eager kernels).
struct ConvDescriptors {
  api::TensorDescriptor x, y;
  api::FilterDescriptor w;
};

ConvDescriptors descriptors_for(const conv::ConvShape& shape) {
  if (shape.stride_r != 1 || shape.stride_c != 1) {
    throw std::invalid_argument(
        "BackendContext: the API boundary is stride-1 only (shape " +
        shape.to_string() + ")");
  }
  ConvDescriptors d;
  if (api::set_tensor4d_descriptor(d.x, shape.ri, shape.ci, shape.ni,
                                   shape.batch) != api::Status::kSuccess ||
      api::set_filter_descriptor(d.w, shape.kr, shape.kc, shape.ni,
                                 shape.no) != api::Status::kSuccess ||
      api::get_convolution_output_descriptor(d.x, d.w, d.y) !=
          api::Status::kSuccess) {
    throw std::invalid_argument("BackendContext: invalid conv shape " +
                                shape.to_string());
  }
  return d;
}

}  // namespace

BackendContext::BackendContext(const arch::Sw26010Spec* spec) {
  if (api::create(&handle_, spec) != api::Status::kSuccess) {
    throw std::runtime_error("BackendContext: api::create failed");
  }
}

BackendContext::~BackendContext() {
  if (handle_ != nullptr) api::destroy(handle_);
}

conv::ConvShape BackendContext::fc_shape(std::int64_t in_features,
                                         std::int64_t out_features,
                                         std::int64_t batch) {
  conv::ConvShape shape;
  shape.batch = batch;
  shape.ni = in_features;
  shape.no = out_features;
  shape.ri = 1;
  shape.ci = 1;
  shape.kr = 1;
  shape.kc = 1;
  return shape;
}

void BackendContext::warm_conv_plan(const conv::ConvShape& shape) {
  const ConvDescriptors d = descriptors_for(shape);
  const api::Status s = api::convolution_plan_warmup(handle_, d.x, d.w);
  if (s != api::Status::kSuccess) {
    throw BackendError(s, std::string("plan warm-up failed: ") +
                              api::last_error_message(handle_));
  }
}

void BackendContext::conv_forward(const conv::ConvShape& shape,
                                  const double* x, const double* w,
                                  double* y) {
  const ConvDescriptors d = descriptors_for(shape);
  const api::Status s =
      api::convolution_forward(handle_, d.x, x, d.w, w, d.y, y);
  if (s != api::Status::kSuccess) {
    throw BackendError(s, std::string("convolution_forward: ") +
                              api::status_string(s) + ": " +
                              api::last_error_message(handle_));
  }
}

void BackendContext::conv_forward_fused(const conv::ConvShape& shape,
                                        const double* x, const double* w,
                                        double* y, const double* bias,
                                        double* relu_mask) {
  const ConvDescriptors d = descriptors_for(shape);
  api::ConvolutionEpilogue epilogue;
  epilogue.bias = bias;
  epilogue.relu_mask = relu_mask;
  const api::Status s =
      api::convolution_forward_ex(handle_, d.x, x, d.w, w, d.y, y, &epilogue);
  if (s != api::Status::kSuccess) {
    throw BackendError(s, std::string("convolution_forward_ex: ") +
                              api::status_string(s) + ": " +
                              api::last_error_message(handle_));
  }
}

void BackendContext::conv_backward_data(const conv::ConvShape& shape,
                                        const double* w, const double* dy,
                                        double* dx) {
  const ConvDescriptors d = descriptors_for(shape);
  const api::Status s =
      api::convolution_backward_data(handle_, d.w, w, d.y, dy, d.x, dx);
  if (s != api::Status::kSuccess) {
    throw BackendError(s, std::string("convolution_backward_data: ") +
                              api::status_string(s) + ": " +
                              api::last_error_message(handle_));
  }
}

void BackendContext::conv_backward_filter(const conv::ConvShape& shape,
                                          const double* x, const double* dy,
                                          double* dw) {
  const ConvDescriptors d = descriptors_for(shape);
  const api::Status s =
      api::convolution_backward_filter(handle_, d.x, x, d.y, dy, d.w, dw);
  if (s != api::Status::kSuccess) {
    throw BackendError(s, std::string("convolution_backward_filter: ") +
                              api::status_string(s) + ": " +
                              api::last_error_message(handle_));
  }
}

void BackendContext::set_event_tracer(sim::EventTracer* tracer) {
  api::set_event_tracer(handle_, tracer);
}

void BackendContext::set_fault_plan(const sim::FaultPlan* plan) {
  api::set_fault_plan(handle_, plan);
}

void BackendContext::set_retry_policy(int max_attempts,
                                      std::uint64_t backoff_cycles) {
  api::set_retry_policy(handle_, max_attempts, backoff_cycles);
}

void BackendContext::set_autotune(bool enable) {
  api::set_autotune(handle_, enable);
}

api::PlanCacheCounters BackendContext::plan_cache_counters() const {
  api::PlanCacheCounters counters;
  api::plan_cache_counters(handle_, &counters);
  return counters;
}

api::FaultCounters BackendContext::fault_counters() const {
  api::FaultCounters counters;
  api::fault_counters(handle_, &counters);
  return counters;
}

api::ExecutionRoute BackendContext::last_execution_route() const {
  return api::last_execution_route(handle_);
}

std::string BackendContext::last_error_message() const {
  return api::last_error_message(handle_);
}

std::uint64_t BackendContext::autotuned_shapes() const {
  return api::autotuned_shapes(handle_);
}

}  // namespace swdnn::dnn
