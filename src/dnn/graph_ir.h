#pragma once
// Graph IR for compiled networks.
//
// Network::compile lowers the layer vector into a chain of graph nodes
// and runs a small pass pipeline over it before liveness planning — the
// swTVM move of treating the model as an IR to optimize rather than a
// list to walk:
//
//   * epilogue fusion: a conv/FC producer followed by an elementwise
//     activation collapses into ONE node that dispatches a single
//     backend call with a fused epilogue (bias + activation applied
//     while the output is hot). The intermediate activation value
//     disappears from the graph, so the arena never materializes it.
//   * pad elision: a zero-pad node keeps its output slot pinned for the
//     whole step; the borders are zeroed once at compile and each step
//     writes only the interior, eliding the per-step full-tensor zero.
//
// Passes never change results: fused arithmetic is element-for-element
// the unfused layers' (the differential suite asserts bitwise equality
// against eager), and a pattern that cannot be proven safe (strided
// conv off the API route, non-adjacent pairs) is simply left unfused.

#include <cstddef>
#include <string>
#include <vector>

#include "src/dnn/layer.h"

namespace swdnn::sim {
class EventTracer;
}  // namespace swdnn::sim

namespace swdnn::dnn {

enum class NodeKind {
  kSingle,        ///< one layer, dispatched via forward_view
  kFusedConvAct,  ///< conv + activation epilogue, one backend call
  kFusedFcAct,    ///< FC + activation epilogue, one backend call
  kElidedPad,     ///< zero-pad with pinned output slot, interior-only copy
};

/// One executable node: a contiguous run of layers [first_layer,
/// last_layer] (inclusive; a range only for fused nodes) consuming
/// activation value `input_value` and producing `output_value`. Values
/// are indexed like Network's activation list: value v is the output of
/// layer v-1, value 0 the network input — fusion removes the interior
/// value of a collapsed pair from the graph entirely.
struct GraphNode {
  NodeKind kind = NodeKind::kSingle;
  std::size_t first_layer = 0;
  std::size_t last_layer = 0;
  std::string name;  ///< "conv#0" or "conv#0+relu#1" for fused nodes
  std::size_t input_value = 0;
  std::size_t output_value = 0;

  bool fused() const { return last_layer != first_layer; }
};

/// What the pass pipeline did, surfaced through CompiledStats.
struct PassStats {
  std::size_t fused_conv_act = 0;
  std::size_t fused_fc_act = 0;
  std::size_t elided_pads = 0;
};

class GraphIR {
 public:
  /// Lowers the layer vector into the initial one-node-per-layer chain.
  void build(const std::vector<LayerPtr>& layers);

  /// Runs the pass pipeline over the built graph. `fuse` = false leaves
  /// the chain untouched (the no-pass compiled baseline). Emits one
  /// "fusion" trace instant per pass application when `tracer` is set.
  void run_passes(const std::vector<LayerPtr>& layers,
                  sim::EventTracer* tracer, bool fuse);

  const std::vector<GraphNode>& nodes() const { return nodes_; }
  const PassStats& stats() const { return stats_; }

  void clear();

 private:
  void fuse_epilogues(const std::vector<LayerPtr>& layers,
                      sim::EventTracer* tracer);
  void elide_pads(const std::vector<LayerPtr>& layers,
                  sim::EventTracer* tracer);

  std::vector<GraphNode> nodes_;
  PassStats stats_;
};

}  // namespace swdnn::dnn
