#pragma once
// Stochastic gradient descent with optional momentum.

#include <vector>

#include "src/dnn/layer.h"

namespace swdnn::dnn {

class Sgd {
 public:
  explicit Sgd(double learning_rate, double momentum = 0.0);

  /// Applies one update: v = mu*v - lr*g; p += v (plain p -= lr*g when
  /// momentum is zero). Velocity buffers are keyed by parameter pointer
  /// and created lazily.
  void step(const std::vector<ParamGrad>& params);

  double learning_rate() const { return learning_rate_; }
  void set_learning_rate(double lr) { learning_rate_ = lr; }

  /// Copies velocity buffers from another optimizer, mapping parameters
  /// by position (`params` and `other_params` must describe identically
  /// structured networks). A revived data-parallel replica uses this to
  /// rejoin the ring in exact lockstep even with momentum enabled.
  void copy_state_from(const Sgd& other,
                       const std::vector<ParamGrad>& params,
                       const std::vector<ParamGrad>& other_params);

 private:
  double learning_rate_;
  double momentum_;
  std::vector<std::pair<tensor::Tensor*, tensor::Tensor>> velocity_;

  tensor::Tensor& velocity_for(tensor::Tensor* param);
};

}  // namespace swdnn::dnn
