#pragma once
// Column-wise softmax over [classes][B] logits.

#include "src/dnn/layer.h"

namespace swdnn::dnn {

/// Numerically-stable softmax; usable standalone or through the fused
/// SoftmaxCrossEntropy loss (which bypasses this layer's backward).
class Softmax : public Layer {
 public:
  std::string name() const override { return "softmax"; }
  tensor::Tensor forward(const tensor::Tensor& logits) override;
  tensor::Tensor backward(const tensor::Tensor& d_output) override;

 private:
  tensor::Tensor cached_output_;
};

/// Free-function softmax used by the loss.
tensor::Tensor softmax_columns(const tensor::Tensor& logits);

}  // namespace swdnn::dnn
