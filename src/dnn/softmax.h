#pragma once
// Column-wise softmax over [classes][B] logits.

#include "src/dnn/layer.h"

namespace swdnn::dnn {

/// Numerically-stable softmax; usable standalone or through the fused
/// SoftmaxCrossEntropy loss (which bypasses this layer's backward).
class Softmax : public Layer {
 public:
  std::string name() const override { return "softmax"; }
  tensor::Tensor forward(const tensor::Tensor& logits) override;
  tensor::Tensor backward(const tensor::Tensor& d_output) override;

  // Compiled path: the output cache is presized at plan() time;
  // backward reads only the cached probabilities, so the logits die
  // right after this layer's forward.
  std::vector<std::int64_t> infer_shape(
      const std::vector<std::int64_t>& input_dims) override;
  void plan(const std::vector<std::int64_t>& input_dims) override;
  void forward_view(const tensor::TensorView& input,
                    tensor::TensorView& output) override;
  void backward_view(const tensor::TensorView& d_output,
                     tensor::TensorView& d_input) override;

 private:
  tensor::Tensor cached_output_;
};

/// Free-function softmax used by the loss.
tensor::Tensor softmax_columns(const tensor::Tensor& logits);

}  // namespace swdnn::dnn
