#pragma once
// Fully-connected layer over [features][B] activations (the paper's
// classifier stage). A rank-4 [R][C][N][B] input is accepted and viewed
// as [R*C*N][B] — row-major flattening is exactly that reshape.

#include "src/dnn/layer.h"
#include "src/util/rng.h"

namespace swdnn::dnn {

enum class FcBackend {
  kHostGemm,       ///< blocked GEMM on the host
  kSimulatedMesh,  ///< the distributed LDM-GEMM on the SW26010 simulator
};

class FullyConnected : public Layer {
 public:
  FullyConnected(std::int64_t in_features, std::int64_t out_features,
                 util::Rng& rng, FcBackend backend = FcBackend::kHostGemm);

  std::string name() const override { return "fc"; }
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& d_output) override;
  std::vector<ParamGrad> params() override;

  const tensor::Tensor& weights() const { return weights_; }
  const tensor::Tensor& bias() const { return bias_; }

 private:
  std::int64_t in_features_;
  std::int64_t out_features_;
  FcBackend backend_;
  tensor::Tensor weights_;  ///< [out][in]
  tensor::Tensor bias_;     ///< [out]
  tensor::Tensor d_weights_;
  tensor::Tensor d_bias_;
  tensor::Tensor cached_input_;        ///< flattened [in][B]
  std::vector<std::int64_t> in_dims_;  ///< original input dims
};

}  // namespace swdnn::dnn
