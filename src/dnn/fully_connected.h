#pragma once
// Fully-connected layer over [features][B] activations (the paper's
// classifier stage). A rank-4 [R][C][N][B] input is accepted and viewed
// as [R*C*N][B] — row-major flattening is exactly that reshape.

#include <memory>

#include "src/conv/shape.h"
#include "src/dnn/layer.h"
#include "src/sim/executor.h"
#include "src/util/rng.h"

namespace swdnn::dnn {

enum class FcBackend {
  kHostGemm,       ///< blocked GEMM on the host
  kSimulatedMesh,  ///< the distributed LDM-GEMM on the SW26010 simulator
};

class FullyConnected : public Layer {
 public:
  FullyConnected(std::int64_t in_features, std::int64_t out_features,
                 util::Rng& rng, FcBackend backend = FcBackend::kHostGemm);

  std::string name() const override { return "fc"; }
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& d_output) override;
  std::vector<ParamGrad> params() override;

  // Compiled path: the layer is a 1x1 convolution at the API boundary
  // ([1][1][in][B] activations, [1][1][in][out] filter — the filter
  // layout is the transpose of the [out][in] storage, staged through
  // presized scratch), so the GEMM rides the shared handle's plan
  // cache and fault ladder instead of calling conv:: directly.
  std::vector<std::int64_t> infer_shape(
      const std::vector<std::int64_t>& input_dims) override;
  bool backward_needs_input() const override { return true; }
  void bind(BackendContext* context) override { context_ = context; }
  void plan(const std::vector<std::int64_t>& input_dims) override;
  void forward_view(const tensor::TensorView& input,
                    tensor::TensorView& output) override;
  void backward_view(const tensor::TensorView& d_output,
                     tensor::TensorView& d_input) override;

  // Graph fusion: a following elementwise activation collapses into
  // this layer's node. The [out][B] output flattens exactly as the
  // 1x1-conv [1][1][out][B] view, so the backend's flat bias/ReLU
  // epilogue is element-for-element the layer loops — bitwise-equal.
  bool supports_fused_epilogue() const override {
    return context_ != nullptr;
  }
  void forward_view_fused(const tensor::TensorView& input,
                          tensor::TensorView& output,
                          Layer& epilogue) override;
  void backward_view_fused(tensor::TensorView& d_output,
                           tensor::TensorView& d_input,
                           Layer& epilogue) override;

  const tensor::Tensor& weights() const { return weights_; }
  const tensor::Tensor& bias() const { return bias_; }

 private:
  std::int64_t in_features_;
  std::int64_t out_features_;
  FcBackend backend_;
  tensor::Tensor weights_;  ///< [out][in]
  tensor::Tensor bias_;     ///< [out]
  tensor::Tensor d_weights_;
  tensor::Tensor d_bias_;
  tensor::Tensor cached_input_;        ///< flattened [in][B]
  std::vector<std::int64_t> in_dims_;  ///< original input dims
  /// Persistent executor for the mesh-GEMM backend (created on first
  /// use; its worker pool is reused across training steps).
  std::unique_ptr<sim::MeshExecutor> mesh_exec_;

  BackendContext* context_ = nullptr;      // set by bind()
  conv::ConvShape api_shape_;              // the 1x1-conv view; plan() fills
  std::vector<double> w_t_;                // [in][out] transposed weights
  std::vector<double> dw_t_;               // [in][out] transposed gradient
  tensor::TensorView input_view_;          // the arena keeps it live
};

}  // namespace swdnn::dnn
