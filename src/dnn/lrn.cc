#include "src/dnn/lrn.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/runtime/task_pool.h"

namespace swdnn::dnn {

Lrn::Lrn(std::int64_t size, double alpha, double beta, double k)
    : size_(size), alpha_(alpha), beta_(beta), k_(k) {
  if (size <= 0 || size % 2 == 0) {
    throw std::invalid_argument("Lrn: window size must be odd and positive");
  }
}

tensor::Tensor Lrn::forward(const tensor::Tensor& input) {
  if (input.rank() != 4) {
    throw std::invalid_argument("Lrn: expects [R][C][N][B]");
  }
  cached_input_ = input;
  cached_scale_ = tensor::Tensor(input.dims());
  tensor::Tensor out(input.dims());
  const std::int64_t rows = input.dim(0), cols = input.dim(1),
                     channels = input.dim(2), batch = input.dim(3);
  const std::int64_t half = size_ / 2;
  // Row shards write disjoint (r, ...) slices of out/cached_scale_.
  runtime::parallel_for(0, rows, 1, [&](std::int64_t r0, std::int64_t r1) {
  for (std::int64_t r = r0; r < r1; ++r)
    for (std::int64_t c = 0; c < cols; ++c)
      for (std::int64_t b = 0; b < batch; ++b)
        for (std::int64_t ch = 0; ch < channels; ++ch) {
          double sum = 0;
          const std::int64_t lo = std::max<std::int64_t>(0, ch - half);
          const std::int64_t hi =
              std::min<std::int64_t>(channels - 1, ch + half);
          for (std::int64_t m = lo; m <= hi; ++m) {
            const double v = input.at(r, c, m, b);
            sum += v * v;
          }
          const double scale =
              k_ + alpha_ / static_cast<double>(size_) * sum;
          cached_scale_.at(r, c, ch, b) = scale;
          out.at(r, c, ch, b) =
              input.at(r, c, ch, b) * std::pow(scale, -beta_);
        }
  });
  return out;
}

tensor::Tensor Lrn::backward(const tensor::Tensor& d_output) {
  if (cached_input_.dims() != d_output.dims()) {
    throw std::invalid_argument("Lrn::backward before forward");
  }
  // dy[n]/dx[m] = delta(n,m)*scale[n]^-beta
  //             - 2*beta*alpha/size * x[n]*x[m]*scale[n]^{-beta-1}
  //               (for m in window(n)).
  tensor::Tensor d_input(d_output.dims());
  const std::int64_t rows = d_output.dim(0), cols = d_output.dim(1),
                     channels = d_output.dim(2), batch = d_output.dim(3);
  const std::int64_t half = size_ / 2;
  runtime::parallel_for(0, rows, 1, [&](std::int64_t r0, std::int64_t r1) {
  for (std::int64_t r = r0; r < r1; ++r)
    for (std::int64_t c = 0; c < cols; ++c)
      for (std::int64_t b = 0; b < batch; ++b)
        for (std::int64_t m = 0; m < channels; ++m) {
          double grad = 0;
          const std::int64_t lo = std::max<std::int64_t>(0, m - half);
          const std::int64_t hi =
              std::min<std::int64_t>(channels - 1, m + half);
          for (std::int64_t nn = lo; nn <= hi; ++nn) {
            const double scale = cached_scale_.at(r, c, nn, b);
            const double g = d_output.at(r, c, nn, b);
            if (nn == m) {
              grad += g * std::pow(scale, -beta_);
            }
            grad -= g * 2.0 * beta_ * alpha_ /
                    static_cast<double>(size_) *
                    cached_input_.at(r, c, nn, b) *
                    cached_input_.at(r, c, m, b) *
                    std::pow(scale, -beta_ - 1.0);
          }
          d_input.at(r, c, m, b) = grad;
        }
  });
  return d_input;
}

}  // namespace swdnn::dnn
