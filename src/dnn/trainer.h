#pragma once
// Training loop + a synthetic image classification dataset.
//
// The dataset generates B images of oriented-bar patterns — class k is a
// bar at angle k*pi/classes plus noise — so the examples and integration
// tests can train a small CNN end-to-end without external data (the
// paper itself evaluates on synthetic parameter sweeps, not datasets).

#include <string>
#include <vector>

#include "src/dnn/loss.h"
#include "src/dnn/network.h"
#include "src/dnn/sgd.h"
#include "src/util/rng.h"

namespace swdnn::dnn {

struct Batch {
  tensor::Tensor images;  ///< [R][C][channels][B]
  std::vector<int> labels;
};

class SyntheticBars {
 public:
  SyntheticBars(std::int64_t image_size, int num_classes, double noise,
                std::uint64_t seed);

  Batch sample(std::int64_t batch);

  int num_classes() const { return num_classes_; }
  std::int64_t image_size() const { return image_size_; }

 private:
  std::int64_t image_size_;
  int num_classes_;
  double noise_;
  util::Rng rng_;
};

struct EpochStats {
  double mean_loss = 0;
  double accuracy = 0;
  double seconds = 0;
};

struct EvalStats {
  double accuracy = 0;
  double mean_loss = 0;
};

class Trainer {
 public:
  Trainer(Network& network, Sgd& optimizer) : net_(network), opt_(optimizer) {}

  /// One optimization step on a batch; returns loss/accuracy of the
  /// batch before the update.
  LossResult train_step(const Batch& batch);

  /// Runs `steps` batches of size `batch_size` drawn from the dataset.
  EpochStats train_epoch(SyntheticBars& data, std::int64_t batch_size,
                         int steps);

  /// Accuracy on freshly sampled data (no update).
  double evaluate(SyntheticBars& data, std::int64_t batch_size, int batches);

  /// Accuracy plus mean loss over freshly sampled data (no update). The
  /// loss is accumulated with compensated (Kahan) summation so small
  /// per-batch terms are not absorbed by a large running sum; the
  /// runtime_parallel_test pins the value exactly (no tolerance).
  EvalStats evaluate_stats(SyntheticBars& data, std::int64_t batch_size,
                           int batches);

  // --- Self-healing ----------------------------------------------------
  /// Enables step-level checkpointing: parameters are written to `path`
  /// (via dnn/serialize) every `interval` resilient steps, before the
  /// update, so a fault mid-step can always roll back to the last good
  /// state.
  void enable_checkpointing(std::string path, int interval = 1);

  /// Restores the last checkpoint into the network. Returns false when
  /// checkpointing is off or nothing has been saved yet.
  bool rollback();

  /// Result of one fault-tolerant step: when the forward/backward pass
  /// throws (a persistent device fault) or produces non-finite
  /// gradients (corruption), the step is abandoned, the last checkpoint
  /// restored, and `rolled_back` set — parameters are never updated
  /// from corrupted gradients.
  struct ResilientStep {
    LossResult loss;
    bool rolled_back = false;
  };
  ResilientStep train_step_resilient(const Batch& batch);

  int checkpoints_written() const { return checkpoints_written_; }

 private:
  bool gradients_finite() const;

  Network& net_;
  Sgd& opt_;
  std::string checkpoint_path_;
  int checkpoint_interval_ = 0;  ///< 0 = checkpointing disabled
  int checkpoints_written_ = 0;
  int resilient_steps_ = 0;
};

}  // namespace swdnn::dnn
