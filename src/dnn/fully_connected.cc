#include "src/dnn/fully_connected.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "src/conv/gemm.h"
#include "src/conv/mesh_gemm_driver.h"

namespace swdnn::dnn {

namespace {
tensor::Tensor flatten_to_2d(const tensor::Tensor& t) {
  std::int64_t features = 1;
  for (std::int64_t i = 0; i + 1 < t.rank(); ++i) features *= t.dim(i);
  tensor::Tensor out({features, t.dim(t.rank() - 1)});
  std::copy(t.data().begin(), t.data().end(), out.data().begin());
  return out;
}
}  // namespace

FullyConnected::FullyConnected(std::int64_t in_features,
                               std::int64_t out_features, util::Rng& rng,
                               FcBackend backend)
    : in_features_(in_features),
      out_features_(out_features),
      backend_(backend),
      weights_({out_features, in_features}),
      bias_({out_features}),
      d_weights_({out_features, in_features}),
      d_bias_({out_features}) {
  rng.fill_normal(weights_.data(), 0.0,
                  std::sqrt(2.0 / static_cast<double>(in_features)));
}

tensor::Tensor FullyConnected::forward(const tensor::Tensor& input) {
  in_dims_ = input.dims();
  cached_input_ = flatten_to_2d(input);
  if (cached_input_.dim(0) != in_features_) {
    throw std::invalid_argument("FullyConnected: expected " +
                                std::to_string(in_features_) +
                                " input features, got " +
                                std::to_string(cached_input_.dim(0)));
  }
  const std::int64_t batch = cached_input_.dim(1);
  tensor::Tensor out({out_features_, batch});
  if (backend_ == FcBackend::kSimulatedMesh) {
    // The classifier stage is a GEMM — run it on the distributed mesh
    // GEMM. The driver consumes the weight contraction-major ([in][out]),
    // i.e. transposed from storage.
    std::vector<double> w_t(
        static_cast<std::size_t>(in_features_ * out_features_));
    for (std::int64_t o = 0; o < out_features_; ++o) {
      for (std::int64_t i = 0; i < in_features_; ++i) {
        w_t[static_cast<std::size_t>(i * out_features_ + o)] =
            weights_.at(o, i);
      }
    }
    sim::MeshExecutor exec;
    conv::mesh_gemm(exec, w_t, cached_input_.data(), out.data(),
                    out_features_, in_features_, batch);
  } else {
    conv::gemm_blocked(out_features_, batch, in_features_, weights_.data(),
                       cached_input_.data(), out.data());
  }
  for (std::int64_t o = 0; o < out_features_; ++o) {
    for (std::int64_t b = 0; b < batch; ++b) out.at(o, b) += bias_.at(o);
  }
  return out;
}

tensor::Tensor FullyConnected::backward(const tensor::Tensor& d_output) {
  const std::int64_t batch = cached_input_.dim(1);
  // dW[o][i] = sum_b dOut[o][b] * x[i][b];  db[o] = sum_b dOut[o][b].
  d_weights_.zero();
  d_bias_.zero();
  for (std::int64_t o = 0; o < out_features_; ++o) {
    for (std::int64_t b = 0; b < batch; ++b) {
      const double g = d_output.at(o, b);
      d_bias_.at(o) += g;
      for (std::int64_t i = 0; i < in_features_; ++i) {
        d_weights_.at(o, i) += g * cached_input_.at(i, b);
      }
    }
  }
  // dx[i][b] = sum_o W[o][i] * dOut[o][b].
  tensor::Tensor d_flat({in_features_, batch});
  for (std::int64_t o = 0; o < out_features_; ++o) {
    for (std::int64_t i = 0; i < in_features_; ++i) {
      const double w = weights_.at(o, i);
      for (std::int64_t b = 0; b < batch; ++b) {
        d_flat.at(i, b) += w * d_output.at(o, b);
      }
    }
  }
  // Reshape back to the caller's input dims.
  tensor::Tensor d_input(in_dims_);
  std::copy(d_flat.data().begin(), d_flat.data().end(),
            d_input.data().begin());
  return d_input;
}

std::vector<ParamGrad> FullyConnected::params() {
  return {ParamGrad{&weights_, &d_weights_}, ParamGrad{&bias_, &d_bias_}};
}

}  // namespace swdnn::dnn
