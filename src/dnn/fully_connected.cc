#include "src/dnn/fully_connected.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "src/conv/gemm.h"
#include "src/conv/mesh_gemm_driver.h"
#include "src/dnn/backend_context.h"
#include "src/runtime/task_pool.h"

namespace swdnn::dnn {

namespace {
tensor::Tensor flatten_to_2d(const tensor::Tensor& t) {
  std::int64_t features = 1;
  for (std::int64_t i = 0; i + 1 < t.rank(); ++i) features *= t.dim(i);
  tensor::Tensor out({features, t.dim(t.rank() - 1)});
  std::copy(t.data().begin(), t.data().end(), out.data().begin());
  return out;
}
}  // namespace

FullyConnected::FullyConnected(std::int64_t in_features,
                               std::int64_t out_features, util::Rng& rng,
                               FcBackend backend)
    : in_features_(in_features),
      out_features_(out_features),
      backend_(backend),
      weights_({out_features, in_features}),
      bias_({out_features}),
      d_weights_({out_features, in_features}),
      d_bias_({out_features}) {
  rng.fill_normal(weights_.data(), 0.0,
                  std::sqrt(2.0 / static_cast<double>(in_features)));
}

tensor::Tensor FullyConnected::forward(const tensor::Tensor& input) {
  in_dims_ = input.dims();
  cached_input_ = flatten_to_2d(input);
  if (cached_input_.dim(0) != in_features_) {
    throw std::invalid_argument("FullyConnected: expected " +
                                std::to_string(in_features_) +
                                " input features, got " +
                                std::to_string(cached_input_.dim(0)));
  }
  const std::int64_t batch = cached_input_.dim(1);
  tensor::Tensor out({out_features_, batch});
  if (backend_ == FcBackend::kSimulatedMesh) {
    // The classifier stage is a GEMM — run it on the distributed mesh
    // GEMM. The driver consumes the weight contraction-major ([in][out]),
    // i.e. transposed from storage.
    std::vector<double> w_t(
        static_cast<std::size_t>(in_features_ * out_features_));
    for (std::int64_t o = 0; o < out_features_; ++o) {
      for (std::int64_t i = 0; i < in_features_; ++i) {
        w_t[static_cast<std::size_t>(i * out_features_ + o)] =
            weights_.at(o, i);
      }
    }
    if (mesh_exec_ == nullptr) {
      mesh_exec_ = std::make_unique<sim::MeshExecutor>();
    }
    conv::mesh_gemm(*mesh_exec_, w_t, cached_input_.data(), out.data(),
                    out_features_, in_features_, batch);
  } else {
    conv::gemm_packed_parallel(out_features_, batch, in_features_,
                               weights_.data(), cached_input_.data(),
                               out.data());
  }
  runtime::parallel_for(
      0, out_features_, 16, [&](std::int64_t o0, std::int64_t o1) {
        for (std::int64_t o = o0; o < o1; ++o)
          for (std::int64_t b = 0; b < batch; ++b)
            out.at(o, b) += bias_.at(o);
      });
  return out;
}

tensor::Tensor FullyConnected::backward(const tensor::Tensor& d_output) {
  const std::int64_t batch = cached_input_.dim(1);
  // dW[o][i] = sum_b dOut[o][b] * x[i][b];  db[o] = sum_b dOut[o][b].
  d_weights_.zero();
  d_bias_.zero();
  // Shard over o: each output feature owns its dW row and db slot, and
  // the inner b accumulation order matches the serial loop.
  runtime::parallel_for(
      0, out_features_, 1, [&](std::int64_t o0, std::int64_t o1) {
        for (std::int64_t o = o0; o < o1; ++o) {
          for (std::int64_t b = 0; b < batch; ++b) {
            const double g = d_output.at(o, b);
            d_bias_.at(o) += g;
            for (std::int64_t i = 0; i < in_features_; ++i) {
              d_weights_.at(o, i) += g * cached_input_.at(i, b);
            }
          }
        }
      });
  // dx[i][b] = sum_o W[o][i] * dOut[o][b]. Sharded over i with o as the
  // inner accumulation loop: each (i, b) still sums its o terms in
  // ascending order, so the restructured loop is bitwise-identical to
  // the old o-outer form.
  tensor::Tensor d_flat({in_features_, batch});
  runtime::parallel_for(
      0, in_features_, 1, [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          for (std::int64_t o = 0; o < out_features_; ++o) {
            const double w = weights_.at(o, i);
            for (std::int64_t b = 0; b < batch; ++b) {
              d_flat.at(i, b) += w * d_output.at(o, b);
            }
          }
        }
      });
  // Reshape back to the caller's input dims.
  tensor::Tensor d_input(in_dims_);
  std::copy(d_flat.data().begin(), d_flat.data().end(),
            d_input.data().begin());
  return d_input;
}

std::vector<ParamGrad> FullyConnected::params() {
  return {ParamGrad{&weights_, &d_weights_}, ParamGrad{&bias_, &d_bias_}};
}

std::vector<std::int64_t> FullyConnected::infer_shape(
    const std::vector<std::int64_t>& input_dims) {
  if (input_dims.empty()) {
    throw std::invalid_argument("FullyConnected::infer_shape: empty shape");
  }
  std::int64_t features = 1;
  for (std::size_t i = 0; i + 1 < input_dims.size(); ++i) {
    features *= input_dims[i];
  }
  if (features != in_features_) {
    throw std::invalid_argument(
        "FullyConnected: expected " + std::to_string(in_features_) +
        " input features, got " + std::to_string(features));
  }
  return {out_features_, input_dims.back()};
}

void FullyConnected::plan(const std::vector<std::int64_t>& input_dims) {
  (void)infer_shape(input_dims);  // revalidate
  in_dims_ = input_dims;
  const std::int64_t batch = input_dims.back();
  if (context_ == nullptr) return;
  api_shape_ =
      BackendContext::fc_shape(in_features_, out_features_, batch);
  w_t_.assign(static_cast<std::size_t>(in_features_ * out_features_), 0.0);
  dw_t_.assign(w_t_.size(), 0.0);
  context_->warm_conv_plan(api_shape_);
}

void FullyConnected::forward_view(const tensor::TensorView& input,
                                  tensor::TensorView& output) {
  if (context_ == nullptr) {
    Layer::forward_view(input, output);
    return;
  }
  input_view_ = input;  // liveness: the planner pins it to our backward
  // Filter layout at the API boundary is [1][1][in][out]: the
  // transpose of the [out][in] storage, restaged whenever the
  // optimizer may have stepped the weights (i.e. every forward).
  for (std::int64_t o = 0; o < out_features_; ++o) {
    for (std::int64_t i = 0; i < in_features_; ++i) {
      w_t_[static_cast<std::size_t>(i * out_features_ + o)] =
          weights_.at(o, i);
    }
  }
  context_->conv_forward(api_shape_, input.data().data(), w_t_.data(),
                         output.data().data());
  const std::int64_t batch = api_shape_.batch;
  for (std::int64_t o = 0; o < out_features_; ++o) {
    for (std::int64_t b = 0; b < batch; ++b) output.at(o, b) += bias_.at(o);
  }
}

void FullyConnected::forward_view_fused(const tensor::TensorView& input,
                                        tensor::TensorView& output,
                                        Layer& epilogue) {
  input_view_ = input;  // liveness: the planner pins it to our backward
  for (std::int64_t o = 0; o < out_features_; ++o) {
    for (std::int64_t i = 0; i < in_features_; ++i) {
      w_t_[static_cast<std::size_t>(i * out_features_ + o)] =
          weights_.at(o, i);
    }
  }
  double* mask = epilogue.epilogue_mask_data();
  context_->conv_forward_fused(api_shape_, input.data().data(), w_t_.data(),
                               output.data().data(), bias_.data().data(),
                               mask);
  if (mask == nullptr) epilogue.epilogue_forward_inplace(output);
}

void FullyConnected::backward_view_fused(tensor::TensorView& d_output,
                                         tensor::TensorView& d_input,
                                         Layer& epilogue) {
  // dLoss/dActOut -> dLoss/dLinearOut in place; dead after this node.
  epilogue.epilogue_backward_inplace(d_output);
  const std::int64_t batch = api_shape_.batch;
  d_bias_.zero();
  for (std::int64_t o = 0; o < out_features_; ++o) {
    for (std::int64_t b = 0; b < batch; ++b) {
      d_bias_.at(o) += d_output.at(o, b);
    }
  }
  context_->conv_backward_filter(api_shape_, input_view_.data().data(),
                                 d_output.data().data(), dw_t_.data());
  for (std::int64_t o = 0; o < out_features_; ++o) {
    for (std::int64_t i = 0; i < in_features_; ++i) {
      d_weights_.at(o, i) =
          dw_t_[static_cast<std::size_t>(i * out_features_ + o)];
    }
  }
  context_->conv_backward_data(api_shape_, w_t_.data(),
                               d_output.data().data(),
                               d_input.data().data());
}

void FullyConnected::backward_view(const tensor::TensorView& d_output,
                                   tensor::TensorView& d_input) {
  if (context_ == nullptr) {
    Layer::backward_view(d_output, d_input);
    return;
  }
  const std::int64_t batch = api_shape_.batch;
  // db[o] = sum_b dOut[o][b], accumulated in the eager loop's order.
  d_bias_.zero();
  for (std::int64_t o = 0; o < out_features_; ++o) {
    for (std::int64_t b = 0; b < batch; ++b) {
      d_bias_.at(o) += d_output.at(o, b);
    }
  }
  // dW through the API's backward-filter: the result comes back in the
  // [1][1][in][out] filter layout and is transposed into [out][in].
  context_->conv_backward_filter(api_shape_, input_view_.data().data(),
                                 d_output.data().data(), dw_t_.data());
  for (std::int64_t o = 0; o < out_features_; ++o) {
    for (std::int64_t i = 0; i < in_features_; ++i) {
      d_weights_.at(o, i) =
          dw_t_[static_cast<std::size_t>(i * out_features_ + o)];
    }
  }
  // dx = W^T dOut through backward-data; the flat [in][B] result is the
  // row-major content of whatever rank the input view carries.
  context_->conv_backward_data(api_shape_, w_t_.data(),
                               d_output.data().data(),
                               d_input.data().data());
}

}  // namespace swdnn::dnn
