#pragma once
// Parameter checkpointing: save/load every trainable tensor of a
// network to a single binary file, so training can resume and trained
// models ship. The format is deliberately simple and self-describing:
//
//   magic "SWDN" | version u32 | param count u32 |
//   per param: rank u32, dims i64[rank], data f64[numel]
//
// Loading verifies the header and every shape against the live network
// (architectures must match — this is a weight file, not a model file).

#include <string>

#include "src/dnn/network.h"

namespace swdnn::dnn {

/// Writes all parameters of the network. Throws std::runtime_error on
/// I/O failure.
void save_parameters(Network& network, const std::string& path);

/// Reads parameters back into an identically-structured network.
/// Throws std::runtime_error on I/O failure, bad magic/version, count
/// mismatch, or any shape mismatch.
void load_parameters(Network& network, const std::string& path);

}  // namespace swdnn::dnn
