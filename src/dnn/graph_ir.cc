#include "src/dnn/graph_ir.h"

#include "src/sim/trace.h"

namespace swdnn::dnn {

namespace {

std::string node_label(const std::vector<LayerPtr>& layers,
                       std::size_t layer_index) {
  return layers[layer_index]->name() + "#" + std::to_string(layer_index);
}

}  // namespace

void GraphIR::build(const std::vector<LayerPtr>& layers) {
  clear();
  nodes_.reserve(layers.size());
  for (std::size_t i = 0; i < layers.size(); ++i) {
    GraphNode node;
    node.kind = NodeKind::kSingle;
    node.first_layer = i;
    node.last_layer = i;
    node.name = node_label(layers, i);
    node.input_value = i;
    node.output_value = i + 1;
    nodes_.push_back(std::move(node));
  }
}

void GraphIR::run_passes(const std::vector<LayerPtr>& layers,
                         sim::EventTracer* tracer, bool fuse) {
  if (!fuse) return;
  fuse_epilogues(layers, tracer);
  elide_pads(layers, tracer);
}

void GraphIR::fuse_epilogues(const std::vector<LayerPtr>& layers,
                             sim::EventTracer* tracer) {
  std::vector<GraphNode> out;
  out.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    GraphNode node = nodes_[i];
    const bool pair_available =
        node.kind == NodeKind::kSingle && i + 1 < nodes_.size() &&
        nodes_[i + 1].kind == NodeKind::kSingle;
    if (pair_available) {
      Layer& producer = *layers[node.first_layer];
      Layer& epilogue = *layers[nodes_[i + 1].first_layer];
      if (producer.supports_fused_epilogue() &&
          epilogue.is_fusible_epilogue()) {
        node.kind = producer.name() == "conv" ? NodeKind::kFusedConvAct
                                              : NodeKind::kFusedFcAct;
        node.last_layer = nodes_[i + 1].first_layer;
        node.name += "+" + nodes_[i + 1].name;
        node.output_value = nodes_[i + 1].output_value;
        if (node.kind == NodeKind::kFusedConvAct) {
          ++stats_.fused_conv_act;
        } else {
          ++stats_.fused_fc_act;
        }
        if (tracer != nullptr) {
          tracer->record_instant(/*cpe=*/0, "fusion", "fuse " + node.name);
        }
        ++i;  // the epilogue node is consumed
      }
    }
    out.push_back(std::move(node));
  }
  nodes_ = std::move(out);
}

void GraphIR::elide_pads(const std::vector<LayerPtr>& layers,
                         sim::EventTracer* tracer) {
  for (GraphNode& node : nodes_) {
    if (node.kind != NodeKind::kSingle) continue;
    if (!layers[node.first_layer]->is_elidable_pad()) continue;
    node.kind = NodeKind::kElidedPad;
    ++stats_.elided_pads;
    if (tracer != nullptr) {
      tracer->record_instant(/*cpe=*/0, "fusion", "elide " + node.name);
    }
  }
}

void GraphIR::clear() {
  nodes_.clear();
  stats_ = PassStats{};
}

}  // namespace swdnn::dnn
