// The simulator's event tracer: recording, Chrome JSON export, and
// integration with real kernel launches.

#include <gtest/gtest.h>

#include <fstream>
#include <set>

#include "src/conv/ldm_blocked.h"
#include "src/conv/reference.h"
#include "src/sim/trace.h"
#include "src/util/rng.h"

namespace swdnn::sim {
namespace {

arch::Sw26010Spec mesh_spec(int dim) {
  arch::Sw26010Spec spec = arch::default_spec();
  spec.mesh_rows = dim;
  spec.mesh_cols = dim;
  return spec;
}

TEST(Tracer, RecordsEvents) {
  EventTracer tracer;
  tracer.record(3, "dma", "get 256B", 100, 150);
  tracer.record(0, "sync", "barrier", 200, 201);
  ASSERT_EQ(tracer.size(), 2u);
  const auto events = tracer.events();
  EXPECT_EQ(events[0].cpe, 3);
  EXPECT_EQ(events[0].category, "dma");
  EXPECT_EQ(events[0].end_cycle - events[0].begin_cycle, 50u);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(Tracer, ChromeJsonShape) {
  EventTracer tracer;
  tracer.record(1, "dma", "get 64B", 0, 29);  // 29 cycles @1.45GHz = 20ns
  const std::string json = tracer.to_chrome_json(1.45);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"get 64B\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(Tracer, EmptyTraceIsValidJson) {
  EventTracer tracer;
  EXPECT_EQ(tracer.to_chrome_json(1.45), "{\"traceEvents\":[]}");
}

TEST(Tracer, ChromeJsonEscapesQuotesBackslashesAndControlChars) {
  // Regression: names/categories used to be emitted raw, so a quote or
  // backslash in an event name produced JSON chrome://tracing rejects.
  EventTracer tracer;
  tracer.record(0, "dma\\bus", "get \"tile 3\"\n\tdone", 0, 10);
  const std::string json = tracer.to_chrome_json(1.45);
  EXPECT_NE(json.find("\"name\":\"get \\\"tile 3\\\"\\n\\tdone\""),
            std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"dma\\\\bus\""), std::string::npos);
  // No raw control characters may survive into the output.
  for (const char c : json) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
}

TEST(Tracer, ChromeJsonEscapesLowControlCharsAsUnicode) {
  EventTracer tracer;
  tracer.record(0, "sync", std::string("bar\x01rier", 8), 0, 1);
  EXPECT_NE(tracer.to_chrome_json(1.45).find("bar\\u0001rier"),
            std::string::npos);
}

TEST(Tracer, ChromeJsonClampsInvertedIntervalsToZeroDuration) {
  // Regression: end < begin wrapped the unsigned subtraction into a
  // ~10^19-cycle duration.
  EventTracer tracer;
  tracer.record(2, "dma", "clock skew", 100, 40);
  const std::string json = tracer.to_chrome_json(1.0);
  EXPECT_NE(json.find("\"dur\":0"), std::string::npos);
  EXPECT_EQ(json.find("e+"), std::string::npos);  // no astronomical values
}

TEST(Tracer, RecordInstantHasZeroExtent) {
  EventTracer tracer;
  tracer.record_instant(0, "plan_cache", "hit", 7);
  ASSERT_EQ(tracer.size(), 1u);
  const auto events = tracer.events();
  EXPECT_EQ(events[0].begin_cycle, 7u);
  EXPECT_EQ(events[0].end_cycle, 7u);
  EXPECT_EQ(events[0].category, "plan_cache");
}

TEST(Tracer, WritesFile) {
  EventTracer tracer;
  tracer.record(0, "dma", "put 1024B", 10, 50);
  const std::string path = ::testing::TempDir() + "/swdnn_trace.json";
  tracer.write_chrome_json(path, 1.45);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("put 1024B"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Tracer, CapturesAConvolutionLaunch) {
  // Attach to a real mesh kernel run: DMA, bus, and barrier events from
  // every CPE must appear.
  const arch::Sw26010Spec spec = mesh_spec(2);
  MeshExecutor exec(spec);
  EventTracer tracer;
  exec.set_tracer(&tracer);

  const conv::ConvShape shape =
      conv::ConvShape::from_output(4, 2, 2, 3, 4, 2, 2);
  perf::ConvPlan plan;
  plan.kind = perf::PlanKind::kBatchSizeAware;
  plan.block_co = 2;
  util::Rng rng(55);
  auto input = conv::make_input(shape);
  auto filter = conv::make_filter(shape);
  rng.fill_uniform(input.data(), -1, 1);
  rng.fill_uniform(filter.data(), -1, 1);
  auto output = conv::make_output(shape);
  conv::run_batch_size_aware(exec, input, filter, output, shape, plan);

  EXPECT_GT(tracer.size(), 0u);
  bool saw_dma = false, saw_bus = false, saw_sync = false;
  std::set<int> cpes;
  for (const auto& e : tracer.events()) {
    saw_dma |= (e.category == "dma");
    saw_bus |= (e.category == "bus");
    saw_sync |= (e.category == "sync");
    cpes.insert(e.cpe);
    EXPECT_GE(e.end_cycle, e.begin_cycle);
  }
  EXPECT_TRUE(saw_dma);
  EXPECT_TRUE(saw_bus);
  EXPECT_TRUE(saw_sync);
  EXPECT_EQ(cpes.size(), 4u);  // all CPEs of the 2x2 mesh participated

  // Detach: subsequent launches record nothing.
  exec.set_tracer(nullptr);
  tracer.clear();
  conv::run_batch_size_aware(exec, input, filter, output, shape, plan);
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(Tracer, ConcurrentRecordingIsSafe) {
  // 64 CPE threads recording into one tracer.
  MeshExecutor exec;  // full 8x8 mesh
  EventTracer tracer;
  exec.set_tracer(&tracer);
  std::vector<double> global(64 * 8);
  exec.run([&](CpeContext& ctx) {
    auto buf = ctx.ldm().alloc_doubles(8);
    for (int rep = 0; rep < 10; ++rep) {
      ctx.dma_get({global.data() + ctx.id() * 8, 8}, buf);
    }
  });
  EXPECT_EQ(tracer.size(), 64u * 10u);
}

}  // namespace
}  // namespace swdnn::sim
