// The performance model must reproduce the paper's published equation
// values: Eq. (1)/(2) RBW numbers from Table III, Eq. (5)'s 23.2 GB/s,
// and the Fig. 2 direct-gload strawman.

#include <gtest/gtest.h>

#include "src/perf/model.h"

namespace swdnn::perf {
namespace {

conv::ConvShape paper_shape(std::int64_t ni, std::int64_t no,
                            std::int64_t k = 3) {
  return conv::ConvShape::from_output(128, ni, no, 64, 64, k, k);
}

ConvPlan img_plan(std::int64_t bb, std::int64_t bco) {
  ConvPlan p;
  p.kind = PlanKind::kImageSizeAware;
  p.block_b = bb;
  p.block_co = bco;
  return p;
}

ConvPlan batch_plan(std::int64_t bco = 8) {
  ConvPlan p;
  p.kind = PlanKind::kBatchSizeAware;
  p.block_co = bco;
  return p;
}

TEST(Model, Eq1MatchesTable3Row1) {
  // img, Kc=3, bB=32, bCo=16, Ni=128, No=128 -> RBW 29.0.
  PerformanceModel model;
  EXPECT_NEAR(model.rbw_image_plan(paper_shape(128, 128), img_plan(32, 16)),
              29.0, 0.05);
}

TEST(Model, Eq1MatchesTable3Row2) {
  // img, bB=32, bCo=8, Ni=128, No=256 -> RBW 23.2.
  PerformanceModel model;
  EXPECT_NEAR(model.rbw_image_plan(paper_shape(128, 256), img_plan(32, 8)),
              23.2, 0.05);
}

TEST(Model, Eq2MatchesTable3Row3) {
  // batch, Kc=3, Ni=256, No=256, B=128 -> RBW 27.1.
  PerformanceModel model;
  EXPECT_NEAR(model.rbw_batch_plan(paper_shape(256, 256)), 27.1, 0.05);
}

TEST(Model, Eq2MatchesTable3Row4) {
  // batch, Ni=128, No=384 -> RBW 25.7 (paper rounds; exact is 25.78).
  PerformanceModel model;
  EXPECT_NEAR(model.rbw_batch_plan(paper_shape(128, 384)), 25.7, 0.1);
}

TEST(Model, Eq5SimdRegisterBandwidthIs23GBs) {
  // rbB=16, rbNo=4 -> 23.2 GB/s, under the 46.4 GB/s LDM port.
  PerformanceModel model;
  ConvPlan p;
  p.rb_b = 16;
  p.rb_no = 4;
  EXPECT_NEAR(model.rbw_register_simd(p), 23.2, 1e-9);
  EXPECT_LT(model.rbw_register_simd(p),
            arch::default_spec().ldm_reg_bandwidth_gbs);
}

TEST(Model, Eq3SpatialBlockingIsFilterBound) {
  // Eq. (3)'s RBW is governed by rbKr*rbKc, which the *network* fixes —
  // the paper rejects the spatial plan because the programmer cannot
  // tune it. Check both halves of that argument: RBW falls only with
  // the filter size (not a free parameter), and at 1x1 filters it
  // exceeds what the LDM port provides.
  PerformanceModel model;
  const double rbw_1x1 = model.rbw_register_spatial(4, 4, 1, 1);
  const double rbw_3x3 = model.rbw_register_spatial(4, 4, 3, 3);
  const double rbw_5x5 = model.rbw_register_spatial(6, 6, 5, 5);
  EXPECT_GT(rbw_1x1, rbw_3x3);
  EXPECT_GT(rbw_3x3, rbw_5x5);
  EXPECT_GT(rbw_1x1, arch::default_spec().ldm_reg_bandwidth_gbs);
  // The batch/No blocking (Eq. 5) is below the port for ANY filter.
  ConvPlan p;
  EXPECT_LT(model.rbw_register_simd(p),
            arch::default_spec().ldm_reg_bandwidth_gbs);
}

TEST(Model, DirectGloadIsFractionOfAPercent) {
  // (8 / 139.2)^2 = 0.33% of 742.4 Gflops.
  PerformanceModel model;
  const double gf = model.direct_gload_gflops_per_cg();
  EXPECT_NEAR(gf / 742.4, 0.0033, 3e-4);
  EXPECT_LT(gf, 3.0);
}

TEST(Model, EstimateIsBoundedByPeak) {
  PerformanceModel model;
  for (auto no : {64, 128, 256, 384}) {
    const auto e = model.estimate(paper_shape(128, no), img_plan(32, 8));
    EXPECT_GT(e.gflops_per_cg, 0.0);
    EXPECT_LT(e.gflops_per_cg, 742.4);
    EXPECT_NEAR(e.gflops_chip, 4 * e.gflops_per_cg, 1e-9);
  }
}

TEST(Model, LargerNoLowersImagePlanRbw) {
  PerformanceModel model;
  EXPECT_GT(model.rbw_image_plan(paper_shape(128, 64), img_plan(32, 8)),
            model.rbw_image_plan(paper_shape(128, 256), img_plan(32, 8)));
}

TEST(Model, LargerBlockingLowersImagePlanRbw) {
  PerformanceModel model;
  EXPECT_GT(model.rbw_image_plan(paper_shape(128, 128), img_plan(16, 4)),
            model.rbw_image_plan(paper_shape(128, 128), img_plan(64, 16)));
}

TEST(Model, RegisterCommCutsRequiredBandwidthByMeshDim) {
  // Section V-A: without mesh data sharing the memory traffic grows by
  // ~the mesh dimension ("reduces the memory bandwidth requirement for
  // almost an order of magnitude").
  PerformanceModel model;
  ConvPlan with = batch_plan();
  ConvPlan without = batch_plan();
  without.use_register_comm = false;
  const auto shape = paper_shape(256, 256);
  const auto e_with = model.estimate(shape, with);
  const auto e_without = model.estimate(shape, without);
  EXPECT_NEAR(e_without.rbw_mem_gbs / e_with.rbw_mem_gbs, 8.0, 1e-9);
  EXPECT_LT(e_without.gflops_per_cg, e_with.gflops_per_cg / 10.0);
}

TEST(Model, DoubleBufferingOverlapsDmaWithCompute) {
  PerformanceModel model;
  ConvPlan with = batch_plan();
  ConvPlan without = batch_plan();
  without.double_buffer = false;
  const auto shape = paper_shape(256, 256);
  EXPECT_GT(model.estimate(shape, with).gflops_per_cg,
            model.estimate(shape, without).gflops_per_cg);
}

TEST(Model, ReorderedPipelineBeatsOriginal) {
  PerformanceModel model;
  ConvPlan re = batch_plan();
  ConvPlan orig = batch_plan();
  orig.reordered_pipeline = false;
  const auto shape = paper_shape(256, 256);
  const auto e_re = model.estimate(shape, re);
  const auto e_orig = model.estimate(shape, orig);
  EXPECT_GT(e_re.ee, e_orig.ee);
  EXPECT_GT(e_re.gflops_per_cg, e_orig.gflops_per_cg);
  // Original schedule EE: the single-iteration count is 16/26 = 61.5%;
  // across iterations the decoder pairs the first reload with the last
  // FMA, so the simulated multi-iteration EE sits just above it.
  EXPECT_GE(e_orig.ee, (16.0 / 26.0) * 0.94 - 1e-9);
  EXPECT_LT(e_orig.ee, (16.0 / 25.0) * 0.94);
}

TEST(Model, TrafficAccountsAllThreeStreams) {
  PerformanceModel model;
  const auto shape = paper_shape(128, 128);
  const auto t = model.traffic(shape, img_plan(32, 16));
  EXPECT_GT(t.input.bytes, 0.0);
  EXPECT_GT(t.filter.bytes, 0.0);
  EXPECT_GT(t.output.bytes, 0.0);
  // Output leaves LDM exactly once.
  EXPECT_DOUBLE_EQ(t.output.bytes,
                   static_cast<double>(shape.output_elements()) * 8);
  EXPECT_EQ(t.output.direction, DmaDirection::kPut);
}

TEST(Model, EffectiveMbwIsWithinTableRange) {
  PerformanceModel model;
  for (auto ni : {64, 128, 256}) {
    const auto e = model.estimate(paper_shape(ni, ni), batch_plan());
    EXPECT_GT(e.mbw_mem_gbs, 4.0);
    EXPECT_LT(e.mbw_mem_gbs, 36.01);
  }
}

TEST(Model, InputDmaPromotionCutsInputTraffic) {
  PerformanceModel model;
  ConvPlan base = img_plan(32, 16);
  ConvPlan promoted = img_plan(32, 16);
  promoted.promote_input_dma = true;
  const auto shape = paper_shape(128, 128);
  EXPECT_LT(model.traffic(shape, promoted).input.bytes,
            model.traffic(shape, base).input.bytes);
}

TEST(Model, FilterDmaPromotionCutsFilterTraffic) {
  PerformanceModel model;
  ConvPlan base = batch_plan();
  ConvPlan promoted = batch_plan();
  promoted.promote_filter_dma = true;
  const auto shape = paper_shape(128, 128);
  EXPECT_LT(model.traffic(shape, promoted).filter.bytes,
            model.traffic(shape, base).filter.bytes);
}

TEST(Model, SecondsForScalesWithCgCount) {
  PerformanceModel model;
  const auto shape = paper_shape(128, 128);
  const auto e = model.estimate(shape, batch_plan());
  EXPECT_NEAR(e.seconds_for(shape.flops(), 1) / e.seconds_for(shape.flops()),
              4.0, 1e-9);
}

}  // namespace
}  // namespace swdnn::perf
