// The public SwConvolution facade: plan selection, functional forward on
// the mesh, multi-CG partitioning, and the level-2 cycle accounting.

#include <gtest/gtest.h>

#include "src/conv/reference.h"
#include "src/conv/swconv.h"
#include "src/util/rng.h"

namespace swdnn::conv {
namespace {

arch::Sw26010Spec mesh_spec(int dim) {
  arch::Sw26010Spec spec = arch::default_spec();
  spec.mesh_rows = dim;
  spec.mesh_cols = dim;
  return spec;
}

conv::ConvShape paper_shape(std::int64_t ni, std::int64_t no,
                            std::int64_t k = 3) {
  return conv::ConvShape::from_output(128, ni, no, 64, 64, k, k);
}

TEST(SwConv, AutoPlanForwardMatchesReference) {
  const arch::Sw26010Spec spec = mesh_spec(2);
  SwConvolution sw(spec);
  const ConvShape shape = ConvShape::from_output(8, 4, 4, 4, 4, 3, 3);
  util::Rng rng(41);
  tensor::Tensor in = make_input(shape), w = make_filter(shape);
  rng.fill_uniform(in.data(), -1, 1);
  rng.fill_uniform(w.data(), -1, 1);
  tensor::Tensor expected = make_output(shape), actual = make_output(shape);
  reference_forward(in, w, expected, shape);
  const ForwardResult result = sw.forward(in, w, actual, shape);
  EXPECT_LE(expected.max_abs_diff(actual), 1e-12);
  EXPECT_GT(result.stats.total_flops, 0u);
  EXPECT_GT(result.choice.estimate.gflops_per_cg, 0.0);
}

TEST(SwConv, ExplicitPlanForwardMatchesReference) {
  const arch::Sw26010Spec spec = mesh_spec(2);
  SwConvolution sw(spec);
  const ConvShape shape = ConvShape::from_output(4, 4, 4, 5, 4, 2, 2);
  util::Rng rng(42);
  tensor::Tensor in = make_input(shape), w = make_filter(shape);
  rng.fill_uniform(in.data(), -1, 1);
  rng.fill_uniform(w.data(), -1, 1);
  tensor::Tensor expected = make_output(shape), actual = make_output(shape);
  reference_forward(in, w, expected, shape);

  perf::ConvPlan plan;
  plan.kind = perf::PlanKind::kBatchSizeAware;
  plan.block_co = 2;
  sw.forward(in, w, actual, shape, plan);
  EXPECT_LE(expected.max_abs_diff(actual), 1e-12);
}

TEST(SwConv, MultiCgForwardMatchesReferenceAndScales) {
  const arch::Sw26010Spec spec = mesh_spec(2);
  SwConvolution sw(spec);
  // Large enough that per-CG work dwarfs the fixed launch overhead for
  // every mapping family (the multigrain kernels finish tiny shapes so
  // fast the 2us overhead would dominate the scaling ratio).
  const ConvShape shape = ConvShape::from_output(8, 8, 8, 16, 4, 3, 3);
  util::Rng rng(43);
  tensor::Tensor in = make_input(shape), w = make_filter(shape);
  rng.fill_uniform(in.data(), -1, 1);
  rng.fill_uniform(w.data(), -1, 1);
  tensor::Tensor expected = make_output(shape), actual = make_output(shape);
  reference_forward(in, w, expected, shape);

  const sim::MultiCgStats stats =
      sw.forward_multi_cg(in, w, actual, shape, 4);
  EXPECT_LE(expected.max_abs_diff(actual), 1e-12);
  EXPECT_EQ(stats.per_cg.size(), 4u);
  // Padded-tile mapping families (the multigrain kernels) execute —
  // and honestly charge — the zero-padding multiplies their ceil-div
  // tiles add, so accounted flops can exceed the nominal count but
  // must never undershoot it.
  EXPECT_GE(stats.total_flops(), static_cast<std::uint64_t>(shape.flops()));
  // Equal row partitions -> near-linear scaling.
  EXPECT_GT(stats.scaling_speedup(), 3.0);
}

TEST(SwConv, PlanForRequiresExecutabilityWhenAsked) {
  const arch::Sw26010Spec spec = mesh_spec(8);
  SwConvolution sw(spec);
  const auto choice = sw.plan_for(paper_shape(128, 128), true);
  EXPECT_NO_THROW(
      check_mesh_compatibility(paper_shape(128, 128), choice.plan, 8));
}

TEST(SwConv, CycleAccountedSitsBelowClosedFormModel) {
  // Level 2 includes overheads level 3 ignores: meas < mdl, but within
  // ~25% (Table III's gap is 3-6%; ours is looser but must be sane).
  SwConvolution sw;
  for (auto [ni, no] : {std::pair{128, 128}, {256, 256}, {128, 384}}) {
    const auto choice = sw.plan_for(paper_shape(ni, no));
    const double mdl = choice.estimate.gflops_per_cg;
    const double meas =
        sw.cycle_accounted_gflops_per_cg(paper_shape(ni, no), choice.plan);
    EXPECT_LT(meas, mdl) << ni << "x" << no;
    EXPECT_GT(meas, 0.6 * mdl) << ni << "x" << no;
  }
}

TEST(SwConv, CycleAccountedChipIsNearFourCgs) {
  SwConvolution sw;
  const auto shape = paper_shape(256, 256);
  const auto plan = sw.plan_for(shape).plan;
  const double cg = sw.cycle_accounted_gflops_per_cg(shape, plan);
  const double chip = sw.cycle_accounted_gflops_chip(shape, plan);
  EXPECT_GT(chip, 3.5 * cg);
  EXPECT_LE(chip, 4.0 * cg + 1e-9);
}

TEST(SwConv, DirectPlanCycleAccountingFallsBackToModel) {
  SwConvolution sw;
  perf::ConvPlan direct;
  direct.kind = perf::PlanKind::kDirect;
  const double g =
      sw.cycle_accounted_gflops_per_cg(paper_shape(128, 128), direct);
  EXPECT_LT(g, 3.0);  // the 0.33%-of-peak strawman
}

TEST(SwConv, EstimateUsesBestPlan) {
  SwConvolution sw;
  const auto est = sw.estimate(paper_shape(256, 256));
  EXPECT_GT(est.gflops_chip, 1000.0);   // above 1 Tflops
  EXPECT_LT(est.gflops_chip, 2969.6);   // below peak
}

}  // namespace
}  // namespace swdnn::conv
