// Compiled execution graph: differential bitwise identity against the
// eager path, plan-cache hits and allocation-free steady state, per-layer
// trace spans, arena packing wins, the fault-fallback ladder inside a
// compiled training step, and data-parallel replicas sharing one backend
// context.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/arch/spec.h"
#include "src/dnn/backend_context.h"
#include "src/dnn/convolution.h"
#include "src/dnn/dropout.h"
#include "src/dnn/fully_connected.h"
#include "src/dnn/loss.h"
#include "src/dnn/network.h"
#include "src/dnn/pooling.h"
#include "src/dnn/relu.h"
#include "src/dnn/sgd.h"
#include "src/dnn/softmax.h"
#include "src/dnn/trainer.h"
#include "src/parallel/data_parallel.h"
#include "src/sim/fault.h"
#include "src/sim/trace.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace swdnn::dnn {
namespace {

/// conv -> relu -> pool -> fc -> softmax on host-territory shapes
/// (channel counts indivisible by the default 8x8 mesh), so compiled
/// and eager dispatch the SAME host GEMM kernels and must agree
/// bitwise.
std::unique_ptr<Network> make_cnn(std::uint64_t seed) {
  auto net = std::make_unique<Network>();
  util::Rng rng(seed);
  conv::ConvShape shape;
  shape.batch = 6;
  shape.ni = 3;
  shape.no = 5;
  shape.ri = 12;
  shape.ci = 12;
  shape.kr = 3;
  shape.kc = 3;
  net->emplace<Convolution>(shape, rng, ConvBackend::kHostIm2col,
                            /*with_bias=*/true);
  net->emplace<Relu>();
  net->emplace<MaxPooling>(2);  // 10x10x5 -> 5x5x5
  net->emplace<FullyConnected>(125, 10, rng);
  net->emplace<Softmax>();
  return net;
}

tensor::Tensor random_input(std::uint64_t seed) {
  tensor::Tensor input({12, 12, 3, 6});
  util::Rng rng(seed);
  rng.fill_uniform(input.data(), -1, 1);
  return input;
}

bool bitwise_equal(const tensor::Tensor& a, const tensor::Tensor& b) {
  if (a.dims() != b.dims()) return false;
  return std::memcmp(a.data().data(), b.data().data(),
                     static_cast<std::size_t>(a.size()) * sizeof(double)) == 0;
}

TEST(DnnGraph, CompiledForwardBackwardBitwiseMatchesEager) {
  // Two identically-seeded networks; one compiled, one eager. Same
  // input, same loss gradient: outputs, input gradients, and every
  // parameter gradient must be bitwise identical — the compiled path
  // reroutes dispatch, never arithmetic.
  auto compiled = make_cnn(99);
  auto eager = make_cnn(99);
  compiled->compile({12, 12, 3, 6});
  ASSERT_TRUE(compiled->compiled());

  const tensor::Tensor input = random_input(7);
  const tensor::Tensor y_c = compiled->forward(input);
  const tensor::Tensor y_e = eager->forward(input);
  EXPECT_TRUE(bitwise_equal(y_c, y_e));

  tensor::Tensor d_out({10, 6});
  util::Rng grad_rng(13);
  grad_rng.fill_uniform(d_out.data(), -1, 1);
  const tensor::Tensor dx_c = compiled->backward(d_out);
  const tensor::Tensor dx_e = eager->backward(d_out);
  EXPECT_TRUE(bitwise_equal(dx_c, dx_e));

  const auto params_c = compiled->params();
  const auto params_e = eager->params();
  ASSERT_EQ(params_c.size(), params_e.size());
  for (std::size_t p = 0; p < params_c.size(); ++p) {
    EXPECT_TRUE(bitwise_equal(*params_c[p].grad, *params_e[p].grad))
        << "param " << p;
  }
}

TEST(DnnGraph, RunEagerEscapeHatchMatchesCompiledOnOneNetwork) {
  // The escape hatch flips one compiled network back to the eager loop;
  // both regimes over the same weights agree bitwise.
  auto net = make_cnn(4242);
  net->compile({12, 12, 3, 6});
  const tensor::Tensor input = random_input(21);

  const tensor::Tensor y_compiled = net->forward(input);
  net->set_run_eager(true);
  const tensor::Tensor y_eager = net->forward(input);
  net->set_run_eager(false);
  EXPECT_TRUE(bitwise_equal(y_compiled, y_eager));
}

TEST(DnnGraph, SecondBatchServesPlanCacheHitsAndAllocatesNothingNew) {
  auto net = make_cnn(5);
  const CompiledStats& stats = net->compile({12, 12, 3, 6});
  const std::uint64_t arena_allocs_compile = stats.arena_allocations;

  // Plan warm-up at compile time is counter-neutral: the serve-time
  // ledger starts clean.
  api::PlanCacheCounters counters = net->context()->plan_cache_counters();
  EXPECT_EQ(counters.hits, 0u);
  EXPECT_EQ(counters.misses, 0u);

  const tensor::Tensor input = random_input(3);
  tensor::Tensor d_out({10, 6});
  util::Rng grad_rng(17);
  grad_rng.fill_uniform(d_out.data(), -1, 1);

  auto step = [&] {
    net->forward(input);
    net->backward(d_out);
  };
  step();  // batch 1: every dispatch hits the warmed entries
  counters = net->context()->plan_cache_counters();
  EXPECT_GT(counters.hits, 0u);
  EXPECT_EQ(counters.misses, 0u);
  const std::uint64_t hits_after_first = counters.hits;

  // Steady state: batch 2 and batch 3 must cost exactly the same number
  // of tensor allocations (no warm-up effects left), the arena must not
  // grow, and the plan cache keeps serving hits.
  step();  // batch 2
  const std::uint64_t allocs_before = tensor::allocation_count();
  step();  // batch 3
  const std::uint64_t batch3_cost = tensor::allocation_count() - allocs_before;
  const std::uint64_t allocs_before4 = tensor::allocation_count();
  step();  // batch 4
  const std::uint64_t batch4_cost = tensor::allocation_count() - allocs_before4;
  EXPECT_EQ(batch3_cost, batch4_cost);

  counters = net->context()->plan_cache_counters();
  EXPECT_GT(counters.hits, hits_after_first);
  EXPECT_EQ(counters.misses, 0u);
  EXPECT_EQ(net->compiled_stats().arena_allocations, arena_allocs_compile);
}

TEST(DnnGraph, CompiledStepEmitsPerLayerTraceSpans) {
  auto net = make_cnn(6);
  sim::EventTracer tracer;
  CompileOptions options;
  options.tracer = &tracer;
  net->compile({12, 12, 3, 6}, options);
  tracer.clear();  // drop compile-time plan_cache warm events

  const tensor::Tensor input = random_input(8);
  net->forward(input);
  tensor::Tensor d_out({10, 6});
  net->backward(d_out);

  std::size_t fwd = 0, bwd = 0;
  for (const sim::TraceEvent& event : tracer.events()) {
    if (event.category != "layer") continue;
    if (event.name.find(" fwd ") != std::string::npos) ++fwd;
    if (event.name.find(" bwd ") != std::string::npos) ++bwd;
    EXPECT_NE(event.name.find("in="), std::string::npos) << event.name;
    EXPECT_NE(event.name.find("out="), std::string::npos) << event.name;
    EXPECT_GE(event.end_cycle, event.begin_cycle);
  }
  // One span per graph node per phase (fusion collapses conv+relu, so
  // this is fewer than the layer count).
  EXPECT_EQ(fwd, net->compiled_stats().graph_nodes);
  EXPECT_EQ(bwd, net->compiled_stats().graph_nodes);
  EXPECT_LT(net->compiled_stats().graph_nodes, net->num_layers());
}

TEST(DnnGraph, ArenaPackingBeatsOneBufferPerTensor) {
  auto net = make_cnn(2);
  const CompiledStats& stats = net->compile({12, 12, 3, 6});
  EXPECT_GT(stats.arena_naive_bytes, 0);
  EXPECT_LT(stats.arena_peak_bytes, stats.arena_naive_bytes);
  // Values the optimized graph materializes: the input plus one output
  // per node, each with an activation and a gradient slot. Fused-away
  // intermediates never touch the arena.
  EXPECT_EQ(stats.arena_slots, 2 * (stats.graph_nodes + 1));
  EXPECT_EQ(stats.graph_nodes, net->num_layers() - stats.fused_conv_act -
                                   stats.fused_fc_act);
  EXPECT_EQ(stats.activation_dims.size(), net->num_layers() + 1);
  EXPECT_EQ(stats.activation_dims.back(),
            (std::vector<std::int64_t>{10, 6}));
}

TEST(DnnGraph, CompileRejectsShapeMismatches) {
  auto net = make_cnn(1);
  // Wrong channel count for the first conv.
  EXPECT_THROW(net->compile({12, 12, 4, 6}), std::invalid_argument);
  // FC feature mismatch surfaces during inference, not at run time.
  Network bad;
  util::Rng rng(3);
  bad.emplace<FullyConnected>(32, 4, rng);
  EXPECT_THROW(bad.compile({31, 2}), std::invalid_argument);
  // A compiled net rejects inputs that disagree with the compiled shape.
  net->compile({12, 12, 3, 6});
  tensor::Tensor wrong({12, 12, 3, 2});
  EXPECT_THROW(net->forward(wrong), std::invalid_argument);
}

TEST(DnnGraph, FaultLadderEngagesDuringCompiledTrainingStep) {
  // A 2x2 mesh and a mesh-executable conv: under a persistent DMA fault
  // plan the forward degrades to host GEMM (recorded fallback, still
  // correct) while backward-filter — which has no host route for
  // mesh-executable shapes — surfaces kDeviceFault as a BackendError,
  // and the resilient trainer rolls back to the checkpoint: every rung
  // of the ladder under one compiled step.
  arch::Sw26010Spec spec = arch::default_spec();
  spec.mesh_rows = 2;
  spec.mesh_cols = 2;

  Network net;
  util::Rng rng(77);
  const auto shape = conv::ConvShape::from_output(4, 2, 2, 3, 4, 2, 2);
  net.emplace<Convolution>(shape, rng);
  net.emplace<Relu>();
  net.emplace<FullyConnected>(3 * 4 * 2, 3, rng);
  net.emplace<Softmax>();
  CompileOptions options;
  options.spec = &spec;
  net.compile({4, 5, 2, 4}, options);

  Sgd sgd(0.01);
  Trainer trainer(net, sgd);
  trainer.enable_checkpointing(testing::TempDir() + "graph_ladder_ckpt.bin",
                               /*interval=*/1);

  Batch batch;
  batch.images = tensor::Tensor({4, 5, 2, 4});
  util::Rng data_rng(88);
  data_rng.fill_uniform(batch.images.data(), -1, 1);
  batch.labels = {0, 1, 2, 0};

  // Clean step: the mesh route works, nothing rolls back. (The FC's
  // host-territory shapes record designed host reroutes even now —
  // capture the baseline so the fault run's *additional* degradations
  // are what's measured.)
  Trainer::ResilientStep clean = trainer.train_step_resilient(batch);
  EXPECT_FALSE(clean.rolled_back);
  const std::uint64_t clean_fallbacks =
      net.context()->fault_counters().host_fallbacks;

  // Persistent faults: every DMA attempt fails.
  sim::FaultPlan plan;
  plan.fail_first_dma = 1u << 20;
  net.context()->set_fault_plan(&plan);
  net.context()->set_retry_policy(2, 8);

  Trainer::ResilientStep faulty = trainer.train_step_resilient(batch);
  EXPECT_TRUE(faulty.rolled_back);
  EXPECT_GT(net.context()->fault_counters().host_fallbacks, clean_fallbacks);

  // Clearing the plan heals the step.
  net.context()->set_fault_plan(nullptr);
  Trainer::ResilientStep healed = trainer.train_step_resilient(batch);
  EXPECT_FALSE(healed.rolled_back);
}

TEST(DnnGraph, EvaluateRestoresTrainingModeWithDropout) {
  // Regression: evaluate() used to leave the network in eval mode, so
  // every subsequent training step silently ran without dropout. The
  // RAII guard restores the prior mode, and eval itself is
  // deterministic (dropout off): two identical datasets score equal.
  auto make_net = [] {
    auto net = std::make_unique<Network>();
    util::Rng rng(11);
    net->emplace<FullyConnected>(8 * 8, 16, rng);
    net->emplace<Relu>();
    net->emplace<Dropout>(0.5, 123);
    net->emplace<FullyConnected>(16, 4, rng);
    net->emplace<Softmax>();
    return net;
  };
  auto net = make_net();
  net->compile({8, 8, 1, 5});
  Sgd sgd(0.05);
  Trainer trainer(*net, sgd);

  net->set_training(true);
  ASSERT_TRUE(net->training());
  SyntheticBars data_a(8, 4, 0.1, 555);
  SyntheticBars data_b(8, 4, 0.1, 555);
  const double acc_a = trainer.evaluate(data_a, 5, 3);
  EXPECT_TRUE(net->training());  // restored, not left in eval
  const double acc_b = trainer.evaluate(data_b, 5, 3);
  EXPECT_TRUE(net->training());
  EXPECT_EQ(acc_a, acc_b);  // dropout was really off during eval

  // The guard restores eval mode too, if that's what the caller had.
  net->set_training(false);
  trainer.evaluate(data_a, 5, 1);
  EXPECT_FALSE(net->training());
}

TEST(DnnGraph, DataParallelReplicasShareOneBackendContext) {
  const auto make_replica = [] {
    auto net = std::make_unique<Network>();
    util::Rng rng(31);
    conv::ConvShape shape;
    shape.batch = 3;
    shape.ni = 1;
    shape.no = 4;
    shape.ri = 8;
    shape.ci = 8;
    shape.kr = 3;
    shape.kc = 3;
    net->emplace<Convolution>(shape, rng);
    net->emplace<Relu>();
    net->emplace<FullyConnected>(6 * 6 * 4, 4, rng);
    net->emplace<Softmax>();
    return net;
  };
  parallel::DataParallelTrainer dp(2, make_replica, 0.05);
  dp.compile({8, 8, 1, 3});

  ASSERT_NE(dp.shared_context(), nullptr);
  EXPECT_EQ(dp.replica(0).context(), dp.shared_context());
  EXPECT_EQ(dp.replica(1).context(), dp.shared_context());
  EXPECT_TRUE(dp.replica(0).compiled());
  EXPECT_TRUE(dp.replica(1).compiled());

  SyntheticBars data(8, 4, 0.1, 99);
  std::vector<Batch> shards{data.sample(3), data.sample(3)};
  const auto result = dp.train_step(shards);
  EXPECT_TRUE(std::isfinite(result.loss));
  EXPECT_EQ(result.live_nodes, 2);
  // Both replicas dispatched through the one context: its serve ledger
  // saw traffic, and lockstep updates kept them bit-identical.
  EXPECT_GT(dp.shared_context()->plan_cache_counters().hits, 0u);
  EXPECT_EQ(dp.max_replica_divergence(), 0.0);
}

}  // namespace
}  // namespace swdnn::dnn
