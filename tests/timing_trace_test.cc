// Issue-trace consistency: the optional trace must agree with the
// aggregate SimResult on every stream.

#include <gtest/gtest.h>

#include <set>

#include "src/timing/kernels.h"
#include "src/timing/pipeline.h"
#include "src/util/rng.h"

namespace swdnn::timing {
namespace {

void check_trace_consistency(const arch::InstructionStream& stream) {
  DualPipelineSimulator sim;
  IssueTrace trace;
  const SimResult with_trace = sim.simulate(stream, &trace);
  const SimResult without = sim.simulate(stream);

  // Tracing must not perturb the simulation.
  EXPECT_EQ(with_trace.cycles, without.cycles);
  EXPECT_EQ(with_trace.dual_issue_cycles, without.dual_issue_cycles);

  // Every instruction issued exactly once, in order.
  ASSERT_EQ(trace.size(), stream.size());
  std::set<std::size_t> seen;
  std::uint64_t prev_cycle = 0;
  for (const IssueEvent& e : trace) {
    EXPECT_TRUE(seen.insert(e.index).second) << "double issue " << e.index;
    EXPECT_GE(e.cycle, prev_cycle);
    prev_cycle = e.cycle;
    EXPECT_TRUE(e.slot == '0' || e.slot == '1');
  }

  // Per-cycle structural limits: at most one instruction per slot.
  std::set<std::pair<std::uint64_t, char>> slots;
  for (const IssueEvent& e : trace) {
    EXPECT_TRUE(slots.insert({e.cycle, e.slot}).second)
        << "slot " << e.slot << " double-booked at cycle " << e.cycle;
  }

  // Slot/pipeline class agreement.
  for (const IssueEvent& e : trace) {
    const auto cls = arch::op_info(stream[e.index].op).pipeline;
    if (cls == arch::PipelineClass::kP0Only) {
      EXPECT_EQ(e.slot, '0');
    }
    if (cls == arch::PipelineClass::kP1Only) {
      EXPECT_EQ(e.slot, '1');
    }
  }

  // P0/P1 counts match the aggregates.
  std::uint64_t p0 = 0, p1 = 0;
  for (const IssueEvent& e : trace) {
    (e.slot == '0' ? p0 : p1) += 1;
  }
  EXPECT_EQ(p0, with_trace.issued_p0);
  EXPECT_EQ(p1, with_trace.issued_p1);
}

TEST(IssueTrace, OriginalScheduleConsistent) {
  check_trace_consistency(original_stream(3));
}

TEST(IssueTrace, ReorderedScheduleConsistent) {
  check_trace_consistency(reordered_stream(4));
}

TEST(IssueTrace, RandomStreamsConsistent) {
  // Property test: random instruction soups must keep the invariants.
  util::Rng rng(2025);
  for (int trial = 0; trial < 20; ++trial) {
    arch::InstructionStream stream;
    const int len = static_cast<int>(rng.uniform_int(1, 60));
    for (int i = 0; i < len; ++i) {
      const int pick = static_cast<int>(rng.uniform_int(0, 4));
      const int r1 = static_cast<int>(rng.uniform_int(0, 15));
      const int r2 = static_cast<int>(rng.uniform_int(0, 15));
      const int r3 = static_cast<int>(rng.uniform_int(0, 15));
      switch (pick) {
        case 0:
          stream.push_back(arch::make_vload(r1, 100));
          break;
        case 1:
          stream.push_back(arch::make_vfmad(r1, r2, r3));
          break;
        case 2:
          stream.push_back(arch::make_addi(r1));
          break;
        case 3:
          stream.push_back(arch::make_cmp(r1, r2));
          break;
        default:
          stream.push_back(arch::make_branch(r1));
          break;
      }
    }
    check_trace_consistency(stream);
  }
}

TEST(IssueTrace, CyclesBoundedByStreamStructure) {
  // More properties on random streams: issue takes at least
  // ceil(len/2) cycles (two slots) and at most len + total stall
  // potential; dual issues never exceed len/2.
  util::Rng rng(77);
  DualPipelineSimulator sim;
  for (int trial = 0; trial < 20; ++trial) {
    arch::InstructionStream stream;
    const int len = static_cast<int>(rng.uniform_int(2, 80));
    for (int i = 0; i < len; ++i) {
      if (rng.uniform(0, 1) < 0.5) {
        stream.push_back(
            arch::make_vload(static_cast<int>(rng.uniform_int(0, 7)), 100));
      } else {
        stream.push_back(
            arch::make_vfmad(static_cast<int>(rng.uniform_int(8, 15)),
                             static_cast<int>(rng.uniform_int(0, 7)),
                             static_cast<int>(rng.uniform_int(0, 7))));
      }
    }
    const SimResult r = sim.simulate(stream);
    EXPECT_GE(r.cycles, static_cast<std::uint64_t>((len + 1) / 2));
    EXPECT_LE(r.dual_issue_cycles, static_cast<std::uint64_t>(len / 2));
    EXPECT_EQ(r.issued_p0 + r.issued_p1, static_cast<std::uint64_t>(len));
  }
}

}  // namespace
}  // namespace swdnn::timing
