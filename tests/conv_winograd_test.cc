// Winograd F(2x2, 3x3): transform identities, full-conv correctness,
// and the SW26010 trade-off analysis.

#include <gtest/gtest.h>

#include "src/conv/reference.h"
#include "src/conv/winograd.h"
#include "src/util/rng.h"

namespace swdnn::conv {
namespace {

TEST(WinogradTransforms, OneDimensionalIdentity) {
  // F(2,3) row-check through the 2-D transforms: place a 1-D signal in
  // the first row and verify both outputs against the direct formula.
  double d[4][4] = {};
  double g[3][3] = {};
  util::Rng rng(1);
  for (int i = 0; i < 4; ++i) d[0][i] = rng.uniform(-1, 1);
  for (int i = 0; i < 3; ++i) g[0][i] = rng.uniform(-1, 1);
  // 2-D conv of a first-row-only tile with a first-row-only filter has
  // output only in the first output row.
  double u[4][4], v[4][4], m[4][4], y[2][2];
  winograd_filter_transform(g, u);
  winograd_input_transform(d, v);
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c) m[r][c] = u[r][c] * v[r][c];
  winograd_output_transform(m, y);
  EXPECT_NEAR(y[0][0], d[0][0] * g[0][0] + d[0][1] * g[0][1] +
                           d[0][2] * g[0][2],
              1e-12);
  EXPECT_NEAR(y[0][1], d[0][1] * g[0][0] + d[0][2] * g[0][1] +
                           d[0][3] * g[0][2],
              1e-12);
}

TEST(WinogradTransforms, FullTileMatchesDirect2d) {
  util::Rng rng(2);
  double d[4][4], g[3][3];
  for (auto& row : d)
    for (double& v : row) v = rng.uniform(-1, 1);
  for (auto& row : g)
    for (double& v : row) v = rng.uniform(-1, 1);

  double u[4][4], v4[4][4], m[4][4], y[2][2];
  winograd_filter_transform(g, u);
  winograd_input_transform(d, v4);
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c) m[r][c] = u[r][c] * v4[r][c];
  winograd_output_transform(m, y);

  for (int ro = 0; ro < 2; ++ro) {
    for (int co = 0; co < 2; ++co) {
      double direct = 0;
      for (int kr = 0; kr < 3; ++kr)
        for (int kc = 0; kc < 3; ++kc)
          direct += d[ro + kr][co + kc] * g[kr][kc];
      EXPECT_NEAR(y[ro][co], direct, 1e-12) << ro << "," << co;
    }
  }
}

TEST(WinogradTransforms, FilterOfOnesTransformsExactly) {
  // G * ones * G^T has a known closed form: rows scale by (1, 1.5,
  // .5, 1) in both dimensions.
  double g[3][3];
  for (auto& row : g)
    for (double& v : row) v = 1.0;
  double u[4][4];
  winograd_filter_transform(g, u);
  const double expect[4] = {1.0, 1.5, 0.5, 1.0};
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c)
      EXPECT_NEAR(u[r][c], expect[r] * expect[c], 1e-12);
}

struct WinoCase {
  ConvShape shape;
  std::string label;
};

WinoCase wc(std::int64_t b, std::int64_t ni, std::int64_t no,
            std::int64_t ro, std::int64_t co) {
  return {ConvShape::from_output(b, ni, no, ro, co, 3, 3),
          "B" + std::to_string(b) + "Ni" + std::to_string(ni) + "No" +
              std::to_string(no) + "o" + std::to_string(ro) + "x" +
              std::to_string(co)};
}

class WinogradConv : public ::testing::TestWithParam<WinoCase> {};

TEST_P(WinogradConv, MatchesReference) {
  const ConvShape& s = GetParam().shape;
  util::Rng rng(3);
  tensor::Tensor in = make_input(s), w = make_filter(s);
  rng.fill_uniform(in.data(), -1, 1);
  rng.fill_uniform(w.data(), -1, 1);
  tensor::Tensor expected = make_output(s), actual = make_output(s);
  reference_forward(in, w, expected, s);
  winograd_forward(in, w, actual, s);
  EXPECT_LE(expected.max_abs_diff(actual), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WinogradConv,
    ::testing::Values(wc(1, 1, 1, 2, 2), wc(2, 3, 4, 4, 6),
                      wc(4, 2, 2, 6, 2), wc(2, 4, 3, 8, 8)),
    [](const ::testing::TestParamInfo<WinoCase>& info) {
      return info.param.label;
    });

TEST(WinogradConv, RejectsNon3x3Filter) {
  const ConvShape s = ConvShape::from_output(1, 1, 1, 2, 2, 5, 5);
  tensor::Tensor in = make_input(s), w = make_filter(s),
                 out = make_output(s);
  EXPECT_THROW(winograd_forward(in, w, out, s), std::invalid_argument);
}

TEST(WinogradConv, RejectsOddOutputExtent) {
  const ConvShape s = ConvShape::from_output(1, 1, 1, 3, 4, 3, 3);
  tensor::Tensor in = make_input(s), w = make_filter(s),
                 out = make_output(s);
  EXPECT_THROW(winograd_forward(in, w, out, s), std::invalid_argument);
}

TEST(WinogradAnalysisModel, NominalReductionIs2Point25) {
  const auto a = winograd_analysis(
      ConvShape::from_output(128, 128, 128, 64, 64, 3, 3));
  EXPECT_NEAR(a.multiply_reduction, 2.25, 1e-9);
  EXPECT_NEAR(a.filter_bytes_ratio, 16.0 / 9.0, 1e-12);
}

TEST(WinogradAnalysisModel, TransformsEatIntoTheGain) {
  // On a machine where adds and multiplies share one pipeline, the
  // effective speedup sits well below the nominal 2.25x — and shrinks
  // as channel depth falls (transforms amortize over ni*no).
  const auto deep = winograd_analysis(
      ConvShape::from_output(128, 256, 256, 64, 64, 3, 3));
  const auto shallow = winograd_analysis(
      ConvShape::from_output(128, 16, 16, 64, 64, 3, 3));
  EXPECT_LT(deep.effective_speedup, 2.25);
  EXPECT_GT(deep.effective_speedup, 1.5);
  EXPECT_LT(shallow.effective_speedup, deep.effective_speedup);
}

}  // namespace
}  // namespace swdnn::conv
