// Chaos soak gate for the serving runtime.
//
// Six tenants hammer one InferenceServer from their own threads while a
// seeded serve-level fault plan fails two of them (one transient, one
// persistent). The gate asserts the serving contract end to end:
//
//   1. EVERY submitted request terminates with a definite status — a
//      hard watchdog thread force-exits the process nonzero if the soak
//      wedges (deadlock, lost promise), so a hang can never look like a
//      pass, even under a hung gtest.
//   2. Every ACCEPTED result (kOk) is BITWISE equal to an unfaulted
//      batch-1 eager execution of the same model on the same sample —
//      batching, replicas, retries and chaos never change the numerics.
//   3. Fault isolation: tenants with no fault profile never observe
//      kFailed; a faulty tenant's chaos is answered with statuses, not
//      with corruption of its batchmates.
//   4. The counter ledger balances: terminal resolutions sum to
//      submissions.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "src/dnn/convolution.h"
#include "src/dnn/fully_connected.h"
#include "src/dnn/network.h"
#include "src/dnn/relu.h"
#include "src/dnn/softmax.h"
#include "src/serve/server.h"
#include "src/util/rng.h"

namespace swdnn::serve {
namespace {

using namespace std::chrono_literals;

constexpr int kTenants = 6;
constexpr int kRequestsPerTenant = 40;
constexpr int kTransientTenant = 4;
constexpr int kPersistentTenant = 5;

/// Host-routed model (channels indivisible by any mesh): per-sample
/// results are bitwise-independent of batch width, the property the
/// soak's golden comparison rides on.
std::unique_ptr<dnn::Network> make_model(std::int64_t batch) {
  auto net = std::make_unique<dnn::Network>();
  util::Rng rng(777);
  conv::ConvShape c;
  c.batch = batch;
  c.ni = 3;
  c.no = 5;
  c.ri = 8;
  c.ci = 8;
  c.kr = 3;
  c.kc = 3;
  net->emplace<dnn::Convolution>(c, rng, dnn::ConvBackend::kHostIm2col,
                                 /*with_bias=*/true);
  net->emplace<dnn::Relu>();
  net->emplace<dnn::FullyConnected>(6 * 6 * 5, 10, rng);
  net->emplace<dnn::Softmax>();
  return net;
}

const std::vector<std::int64_t> kSampleDims = {8, 8, 3};

tensor::Tensor make_sample(std::uint64_t seed) {
  tensor::Tensor t(kSampleDims);
  util::Rng rng(seed);
  rng.fill_uniform(t.data(), -1.0, 1.0);
  return t;
}

tensor::Tensor eager_reference(const tensor::Tensor& sample) {
  auto net = make_model(1);
  std::vector<std::int64_t> dims = kSampleDims;
  dims.push_back(1);
  tensor::Tensor input(dims);
  std::copy(sample.data().begin(), sample.data().end(), input.data().begin());
  net->set_training(false);
  return net->forward(input);
}

bool bitwise_equal(const tensor::Tensor& a, const tensor::Tensor& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data().data(), b.data().data(),
                     sizeof(double) * static_cast<std::size_t>(a.size())) == 0;
}

TEST(ServeChaosSoak, EveryRequestTerminatesAndAcceptedResultsAreBitwise) {
  // Hard hang gate: if the soak has not finished inside the wall
  // budget, exit the PROCESS nonzero. std::_Exit bypasses gtest, so a
  // deadlocked server cannot be reported as anything but a failure.
  std::atomic<bool> done{false};
  std::thread hang_guard([&done] {
    for (int i = 0; i < 1200; ++i) {
      if (done.load()) return;
      std::this_thread::sleep_for(100ms);
    }
    std::fprintf(stderr,
                 "chaos soak HUNG: requests undetermined after 120 s\n");
    std::_Exit(7);
  });

  ServeFaultPlan plan;
  plan.seed = 20260808;
  plan.tenants[kTransientTenant] =
      TenantFaultProfile{.fail_first = 3, .fail_rate = 0.15};
  plan.tenants[kPersistentTenant] =
      TenantFaultProfile{.fail_rate = 0.25, .persistent = true};

  ServerConfig config;
  config.max_batch = 4;
  config.batch_budget = 300us;
  config.default_deadline = 5s;  // generous: tsan runs are slow
  config.num_replicas = 2;
  // Generous admission bounds: the soak gates termination, bitwise
  // goldenness and fault isolation; overload behaviour has its own
  // tests and the serving bench's overload scenario.
  config.max_queue = 512;
  config.max_queue_per_tenant = 128;
  config.max_attempts = 3;
  config.retry_backoff = 200us;
  config.breaker.failure_threshold = 4;
  config.breaker.open_duration = 20ms;
  config.watchdog_period = 1ms;
  config.request_faults = &plan;

  {
    InferenceServer server(make_model, kSampleDims, config);

    struct Submission {
      std::uint64_t seed = 0;
      std::future<ServeResult> future;
    };
    std::vector<std::vector<Submission>> per_tenant(kTenants);
    std::vector<std::thread> clients;
    clients.reserve(kTenants);
    for (int tenant = 0; tenant < kTenants; ++tenant) {
      clients.emplace_back([&server, &per_tenant, tenant] {
        auto& mine = per_tenant[static_cast<std::size_t>(tenant)];
        mine.reserve(kRequestsPerTenant);
        for (int i = 0; i < kRequestsPerTenant; ++i) {
          const std::uint64_t seed =
              static_cast<std::uint64_t>(tenant) * 1000 +
              static_cast<std::uint64_t>(i);
          Submission s;
          s.seed = seed;
          s.future = server.submit(tenant, make_sample(seed));
          mine.push_back(std::move(s));
          // Uneven pacing interleaves tenants differently every run;
          // correctness must not depend on the interleaving.
          if (i % 3 == tenant % 3) std::this_thread::yield();
        }
      });
    }
    for (std::thread& t : clients) t.join();

    std::uint64_t ok = 0, failed = 0, rejected = 0, shed = 0, deadline = 0;
    for (int tenant = 0; tenant < kTenants; ++tenant) {
      for (Submission& s : per_tenant[static_cast<std::size_t>(tenant)]) {
        ServeResult result = s.future.get();  // gate 1: must resolve
        switch (result.status) {
          case ServeStatus::kOk: {
            ++ok;
            // Gate 2: accepted answers are bitwise-golden.
            const tensor::Tensor golden =
                eager_reference(make_sample(s.seed));
            ASSERT_TRUE(bitwise_equal(result.output, golden))
                << "tenant " << tenant << " seed " << s.seed;
            break;
          }
          case ServeStatus::kFailed:
            ++failed;
            // Gate 3: only chaos tenants may fail.
            EXPECT_TRUE(tenant == kTransientTenant ||
                        tenant == kPersistentTenant)
                << "clean tenant " << tenant << " failed: " << result.error;
            break;
          case ServeStatus::kRejected:
            ++rejected;
            break;
          case ServeStatus::kShed:
            ++shed;
            break;
          case ServeStatus::kDeadlineExceeded:
            ++deadline;
            break;
          case ServeStatus::kShutdown:
            FAIL() << "request resolved kShutdown before stop()";
        }
      }
    }
    server.drain();

    const std::uint64_t total =
        static_cast<std::uint64_t>(kTenants) * kRequestsPerTenant;
    EXPECT_EQ(ok + failed + rejected + shed + deadline, total);
    const ServingCounters counters = server.counters();
    EXPECT_EQ(counters.submitted, total);
    // Gate 4: the ledger balances — every admission is accounted for by
    // exactly one terminal counter.
    EXPECT_EQ(counters.completed + counters.failed + counters.shed +
                  counters.deadline_missed + counters.rejected(),
              total);
    EXPECT_EQ(counters.completed, ok);
    EXPECT_EQ(counters.failed, failed);
    // The chaos campaign actually ran.
    EXPECT_GT(counters.chaos_injected, 0u);
    EXPECT_GT(failed, 0u);
    // Clean tenants overwhelmingly succeed: chaos is isolated.
    EXPECT_GE(ok, 4u * kRequestsPerTenant);
    server.stop();
  }

  done.store(true);
  hang_guard.join();
}

}  // namespace
}  // namespace swdnn::serve
