// The per-tenant circuit breaker state machine, driven with hand-made
// time points: trip on consecutive failures, cool-down refusals, the
// single half-open probe protocol, stale-outcome immunity, and probe
// abandonment.

#include <gtest/gtest.h>

#include <chrono>

#include "src/serve/breaker.h"

namespace swdnn::serve {
namespace {

using namespace std::chrono_literals;
using TimePoint = CircuitBreaker::TimePoint;

BreakerConfig config(int threshold, std::chrono::milliseconds open_ms) {
  BreakerConfig c;
  c.failure_threshold = threshold;
  c.open_duration = open_ms;
  return c;
}

TEST(Breaker, TripsOnlyOnConsecutiveFailures) {
  CircuitBreaker breaker(config(3, 10ms));
  const TimePoint t0{};
  EXPECT_EQ(breaker.admit(t0), CircuitBreaker::Admission::kAdmit);

  breaker.on_failure(t0, false);
  breaker.on_failure(t0, false);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.on_success(false);  // resets the run
  EXPECT_EQ(breaker.consecutive_failures(), 0);
  breaker.on_failure(t0, false);
  breaker.on_failure(t0, false);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.on_failure(t0, false);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
}

TEST(Breaker, OpenRejectsUntilCooldownThenAdmitsSingleProbe) {
  CircuitBreaker breaker(config(1, 10ms));
  const TimePoint t0{};
  breaker.on_failure(t0, false);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);

  EXPECT_EQ(breaker.admit(t0 + 5ms), CircuitBreaker::Admission::kReject);
  EXPECT_EQ(breaker.admit(t0 + 10ms), CircuitBreaker::Admission::kProbe);
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  // Only one probe: further admissions are refused while it's in
  // flight.
  EXPECT_EQ(breaker.admit(t0 + 11ms), CircuitBreaker::Admission::kReject);
}

TEST(Breaker, ProbeSuccessClosesProbeFailureReopens) {
  CircuitBreaker breaker(config(1, 10ms));
  const TimePoint t0{};
  breaker.on_failure(t0, false);
  ASSERT_EQ(breaker.admit(t0 + 10ms), CircuitBreaker::Admission::kProbe);
  breaker.on_failure(t0 + 11ms, true);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 2u);
  // Fresh cool-down from the reopen time.
  EXPECT_EQ(breaker.admit(t0 + 15ms), CircuitBreaker::Admission::kReject);
  ASSERT_EQ(breaker.admit(t0 + 21ms), CircuitBreaker::Admission::kProbe);
  breaker.on_success(true);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.admit(t0 + 22ms), CircuitBreaker::Admission::kAdmit);
}

TEST(Breaker, StaleOutcomesCannotCorruptProbeProtocol) {
  CircuitBreaker breaker(config(1, 10ms));
  const TimePoint t0{};
  breaker.on_failure(t0, false);
  // Outcomes of requests admitted before the trip arrive while open:
  // ignored either way.
  breaker.on_success(false);
  breaker.on_failure(t0 + 1ms, false);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);

  ASSERT_EQ(breaker.admit(t0 + 10ms), CircuitBreaker::Admission::kProbe);
  // Stale non-probe outcomes during half-open neither close nor reopen.
  breaker.on_success(false);
  breaker.on_failure(t0 + 11ms, false);
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  breaker.on_success(true);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(Breaker, AbandonedProbeReleasesSlotForNextAdmission) {
  CircuitBreaker breaker(config(1, 10ms));
  const TimePoint t0{};
  breaker.on_failure(t0, false);
  ASSERT_EQ(breaker.admit(t0 + 10ms), CircuitBreaker::Admission::kProbe);
  EXPECT_EQ(breaker.admit(t0 + 11ms), CircuitBreaker::Admission::kReject);
  // The probe was shed/deadline-swept without executing: the slot must
  // come back or the breaker wedges half-open forever.
  breaker.on_probe_abandoned();
  EXPECT_EQ(breaker.admit(t0 + 12ms), CircuitBreaker::Admission::kProbe);
}

TEST(Breaker, ThresholdClampedToAtLeastOne) {
  CircuitBreaker breaker(config(0, 10ms));
  breaker.on_failure(TimePoint{}, false);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
}

}  // namespace
}  // namespace swdnn::serve
