// The resilient serving runtime: dynamic batching (flush-on-full and
// flush-on-budget), bitwise equality of batched serving against
// unfaulted single-sample eager execution, admission control (tenant
// quota, queue bound, load shedding), per-request deadlines, serve-level
// retry with backoff, per-tenant circuit breakers, the backend mesh
// fault ladder underneath the server, shutdown semantics, health, and
// the serve-instant trace stream.

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "src/dnn/convolution.h"
#include "src/dnn/fully_connected.h"
#include "src/dnn/network.h"
#include "src/dnn/relu.h"
#include "src/dnn/softmax.h"
#include "src/serve/server.h"
#include "src/sim/trace.h"
#include "src/util/rng.h"

namespace swdnn::serve {
namespace {

using namespace std::chrono_literals;

arch::Sw26010Spec mesh_spec(int dim) {
  arch::Sw26010Spec spec = arch::default_spec();
  spec.mesh_rows = dim;
  spec.mesh_cols = dim;
  return spec;
}

/// Host-routed model over 8x8x3 samples: channel counts indivisible by
/// any mesh keep every dispatch on the im2col host route, whose
/// k-ordered per-sample dot products make batch-1 eager and batch-B
/// compiled results BITWISE equal per sample. Seeded per call so every
/// replica (and the golden batch-1 net) carries identical weights.
std::unique_ptr<dnn::Network> make_host_model(std::int64_t batch) {
  auto net = std::make_unique<dnn::Network>();
  util::Rng rng(777);
  conv::ConvShape c;
  c.batch = batch;
  c.ni = 3;
  c.no = 5;
  c.ri = 8;
  c.ci = 8;
  c.kr = 3;
  c.kc = 3;
  net->emplace<dnn::Convolution>(c, rng, dnn::ConvBackend::kHostIm2col,
                                 /*with_bias=*/true);
  net->emplace<dnn::Relu>();
  net->emplace<dnn::FullyConnected>(6 * 6 * 5, 10, rng);
  net->emplace<dnn::Softmax>();
  return net;
}

const std::vector<std::int64_t> kSampleDims = {8, 8, 3};

tensor::Tensor make_sample(std::uint64_t seed,
                           const std::vector<std::int64_t>& dims =
                               kSampleDims) {
  tensor::Tensor t(dims);
  util::Rng rng(seed);
  rng.fill_uniform(t.data(), -1.0, 1.0);
  return t;
}

/// Golden path the chaos gate compares against: a fresh batch-1 network
/// from the same factory, EAGER (never compiled), no faults anywhere.
tensor::Tensor eager_reference(const tensor::Tensor& sample) {
  auto net = make_host_model(1);
  std::vector<std::int64_t> dims = kSampleDims;
  dims.push_back(1);
  tensor::Tensor input(dims);
  std::copy(sample.data().begin(), sample.data().end(),
            input.data().begin());
  net->set_training(false);
  return net->forward(input);
}

bool bitwise_equal(const tensor::Tensor& a, const tensor::Tensor& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data().data(), b.data().data(),
                     sizeof(double) * static_cast<std::size_t>(a.size())) == 0;
}

/// Baseline config for tests: generous deadline so only tests that WANT
/// deadline behaviour see it, small budget so batches flush promptly.
ServerConfig test_config() {
  ServerConfig config;
  config.max_batch = 4;
  config.batch_budget = 1ms;
  config.default_deadline = 10s;
  config.watchdog_period = 1ms;
  return config;
}

TEST(ServeServer, BatchedServingMatchesSingleSampleEager) {
  ServerConfig config = test_config();
  config.num_replicas = 2;
  InferenceServer server(make_host_model, kSampleDims, config);

  constexpr int kRequests = 12;
  std::vector<tensor::Tensor> inputs;
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < kRequests; ++i) {
    inputs.push_back(make_sample(100 + static_cast<std::uint64_t>(i)));
    futures.push_back(server.submit(i % 3, inputs.back()));
  }
  for (int i = 0; i < kRequests; ++i) {
    ServeResult result = futures[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(result.status, ServeStatus::kOk) << result.error;
    EXPECT_EQ(result.attempts, 1);
    const tensor::Tensor golden = eager_reference(inputs[i]);
    EXPECT_TRUE(bitwise_equal(result.output, golden)) << "request " << i;
  }
  const ServingCounters counters = server.counters();
  EXPECT_EQ(counters.submitted, kRequests);
  EXPECT_EQ(counters.admitted, kRequests);
  EXPECT_EQ(counters.completed, kRequests);
  EXPECT_EQ(counters.rejected(), 0u);
  EXPECT_EQ(counters.shed, 0u);
  EXPECT_EQ(counters.deadline_missed, 0u);
  EXPECT_EQ(counters.batched_requests, kRequests);
  EXPECT_GE(counters.batches, 3u);  // 12 requests, batch cap 4
}

TEST(ServeServer, FlushOnBatchFull) {
  ServerConfig config = test_config();
  config.max_batch = 2;
  config.batch_budget = 10s;  // only fullness can flush
  InferenceServer server(make_host_model, kSampleDims, config);

  auto f1 = server.submit(1, make_sample(1));
  auto f2 = server.submit(1, make_sample(2));
  EXPECT_EQ(f1.get().status, ServeStatus::kOk);
  EXPECT_EQ(f2.get().status, ServeStatus::kOk);
  const ServingCounters counters = server.counters();
  EXPECT_GE(counters.full_flushes, 1u);
  EXPECT_EQ(counters.deadline_flushes, 0u);
}

TEST(ServeServer, FlushOnBudgetExpiryRunsPartialBatch) {
  ServerConfig config = test_config();
  config.max_batch = 8;  // never fills
  config.batch_budget = 1ms;
  InferenceServer server(make_host_model, kSampleDims, config);

  const tensor::Tensor input = make_sample(3);
  ServeResult result = server.submit(1, input).get();
  ASSERT_EQ(result.status, ServeStatus::kOk) << result.error;
  // Occupancy independence: a 1-of-8 batch yields the same bits as the
  // eager batch-1 golden run.
  EXPECT_TRUE(bitwise_equal(result.output, eager_reference(input)));
  const ServingCounters counters = server.counters();
  EXPECT_EQ(counters.batches, 1u);
  EXPECT_EQ(counters.batched_requests, 1u);
  EXPECT_EQ(counters.full_flushes, 0u);
  EXPECT_GE(counters.deadline_flushes, 1u);
}

TEST(ServeServer, AdmissionRejectsBeyondTenantQuota) {
  ServerConfig config = test_config();
  config.max_batch = 8;
  config.batch_budget = 10s;  // hold everything in the queue
  config.max_queue_per_tenant = 2;
  InferenceServer server(make_host_model, kSampleDims, config);

  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(server.submit(1, make_sample(10 + i)));
  }
  for (int i = 2; i < 5; ++i) {
    ServeResult result = futures[static_cast<std::size_t>(i)].get();
    EXPECT_EQ(result.status, ServeStatus::kRejected);
    EXPECT_EQ(result.reject_reason, RejectReason::kTenantQuota);
  }
  EXPECT_EQ(server.counters().rejected_tenant_quota, 3u);
  server.stop();
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get().status,
              ServeStatus::kShutdown);
  }
}

TEST(ServeServer, LoadShedDropsNewestFromHeaviestTenant) {
  ServerConfig config = test_config();
  config.max_batch = 8;
  config.batch_budget = 10s;
  config.max_queue = 4;
  InferenceServer server(make_host_model, kSampleDims, config);

  std::vector<std::future<ServeResult>> heavy;
  for (int i = 0; i < 3; ++i) {
    heavy.push_back(server.submit(1, make_sample(20 + i)));
  }
  auto light1 = server.submit(2, make_sample(30));
  // Queue now full (4). A light-tenant submission sheds the heavy
  // tenant's NEWEST queued request and is itself admitted.
  auto light2 = server.submit(2, make_sample(31));
  ServeResult shed = heavy[2].get();
  EXPECT_EQ(shed.status, ServeStatus::kShed);
  EXPECT_EQ(server.counters().shed, 1u);
  // Queue full again; a heavy-tenant submission (heaviest itself after
  // the tie with tenant 2) is refused outright, shedding nobody.
  ServeResult refused = server.submit(1, make_sample(32)).get();
  EXPECT_EQ(refused.status, ServeStatus::kRejected);
  EXPECT_EQ(refused.reject_reason, RejectReason::kQueueFull);
  EXPECT_EQ(server.counters().shed, 1u);
  server.stop();
}

TEST(ServeServer, QueuedRequestPastDeadlineIsSweptByWatchdog) {
  ServerConfig config = test_config();
  config.max_batch = 8;
  config.batch_budget = 10s;  // the batcher will never flush it
  InferenceServer server(make_host_model, kSampleDims, config);

  ServeResult result =
      server.submit(1, make_sample(40), Clock::now() + 5ms).get();
  EXPECT_EQ(result.status, ServeStatus::kDeadlineExceeded);
  EXPECT_GE(server.counters().deadline_missed, 1u);
  EXPECT_EQ(server.counters().completed, 0u);
}

TEST(ServeServer, ServeLevelRetryRecoversTransientFault) {
  ServeFaultPlan plan;
  plan.seed = 7;
  plan.tenants[7] = TenantFaultProfile{.fail_first = 2};
  ServerConfig config = test_config();
  config.request_faults = &plan;
  config.max_attempts = 4;
  config.retry_backoff = 500us;
  config.breaker.failure_threshold = 10;  // keep the breaker out of it
  InferenceServer server(make_host_model, kSampleDims, config);

  const tensor::Tensor input = make_sample(50);
  ServeResult result = server.submit(7, input).get();
  ASSERT_EQ(result.status, ServeStatus::kOk) << result.error;
  EXPECT_EQ(result.attempts, 3);  // 2 injected faults + 1 success
  EXPECT_TRUE(bitwise_equal(result.output, eager_reference(input)));
  const ServingCounters counters = server.counters();
  EXPECT_EQ(counters.retries, 2u);
  EXPECT_EQ(counters.chaos_injected, 2u);
  EXPECT_EQ(counters.completed, 1u);
  EXPECT_EQ(counters.failed, 0u);
}

TEST(ServeServer, PersistentFaultFailsFastWithoutRetry) {
  ServeFaultPlan plan;
  plan.tenants[7] = TenantFaultProfile{.fail_first = 1, .persistent = true};
  ServerConfig config = test_config();
  config.request_faults = &plan;
  config.max_attempts = 4;
  InferenceServer server(make_host_model, kSampleDims, config);

  ServeResult result = server.submit(7, make_sample(51)).get();
  EXPECT_EQ(result.status, ServeStatus::kFailed);
  EXPECT_EQ(result.backend_status, api::Status::kDeviceFault);
  EXPECT_EQ(result.attempts, 1);
  EXPECT_EQ(server.counters().retries, 0u);
}

TEST(ServeServer, BreakerOpensIsolatesTenantAndRecovers) {
  ServeFaultPlan plan;
  plan.tenants[9] = TenantFaultProfile{.fail_first = 3};
  ServerConfig config = test_config();
  config.request_faults = &plan;
  config.breaker.failure_threshold = 3;
  config.breaker.open_duration = 50ms;
  InferenceServer server(make_host_model, kSampleDims, config);

  // Three consecutive failures trip tenant 9's breaker.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(server.submit(9, make_sample(60 + i)).get().status,
              ServeStatus::kFailed);
  }
  EXPECT_EQ(server.tenant_breaker(9), BreakerState::kOpen);
  EXPECT_EQ(server.tenant_breaker_trips(9), 1u);
  EXPECT_EQ(server.counters().breaker_trips, 1u);

  // While open, tenant 9 is refused at admission...
  ServeResult rejected = server.submit(9, make_sample(63)).get();
  EXPECT_EQ(rejected.status, ServeStatus::kRejected);
  EXPECT_EQ(rejected.reject_reason, RejectReason::kBreakerOpen);
  // ...and other tenants are untouched (fault isolation).
  const tensor::Tensor input = make_sample(64);
  ServeResult other = server.submit(1, input).get();
  ASSERT_EQ(other.status, ServeStatus::kOk);
  EXPECT_TRUE(bitwise_equal(other.output, eager_reference(input)));

  // After the cool-down the half-open probe executes cleanly (the fault
  // budget is exhausted) and the breaker closes.
  std::this_thread::sleep_for(100ms);
  ServeResult probe = server.submit(9, make_sample(65)).get();
  EXPECT_EQ(probe.status, ServeStatus::kOk) << probe.error;
  EXPECT_EQ(server.tenant_breaker(9), BreakerState::kClosed);
}

/// Mesh-routed model on the 2x2 test mesh: one mesh-compatible
/// convolution, so the server's requests exercise the full backend
/// fault ladder (tile retry -> ranked-plan fallback -> host route).
std::unique_ptr<dnn::Network> make_mesh_model(std::int64_t batch) {
  auto net = std::make_unique<dnn::Network>();
  util::Rng rng(4242);
  const conv::ConvShape shape =
      conv::ConvShape::from_output(batch, 2, 2, 3, 4, 2, 2);
  net->emplace<dnn::Convolution>(shape, rng,
                                 dnn::ConvBackend::kSimulatedMesh);
  return net;
}

const std::vector<std::int64_t> kMeshSampleDims = {4, 5, 2};  // ri, ci, ni

TEST(ServeServer, MeshTransientFaultsAbsorbedBitwise) {
  const arch::Sw26010Spec spec = mesh_spec(2);
  ServerConfig clean_config = test_config();
  clean_config.spec = &spec;
  InferenceServer clean(make_mesh_model, kMeshSampleDims, clean_config);

  sim::FaultPlan faults;
  faults.fail_first_dma = 2;
  ServerConfig faulted_config = clean_config;
  faulted_config.device_faults = &faults;
  faulted_config.device_retry_attempts = 3;
  InferenceServer faulted(make_mesh_model, kMeshSampleDims, faulted_config);

  const tensor::Tensor input = make_sample(70, kMeshSampleDims);
  ServeResult clean_result = clean.submit(1, input).get();
  ServeResult faulted_result = faulted.submit(1, input).get();
  ASSERT_EQ(clean_result.status, ServeStatus::kOk) << clean_result.error;
  ASSERT_EQ(faulted_result.status, ServeStatus::kOk) << faulted_result.error;
  // Tile-level retries re-issue the exact transfer: same bits out.
  EXPECT_TRUE(bitwise_equal(clean_result.output, faulted_result.output));
  EXPECT_GT(faulted.counters().dma_retries, 0u);
  EXPECT_EQ(clean.counters().dma_retries, 0u);
}

TEST(ServeServer, MeshPersistentFaultsDegradeToHostRoute) {
  const arch::Sw26010Spec spec = mesh_spec(2);
  ServerConfig clean_config = test_config();
  clean_config.spec = &spec;
  InferenceServer clean(make_mesh_model, kMeshSampleDims, clean_config);

  sim::FaultPlan faults;
  faults.dma_fault_rate = 1.0;  // every mesh attempt fails, every plan
  ServerConfig faulted_config = clean_config;
  faulted_config.device_faults = &faults;
  InferenceServer faulted(make_mesh_model, kMeshSampleDims, faulted_config);

  const tensor::Tensor input = make_sample(71, kMeshSampleDims);
  ServeResult clean_result = clean.submit(1, input).get();
  ServeResult degraded = faulted.submit(1, input).get();
  ASSERT_EQ(clean_result.status, ServeStatus::kOk) << clean_result.error;
  // The ladder bottoms out on the host im2col route: the request still
  // SUCCEEDS (graceful degradation), numerically equal to the mesh
  // result though not bitwise (different accumulation route).
  ASSERT_EQ(degraded.status, ServeStatus::kOk) << degraded.error;
  EXPECT_GT(faulted.counters().host_fallbacks, 0u);
  ASSERT_EQ(degraded.output.size(), clean_result.output.size());
  for (std::int64_t i = 0; i < degraded.output.size(); ++i) {
    EXPECT_NEAR(degraded.output.data()[static_cast<std::size_t>(i)],
                clean_result.output.data()[static_cast<std::size_t>(i)],
                1e-10);
  }
}

TEST(ServeServer, StopResolvesPendingAsShutdownAndRefusesNewWork) {
  ServerConfig config = test_config();
  config.max_batch = 8;
  config.batch_budget = 10s;
  InferenceServer server(make_host_model, kSampleDims, config);

  auto f1 = server.submit(1, make_sample(80));
  auto f2 = server.submit(2, make_sample(81));
  server.stop();
  EXPECT_EQ(f1.get().status, ServeStatus::kShutdown);
  EXPECT_EQ(f2.get().status, ServeStatus::kShutdown);
  EXPECT_EQ(server.health(), HealthState::kStopped);

  ServeResult late = server.submit(1, make_sample(82)).get();
  EXPECT_EQ(late.status, ServeStatus::kRejected);
  EXPECT_EQ(late.reject_reason, RejectReason::kShuttingDown);
  server.stop();  // idempotent
}

TEST(ServeServer, InvalidInputRejectedImmediately) {
  InferenceServer server(make_host_model, kSampleDims, test_config());
  ServeResult result = server.submit(1, tensor::Tensor({2, 2})).get();
  EXPECT_EQ(result.status, ServeStatus::kRejected);
  EXPECT_EQ(result.reject_reason, RejectReason::kInvalidInput);
  EXPECT_EQ(server.counters().rejected_invalid, 1u);
}

TEST(ServeServer, HealthDegradesOnDistressAndRecovers) {
  ServeFaultPlan plan;
  plan.tenants[3] = TenantFaultProfile{.fail_first = 1, .persistent = true};
  ServerConfig config = test_config();
  config.request_faults = &plan;
  config.breaker.failure_threshold = 10;  // fail without tripping
  InferenceServer server(make_host_model, kSampleDims, config);

  EXPECT_EQ(server.health(), HealthState::kServing);
  EXPECT_EQ(server.submit(3, make_sample(90)).get().status,
            ServeStatus::kFailed);
  const auto poll_until = [&](HealthState want) {
    for (int i = 0; i < 2000; ++i) {
      if (server.health() == want) return true;
      std::this_thread::sleep_for(1ms);
    }
    return false;
  };
  EXPECT_TRUE(poll_until(HealthState::kDegraded));
  // The fault budget is spent; a clean request plus quiet watchdog
  // periods bring the server back to kServing.
  EXPECT_EQ(server.submit(3, make_sample(91)).get().status, ServeStatus::kOk);
  EXPECT_TRUE(poll_until(HealthState::kServing));
}

TEST(ServeServer, ServeInstantsFlowThroughTracer) {
  sim::EventTracer tracer;
  ServeFaultPlan plan;
  plan.tenants[5] = TenantFaultProfile{.fail_first = 1};
  ServerConfig config = test_config();
  config.tracer = &tracer;
  config.request_faults = &plan;
  config.max_attempts = 2;
  InferenceServer server(make_host_model, kSampleDims, config);

  EXPECT_EQ(server.submit(5, make_sample(95)).get().status, ServeStatus::kOk);
  server.drain();
  bool saw_flush = false;
  bool saw_retry = false;
  for (const sim::TraceEvent& event : tracer.events()) {
    if (event.category != "serve") continue;
    if (event.name.rfind("flush", 0) == 0) saw_flush = true;
    if (event.name == "retry") saw_retry = true;
  }
  EXPECT_TRUE(saw_flush);
  EXPECT_TRUE(saw_retry);
}

TEST(ServeServer, DrainWaitsForAllAcceptedWork) {
  ServerConfig config = test_config();
  config.num_replicas = 2;
  InferenceServer server(make_host_model, kSampleDims, config);
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(server.submit(i % 2, make_sample(200 + i)));
  }
  server.drain();
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(0s), std::future_status::ready);
    EXPECT_EQ(future.get().status, ServeStatus::kOk);
  }
}

}  // namespace
}  // namespace swdnn::serve
