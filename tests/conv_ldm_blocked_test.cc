// Functional correctness of Algorithms 1 and 2 on the mesh simulator:
// every (shape, plan, mesh) combination must match the naive reference
// bit-for-bit (all arithmetic is f64 adds/multiplies in a fixed order
// per output, so exact equality is achievable and enforced with a tight
// tolerance).

#include <gtest/gtest.h>

#include <tuple>

#include "src/conv/ldm_blocked.h"
#include "src/conv/reference.h"
#include "src/util/rng.h"

namespace swdnn::conv {
namespace {

arch::Sw26010Spec mesh_spec(int dim) {
  arch::Sw26010Spec spec = arch::default_spec();
  spec.mesh_rows = dim;
  spec.mesh_cols = dim;
  return spec;
}

struct Case {
  int mesh;
  ConvShape shape;
  perf::ConvPlan plan;
  std::string label;
};

Case make_case(int mesh, std::int64_t b, std::int64_t ni, std::int64_t no,
               std::int64_t ro, std::int64_t co, std::int64_t k,
               perf::PlanKind kind, std::int64_t bb, std::int64_t bco) {
  Case c;
  c.mesh = mesh;
  c.shape = ConvShape::from_output(b, ni, no, ro, co, k, k);
  c.plan.kind = kind;
  c.plan.block_b = bb;
  c.plan.block_co = bco;
  c.label = std::string(perf::plan_kind_name(kind)) + "_m" +
            std::to_string(mesh) + "_B" + std::to_string(b) + "_Ni" +
            std::to_string(ni) + "_No" + std::to_string(no) + "_k" +
            std::to_string(k) + "_bB" + std::to_string(bb) + "_bCo" +
            std::to_string(bco);
  return c;
}

std::vector<Case> all_cases() {
  using PK = perf::PlanKind;
  std::vector<Case> cases;
  // 2x2 mesh: fast, covers tiling edge cases.
  cases.push_back(make_case(2, 4, 2, 2, 3, 4, 2, PK::kImageSizeAware, 2, 2));
  cases.push_back(make_case(2, 4, 4, 2, 4, 4, 3, PK::kImageSizeAware, 4, 4));
  cases.push_back(make_case(2, 8, 2, 4, 2, 6, 1, PK::kImageSizeAware, 4, 3));
  cases.push_back(make_case(2, 4, 4, 4, 5, 5, 3, PK::kImageSizeAware, 2, 5));
  cases.push_back(make_case(2, 4, 2, 2, 3, 4, 2, PK::kBatchSizeAware, 0, 2));
  cases.push_back(make_case(2, 6, 4, 2, 4, 4, 3, PK::kBatchSizeAware, 0, 4));
  cases.push_back(make_case(2, 8, 2, 4, 2, 6, 1, PK::kBatchSizeAware, 0, 3));
  cases.push_back(make_case(2, 4, 4, 4, 5, 5, 3, PK::kBatchSizeAware, 0, 1));
  // 4x4 mesh.
  cases.push_back(make_case(4, 8, 4, 4, 3, 4, 2, PK::kImageSizeAware, 4, 2));
  cases.push_back(make_case(4, 8, 8, 4, 2, 4, 3, PK::kImageSizeAware, 8, 4));
  cases.push_back(make_case(4, 8, 4, 8, 3, 4, 2, PK::kBatchSizeAware, 0, 2));
  cases.push_back(make_case(4, 12, 8, 4, 2, 3, 3, PK::kBatchSizeAware, 0, 3));
  // One full-size 8x8 mesh case per algorithm (small tiles).
  cases.push_back(make_case(8, 8, 8, 8, 2, 2, 2, PK::kImageSizeAware, 8, 2));
  cases.push_back(make_case(8, 8, 8, 8, 2, 2, 2, PK::kBatchSizeAware, 0, 2));
  return cases;
}

class LdmBlockedConv : public ::testing::TestWithParam<Case> {};

TEST_P(LdmBlockedConv, MatchesReference) {
  const Case& c = GetParam();
  const arch::Sw26010Spec spec = mesh_spec(c.mesh);
  util::Rng rng(42);

  tensor::Tensor input = make_input(c.shape);
  tensor::Tensor filter = make_filter(c.shape);
  rng.fill_uniform(input.data(), -1.0, 1.0);
  rng.fill_uniform(filter.data(), -1.0, 1.0);

  tensor::Tensor expected = make_output(c.shape);
  reference_forward(input, filter, expected, c.shape);

  tensor::Tensor actual = make_output(c.shape);
  sim::MeshExecutor exec(spec);
  sim::LaunchStats stats;
  if (c.plan.kind == perf::PlanKind::kImageSizeAware) {
    stats = run_image_size_aware(exec, input, filter, actual, c.shape,
                                 c.plan);
  } else {
    stats = run_batch_size_aware(exec, input, filter, actual, c.shape,
                                 c.plan);
  }
  EXPECT_LE(expected.max_abs_diff(actual), 1e-12) << c.shape.to_string();

  // Every FMA of the convolution ran on some CPE.
  EXPECT_EQ(stats.total_flops, static_cast<std::uint64_t>(c.shape.flops()));
  // Remote operands travelled over the buses.
  EXPECT_GT(stats.regcomm_messages, 0u);
  // DMA moved at least one copy of the input/filter/output data.
  EXPECT_GE(stats.dma.get_bytes,
            static_cast<std::uint64_t>(
                (c.shape.input_elements() + c.shape.filter_elements()) * 8));
  EXPECT_GE(stats.dma.put_bytes,
            static_cast<std::uint64_t>(c.shape.output_elements() * 8));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LdmBlockedConv, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<Case>& info) { return info.param.label; });

TEST(LdmBlockedConv, RowPartitionsComposeToFullImage) {
  // Computing [0, r) and [r, Ro) separately must equal the full run —
  // the property the 4-CG split relies on.
  const ConvShape shape = ConvShape::from_output(4, 4, 4, 6, 4, 3, 3);
  perf::ConvPlan plan;
  plan.kind = perf::PlanKind::kImageSizeAware;
  plan.block_b = 2;
  plan.block_co = 2;
  util::Rng rng(7);
  tensor::Tensor input = make_input(shape);
  tensor::Tensor filter = make_filter(shape);
  rng.fill_uniform(input.data(), -1.0, 1.0);
  rng.fill_uniform(filter.data(), -1.0, 1.0);

  tensor::Tensor expected = make_output(shape);
  reference_forward(input, filter, expected, shape);

  tensor::Tensor actual = make_output(shape);
  sim::MeshExecutor exec(mesh_spec(2));
  run_image_size_aware(exec, input, filter, actual, shape, plan, 0, 2);
  run_image_size_aware(exec, input, filter, actual, shape, plan, 2, 6);
  EXPECT_LE(expected.max_abs_diff(actual), 1e-12);
}

TEST(LdmBlockedConv, RejectsIndivisibleChannels) {
  const ConvShape shape = ConvShape::from_output(4, 3, 4, 4, 4, 3, 3);
  perf::ConvPlan plan;
  plan.kind = perf::PlanKind::kImageSizeAware;
  plan.block_b = 2;
  plan.block_co = 2;
  EXPECT_THROW(check_mesh_compatibility(shape, plan, 2),
               std::invalid_argument);
}

TEST(LdmBlockedConv, RejectsIndivisibleBatchTile) {
  const ConvShape shape = ConvShape::from_output(6, 4, 4, 4, 4, 3, 3);
  perf::ConvPlan plan;
  plan.kind = perf::PlanKind::kImageSizeAware;
  plan.block_b = 4;  // 6 % 4 != 0
  plan.block_co = 2;
  EXPECT_THROW(check_mesh_compatibility(shape, plan, 2),
               std::invalid_argument);
}

TEST(LdmBlockedConv, RejectsDirectPlan) {
  const ConvShape shape = ConvShape::from_output(4, 4, 4, 4, 4, 3, 3);
  perf::ConvPlan plan;
  plan.kind = perf::PlanKind::kDirect;
  EXPECT_THROW(check_mesh_compatibility(shape, plan, 2),
               std::invalid_argument);
}

TEST(LdmBlockedConv, RejectsIndivisibleOutputColumns) {
  const ConvShape shape = ConvShape::from_output(4, 4, 4, 4, 5, 3, 3);
  perf::ConvPlan plan;
  plan.kind = perf::PlanKind::kBatchSizeAware;
  plan.block_co = 2;  // 5 % 2 != 0
  EXPECT_THROW(check_mesh_compatibility(shape, plan, 2),
               std::invalid_argument);
}

}  // namespace
}  // namespace swdnn::conv
