#include <gtest/gtest.h>

#include "src/sim/ldm.h"

namespace swdnn::sim {
namespace {

TEST(Ldm, AllocatesWithinCapacity) {
  LdmAllocator ldm(64 * 1024);
  auto a = ldm.alloc_doubles(1024);
  EXPECT_EQ(a.size(), 1024u);
  EXPECT_EQ(ldm.bytes_used(), 8192u);
  EXPECT_EQ(ldm.bytes_free(), 64u * 1024u - 8192u);
}

TEST(Ldm, ThrowsOnOverflow) {
  LdmAllocator ldm(64 * 1024);
  ldm.alloc_doubles(8000);
  EXPECT_THROW(ldm.alloc_doubles(200), LdmOverflow);
}

TEST(Ldm, ExactFitSucceeds) {
  LdmAllocator ldm(64 * 1024);
  EXPECT_NO_THROW(ldm.alloc_doubles(8192));
  EXPECT_EQ(ldm.bytes_free(), 0u);
  EXPECT_THROW(ldm.alloc_doubles(1), LdmOverflow);
}

TEST(Ldm, ResetReleasesEverything) {
  LdmAllocator ldm(1024);
  ldm.alloc_doubles(128);
  ldm.reset();
  EXPECT_EQ(ldm.bytes_used(), 0u);
  EXPECT_NO_THROW(ldm.alloc_doubles(128));
}

TEST(Ldm, AllocationsAreDisjoint) {
  LdmAllocator ldm(1024);
  auto a = ldm.alloc_doubles(16);
  auto b = ldm.alloc_doubles(16);
  a[15] = 1.0;
  b[0] = 2.0;
  EXPECT_EQ(a[15], 1.0);
  EXPECT_EQ(b.data(), a.data() + 16);
}

TEST(Ldm, OverflowMessageIsDiagnostic) {
  LdmAllocator ldm(256);
  ldm.alloc_doubles(16);
  try {
    ldm.alloc_doubles(32);
    FAIL() << "expected LdmOverflow";
  } catch (const LdmOverflow& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("256"), std::string::npos);
    EXPECT_NE(msg.find("128"), std::string::npos);
  }
}

}  // namespace
}  // namespace swdnn::sim
