// Concurrent dispatch through one shared handle: N worker threads
// issuing convolution_forward simultaneously must produce the same
// results as serial calls, with cache counters that add up, and
// convolution_forward_batch packages the same fan-out. Run under
// -DSWDNN_SANITIZE=ON this is the handle's data-race regression test.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/api/swdnn_api.h"
#include "src/conv/reference.h"
#include "src/util/rng.h"

namespace swdnn::api {
namespace {

arch::Sw26010Spec mesh_spec(int dim) {
  arch::Sw26010Spec spec = arch::default_spec();
  spec.mesh_rows = dim;
  spec.mesh_cols = dim;
  return spec;
}

struct Problem {
  explicit Problem(const conv::ConvShape& s, unsigned seed) : shape(s) {
    util::Rng rng(seed);
    input = conv::make_input(shape);
    filter = conv::make_filter(shape);
    rng.fill_uniform(input.data(), -1, 1);
    rng.fill_uniform(filter.data(), -1, 1);
    set_tensor4d_descriptor(x_desc, shape.ri, shape.ci, shape.ni,
                            shape.batch);
    set_filter_descriptor(w_desc, shape.kr, shape.kc, shape.ni, shape.no);
    set_tensor4d_descriptor(y_desc, shape.ro(), shape.co(), shape.no,
                            shape.batch);
    tensor::Tensor ref = conv::make_output(shape);
    conv::reference_forward(input, filter, ref, shape);
    golden.assign(ref.data().begin(), ref.data().end());
  }

  conv::ConvShape shape;
  tensor::Tensor input, filter;
  std::vector<double> golden;
  TensorDescriptor x_desc, y_desc;
  FilterDescriptor w_desc;
};

class ApiConcurrentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const arch::Sw26010Spec spec = mesh_spec(2);
    ASSERT_EQ(create(&handle_, &spec), Status::kSuccess);
    problems_.emplace_back(conv::ConvShape::from_output(4, 2, 2, 3, 4, 2, 2),
                           101);
    problems_.emplace_back(conv::ConvShape::from_output(4, 2, 2, 4, 4, 2, 2),
                           202);
    problems_.emplace_back(conv::ConvShape::from_output(8, 2, 2, 3, 3, 2, 2),
                           303);
  }
  void TearDown() override {
    EXPECT_EQ(destroy(handle_), Status::kSuccess);
  }

  Status forward_into(const Problem& p, std::vector<double>& y) {
    y.assign(static_cast<std::size_t>(p.shape.output_elements()), -1.0);
    return convolution_forward(handle_, p.x_desc, p.input.data().data(),
                               p.w_desc, p.filter.data().data(), p.y_desc,
                               y.data());
  }

  Handle* handle_ = nullptr;
  std::vector<Problem> problems_;
};

TEST_F(ApiConcurrentTest, WorkersSharingOneHandleMatchSerialResults) {
  constexpr int kThreads = 8;
  constexpr int kReps = 4;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::vector<double> y;
      for (int rep = 0; rep < kReps; ++rep) {
        const Problem& p = problems_[(t + rep) % problems_.size()];
        if (forward_into(p, y) != Status::kSuccess) {
          failures.fetch_add(1);
          continue;
        }
        for (std::size_t i = 0; i < p.golden.size(); ++i) {
          if (std::abs(y[i] - p.golden[i]) > 1e-10) {
            mismatches.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  // The counters add up: one rank() per distinct shape, every other
  // dispatch a hit.
  PlanCacheCounters c;
  ASSERT_EQ(plan_cache_counters(handle_, &c), Status::kSuccess);
  EXPECT_EQ(c.misses, problems_.size());
  EXPECT_EQ(c.hits, kThreads * kReps - problems_.size());
  EXPECT_EQ(c.entries, problems_.size());
}

TEST_F(ApiConcurrentTest, ForwardBatchFansOutAndFillsEveryStatus) {
  constexpr int kItems = 12;
  std::vector<std::vector<double>> outputs(kItems);
  std::vector<ForwardWorkItem> items(kItems);
  for (int i = 0; i < kItems; ++i) {
    const Problem& p = problems_[static_cast<std::size_t>(i) %
                                 problems_.size()];
    outputs[static_cast<std::size_t>(i)].assign(
        static_cast<std::size_t>(p.shape.output_elements()), -1.0);
    items[static_cast<std::size_t>(i)] = ForwardWorkItem{
        p.x_desc,      p.input.data().data(),  p.w_desc,
        p.filter.data().data(), p.y_desc,
        outputs[static_cast<std::size_t>(i)].data()};
    items[static_cast<std::size_t>(i)].status = Status::kBadParam;  // must be overwritten
  }

  EXPECT_EQ(convolution_forward_batch(handle_, items.data(), kItems, 4),
            Status::kSuccess);
  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(items[static_cast<std::size_t>(i)].status, Status::kSuccess);
    const Problem& p = problems_[static_cast<std::size_t>(i) %
                                 problems_.size()];
    for (std::size_t j = 0; j < p.golden.size(); ++j) {
      ASSERT_NEAR(outputs[static_cast<std::size_t>(i)][j], p.golden[j],
                  1e-10);
    }
  }

  PlanCacheCounters c;
  ASSERT_EQ(plan_cache_counters(handle_, &c), Status::kSuccess);
  EXPECT_EQ(c.misses + c.hits, static_cast<std::uint64_t>(kItems));
  EXPECT_EQ(c.misses, problems_.size());
}

TEST_F(ApiConcurrentTest, ForwardBatchReportsTheFirstFailingItem) {
  const Problem& p = problems_[0];
  std::vector<double> good(static_cast<std::size_t>(
      p.shape.output_elements()));
  ForwardWorkItem items[2];
  items[0] = ForwardWorkItem{p.x_desc, p.input.data().data(), p.w_desc,
                             p.filter.data().data(), p.y_desc, good.data()};
  items[1] = items[0];
  items[1].y_desc.rows += 1;  // inconsistent descriptor triple
  EXPECT_EQ(convolution_forward_batch(handle_, items, 2, 2),
            Status::kShapeMismatch);
  EXPECT_EQ(items[0].status, Status::kSuccess);
  EXPECT_EQ(items[1].status, Status::kShapeMismatch);
}

TEST_F(ApiConcurrentTest, ForwardBatchValidatesItsArguments) {
  ForwardWorkItem item;
  EXPECT_EQ(convolution_forward_batch(nullptr, &item, 1, 1),
            Status::kBadParam);
  EXPECT_EQ(convolution_forward_batch(handle_, nullptr, 1, 1),
            Status::kBadParam);
  EXPECT_EQ(convolution_forward_batch(handle_, &item, -1, 1),
            Status::kBadParam);
  EXPECT_EQ(convolution_forward_batch(handle_, &item, 1, 0),
            Status::kBadParam);
  // Zero items is a successful no-op, with or without a pointer.
  EXPECT_EQ(convolution_forward_batch(handle_, nullptr, 0, 1),
            Status::kSuccess);
}

TEST_F(ApiConcurrentTest, ConcurrentQueriesDuringDispatchAreSafe) {
  // Readers hammer the query surface while writers dispatch: under
  // sanitizers this flushes out unguarded handle state.
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    PlanCacheCounters c;
    FaultCounters fc;
    while (!stop.load()) {
      (void)last_execution_route(handle_);
      (void)last_plan_algo(handle_);
      (void)plan_cache_counters(handle_, &c);
      (void)fault_counters(handle_, &fc);
    }
  });
  constexpr int kThreads = 4;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      std::vector<double> y;
      for (int rep = 0; rep < 3; ++rep) {
        EXPECT_EQ(forward_into(problems_[(t + rep) % problems_.size()], y),
                  Status::kSuccess);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();
  EXPECT_NE(last_execution_route(handle_), ExecutionRoute::kNone);
}

}  // namespace
}  // namespace swdnn::api
