// The handle/descriptor API: lifecycle, descriptor validation, forward
// and both gradients against the reference kernels, fallback routing,
// and the planning query.

#include <gtest/gtest.h>

#include <vector>

#include "src/api/swdnn_api.h"
#include "src/conv/reference.h"
#include "src/util/rng.h"

namespace swdnn::api {
namespace {

arch::Sw26010Spec mesh_spec(int dim) {
  arch::Sw26010Spec spec = arch::default_spec();
  spec.mesh_rows = dim;
  spec.mesh_cols = dim;
  return spec;
}

class ApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const arch::Sw26010Spec spec = mesh_spec(2);
    ASSERT_EQ(create(&handle_, &spec), Status::kSuccess);
  }
  void TearDown() override {
    EXPECT_EQ(destroy(handle_), Status::kSuccess);
  }
  Handle* handle_ = nullptr;
};

TEST(ApiLifecycle, CreateRejectsNull) {
  EXPECT_EQ(create(nullptr), Status::kBadParam);
  EXPECT_EQ(destroy(nullptr), Status::kBadParam);
}

TEST(ApiLifecycle, StatusStrings) {
  EXPECT_STREQ(status_string(Status::kSuccess), "SWDNN_STATUS_SUCCESS");
  EXPECT_STREQ(status_string(Status::kBadParam), "SWDNN_STATUS_BAD_PARAM");
  EXPECT_STREQ(status_string(Status::kShapeMismatch),
               "SWDNN_STATUS_SHAPE_MISMATCH");
}

TEST(ApiDescriptors, TensorDescriptorValidation) {
  TensorDescriptor d;
  EXPECT_EQ(set_tensor4d_descriptor(d, 4, 4, 2, 8), Status::kSuccess);
  EXPECT_EQ(d.rows, 4);
  EXPECT_EQ(set_tensor4d_descriptor(d, 0, 4, 2, 8), Status::kBadParam);
  EXPECT_EQ(set_tensor4d_descriptor(d, 4, -1, 2, 8), Status::kBadParam);
}

TEST(ApiDescriptors, OutputDescriptorComputesValidConv) {
  TensorDescriptor x, y;
  FilterDescriptor w;
  set_tensor4d_descriptor(x, 6, 6, 2, 4);
  set_filter_descriptor(w, 3, 3, 2, 8);
  ASSERT_EQ(get_convolution_output_descriptor(x, w, y), Status::kSuccess);
  EXPECT_EQ(y.rows, 4);
  EXPECT_EQ(y.cols, 4);
  EXPECT_EQ(y.channels, 8);
  EXPECT_EQ(y.batch, 4);
}

TEST(ApiDescriptors, OutputDescriptorRejectsChannelMismatch) {
  TensorDescriptor x, y;
  FilterDescriptor w;
  set_tensor4d_descriptor(x, 6, 6, 3, 4);
  set_filter_descriptor(w, 3, 3, 2, 8);
  EXPECT_EQ(get_convolution_output_descriptor(x, w, y),
            Status::kShapeMismatch);
}

TEST(ApiDescriptors, OutputDescriptorRejectsOversizedFilter) {
  TensorDescriptor x, y;
  FilterDescriptor w;
  set_tensor4d_descriptor(x, 2, 2, 2, 4);
  set_filter_descriptor(w, 3, 3, 2, 8);
  EXPECT_EQ(get_convolution_output_descriptor(x, w, y),
            Status::kShapeMismatch);
}

TEST_F(ApiTest, ForwardMatchesReference) {
  const conv::ConvShape s = conv::ConvShape::from_output(4, 2, 2, 3, 4, 2, 2);
  util::Rng rng(81);
  tensor::Tensor in = conv::make_input(s), w = conv::make_filter(s);
  rng.fill_uniform(in.data(), -1, 1);
  rng.fill_uniform(w.data(), -1, 1);
  tensor::Tensor expected = conv::make_output(s);
  conv::reference_forward(in, w, expected, s);

  TensorDescriptor x_desc, y_desc;
  FilterDescriptor w_desc;
  set_tensor4d_descriptor(x_desc, s.ri, s.ci, s.ni, s.batch);
  set_filter_descriptor(w_desc, s.kr, s.kc, s.ni, s.no);
  ASSERT_EQ(get_convolution_output_descriptor(x_desc, w_desc, y_desc),
            Status::kSuccess);
  std::vector<double> y(static_cast<std::size_t>(expected.size()));
  ASSERT_EQ(convolution_forward(handle_, x_desc, in.data().data(), w_desc,
                                w.data().data(), y_desc, y.data()),
            Status::kSuccess);
  for (std::int64_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], expected.data()[i], 1e-11);
  }
  EXPECT_EQ(last_execution_route(handle_), ExecutionRoute::kSimulatedMesh);
}

TEST_F(ApiTest, ForwardFallsBackToHostForMeshIncompatibleShapes) {
  // Ni=3 cannot divide a 2-mesh (blocks the channel-blocked plans) and
  // No=4096 makes every multigrain tile set overflow the LDM: no mesh
  // mapping at all, so the API must still produce the right answer via
  // the host route.
  const conv::ConvShape s =
      conv::ConvShape::from_output(2, 3, 4096, 3, 3, 2, 2);
  util::Rng rng(82);
  tensor::Tensor in = conv::make_input(s), w = conv::make_filter(s);
  rng.fill_uniform(in.data(), -1, 1);
  rng.fill_uniform(w.data(), -1, 1);
  tensor::Tensor expected = conv::make_output(s);
  conv::reference_forward(in, w, expected, s);

  TensorDescriptor x_desc, y_desc;
  FilterDescriptor w_desc;
  set_tensor4d_descriptor(x_desc, s.ri, s.ci, s.ni, s.batch);
  set_filter_descriptor(w_desc, s.kr, s.kc, s.ni, s.no);
  get_convolution_output_descriptor(x_desc, w_desc, y_desc);
  std::vector<double> y(static_cast<std::size_t>(expected.size()));
  ASSERT_EQ(convolution_forward(handle_, x_desc, in.data().data(), w_desc,
                                w.data().data(), y_desc, y.data()),
            Status::kSuccess);
  for (std::int64_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], expected.data()[i], 1e-10);
  }
  EXPECT_EQ(last_execution_route(handle_), ExecutionRoute::kHostGemm);
}

TEST_F(ApiTest, ForwardRejectsInconsistentDescriptors) {
  TensorDescriptor x_desc, y_desc;
  FilterDescriptor w_desc;
  set_tensor4d_descriptor(x_desc, 6, 6, 2, 4);
  set_filter_descriptor(w_desc, 3, 3, 2, 8);
  set_tensor4d_descriptor(y_desc, 5, 5, 8, 4);  // wrong output rows
  std::vector<double> x(6 * 6 * 2 * 4), w(3 * 3 * 2 * 8), y(5 * 5 * 8 * 4);
  EXPECT_EQ(convolution_forward(handle_, x_desc, x.data(), w_desc, w.data(),
                                y_desc, y.data()),
            Status::kShapeMismatch);
}

TEST_F(ApiTest, ForwardRejectsNullBuffers) {
  TensorDescriptor x_desc, y_desc;
  FilterDescriptor w_desc;
  set_tensor4d_descriptor(x_desc, 4, 4, 2, 4);
  set_filter_descriptor(w_desc, 3, 3, 2, 2);
  get_convolution_output_descriptor(x_desc, w_desc, y_desc);
  std::vector<double> buf(512);
  EXPECT_EQ(convolution_forward(handle_, x_desc, nullptr, w_desc, buf.data(),
                                y_desc, buf.data()),
            Status::kBadParam);
}

TEST_F(ApiTest, BackwardDataMatchesReference) {
  const conv::ConvShape s = conv::ConvShape::from_output(4, 2, 2, 3, 4, 2, 2);
  util::Rng rng(83);
  tensor::Tensor w = conv::make_filter(s), dy = conv::make_output(s);
  rng.fill_uniform(w.data(), -1, 1);
  rng.fill_uniform(dy.data(), -1, 1);
  tensor::Tensor expected = conv::make_input(s);
  conv::reference_backward_data(dy, w, expected, s);

  TensorDescriptor dx_desc, dy_desc;
  FilterDescriptor w_desc;
  set_tensor4d_descriptor(dx_desc, s.ri, s.ci, s.ni, s.batch);
  set_tensor4d_descriptor(dy_desc, s.ro(), s.co(), s.no, s.batch);
  set_filter_descriptor(w_desc, s.kr, s.kc, s.ni, s.no);
  std::vector<double> dx(static_cast<std::size_t>(expected.size()));
  ASSERT_EQ(convolution_backward_data(handle_, w_desc, w.data().data(),
                                      dy_desc, dy.data().data(), dx_desc,
                                      dx.data()),
            Status::kSuccess);
  for (std::int64_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(dx[static_cast<std::size_t>(i)], expected.data()[i], 1e-10);
  }
}

TEST_F(ApiTest, BackwardFilterMatchesReference) {
  const conv::ConvShape s = conv::ConvShape::from_output(4, 2, 2, 3, 4, 2, 2);
  util::Rng rng(84);
  tensor::Tensor x = conv::make_input(s), dy = conv::make_output(s);
  rng.fill_uniform(x.data(), -1, 1);
  rng.fill_uniform(dy.data(), -1, 1);
  tensor::Tensor expected = conv::make_filter(s);
  conv::reference_backward_filter(x, dy, expected, s);

  TensorDescriptor x_desc, dy_desc;
  FilterDescriptor dw_desc;
  set_tensor4d_descriptor(x_desc, s.ri, s.ci, s.ni, s.batch);
  set_tensor4d_descriptor(dy_desc, s.ro(), s.co(), s.no, s.batch);
  set_filter_descriptor(dw_desc, s.kr, s.kc, s.ni, s.no);
  std::vector<double> dw(static_cast<std::size_t>(expected.size()));
  ASSERT_EQ(convolution_backward_filter(handle_, x_desc, x.data().data(),
                                        dy_desc, dy.data().data(), dw_desc,
                                        dw.data()),
            Status::kSuccess);
  for (std::int64_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(dw[static_cast<std::size_t>(i)], expected.data()[i], 1e-9);
  }
}

TEST(ApiEstimate, ReturnsChipThroughputForPaperShapes) {
  Handle* handle = nullptr;
  ASSERT_EQ(create(&handle), Status::kSuccess);
  TensorDescriptor x_desc;
  FilterDescriptor w_desc;
  set_tensor4d_descriptor(x_desc, 66, 66, 128, 128);
  set_filter_descriptor(w_desc, 3, 3, 128, 128);
  double gflops = 0;
  ASSERT_EQ(get_convolution_estimate(handle, x_desc, w_desc, &gflops),
            Status::kSuccess);
  EXPECT_GT(gflops, 1000.0);
  EXPECT_LT(gflops, 2969.6);
  destroy(handle);
}

}  // namespace
}  // namespace swdnn::api
