#include <gtest/gtest.h>

#include "src/sim/noc.h"

namespace swdnn::sim {
namespace {

arch::Sw26010Spec mesh_spec(int dim) {
  arch::Sw26010Spec spec = arch::default_spec();
  spec.mesh_rows = dim;
  spec.mesh_cols = dim;
  return spec;
}

TEST(Partition, CoversAllRowsExactlyOnce) {
  for (std::int64_t rows : {1, 3, 7, 64, 65, 100}) {
    for (int parts : {1, 2, 3, 4}) {
      if (rows < parts) continue;
      const auto p = partition_output_rows(rows, parts);
      ASSERT_EQ(p.size(), static_cast<std::size_t>(parts));
      std::int64_t cursor = 0;
      for (const auto& part : p) {
        EXPECT_EQ(part.begin, cursor);
        EXPECT_GT(part.rows(), 0);
        cursor = part.end;
      }
      EXPECT_EQ(cursor, rows);
    }
  }
}

TEST(Partition, NearEqualSplit) {
  const auto p = partition_output_rows(65, 4);
  EXPECT_EQ(p[0].rows(), 17);
  EXPECT_EQ(p[1].rows(), 16);
  EXPECT_EQ(p[3].rows(), 16);
}

TEST(Partition, RejectsBadArguments) {
  EXPECT_THROW(partition_output_rows(0, 4), std::invalid_argument);
  EXPECT_THROW(partition_output_rows(8, 0), std::invalid_argument);
}

TEST(MultiCgStats, ConcurrentModel) {
  MultiCgStats stats;
  stats.launch_overhead_seconds = 0.5;
  for (double c : {1.0, 2.0, 1.5, 1.8}) {
    LaunchStats s;
    s.compute_seconds = c;
    s.dma_seconds = 0.1;
    s.total_flops = 1'000'000'000ull;
    stats.per_cg.push_back(s);
  }
  EXPECT_DOUBLE_EQ(stats.modeled_seconds(), 2.5);  // slowest + overhead
  EXPECT_EQ(stats.total_flops(), 4'000'000'000ull);
  // Serial would be 6.3 + 0.5 overhead counted once in parallel time.
  EXPECT_NEAR(stats.scaling_speedup(), 6.3 / 2.5, 1e-12);
}

TEST(NocSystem, RunsEachPartitionOnItsOwnMesh) {
  NocSystem noc(mesh_spec(2), /*launch_overhead_seconds=*/1e-6);
  std::vector<RowPartition> seen(4);
  const MultiCgStats stats = noc.run_partitioned(
      8, 4, [&](int cg, RowPartition part) -> MeshExecutor::Kernel {
        seen[static_cast<std::size_t>(cg)] = part;
        return [part](CpeContext& ctx) {
          ctx.charge_flops(
              static_cast<std::uint64_t>(part.rows()) * 8);
        };
      });
  EXPECT_EQ(stats.per_cg.size(), 4u);
  EXPECT_EQ(seen[0].begin, 0);
  EXPECT_EQ(seen[3].end, 8);
  // 4 CGs x 4 CPEs x (2 rows * 8 flops).
  EXPECT_EQ(stats.total_flops(), 4u * 4u * 16u);
}

TEST(NocSystem, NearLinearScalingForBalancedWork) {
  // Equal partitions, negligible overhead: speedup ~ number of CGs
  // (the paper's "near linear scaling among the four CGs").
  NocSystem noc(mesh_spec(2), 1e-9);
  const MultiCgStats stats = noc.run_partitioned(
      64, 4, [&](int, RowPartition part) -> MeshExecutor::Kernel {
        return [part](CpeContext& ctx) {
          ctx.charge_flops(static_cast<std::uint64_t>(part.rows()) * 1000);
        };
      });
  EXPECT_GT(stats.scaling_speedup(), 3.9);
  EXPECT_LE(stats.scaling_speedup(), 4.0 + 1e-9);
}

TEST(NocSystem, RejectsBadCgCount) {
  NocSystem noc(mesh_spec(2));
  auto make = [](int, RowPartition) -> MeshExecutor::Kernel {
    return [](CpeContext&) {};
  };
  EXPECT_THROW(noc.run_partitioned(8, 0, make), std::invalid_argument);
  EXPECT_THROW(noc.run_partitioned(8, 5, make), std::invalid_argument);
}

}  // namespace
}  // namespace swdnn::sim
