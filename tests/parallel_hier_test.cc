// Hierarchical multi-CG/multi-node training: topology math, the
// two-level exchange cost model, bitwise equivalence across transports
// and schedules (the determinism contract), and the fault ladder at
// 8+ replicas.

#include <gtest/gtest.h>

#include <cmath>

#include "src/dnn/convolution.h"
#include "src/dnn/fully_connected.h"
#include "src/dnn/relu.h"
#include "src/parallel/hierarchical.h"
#include "src/runtime/task_pool.h"
#include "src/util/rng.h"

namespace swdnn::parallel {
namespace {

TEST(HierTopology, GridAndRaggedPlacement) {
  const HierTopology grid = HierTopology::grid(4, 4);
  EXPECT_EQ(grid.total_ranks, 16);
  EXPECT_EQ(grid.node_of(0), 0);
  EXPECT_EQ(grid.node_of(15), 3);
  EXPECT_EQ(grid.cg_of(6), 2);
  EXPECT_EQ(grid.ranks_in_node(3), 4);

  // 9 ranks over 4-CG nodes: 4 + 4 + 1.
  const HierTopology ragged = HierTopology::ragged(9, 4);
  EXPECT_EQ(ragged.nodes, 3);
  EXPECT_EQ(ragged.ranks_in_node(0), 4);
  EXPECT_EQ(ragged.ranks_in_node(2), 1);
  EXPECT_EQ(ragged.node_of(8), 2);

  EXPECT_THROW(HierTopology::grid(0, 4), std::invalid_argument);
  EXPECT_THROW(HierTopology::ragged(4, 0), std::invalid_argument);
}

TEST(HierCost, FlatMatchesRingModel) {
  HierCostModel cost;
  EXPECT_EQ(flat_exchange_seconds(1 << 20, 8, cost),
            ring_allreduce_seconds(1 << 20, 8, cost.inter));
  EXPECT_EQ(flat_exchange_seconds(1 << 20, 1, cost), 0.0);
}

TEST(HierCost, HierarchyBeatsFlatAtScale) {
  // 16 replicas as 4 nodes x 4 CGs, a ~160 KB gradient: the flat ring
  // pays 30 node-network latency hops; the hierarchy pays 6 plus cheap
  // on-chip NoC phases. The bench gates >= 1.3x on the same model.
  const std::int64_t bytes = 160 << 10;
  const std::vector<int> full(4, 4);
  const HierExchangeBreakdown hier = hier_exchange_seconds(bytes, full);
  const double flat = flat_exchange_seconds(bytes, 16);
  ASSERT_GT(hier.total(), 0.0);
  EXPECT_GT(flat / hier.total(), 1.3);
  EXPECT_GT(hier.intra_reduce_seconds, 0.0);
  EXPECT_EQ(hier.intra_reduce_seconds, hier.intra_broadcast_seconds);
  EXPECT_GT(hier.inter_ring_seconds, hier.intra_reduce_seconds);
}

TEST(HierCost, DegenerateShapes) {
  // Single rank: nothing to exchange.
  EXPECT_EQ(hier_exchange_seconds(1 << 20, {1}).total(), 0.0);
  // One node, many CGs: pure NoC, no inter ring.
  const HierExchangeBreakdown one_node = hier_exchange_seconds(1 << 20, {4});
  EXPECT_EQ(one_node.inter_ring_seconds, 0.0);
  EXPECT_GT(one_node.intra_reduce_seconds, 0.0);
  // One CG per node: no intra phases, pure ring.
  const HierExchangeBreakdown leaders =
      hier_exchange_seconds(1 << 20, {1, 1, 1});
  EXPECT_EQ(leaders.intra_reduce_seconds, 0.0);
  EXPECT_EQ(leaders.inter_ring_seconds,
            ring_allreduce_seconds(1 << 20, 3, InterconnectSpec{}));
  // A dead node drops out of the ring.
  const HierExchangeBreakdown degraded =
      hier_exchange_seconds(1 << 20, {2, 0, 2});
  EXPECT_EQ(degraded.inter_ring_seconds,
            ring_allreduce_seconds(1 << 20, 2, InterconnectSpec{}));
}

std::unique_ptr<dnn::Network> make_net(std::int64_t batch) {
  util::Rng rng(555);  // fixed seed: replicas identical
  auto net = std::make_unique<dnn::Network>();
  net->emplace<dnn::Convolution>(
      conv::ConvShape::from_output(batch, 1, 2, 2, 2, 3, 3), rng);
  net->emplace<dnn::Relu>();
  net->emplace<dnn::FullyConnected>(2 * 2 * 2, 3, rng);
  return net;
}

std::vector<dnn::Batch> make_shards(int ranks, std::uint64_t seed) {
  dnn::SyntheticBars data(4, 3, 0.05, seed);
  std::vector<dnn::Batch> shards;
  for (int r = 0; r < ranks; ++r) shards.push_back(data.sample(2));
  return shards;
}

/// Runs `steps` steps under fixed options and returns the trainer.
std::unique_ptr<HierarchicalTrainer> run_steps(const HierTopology& topo,
                                               const HierStepOptions& options,
                                               int steps,
                                               std::int64_t bucket_bytes = 0,
                                               bool compiled = true) {
  auto trainer = std::make_unique<HierarchicalTrainer>(
      topo, [] { return make_net(2); }, 0.1, 0.9);
  trainer->set_min_bucket_bytes(bucket_bytes);
  if (compiled) trainer->compile({4, 4, 1, 2});
  for (int s = 0; s < steps; ++s) {
    trainer->train_step(make_shards(topo.total_ranks, 1000 + s), options);
  }
  return trainer;
}

double max_cross_trainer_divergence(HierarchicalTrainer& a,
                                    HierarchicalTrainer& b) {
  double worst = 0;
  const auto pa = a.replica(0).params();
  const auto pb = b.replica(0).params();
  EXPECT_EQ(pa.size(), pb.size());
  for (std::size_t p = 0; p < pa.size(); ++p) {
    worst = std::max(worst, pa[p].param->max_abs_diff(*pb[p].param));
  }
  return worst;
}

TEST(Hierarchical, FlatAndHierTransportsBitwiseIdentical) {
  // The transports share one canonical reduction; across ragged replica
  // counts the trained parameters must match to the bit.
  for (const int ranks : {3, 5, 6, 9}) {
    const HierTopology topo = HierTopology::ragged(ranks, 4);
    HierStepOptions flat;
    flat.exchange = ExchangeMode::kFlatRing;
    flat.overlap = false;
    HierStepOptions hier;
    hier.exchange = ExchangeMode::kHierarchical;
    hier.overlap = false;
    auto a = run_steps(topo, flat, 3);
    auto b = run_steps(topo, hier, 3);
    EXPECT_EQ(max_cross_trainer_divergence(*a, *b), 0.0) << ranks << " ranks";
    EXPECT_EQ(a->max_replica_divergence(), 0.0);
  }
}

TEST(Hierarchical, OverlapIsBitwiseInvisible) {
  // Bucketed overlap changes when each bucket reduces, never what it
  // computes: serialized vs overlapped runs match to the bit, at any
  // bucket granularity.
  const HierTopology topo = HierTopology::grid(2, 4);
  HierStepOptions serialized;
  serialized.overlap = false;
  HierStepOptions overlapped;
  overlapped.overlap = true;
  for (const std::int64_t bucket_bytes : {std::int64_t{0}, std::int64_t{128},
                                          std::int64_t{1} << 20}) {
    auto a = run_steps(topo, serialized, 4, bucket_bytes);
    auto b = run_steps(topo, overlapped, 4, bucket_bytes);
    EXPECT_EQ(max_cross_trainer_divergence(*a, *b), 0.0)
        << "bucket_bytes=" << bucket_bytes;
  }
}

TEST(Hierarchical, ThreadCountAndEagerPathInvariance) {
  // The overlapped reduction runs inline on whichever pool worker
  // arrives last — with one host thread it runs on the caller. Both
  // orders, and the eager (uncompiled) replica path, produce the same
  // bits.
  const HierTopology topo = HierTopology::ragged(6, 4);
  HierStepOptions overlapped;
  const int before = runtime::host_threads();
  runtime::set_host_threads(1);
  auto serial = run_steps(topo, overlapped, 3);
  runtime::set_host_threads(4);
  auto pooled = run_steps(topo, overlapped, 3);
  auto eager = run_steps(topo, overlapped, 3, 0, /*compiled=*/false);
  runtime::set_host_threads(before);
  EXPECT_EQ(max_cross_trainer_divergence(*serial, *pooled), 0.0);
  EXPECT_EQ(max_cross_trainer_divergence(*serial, *eager), 0.0);
}

TEST(Hierarchical, BucketsPartitionEveryParameter) {
  auto trainer = std::make_unique<HierarchicalTrainer>(
      HierTopology::grid(2, 2), [] { return make_net(2); }, 0.1);
  trainer->compile({4, 4, 1, 2});
  std::int64_t bucketed = 0;
  std::size_t units = 0;
  for (const GradBucket& b : trainer->buckets()) {
    bucketed += b.elements;
    units += b.backward_units;
  }
  EXPECT_EQ(bucketed * 8, trainer->gradient_bytes());
  // Every backward emission unit is owned by exactly one bucket.
  EXPECT_EQ(units, trainer->replica(0).graph().nodes().size());
  EXPECT_THROW(trainer->set_min_bucket_bytes(64), std::logic_error);
}

TEST(Hierarchical, StepReportModelsBothSchedules) {
  const HierTopology topo = HierTopology::grid(4, 4);
  auto trainer = std::make_unique<HierarchicalTrainer>(
      topo, [] { return make_net(2); }, 0.1);
  trainer->compile({4, 4, 1, 2});
  const HierStepReport report =
      trainer->train_step(make_shards(16, 7), HierStepOptions{});
  EXPECT_EQ(report.live_ranks, 16);
  EXPECT_EQ(report.live_nodes, 4);
  EXPECT_EQ(report.exchange_bytes, trainer->gradient_bytes());
  EXPECT_TRUE(std::isfinite(report.loss));
  EXPECT_GT(report.forward_seconds, 0.0);
  EXPECT_GT(report.backward_seconds, report.forward_seconds);
  // This tiny gradient is latency-bound: the hierarchy's win is large.
  EXPECT_GT(report.hier_exchange_speedup(), 1.3);
  // Overlap can at best hide the exchange entirely — never beat that.
  // (It CAN lose to serialization when buckets are latency-dominated,
  // which is exactly what min_bucket_bytes coalescing is for; the
  // bench gates the >= 1.2x win at realistic sizes.)
  EXPECT_GT(report.step_serialized_seconds,
            report.forward_seconds + report.backward_seconds);
  EXPECT_GE(report.step_overlapped_seconds,
            report.forward_seconds + report.backward_seconds);
}

TEST(Hierarchical, FaultLadderAtEightReplicas) {
  // Kill CGs, then a whole node, mid-epoch; survivors stay in lockstep
  // and a revived rank rejoins bitwise.
  const HierTopology topo = HierTopology::grid(2, 4);
  auto trainer = std::make_unique<HierarchicalTrainer>(
      topo, [] { return make_net(2); }, 0.1, 0.9);
  trainer->compile({4, 4, 1, 2});
  HierStepOptions options;  // hierarchical + overlap: the worst case

  trainer->train_step(make_shards(8, 50), options);
  EXPECT_EQ(trainer->max_replica_divergence(), 0.0);

  // One CG down: its node stays in the ring with 3 live CGs.
  trainer->kill_rank(1);
  HierStepReport report = trainer->train_step(make_shards(8, 51), options);
  EXPECT_EQ(report.live_ranks, 7);
  EXPECT_EQ(report.live_nodes, 2);
  EXPECT_EQ(trainer->max_replica_divergence(), 0.0);

  // Node 1 entirely down: the inter ring shrinks to one leader.
  for (int r = 4; r < 8; ++r) trainer->kill_rank(r);
  report = trainer->train_step(make_shards(8, 52), options);
  EXPECT_EQ(report.live_ranks, 3);
  EXPECT_EQ(report.live_nodes, 1);
  EXPECT_EQ(report.exchange_hier.inter_ring_seconds, 0.0);
  EXPECT_EQ(trainer->max_replica_divergence(), 0.0);

  // Revive everyone: donor copy + optimizer state puts the returners
  // in exact lockstep from the next step on.
  trainer->revive_rank(1);
  for (int r = 4; r < 8; ++r) trainer->revive_rank(r);
  EXPECT_EQ(trainer->max_replica_divergence(), 0.0);
  report = trainer->train_step(make_shards(8, 53), options);
  EXPECT_EQ(report.live_ranks, 8);
  EXPECT_EQ(trainer->max_replica_divergence(), 0.0);
  EXPECT_TRUE(std::isfinite(report.loss));
}

TEST(Hierarchical, DeterministicRecoveryAcrossRuns) {
  // Two trainers living through the same kill/revive epoch end up
  // bitwise identical — recovery is part of the determinism contract.
  const HierTopology topo = HierTopology::grid(2, 4);
  const auto run_epoch = [&topo](bool overlap) {
    auto t = std::make_unique<HierarchicalTrainer>(
        topo, [] { return make_net(2); }, 0.1, 0.9);
    t->compile({4, 4, 1, 2});
    HierStepOptions options;
    options.overlap = overlap;
    t->train_step(make_shards(8, 90), options);
    t->kill_rank(3);
    t->kill_rank(6);
    t->train_step(make_shards(8, 91), options);
    t->revive_rank(3);
    t->train_step(make_shards(8, 92), options);
    t->revive_rank(6);
    t->train_step(make_shards(8, 93), options);
    return t;
  };
  auto a = run_epoch(true);
  auto b = run_epoch(false);
  EXPECT_EQ(max_cross_trainer_divergence(*a, *b), 0.0);
  EXPECT_EQ(a->max_replica_divergence(), 0.0);
}

TEST(Hierarchical, RejectsBadInputs) {
  auto trainer = std::make_unique<HierarchicalTrainer>(
      HierTopology::grid(1, 2), [] { return make_net(2); }, 0.1);
  std::vector<dnn::Batch> wrong(1);
  EXPECT_THROW(trainer->train_step(wrong), std::invalid_argument);
  trainer->kill_rank(0);
  trainer->kill_rank(1);
  EXPECT_THROW(trainer->train_step(make_shards(2, 5)), std::runtime_error);
}

}  // namespace
}  // namespace swdnn::parallel
