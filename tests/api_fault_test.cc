// Fault injection and resilience through the handle API: retried
// transient faults, graceful degradation to the host route, the
// transient/persistent status split on the route with no fallback, the
// fault counters, and the full Status surface of every entry point.

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "src/api/swdnn_api.h"
#include "src/conv/reference.h"
#include "src/util/rng.h"

namespace swdnn::api {
namespace {

arch::Sw26010Spec mesh_spec(int dim) {
  arch::Sw26010Spec spec = arch::default_spec();
  spec.mesh_rows = dim;
  spec.mesh_cols = dim;
  return spec;
}

/// A mesh-compatible problem on the 2x2 test mesh, with reference
/// results for all three gradients.
struct Problem {
  Problem() : shape(conv::ConvShape::from_output(4, 2, 2, 3, 4, 2, 2)) {
    util::Rng rng(4242);
    input = conv::make_input(shape);
    filter = conv::make_filter(shape);
    output_grad = conv::make_output(shape);
    rng.fill_uniform(input.data(), -1, 1);
    rng.fill_uniform(filter.data(), -1, 1);
    rng.fill_uniform(output_grad.data(), -1, 1);
    set_tensor4d_descriptor(x_desc, shape.ri, shape.ci, shape.ni,
                            shape.batch);
    set_filter_descriptor(w_desc, shape.kr, shape.kc, shape.ni, shape.no);
    set_tensor4d_descriptor(y_desc, shape.ro(), shape.co(), shape.no,
                            shape.batch);
  }

  conv::ConvShape shape;
  tensor::Tensor input, filter, output_grad;
  TensorDescriptor x_desc, y_desc;
  FilterDescriptor w_desc;
};

class ApiFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const arch::Sw26010Spec spec = mesh_spec(2);
    ASSERT_EQ(create(&handle_, &spec), Status::kSuccess);
  }
  void TearDown() override {
    EXPECT_EQ(destroy(handle_), Status::kSuccess);
  }

  std::vector<double> forward(Status expected = Status::kSuccess) {
    std::vector<double> y(
        static_cast<std::size_t>(p_.shape.ro() * p_.shape.co() * p_.shape.no *
                                 p_.shape.batch));
    EXPECT_EQ(convolution_forward(handle_, p_.x_desc, p_.input.data().data(),
                                  p_.w_desc, p_.filter.data().data(),
                                  p_.y_desc, y.data()),
              expected);
    return y;
  }

  Handle* handle_ = nullptr;
  Problem p_;
};

TEST(ApiStatus, StatusStringCoversEveryValue) {
  const Status all[] = {Status::kSuccess,         Status::kBadParam,
                        Status::kShapeMismatch,   Status::kExecutionFailed,
                        Status::kTransientFault,  Status::kDeviceFault};
  std::set<std::string> names;
  for (const Status s : all) {
    ASSERT_NE(status_string(s), nullptr);
    names.insert(status_string(s));
  }
  EXPECT_EQ(names.size(), 6u);  // all distinct
  EXPECT_STREQ(status_string(Status::kTransientFault),
               "SWDNN_STATUS_TRANSIENT_FAULT");
  EXPECT_STREQ(status_string(Status::kDeviceFault),
               "SWDNN_STATUS_DEVICE_FAULT");
}

TEST_F(ApiFaultTest, TransientDmaFaultsRetryToBitwiseIdenticalOutput) {
  // The acceptance campaign: a fault-free run, then the same call under
  // a plan faulting the first two DMA attempts per CPE with retries
  // enabled. The retried run must succeed on the mesh route with output
  // bitwise identical to the fault-free run.
  const std::vector<double> clean = forward();
  ASSERT_EQ(last_execution_route(handle_), ExecutionRoute::kSimulatedMesh);

  sim::FaultPlan plan;
  plan.fail_first_dma = 2;
  ASSERT_EQ(set_fault_plan(handle_, &plan), Status::kSuccess);
  ASSERT_EQ(set_retry_policy(handle_, 4, 16), Status::kSuccess);
  const std::vector<double> faulty = forward();
  EXPECT_EQ(last_execution_route(handle_), ExecutionRoute::kSimulatedMesh);
  ASSERT_EQ(faulty.size(), clean.size());
  EXPECT_EQ(std::memcmp(faulty.data(), clean.data(),
                        clean.size() * sizeof(double)),
            0);

  FaultCounters counters;
  ASSERT_EQ(fault_counters(handle_, &counters), Status::kSuccess);
  EXPECT_GT(counters.dma_transfer_faults, 0u);
  EXPECT_GT(counters.dma_retries, 0u);
  EXPECT_EQ(counters.host_fallbacks, 0u);
}

TEST_F(ApiFaultTest, PersistentFaultsDegradeForwardToHostGemm) {
  // Every DMA attempt faults: retries exhaust, the mesh route is dead,
  // and the call must degrade to the host GEMM path — still correct,
  // never garbage.
  sim::FaultPlan plan;
  plan.fail_first_dma = 1u << 20;
  ASSERT_EQ(set_fault_plan(handle_, &plan), Status::kSuccess);
  ASSERT_EQ(set_retry_policy(handle_, 3, 8), Status::kSuccess);
  const std::vector<double> y = forward();
  EXPECT_EQ(last_execution_route(handle_), ExecutionRoute::kHostGemm);
  EXPECT_STRNE(last_error_message(handle_), "");

  tensor::Tensor expected = conv::make_output(p_.shape);
  conv::reference_forward(p_.input, p_.filter, expected, p_.shape);
  for (std::int64_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], expected.data()[i], 1e-10);
  }

  FaultCounters counters;
  ASSERT_EQ(fault_counters(handle_, &counters), Status::kSuccess);
  EXPECT_EQ(counters.host_fallbacks, 1u);
}

TEST_F(ApiFaultTest, PersistentFaultsDegradeBackwardDataToHostGemm) {
  sim::FaultPlan plan;
  plan.fail_first_dma = 1u << 20;
  ASSERT_EQ(set_fault_plan(handle_, &plan), Status::kSuccess);
  ASSERT_EQ(set_retry_policy(handle_, 2, 8), Status::kSuccess);
  std::vector<double> dx(static_cast<std::size_t>(p_.input.size()));
  ASSERT_EQ(convolution_backward_data(handle_, p_.w_desc,
                                      p_.filter.data().data(), p_.y_desc,
                                      p_.output_grad.data().data(), p_.x_desc,
                                      dx.data()),
            Status::kSuccess);
  EXPECT_EQ(last_execution_route(handle_), ExecutionRoute::kHostGemm);

  tensor::Tensor expected = conv::make_input(p_.shape);
  conv::reference_backward_data(p_.output_grad, p_.filter, expected,
                                p_.shape);
  for (std::int64_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(dx[static_cast<std::size_t>(i)], expected.data()[i], 1e-10);
  }
}

TEST_F(ApiFaultTest, BackwardFilterSurfacesDeviceFaultWhenRetriesExhaust) {
  // backward-filter has no host route: a persistent fault must surface
  // as kDeviceFault with a diagnostic, not as silent garbage.
  sim::FaultPlan plan;
  plan.fail_first_dma = 1u << 20;
  ASSERT_EQ(set_fault_plan(handle_, &plan), Status::kSuccess);
  ASSERT_EQ(set_retry_policy(handle_, 3, 8), Status::kSuccess);
  std::vector<double> dw(static_cast<std::size_t>(p_.filter.size()));
  EXPECT_EQ(convolution_backward_filter(handle_, p_.x_desc,
                                        p_.input.data().data(), p_.y_desc,
                                        p_.output_grad.data().data(),
                                        p_.w_desc, dw.data()),
            Status::kDeviceFault);
  EXPECT_STRNE(last_error_message(handle_), "");
}

TEST_F(ApiFaultTest, BackwardFilterTransientFaultClearsOnRetry) {
  // Only the first DMA attempt per CPE faults and the policy allows no
  // retries: the first call reports kTransientFault, and re-issuing the
  // call (the framework-level retry the status invites) succeeds with
  // the right gradient.
  sim::FaultPlan plan;
  plan.fail_first_dma = 1;
  ASSERT_EQ(set_fault_plan(handle_, &plan), Status::kSuccess);
  std::vector<double> dw(static_cast<std::size_t>(p_.filter.size()));
  EXPECT_EQ(convolution_backward_filter(handle_, p_.x_desc,
                                        p_.input.data().data(), p_.y_desc,
                                        p_.output_grad.data().data(),
                                        p_.w_desc, dw.data()),
            Status::kTransientFault);
  ASSERT_EQ(convolution_backward_filter(handle_, p_.x_desc,
                                        p_.input.data().data(), p_.y_desc,
                                        p_.output_grad.data().data(),
                                        p_.w_desc, dw.data()),
            Status::kSuccess);

  tensor::Tensor expected = conv::make_filter(p_.shape);
  conv::reference_backward_filter(p_.input, p_.output_grad, expected,
                                  p_.shape);
  for (std::int64_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(dw[static_cast<std::size_t>(i)], expected.data()[i], 1e-9);
  }
}

TEST_F(ApiFaultTest, RetryBackoffSaturatesThroughApiForLargeAttempts) {
  // Regression: backoff_cycles << (attempt - 1) must SATURATE, not wrap
  // or hit shift UB, once a large max_attempts pushes the exponent past
  // 63. First the arithmetic itself...
  const sim::RetryPolicy policy{128, 16};
  EXPECT_EQ(sim::retry_backoff_cycles(policy, 2), 32u);
  EXPECT_EQ(sim::retry_backoff_cycles(policy, 70),
            std::numeric_limits<std::uint64_t>::max());
  // ...then the same regime through the PUBLIC API: 70 faulting DMA
  // attempts per CPE under a 128-attempt policy drives per-transfer
  // retries deep into the saturated-backoff range. The call must stay
  // on the mesh route and produce bits identical to the clean run —
  // saturation only pins the simulated cycle counters.
  const std::vector<double> clean = forward();
  ASSERT_EQ(last_execution_route(handle_), ExecutionRoute::kSimulatedMesh);

  sim::FaultPlan plan;
  plan.fail_first_dma = 70;
  ASSERT_EQ(set_fault_plan(handle_, &plan), Status::kSuccess);
  ASSERT_EQ(set_retry_policy(handle_, 128, 16), Status::kSuccess);
  const std::vector<double> retried = forward();
  EXPECT_EQ(last_execution_route(handle_), ExecutionRoute::kSimulatedMesh);
  ASSERT_EQ(retried.size(), clean.size());
  EXPECT_EQ(std::memcmp(retried.data(), clean.data(),
                        clean.size() * sizeof(double)),
            0);
  FaultCounters counters;
  ASSERT_EQ(fault_counters(handle_, &counters), Status::kSuccess);
  EXPECT_GE(counters.dma_retries, 70u);
  EXPECT_EQ(counters.host_fallbacks, 0u);
}

TEST_F(ApiFaultTest, SuccessfulCallClearsStaleErrorBuffer) {
  // Error-buffer hygiene: last_error_message() always describes the
  // most recent FAILING or DEGRADED call, never a stale one.
  // 1. A failing call populates the buffer.
  sim::FaultPlan plan;
  plan.fail_first_dma = 1;
  ASSERT_EQ(set_fault_plan(handle_, &plan), Status::kSuccess);
  std::vector<double> dw(static_cast<std::size_t>(p_.filter.size()));
  ASSERT_EQ(convolution_backward_filter(handle_, p_.x_desc,
                                        p_.input.data().data(), p_.y_desc,
                                        p_.output_grad.data().data(),
                                        p_.w_desc, dw.data()),
            Status::kTransientFault);
  EXPECT_STRNE(last_error_message(handle_), "");

  // 2. A clean success CLEARS it.
  ASSERT_EQ(set_fault_plan(handle_, nullptr), Status::kSuccess);
  forward();
  ASSERT_EQ(last_execution_route(handle_), ExecutionRoute::kSimulatedMesh);
  EXPECT_STREQ(last_error_message(handle_), "");

  // 3. A DEGRADED success (host fallback) records its reason...
  plan.fail_first_dma = 1u << 20;
  ASSERT_EQ(set_fault_plan(handle_, &plan), Status::kSuccess);
  ASSERT_EQ(set_retry_policy(handle_, 2, 8), Status::kSuccess);
  forward();
  ASSERT_EQ(last_execution_route(handle_), ExecutionRoute::kHostGemm);
  EXPECT_STRNE(last_error_message(handle_), "");

  // 4. ...and the next clean success clears it again.
  ASSERT_EQ(set_fault_plan(handle_, nullptr), Status::kSuccess);
  forward();
  ASSERT_EQ(last_execution_route(handle_), ExecutionRoute::kSimulatedMesh);
  EXPECT_STREQ(last_error_message(handle_), "");
}

TEST_F(ApiFaultTest, LdmBitFlipDegradesToHostGemm) {
  // Corrupted LDM cannot be retried away — the launch is persistently
  // failed and the call recomputes on the host.
  sim::FaultPlan plan;
  plan.ldm_bitflip_rate = 1.0;
  ASSERT_EQ(set_fault_plan(handle_, &plan), Status::kSuccess);
  forward();
  EXPECT_EQ(last_execution_route(handle_), ExecutionRoute::kHostGemm);
  FaultCounters counters;
  ASSERT_EQ(fault_counters(handle_, &counters), Status::kSuccess);
  EXPECT_GT(counters.ldm_bitflip_faults, 0u);
  EXPECT_GE(counters.host_fallbacks, 1u);
}

TEST_F(ApiFaultTest, DetachingThePlanRestoresCleanMeshExecution) {
  sim::FaultPlan plan;
  plan.fail_first_dma = 1u << 20;
  ASSERT_EQ(set_fault_plan(handle_, &plan), Status::kSuccess);
  forward();
  EXPECT_EQ(last_execution_route(handle_), ExecutionRoute::kHostGemm);

  ASSERT_EQ(set_fault_plan(handle_, nullptr), Status::kSuccess);
  forward();
  EXPECT_EQ(last_execution_route(handle_), ExecutionRoute::kSimulatedMesh);
  FaultCounters counters;
  ASSERT_EQ(fault_counters(handle_, &counters), Status::kSuccess);
  EXPECT_EQ(counters.dma_transfer_faults, 0u);
  EXPECT_EQ(counters.host_fallbacks, 0u);
}

TEST_F(ApiFaultTest, RetryPolicyAndCounterArgumentsAreValidated) {
  EXPECT_EQ(set_retry_policy(nullptr, 2, 8), Status::kBadParam);
  EXPECT_EQ(set_retry_policy(handle_, 0, 8), Status::kBadParam);
  EXPECT_EQ(set_retry_policy(handle_, -1, 8), Status::kBadParam);
  EXPECT_EQ(set_fault_plan(nullptr, nullptr), Status::kBadParam);
  FaultCounters counters;
  EXPECT_EQ(fault_counters(nullptr, &counters), Status::kBadParam);
  EXPECT_EQ(fault_counters(handle_, nullptr), Status::kBadParam);
}

// --- Status surface of the three conv entry points ------------------------

TEST_F(ApiFaultTest, ForwardRejectsNullHandleAndBuffers) {
  std::vector<double> buf(4096, 0.0);
  EXPECT_EQ(convolution_forward(nullptr, p_.x_desc, buf.data(), p_.w_desc,
                                buf.data(), p_.y_desc, buf.data()),
            Status::kBadParam);
  EXPECT_EQ(convolution_forward(handle_, p_.x_desc, buf.data(), p_.w_desc,
                                nullptr, p_.y_desc, buf.data()),
            Status::kBadParam);
  EXPECT_EQ(convolution_forward(handle_, p_.x_desc, buf.data(), p_.w_desc,
                                buf.data(), p_.y_desc, nullptr),
            Status::kBadParam);
}

TEST_F(ApiFaultTest, BackwardDataRejectsNullsAndShapeMismatch) {
  std::vector<double> buf(4096, 0.0);
  EXPECT_EQ(convolution_backward_data(nullptr, p_.w_desc, buf.data(),
                                      p_.y_desc, buf.data(), p_.x_desc,
                                      buf.data()),
            Status::kBadParam);
  EXPECT_EQ(convolution_backward_data(handle_, p_.w_desc, nullptr, p_.y_desc,
                                      buf.data(), p_.x_desc, buf.data()),
            Status::kBadParam);
  EXPECT_EQ(convolution_backward_data(handle_, p_.w_desc, buf.data(),
                                      p_.y_desc, nullptr, p_.x_desc,
                                      buf.data()),
            Status::kBadParam);
  TensorDescriptor bad_dy = p_.y_desc;
  bad_dy.rows += 1;
  EXPECT_EQ(convolution_backward_data(handle_, p_.w_desc, buf.data(), bad_dy,
                                      buf.data(), p_.x_desc, buf.data()),
            Status::kShapeMismatch);
}

TEST_F(ApiFaultTest, BackwardFilterRejectsNullsAndShapeMismatch) {
  std::vector<double> buf(4096, 0.0);
  EXPECT_EQ(convolution_backward_filter(nullptr, p_.x_desc, buf.data(),
                                        p_.y_desc, buf.data(), p_.w_desc,
                                        buf.data()),
            Status::kBadParam);
  EXPECT_EQ(convolution_backward_filter(handle_, p_.x_desc, nullptr,
                                        p_.y_desc, buf.data(), p_.w_desc,
                                        buf.data()),
            Status::kBadParam);
  EXPECT_EQ(convolution_backward_filter(handle_, p_.x_desc, buf.data(),
                                        p_.y_desc, buf.data(), p_.w_desc,
                                        nullptr),
            Status::kBadParam);
  FilterDescriptor bad_dw = p_.w_desc;
  bad_dw.ni += 1;
  EXPECT_EQ(convolution_backward_filter(handle_, p_.x_desc, buf.data(),
                                        p_.y_desc, buf.data(), bad_dw,
                                        buf.data()),
            Status::kShapeMismatch);
}

TEST_F(ApiFaultTest, EstimateRejectsNullOutput) {
  EXPECT_EQ(get_convolution_estimate(handle_, p_.x_desc, p_.w_desc, nullptr),
            Status::kBadParam);
  EXPECT_EQ(get_convolution_estimate(nullptr, p_.x_desc, p_.w_desc, nullptr),
            Status::kBadParam);
}

}  // namespace
}  // namespace swdnn::api
