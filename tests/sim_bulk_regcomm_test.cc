// Observable-equivalence regression tests for the simulator fast paths.
//
// The PR that introduced the persistent worker pool, the bulk span-level
// bus primitives, and the register-blocked local GEMM promised one
// invariant: *no modeled observable changes*. These tests hold it to
// that — the same mesh GEMM is run through (worker pool + bulk spans +
// blocked microkernel) and through (spawn-per-launch + Vec4 loop +
// naive microkernel, i.e. the pre-optimization implementation kept as
// the oracle), and the outputs must be bitwise identical while every
// LaunchStats field must be exactly equal. Mesh sizes below 8x8 and
// tile shapes that are not multiples of the Vec4 width or the 4x4
// register block exercise the padding/tail paths of both.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/conv/mesh_gemm_driver.h"
#include "src/conv/regcomm_gemm.h"
#include "src/sim/executor.h"
#include "src/util/rng.h"

namespace swdnn {
namespace {

arch::Sw26010Spec small_spec(int dim) {
  arch::Sw26010Spec spec = arch::default_spec();
  spec.mesh_rows = dim;
  spec.mesh_cols = dim;
  return spec;
}

struct GemmCase {
  std::int64_t m, k, n;
};

struct PathResult {
  std::vector<double> out;
  sim::LaunchStats stats;
};

PathResult run_gemm(const arch::Sw26010Spec& spec, const GemmCase& c,
                    bool use_pool, conv::BusPathMode mode, bool accumulate) {
  util::Rng rng(7);
  std::vector<double> a(static_cast<std::size_t>(c.k * c.m));
  std::vector<double> b(static_cast<std::size_t>(c.k * c.n));
  PathResult r;
  r.out.resize(static_cast<std::size_t>(c.m * c.n));
  rng.fill_normal(a, 0.0, 1.0);
  rng.fill_normal(b, 0.0, 1.0);
  if (accumulate) {
    // Pre-existing output content exercises the acc-from-out loads of
    // the blocked kernel's accumulate path in the driver writeback.
    for (std::size_t i = 0; i < r.out.size(); ++i) {
      r.out[i] = static_cast<double>(i % 13) * 0.25;
    }
  }
  sim::MeshExecutor exec(spec);
  exec.set_use_worker_pool(use_pool);
  conv::MeshGemmOptions options;
  options.accumulate = accumulate;
  options.bus_mode = mode;
  r.stats = conv::mesh_gemm(exec, a, b, r.out, c.m, c.k, c.n, options);
  return r;
}

void expect_identical(const PathResult& fast, const PathResult& ref) {
  ASSERT_EQ(fast.out.size(), ref.out.size());
  // Bitwise, not approximate: the blocked kernel must preserve the
  // reference kernel's exact addition order per output element.
  EXPECT_EQ(0, std::memcmp(fast.out.data(), ref.out.data(),
                           fast.out.size() * sizeof(double)));
  EXPECT_EQ(fast.stats.max_compute_cycles, ref.stats.max_compute_cycles);
  EXPECT_EQ(fast.stats.total_flops, ref.stats.total_flops);
  EXPECT_EQ(fast.stats.regcomm_messages, ref.stats.regcomm_messages);
  EXPECT_EQ(fast.stats.dma.get_bytes, ref.stats.dma.get_bytes);
  EXPECT_EQ(fast.stats.dma.put_bytes, ref.stats.dma.put_bytes);
  EXPECT_EQ(fast.stats.dma.requests, ref.stats.dma.requests);
  EXPECT_EQ(fast.stats.dma.misaligned_requests,
            ref.stats.dma.misaligned_requests);
  EXPECT_EQ(fast.stats.dma_seconds, ref.stats.dma_seconds);
  EXPECT_EQ(fast.stats.compute_seconds, ref.stats.compute_seconds);
  EXPECT_EQ(fast.stats.failed, ref.stats.failed);
  EXPECT_EQ(fast.stats.dma_retries, ref.stats.dma_retries);
}

class BulkRegcommEquivalence : public ::testing::TestWithParam<GemmCase> {};

TEST_P(BulkRegcommEquivalence, BulkMatchesVec4ReferenceAcrossMeshSizes) {
  const GemmCase c = GetParam();
  for (int dim : {2, 3, 4}) {
    SCOPED_TRACE("mesh " + std::to_string(dim) + "x" + std::to_string(dim));
    const arch::Sw26010Spec spec = small_spec(dim);
    const PathResult fast =
        run_gemm(spec, c, /*use_pool=*/true, conv::BusPathMode::kBulkSpan,
                 /*accumulate=*/false);
    const PathResult ref =
        run_gemm(spec, c, /*use_pool=*/false,
                 conv::BusPathMode::kVec4Reference, /*accumulate=*/false);
    expect_identical(fast, ref);
  }
}

TEST_P(BulkRegcommEquivalence, AccumulateModeMatches) {
  const GemmCase c = GetParam();
  const arch::Sw26010Spec spec = small_spec(4);
  const PathResult fast =
      run_gemm(spec, c, /*use_pool=*/true, conv::BusPathMode::kBulkSpan,
               /*accumulate=*/true);
  const PathResult ref =
      run_gemm(spec, c, /*use_pool=*/false, conv::BusPathMode::kVec4Reference,
               /*accumulate=*/true);
  expect_identical(fast, ref);
}

// Shapes chosen so tiles hit: exact Vec4 multiples, ragged Vec4 tails,
// sub-register-block tiles (m or n tile < 4), and tiles where the 4x4
// blocked kernel has both full blocks and tails in each dimension.
INSTANTIATE_TEST_SUITE_P(
    Shapes, BulkRegcommEquivalence,
    ::testing::Values(GemmCase{16, 32, 16},   // everything divides evenly
                      GemmCase{13, 29, 11},   // ragged everywhere
                      GemmCase{5, 7, 3},      // tiles smaller than a block
                      GemmCase{17, 8, 23},    // mixed full blocks + tails
                      GemmCase{1, 64, 1}));   // degenerate rank-1 output

TEST(BulkRegcommEquivalenceTest, PoolAloneChangesNothing) {
  // Isolate the worker-pool variable: same bus path, pool on vs off.
  const GemmCase c{13, 29, 11};
  const arch::Sw26010Spec spec = small_spec(4);
  const PathResult pool = run_gemm(spec, c, /*use_pool=*/true,
                                   conv::BusPathMode::kBulkSpan, false);
  const PathResult spawn = run_gemm(spec, c, /*use_pool=*/false,
                                    conv::BusPathMode::kBulkSpan, false);
  expect_identical(pool, spawn);
}

TEST(BulkRegcommEquivalenceTest, RepeatedLaunchesOnOneExecutorAreIdentical) {
  // The launch-boundary reset must leave no residue: the same GEMM on
  // the same (pooled) executor must report identical stats every time.
  const GemmCase c{16, 32, 16};
  util::Rng rng(11);
  std::vector<double> a(static_cast<std::size_t>(c.k * c.m));
  std::vector<double> b(static_cast<std::size_t>(c.k * c.n));
  rng.fill_normal(a, 0.0, 1.0);
  rng.fill_normal(b, 0.0, 1.0);
  sim::MeshExecutor exec(small_spec(4));
  std::vector<double> first(static_cast<std::size_t>(c.m * c.n));
  const sim::LaunchStats stats0 =
      conv::mesh_gemm(exec, a, b, first, c.m, c.k, c.n);
  for (int rep = 0; rep < 3; ++rep) {
    std::vector<double> out(static_cast<std::size_t>(c.m * c.n));
    const sim::LaunchStats stats =
        conv::mesh_gemm(exec, a, b, out, c.m, c.k, c.n);
    EXPECT_EQ(0, std::memcmp(first.data(), out.data(),
                             out.size() * sizeof(double)));
    EXPECT_EQ(stats0.max_compute_cycles, stats.max_compute_cycles);
    EXPECT_EQ(stats0.total_flops, stats.total_flops);
    EXPECT_EQ(stats0.regcomm_messages, stats.regcomm_messages);
    EXPECT_EQ(stats0.dma.get_bytes, stats.dma.get_bytes);
    EXPECT_EQ(stats0.dma.put_bytes, stats.dma.put_bytes);
    EXPECT_EQ(stats0.dma.requests, stats.dma.requests);
  }
}

TEST(BulkRegcommEquivalenceTest, LocalKernelsBitwiseIdenticalStandalone) {
  // Direct microkernel comparison without the mesh: odd tile sizes so
  // full 4x4 blocks, m tails, and n tails all execute.
  const int m = 11, k = 17, n = 9;
  util::Rng rng(3);
  std::vector<double> w(static_cast<std::size_t>(k * m));
  std::vector<double> di(static_cast<std::size_t>(k * n));
  rng.fill_normal(w, 0.0, 1.0);
  rng.fill_normal(di, 0.0, 1.0);
  std::vector<double> out_blocked(static_cast<std::size_t>(m * n), 0.5);
  std::vector<double> out_ref = out_blocked;

  sim::MeshExecutor exec(small_spec(2));
  exec.run([&](sim::CpeContext& ctx) {
    if (ctx.id() != 0) return;
    conv::local_gemm_accumulate(ctx, w, di, out_blocked, m, k, n);
    conv::local_gemm_accumulate_ref(ctx, w, di, out_ref, m, k, n);
  });
  EXPECT_EQ(0, std::memcmp(out_blocked.data(), out_ref.data(),
                           out_ref.size() * sizeof(double)));
}

}  // namespace
}  // namespace swdnn
