// Training-side gradients through the mesh: backward-data as a forward
// convolution on transformed tensors, backward-filter as per-tap
// distributed GEMMs — both checked against the reference gradients.

#include <gtest/gtest.h>

#include "src/conv/backward.h"
#include "src/conv/reference.h"
#include "src/util/rng.h"

namespace swdnn::conv {
namespace {

arch::Sw26010Spec mesh_spec(int dim) {
  arch::Sw26010Spec spec = arch::default_spec();
  spec.mesh_rows = dim;
  spec.mesh_cols = dim;
  return spec;
}

TEST(BackwardTransforms, ZeroPadPlacesGradientInTheMiddle) {
  const ConvShape s = ConvShape::from_output(1, 1, 1, 2, 2, 3, 3);
  tensor::Tensor g = make_output(s);
  g.at(0, 0, 0, 0) = 5.0;
  g.at(1, 1, 0, 0) = 7.0;
  const tensor::Tensor padded = zero_pad_output_gradient(g, s);
  EXPECT_EQ(padded.dims(), (std::vector<std::int64_t>{6, 6, 1, 1}));
  EXPECT_EQ(padded.at(2, 2, 0, 0), 5.0);
  EXPECT_EQ(padded.at(3, 3, 0, 0), 7.0);
  EXPECT_EQ(padded.at(0, 0, 0, 0), 0.0);
}

TEST(BackwardTransforms, RotateFlipsSpatialAndSwapsChannels) {
  const ConvShape s = ConvShape::from_output(1, 2, 3, 2, 2, 2, 3);
  tensor::Tensor w = make_filter(s);
  w.at(0, 0, 1, 2) = 4.0;  // kr=0, kc=0, ni=1, no=2
  const tensor::Tensor r = rotate_filter(w, s);
  EXPECT_EQ(r.dims(), (std::vector<std::int64_t>{2, 3, 3, 2}));
  EXPECT_EQ(r.at(1, 2, 2, 1), 4.0);  // Kr-1-0=1, Kc-1-0=2, no=2, ni=1
}

TEST(BackwardTransforms, BackwardShapeSwapsChannelsKeepsGeometry) {
  const ConvShape s = ConvShape::from_output(4, 2, 6, 5, 7, 3, 2);
  const ConvShape bs = backward_data_shape(s);
  EXPECT_EQ(bs.ni, s.no);
  EXPECT_EQ(bs.no, s.ni);
  EXPECT_EQ(bs.ro(), s.ri);
  EXPECT_EQ(bs.co(), s.ci);
  EXPECT_EQ(bs.kr, s.kr);
  EXPECT_EQ(bs.kc, s.kc);
  EXPECT_EQ(bs.batch, s.batch);
}

struct BwdCase {
  int mesh;
  ConvShape shape;
  std::string label;
};

BwdCase bc(int mesh, std::int64_t b, std::int64_t ni, std::int64_t no,
           std::int64_t ro, std::int64_t co, std::int64_t k) {
  return {mesh, ConvShape::from_output(b, ni, no, ro, co, k, k),
          "mesh" + std::to_string(mesh) + "_B" + std::to_string(b) + "Ni" +
              std::to_string(ni) + "No" + std::to_string(no) + "o" +
              std::to_string(ro) + "x" + std::to_string(co) + "k" +
              std::to_string(k)};
}

class BackwardData : public ::testing::TestWithParam<BwdCase> {};

TEST_P(BackwardData, MeshMatchesReference) {
  const BwdCase& tc = GetParam();
  util::Rng rng(61);
  tensor::Tensor w = make_filter(tc.shape);
  tensor::Tensor dout = make_output(tc.shape);
  rng.fill_uniform(w.data(), -1, 1);
  rng.fill_uniform(dout.data(), -1, 1);

  tensor::Tensor expected = make_input(tc.shape);
  reference_backward_data(dout, w, expected, tc.shape);

  SwConvolution sw(mesh_spec(tc.mesh));
  tensor::Tensor din = make_input(tc.shape);
  swconv_backward_data(sw, dout, w, din, tc.shape);
  EXPECT_LE(expected.max_abs_diff(din), 1e-11) << tc.label;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BackwardData,
    ::testing::Values(bc(2, 4, 2, 2, 3, 4, 2), bc(2, 4, 4, 2, 4, 4, 3),
                      bc(2, 8, 2, 4, 2, 6, 1), bc(4, 8, 4, 4, 3, 4, 2),
                      bc(4, 8, 8, 4, 2, 4, 3)),
    [](const ::testing::TestParamInfo<BwdCase>& info) {
      return info.param.label;
    });

class BackwardFilter : public ::testing::TestWithParam<BwdCase> {};

TEST_P(BackwardFilter, MeshMatchesReference) {
  const BwdCase& tc = GetParam();
  util::Rng rng(62);
  tensor::Tensor in = make_input(tc.shape);
  tensor::Tensor dout = make_output(tc.shape);
  rng.fill_uniform(in.data(), -1, 1);
  rng.fill_uniform(dout.data(), -1, 1);

  tensor::Tensor expected = make_filter(tc.shape);
  reference_backward_filter(in, dout, expected, tc.shape);

  sim::MeshExecutor exec(mesh_spec(tc.mesh));
  tensor::Tensor dw = make_filter(tc.shape);
  const auto stats = mesh_backward_filter(exec, in, dout, dw, tc.shape);
  EXPECT_LE(expected.max_abs_diff(dw), 1e-10) << tc.label;
  EXPECT_GT(stats.total_flops, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BackwardFilter,
    ::testing::Values(bc(2, 4, 2, 2, 3, 4, 2), bc(2, 4, 4, 2, 4, 4, 3),
                      bc(2, 3, 2, 5, 2, 3, 1),  // ragged everything
                      bc(4, 8, 4, 4, 3, 4, 2), bc(4, 5, 3, 7, 2, 3, 3)),
    [](const ::testing::TestParamInfo<BwdCase>& info) {
      return info.param.label;
    });

TEST(BackwardRoundTrip, ForwardThenBackwardDataIsLinearAdjoint) {
  // <conv(x, w), g> == <x, backward_data(g, w)> — the adjoint identity
  // that makes backprop through the mesh kernels correct.
  const ConvShape s = ConvShape::from_output(4, 2, 4, 3, 4, 2, 2);
  util::Rng rng(63);
  tensor::Tensor x = make_input(s), w = make_filter(s), g = make_output(s);
  rng.fill_uniform(x.data(), -1, 1);
  rng.fill_uniform(w.data(), -1, 1);
  rng.fill_uniform(g.data(), -1, 1);

  SwConvolution sw(mesh_spec(2));
  tensor::Tensor y = make_output(s);
  sw.forward(x, w, y, s);
  tensor::Tensor xg = make_input(s);
  swconv_backward_data(sw, g, w, xg, s);

  double lhs = 0, rhs = 0;
  for (std::int64_t i = 0; i < y.size(); ++i) {
    lhs += y.data()[i] * g.data()[i];
  }
  for (std::int64_t i = 0; i < x.size(); ++i) {
    rhs += x.data()[i] * xg.data()[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-9);
}

}  // namespace
}  // namespace swdnn::conv
