// ZeroPad2d, parameter checkpointing, and the 'same'-convolution
// composition they enable.

#include <gtest/gtest.h>

#include <cstdio>

#include "src/dnn/convolution.h"
#include "src/dnn/fully_connected.h"
#include "src/dnn/network.h"
#include "src/dnn/padding.h"
#include "src/dnn/relu.h"
#include "src/dnn/serialize.h"
#include "src/util/rng.h"

namespace swdnn::dnn {
namespace {

TEST(ZeroPad, ForwardPlacesInputInTheInterior) {
  ZeroPad2d pad(1, 2, 3, 0);
  tensor::Tensor x({2, 2, 1, 1});
  x.at(0, 0, 0, 0) = 5.0;
  x.at(1, 1, 0, 0) = 7.0;
  const tensor::Tensor y = pad.forward(x);
  EXPECT_EQ(y.dims(), (std::vector<std::int64_t>{5, 5, 1, 1}));
  EXPECT_EQ(y.at(1, 3, 0, 0), 5.0);
  EXPECT_EQ(y.at(2, 4, 0, 0), 7.0);
  EXPECT_EQ(y.at(0, 0, 0, 0), 0.0);
}

TEST(ZeroPad, BackwardCropsGradient) {
  ZeroPad2d pad(1);
  tensor::Tensor x({2, 2, 1, 1});
  pad.forward(x);
  tensor::Tensor g({4, 4, 1, 1});
  for (std::int64_t i = 0; i < g.size(); ++i) {
    g.data()[i] = static_cast<double>(i);
  }
  const tensor::Tensor dx = pad.backward(g);
  EXPECT_EQ(dx.dims(), x.dims());
  EXPECT_EQ(dx.at(0, 0, 0, 0), g.at(1, 1, 0, 0));
  EXPECT_EQ(dx.at(1, 1, 0, 0), g.at(2, 2, 0, 0));
}

TEST(ZeroPad, RejectsNegativePadding) {
  EXPECT_THROW(ZeroPad2d(-1, 0, 0, 0), std::invalid_argument);
}

TEST(ZeroPad, SameConvolutionKeepsSpatialSize) {
  // pad(k/2) + valid conv = 'same' convolution — the composition a real
  // network uses with the paper's valid-only kernels.
  util::Rng rng(101);
  Network net;
  net.emplace<ZeroPad2d>(1);
  net.emplace<Convolution>(
      conv::ConvShape::from_output(2, 1, 3, 6, 6, 3, 3), rng);
  tensor::Tensor x({6, 6, 1, 2});
  rng.fill_uniform(x.data(), -1, 1);
  const tensor::Tensor y = net.forward(x);
  EXPECT_EQ(y.dim(0), 6);
  EXPECT_EQ(y.dim(1), 6);
  EXPECT_EQ(y.dim(2), 3);
  // Gradient flows back to the unpadded input shape.
  tensor::Tensor g(y.dims());
  g.fill(0.1);
  EXPECT_EQ(net.backward(g).dims(), x.dims());
}

Network make_test_network(util::Rng& rng) {
  Network net;
  net.emplace<Convolution>(
      conv::ConvShape::from_output(2, 1, 2, 4, 4, 3, 3), rng);
  net.emplace<Relu>();
  net.emplace<FullyConnected>(4 * 4 * 2, 3, rng);
  return net;
}

TEST(Serialize, RoundTripRestoresAllParameters) {
  util::Rng rng_a(102), rng_b(103);
  Network original = make_test_network(rng_a);
  Network reloaded = make_test_network(rng_b);  // different init

  const std::string path = ::testing::TempDir() + "/swdnn_params.bin";
  save_parameters(original, path);
  load_parameters(reloaded, path);

  const auto pa = original.params();
  const auto pb = reloaded.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa[i].param->allclose(*pb[i].param, 0, 0)) << "param " << i;
  }
  std::remove(path.c_str());
}

TEST(Serialize, RoundTripPreservesBehaviour) {
  util::Rng rng_a(104), rng_b(105), rng_x(106);
  Network original = make_test_network(rng_a);
  Network reloaded = make_test_network(rng_b);
  const std::string path = ::testing::TempDir() + "/swdnn_params2.bin";
  save_parameters(original, path);
  load_parameters(reloaded, path);

  tensor::Tensor x({6, 6, 1, 2});
  rng_x.fill_uniform(x.data(), -1, 1);
  const tensor::Tensor ya = original.forward(x);
  const tensor::Tensor yb = reloaded.forward(x);
  EXPECT_TRUE(ya.allclose(yb, 0, 0));
  std::remove(path.c_str());
}

TEST(Serialize, RejectsArchitectureMismatch) {
  util::Rng rng_a(107), rng_b(108);
  Network original = make_test_network(rng_a);
  const std::string path = ::testing::TempDir() + "/swdnn_params3.bin";
  save_parameters(original, path);

  Network different;
  different.emplace<FullyConnected>(10, 3, rng_b);
  EXPECT_THROW(load_parameters(different, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsGarbageFile) {
  const std::string path = ::testing::TempDir() + "/swdnn_garbage.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a checkpoint", f);
    std::fclose(f);
  }
  util::Rng rng(109);
  Network net = make_test_network(rng);
  EXPECT_THROW(load_parameters(net, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsMissingFile) {
  util::Rng rng(110);
  Network net = make_test_network(rng);
  EXPECT_THROW(load_parameters(net, "/nonexistent/swdnn.bin"),
               std::runtime_error);
}

}  // namespace
}  // namespace swdnn::dnn
