// The Section V-C vectorization-oriented DMA path: Algorithm 1 run
// directly on the (4, C, R, N, B/4) layout must (a) compute the same
// convolution and (b) issue fewer, larger DMA requests than the
// canonical-layout kernel — the layout exists purely to move the Table
// II operating point.

#include <gtest/gtest.h>

#include "src/conv/ldm_blocked.h"
#include "src/conv/reference.h"
#include "src/tensor/layout.h"
#include "src/util/rng.h"

namespace swdnn::conv {
namespace {

arch::Sw26010Spec mesh_spec(int dim) {
  arch::Sw26010Spec spec = arch::default_spec();
  spec.mesh_rows = dim;
  spec.mesh_cols = dim;
  return spec;
}

struct VecCase {
  int mesh;
  ConvShape shape;
  perf::ConvPlan plan;
  std::string label;
};

VecCase vc(int mesh, std::int64_t b, std::int64_t ni, std::int64_t no,
           std::int64_t ro, std::int64_t co, std::int64_t k,
           std::int64_t bb, std::int64_t bco) {
  VecCase c;
  c.mesh = mesh;
  c.shape = ConvShape::from_output(b, ni, no, ro, co, k, k);
  c.plan.kind = perf::PlanKind::kImageSizeAware;
  c.plan.block_b = bb;
  c.plan.block_co = bco;
  c.label = "mesh" + std::to_string(mesh) + "_B" + std::to_string(b) +
            "Ni" + std::to_string(ni) + "No" + std::to_string(no) + "k" +
            std::to_string(k) + "bB" + std::to_string(bb) + "bCo" +
            std::to_string(bco);
  return c;
}

class VectorizedConv : public ::testing::TestWithParam<VecCase> {};

TEST_P(VectorizedConv, MatchesReferenceThroughLayoutRoundTrip) {
  const VecCase& tc = GetParam();
  util::Rng rng(71);
  tensor::Tensor input = make_input(tc.shape);
  tensor::Tensor filter = make_filter(tc.shape);
  rng.fill_uniform(input.data(), -1, 1);
  rng.fill_uniform(filter.data(), -1, 1);

  tensor::Tensor expected = make_output(tc.shape);
  reference_forward(input, filter, expected, tc.shape);

  const tensor::Tensor input_vec = tensor::to_image_size_aware(input);
  tensor::Tensor output_vec = tensor::to_image_size_aware(expected);
  output_vec.zero();

  sim::MeshExecutor exec(mesh_spec(tc.mesh));
  run_image_size_aware_vectorized(exec, input_vec, filter, output_vec,
                                  tc.shape, tc.plan);
  const tensor::Tensor actual = tensor::from_image_size_aware(output_vec);
  EXPECT_LE(expected.max_abs_diff(actual), 1e-12) << tc.label;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, VectorizedConv,
    ::testing::Values(vc(2, 8, 2, 2, 3, 4, 2, 8, 2),
                      vc(2, 16, 4, 2, 4, 4, 3, 8, 4),
                      vc(2, 8, 4, 4, 2, 6, 1, 8, 3),
                      vc(4, 16, 4, 4, 3, 4, 2, 16, 2)),
    [](const ::testing::TestParamInfo<VecCase>& info) {
      return info.param.label;
    });

TEST(VectorizedConv, IssuesFewerLargerDmaRequestsThanCanonical) {
  // Same shape, same plan, both kernels: the vectorized layout's input
  // requests are bCo*4 doubles each vs bb_p doubles — fewer requests
  // moving the same (or more, due to run granularity) bytes.
  const ConvShape shape = ConvShape::from_output(16, 4, 4, 4, 4, 3, 3);
  perf::ConvPlan plan;
  plan.kind = perf::PlanKind::kImageSizeAware;
  plan.block_b = 16;
  plan.block_co = 4;
  util::Rng rng(72);
  tensor::Tensor input = make_input(shape);
  tensor::Tensor filter = make_filter(shape);
  rng.fill_uniform(input.data(), -1, 1);
  rng.fill_uniform(filter.data(), -1, 1);

  sim::MeshExecutor exec(mesh_spec(2));
  tensor::Tensor out_canonical = make_output(shape);
  const auto canonical_stats = run_image_size_aware(
      exec, input, filter, out_canonical, shape, plan);

  const tensor::Tensor input_vec = tensor::to_image_size_aware(input);
  tensor::Tensor output_vec = tensor::to_image_size_aware(out_canonical);
  output_vec.zero();
  const auto vectorized_stats = run_image_size_aware_vectorized(
      exec, input_vec, filter, output_vec, shape, plan);

  EXPECT_LT(vectorized_stats.dma.requests, canonical_stats.dma.requests);
  // Effective bytes-per-request grows.
  const double canon_block =
      static_cast<double>(canonical_stats.dma.get_bytes +
                          canonical_stats.dma.put_bytes) /
      static_cast<double>(canonical_stats.dma.requests);
  const double vec_block =
      static_cast<double>(vectorized_stats.dma.get_bytes +
                          vectorized_stats.dma.put_bytes) /
      static_cast<double>(vectorized_stats.dma.requests);
  EXPECT_GT(vec_block, canon_block);
  // And both computed the same thing.
  EXPECT_LE(out_canonical.max_abs_diff(
                tensor::from_image_size_aware(output_vec)),
            1e-12);
}

TEST(VectorizedConv, RequiresWholeQuadsPerCpe) {
  const ConvShape shape = ConvShape::from_output(8, 2, 2, 3, 4, 2, 2);
  perf::ConvPlan plan;
  plan.kind = perf::PlanKind::kImageSizeAware;
  plan.block_b = 4;  // 4 / (4*2 mesh) -> not whole quads per CPE
  plan.block_co = 2;
  sim::MeshExecutor exec(mesh_spec(2));
  tensor::Tensor input_vec({2, 2, 4, 5, 4});
  tensor::Tensor filter = make_filter(shape);
  tensor::Tensor output_vec({2, 2, 3, 4, 4});
  EXPECT_THROW(run_image_size_aware_vectorized(exec, input_vec, filter,
                                               output_vec, shape, plan),
               std::invalid_argument);
}

}  // namespace
}  // namespace swdnn::conv
