// TensorPool: recycled acquires are allocation-free and zeroed acquires
// are byte-identical to fresh tensors; the RAII handle returns buffers
// on destruction; concurrent acquire/release is safe.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/tensor/pool.h"

namespace swdnn::tensor {
namespace {

TEST(TensorPool, RecycledAcquireIsAllocationFreeAndZeroed) {
  TensorPool pool;
  {
    PooledTensor t = pool.acquire({4, 3});
    for (std::int64_t i = 0; i < t->size(); ++i) t->data()[i] = 7.5;
  }  // released back
  EXPECT_EQ(pool.idle_count(), 1u);

  const std::uint64_t before = allocation_count();
  PooledTensor t = pool.acquire({4, 3});
  EXPECT_EQ(allocation_count() - before, 0u);  // recycled by move
  EXPECT_EQ(pool.idle_count(), 0u);
  for (std::int64_t i = 0; i < t->size(); ++i) {
    EXPECT_EQ(t->data()[i], 0.0) << i;  // scrubbed, like a fresh Tensor
  }
}

TEST(TensorPool, DirtyAcquireRecyclesWithoutScrubbing) {
  TensorPool pool;
  { PooledTensor t = pool.acquire_dirty({8}); }
  const std::uint64_t before = allocation_count();
  PooledTensor t = pool.acquire_dirty({8});
  EXPECT_EQ(allocation_count() - before, 0u);
  EXPECT_EQ(t->dims(), (std::vector<std::int64_t>{8}));
}

TEST(TensorPool, ShapesKeepSeparateFreeLists) {
  TensorPool pool;
  { PooledTensor a = pool.acquire({2, 2}); }
  // A different shape cannot reuse the parked {2, 2} buffer.
  const std::uint64_t before = allocation_count();
  PooledTensor b = pool.acquire({3, 3});
  EXPECT_GT(allocation_count() - before, 0u);
  EXPECT_EQ(pool.idle_count(), 1u);  // the {2, 2} buffer is still parked
}

TEST(TensorPool, MovedFromHandleDoesNotDoubleRelease) {
  TensorPool pool;
  {
    PooledTensor a = pool.acquire({4});
    PooledTensor b = std::move(a);
    // Only b owns the buffer now; a's destruction must be a no-op.
  }
  EXPECT_EQ(pool.idle_count(), 1u);
}

TEST(TensorPool, NullPoolHandleJustDropsTheTensor) {
  PooledTensor detached(nullptr, Tensor({5}));
  EXPECT_EQ(detached->size(), 5);
  // Destruction must not crash (nothing to release into).
}

TEST(TensorPool, ConcurrentAcquireReleaseIsSafe) {
  TensorPool pool;
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&pool] {
      for (int r = 0; r < kRounds; ++r) {
        PooledTensor a = pool.acquire({6, 6});
        PooledTensor b = pool.acquire_dirty({3});
        a->data()[0] = 1.0;
        b->data()[0] = 2.0;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_GE(pool.idle_count(), 2u);
}

}  // namespace
}  // namespace swdnn::tensor
