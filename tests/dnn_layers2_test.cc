// The extended layer set: tanh, sigmoid, LRN, dropout, average pooling —
// each with hand cases and finite-difference gradient checks.

#include <gtest/gtest.h>

#include <cmath>

#include "src/dnn/activations.h"
#include "src/dnn/dropout.h"
#include "src/dnn/lrn.h"
#include "src/dnn/pooling.h"
#include "src/util/rng.h"

namespace swdnn::dnn {
namespace {

// Generic finite-difference gradient check through a layer for the
// scalar loss L = sum(forward(x) * g).
void grad_check(Layer& layer, tensor::Tensor x, double tol = 1e-6) {
  util::Rng rng(7);
  tensor::Tensor probe_out = layer.forward(x);
  tensor::Tensor g(probe_out.dims());
  rng.fill_uniform(g.data(), -1, 1);
  const tensor::Tensor dx = layer.backward(g);

  auto loss_of = [&layer, &g](const tensor::Tensor& input) {
    const tensor::Tensor y = layer.forward(input);
    double loss = 0;
    for (std::int64_t i = 0; i < y.size(); ++i) {
      loss += y.data()[i] * g.data()[i];
    }
    return loss;
  };
  const double h = 1e-6;
  const std::int64_t probes[] = {0, x.size() / 2, x.size() - 1};
  for (std::int64_t idx : probes) {
    tensor::Tensor plus = x, minus = x;
    plus.data()[idx] += h;
    minus.data()[idx] -= h;
    const double numeric = (loss_of(plus) - loss_of(minus)) / (2 * h);
    EXPECT_NEAR(dx.data()[idx], numeric, tol) << "idx=" << idx;
  }
}

TEST(TanhLayer, ForwardValues) {
  Tanh layer;
  tensor::Tensor x({3});
  x.at(0) = 0;
  x.at(1) = 1;
  x.at(2) = -2;
  const tensor::Tensor y = layer.forward(x);
  EXPECT_NEAR(y.at(0), 0.0, 1e-12);
  EXPECT_NEAR(y.at(1), std::tanh(1.0), 1e-12);
  EXPECT_NEAR(y.at(2), std::tanh(-2.0), 1e-12);
}

TEST(TanhLayer, GradientMatchesFiniteDifferences) {
  Tanh layer;
  util::Rng rng(31);
  tensor::Tensor x({2, 3, 2, 2});
  rng.fill_uniform(x.data(), -2, 2);
  grad_check(layer, x);
}

TEST(TanhLayer, BackwardBeforeForwardThrows) {
  Tanh layer;
  tensor::Tensor g({3});
  EXPECT_THROW(layer.backward(g), std::invalid_argument);
}

TEST(SigmoidLayer, ForwardValues) {
  Sigmoid layer;
  tensor::Tensor x({2});
  x.at(0) = 0;
  x.at(1) = 100;
  const tensor::Tensor y = layer.forward(x);
  EXPECT_NEAR(y.at(0), 0.5, 1e-12);
  EXPECT_NEAR(y.at(1), 1.0, 1e-12);
}

TEST(SigmoidLayer, GradientMatchesFiniteDifferences) {
  Sigmoid layer;
  util::Rng rng(32);
  tensor::Tensor x({3, 4});
  rng.fill_uniform(x.data(), -2, 2);
  grad_check(layer, x);
}

TEST(LrnLayer, NormalizesAcrossChannels) {
  Lrn layer(3, 1.0, 1.0, 1.0);  // strong normalization for visibility
  tensor::Tensor x({1, 1, 4, 1});
  for (std::int64_t c = 0; c < 4; ++c) x.at(0, 0, c, 0) = 3.0;
  const tensor::Tensor y = layer.forward(x);
  // Middle channels see a window sum of 27: y = 3 / (1 + 27/3).
  EXPECT_NEAR(y.at(0, 0, 1, 0), 3.0 / 10.0, 1e-12);
  // Edge channels have a truncated window (two members, sum 18).
  EXPECT_NEAR(y.at(0, 0, 0, 0), 3.0 / 7.0, 1e-12);
}

TEST(LrnLayer, IdentityWhenAlphaIsZero) {
  Lrn layer(5, 0.0, 0.75, 1.0);
  util::Rng rng(33);
  tensor::Tensor x({2, 2, 6, 2});
  rng.fill_uniform(x.data(), -1, 1);
  const tensor::Tensor y = layer.forward(x);
  EXPECT_TRUE(y.allclose(x, 1e-12, 1e-12));
}

TEST(LrnLayer, GradientMatchesFiniteDifferences) {
  Lrn layer(3, 0.5, 0.75, 2.0);
  util::Rng rng(34);
  tensor::Tensor x({2, 2, 5, 2});
  rng.fill_uniform(x.data(), -1, 1);
  grad_check(layer, x, 1e-5);
}

TEST(LrnLayer, RejectsEvenWindow) {
  EXPECT_THROW(Lrn(4), std::invalid_argument);
  EXPECT_THROW(Lrn(0), std::invalid_argument);
}

TEST(DropoutLayer, EvalModeIsIdentity) {
  Dropout layer(0.5, 42);
  layer.set_training(false);
  util::Rng rng(35);
  tensor::Tensor x({4, 4});
  rng.fill_uniform(x.data(), -1, 1);
  const tensor::Tensor y = layer.forward(x);
  EXPECT_TRUE(y.allclose(x, 0, 0));
}

TEST(DropoutLayer, TrainModeZeroesAndRescales) {
  Dropout layer(0.5, 42);
  tensor::Tensor x({10000});
  x.fill(1.0);
  const tensor::Tensor y = layer.forward(x);
  int zeros = 0;
  for (double v : y.data()) {
    if (v == 0.0) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 2.0, 1e-12);  // 1 / (1 - 0.5)
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.5, 0.05);
}

TEST(DropoutLayer, PreservesExpectation) {
  Dropout layer(0.3, 7);
  tensor::Tensor x({20000});
  x.fill(1.0);
  const tensor::Tensor y = layer.forward(x);
  double mean = 0;
  for (double v : y.data()) mean += v;
  mean /= static_cast<double>(y.size());
  EXPECT_NEAR(mean, 1.0, 0.05);
}

TEST(DropoutLayer, BackwardUsesTheSameMask) {
  Dropout layer(0.5, 11);
  tensor::Tensor x({64});
  x.fill(1.0);
  const tensor::Tensor y = layer.forward(x);
  tensor::Tensor g({64});
  g.fill(1.0);
  const tensor::Tensor dx = layer.backward(g);
  for (std::int64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(dx.at(i), y.at(i));  // same mask, same scale
  }
}

TEST(DropoutLayer, RejectsBadProbability) {
  EXPECT_THROW(Dropout(1.0, 1), std::invalid_argument);
  EXPECT_THROW(Dropout(-0.1, 1), std::invalid_argument);
}

TEST(AvgPoolingLayer, ForwardAverages) {
  AvgPooling pool(2);
  tensor::Tensor x({2, 2, 1, 1});
  x.at(0, 0, 0, 0) = 1;
  x.at(0, 1, 0, 0) = 2;
  x.at(1, 0, 0, 0) = 3;
  x.at(1, 1, 0, 0) = 6;
  const tensor::Tensor y = pool.forward(x);
  EXPECT_DOUBLE_EQ(y.at(0, 0, 0, 0), 3.0);
}

TEST(AvgPoolingLayer, GradientMatchesFiniteDifferences) {
  AvgPooling pool(2);
  util::Rng rng(36);
  tensor::Tensor x({4, 4, 2, 2});
  rng.fill_uniform(x.data(), -1, 1);
  grad_check(pool, x);
}

TEST(AvgPoolingLayer, RejectsIndivisibleImage) {
  AvgPooling pool(3);
  tensor::Tensor x({4, 4, 1, 1});
  EXPECT_THROW(pool.forward(x), std::invalid_argument);
}

}  // namespace
}  // namespace swdnn::dnn
