#include <gtest/gtest.h>

#include <thread>

#include "src/sim/regcomm.h"

namespace swdnn::sim {
namespace {

TEST(Vec4, Splat) {
  const Vec4 v = Vec4::splat(2.5);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v.lane[i], 2.5);
}

TEST(Vec4, Fma) {
  Vec4 acc = Vec4::splat(1.0);
  acc.fma(Vec4{{1, 2, 3, 4}}, Vec4{{2, 2, 2, 2}});
  EXPECT_EQ(acc.lane[0], 3.0);
  EXPECT_EQ(acc.lane[3], 9.0);
}

TEST(Vec4, AddAndMul) {
  const Vec4 a{{1, 2, 3, 4}};
  const Vec4 b{{10, 20, 30, 40}};
  const Vec4 sum = a + b;
  const Vec4 prod = a * b;
  EXPECT_EQ(sum.lane[2], 33.0);
  EXPECT_EQ(prod.lane[3], 160.0);
}

TEST(TransferBuffer, FifoOrder) {
  TransferBuffer buf(4);
  buf.put(Vec4::splat(1.0));
  buf.put(Vec4::splat(2.0));
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf.get().lane[0], 1.0);
  EXPECT_EQ(buf.get().lane[0], 2.0);
  EXPECT_EQ(buf.size(), 0u);
}

TEST(TransferBuffer, PutBlocksWhenFullUntilGet) {
  TransferBuffer buf(2);
  buf.put(Vec4::splat(1.0));
  buf.put(Vec4::splat(2.0));
  std::atomic<bool> third_done{false};
  std::thread producer([&] {
    buf.put(Vec4::splat(3.0));  // must block until a slot frees
    third_done.store(true);
  });
  // The producer cannot finish while the buffer is full.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_done.load());
  EXPECT_EQ(buf.get().lane[0], 1.0);
  producer.join();
  EXPECT_TRUE(third_done.load());
  EXPECT_EQ(buf.get().lane[0], 2.0);
  EXPECT_EQ(buf.get().lane[0], 3.0);
}

TEST(TransferBuffer, GetBlocksUntilPut) {
  TransferBuffer buf(4);
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    const Vec4 v = buf.get();
    EXPECT_EQ(v.lane[1], 7.0);
    got.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  buf.put(Vec4{{0, 7, 0, 0}});
  consumer.join();
  EXPECT_TRUE(got.load());
}

TEST(TransferBuffer, ManyMessagesThroughSmallBuffer) {
  // Producer-consumer across a capacity-4 buffer, 1000 messages: the
  // paper's multi-Put/multi-Get discipline.
  TransferBuffer buf(4);
  constexpr int kN = 1000;
  std::thread producer([&] {
    for (int i = 0; i < kN; ++i) buf.put(Vec4::splat(static_cast<double>(i)));
  });
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(buf.get().lane[0], static_cast<double>(i));
  }
  producer.join();
}

}  // namespace
}  // namespace swdnn::sim
