// End-to-end checks against the paper's published evaluation:
// Table III (model vs measured on one CG), the Figure 7 envelope
// (speedup range, swDNN stability), the Figure 9 trend (filter-size
// robustness), and the headline claims (>1.6 Tflops, >50% of peak,
// near-linear 4-CG scaling). Absolute tolerances are documented in
// EXPERIMENTS.md; the asserts here pin the *shape* of every result so a
// regression in any model component trips a test.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/conv/swconv.h"
#include "src/perf/k40m.h"

namespace swdnn {
namespace {

conv::ConvShape paper_shape(std::int64_t ni, std::int64_t no,
                            std::int64_t k = 3) {
  return conv::ConvShape::from_output(128, ni, no, 64, 64, k, k);
}

struct Table3Row {
  const char* plan;
  std::int64_t bb, bco, ni, no;
  double paper_rbw, paper_mbw, paper_mdl, paper_meas;
};

// Paper Table III, verbatim.
const Table3Row kTable3[] = {
    {"img", 32, 16, 128, 128, 29.0, 21.9, 368, 350},
    {"img", 32, 8, 128, 256, 23.2, 18.2, 397, 375},
    {"batch", 0, 8, 256, 256, 27.1, 21.2, 422, 410},
    {"batch", 0, 8, 128, 384, 25.7, 21.2, 407, 392},
};

perf::ConvPlan plan_for_row(const Table3Row& row) {
  perf::ConvPlan p;
  if (std::string(row.plan) == "img") {
    p.kind = perf::PlanKind::kImageSizeAware;
    p.block_b = row.bb;
    p.block_co = row.bco;
  } else {
    p.kind = perf::PlanKind::kBatchSizeAware;
    p.block_co = row.bco;
  }
  return p;
}

class Table3 : public ::testing::TestWithParam<int> {};

TEST_P(Table3, RbwMatchesPaperExactly) {
  const Table3Row& row = kTable3[GetParam()];
  perf::PerformanceModel model;
  const auto shape = paper_shape(row.ni, row.no);
  const auto plan = plan_for_row(row);
  const double rbw = plan.kind == perf::PlanKind::kImageSizeAware
                         ? model.rbw_image_plan(shape, plan)
                         : model.rbw_batch_plan(shape, plan);
  EXPECT_NEAR(rbw, row.paper_rbw, 0.1);
}

TEST_P(Table3, MbwWithinPublishedRange) {
  // The paper's in-kernel MBW sits in 18.2-21.9 GB/s; ours must land in
  // the same band (within the model's documented cap).
  const Table3Row& row = kTable3[GetParam()];
  perf::PerformanceModel model;
  const auto e = model.estimate(paper_shape(row.ni, row.no),
                                plan_for_row(row));
  EXPECT_GE(e.mbw_mem_gbs, 17.0);
  EXPECT_LE(e.mbw_mem_gbs, 22.0);
  EXPECT_NEAR(e.mbw_mem_gbs, row.paper_mbw, 4.0);
}

TEST_P(Table3, ModelWithinBandOfPaper) {
  const Table3Row& row = kTable3[GetParam()];
  perf::PerformanceModel model;
  const auto e = model.estimate(paper_shape(row.ni, row.no),
                                plan_for_row(row));
  // Row 2 deviates most (+47%): the paper measured MBW=18.2 there where
  // our Table II interpolation cannot go below its cap (EXPERIMENTS.md
  // discusses). Everything must be within +/-50% and rows 1/3/4 much
  // tighter.
  EXPECT_GT(e.gflops_per_cg, 0.5 * row.paper_mdl);
  EXPECT_LT(e.gflops_per_cg, 1.5 * row.paper_mdl);
}

TEST_P(Table3, MeasProxySitsJustBelowModelLikePaper) {
  const Table3Row& row = kTable3[GetParam()];
  conv::SwConvolution sw;
  const auto shape = paper_shape(row.ni, row.no);
  const auto plan = plan_for_row(row);
  const double mdl =
      sw.chooser().model().estimate(shape, plan).gflops_per_cg;
  const double meas = sw.cycle_accounted_gflops_per_cg(shape, plan);
  const double ratio = meas / mdl;
  // Paper: meas/mdl = 0.95, 0.94, 0.97, 0.96.
  EXPECT_GT(ratio, 0.85);
  EXPECT_LT(ratio, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Rows, Table3, ::testing::Values(0, 1, 2, 3));

TEST(Table3, RowsOneAndThreeAreTight) {
  // The two rows our MBW reproduces well must also match closely in
  // modeled throughput.
  perf::PerformanceModel model;
  const auto e1 =
      model.estimate(paper_shape(128, 128), plan_for_row(kTable3[0]));
  EXPECT_NEAR(e1.gflops_per_cg, 368, 20);
  const auto e3 =
      model.estimate(paper_shape(256, 256), plan_for_row(kTable3[2]));
  EXPECT_NEAR(e3.gflops_per_cg, 422, 20);
}

// --- Figure 7 envelope ---------------------------------------------------

std::vector<conv::ConvShape> fig7_grid() {
  std::vector<conv::ConvShape> shapes;
  for (std::int64_t ch = 64; ch <= 384; ch += 16) {
    shapes.push_back(paper_shape(ch, ch));
  }
  return shapes;
}

TEST(Fig7, SpeedupRangeMatchesPaperEnvelope) {
  // Paper: 1.91x - 9.75x over cuDNNv5 on K40m across >100 configs.
  conv::SwConvolution sw;
  perf::K40mCudnnModel k40;
  double lo = 1e30, hi = 0;
  for (const auto& shape : fig7_grid()) {
    const auto choice = sw.plan_for(shape);
    const double ours = sw.cycle_accounted_gflops_chip(shape, choice.plan);
    const double sp = ours / k40.conv_gflops(shape);
    lo = std::min(lo, sp);
    hi = std::max(hi, sp);
  }
  EXPECT_GT(lo, 1.5);
  EXPECT_LT(lo, 2.6);
  EXPECT_GT(hi, 6.0);
  EXPECT_LT(hi, 12.0);
}

TEST(Fig7, SwdnnWinsEverywhere) {
  conv::SwConvolution sw;
  perf::K40mCudnnModel k40;
  for (const auto& shape : fig7_grid()) {
    const auto choice = sw.plan_for(shape);
    EXPECT_GT(sw.cycle_accounted_gflops_chip(shape, choice.plan),
              k40.conv_gflops(shape))
        << shape.to_string();
  }
}

TEST(Fig7, SwdnnAbove1TflopsForMostConfigs) {
  // "In most cases, we see a convolution performance above 1.6 Tflops";
  // our model's band sits at 1.45-2.2T with a low tail at tiny channel
  // counts — require >=1.4T for at least 70% of the grid.
  conv::SwConvolution sw;
  int above = 0, total = 0;
  for (const auto& shape : fig7_grid()) {
    const auto choice = sw.plan_for(shape);
    if (sw.cycle_accounted_gflops_chip(shape, choice.plan) > 1400.0) {
      ++above;
    }
    ++total;
  }
  EXPECT_GE(above * 10, total * 7);
}

TEST(Fig7, SwdnnIsMoreStableThanCudnn) {
  // "not like cuDNN, our program is stable under different parameter
  // configurations": coefficient of variation of the swDNN series must
  // beat cuDNN's.
  conv::SwConvolution sw;
  perf::K40mCudnnModel k40;
  std::vector<double> ours, theirs;
  for (const auto& shape : fig7_grid()) {
    if (shape.ni < 96) continue;  // drop the small-channel warmup tail
    ours.push_back(
        sw.cycle_accounted_gflops_chip(shape, sw.plan_for(shape).plan));
    theirs.push_back(k40.conv_gflops(shape));
  }
  auto cv = [](const std::vector<double>& v) {
    double mean = 0;
    for (double x : v) mean += x;
    mean /= static_cast<double>(v.size());
    double var = 0;
    for (double x : v) var += (x - mean) * (x - mean);
    return std::sqrt(var / static_cast<double>(v.size())) / mean;
  };
  EXPECT_LT(cv(ours), cv(theirs));
}

TEST(Fig7, EfficiencyExceedsHalfOfPeakAtTableConfigs) {
  // "we increase the computational efficiency from 40% to 54%" — at the
  // paper's best configurations the chip efficiency must exceed 50%.
  conv::SwConvolution sw;
  const auto& spec = arch::default_spec();
  int hits = 0;
  for (auto ch : {256L, 320L, 384L}) {
    const auto shape = paper_shape(ch, ch);
    const double eff =
        sw.cycle_accounted_gflops_chip(shape, sw.plan_for(shape).plan) /
        spec.peak_gflops_per_chip();
    if (eff > 0.50) ++hits;
    EXPECT_GT(eff, 0.40);
  }
  EXPECT_GE(hits, 2);
}

// --- Figure 9 ------------------------------------------------------------

TEST(Fig9, SpeedupGrowsWithFilterSize) {
  conv::SwConvolution sw;
  perf::K40mCudnnModel k40;
  double prev = 0;
  for (std::int64_t k : {3, 9, 15, 21}) {
    const auto shape = paper_shape(256, 256, k);
    const double sp =
        sw.cycle_accounted_gflops_chip(shape, sw.plan_for(shape).plan) /
        k40.conv_gflops(shape);
    EXPECT_GT(sp, prev) << "k=" << k;
    prev = sp;
  }
  // Largest filters approach the paper's 9.75x extreme.
  EXPECT_GT(prev, 8.0);
}

TEST(Fig9, SwdnnHoldsThroughputAcrossFilterSizes) {
  // The swDNN series stays flat while cuDNN collapses.
  conv::SwConvolution sw;
  double lo = 1e30, hi = 0;
  for (std::int64_t k = 3; k <= 21; k += 2) {
    const auto shape = paper_shape(256, 256, k);
    const double g =
        sw.cycle_accounted_gflops_chip(shape, sw.plan_for(shape).plan);
    lo = std::min(lo, g);
    hi = std::max(hi, g);
  }
  EXPECT_LT(hi / lo, 1.5);
  EXPECT_GT(lo, 1400.0);
}

// --- Headline / scaling ---------------------------------------------------

TEST(Headline, DirectGloadMatchesFig2Strawman) {
  perf::PerformanceModel model;
  EXPECT_NEAR(model.direct_gload_gflops_per_cg() / 742.4, 0.0033, 3e-4);
}

TEST(Headline, FourCgScalingIsNearLinear) {
  conv::SwConvolution sw;
  const auto shape = paper_shape(256, 256);
  const auto plan = sw.plan_for(shape).plan;
  const double cg = sw.cycle_accounted_gflops_per_cg(shape, plan);
  const double chip = sw.cycle_accounted_gflops_chip(shape, plan);
  EXPECT_GT(chip / cg, 3.8);
}

}  // namespace
}  // namespace swdnn
