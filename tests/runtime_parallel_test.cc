// Host parallel runtime determinism suite: the TaskPool contract
// (chunking, nesting, exceptions, resizing) and the bitwise-identity
// guarantee — every parallelized kernel and the concurrent
// data-parallel replica stepping must produce exactly the same doubles
// at 1, 2, and 8 threads, including when the backend is degrading to
// the host route under injected faults.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "src/api/swdnn_api.h"
#include "src/conv/gemm.h"
#include "src/conv/im2col.h"
#include "src/conv/reference.h"
#include "src/dnn/convolution.h"
#include "src/dnn/dropout.h"
#include "src/dnn/fully_connected.h"
#include "src/dnn/lrn.h"
#include "src/dnn/pooling.h"
#include "src/dnn/relu.h"
#include "src/dnn/trainer.h"
#include "src/parallel/data_parallel.h"
#include "src/runtime/task_pool.h"
#include "src/sim/fault.h"
#include "src/util/ksum.h"
#include "src/util/rng.h"

namespace swdnn {
namespace {

/// Runs `fn` with the shared pool resized to `threads`, restoring the
/// prior size afterwards.
template <typename Fn>
auto with_threads(int threads, Fn fn) {
  const int prior = runtime::host_threads();
  runtime::set_host_threads(threads);
  if constexpr (std::is_void_v<decltype(fn())>) {
    fn();
    runtime::set_host_threads(prior);
  } else {
    auto result = fn();
    runtime::set_host_threads(prior);
    return result;
  }
}

const int kThreadCounts[] = {1, 2, 8};

// --- TaskPool contract -----------------------------------------------

TEST(TaskPool, EveryIndexRunsExactlyOnce) {
  for (const int threads : kThreadCounts) {
    with_threads(threads, [] {
      std::vector<std::atomic<int>> hits(101);
      runtime::parallel_for(0, 101, 7, [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) hits[static_cast<std::size_t>(i)]++;
      });
      for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    });
  }
}

TEST(TaskPool, ChunkBoundariesDependOnlyOnRangeAndGrain) {
  EXPECT_EQ(runtime::TaskPool::chunk_count(0, 0, 4), 0);
  EXPECT_EQ(runtime::TaskPool::chunk_count(0, 1, 4), 1);
  EXPECT_EQ(runtime::TaskPool::chunk_count(0, 8, 4), 2);
  EXPECT_EQ(runtime::TaskPool::chunk_count(0, 9, 4), 3);
  EXPECT_EQ(runtime::TaskPool::chunk_count(3, 9, 2), 3);
  for (const int threads : kThreadCounts) {
    auto chunks = with_threads(threads, [] {
      std::vector<std::pair<std::int64_t, std::int64_t>> out(
          static_cast<std::size_t>(runtime::TaskPool::chunk_count(5, 42, 6)));
      runtime::parallel_for_shards(
          5, 42, 6, [&](std::int64_t chunk, std::int64_t b, std::int64_t e) {
            out[static_cast<std::size_t>(chunk)] = {b, e};
          });
      return out;
    });
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      EXPECT_EQ(chunks[c].first, 5 + static_cast<std::int64_t>(c) * 6);
      EXPECT_EQ(chunks[c].second,
                std::min<std::int64_t>(chunks[c].first + 6, 42));
    }
  }
}

TEST(TaskPool, NestedCallsRunInlineWithoutDeadlock) {
  with_threads(4, [] {
    std::vector<std::atomic<int>> hits(64);
    runtime::parallel_for(0, 8, 1, [&](std::int64_t ob, std::int64_t oe) {
      for (std::int64_t o = ob; o < oe; ++o) {
        runtime::parallel_for(0, 8, 1, [&](std::int64_t ib, std::int64_t ie) {
          for (std::int64_t i = ib; i < ie; ++i) {
            hits[static_cast<std::size_t>(o * 8 + i)]++;
          }
        });
      }
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  });
}

TEST(TaskPool, LowestFaultingChunkExceptionPropagates) {
  for (const int threads : kThreadCounts) {
    with_threads(threads, [] {
      try {
        runtime::parallel_for(0, 40, 1, [&](std::int64_t b, std::int64_t) {
          if (b >= 10) throw std::runtime_error("chunk " + std::to_string(b));
        });
        FAIL() << "expected the worker exception to be rethrown";
      } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "chunk 10");
      }
    });
  }
}

TEST(TaskPool, SetThreadCountReconfiguresThePool) {
  const int prior = runtime::host_threads();
  runtime::set_host_threads(3);
  EXPECT_EQ(runtime::host_threads(), 3);
  std::atomic<int> sum{0};
  runtime::parallel_for(0, 10, 1, [&](std::int64_t b, std::int64_t e) {
    sum += static_cast<int>(e - b);
  });
  EXPECT_EQ(sum.load(), 10);
  runtime::set_host_threads(1);
  EXPECT_EQ(runtime::host_threads(), 1);
  runtime::set_host_threads(prior);
}

// --- Bitwise kernel determinism --------------------------------------

TEST(ParallelDeterminism, PackedGemmBitwiseMatchesBlockedAtAnyThreadCount) {
  util::Rng rng(77);
  const std::int64_t m = 37, n = 45, k = 29;
  std::vector<double> a(static_cast<std::size_t>(m * k));
  std::vector<double> b(static_cast<std::size_t>(k * n));
  rng.fill_uniform(a, -1, 1);
  rng.fill_uniform(b, -1, 1);
  for (const std::int64_t tile : {1, 10, 64}) {
    std::vector<double> ref(static_cast<std::size_t>(m * n), 0.25);
    conv::gemm_blocked(m, n, k, a, b, ref, tile);
    for (const int threads : kThreadCounts) {
      std::vector<double> c(static_cast<std::size_t>(m * n), 0.25);
      with_threads(threads, [&] {
        conv::gemm_packed_parallel(m, n, k, a, b, c, tile);
      });
      EXPECT_EQ(std::memcmp(c.data(), ref.data(), c.size() * sizeof(double)),
                0)
          << "threads=" << threads << " tile=" << tile;
    }
  }
}

TEST(ParallelDeterminism, Im2colPathBitwiseStableAcrossThreadCounts) {
  const conv::ConvShape s = conv::ConvShape::from_output(3, 2, 4, 5, 6, 3, 3);
  util::Rng rng(88);
  tensor::Tensor input = conv::make_input(s);
  tensor::Tensor filter = conv::make_filter(s);
  tensor::Tensor dout = conv::make_output(s);
  rng.fill_uniform(input.data(), -1, 1);
  rng.fill_uniform(filter.data(), -1, 1);
  rng.fill_uniform(dout.data(), -1, 1);

  auto run = [&](int threads) {
    return with_threads(threads, [&] {
      tensor::Tensor y = conv::make_output(s);
      tensor::Tensor din = conv::make_input(s);
      tensor::Tensor dw = conv::make_filter(s);
      conv::im2col_forward(input, filter, y, s);
      conv::im2col_backward_data(dout, filter, din, s);
      conv::im2col_backward_filter(input, dout, dw, s);
      std::vector<double> flat;
      for (const auto* t : {&y, &din, &dw}) {
        flat.insert(flat.end(), t->data().begin(), t->data().end());
      }
      return flat;
    });
  };

  const std::vector<double> serial = run(1);
  for (const int threads : {2, 8}) {
    const std::vector<double> parallel_run = run(threads);
    ASSERT_EQ(parallel_run.size(), serial.size());
    EXPECT_EQ(std::memcmp(parallel_run.data(), serial.data(),
                          serial.size() * sizeof(double)),
              0)
        << "threads=" << threads;
  }
}

/// A network touching every parallelized layer family: conv, relu,
/// pooling, LRN, dropout (serial RNG mask, parallel apply), FC, and the
/// softmax-cross-entropy loss reduction.
std::unique_ptr<dnn::Network> make_wide_net(std::int64_t batch) {
  util::Rng rng(991);
  auto net = std::make_unique<dnn::Network>();
  net->emplace<dnn::Convolution>(
      conv::ConvShape::from_output(batch, 1, 3, 6, 6, 3, 3), rng);
  net->emplace<dnn::Relu>();
  net->emplace<dnn::MaxPooling>(2);
  net->emplace<dnn::Lrn>(3, 1e-4, 0.75, 2.0);
  net->emplace<dnn::Dropout>(0.25, 4242);
  net->emplace<dnn::FullyConnected>(3 * 3 * 3, 4, rng);
  return net;
}

/// Trains `steps` batches and returns every parameter double plus the
/// per-step losses — the full observable state of the run.
std::vector<double> train_signature(int threads, int steps) {
  return with_threads(threads, [&] {
    auto net = make_wide_net(6);
    dnn::Sgd opt(0.15, 0.9);
    dnn::Trainer trainer(*net, opt);
    dnn::SyntheticBars data(8, 4, 0.05, 321);
    std::vector<double> sig;
    for (int s = 0; s < steps; ++s) {
      sig.push_back(trainer.train_step(data.sample(6)).loss);
    }
    for (const auto& pg : net->params()) {
      const auto d = pg.param->data();
      sig.insert(sig.end(), d.begin(), d.end());
    }
    return sig;
  });
}

TEST(ParallelDeterminism, TrainingRunBitwiseStableAcrossThreadCounts) {
  const std::vector<double> serial = train_signature(1, 4);
  for (const int threads : {2, 8}) {
    const std::vector<double> parallel_run = train_signature(threads, 4);
    ASSERT_EQ(parallel_run.size(), serial.size());
    EXPECT_EQ(std::memcmp(parallel_run.data(), serial.data(),
                          serial.size() * sizeof(double)),
              0)
        << "threads=" << threads;
  }
}

std::unique_ptr<dnn::Network> make_replica(std::int64_t batch) {
  util::Rng rng(555);
  auto net = std::make_unique<dnn::Network>();
  net->emplace<dnn::Convolution>(
      conv::ConvShape::from_output(batch, 1, 2, 2, 2, 3, 3), rng);
  net->emplace<dnn::Relu>();
  net->emplace<dnn::FullyConnected>(2 * 2 * 2, 3, rng);
  return net;
}

/// A data-parallel run with a kill and a revive mid-stream: per-step
/// losses plus replica 0's final parameters.
std::vector<double> data_parallel_signature(int threads) {
  return with_threads(threads, [&] {
    parallel::DataParallelTrainer dp(3, [] { return make_replica(4); }, 0.2,
                                     0.9);
    dnn::SyntheticBars data(4, 3, 0.05, 68);
    auto shards = [&] {
      std::vector<dnn::Batch> out;
      for (int node = 0; node < 3; ++node) out.push_back(data.sample(4));
      return out;
    };
    std::vector<double> sig;
    for (int step = 0; step < 3; ++step) sig.push_back(dp.train_step(shards()).loss);
    dp.kill_rank(1);
    for (int step = 0; step < 3; ++step) sig.push_back(dp.train_step(shards()).loss);
    dp.revive_rank(1);
    for (int step = 0; step < 3; ++step) sig.push_back(dp.train_step(shards()).loss);
    sig.push_back(dp.max_replica_divergence());
    for (const auto& pg : dp.replica(0).params()) {
      const auto d = pg.param->data();
      sig.insert(sig.end(), d.begin(), d.end());
    }
    return sig;
  });
}

TEST(ParallelDeterminism, ConcurrentReplicaSteppingBitwiseMatchesSequential) {
  const std::vector<double> serial = data_parallel_signature(1);
  // The survivors stay in lockstep through the kill/revive sequence.
  EXPECT_EQ(serial[9], 0.0);  // divergence slot: 9 per-step losses first
  for (const int threads : {2, 8}) {
    const std::vector<double> concurrent = data_parallel_signature(threads);
    ASSERT_EQ(concurrent.size(), serial.size());
    EXPECT_EQ(std::memcmp(concurrent.data(), serial.data(),
                          serial.size() * sizeof(double)),
              0)
        << "threads=" << threads;
  }
}

// --- Determinism under injected faults -------------------------------

/// Forward through the API with every DMA attempt faulting, so the call
/// exhausts retries and degrades to the (parallel) host-GEMM fallback.
std::vector<double> faulted_forward_signature(int threads) {
  return with_threads(threads, [&] {
    const conv::ConvShape s =
        conv::ConvShape::from_output(4, 2, 2, 3, 4, 2, 2);
    util::Rng rng(4242);
    tensor::Tensor input = conv::make_input(s);
    tensor::Tensor filter = conv::make_filter(s);
    rng.fill_uniform(input.data(), -1, 1);
    rng.fill_uniform(filter.data(), -1, 1);

    arch::Sw26010Spec spec = arch::default_spec();
    spec.mesh_rows = 2;
    spec.mesh_cols = 2;
    api::Handle* handle = nullptr;
    EXPECT_EQ(api::create(&handle, &spec), api::Status::kSuccess);
    sim::FaultPlan plan;
    plan.fail_first_dma = 1u << 20;
    EXPECT_EQ(api::set_fault_plan(handle, &plan), api::Status::kSuccess);
    EXPECT_EQ(api::set_retry_policy(handle, 2, 4), api::Status::kSuccess);

    api::TensorDescriptor x_desc, y_desc;
    api::FilterDescriptor w_desc;
    api::set_tensor4d_descriptor(x_desc, s.ri, s.ci, s.ni, s.batch);
    api::set_filter_descriptor(w_desc, s.kr, s.kc, s.ni, s.no);
    api::set_tensor4d_descriptor(y_desc, s.ro(), s.co(), s.no, s.batch);
    std::vector<double> y(
        static_cast<std::size_t>(s.ro() * s.co() * s.no * s.batch));
    EXPECT_EQ(api::convolution_forward(handle, x_desc, input.data().data(),
                                       w_desc, filter.data().data(), y_desc,
                                       y.data()),
              api::Status::kSuccess);
    EXPECT_EQ(api::last_execution_route(handle),
              api::ExecutionRoute::kHostGemm);
    EXPECT_EQ(api::destroy(handle), api::Status::kSuccess);
    return y;
  });
}

TEST(ParallelDeterminism, HostFallbackUnderFaultsBitwiseStable) {
  const std::vector<double> serial = faulted_forward_signature(1);
  for (const int threads : {2, 8}) {
    const std::vector<double> parallel_run = faulted_forward_signature(threads);
    ASSERT_EQ(parallel_run.size(), serial.size());
    EXPECT_EQ(std::memcmp(parallel_run.data(), serial.data(),
                          serial.size() * sizeof(double)),
              0)
        << "threads=" << threads;
  }
}

// --- Compensated metric accumulation ---------------------------------

TEST(KahanSum, RecoversBitsANaiveSumLoses) {
  // 1e16 has a ulp of 2: naively adding 1.0 eight times is absorbed
  // (1e16 + 1 rounds back down every time), while the compensated sum
  // lands on 1e16 + 8 exactly. No tolerance anywhere.
  util::KahanSum ks;
  double naive = 0.0;
  ks.add(1.0e16);
  naive += 1.0e16;
  for (int i = 0; i < 8; ++i) {
    ks.add(1.0);
    naive += 1.0;
  }
  EXPECT_EQ(naive, 1.0e16);            // the bug this satellite fixes
  EXPECT_EQ(ks.value(), 1.0e16 + 8.0);  // exact
}

TEST(KahanSum, EvaluateStatsMatchesReferenceAccumulationExactly) {
  // Two independent builds of the same net + data stream: the manual
  // Kahan loop and Trainer::evaluate_stats must agree to the last bit.
  auto net_a = make_wide_net(5);
  dnn::Sgd opt_a(0.1);
  dnn::Trainer trainer(*net_a, opt_a);
  dnn::SyntheticBars data_a(8, 4, 0.05, 777);
  const dnn::EvalStats stats = trainer.evaluate_stats(data_a, 5, 6);

  auto net_b = make_wide_net(5);
  net_b->set_training(false);
  dnn::SyntheticBars data_b(8, 4, 0.05, 777);
  util::KahanSum loss_sum;
  std::int64_t correct = 0;
  for (int s = 0; s < 6; ++s) {
    const dnn::Batch batch = data_b.sample(5);
    const dnn::LossResult loss =
        dnn::softmax_cross_entropy(net_b->forward(batch.images), batch.labels);
    loss_sum.add(loss.loss);
    correct += loss.correct;
  }
  EXPECT_EQ(stats.mean_loss, loss_sum.value() / 6.0);
  EXPECT_EQ(stats.accuracy, static_cast<double>(correct) / 30.0);
}

}  // namespace
}  // namespace swdnn
