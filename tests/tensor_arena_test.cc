// Arena packing: disjoint lifetimes share bytes, concurrent lifetimes
// never do, and the peak matches a hand-computed schedule.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "src/tensor/arena.h"
#include "src/tensor/tensor.h"

namespace swdnn::tensor {
namespace {

TEST(Arena, DisjointLifetimesShareBytes) {
  // A live [0,1], B live [1,2], C live [2,3], all 100 elements.
  // A+B overlap at t=1, B+C at t=2, but A and C are disjoint: the
  // packer needs only two 100-element ranges, not three.
  Arena arena;
  const std::size_t a = arena.request({100}, 0, 1);
  const std::size_t b = arena.request({100}, 1, 2);
  const std::size_t c = arena.request({100}, 2, 3);
  arena.plan();

  EXPECT_EQ(arena.peak_bytes(), 200 * 8);
  EXPECT_EQ(arena.naive_bytes(), 300 * 8);
  EXPECT_NE(arena.slot(a).offset, arena.slot(b).offset);
  EXPECT_NE(arena.slot(b).offset, arena.slot(c).offset);
  EXPECT_EQ(arena.slot(a).offset, arena.slot(c).offset);  // reuse
}

TEST(Arena, ViewsReadAndWriteArenaStorage) {
  Arena arena;
  const std::size_t a = arena.request({2, 3}, 0, 0);
  const std::size_t b = arena.request({6}, 1, 1);
  arena.plan();

  TensorView va = arena.view(a);
  va.zero();
  va.at(1, 2) = 7.5;
  EXPECT_EQ(va.at(1, 2), 7.5);

  // Disjoint lifetimes => b aliases a's bytes; writing b clobbers a,
  // which is exactly the contract (a is dead by the time b is live).
  TensorView vb = arena.view(b);
  for (std::int64_t i = 0; i < 6; ++i) vb.at(i) = static_cast<double>(i);
  Tensor snapshot = vb.to_tensor();
  EXPECT_EQ(snapshot.dims(), (std::vector<std::int64_t>{6}));
  EXPECT_EQ(snapshot.at(5), 5.0);
}

TEST(Arena, AliasCheckerRejectsOverlappingLiveRanges) {
  // Hand-built unsound layout: both slots live at t=0 yet overlapping
  // in address space.
  std::vector<ArenaSlot> slots(2);
  slots[0].dims = {10};
  slots[0].elements = 10;
  slots[0].live_begin = 0;
  slots[0].live_end = 2;
  slots[0].offset = 0;
  slots[1].dims = {10};
  slots[1].elements = 10;
  slots[1].live_begin = 1;
  slots[1].live_end = 3;
  slots[1].offset = 5;  // overlaps [0,10)

  const auto alias = find_alias(slots);
  ASSERT_TRUE(alias.has_value());
  EXPECT_EQ(alias->first, 0u);
  EXPECT_EQ(alias->second, 1u);

  // Shifting the second slot out of the way makes the layout sound.
  slots[1].offset = 10;
  EXPECT_FALSE(find_alias(slots).has_value());

  // Address overlap is fine when the lifetimes are disjoint.
  slots[1].offset = 5;
  slots[1].live_begin = 3;
  slots[1].live_end = 4;
  EXPECT_FALSE(find_alias(slots).has_value());
}

TEST(Arena, PlannedLayoutPassesValidate) {
  Arena arena;
  arena.request({64, 3}, 0, 5);
  arena.request({32}, 1, 2);
  arena.request({32}, 3, 4);
  arena.request({128}, 2, 3);
  arena.plan();
  EXPECT_NO_THROW(arena.validate());
  EXPECT_FALSE(find_alias({arena.slot(0), arena.slot(1), arena.slot(2),
                           arena.slot(3)})
                   .has_value());
}

TEST(Arena, PeakMatchesHandComputedSchedule) {
  // Timeline:      t=0   t=1   t=2
  //   X (300)      live  live  .
  //   Y (200)      .     live  live
  //   Z (100)      live  .     .
  //   W (100)      .     .     live
  // Size-descending first-fit: X@0, Y@300 (must clear X at t=1).
  // Z only has to avoid X, so it lands at 300 — inside Y's range, legal
  // because Y is dead at t=0. W only has to avoid Y and slots into 0,
  // under X, dead by t=2. Hand-computed peak: max(X+Y) = 500 elements.
  Arena arena;
  const std::size_t x = arena.request({300}, 0, 1);
  const std::size_t y = arena.request({200}, 1, 2);
  const std::size_t z = arena.request({100}, 0, 0);
  const std::size_t w = arena.request({100}, 2, 2);
  arena.plan();

  EXPECT_EQ(arena.slot(x).offset, 0);
  EXPECT_EQ(arena.slot(y).offset, 300);
  EXPECT_EQ(arena.slot(z).offset, 300);
  EXPECT_EQ(arena.slot(w).offset, 0);
  EXPECT_EQ(arena.peak_bytes(), 500 * 8);
  EXPECT_EQ(arena.naive_bytes(), 700 * 8);
}

TEST(Arena, StableBufferAcrossReplansOfSameFootprint) {
  Arena arena;
  arena.request({100}, 0, 1);
  arena.plan();
  EXPECT_EQ(arena.allocations(), 1u);

  // reset + identical request: the buffer size is unchanged, so no
  // reallocation happens — the property compiled steady-state relies on.
  arena.reset();
  arena.request({50}, 0, 0);
  arena.request({50}, 0, 0);
  arena.plan();
  EXPECT_EQ(arena.allocations(), 1u);
}

TEST(Arena, ViewBeforePlanThrows) {
  Arena arena;
  const std::size_t a = arena.request({4}, 0, 0);
  EXPECT_THROW(arena.view(a), std::logic_error);
}

}  // namespace
}  // namespace swdnn::tensor
