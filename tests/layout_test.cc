// The Section V-C vectorization layouts: exact element mapping and
// lossless round trips.

#include <gtest/gtest.h>

#include "src/tensor/layout.h"
#include "src/util/rng.h"

namespace swdnn::tensor {
namespace {

Tensor random_canonical(std::int64_t r, std::int64_t c, std::int64_t n,
                        std::int64_t b, std::uint64_t seed) {
  Tensor t({r, c, n, b});
  util::Rng rng(seed);
  rng.fill_uniform(t.data(), -1.0, 1.0);
  return t;
}

TEST(Layout, ImageSizeAwareShape) {
  const Tensor canon = random_canonical(3, 5, 2, 8, 1);
  const Tensor v = to_image_size_aware(canon);
  EXPECT_EQ(v.dims(), (std::vector<std::int64_t>{2, 2, 3, 5, 4}));
}

TEST(Layout, BatchSizeAwareShape) {
  const Tensor canon = random_canonical(3, 5, 2, 8, 1);
  const Tensor v = to_batch_size_aware(canon);
  EXPECT_EQ(v.dims(), (std::vector<std::int64_t>{2, 3, 5, 2, 4}));
}

TEST(Layout, ImageSizeAwareElementMapping) {
  const Tensor canon = random_canonical(2, 3, 2, 8, 2);
  const Tensor v = to_image_size_aware(canon);
  // Element (r=1, c=2, n=1, b=6) -> lane 6%4=2 of vector 6/4=1.
  EXPECT_EQ(v.at(1, 1, 1, 2, 2), canon.at(1, 2, 1, 6));
}

TEST(Layout, BatchSizeAwareElementMapping) {
  const Tensor canon = random_canonical(2, 3, 2, 8, 3);
  const Tensor v = to_batch_size_aware(canon);
  EXPECT_EQ(v.at(1, 1, 2, 1, 2), canon.at(1, 2, 1, 6));
}

TEST(Layout, ImageSizeAwareRoundTrip) {
  const Tensor canon = random_canonical(4, 6, 3, 12, 4);
  const Tensor back = from_image_size_aware(to_image_size_aware(canon));
  EXPECT_TRUE(canon.allclose(back, 0, 0));
}

TEST(Layout, BatchSizeAwareRoundTrip) {
  const Tensor canon = random_canonical(4, 6, 3, 12, 5);
  const Tensor back = from_batch_size_aware(to_batch_size_aware(canon));
  EXPECT_TRUE(canon.allclose(back, 0, 0));
}

TEST(Layout, LanesAreConsecutiveBatches) {
  // The whole point of the layout: batch quads land in one vector.
  Tensor canon({1, 1, 1, 8});
  for (std::int64_t b = 0; b < 8; ++b) {
    canon.at(0, 0, 0, b) = static_cast<double>(b);
  }
  const Tensor v = to_image_size_aware(canon);
  for (int l = 0; l < 4; ++l) {
    EXPECT_EQ(v.at(0, 0, 0, 0, l), static_cast<double>(l));
    EXPECT_EQ(v.at(1, 0, 0, 0, l), static_cast<double>(4 + l));
  }
}

TEST(Layout, RejectsBadBatch) {
  Tensor canon({2, 2, 2, 6});  // 6 % 4 != 0
  EXPECT_THROW(to_image_size_aware(canon), std::invalid_argument);
  EXPECT_THROW(to_batch_size_aware(canon), std::invalid_argument);
}

TEST(Layout, RejectsBadRank) {
  Tensor t3({2, 2, 4});
  EXPECT_THROW(to_image_size_aware(t3), std::invalid_argument);
  Tensor t5({2, 2, 2, 2, 3});
  EXPECT_THROW(from_image_size_aware(t5), std::invalid_argument);
  EXPECT_THROW(from_batch_size_aware(t5), std::invalid_argument);
}

TEST(Layout, LeadingBlockBytes) {
  EXPECT_EQ(leading_block_bytes(ConvLayout::kCanonicalRCNB, 128, 16), 1024);
  EXPECT_EQ(leading_block_bytes(ConvLayout::kImageSizeAware, 32, 16),
            32 * 16 * 8);
  EXPECT_EQ(leading_block_bytes(ConvLayout::kBatchSizeAware, 128, 16), 1024);
}

}  // namespace
}  // namespace swdnn::tensor
