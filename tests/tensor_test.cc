#include <gtest/gtest.h>

#include "src/tensor/tensor.h"

namespace swdnn::tensor {
namespace {

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  for (double v : t.data()) EXPECT_EQ(v, 0.0);
  EXPECT_EQ(t.size(), 6);
  EXPECT_EQ(t.rank(), 2);
}

TEST(Tensor, RowMajorStrides) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.strides(), (std::vector<std::int64_t>{12, 4, 1}));
}

TEST(Tensor, OffsetAndAtAgree) {
  Tensor t({3, 4, 5, 6});
  t.at(2, 1, 3, 4) = 7.5;
  EXPECT_EQ(t.data()[t.offset({2, 1, 3, 4})], 7.5);
  EXPECT_EQ(t.offset({0, 0, 0, 1}), 1);
  EXPECT_EQ(t.offset({1, 0, 0, 0}), 4 * 5 * 6);
}

TEST(Tensor, Rank5Access) {
  Tensor t({2, 2, 2, 2, 4});
  t.at(1, 1, 1, 1, 3) = 1.0;
  EXPECT_EQ(t.data()[t.size() - 1], 1.0);
}

TEST(Tensor, RejectsBadRank) {
  EXPECT_THROW(Tensor(std::vector<std::int64_t>{}), std::invalid_argument);
  EXPECT_THROW(Tensor({1, 1, 1, 1, 1, 1}), std::invalid_argument);
}

TEST(Tensor, RejectsNonPositiveDims) {
  EXPECT_THROW(Tensor({2, 0}), std::invalid_argument);
  EXPECT_THROW(Tensor({-1}), std::invalid_argument);
}

TEST(Tensor, FillAndZero) {
  Tensor t({4});
  t.fill(2.5);
  for (double v : t.data()) EXPECT_EQ(v, 2.5);
  t.zero();
  for (double v : t.data()) EXPECT_EQ(v, 0.0);
}

TEST(Tensor, AllcloseExactAndTolerance) {
  Tensor a({3}), b({3});
  a.fill(1.0);
  b.fill(1.0);
  EXPECT_TRUE(a.allclose(b));
  b.at(1) = 1.0 + 1e-13;
  EXPECT_TRUE(a.allclose(b));
  b.at(1) = 1.1;
  EXPECT_FALSE(a.allclose(b));
}

TEST(Tensor, AllcloseDimsMismatch) {
  Tensor a({3}), b({4});
  EXPECT_FALSE(a.allclose(b));
}

TEST(Tensor, MaxAbsDiff) {
  Tensor a({2, 2}), b({2, 2});
  a.at(1, 1) = 3.0;
  b.at(1, 1) = 1.0;
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 2.0);
  Tensor c({3});
  EXPECT_THROW(a.max_abs_diff(c), std::invalid_argument);
}

TEST(Tensor, ShapeString) {
  EXPECT_EQ(Tensor({4, 8, 8, 2}).shape_string(), "Tensor[4x8x8x2]");
}

}  // namespace
}  // namespace swdnn::tensor
