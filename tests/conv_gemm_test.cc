#include <gtest/gtest.h>

#include <vector>

#include "src/conv/gemm.h"
#include "src/util/rng.h"

namespace swdnn::conv {
namespace {

TEST(Gemm, HandComputed2x2) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50].
  std::vector<double> a = {1, 2, 3, 4}, b = {5, 6, 7, 8}, c(4, 0.0);
  gemm_naive(2, 2, 2, a, b, c);
  EXPECT_EQ(c, (std::vector<double>{19, 22, 43, 50}));
}

TEST(Gemm, Accumulates) {
  std::vector<double> a = {1, 0, 0, 1}, b = {1, 2, 3, 4}, c = {10, 0, 0, 10};
  gemm_naive(2, 2, 2, a, b, c);
  EXPECT_EQ(c, (std::vector<double>{11, 2, 3, 14}));
}

struct GemmDims {
  std::int64_t m, n, k;
};

class BlockedVsNaive : public ::testing::TestWithParam<GemmDims> {};

TEST_P(BlockedVsNaive, Match) {
  const auto [m, n, k] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(m * 1000 + n * 10 + k));
  std::vector<double> a(static_cast<std::size_t>(m * k));
  std::vector<double> b(static_cast<std::size_t>(k * n));
  rng.fill_uniform(a, -1, 1);
  rng.fill_uniform(b, -1, 1);
  std::vector<double> c1(static_cast<std::size_t>(m * n), 0.5);
  std::vector<double> c2 = c1;
  gemm_naive(m, n, k, a, b, c1);
  gemm_blocked(m, n, k, a, b, c2, 16);
  for (std::size_t i = 0; i < c1.size(); ++i) {
    EXPECT_NEAR(c1[i], c2[i], 1e-11);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BlockedVsNaive,
    ::testing::Values(GemmDims{1, 1, 1}, GemmDims{3, 5, 7},
                      GemmDims{16, 16, 16}, GemmDims{17, 33, 9},
                      GemmDims{64, 8, 40}, GemmDims{20, 100, 3}),
    [](const ::testing::TestParamInfo<GemmDims>& info) {
      return "m" + std::to_string(info.param.m) + "n" +
             std::to_string(info.param.n) + "k" + std::to_string(info.param.k);
    });

TEST(Gemm, NonPositiveTileIsClampedInsteadOfHanging) {
  // Regression: tile <= 0 used to leave the i0/p0/j0 loops incrementing
  // by zero — an infinite loop. The clamp must both terminate and
  // produce the same result as the default tile.
  util::Rng rng(13);
  const std::int64_t m = 9, n = 11, k = 7;
  std::vector<double> a(static_cast<std::size_t>(m * k));
  std::vector<double> b(static_cast<std::size_t>(k * n));
  rng.fill_uniform(a, -1, 1);
  rng.fill_uniform(b, -1, 1);
  std::vector<double> ref(static_cast<std::size_t>(m * n), 0.0);
  gemm_blocked(m, n, k, a, b, ref);  // default tile
  for (const std::int64_t tile : {0, -1, -64}) {
    std::vector<double> c(static_cast<std::size_t>(m * n), 0.0);
    gemm_blocked(m, n, k, a, b, c, tile);
    EXPECT_EQ(c, ref) << "tile=" << tile;
    std::vector<double> cp(static_cast<std::size_t>(m * n), 0.0);
    gemm_packed_parallel(m, n, k, a, b, cp, tile);
    EXPECT_EQ(cp, ref) << "packed tile=" << tile;
  }
}

TEST(Gemm, PackedParallelMatchesNaive) {
  util::Rng rng(21);
  const std::int64_t m = 23, n = 40, k = 17;
  std::vector<double> a(static_cast<std::size_t>(m * k));
  std::vector<double> b(static_cast<std::size_t>(k * n));
  rng.fill_uniform(a, -1, 1);
  rng.fill_uniform(b, -1, 1);
  std::vector<double> ref(static_cast<std::size_t>(m * n), 0.125);
  std::vector<double> c = ref;
  gemm_naive(m, n, k, a, b, ref);
  gemm_packed_parallel(m, n, k, a, b, c, 8);
  // Same per-element ascending-k accumulation order: exact, not NEAR.
  EXPECT_EQ(c, ref);
}

TEST(Gemm, TileSizeDoesNotChangeResult) {
  util::Rng rng(9);
  const std::int64_t m = 24, n = 31, k = 18;
  std::vector<double> a(static_cast<std::size_t>(m * k));
  std::vector<double> b(static_cast<std::size_t>(k * n));
  rng.fill_uniform(a, -1, 1);
  rng.fill_uniform(b, -1, 1);
  std::vector<double> ref(static_cast<std::size_t>(m * n), 0.0);
  gemm_naive(m, n, k, a, b, ref);
  for (std::int64_t tile : {1, 2, 7, 64, 1000}) {
    std::vector<double> c(static_cast<std::size_t>(m * n), 0.0);
    gemm_blocked(m, n, k, a, b, c, tile);
    for (std::size_t i = 0; i < c.size(); ++i) {
      EXPECT_NEAR(ref[i], c[i], 1e-11) << "tile=" << tile;
    }
  }
}

}  // namespace
}  // namespace swdnn::conv
